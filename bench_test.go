// Package repro holds the repository-level benchmark harness: one
// benchmark (family) per experiment in DESIGN.md §4 — Table I, Fig 1,
// Fig 2 and the supplementary performance evaluations P1–P6 — plus
// the ablations of §5. Run with:
//
//	go test -bench=. -benchmem .
//
// EXPERIMENTS.md records the measured outputs next to what the paper
// reports.
package repro

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ads"
	"repro/internal/analytics"
	"repro/internal/app"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/ingest"
	"repro/internal/runtime"
	"repro/internal/sitesuggest"
	"repro/internal/store"
	"repro/internal/webcorpus"
	"repro/internal/webservice"
	"repro/internal/workload"
)

// ---- shared fixtures ----

var (
	onceCorpus sync.Once
	corpus     *webcorpus.Corpus

	oncePlatform sync.Once
	platform     *core.Platform
	gamerqueen   *demo.Scenario
)

func sharedCorpus() *webcorpus.Corpus {
	onceCorpus.Do(func() {
		corpus = webcorpus.Generate(webcorpus.Config{Seed: 1})
	})
	return corpus
}

func sharedPlatform(b *testing.B) (*core.Platform, *demo.Scenario) {
	b.Helper()
	oncePlatform.Do(func() {
		platform = core.NewWithCorpus(core.Config{Seed: 1}, sharedCorpus())
		var err error
		gamerqueen, err = demo.GamerQueen(platform, 1, 10)
		if err != nil {
			panic(err)
		}
	})
	return platform, gamerqueen
}

// ---- T1: Table I capability probes ----

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := core.NewWithCorpus(core.Config{Seed: 1}, sharedCorpus())
		b.StartTimer()
		systems, err := baselines.AllSystems(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := baselines.RenderTableI(context.Background(), systems); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- F1: design-interface session (build the Fig 1 application) ----

func BenchmarkFig1Designer(b *testing.B) {
	p, _ := sharedPlatform(b)
	_ = p
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fresh := core.NewWithCorpus(core.Config{Seed: 1}, sharedCorpus())
		sc, err := demo.GamerQueen(fresh, 1, 8)
		if err != nil {
			b.Fatal(err)
		}
		sc.Close()
	}
}

// ---- F2: query execution pipeline ----

func BenchmarkFig2Pipeline(b *testing.B) {
	p, sc := sharedPlatform(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := runtime.Query{Text: sc.Titles[i%len(sc.Titles)]}
		if _, err := p.Query(ctx, "gamerqueen", q); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- P1: ingestion throughput by format ----

func csvPayload(n int) string {
	var sb strings.Builder
	sb.WriteString("sku,title,producer,description,price\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "S%d,Product %d Deluxe,Maker%d,a fine product number %d with features,%d.99\n", i, i, i%7, i, 10+i%90)
	}
	return sb.String()
}

func xmlPayload(n int) string {
	var sb strings.Builder
	sb.WriteString("<items>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "<item><sku>S%d</sku><title>Product %d Deluxe</title><price>%d.99</price></item>", i, i, 10+i%90)
	}
	sb.WriteString("</items>")
	return sb.String()
}

func rssPayload(n int) string {
	var sb strings.Builder
	sb.WriteString(`<rss><channel><title>feed</title>`)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "<item><title>Story %d</title><link>http://n.example/%d</link><description>story number %d</description></item>", i, i, i)
	}
	sb.WriteString("</channel></rss>")
	return sb.String()
}

func xlsPayload(n int) string {
	var sb strings.Builder
	sb.WriteString("=XLSGRID\nsku\ttitle\tprice\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "S%d\tProduct %d\t%d.99\n", i, i, 10+i%90)
	}
	return sb.String()
}

func BenchmarkIngest(b *testing.B) {
	cases := []struct {
		format  ingest.Format
		payload func(int) string
	}{
		{ingest.FormatCSV, csvPayload},
		{ingest.FormatXML, xmlPayload},
		{ingest.FormatRSS, rssPayload},
		{ingest.FormatXLS, xlsPayload},
	}
	for _, size := range []int{1000, 10000} {
		for _, c := range cases {
			payload := c.payload(size)
			b.Run(fmt.Sprintf("%s/n=%d", c.format, size), func(b *testing.B) {
				b.SetBytes(int64(len(payload)))
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					st := store.New()
					st.CreateTenant("t", "o")
					up := &ingest.Uploader{Store: st}
					b.StartTimer()
					rep, err := up.Upload(ingest.Options{
						Tenant: "t", Actor: "o", Dataset: "d", Format: c.format,
					}, strings.NewReader(payload))
					if err != nil {
						b.Fatal(err)
					}
					if rep.Loaded != size {
						b.Fatalf("loaded %d", rep.Loaded)
					}
				}
				b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
			})
		}
	}
}

// ---- P2: index and query scaling ----

func synthDocs(n int) []index.Document {
	rng := rand.New(rand.NewSource(7))
	words := []string{"search", "platform", "proprietary", "data", "engine", "review", "game", "wine", "movie", "service", "custom", "vertical", "result", "layout", "designer", "symphony"}
	docs := make([]index.Document, n)
	for i := range docs {
		var body strings.Builder
		for w := 0; w < 30; w++ {
			body.WriteString(words[rng.Intn(len(words))])
			body.WriteByte(' ')
		}
		fmt.Fprintf(&body, "unique%d", i)
		docs[i] = index.Document{
			ID:     fmt.Sprintf("d%d", i),
			Fields: map[string]string{"body": body.String()},
			Stored: map[string]string{"ord": fmt.Sprint(i)},
		}
	}
	return docs
}

func BenchmarkIndexAdd(b *testing.B) {
	for _, size := range []int{1000, 10000, 100000} {
		docs := synthDocs(size)
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix := index.New()
				if err := ix.AddBatch(docs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
		})
	}
}

// shardConfigs compares the pre-refactor single-lock layout
// (WithShards(1)) against the default sharded fan-out.
func shardConfigs() []struct {
	name string
	opts []index.Option
} {
	return []struct {
		name string
		opts []index.Option
	}{
		{"shards=1", []index.Option{index.WithShards(1)}},
		{"shards=default", nil},
	}
}

func BenchmarkQueryBM25(b *testing.B) {
	for _, size := range []int{1000, 10000, 100000} {
		for _, cfg := range shardConfigs() {
			ix := index.New(cfg.opts...)
			if err := ix.AddBatch(synthDocs(size)); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("n=%d/%s", size, cfg.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rs := mustSearch(ix, index.MatchQuery{Text: "search platform review"}, index.SearchOptions{Limit: 10})
					if len(rs) == 0 {
						b.Fatal("no results")
					}
				}
			})
		}
	}
}

// BenchmarkQueryParallel measures query throughput with many
// concurrent clients, the shape of hosted platform traffic. read-only
// stresses lock-word contention on the shared index; read-write mixes
// in document updates, where a single-lock index stalls every reader
// behind each writer but a sharded one blocks only 1/N of the corpus.
func BenchmarkQueryParallel(b *testing.B) {
	docs := synthDocs(20000)
	queries := []string{
		"search platform review",
		"wine vertical result",
		"movie engine custom",
		"designer symphony data",
	}
	for _, cfg := range shardConfigs() {
		build := func(b *testing.B) *index.Index {
			b.Helper()
			ix := index.New(cfg.opts...)
			if err := ix.AddBatch(docs); err != nil {
				b.Fatal(err)
			}
			return ix
		}
		b.Run("read-only/"+cfg.name, func(b *testing.B) {
			ix := build(b)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					rs := mustSearch(ix, index.MatchQuery{Text: queries[i%len(queries)]}, index.SearchOptions{Limit: 10})
					if len(rs) == 0 {
						b.Error("no results")
						return
					}
					i++
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
		})
		b.Run("read-write/"+cfg.name, func(b *testing.B) {
			ix := build(b)
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := worker.Add(1)
				i := 0
				for pb.Next() {
					if i%8 == 7 {
						ix.Add(index.Document{
							ID:     fmt.Sprintf("hot-w%d-%d", w, i%64),
							Fields: map[string]string{"body": "fresh review search platform update"},
						})
					} else {
						mustSearch(ix, index.MatchQuery{Text: queries[i%len(queries)]}, index.SearchOptions{Limit: 10})
					}
					i++
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
		})
	}
}

func BenchmarkQueryPhrase(b *testing.B) {
	ix := index.New()
	if err := ix.AddBatch(synthDocs(10000)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustSearch(ix, index.PhraseQuery{Field: "body", Text: "search platform"}, index.SearchOptions{Limit: 10})
	}
}

// ---- P3: pipeline latency decomposition (supplemental fan-out) ----

// appSource is the shared GamerQueen inventory primary used by the
// fan-out series; webSupplemental is one site-restricted web search.
func appSource(string) app.SourceConfig {
	return app.SourceConfig{ID: "inventory", Kind: app.KindProprietary, Dataset: "inventory", MaxResults: 4}
}

func webSupplemental(id string) app.SourceConfig {
	return app.SourceConfig{
		ID: id, Kind: app.KindWebSearch, MaxResults: 2,
		Sites: []string{"ign.com", "gamespot.com", "teamxbox.com"},
	}
}

func BenchmarkPipelineFanout(b *testing.B) {
	p, sc := sharedPlatform(b)
	for _, parallelism := range []int{1, 8} {
		for _, k := range []int{0, 1, 2, 4} {
			appID := fmt.Sprintf("fan-k%d-p%d", k, parallelism)
			if _, ok := p.Registry.Get(appID); !ok {
				d := p.NewApp(appID, appID, "ann", "gamerqueen")
				d.DropPrimary(appSource(appID))
				d.SetSearchFields("inventory", "title")
				d.UseTemplate("inventory", "title-link", map[string]string{"title": "title", "url": "detailurl"})
				for s := 0; s < k; s++ {
					suppID := fmt.Sprintf("web%d", s)
					d.DropSupplemental("inventory", webSupplemental(suppID))
					d.SetDriveFields(suppID, "{title} review", "title")
					d.UseTemplate(suppID, "headline-snippet", map[string]string{"title": "title", "url": "url", "snippet": "snippet"})
				}
				a, err := d.Build()
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Registry.Publish(a); err != nil {
					b.Fatal(err)
				}
			}
			name := fmt.Sprintf("k=%d/parallel=%d", k, parallelism)
			b.Run(name, func(b *testing.B) {
				exec := *p.Executor
				exec.SupplementalParallelism = parallelism
				a, _ := p.Registry.Get(appID)
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := exec.Execute(ctx, a, runtime.Query{Text: sc.Titles[i%len(sc.Titles)]}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---- P4: hosted QPS ----

func BenchmarkHostQPS(b *testing.B) {
	p, _ := sharedPlatform(b)
	srv := httptest.NewServer(p.Serve("http://bench.example"))
	defer srv.Close()
	client := srv.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: 64}
	// Zipf-distributed query stream over the catalog's entities, the
	// heavy-tailed shape real hosted traffic has.
	queries := workload.New(workload.Config{Seed: 1, Entities: 10, ModifierRate: 0.3}).Take(4096)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := strings.ReplaceAll(queries[i%len(queries)], " ", "+")
			resp, err := client.Get(srv.URL + "/query?app=gamerqueen&q=" + q)
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}

// ---- P5: Site Suggest scaling ----

func BenchmarkSiteSuggest(b *testing.B) {
	for _, logSize := range []int{1000, 10000, 100000} {
		log := make([]engine.LogEntry, 0, logSize)
		sites := sharedCorpus().Sites
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < logSize; i++ {
			site := sites[rng.Intn(len(sites))].Domain
			log = append(log, engine.LogEntry{
				Query: fmt.Sprintf("query-%d", rng.Intn(logSize/10+1)),
				Site:  site, ClickedURL: "http://" + site + "/x",
			})
		}
		b.Run(fmt.Sprintf("log=%d", logSize), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sitesuggest.Build(log)
				if got := s.Suggest([]string{"ign.com", "gamespot.com"}, 5); len(got) == 0 {
					b.Fatal("no suggestions")
				}
			}
		})
	}
}

// ---- P6: ad auction and revenue reporting ----

func BenchmarkAdAuction(b *testing.B) {
	svc := ads.NewService()
	rng := rand.New(rand.NewSource(5))
	kws := []string{"game", "zelda", "halo", "wine", "merlot", "movie", "trailer", "deal", "sale", "review"}
	for i := 0; i < 1000; i++ {
		err := svc.Register(ads.Ad{
			ID: fmt.Sprintf("ad%d", i), Advertiser: fmt.Sprintf("adv%d", i%50),
			Title: "t", Text: "x", LandingURL: "http://a.example",
			Keywords: []string{kws[rng.Intn(len(kws))], kws[rng.Intn(len(kws))]},
			BidCPC:   0.05 + rng.Float64(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := svc.Select("zelda game deal", 3); len(got) == 0 {
			b.Fatal("no ads")
		}
	}
}

func BenchmarkRevenueReport(b *testing.B) {
	log := analytics.NewLog()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50000; i++ {
		switch rng.Intn(3) {
		case 0:
			log.Record(analytics.Event{App: "a", Type: analytics.EventQuery, Query: fmt.Sprintf("q%d", rng.Intn(100))})
		case 1:
			log.Record(analytics.Event{App: "a", Type: analytics.EventClick, URL: fmt.Sprintf("http://s%d.example/x", rng.Intn(20))})
		default:
			log.Record(analytics.Event{App: "a", Type: analytics.EventAdClick, Revenue: rng.Float64()})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := log.Summarize("a", 5)
		if s.Queries == 0 {
			b.Fatal("empty summary")
		}
	}
}

// ---- Ablations (DESIGN.md §5) ----

func BenchmarkSnippets(b *testing.B) {
	ix := index.New()
	if err := ix.AddBatch(synthDocs(10000)); err != nil {
		b.Fatal(err)
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustSearch(ix, index.MatchQuery{Text: "search platform"}, index.SearchOptions{Limit: 10})
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustSearch(ix, index.MatchQuery{Text: "search platform"}, index.SearchOptions{Limit: 10, SnippetField: "body"})
		}
	})
}

func BenchmarkRankers(b *testing.B) {
	docs := synthDocs(10000)
	for _, r := range []struct {
		name   string
		ranker index.Ranker
	}{{"bm25", index.RankerBM25}, {"tfidf", index.RankerTFIDF}} {
		ix := index.New()
		if err := ix.AddBatch(docs); err != nil {
			b.Fatal(err)
		}
		ix.SetRanker(r.ranker)
		b.Run(r.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if rs := mustSearch(ix, index.MatchQuery{Text: "search platform review"}, index.SearchOptions{Limit: 10}); len(rs) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
}

func BenchmarkServiceCache(b *testing.B) {
	_, sc := sharedPlatform(b)
	for _, ttl := range []int{0, 60000} {
		b.Run(map[int]string{0: "off", 60000: "on"}[ttl], func(b *testing.B) {
			pricing := webservice.NewPricingService(9, sc.Titles)
			srv := httptest.NewServer(pricing)
			defer srv.Close()
			client := webservice.NewClient(srv.Client())
			def := webservice.Definition{
				Name: "pricing", Endpoint: srv.URL + "/price",
				Params:     map[string]string{"title": "{title}"},
				CacheTTLMS: ttl,
			}
			ctx := context.Background()
			args := map[string]string{"title": sc.Titles[0]}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Call(ctx, def, args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// mustSearch keeps the benchmark bodies on the ctx-first API without
// per-iteration error plumbing; queries here never carry a deadline.
func mustSearch(ix *index.Index, q index.Query, opts index.SearchOptions) []index.Result {
	rs, err := ix.SearchContext(context.Background(), q, opts)
	if err != nil {
		panic(err)
	}
	return rs
}
