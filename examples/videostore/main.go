// VideoStore builds §I's video store application: browse a movie
// inventory augmented on the fly with trailers (video vertical) and
// latest news (news vertical). It also demonstrates the URL-crawling
// upload method: the owner crawls a movie site into a second dataset
// and the supplemental-content recommender proposes restriction sites
// for his catalog.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/demo"
	"repro/internal/ingest"
	"repro/internal/recommend"
	"repro/internal/runtime"
	"repro/internal/store"
	"repro/internal/webcorpus"
)

func main() {
	ctx := context.Background()
	p := core.New(core.Config{Seed: 1})
	sc, err := demo.VideoStore(p, 1, 10)
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Close()

	// Browse with trailer + news supplementals.
	resp, err := p.Query(ctx, "videostore", runtime.Query{Text: sc.Titles[0]})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q -> %d results\n", sc.Titles[0], len(resp.Blocks[0].Items))
	if len(resp.Blocks[0].Items) > 0 {
		for suppID, items := range resp.Blocks[0].SupplementalByItem[0] {
			for _, it := range items {
				fmt.Printf("  [%s] %s\n", suppID, it["title"])
			}
		}
	}

	// URL-crawling upload: crawl a movie site from the synthetic web
	// into a new dataset (§II-A upload methods).
	seeds := []string{}
	for _, page := range p.Corpus.Pages {
		if page.Site == "imdb.example" && page.Vertical == webcorpus.VerticalWeb {
			seeds = append(seeds, page.URL)
			break
		}
	}
	pages, err := crawler.Crawl(crawler.CorpusFetcher{Corpus: p.Corpus}, seeds, crawler.Config{
		MaxDepth: 1, MaxPages: 25, SameSiteOnly: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := p.Store.CreateDataset("videostore", "victor", crawler.CrawlSchema("moviepages"))
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range crawler.ToRecords(pages) {
		if _, err := ds.Put(rec); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\ncrawled %d pages from imdb.example into dataset %q\n", ds.Len(), "moviepages")
	hits, err := ds.SearchContext(ctx, store.SearchRequest{Query: "review", Limit: 3})
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Printf("  crawled hit: %s\n", h.Record["title"])
	}

	// Recommend supplemental sites for the movie catalog (§IV future
	// work, built here).
	catalog, err := p.Store.DatasetContext(ctx, "videostore", "victor", "catalog", store.PermRead)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := recommend.SupplementalSites(ctx, p.Engine, catalog, recommend.Options{
		DriveField: "title", ProbeSuffix: "review", Limit: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecommended review sites for the movie catalog:")
	for _, r := range recs {
		fmt.Printf("  %.3f  %s\n", r.Score, r.Site)
	}

	// RSS ingestion keeps a news dataset fresh (§II-A upload methods):
	// here via a one-shot feed pull from an in-corpus page set.
	_ = ingest.FormatRSS // see internal/ingest tests for live feed polling
}
