// GamerQueen walks the paper's §II-B running example end to end:
// Ann, a video game store owner, registers her inventory, designs a
// search experience around it (title/producer/description search,
// media-card result layout), supplements each result with game
// reviews restricted to gamespot.com/ign.com/teamxbox.com and with
// her real-time pricing/in-stock service, publishes to her site and
// Facebook, serves customers, and pulls her monetization reports.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/engine"
	"repro/internal/runtime"
)

func main() {
	p := core.New(core.Config{Seed: 1, ClickBase: "http://symphony.example/click"})
	sc, err := demo.GamerQueen(p, 1, 10)
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Close()

	fmt.Println("Published apps:", p.Registry.List())
	fmt.Println("Facebook installs:", p.Facebook.Installed())
	fmt.Println()

	// Customers search the GamerQueen site; the embedded JavaScript
	// forwards each query to Symphony (Fig 2).
	customers := []string{"carol", "dave", "erin"}
	for i, title := range sc.Titles[:3] {
		resp, err := p.Query(context.Background(), "gamerqueen", runtime.Query{
			Text:     title,
			Customer: customers[i%len(customers)],
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %q -> %d results in %s\n", title, len(resp.Blocks[0].Items), resp.Trace.Total.Round(1000))
		if len(resp.Blocks[0].Items) > 0 {
			top := resp.Blocks[0].Items[0]
			fmt.Printf("  top: %s\n", top["title"])
			for suppID, items := range resp.Blocks[0].SupplementalByItem[0] {
				fmt.Printf("  %s: %d supplemental items\n", suppID, len(items))
			}
		}
		// Customers click through to a review.
		p.RecordClick("gamerqueen", "http://ign.com/web/some-review", customers[i%len(customers)])
	}

	// Ann previews how the crowd sees her niche on the general engine:
	// one Query call renders a full results page — ranked hits, total
	// match count and the per-site facet sidebar — through one
	// request-scoped statistics session instead of three index passes.
	page, err := p.Engine.Query(context.Background(), engine.Request{Query: sc.Titles[0] + " review", Limit: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nweb results page for %q: %d of %d total hits\n", sc.Titles[0]+" review", len(page.Results), page.Total)
	for _, f := range page.SiteFacets[:min(3, len(page.SiteFacets))] {
		fmt.Printf("  site facet: %-24s %d\n", f.Value, f.N)
	}

	// One customer clicks the sponsored listing: the advertiser is
	// billed and Ann is credited her revenue share automatically.
	sels := p.Ads.Select(sc.Titles[0], 1)
	if len(sels) > 0 {
		credit := p.RecordAdClick("gamerqueen", sels[0], "carol")
		fmt.Printf("\nad click: advertiser billed $%.2f, Ann credited $%.2f\n", sels[0].ClickCPC, credit)
	}

	// Ann downloads her traffic summary (§II-A Monetization).
	s := p.TrafficSummary("gamerqueen")
	fmt.Printf("\n=== GamerQueen traffic summary ===\n")
	fmt.Printf("queries=%d clicks=%d adClicks=%d CTR=%.2f revenue=$%.2f uniqueUsers=%d\n",
		s.Queries, s.Clicks, s.AdClicks, s.CTR, s.Revenue, s.UniqueUsers)
	fmt.Println("referral audit (clicks per destination site):")
	for _, c := range p.Log.ReferralReport("gamerqueen") {
		fmt.Printf("  %4d  %s\n", c.N, c.Label)
	}
}
