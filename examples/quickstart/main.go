// Quickstart: the smallest useful Symphony application — upload a
// tiny catalog, design a search app around it with one web-search
// supplemental, publish, and run a query.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/runtime"
)

func main() {
	// A platform over a deterministic synthetic web.
	p := core.New(core.Config{Seed: 1})

	// 1. Register and upload proprietary data (CSV, schema inferred).
	if err := p.RegisterDesigner("me", "myshop"); err != nil {
		log.Fatal(err)
	}
	csv := "sku,title,description\n" +
		"A1,Galaxy Racer,fast space racing game\n" +
		"A2,Dragon Quest,classic roleplaying adventure\n"
	if _, err := p.Upload(ingest.Options{
		Tenant: "myshop", Actor: "me", Dataset: "catalog",
		Format: ingest.FormatCSV, KeyField: "sku",
	}, strings.NewReader(csv)); err != nil {
		log.Fatal(err)
	}

	// 2. Design the app: catalog primary + web reviews supplemental.
	d := p.NewApp("myshop", "My Shop", "me", "myshop")
	d.DropPrimary(app.SourceConfig{ID: "catalog", Kind: app.KindProprietary, Dataset: "catalog", MaxResults: 5})
	d.SetSearchFields("catalog", "title", "description")
	d.UseTemplate("catalog", "title-link", map[string]string{"title": "title", "url": "sku"})
	d.DropSupplemental("catalog", app.SourceConfig{ID: "reviews", Kind: app.KindWebSearch, MaxResults: 2})
	d.SetDriveFields("reviews", "{title} review", "title")
	d.UseTemplate("reviews", "headline-snippet", map[string]string{"title": "title", "url": "url", "snippet": "snippet"})
	a, err := d.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Publish and get the embed snippet for your site.
	embed, err := p.Publish(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Paste this into your web page:")
	fmt.Println(embed.Snippet)
	fmt.Println()

	// 4. A visitor searches.
	resp, err := p.Query(context.Background(), "myshop", runtime.Query{Text: "dragon"})
	if err != nil {
		log.Fatal(err)
	}
	for _, item := range resp.Blocks[0].Items {
		fmt.Println("result:", item["title"])
	}
	fmt.Printf("rendered HTML: %d bytes, pipeline: %s\n", len(resp.HTML), resp.Trace.Total.Round(1000))
}
