// WineFinder builds §I's wine connoisseur application: Claire embeds
// a specialized wine search on her site that combines her cellar
// notes with targeted web results, monetizes it with sponsored
// listings, and uses Site Suggest to grow her restriction list.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/runtime"
	"repro/internal/store"
	"repro/internal/structured"
	"repro/internal/webcorpus"
)

func main() {
	p := core.New(core.Config{Seed: 1})
	sc, err := demo.WineFinder(p, 1, 12)
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Close()

	// A visitor searches Claire's vertical.
	resp, err := p.Query(context.Background(), "winefinder", runtime.Query{Text: sc.Titles[0], Customer: "v1"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q\n", sc.Titles[0])
	for _, item := range resp.Blocks[0].Items {
		fmt.Printf("  cellar: %s (%s, rating %s)\n", item["name"], item["region"], item["rating"])
	}
	if len(resp.Blocks[0].Items) > 0 {
		for suppID, items := range resp.Blocks[0].SupplementalByItem[0] {
			fmt.Printf("  %s: %d items\n", suppID, len(items))
		}
	}

	// Richer structured querying over her cellar (future work §IV).
	ds, err := p.Store.DatasetContext(context.Background(), "winefinder", "claire", "cellar", store.PermRead)
	if err != nil {
		log.Fatal(err)
	}
	hits, err := structured.Apply(context.Background(), ds, "rating:>=95 sort:-rating", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-rated cellar wines (rating:>=95 sort:-rating):")
	for _, h := range hits {
		fmt.Printf("  %s  rating=%s\n", h.Record["name"], h.Record["rating"])
	}

	// Site Suggest: Claire seeds two wine sites; the crowd's clicks
	// suggest more (§II-A, built-in services).
	demo.SeedEngineClicks(p, webcorpus.TopicWine, 8)
	fmt.Println("\nsites related to winespectator.example + vinous.example:")
	for _, sg := range p.SiteSuggest([]string{"winespectator.example", "vinous.example"}, 4) {
		fmt.Printf("  %.3f  %s\n", sg.Score, sg.Site)
	}

	// Sponsored listing revenue.
	sels := p.Ads.Select(sc.Titles[0], 1)
	if len(sels) > 0 {
		credit := p.RecordAdClick("winefinder", sels[0], "v1")
		fmt.Printf("\nClaire earned $%.2f from one sponsored click (voluntary revenue share)\n", credit)
	}
	s := p.TrafficSummary("winefinder")
	fmt.Printf("summary: queries=%d adclicks=%d revenue=$%.2f\n", s.Queries, s.AdClicks, s.Revenue)
}
