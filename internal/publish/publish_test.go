package publish

import (
	"strings"
	"testing"

	"repro/internal/app"
)

func validApp(t testing.TB) *app.Application {
	t.Helper()
	d := app.NewDesigner("shop", "Shop", "ann", "shop")
	d.DropPrimary(app.SourceConfig{ID: "p", Kind: app.KindWebSearch})
	a, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestForWeb(t *testing.T) {
	e, err := ForWeb("http://base.example", validApp(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Snippet, "embed.js?app=shop") {
		t.Errorf("snippet = %s", e.Snippet)
	}
	if !strings.Contains(e.Loader, "symphonySearch") {
		t.Error("loader missing function")
	}
	if _, err := ForWeb("http://b.example", &app.Application{}); err == nil {
		t.Error("invalid app embedded")
	}
}

func TestSocialPlatformInstall(t *testing.T) {
	fb := NewSocialPlatform("facebook")
	a := validApp(t)
	m, err := fb.Install("http://base.example", a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.CanvasURL, "facebook.example/canvas/shop") {
		t.Errorf("canvas = %s", m.CanvasURL)
	}
	if m.Owner != "ann" || m.DisplayName != "Shop" {
		t.Errorf("manifest = %+v", m)
	}
	if got := fb.Installed(); len(got) != 1 || got[0] != "shop" {
		t.Fatalf("installed = %v", got)
	}
	if _, ok := fb.Manifest("shop"); !ok {
		t.Error("manifest lookup failed")
	}
	if !fb.Uninstall("shop") || fb.Uninstall("shop") {
		t.Error("uninstall semantics")
	}
	if _, err := fb.Install("http://b.example", &app.Application{}); err == nil {
		t.Error("invalid app installed")
	}
}

func TestDistribute(t *testing.T) {
	fb := NewSocialPlatform("facebook")
	a := validApp(t)
	embed, err := Distribute("http://base.example", a, fb, TargetWeb, TargetFacebook)
	if err != nil {
		t.Fatal(err)
	}
	if embed == nil || embed.AppID != "shop" {
		t.Fatal("no web embed returned")
	}
	if len(fb.Installed()) != 1 {
		t.Error("facebook install missing")
	}
	if len(a.Published) != 2 {
		t.Fatalf("published = %v", a.Published)
	}
	// Re-distribution does not duplicate targets.
	if _, err := Distribute("http://base.example", a, fb, TargetWeb); err != nil {
		t.Fatal(err)
	}
	if len(a.Published) != 2 {
		t.Errorf("published duplicated: %v", a.Published)
	}
}

func TestDistributeErrors(t *testing.T) {
	a := validApp(t)
	if _, err := Distribute("http://b.example", a, nil, TargetFacebook); err == nil {
		t.Error("facebook without platform accepted")
	}
	if _, err := Distribute("http://b.example", a, nil, Target("myspace")); err == nil {
		t.Error("unknown target accepted")
	}
}
