// Package publish implements distribution (§II-A): embedding an
// application into the designer's own site via auto-generated
// JavaScript/HTML snippets, and publishing to social networking
// platforms (Facebook in the paper, simulated here by a platform
// registry that accepts app manifests).
package publish

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/app"
	"repro/internal/host"
)

// Target is a distribution channel.
type Target string

// Distribution targets from the paper: the designer's own web site
// (embed snippet) and social platforms.
const (
	TargetWeb      Target = "web"
	TargetFacebook Target = "facebook"
)

// WebEmbed is the copy-paste deployment package for a designer's own
// site.
type WebEmbed struct {
	AppID   string
	Snippet string
	Loader  string
}

// ForWeb produces the embed package.
func ForWeb(baseURL string, a *app.Application) (*WebEmbed, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &WebEmbed{
		AppID:   a.ID,
		Snippet: host.EmbedSnippet(baseURL, a.ID),
		Loader:  host.EmbedJS(baseURL, a.ID),
	}, nil
}

// SocialPlatform simulates an external platform (e.g. Facebook) that
// accepts application manifests. Installing returns the canvas URL a
// platform user would visit; rendering still happens on Symphony
// (the paper's hosting promise).
type SocialPlatform struct {
	Name string

	mu       sync.Mutex
	installs map[string]Manifest
}

// Manifest is the listing a platform shows for an installed app.
type Manifest struct {
	AppID       string
	DisplayName string
	CanvasURL   string
	Owner       string
}

// NewSocialPlatform creates a platform simulation.
func NewSocialPlatform(name string) *SocialPlatform {
	return &SocialPlatform{Name: name, installs: make(map[string]Manifest)}
}

// Install publishes an app to the platform.
func (p *SocialPlatform) Install(baseURL string, a *app.Application) (Manifest, error) {
	if err := a.Validate(); err != nil {
		return Manifest{}, err
	}
	m := Manifest{
		AppID:       a.ID,
		DisplayName: a.Name,
		Owner:       a.Owner,
		CanvasURL:   fmt.Sprintf("https://%s.example/canvas/%s?backend=%s", p.Name, a.ID, baseURL),
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.installs[a.ID] = m
	return m, nil
}

// Uninstall removes an app from the platform.
func (p *SocialPlatform) Uninstall(appID string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.installs[appID]; !ok {
		return false
	}
	delete(p.installs, appID)
	return true
}

// Installed lists installed app IDs, sorted.
func (p *SocialPlatform) Installed() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.installs))
	for id := range p.installs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Manifest returns the manifest for an installed app.
func (p *SocialPlatform) Manifest(appID string) (Manifest, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.installs[appID]
	return m, ok
}

// Distribute publishes the app to the given targets, recording them
// on the application, and returns the web embed when requested.
func Distribute(baseURL string, a *app.Application, fb *SocialPlatform, targets ...Target) (*WebEmbed, error) {
	var embed *WebEmbed
	for _, t := range targets {
		switch t {
		case TargetWeb:
			e, err := ForWeb(baseURL, a)
			if err != nil {
				return nil, err
			}
			embed = e
		case TargetFacebook:
			if fb == nil {
				return nil, fmt.Errorf("publish: no social platform configured")
			}
			if _, err := fb.Install(baseURL, a); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("publish: unknown target %q", t)
		}
		a.Published = appendUnique(a.Published, string(t))
	}
	return embed, nil
}

func appendUnique(list []string, v string) []string {
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}
