//go:build linux

package mmapio

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// openFile maps the open file read-only. If the kernel refuses the
// mapping (exotic filesystems, locked-down containers) it falls back
// to the heap path so callers still boot, just without the zero-copy
// win.
func openFile(f *os.File, size int) (*Mapping, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return readFile(f, size)
	}
	return &Mapping{data: data, mapped: true}, nil
}

func unmap(data []byte) error {
	if err := syscall.Munmap(data); err != nil {
		return fmt.Errorf("mmapio: munmap: %w", err)
	}
	return nil
}

// readFile is the heap fallback: one exact-size read.
func readFile(f *os.File, size int) (*Mapping, error) {
	buf := make([]byte, size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("mmapio: read %s: %w", f.Name(), err)
	}
	return &Mapping{data: buf, mapped: false}, nil
}
