//go:build !linux

package mmapio

import (
	"fmt"
	"io"
	"os"
)

// openFile on non-Linux platforms reads the file into a heap buffer.
// The view semantics are identical; only the residency differs.
func openFile(f *os.File, size int) (*Mapping, error) {
	buf := make([]byte, size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("mmapio: read %s: %w", f.Name(), err)
	}
	return &Mapping{data: buf, mapped: false}, nil
}

func unmap(data []byte) error { return nil }
