// Package mmapio maps files read-only into memory so large immutable
// artifacts (index snapshots) can be served as views over the page
// cache instead of being copied onto the Go heap.
//
// On Linux the mapping is a real mmap(2); elsewhere Open falls back to
// reading the file into a heap buffer behind the same API, so callers
// never branch on platform.
//
// Lifetime contract: a Mapping is never unmapped while any subslice of
// Data() may still be reachable. Go slices do not keep the mapping
// alive for the runtime — a []byte view into munmap'd memory faults on
// first touch — so the safe discipline for a serving process is to
// keep mappings open until process exit. Close exists for callers that
// can prove no views escaped (tests, failed attaches); production code
// paths deliberately leak mappings instead.
package mmapio

import (
	"fmt"
	"os"
)

// Mapping is a read-only byte view over a file. The zero value is not
// usable; obtain one from Open or FromBytes.
type Mapping struct {
	data   []byte
	mapped bool // true when data is mmap-backed (unmappable), false when heap
	closed bool
}

// Data returns the mapped bytes. The slice must be treated as
// immutable: on Linux it points at PROT_READ pages and any write
// faults the process.
func (m *Mapping) Data() []byte { return m.data }

// Mapped reports whether the bytes live in a real memory mapping
// (true) or a heap fallback buffer (false).
func (m *Mapping) Mapped() bool { return m.mapped }

// Len returns the mapping's size in bytes.
func (m *Mapping) Len() int { return len(m.data) }

// Close releases the mapping. Only call it when no subslice of Data
// can still be referenced anywhere — see the package comment. Closing
// a heap-backed mapping just drops the buffer. Close is not safe to
// call concurrently with readers.
func (m *Mapping) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	data := m.data
	m.data = nil
	if !m.mapped {
		return nil
	}
	return unmap(data)
}

// FromBytes wraps an existing heap buffer in the Mapping API, for
// tests and for code paths that want one representation for "attached
// view" regardless of where the bytes came from.
func FromBytes(b []byte) *Mapping {
	return &Mapping{data: b, mapped: false}
}

// Open maps path read-only. An empty file yields an empty, valid
// mapping. The returned Mapping holds no open file descriptor — the
// kernel keeps mmap'd pages alive without one, and the heap fallback
// reads the file eagerly.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("mmapio: stat %s: %w", path, err)
	}
	size := fi.Size()
	if size == 0 {
		return &Mapping{data: nil, mapped: false}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapio: %s: %d bytes exceeds address space", path, size)
	}
	return openFile(f, int(size))
}
