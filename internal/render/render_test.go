package render

import (
	"strings"
	"testing"

	"repro/internal/layout"
	"repro/internal/source"
)

func card() *layout.Element {
	root := &layout.Element{Type: layout.ElemContainer}
	root.Append(
		&layout.Element{Type: layout.ElemLink, Field: "title", HrefField: "url"},
		&layout.Element{Type: layout.ElemImage, Field: "image"},
		&layout.Element{Type: layout.ElemText, Field: "description"},
	)
	return root
}

func item() source.Item {
	return source.Item{
		"title":       "Legend of Zelda",
		"url":         "http://shop.example/zelda",
		"image":       "http://img.example/zelda.png",
		"description": "An adventure game",
	}
}

func TestItemRendersBindings(t *testing.T) {
	r := &Renderer{}
	html := r.Item(card(), item(), nil)
	for _, want := range []string{
		`<a href="http://shop.example/zelda">Legend of Zelda</a>`,
		`<img src="http://img.example/zelda.png"`,
		`<span>An adventure game</span>`,
	} {
		if !strings.Contains(html, want) {
			t.Errorf("missing %q in %s", want, html)
		}
	}
}

func TestEscaping(t *testing.T) {
	r := &Renderer{}
	evil := source.Item{
		"title":       `<script>alert(1)</script>`,
		"url":         `javascript:alert(1)`,
		"image":       `data:text/html,x`,
		"description": `"quoted" & <tagged>`,
	}
	html := r.Item(card(), evil, nil)
	if strings.Contains(html, "<script>") {
		t.Error("script tag not escaped")
	}
	if strings.Contains(html, "javascript:") {
		t.Error("javascript: URL survived")
	}
	if strings.Contains(html, "data:") {
		t.Error("data: URL survived")
	}
	if !strings.Contains(html, "&lt;tagged&gt;") {
		t.Error("text not escaped")
	}
}

func TestSafeURL(t *testing.T) {
	cases := map[string]string{
		"http://a.example/x":  "http://a.example/x",
		"https://a.example":   "https://a.example",
		"ftp://files.example": "ftp://files.example",
		"/relative/path":      "/relative/path",
		"javascript:alert(1)": "#",
		"data:text/html":      "#",
		"  http://b.example":  "http://b.example",
		"":                    "",
	}
	for in, want := range cases {
		if got := SafeURL(in); got != want {
			t.Errorf("SafeURL(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLiteralFallback(t *testing.T) {
	r := &Renderer{}
	el := &layout.Element{Type: layout.ElemText, Field: "missing", Literal: "default text"}
	html := r.Item(el, source.Item{}, nil)
	if !strings.Contains(html, "default text") {
		t.Errorf("literal fallback missing: %s", html)
	}
}

func TestNilLayoutFallsBackToFieldDump(t *testing.T) {
	r := &Renderer{}
	html := r.Item(nil, source.Item{"title": "X", "_score": "1.0"}, nil)
	if !strings.Contains(html, "<dl") || !strings.Contains(html, "X") {
		t.Errorf("fallback dump wrong: %s", html)
	}
	if strings.Contains(html, "_score") {
		t.Error("internal fields leaked into fallback")
	}
}

func TestStyleRendering(t *testing.T) {
	r := &Renderer{}
	el := (&layout.Element{Type: layout.ElemText, Field: "title"}).SetStyle("color", "red")
	html := r.Item(el, item(), nil)
	if !strings.Contains(html, `style="color:red"`) {
		t.Errorf("style missing: %s", html)
	}
}

func TestStylesheetApplied(t *testing.T) {
	r := &Renderer{Stylesheet: &layout.Stylesheet{Rules: map[string]map[string]string{
		"text": {"font-size": "12px"},
	}}}
	el := &layout.Element{Type: layout.ElemText, Field: "title"}
	html := r.Item(el, item(), nil)
	if !strings.Contains(html, "font-size:12px") {
		t.Errorf("stylesheet not applied: %s", html)
	}
}

func TestClickWrapping(t *testing.T) {
	r := &Renderer{ClickBase: "http://symphony.example/click", AppID: "shop app"}
	html := r.Item(card(), item(), nil)
	if !strings.Contains(html, "http://symphony.example/click?app=shop+app&amp;url=http%3A%2F%2Fshop.example%2Fzelda") {
		t.Errorf("click wrapping wrong: %s", html)
	}
}

func TestSourceSlotInjectsSupplementalHTML(t *testing.T) {
	r := &Renderer{}
	tree := card()
	tree.Append(&layout.Element{Type: layout.ElemSourceSlot, SourceID: "reviews"})
	html := r.Item(tree, item(), map[string]string{"reviews": "<em>review list</em>"})
	if !strings.Contains(html, `data-source="reviews"`) || !strings.Contains(html, "<em>review list</em>") {
		t.Errorf("slot injection wrong: %s", html)
	}
}

func TestList(t *testing.T) {
	r := &Renderer{}
	items := []source.Item{item(), item()}
	html := r.List(card(), items, nil)
	if strings.Count(html, "Legend of Zelda") != 2 {
		t.Errorf("list did not render both items: %s", html)
	}
	if !strings.HasPrefix(html, `<div class="sym-results">`) {
		t.Error("list wrapper missing")
	}
}

func TestPage(t *testing.T) {
	html := Page("myapp", []string{"<p>a</p>", "<p>b</p>"})
	if !strings.Contains(html, `data-app="myapp"`) || !strings.Contains(html, "<p>a</p><p>b</p>") {
		t.Errorf("page = %s", html)
	}
}
