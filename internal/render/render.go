// Package render turns result items and layout trees into the HTML
// fragment Symphony sends back to the embedded JavaScript (Fig 2:
// "merged ... and formatted into HTML, applying any configured layout
// and presentation details").
//
// All field values are HTML-escaped; URLs additionally pass a scheme
// allowlist so a hostile record cannot inject javascript: links into
// a hosted application.
package render

import (
	"html"
	"net/url"
	"strings"

	"repro/internal/layout"
	"repro/internal/source"
)

// Renderer renders items under an optional stylesheet.
type Renderer struct {
	Stylesheet *layout.Stylesheet
	// ClickBase, when set, wraps outbound hrefs in the hosting click
	// redirect (/click?app=...&url=...) so interactions are logged
	// for monetization. Empty renders direct links.
	ClickBase string
	AppID     string
}

// Item renders one result item through a layout tree. A nil layout
// falls back to a definition-list dump of the item's fields, which is
// what the design GUI shows before a layout is configured.
func (r *Renderer) Item(el *layout.Element, item source.Item, supplementalHTML map[string]string) string {
	var b strings.Builder
	if el == nil {
		r.fallback(&b, item)
		return b.String()
	}
	r.render(&b, el, item, supplementalHTML)
	return b.String()
}

func (r *Renderer) fallback(b *strings.Builder, item source.Item) {
	b.WriteString(`<dl class="sym-item">`)
	for _, k := range sortedKeys(item) {
		if strings.HasPrefix(k, "_") {
			continue
		}
		b.WriteString("<dt>")
		b.WriteString(html.EscapeString(k))
		b.WriteString("</dt><dd>")
		b.WriteString(html.EscapeString(item[k]))
		b.WriteString("</dd>")
	}
	b.WriteString("</dl>")
}

func sortedKeys(item source.Item) []string {
	keys := make([]string, 0, len(item))
	for k := range item {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}

func (r *Renderer) render(b *strings.Builder, el *layout.Element, item source.Item, supp map[string]string) {
	style := layout.StyleAttr(r.Stylesheet.Resolve(el))
	attr := ""
	if style != "" {
		attr = ` style="` + html.EscapeString(style) + `"`
	}
	switch el.Type {
	case layout.ElemContainer:
		b.WriteString("<div" + attr + ">")
		for _, c := range el.Children {
			r.render(b, c, item, supp)
		}
		b.WriteString("</div>")
	case layout.ElemText:
		b.WriteString("<span" + attr + ">")
		b.WriteString(html.EscapeString(r.content(el, item)))
		b.WriteString("</span>")
	case layout.ElemImage:
		src := SafeURL(item[el.Field])
		b.WriteString(`<img` + attr + ` src="` + html.EscapeString(src) + `" alt=""/>`)
	case layout.ElemLink:
		href := r.href(SafeURL(item[el.HrefField]))
		b.WriteString(`<a` + attr + ` href="` + html.EscapeString(href) + `">`)
		b.WriteString(html.EscapeString(r.content(el, item)))
		b.WriteString("</a>")
	case layout.ElemSourceSlot:
		b.WriteString(`<div class="sym-supplemental" data-source="` + html.EscapeString(el.SourceID) + `">`)
		b.WriteString(supp[el.SourceID]) // already-rendered safe HTML
		b.WriteString("</div>")
	}
}

func (r *Renderer) content(el *layout.Element, item source.Item) string {
	if el.Field != "" {
		if v := item[el.Field]; v != "" {
			return v
		}
	}
	return el.Literal
}

// href routes through the click logger when configured.
func (r *Renderer) href(target string) string {
	if r.ClickBase == "" || target == "" {
		return target
	}
	return r.ClickBase + "?app=" + url.QueryEscape(r.AppID) + "&url=" + url.QueryEscape(target)
}

// SafeURL allows http, https and ftp URLs plus rooted paths; anything
// else (javascript:, data:) collapses to "#".
func SafeURL(u string) string {
	lower := strings.ToLower(strings.TrimSpace(u))
	switch {
	case lower == "":
		return ""
	case strings.HasPrefix(lower, "http://"),
		strings.HasPrefix(lower, "https://"),
		strings.HasPrefix(lower, "ftp://"),
		strings.HasPrefix(lower, "/"):
		return strings.TrimSpace(u)
	}
	return "#"
}

// List renders a list of items, each through the same layout.
func (r *Renderer) List(el *layout.Element, items []source.Item, suppByItem []map[string]string) string {
	var b strings.Builder
	b.WriteString(`<div class="sym-results">`)
	for i, item := range items {
		var supp map[string]string
		if i < len(suppByItem) {
			supp = suppByItem[i]
		}
		b.WriteString(r.Item(el, item, supp))
	}
	b.WriteString("</div>")
	return b.String()
}

// Page wraps rendered source blocks into the application response
// fragment injected by the embed JavaScript.
func Page(appID string, blocks []string) string {
	var b strings.Builder
	b.WriteString(`<div class="symphony-app" data-app="` + html.EscapeString(appID) + `">`)
	for _, blk := range blocks {
		b.WriteString(blk)
	}
	b.WriteString("</div>")
	return b.String()
}
