package workload

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"
)

// Class is one tenant class in a closed-loop serving benchmark: a set
// of workers replaying a Zipf query stream against one hosted app.
// Offered load is closed-loop — each worker issues its next request
// only after the previous one completes — so concurrency, not an open
// arrival rate, is the knob (matching how embedded search widgets
// actually drive a hosted platform: one in-flight query per visitor).
type Class struct {
	// Name keys the class in the report ("light", "heavy", ...).
	Name string
	// App is the published application to query.
	App string
	// Workers is the closed-loop concurrency.
	Workers int
	// Requests is the total request budget across the class's workers.
	Requests int
	// Seed drives this class's query stream (offset per worker so
	// workers do not replay identical sequences in lockstep).
	Seed int64
	// ShedBackoff is how long a worker pauses after a 429 before
	// retrying. Zero means no pause: a shed storm from a greedy
	// client. Well-behaved clients honor Retry-After; a bench client
	// uses a small fixed pause so the run finishes.
	ShedBackoff time.Duration
	// Think is the mean pause between consecutive requests of one
	// worker, independent of outcome — the time a real visitor spends
	// reading a results page. Zero means the worker re-requests
	// immediately. Workers stagger their start across one think
	// interval and jitter each pause by ±50% (deterministically, from
	// Seed), so a large worker pool models independent visitors
	// instead of a phase-locked arrival wave.
	Think time.Duration
}

// ClassReport summarizes one class's outcomes. Latency percentiles
// cover successful (200) requests only: a shed 429 in microseconds
// must not flatter the latency distribution.
type ClassReport struct {
	Class    string  `json:"class"`
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`     // 429: admission control
	Deadline int     `json:"deadline"` // 504: query or queue timeout
	Errors   int     `json:"errors"`   // anything else
	P50Ms    float64 `json:"p50Ms"`
	P95Ms    float64 `json:"p95Ms"`
	P99Ms    float64 `json:"p99Ms"`
	MeanMs   float64 `json:"meanMs"`
	// QPS is completed requests (any status) per wall second: the
	// class's achieved closed-loop throughput.
	QPS float64 `json:"qps"`
}

// Report is one harness run.
type Report struct {
	Classes []ClassReport `json:"classes"`
	WallMs  float64       `json:"wallMs"`
}

// HarnessConfig shapes one closed-loop run against a serving endpoint.
type HarnessConfig struct {
	// BaseURL is the serving host, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Classes run concurrently; the run ends when every class
	// exhausts its request budget (or ctx ends).
	Classes []Class
	// Client overrides the HTTP client (nil = a fresh one with
	// per-class connection reuse).
	Client *http.Client
}

// Run drives every class against the endpoint and reports per-class
// latency and outcome counts. Cancelling ctx stops workers at their
// next request boundary; the report covers what completed.
func Run(ctx context.Context, cfg HarnessConfig) (Report, error) {
	if cfg.BaseURL == "" {
		return Report{}, fmt.Errorf("workload: harness needs a BaseURL")
	}
	if len(cfg.Classes) == 0 {
		return Report{}, fmt.Errorf("workload: harness needs at least one class")
	}
	client := cfg.Client
	if client == nil {
		// The default transport keeps only two idle connections per
		// host; a few hundred closed-loop workers would then redial on
		// nearly every request and the connection churn — not the
		// server — would dominate tail latency. Size the pool to the
		// worker count.
		workers := 0
		for _, c := range cfg.Classes {
			if c.Workers > 0 {
				workers += c.Workers
			} else {
				workers++
			}
		}
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        workers,
			MaxIdleConnsPerHost: workers,
		}}
	}

	type sample struct {
		status int
		d      time.Duration
	}
	results := make([][]sample, len(cfg.Classes))
	start := time.Now()

	var wg sync.WaitGroup
	for ci := range cfg.Classes {
		c := cfg.Classes[ci]
		if c.Workers <= 0 {
			c.Workers = 1
		}
		mu := &sync.Mutex{}
		// Workers draw from one shared budget so Requests bounds the
		// class exactly regardless of worker count.
		budget := c.Requests
		take := func() bool {
			mu.Lock()
			defer mu.Unlock()
			if budget <= 0 {
				return false
			}
			budget--
			return true
		}
		var cmu sync.Mutex
		for w := 0; w < c.Workers; w++ {
			wg.Add(1)
			stream := New(Config{Seed: c.Seed + int64(w)*7919})
			jitter := rand.New(rand.NewSource(c.Seed + int64(w)*104729))
			stagger := time.Duration(0)
			if c.Think > 0 && c.Workers > 1 {
				stagger = c.Think * time.Duration(w) / time.Duration(c.Workers)
			}
			go func(ci int, c Class, stream *Stream, jitter *rand.Rand, stagger time.Duration) {
				defer wg.Done()
				if stagger > 0 {
					select {
					case <-time.After(stagger):
					case <-ctx.Done():
						return
					}
				}
				for take() {
					if ctx.Err() != nil {
						return
					}
					q := stream.Next()
					u := fmt.Sprintf("%s/query?app=%s&q=%s", cfg.BaseURL,
						url.QueryEscape(c.App), url.QueryEscape(q))
					t0 := time.Now()
					req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
					if err != nil {
						continue
					}
					resp, err := client.Do(req)
					d := time.Since(t0)
					status := 0
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						status = resp.StatusCode
					}
					cmu.Lock()
					results[ci] = append(results[ci], sample{status: status, d: d})
					cmu.Unlock()
					pause := c.Think
					if pause > 0 {
						// ±50% jitter keeps a worker pool from
						// re-synchronizing into arrival waves.
						pause = pause/2 + time.Duration(jitter.Int63n(int64(pause)))
					}
					if status == http.StatusTooManyRequests {
						pause += c.ShedBackoff
					}
					if pause > 0 {
						select {
						case <-time.After(pause):
						case <-ctx.Done():
							return
						}
					}
				}
			}(ci, c, stream, jitter, stagger)
		}
	}
	wg.Wait()
	wall := time.Since(start)

	rep := Report{WallMs: float64(wall.Microseconds()) / 1000}
	for ci, c := range cfg.Classes {
		cr := ClassReport{Class: c.Name, Requests: len(results[ci])}
		var okLat []time.Duration
		var sum time.Duration
		for _, s := range results[ci] {
			switch s.status {
			case http.StatusOK:
				cr.OK++
				okLat = append(okLat, s.d)
				sum += s.d
			case http.StatusTooManyRequests:
				cr.Shed++
			case http.StatusGatewayTimeout:
				cr.Deadline++
			default:
				cr.Errors++
			}
		}
		if len(okLat) > 0 {
			sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
			cr.P50Ms = ms(percentile(okLat, 0.50))
			cr.P95Ms = ms(percentile(okLat, 0.95))
			cr.P99Ms = ms(percentile(okLat, 0.99))
			cr.MeanMs = ms(sum / time.Duration(len(okLat)))
		}
		if wall > 0 {
			cr.QPS = float64(cr.Requests) / wall.Seconds()
		}
		rep.Classes = append(rep.Classes, cr)
	}
	return rep, nil
}

// percentile returns the p-quantile of sorted latencies by
// nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// ClassByName finds a class report.
func (r Report) ClassByName(name string) (ClassReport, bool) {
	for _, c := range r.Classes {
		if c.Class == name {
			return c, true
		}
	}
	return ClassReport{}, false
}
