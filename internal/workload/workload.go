// Package workload generates deterministic query streams for the
// benchmark harness. Real search traffic is heavy-tailed, so the
// generator draws queries Zipf-distributed over a vocabulary of
// catalog entities and topical modifiers; benches replay the same
// stream across configurations for a fair comparison.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/webcorpus"
)

// Config shapes a query stream.
type Config struct {
	Seed int64
	// Topic selects the entity vocabulary (default games).
	Topic webcorpus.Topic
	// Entities bounds the vocabulary (default 50).
	Entities int
	// ZipfS is the skew parameter (>1; default 1.2). Larger means a
	// heavier head.
	ZipfS float64
	// ModifierRate is the probability a query carries a modifier
	// ("review", "trailer", ...). Default 0.5.
	ModifierRate float64
}

var modifiers = []string{"review", "trailer", "news", "guide", "price", "screenshots"}

// Stream is a reproducible query sequence.
type Stream struct {
	rng      *rand.Rand
	zipf     *rand.Zipf
	entities []string
	modRate  float64
}

// New builds a stream.
func New(cfg Config) *Stream {
	if cfg.Topic == "" {
		cfg.Topic = webcorpus.TopicGames
	}
	if cfg.Entities <= 0 {
		cfg.Entities = 50
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	if cfg.ModifierRate == 0 {
		cfg.ModifierRate = 0.5
	}
	ents := webcorpus.Entities(webcorpus.Config{Seed: cfg.Seed}, cfg.Topic)
	if cfg.Entities < len(ents) {
		ents = ents[:cfg.Entities]
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Stream{
		rng:      rng,
		zipf:     rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(ents)-1)),
		entities: ents,
		modRate:  cfg.ModifierRate,
	}
}

// Next returns the next query in the stream.
func (s *Stream) Next() string {
	q := s.entities[int(s.zipf.Uint64())]
	if s.rng.Float64() < s.modRate {
		q += " " + modifiers[s.rng.Intn(len(modifiers))]
	}
	return q
}

// Take returns the next n queries.
func (s *Stream) Take(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// ClickStream pairs queries with clicked sites for analytics and
// Site Suggest benches: each query clicks one of the topical sites,
// biased by a per-site preference so co-visitation structure exists.
type ClickEvent struct {
	Query string
	Site  string
	URL   string
}

// Clicks generates n click events over the topic's sites.
func Clicks(cfg Config, n int) []ClickEvent {
	if cfg.Topic == "" {
		cfg.Topic = webcorpus.TopicGames
	}
	s := New(cfg)
	sites := webcorpus.SitesForTopic(cfg.Topic)
	out := make([]ClickEvent, n)
	for i := range out {
		q := s.Next()
		site := sites[int(s.zipf.Uint64())%len(sites)]
		out[i] = ClickEvent{
			Query: q,
			Site:  site,
			URL:   fmt.Sprintf("http://%s/page-%d", site, i%97),
		}
	}
	return out
}
