package workload

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestHarnessClosedLoop(t *testing.T) {
	var hits int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&hits, 1)
		switch r.URL.Query().Get("app") {
		case "ok":
			w.Write([]byte("<div/>"))
		case "shed":
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shed", http.StatusTooManyRequests)
		case "slow":
			http.Error(w, "deadline", http.StatusGatewayTimeout)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), HarnessConfig{
		BaseURL: srv.URL,
		Classes: []Class{
			{Name: "good", App: "ok", Workers: 3, Requests: 30, Seed: 1},
			{Name: "throttled", App: "shed", Workers: 2, Requests: 10, Seed: 2},
			{Name: "timingout", App: "slow", Workers: 1, Requests: 5, Seed: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	good, ok := rep.ClassByName("good")
	if !ok || good.OK != 30 || good.Shed != 0 {
		t.Fatalf("good = %+v", good)
	}
	if good.P50Ms <= 0 || good.P99Ms < good.P50Ms {
		t.Fatalf("good percentiles = %+v", good)
	}
	throttled, _ := rep.ClassByName("throttled")
	if throttled.Shed != 10 || throttled.OK != 0 {
		t.Fatalf("throttled = %+v", throttled)
	}
	slow, _ := rep.ClassByName("timingout")
	if slow.Deadline != 5 {
		t.Fatalf("timingout = %+v", slow)
	}
	if got := atomic.LoadInt64(&hits); got != 45 {
		t.Fatalf("total requests = %d, want 45 (budgets are exact)", got)
	}
	if rep.WallMs <= 0 {
		t.Fatal("no wall time measured")
	}
}

func TestHarnessRespectsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, HarnessConfig{
		BaseURL: srv.URL,
		Classes: []Class{{Name: "c", App: "ok", Workers: 2, Requests: 1000, Seed: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A pre-cancelled ctx stops workers at the first request boundary;
	// at most one sample per worker slips through as an error.
	if c, _ := rep.ClassByName("c"); c.OK > 0 {
		t.Fatalf("cancelled run completed requests: %+v", c)
	}
}

func TestHarnessValidation(t *testing.T) {
	if _, err := Run(context.Background(), HarnessConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(context.Background(), HarnessConfig{BaseURL: "http://x"}); err == nil {
		t.Fatal("no classes accepted")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(lat, 0.50); got != 5 {
		t.Fatalf("p50 = %d", got)
	}
	if got := percentile(lat, 0.99); got != 10 {
		t.Fatalf("p99 = %d", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %d", got)
	}
}
