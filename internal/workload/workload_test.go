package workload

import (
	"strings"
	"testing"

	"repro/internal/webcorpus"
)

func TestStreamDeterministic(t *testing.T) {
	a := New(Config{Seed: 5}).Take(100)
	b := New(Config{Seed: 5}).Take(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := New(Config{Seed: 6}).Take(100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

func TestStreamIsHeavyTailed(t *testing.T) {
	s := New(Config{Seed: 7, ZipfS: 1.5, ModifierRate: -1}) // modifiers off via negative? keep default
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[s.Next()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// The head query should dominate: far above the uniform share.
	if max < 5000/len(counts)*3 {
		t.Errorf("head count %d not heavy-tailed over %d distinct", max, len(counts))
	}
}

func TestModifiersAppear(t *testing.T) {
	s := New(Config{Seed: 8, ModifierRate: 1.0})
	qs := s.Take(50)
	for _, q := range qs {
		found := false
		for _, m := range modifiers {
			if strings.HasSuffix(q, " "+m) {
				found = true
			}
		}
		if !found {
			t.Fatalf("query %q has no modifier at rate 1.0", q)
		}
	}
}

func TestQueriesUseTopicEntities(t *testing.T) {
	s := New(Config{Seed: 9, Topic: webcorpus.TopicWine, ModifierRate: 0.0001})
	ents := map[string]bool{}
	for _, e := range webcorpus.Entities(webcorpus.Config{Seed: 9}, webcorpus.TopicWine) {
		ents[e] = true
	}
	hits := 0
	for _, q := range s.Take(100) {
		base := q
		for _, m := range modifiers {
			base = strings.TrimSuffix(base, " "+m)
		}
		if ents[base] {
			hits++
		}
	}
	if hits < 90 {
		t.Errorf("only %d/100 queries drawn from wine entities", hits)
	}
}

func TestClicks(t *testing.T) {
	evs := Clicks(Config{Seed: 10, Topic: webcorpus.TopicGames}, 500)
	if len(evs) != 500 {
		t.Fatal("wrong count")
	}
	gameSites := map[string]bool{}
	for _, s := range webcorpus.SitesForTopic(webcorpus.TopicGames) {
		gameSites[s] = true
	}
	for _, e := range evs {
		if !gameSites[e.Site] {
			t.Fatalf("click on off-topic site %s", e.Site)
		}
		if e.Query == "" || !strings.Contains(e.URL, e.Site) {
			t.Fatalf("malformed event %+v", e)
		}
	}
	// Determinism.
	evs2 := Clicks(Config{Seed: 10, Topic: webcorpus.TopicGames}, 500)
	for i := range evs {
		if evs[i] != evs2[i] {
			t.Fatal("click stream not deterministic")
		}
	}
}
