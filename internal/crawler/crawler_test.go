package crawler

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/webcorpus"
)

var corpus = webcorpus.Generate(webcorpus.Config{Seed: 21})

func seedURL(t testing.TB) string {
	t.Helper()
	for _, p := range corpus.Pages {
		if p.Vertical == webcorpus.VerticalWeb && len(p.Links) >= 2 {
			return p.URL
		}
	}
	t.Fatal("no linked web page in corpus")
	return ""
}

func TestCrawlSeedsOnly(t *testing.T) {
	url := seedURL(t)
	pages, err := Crawl(CorpusFetcher{corpus}, []string{url}, Config{MaxDepth: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 || pages[0].URL != url || pages[0].Depth != 0 {
		t.Fatalf("pages = %+v", pages)
	}
	if pages[0].Title == "" || pages[0].Body == "" {
		t.Error("extraction produced empty title/body")
	}
	if len(pages[0].Links) == 0 {
		t.Error("links not extracted")
	}
}

func TestCrawlFollowsLinks(t *testing.T) {
	url := seedURL(t)
	pages, err := Crawl(CorpusFetcher{corpus}, []string{url}, Config{MaxDepth: 1, MaxPages: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) < 2 {
		t.Fatalf("depth-1 crawl found %d pages", len(pages))
	}
	sawDepth1 := false
	for _, p := range pages {
		if p.Depth == 1 {
			sawDepth1 = true
		}
		if p.Depth > 1 {
			t.Errorf("page %s beyond depth limit: %d", p.URL, p.Depth)
		}
	}
	if !sawDepth1 {
		t.Error("no depth-1 pages")
	}
}

func TestCrawlMaxPages(t *testing.T) {
	url := seedURL(t)
	pages, err := Crawl(CorpusFetcher{corpus}, []string{url}, Config{MaxDepth: 3, MaxPages: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) > 5 {
		t.Fatalf("budget exceeded: %d", len(pages))
	}
}

func TestCrawlSameSiteOnly(t *testing.T) {
	url := seedURL(t)
	site := siteOf(url)
	pages, err := Crawl(CorpusFetcher{corpus}, []string{url}, Config{MaxDepth: 2, MaxPages: 100, SameSiteOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		if p.Site != site {
			t.Errorf("cross-site page %s in same-site crawl", p.URL)
		}
	}
}

func TestCrawlNoSeeds(t *testing.T) {
	if _, err := Crawl(CorpusFetcher{corpus}, nil, Config{}); err == nil {
		t.Fatal("empty seeds accepted")
	}
}

func TestCrawlAllSeedsFail(t *testing.T) {
	_, err := Crawl(CorpusFetcher{corpus}, []string{"http://missing.example/x"}, Config{})
	if err == nil {
		t.Fatal("failed crawl returned no error")
	}
}

func TestCrawlSkipsDuplicateVisits(t *testing.T) {
	url := seedURL(t)
	pages, err := Crawl(CorpusFetcher{corpus}, []string{url, url}, Config{MaxDepth: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 {
		t.Fatalf("duplicate seed crawled twice: %d", len(pages))
	}
}

func TestCrawlHTTPFetcher(t *testing.T) {
	mux := http.NewServeMux()
	var base string
	mux.HandleFunc("/a", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `<html><head><title>Page A</title></head><body>hello world <a href="%s/b">b</a></body></html>`, base)
	})
	mux.HandleFunc("/b", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><head><title>Page B</title></head><body>second page</body></html>`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	base = srv.URL
	pages, err := Crawl(HTTPFetcher{srv.Client()}, []string{srv.URL + "/a"}, Config{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 2 {
		t.Fatalf("crawled %d pages", len(pages))
	}
	if pages[0].Title != "Page A" || pages[1].Title != "Page B" {
		t.Errorf("titles = %q %q", pages[0].Title, pages[1].Title)
	}
	if !strings.Contains(pages[0].Body, "hello world") {
		t.Errorf("body = %q", pages[0].Body)
	}
}

func TestExtractStripsScripts(t *testing.T) {
	html := `<html><head><title>T</title><script>var x = "evil";</script></head><body>visible</body></html>`
	p := extract("http://x.example/", html)
	if strings.Contains(p.Body, "evil") {
		t.Errorf("script content leaked into body: %q", p.Body)
	}
	if !strings.Contains(p.Body, "visible") {
		t.Errorf("visible text missing: %q", p.Body)
	}
}

func TestNearDuplicateSuppression(t *testing.T) {
	mux := http.NewServeMux()
	serve := func(path, body string) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, "<html><head><title>t</title></head><body>%s</body></html>", body)
		})
	}
	long := strings.Repeat("identical content repeated many times over and over again ", 5)
	serve("/a", long)
	serve("/b", long) // near-duplicate of /a
	serve("/c", "completely different text about wine tasting notes and vintages")
	srv := httptest.NewServer(mux)
	defer srv.Close()
	pages, err := Crawl(HTTPFetcher{srv.Client()},
		[]string{srv.URL + "/a", srv.URL + "/b", srv.URL + "/c"},
		Config{DedupeShingleSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 2 {
		t.Fatalf("dedupe kept %d pages, want 2", len(pages))
	}
}

func TestToRecordsAndSchema(t *testing.T) {
	url := seedURL(t)
	pages, _ := Crawl(CorpusFetcher{corpus}, []string{url}, Config{MaxDepth: 1, MaxPages: 10})
	recs := ToRecords(pages)
	if len(recs) != len(pages) {
		t.Fatal("record count mismatch")
	}
	sch := CrawlSchema("crawl")
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
	s := store.New()
	s.CreateTenant("t", "o")
	ds, err := s.CreateDataset("t", "o", sch)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if _, err := ds.Put(r); err != nil {
			t.Fatalf("crawl record rejected: %v (%v)", err, r["url"])
		}
	}
	if ds.Len() != len(recs) {
		t.Error("not all crawl records stored")
	}
}

func TestSites(t *testing.T) {
	pages := []Page{{Site: "b.com"}, {Site: "a.com"}, {Site: "b.com"}}
	got := Sites(pages)
	if len(got) != 2 || got[0] != "a.com" || got[1] != "b.com" {
		t.Fatalf("Sites = %v", got)
	}
}
