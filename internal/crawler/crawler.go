// Package crawler implements the "URL crawling" upload method of
// §II-A: given seed URLs, it fetches pages, extracts title/body/link
// structure from their HTML, and converts them into store records a
// designer can index as proprietary content.
//
// Fetching goes through a Fetcher interface; production-style crawls
// use the HTTP fetcher against httptest servers, and the benchmarks
// crawl the synthetic web corpus directly.
package crawler

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"repro/internal/store"
	"repro/internal/textproc"
	"repro/internal/webcorpus"
)

// Fetcher retrieves the HTML of a URL.
type Fetcher interface {
	Fetch(url string) (html string, err error)
}

// HTTPFetcher fetches over HTTP.
type HTTPFetcher struct {
	Client *http.Client
}

// Fetch implements Fetcher.
func (f HTTPFetcher) Fetch(url string) (string, error) {
	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("crawler: %s: status %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// CorpusFetcher serves pages straight from the synthetic web corpus.
type CorpusFetcher struct {
	Corpus *webcorpus.Corpus
}

// Fetch implements Fetcher.
func (f CorpusFetcher) Fetch(url string) (string, error) {
	p, ok := f.Corpus.PageByURL(url)
	if !ok {
		return "", fmt.Errorf("crawler: %s: not found", url)
	}
	return p.HTML(), nil
}

// Config bounds a crawl.
type Config struct {
	MaxDepth int // link-following depth from the seeds; 0 = seeds only
	MaxPages int // hard page budget (default 100)
	// SameSiteOnly restricts traversal to the seed URLs' sites,
	// matching how a retailer crawls their own catalog pages.
	SameSiteOnly bool
	// DedupeShingleSize enables near-duplicate suppression using word
	// shingles of the given size (0 disables).
	DedupeShingleSize int
}

// Page is one crawled document.
type Page struct {
	URL   string
	Site  string
	Title string
	Body  string
	Depth int
	Links []string
}

// Crawl walks from the seeds.
func Crawl(f Fetcher, seeds []string, cfg Config) ([]Page, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("crawler: no seed URLs")
	}
	maxPages := cfg.MaxPages
	if maxPages <= 0 {
		maxPages = 100
	}
	allowedSites := make(map[string]bool)
	for _, s := range seeds {
		allowedSites[siteOf(s)] = true
	}
	type item struct {
		url   string
		depth int
	}
	queue := make([]item, 0, len(seeds))
	for _, s := range seeds {
		queue = append(queue, item{s, 0})
	}
	visited := make(map[string]bool)
	seenShingles := make(map[string]bool)
	var out []Page
	var firstErr error
	for len(queue) > 0 && len(out) < maxPages {
		it := queue[0]
		queue = queue[1:]
		if visited[it.url] {
			continue
		}
		visited[it.url] = true
		if cfg.SameSiteOnly && !allowedSites[siteOf(it.url)] {
			continue
		}
		html, err := f.Fetch(it.url)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		page := extract(it.url, html)
		page.Depth = it.depth
		if cfg.DedupeShingleSize > 0 && isNearDuplicate(page.Body, cfg.DedupeShingleSize, seenShingles) {
			continue
		}
		out = append(out, page)
		if it.depth < cfg.MaxDepth {
			for _, l := range page.Links {
				if !visited[l] {
					queue = append(queue, item{l, it.depth + 1})
				}
			}
		}
	}
	if len(out) == 0 && firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

func siteOf(url string) string {
	s := url
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// extract pulls title, visible text and links out of HTML with a
// small hand-rolled scanner (stdlib has no HTML parser outside x/).
func extract(url, html string) Page {
	p := Page{URL: url, Site: siteOf(url)}
	if s, e := tagContent(html, "title"); s >= 0 {
		p.Title = strings.TrimSpace(html[s:e])
	}
	// links
	rest := html
	for {
		i := strings.Index(rest, `href="`)
		if i < 0 {
			break
		}
		rest = rest[i+len(`href="`):]
		j := strings.IndexByte(rest, '"')
		if j < 0 {
			break
		}
		link := rest[:j]
		rest = rest[j:]
		if strings.HasPrefix(link, "http://") || strings.HasPrefix(link, "https://") {
			p.Links = append(p.Links, link)
		}
	}
	// visible text: strip tags
	var b strings.Builder
	inTag := false
	inScript := false
	lower := strings.ToLower(html)
	for i := 0; i < len(html); i++ {
		c := html[i]
		switch {
		case c == '<':
			inTag = true
			if strings.HasPrefix(lower[i:], "<script") {
				inScript = true
			} else if strings.HasPrefix(lower[i:], "</script") {
				inScript = false
			}
		case c == '>':
			inTag = false
			b.WriteByte(' ')
		case !inTag && !inScript:
			b.WriteByte(c)
		}
	}
	p.Body = strings.Join(strings.Fields(b.String()), " ")
	return p
}

// tagContent finds the inner range of the first <tag>...</tag>.
func tagContent(html, tag string) (start, end int) {
	lower := strings.ToLower(html)
	open := strings.Index(lower, "<"+tag+">")
	if open < 0 {
		return -1, -1
	}
	start = open + len(tag) + 2
	close := strings.Index(lower[start:], "</"+tag+">")
	if close < 0 {
		return -1, -1
	}
	return start, start + close
}

func isNearDuplicate(body string, w int, seen map[string]bool) bool {
	sh := textproc.Shingles(textproc.Terms(body), w)
	if len(sh) == 0 {
		return false
	}
	dup := 0
	for _, s := range sh {
		if seen[s] {
			dup++
		}
	}
	ratio := float64(dup) / float64(len(sh))
	for _, s := range sh {
		seen[s] = true
	}
	return ratio > 0.9
}

// ToRecords converts crawled pages to store records (fields url,
// site, title, body, depth).
func ToRecords(pages []Page) []store.Record {
	out := make([]store.Record, len(pages))
	for i, p := range pages {
		out[i] = store.Record{
			"url":   p.URL,
			"site":  p.Site,
			"title": p.Title,
			"body":  p.Body,
			"depth": fmt.Sprintf("%d", p.Depth),
		}
	}
	return out
}

// CrawlSchema is the schema ToRecords output conforms to.
func CrawlSchema(name string) store.Schema {
	return store.Schema{
		Name: name,
		Key:  "url",
		Fields: []store.Field{
			{Name: "url", Type: store.TypeURL, Required: true},
			{Name: "site", Type: store.TypeString},
			{Name: "title", Type: store.TypeString, Searchable: true},
			{Name: "body", Type: store.TypeString, Searchable: true},
			{Name: "depth", Type: store.TypeNumber},
		},
	}
}

// Sites returns the distinct sites covered by pages, sorted.
func Sites(pages []Page) []string {
	set := map[string]bool{}
	for _, p := range pages {
		set[p.Site] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
