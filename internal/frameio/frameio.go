// Package frameio implements the length-prefixed framing shared by
// the durability formats: the sharded index snapshot and the store's
// snapshot format v2. A stream is a fixed magic string followed by
// frames, each an 8-byte big-endian payload length, a 4-byte CRC-32C
// checksum of the payload, and the payload bytes. Length-prefixed
// frames let writers produce payloads concurrently and still emit a
// deterministic byte stream, and let readers hand whole payloads to a
// decoding worker pool; the checksum turns silent on-disk corruption
// into a clean restore error instead of a subtly wrong index.
package frameio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrTruncatedFrame reports a stream that ends in something other
// than a frame boundary: a partial header, a payload shorter than its
// length prefix, a checksum mismatch, or a length prefix past
// MaxFrame. Offset is the byte position just after the last fully
// verified frame — the point an append-only log can safely be
// truncated back to. It wraps the underlying cause, so callers can
// still errors.Is/As against io.ErrUnexpectedEOF and friends.
//
// Only Reader returns it: plain ReadFrame keeps its historical bare
// errors for the snapshot formats, where any damage is fatal anyway.
type ErrTruncatedFrame struct {
	Offset int64
	Cause  error
}

func (e *ErrTruncatedFrame) Error() string {
	return fmt.Sprintf("frameio: truncated or corrupt frame after offset %d: %v", e.Offset, e.Cause)
}

func (e *ErrTruncatedFrame) Unwrap() error { return e.Cause }

// Reader reads a frame stream sequentially while tracking byte
// offsets, so tail damage is reported as *ErrTruncatedFrame with the
// exact recovery point instead of a bare CRC or EOF error. It is the
// read side used by the write-ahead log, whose contract is "recover
// every complete frame, stop cleanly at the first incomplete one".
type Reader struct {
	r   io.Reader
	off int64 // bytes consumed up to the end of the last good frame
}

// NewReader returns a Reader positioned at offset 0 of r. If the
// stream starts with a magic string, consume it first with
// ExpectMagic and pass the magic length via Skip.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// Skip records n bytes already consumed from the underlying stream
// (magic strings, resumption points) so reported offsets stay
// absolute.
func (fr *Reader) Skip(n int64) { fr.off += n }

// Offset reports the byte position just after the last successfully
// read frame.
func (fr *Reader) Offset() int64 { return fr.off }

// Next returns the next frame's payload. A clean end of stream
// returns io.EOF; anything else that stops the read — partial header,
// short payload, bad length, checksum mismatch — returns
// *ErrTruncatedFrame carrying the offset of the last good frame.
func (fr *Reader) Next() ([]byte, error) {
	var hdr [12]byte
	n, err := io.ReadFull(fr.r, hdr[:])
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		// A partial header is a torn tail, not a clean end.
		return nil, &ErrTruncatedFrame{Offset: fr.off, Cause: err}
	}
	length := binary.BigEndian.Uint64(hdr[:8])
	if length > MaxFrame {
		return nil, &ErrTruncatedFrame{Offset: fr.off, Cause: fmt.Errorf("frame length %d exceeds limit %d", length, MaxFrame)}
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, &ErrTruncatedFrame{Offset: fr.off, Cause: err}
	}
	want := binary.BigEndian.Uint32(hdr[8:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, &ErrTruncatedFrame{Offset: fr.off, Cause: fmt.Errorf("frame checksum mismatch: %08x, want %08x", got, want)}
	}
	fr.off += int64(n) + int64(length)
	return payload, nil
}

// castagnoli is the CRC-32C table (the polynomial used by storage
// formats generally, chosen here for its error-detection properties).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// MaxFrame bounds a single frame payload (1 GiB). A corrupt or
// malicious length prefix fails fast instead of driving a huge
// allocation.
const MaxFrame = 1 << 30

// WriteMagic writes the format's magic string.
func WriteMagic(w io.Writer, magic string) error {
	_, err := io.WriteString(w, magic)
	return err
}

// ExpectMagic consumes and verifies the format's magic string.
func ExpectMagic(r io.Reader, magic string) error {
	buf := make([]byte, len(magic))
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("frameio: reading magic: %w", err)
	}
	if string(buf) != magic {
		return fmt.Errorf("frameio: bad magic %q, want %q", buf, magic)
	}
	return nil
}

// WriteFrame writes one length-prefixed, checksummed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], uint64(len(payload)))
	binary.BigEndian.PutUint32(hdr[8:], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// NextFrameInBuf walks one frame of a stream held in memory (an
// mmap'd snapshot file), returning the payload as a subslice of buf —
// no copy — and the offset of the next frame. A clean end of buffer
// returns io.EOF; a partial header or short payload reports
// truncation. verify controls the CRC check: attach-time validation
// passes true to catch corrupt files before serving from them; re-
// walks over already-verified bytes pass false to skip the hashing.
func NextFrameInBuf(buf []byte, off int, verify bool) (payload []byte, next int, err error) {
	if off == len(buf) {
		return nil, off, io.EOF
	}
	if off > len(buf) || len(buf)-off < 12 {
		return nil, off, fmt.Errorf("frameio: truncated frame header at offset %d", off)
	}
	length := binary.BigEndian.Uint64(buf[off : off+8])
	if length > MaxFrame {
		return nil, off, fmt.Errorf("frameio: frame length %d exceeds limit %d", length, MaxFrame)
	}
	body := off + 12
	if uint64(len(buf)-body) < length {
		return nil, off, fmt.Errorf("frameio: truncated frame payload at offset %d: have %d bytes, need %d", off, len(buf)-body, length)
	}
	end := body + int(length)
	payload = buf[body:end:end]
	if verify {
		want := binary.BigEndian.Uint32(buf[off+8 : off+12])
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return nil, off, fmt.Errorf("frameio: frame checksum mismatch at offset %d: %08x, want %08x", off, got, want)
		}
	}
	return payload, end, nil
}

// ReadFrame reads one frame's payload, verifying its checksum. A
// clean end of stream returns io.EOF; truncation mid-frame returns an
// unexpected-EOF error; a checksum mismatch reports corruption.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("frameio: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint64(hdr[:8])
	if n > MaxFrame {
		return nil, fmt.Errorf("frameio: frame length %d exceeds limit %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("frameio: reading frame payload: %w", err)
	}
	want := binary.BigEndian.Uint32(hdr[8:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("frameio: frame checksum mismatch: %08x, want %08x", got, want)
	}
	return payload, nil
}
