// Package frameio implements the length-prefixed framing shared by
// the durability formats: the sharded index snapshot and the store's
// snapshot format v2. A stream is a fixed magic string followed by
// frames, each an 8-byte big-endian payload length, a 4-byte CRC-32C
// checksum of the payload, and the payload bytes. Length-prefixed
// frames let writers produce payloads concurrently and still emit a
// deterministic byte stream, and let readers hand whole payloads to a
// decoding worker pool; the checksum turns silent on-disk corruption
// into a clean restore error instead of a subtly wrong index.
package frameio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// castagnoli is the CRC-32C table (the polynomial used by storage
// formats generally, chosen here for its error-detection properties).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// MaxFrame bounds a single frame payload (1 GiB). A corrupt or
// malicious length prefix fails fast instead of driving a huge
// allocation.
const MaxFrame = 1 << 30

// WriteMagic writes the format's magic string.
func WriteMagic(w io.Writer, magic string) error {
	_, err := io.WriteString(w, magic)
	return err
}

// ExpectMagic consumes and verifies the format's magic string.
func ExpectMagic(r io.Reader, magic string) error {
	buf := make([]byte, len(magic))
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("frameio: reading magic: %w", err)
	}
	if string(buf) != magic {
		return fmt.Errorf("frameio: bad magic %q, want %q", buf, magic)
	}
	return nil
}

// WriteFrame writes one length-prefixed, checksummed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], uint64(len(payload)))
	binary.BigEndian.PutUint32(hdr[8:], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame's payload, verifying its checksum. A
// clean end of stream returns io.EOF; truncation mid-frame returns an
// unexpected-EOF error; a checksum mismatch reports corruption.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("frameio: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint64(hdr[:8])
	if n > MaxFrame {
		return nil, fmt.Errorf("frameio: frame length %d exceeds limit %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("frameio: reading frame payload: %w", err)
	}
	want := binary.BigEndian.Uint32(hdr[8:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("frameio: frame checksum mismatch: %08x, want %08x", got, want)
	}
	return payload, nil
}
