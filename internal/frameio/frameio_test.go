package frameio

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMagic(&buf, "MAGIC01\n"); err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{[]byte("first"), {}, []byte("third frame")}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	if err := ExpectMagic(r, "MAGIC01\n"); err != nil {
		t.Fatal(err)
	}
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

func TestBadMagic(t *testing.T) {
	if err := ExpectMagic(strings.NewReader("WRONG!!\n"), "MAGIC01\n"); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if err := ExpectMagic(strings.NewReader("MA"), "MAGIC01\n"); err == nil {
		t.Fatal("short magic accepted")
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Truncated mid-payload and mid-header are both errors, not EOF.
	for _, cut := range []int{buf.Len() - 3, 4} {
		if _, err := ReadFrame(bytes.NewReader(buf.Bytes()[:cut])); err == nil || err == io.EOF {
			t.Fatalf("cut at %d: err = %v, want unexpected-EOF error", cut, err)
		}
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversize frame length accepted")
	}
}
