package frameio

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMagic(&buf, "MAGIC01\n"); err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{[]byte("first"), {}, []byte("third frame")}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	if err := ExpectMagic(r, "MAGIC01\n"); err != nil {
		t.Fatal(err)
	}
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

func TestBadMagic(t *testing.T) {
	if err := ExpectMagic(strings.NewReader("WRONG!!\n"), "MAGIC01\n"); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if err := ExpectMagic(strings.NewReader("MA"), "MAGIC01\n"); err == nil {
		t.Fatal("short magic accepted")
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Truncated mid-payload and mid-header are both errors, not EOF.
	for _, cut := range []int{buf.Len() - 3, 4} {
		if _, err := ReadFrame(bytes.NewReader(buf.Bytes()[:cut])); err == nil || err == io.EOF {
			t.Fatalf("cut at %d: err = %v, want unexpected-EOF error", cut, err)
		}
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversize frame length accepted")
	}
}

// writeFrames returns a stream of n frames plus the cumulative byte
// offset at the end of each frame.
func writeFrames(t *testing.T, payloads ...[]byte) ([]byte, []int64) {
	t.Helper()
	var buf bytes.Buffer
	offsets := make([]int64, len(payloads))
	for i, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
		offsets[i] = int64(buf.Len())
	}
	return buf.Bytes(), offsets
}

func TestReaderCleanStream(t *testing.T) {
	stream, offsets := writeFrames(t, []byte("one"), []byte("two"), []byte("three"))
	fr := NewReader(bytes.NewReader(stream))
	for i, want := range []string{"one", "two", "three"} {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if string(got) != want {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
		if fr.Offset() != offsets[i] {
			t.Fatalf("offset after frame %d = %d, want %d", i, fr.Offset(), offsets[i])
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

// TestReaderTornTails cuts and corrupts a three-frame stream at every
// interesting point and asserts the reader recovers exactly the
// frames before the damage, reporting the last good offset.
func TestReaderTornTails(t *testing.T) {
	stream, offsets := writeFrames(t, []byte("frame-a"), []byte("frame-b"), []byte("frame-c"))
	cases := []struct {
		name      string
		mutate    func([]byte) []byte
		wantGood  int   // complete frames recovered
		wantAfter int64 // reported offset of last good frame
	}{
		{"cut mid-header", func(b []byte) []byte { return b[:offsets[1]+5] }, 2, offsets[1]},
		{"cut mid-payload", func(b []byte) []byte { return b[:offsets[2]-2] }, 2, offsets[1]},
		{"flipped payload byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0xff
			return c
		}, 2, offsets[1]},
		{"garbage length prefix", func(b []byte) []byte {
			c := append([]byte(nil), b[:offsets[1]]...)
			var hdr [12]byte
			binary.BigEndian.PutUint64(hdr[:8], MaxFrame+7)
			return append(c, hdr[:]...)
		}, 2, offsets[1]},
		{"trailing garbage", func(b []byte) []byte {
			return append(append([]byte(nil), b...), 0xde, 0xad, 0xbe, 0xef, 0x99, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08)
		}, 3, offsets[2]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fr := NewReader(bytes.NewReader(tc.mutate(stream)))
			good := 0
			for {
				_, err := fr.Next()
				if err == nil {
					good++
					continue
				}
				if err == io.EOF {
					t.Fatalf("stream ended cleanly after %d frames, want ErrTruncatedFrame", good)
				}
				var torn *ErrTruncatedFrame
				if !asTruncated(err, &torn) {
					t.Fatalf("err = %v (%T), want *ErrTruncatedFrame", err, err)
				}
				if torn.Offset != tc.wantAfter {
					t.Fatalf("torn offset = %d, want %d", torn.Offset, tc.wantAfter)
				}
				break
			}
			if good != tc.wantGood {
				t.Fatalf("recovered %d frames, want %d", good, tc.wantGood)
			}
		})
	}
}

// asTruncated is errors.As without the import dance in table tests.
func asTruncated(err error, target **ErrTruncatedFrame) bool {
	if e, ok := err.(*ErrTruncatedFrame); ok {
		*target = e
		return true
	}
	return false
}

func TestReaderSkipOffsets(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMagic(&buf, "MAGIC01\n"); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	if err := ExpectMagic(r, "MAGIC01\n"); err != nil {
		t.Fatal(err)
	}
	fr := NewReader(r)
	fr.Skip(int64(len("MAGIC01\n")))
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if want := int64(buf.Len()); fr.Offset() != want {
		t.Fatalf("offset = %d, want %d", fr.Offset(), want)
	}
}
