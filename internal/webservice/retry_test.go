package webservice

import (
	"context"
	"testing"
	"time"
)

func TestRetryRecoversFromTransientFailure(t *testing.T) {
	p, srv := newPricing(t, []string{"Zelda"})
	p.FailEvery = 2 // every 2nd request 500s; first attempt of each pair succeeds
	c := NewClient(srv.Client())
	def := Definition{
		Name: "p", Endpoint: srv.URL + "/price",
		Params:  map[string]string{"title": "{title}"},
		Retries: 2,
	}
	args := map[string]string{"title": "Zelda"}
	// Issue several calls; with retries every call must succeed even
	// though half the raw requests fail.
	for i := 0; i < 6; i++ {
		if _, err := c.Call(context.Background(), def, args); err != nil {
			t.Fatalf("call %d failed despite retries: %v", i, err)
		}
	}
	if c.Retries() == 0 {
		t.Error("no retries recorded despite injected failures")
	}
}

func TestRetryExhaustionReturnsError(t *testing.T) {
	p, srv := newPricing(t, []string{"Zelda"})
	p.FailEvery = 1 // hard down
	c := NewClient(srv.Client())
	def := Definition{
		Name: "p", Endpoint: srv.URL + "/price",
		Params:  map[string]string{"title": "{title}"},
		Retries: 3,
	}
	if _, err := c.Call(context.Background(), def, map[string]string{"title": "Zelda"}); err == nil {
		t.Fatal("hard-down service succeeded")
	}
	if got := c.Retries(); got != 4 {
		t.Errorf("retries = %d, want 4 (1 initial + 3 retries)", got)
	}
}

func TestRetryStopsWhenCallerContextDone(t *testing.T) {
	p, srv := newPricing(t, []string{"Zelda"})
	p.FailEvery = 1
	p.Latency = 30 * time.Millisecond
	c := NewClient(srv.Client())
	def := Definition{
		Name: "p", Endpoint: srv.URL + "/price",
		Params:  map[string]string{"title": "{title}"},
		Retries: 100,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Call(ctx, def, map[string]string{"title": "Zelda"}); err == nil {
		t.Fatal("expected failure")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("retry loop ignored caller context")
	}
}
