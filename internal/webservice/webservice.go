// Package webservice implements the paper's dynamic data access:
// "Symphony also supports dynamic data accessed through SOAP and
// REST-based web services. This facilitates real-time data freshness,
// allows users to keep data considered too sensitive 'in-house' and
// allows integration of 3rd-party services."
//
// A ServiceClient calls a remote endpoint at query time, templating
// the request from fields of the primary result that drives it. A TTL
// cache and timeout handling make the live call safe on the hosted
// serving path. The pricing simulator in this package provides the
// in-process "real-time pricing and in-stock service" of §II-B.
package webservice

import (
	"context"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Protocol selects the wire format.
type Protocol string

// REST services exchange JSON; SOAP services exchange XML envelopes.
const (
	ProtocolREST Protocol = "rest"
	ProtocolSOAP Protocol = "soap"
)

// Definition describes a callable service.
type Definition struct {
	Name     string   `json:"name"`
	Protocol Protocol `json:"protocol"`
	// Endpoint is the service URL. For REST the Params are sent as
	// query parameters; for SOAP a body envelope is POSTed.
	Endpoint string `json:"endpoint"`
	// Params maps service parameter names to templates over driving
	// fields, e.g. {"title": "{title}"}.
	Params map[string]string `json:"params"`
	// SOAPAction names the operation for SOAP services.
	SOAPAction string `json:"soapAction,omitempty"`
	// TimeoutMS bounds each attempt (default 1000).
	TimeoutMS int `json:"timeoutMs,omitempty"`
	// CacheTTLMS enables response caching per parameter set.
	CacheTTLMS int `json:"cacheTtlMs,omitempty"`
	// Retries re-attempts failed calls (network error or 5xx) up to
	// this many additional times. Supplemental sources typically set
	// 1–2: the hosted page should survive a flaky 3rd-party service.
	Retries int `json:"retries,omitempty"`
}

// Response is a generic service result: a list of string-map items.
type Response struct {
	Items []map[string]string
}

// Client calls services defined by Definition.
type Client struct {
	HTTP *http.Client
	// now is injectable for cache-expiry tests.
	now func() time.Time

	mu    sync.Mutex
	cache map[string]cacheEntry
	// stats
	calls     int
	cacheHits int
	retries   int
}

type cacheEntry struct {
	resp    Response
	expires time.Time
}

// NewClient returns a service client using the given HTTP client
// (nil means http.DefaultClient).
func NewClient(h *http.Client) *Client {
	return &Client{HTTP: h, now: time.Now, cache: make(map[string]cacheEntry)}
}

// ExpandTemplate substitutes {field} placeholders from args.
// Unknown placeholders expand to "".
func ExpandTemplate(tmpl string, args map[string]string) string {
	var b strings.Builder
	for {
		i := strings.IndexByte(tmpl, '{')
		if i < 0 {
			b.WriteString(tmpl)
			return b.String()
		}
		j := strings.IndexByte(tmpl[i:], '}')
		if j < 0 {
			b.WriteString(tmpl)
			return b.String()
		}
		b.WriteString(tmpl[:i])
		b.WriteString(args[tmpl[i+1:i+j]])
		tmpl = tmpl[i+j+1:]
	}
}

// TemplateRefs returns the placeholder names a template references.
func TemplateRefs(tmpl string) []string {
	var out []string
	for {
		i := strings.IndexByte(tmpl, '{')
		if i < 0 {
			return out
		}
		j := strings.IndexByte(tmpl[i:], '}')
		if j < 0 {
			return out
		}
		out = append(out, tmpl[i+1:i+j])
		tmpl = tmpl[i+j+1:]
	}
}

// Call invokes the service with the driving-field values in args.
func (c *Client) Call(ctx context.Context, def Definition, args map[string]string) (Response, error) {
	params := make(map[string]string, len(def.Params))
	for name, tmpl := range def.Params {
		params[name] = ExpandTemplate(tmpl, args)
	}
	key := cacheKey(def, params)
	ttl := time.Duration(def.CacheTTLMS) * time.Millisecond
	if ttl > 0 {
		c.mu.Lock()
		if e, ok := c.cache[key]; ok && c.now().Before(e.expires) {
			c.cacheHits++
			c.mu.Unlock()
			return e.resp, nil
		}
		c.mu.Unlock()
	}
	timeout := time.Duration(def.TimeoutMS) * time.Millisecond
	if timeout == 0 {
		timeout = time.Second
	}

	var resp Response
	var err error
	for attempt := 0; attempt <= def.Retries; attempt++ {
		attemptCtx, cancel := context.WithTimeout(ctx, timeout)
		switch def.Protocol {
		case ProtocolSOAP:
			resp, err = c.callSOAP(attemptCtx, def, params)
		case ProtocolREST, "":
			resp, err = c.callREST(attemptCtx, def, params)
		default:
			cancel()
			return Response{}, fmt.Errorf("webservice: unknown protocol %q", def.Protocol)
		}
		cancel()
		if err == nil {
			break
		}
		c.mu.Lock()
		c.retries++
		c.mu.Unlock()
		// Stop retrying once the caller's context is gone.
		if ctx.Err() != nil {
			break
		}
	}
	if err != nil {
		return Response{}, err
	}
	c.mu.Lock()
	c.calls++
	if ttl > 0 {
		c.cache[key] = cacheEntry{resp: resp, expires: c.now().Add(ttl)}
	}
	c.mu.Unlock()
	return resp, nil
}

// Stats reports (backend calls, cache hits).
func (c *Client) Stats() (calls, cacheHits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls, c.cacheHits
}

// Retries reports how many failed attempts were retried.
func (c *Client) Retries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries
}

func cacheKey(def Definition, params map[string]string) string {
	var b strings.Builder
	b.WriteString(def.Name)
	b.WriteByte('|')
	b.WriteString(def.Endpoint)
	// params in sorted order for stability
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		b.WriteByte('|')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(params[k])
	}
	return b.String()
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// callREST GETs endpoint?params and decodes a JSON body that is
// either a list of objects or a single object.
func (c *Client) callREST(ctx context.Context, def Definition, params map[string]string) (Response, error) {
	u, err := url.Parse(def.Endpoint)
	if err != nil {
		return Response{}, fmt.Errorf("webservice: endpoint %q: %w", def.Endpoint, err)
	}
	q := u.Query()
	for k, v := range params {
		q.Set(k, v)
	}
	u.RawQuery = q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return Response{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Response{}, fmt.Errorf("webservice: calling %s: %w", def.Name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Response{}, fmt.Errorf("webservice: %s returned %s", def.Name, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return Response{}, err
	}
	return decodeJSONItems(body)
}

func decodeJSONItems(body []byte) (Response, error) {
	var items []map[string]any
	if err := json.Unmarshal(body, &items); err != nil {
		var single map[string]any
		if err2 := json.Unmarshal(body, &single); err2 != nil {
			return Response{}, fmt.Errorf("webservice: undecodable response: %w", err)
		}
		items = []map[string]any{single}
	}
	out := Response{Items: make([]map[string]string, 0, len(items))}
	for _, it := range items {
		m := make(map[string]string, len(it))
		for k, v := range it {
			switch val := v.(type) {
			case string:
				m[k] = val
			case float64:
				m[k] = strings.TrimSuffix(fmt.Sprintf("%.2f", val), ".00")
			case bool:
				m[k] = fmt.Sprintf("%t", val)
			case nil:
				m[k] = ""
			default:
				b, err := json.Marshal(val)
				if err != nil {
					return Response{}, fmt.Errorf("webservice: re-encoding field %q: %w", k, err)
				}
				m[k] = string(b)
			}
		}
		out.Items = append(out.Items, m)
	}
	return out, nil
}

// soapEnvelope is the request/response wrapper for the SOAP path.
type soapEnvelope struct {
	XMLName xml.Name `xml:"Envelope"`
	Body    soapBody `xml:"Body"`
}

type soapBody struct {
	Items []soapItem `xml:"Item"`
	// Request side:
	Operation string      `xml:"Operation,omitempty"`
	Params    []soapParam `xml:"Param,omitempty"`
}

type soapItem struct {
	Fields []soapParam `xml:"Field"`
}

type soapParam struct {
	Name  string `xml:"name,attr"`
	Value string `xml:",chardata"`
}

// callSOAP POSTs an XML envelope and parses Item/Field elements.
func (c *Client) callSOAP(ctx context.Context, def Definition, params map[string]string) (Response, error) {
	env := soapEnvelope{}
	env.Body.Operation = def.SOAPAction
	for k, v := range params {
		env.Body.Params = append(env.Body.Params, soapParam{Name: k, Value: v})
	}
	payload, err := xml.Marshal(env)
	if err != nil {
		return Response{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, def.Endpoint, strings.NewReader(string(payload)))
	if err != nil {
		return Response{}, err
	}
	req.Header.Set("Content-Type", "text/xml")
	req.Header.Set("SOAPAction", def.SOAPAction)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Response{}, fmt.Errorf("webservice: calling %s: %w", def.Name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Response{}, fmt.Errorf("webservice: %s returned %s", def.Name, resp.Status)
	}
	var renv soapEnvelope
	if err := xml.NewDecoder(resp.Body).Decode(&renv); err != nil {
		return Response{}, fmt.Errorf("webservice: bad SOAP response: %w", err)
	}
	out := Response{}
	for _, it := range renv.Body.Items {
		m := make(map[string]string, len(it.Fields))
		for _, f := range it.Fields {
			m[f.Name] = f.Value
		}
		out.Items = append(out.Items, m)
	}
	return out, nil
}
