package webservice

import (
	"encoding/xml"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// PricingService simulates the §II-B "real-time pricing and in-stock
// service": an in-house 3rd-party service a designer keeps outside
// Symphony and calls live at query time. It serves both REST (JSON)
// and SOAP (XML) so both client paths are exercised.
//
// Prices drift on every read to make "real-time freshness"
// observable in tests and demos. Latency and failure injection model
// a flaky remote dependency.
type PricingService struct {
	mu     sync.Mutex
	rng    *rand.Rand
	prices map[string]float64
	stock  map[string]bool

	// Latency is added to every request.
	Latency time.Duration
	// FailEvery makes every Nth request return HTTP 500 (0 disables).
	FailEvery int
	requests  int
}

// NewPricingService seeds prices for the given item titles.
func NewPricingService(seed int64, titles []string) *PricingService {
	rng := rand.New(rand.NewSource(seed))
	p := &PricingService{
		rng:    rng,
		prices: make(map[string]float64, len(titles)),
		stock:  make(map[string]bool, len(titles)),
	}
	for _, t := range titles {
		p.prices[norm(t)] = 10 + rng.Float64()*50
		p.stock[norm(t)] = rng.Intn(4) != 0
	}
	return p
}

func norm(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// lookup returns (price, inStock, known) and applies drift.
func (p *PricingService) lookup(title string) (float64, bool, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := norm(title)
	price, ok := p.prices[k]
	if !ok {
		return 0, false, false
	}
	// drift +-2%
	price *= 1 + (p.rng.Float64()-0.5)*0.04
	p.prices[k] = price
	return price, p.stock[k], true
}

func (p *PricingService) gate() error {
	p.mu.Lock()
	p.requests++
	n := p.requests
	fail := p.FailEvery
	lat := p.Latency
	p.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	if fail > 0 && n%fail == 0 {
		return fmt.Errorf("injected failure")
	}
	return nil
}

// Requests reports how many requests the service has handled.
func (p *PricingService) Requests() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.requests
}

// ServeHTTP serves /price (REST JSON, param "title") and /soap (SOAP).
func (p *PricingService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if err := p.gate(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	switch {
	case strings.HasSuffix(r.URL.Path, "/soap"):
		p.serveSOAP(w, r)
	default:
		p.serveREST(w, r)
	}
}

func (p *PricingService) serveREST(w http.ResponseWriter, r *http.Request) {
	title := r.URL.Query().Get("title")
	price, inStock, ok := p.lookup(title)
	if !ok {
		fmt.Fprint(w, `[]`)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `[{"title":%q,"price":"%.2f","instock":"%t"}]`, title, price, inStock)
}

func (p *PricingService) serveSOAP(w http.ResponseWriter, r *http.Request) {
	var env soapEnvelope
	if err := xml.NewDecoder(r.Body).Decode(&env); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var title string
	for _, prm := range env.Body.Params {
		if prm.Name == "title" {
			title = prm.Value
		}
	}
	price, inStock, ok := p.lookup(title)
	resp := soapEnvelope{}
	if ok {
		resp.Body.Items = []soapItem{{Fields: []soapParam{
			{Name: "title", Value: title},
			{Name: "price", Value: fmt.Sprintf("%.2f", price)},
			{Name: "instock", Value: fmt.Sprintf("%t", inStock)},
		}}}
	}
	w.Header().Set("Content-Type", "text/xml")
	out, _ := xml.Marshal(resp)
	w.Write(out)
}
