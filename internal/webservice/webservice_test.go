package webservice

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestExpandTemplate(t *testing.T) {
	args := map[string]string{"title": "Halo Wars", "sku": "G2"}
	cases := map[string]string{
		"{title}":              "Halo Wars",
		"game {title} ({sku})": "game Halo Wars (G2)",
		"no placeholders":      "no placeholders",
		"{missing}":            "",
		"{unclosed":            "{unclosed",
	}
	for in, want := range cases {
		if got := ExpandTemplate(in, args); got != want {
			t.Errorf("ExpandTemplate(%q) = %q, want %q", in, got, want)
		}
	}
}

func newPricing(t *testing.T, titles []string) (*PricingService, *httptest.Server) {
	t.Helper()
	p := NewPricingService(5, titles)
	srv := httptest.NewServer(p)
	t.Cleanup(srv.Close)
	return p, srv
}

func TestRESTCall(t *testing.T) {
	_, srv := newPricing(t, []string{"Halo Wars"})
	c := NewClient(srv.Client())
	def := Definition{
		Name:     "pricing",
		Protocol: ProtocolREST,
		Endpoint: srv.URL + "/price",
		Params:   map[string]string{"title": "{title}"},
	}
	resp, err := c.Call(context.Background(), def, map[string]string{"title": "Halo Wars"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 1 {
		t.Fatalf("items = %v", resp.Items)
	}
	item := resp.Items[0]
	if item["title"] != "Halo Wars" || item["price"] == "" || item["instock"] == "" {
		t.Errorf("item = %v", item)
	}
}

func TestRESTCallUnknownItem(t *testing.T) {
	_, srv := newPricing(t, []string{"Halo Wars"})
	c := NewClient(srv.Client())
	def := Definition{Name: "p", Endpoint: srv.URL + "/price", Params: map[string]string{"title": "{title}"}}
	resp, err := c.Call(context.Background(), def, map[string]string{"title": "Unknown Game"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 0 {
		t.Errorf("unknown item returned %v", resp.Items)
	}
}

func TestSOAPCall(t *testing.T) {
	_, srv := newPricing(t, []string{"Zelda"})
	c := NewClient(srv.Client())
	def := Definition{
		Name:       "pricing",
		Protocol:   ProtocolSOAP,
		Endpoint:   srv.URL + "/soap",
		SOAPAction: "GetPrice",
		Params:     map[string]string{"title": "{title}"},
	}
	resp, err := c.Call(context.Background(), def, map[string]string{"title": "Zelda"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 1 || resp.Items[0]["price"] == "" {
		t.Fatalf("soap items = %v", resp.Items)
	}
}

func TestUnknownProtocol(t *testing.T) {
	c := NewClient(nil)
	_, err := c.Call(context.Background(), Definition{Protocol: "grpc"}, nil)
	if err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestServiceErrorPropagates(t *testing.T) {
	p, srv := newPricing(t, []string{"Zelda"})
	p.FailEvery = 1 // every request fails
	c := NewClient(srv.Client())
	def := Definition{Name: "p", Endpoint: srv.URL + "/price", Params: map[string]string{"title": "{title}"}}
	if _, err := c.Call(context.Background(), def, map[string]string{"title": "Zelda"}); err == nil {
		t.Fatal("500 not reported")
	}
}

func TestTimeout(t *testing.T) {
	p, srv := newPricing(t, []string{"Zelda"})
	p.Latency = 200 * time.Millisecond
	c := NewClient(srv.Client())
	def := Definition{
		Name: "p", Endpoint: srv.URL + "/price",
		Params:    map[string]string{"title": "{title}"},
		TimeoutMS: 20,
	}
	start := time.Now()
	_, err := c.Call(context.Background(), def, map[string]string{"title": "Zelda"})
	if err == nil {
		t.Fatal("slow service did not time out")
	}
	if time.Since(start) > 150*time.Millisecond {
		t.Error("timeout not enforced promptly")
	}
}

func TestCacheHitsAndExpiry(t *testing.T) {
	p, srv := newPricing(t, []string{"Zelda"})
	c := NewClient(srv.Client())
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	def := Definition{
		Name: "p", Endpoint: srv.URL + "/price",
		Params:     map[string]string{"title": "{title}"},
		CacheTTLMS: 1000,
	}
	args := map[string]string{"title": "Zelda"}
	if _, err := c.Call(context.Background(), def, args); err != nil {
		t.Fatal(err)
	}
	first := p.Requests()
	// Second call within TTL: served from cache.
	if _, err := c.Call(context.Background(), def, args); err != nil {
		t.Fatal(err)
	}
	if p.Requests() != first {
		t.Error("cache miss within TTL")
	}
	calls, hits := c.Stats()
	if calls != 1 || hits != 1 {
		t.Errorf("stats = %d calls, %d hits", calls, hits)
	}
	// Advance past TTL: backend hit again.
	now = now.Add(2 * time.Second)
	if _, err := c.Call(context.Background(), def, args); err != nil {
		t.Fatal(err)
	}
	if p.Requests() != first+1 {
		t.Error("cache did not expire")
	}
}

func TestCacheKeyDistinguishesArgs(t *testing.T) {
	p, srv := newPricing(t, []string{"Zelda", "Halo"})
	c := NewClient(srv.Client())
	def := Definition{
		Name: "p", Endpoint: srv.URL + "/price",
		Params:     map[string]string{"title": "{title}"},
		CacheTTLMS: 60000,
	}
	c.Call(context.Background(), def, map[string]string{"title": "Zelda"})
	c.Call(context.Background(), def, map[string]string{"title": "Halo"})
	if p.Requests() != 2 {
		t.Errorf("different args shared a cache entry: %d requests", p.Requests())
	}
}

func TestPricesDrift(t *testing.T) {
	_, srv := newPricing(t, []string{"Zelda"})
	c := NewClient(srv.Client())
	def := Definition{Name: "p", Endpoint: srv.URL + "/price", Params: map[string]string{"title": "{title}"}}
	args := map[string]string{"title": "Zelda"}
	r1, _ := c.Call(context.Background(), def, args)
	r2, _ := c.Call(context.Background(), def, args)
	if len(r1.Items) != 1 || len(r2.Items) != 1 {
		t.Fatal("missing items")
	}
	if r1.Items[0]["price"] == r2.Items[0]["price"] {
		t.Error("real-time prices did not drift between calls")
	}
}

func TestDecodeJSONItems(t *testing.T) {
	resp, err := decodeJSONItems([]byte(`[{"a":"x","n":3,"b":true,"z":null,"arr":[1]}]`))
	if err != nil {
		t.Fatal(err)
	}
	it := resp.Items[0]
	if it["a"] != "x" || it["n"] != "3" || it["b"] != "true" || it["z"] != "" || it["arr"] != "[1]" {
		t.Errorf("decoded = %v", it)
	}
	// single object form
	resp, err = decodeJSONItems([]byte(`{"k":"v"}`))
	if err != nil || len(resp.Items) != 1 || resp.Items[0]["k"] != "v" {
		t.Fatalf("single object: %v %v", resp, err)
	}
	if _, err := decodeJSONItems([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestRESTBadEndpoint(t *testing.T) {
	c := NewClient(&http.Client{})
	def := Definition{Name: "p", Endpoint: "://bad"}
	if _, err := c.Call(context.Background(), def, nil); err == nil {
		t.Fatal("bad endpoint accepted")
	}
}

func TestSOAPEnvelopeRoundTrip(t *testing.T) {
	// A SOAP server that echoes params back as one item.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get("SOAPAction"); got != "Echo" {
			t.Errorf("SOAPAction = %q", got)
		}
		body := new(strings.Builder)
		buf := make([]byte, 4096)
		for {
			n, err := r.Body.Read(buf)
			body.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if !strings.Contains(body.String(), "Echo") {
			t.Errorf("request body missing operation: %s", body.String())
		}
		w.Write([]byte(`<Envelope><Body><Item><Field name="echo">yes</Field></Item></Body></Envelope>`))
	}))
	defer srv.Close()
	c := NewClient(srv.Client())
	def := Definition{Name: "e", Protocol: ProtocolSOAP, Endpoint: srv.URL, SOAPAction: "Echo", Params: map[string]string{"q": "{q}"}}
	resp, err := c.Call(context.Background(), def, map[string]string{"q": "hello"})
	if err != nil || resp.Items[0]["echo"] != "yes" {
		t.Fatalf("echo = %v, %v", resp, err)
	}
}
