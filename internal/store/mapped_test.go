package store

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
)

// restoreMapped attaches a v3 snapshot's bytes to a fresh store.
func restoreMapped(t testing.TB, data []byte) *Store {
	t.Helper()
	s := New()
	if err := s.RestoreMappedContext(context.Background(), data); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMappedRestoreMatchesHeap: the same v3 snapshot restored mapped
// and restored to the heap serves identical state — counts, listing
// order, records, and search hits with scores.
func TestMappedRestoreMatchesHeap(t *testing.T) {
	orig := multiTenantStore(t)
	want := storeFingerprint(t, orig)

	var buf bytes.Buffer
	if err := orig.SnapshotContext(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	heap := New()
	if err := heap.RestoreContext(context.Background(), bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	mapped := restoreMapped(t, buf.Bytes())

	if got := storeFingerprint(t, heap); got != want {
		t.Fatalf("heap restore state:\n%s\nwant:\n%s", got, want)
	}
	if got := storeFingerprint(t, mapped); got != want {
		t.Fatalf("mapped restore state:\n%s\nwant:\n%s", got, want)
	}

	// The mapped store reports mapped residency; the heap one none.
	var mappedBytes int64
	for _, st := range mapped.Status() {
		mappedBytes += st.MappedBytes
	}
	if mappedBytes == 0 {
		t.Fatal("mapped restore reports zero mapped bytes")
	}
	for _, st := range heap.Status() {
		if st.MappedBytes != 0 {
			t.Fatalf("heap restore reports %d mapped bytes for %s/%s", st.MappedBytes, st.Tenant, st.Dataset)
		}
	}
}

// TestMappedCopyOnWrite: mutations against a mapped store apply
// copy-on-write and converge to exactly the state of the same
// mutations against a heap restore; untouched datasets stay mapped.
func TestMappedCopyOnWrite(t *testing.T) {
	orig := multiTenantStore(t)
	var buf bytes.Buffer
	if err := orig.SnapshotContext(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	heap := New()
	if err := heap.RestoreContext(context.Background(), bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	mapped := restoreMapped(t, buf.Bytes())

	mutate := func(s *Store) {
		t.Helper()
		ds, err := s.DatasetContext(context.Background(), "tenant0", "owner0", "data0", PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ds.Put(Record{"id": "new1", "title": "fresh after boot", "body": "post-restore write"}); err != nil {
			t.Fatal(err)
		}
		if _, err := ds.Put(Record{"id": "r5", "title": "overwritten", "body": "replaced body"}); err != nil {
			t.Fatal(err)
		}
		if !ds.Delete("r9") {
			t.Fatal("delete of existing record reported false")
		}
		if ds.Delete("absent") {
			t.Fatal("delete of absent record reported true")
		}
	}
	mutate(heap)
	mutate(mapped)

	if got, want := storeFingerprint(t, mapped), storeFingerprint(t, heap); got != want {
		t.Fatalf("mapped CoW state:\n%s\nheap state:\n%s", got, want)
	}

	// Only the written dataset materialized its record section; its
	// siblings still serve mapped.
	for _, st := range mapped.Status() {
		touched := st.Tenant == "tenant0" && st.Dataset == "data0"
		ds, err := mapped.DatasetContext(context.Background(), st.Tenant, "owner"+st.Tenant[len("tenant"):], st.Dataset, PermRead)
		if err != nil {
			t.Fatal(err)
		}
		ds.mu.RLock()
		stillMapped := ds.mrecs != nil
		ds.mu.RUnlock()
		if touched && stillMapped {
			t.Fatalf("%s/%s: records still mapped after writes", st.Tenant, st.Dataset)
		}
		if !touched && !stillMapped {
			t.Fatalf("%s/%s: untouched dataset materialized its records", st.Tenant, st.Dataset)
		}
	}
}

// TestMappedSnapshotVerbatim: a checkpoint taken from a freshly
// mapped store re-emits the snapshot byte-for-byte — clean mapped
// record sections and index shards are copied, not re-encoded.
func TestMappedSnapshotVerbatim(t *testing.T) {
	orig := multiTenantStore(t)
	var first bytes.Buffer
	if err := orig.SnapshotContext(context.Background(), &first); err != nil {
		t.Fatal(err)
	}
	mapped := restoreMapped(t, first.Bytes())
	var second bytes.Buffer
	if err := mapped.SnapshotContext(context.Background(), &second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("snapshot of mapped store differs from its source: %d vs %d bytes", second.Len(), first.Len())
	}
}

// TestMappedSnapshotAfterCoWRoundTrips: a snapshot taken after
// copy-on-write materialization restores to equal state, and
// re-snapshotting that restore reproduces it bit-identically — the
// encoder is a pure function of content on both sides of the
// materialization boundary.
func TestMappedSnapshotAfterCoWRoundTrips(t *testing.T) {
	orig := multiTenantStore(t)
	var buf bytes.Buffer
	if err := orig.SnapshotContext(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	mapped := restoreMapped(t, buf.Bytes())
	ds, err := mapped.DatasetContext(context.Background(), "tenant1", "owner1", "data1", PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Put(Record{"id": "cow", "title": "materializing write", "body": "forces promotion"}); err != nil {
		t.Fatal(err)
	}
	var a bytes.Buffer
	if err := mapped.SnapshotContext(context.Background(), &a); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.RestoreContext(context.Background(), bytes.NewReader(a.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := storeFingerprint(t, restored), storeFingerprint(t, mapped); got != want {
		t.Fatalf("post-CoW snapshot restore state:\n%s\nwant:\n%s", got, want)
	}
	var b bytes.Buffer
	if err := restored.SnapshotContext(context.Background(), &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("post-CoW snapshot does not round-trip bit-identically")
	}
}

// TestSnapshotCompatMatrix: every written format restores to the same
// queryable state — v1 and v2 through the heap, v3 through both the
// heap and the mapped path.
func TestSnapshotCompatMatrix(t *testing.T) {
	orig := multiTenantStore(t)
	want := storeFingerprint(t, orig)

	var v1, v2, v3 bytes.Buffer
	if err := orig.SnapshotV1(&v1); err != nil {
		t.Fatal(err)
	}
	if err := orig.SnapshotV2Context(context.Background(), &v2); err != nil {
		t.Fatal(err)
	}
	if err := orig.SnapshotContext(context.Background(), &v3); err != nil {
		t.Fatal(err)
	}

	restores := map[string]func() (*Store, error){
		"v1-heap": func() (*Store, error) {
			s := New()
			return s, s.RestoreContext(context.Background(), bytes.NewReader(v1.Bytes()))
		},
		"v2-heap": func() (*Store, error) {
			s := New()
			return s, s.RestoreContext(context.Background(), bytes.NewReader(v2.Bytes()))
		},
		"v3-heap": func() (*Store, error) {
			s := New()
			return s, s.RestoreContext(context.Background(), bytes.NewReader(v3.Bytes()))
		},
		"v3-mapped": func() (*Store, error) {
			s := New()
			return s, s.RestoreMappedContext(context.Background(), v3.Bytes())
		},
	}
	for name, restore := range restores {
		s, err := restore()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := storeFingerprint(t, s); got != want {
			t.Fatalf("%s state:\n%s\nwant:\n%s", name, got, want)
		}
	}

	// The mapped path accepts only v3.
	if err := New().RestoreMappedContext(context.Background(), v2.Bytes()); err == nil {
		t.Fatal("mapped restore accepted a v2 stream")
	}
	if err := New().RestoreMappedContext(context.Background(), v1.Bytes()); err == nil {
		t.Fatal("mapped restore accepted a v1 document")
	}
}

// TestMappedRestoreRejectsCorrupt: truncations and bit flips fail the
// mapped restore at attach time — before anything can serve from the
// damaged bytes — and leave the target store untouched.
func TestMappedRestoreRejectsCorrupt(t *testing.T) {
	src := multiTenantStore(t)
	var good bytes.Buffer
	if err := src.SnapshotContext(context.Background(), &good); err != nil {
		t.Fatal(err)
	}
	gb := good.Bytes()
	flip := func(pos int) []byte {
		out := append([]byte(nil), gb...)
		out[pos] ^= 0xFF
		return out
	}
	cases := map[string][]byte{
		"empty":         {},
		"garbage":       []byte("this is not a snapshot"),
		"magic-only":    gb[:8],
		"truncated-10%": gb[:len(gb)/10],
		"truncated-50%": gb[:len(gb)/2],
		"truncated-99%": gb[:len(gb)-len(gb)/100],
		"flip-early":    flip(40),
		"flip-middle":   flip(len(gb) / 2),
		"flip-late":     flip(len(gb) - 10),
		"trailing-junk": append(append([]byte(nil), gb...), "extra bytes"...),
	}
	for name, data := range cases {
		target, _ := newInventory(t)
		before := storeFingerprint(t, target)
		if err := target.RestoreMappedContext(context.Background(), data); err == nil {
			t.Errorf("%s: corrupt snapshot accepted by mapped restore", name)
			continue
		}
		if after := storeFingerprint(t, target); after != before {
			t.Errorf("%s: failed mapped restore mutated target store", name)
		}
	}
}

// TestMappedConcurrentReadsAndMaterialization: concurrent readers on
// a mapped dataset race a writer whose first put materializes the
// record table. Run under -race this pins down the promotion's
// locking.
func TestMappedConcurrentReadsAndMaterialization(t *testing.T) {
	orig := multiTenantStore(t)
	var buf bytes.Buffer
	if err := orig.SnapshotContext(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	mapped := restoreMapped(t, buf.Bytes())
	ds, err := mapped.DatasetContext(context.Background(), "tenant2", "owner2", "data0", PermWrite)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				if _, ok := ds.Get(fmt.Sprintf("r%d", i%25)); !ok && i%25 != 3 && i%25 != 7 {
					t.Errorf("reader %d: r%d missing", r, i%25)
					return
				}
				if _, err := ds.SearchContext(context.Background(), SearchRequest{Query: "common"}); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				ds.List(0, 10)
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 20; i++ {
			if _, err := ds.Put(Record{"id": fmt.Sprintf("w%d", i), "title": "concurrent write", "body": "materializes on first put"}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	close(start)
	wg.Wait()
}
