package store

import (
	"context"
	"fmt"
	"testing"
)

func benchDataset(b *testing.B, n int) *Dataset {
	b.Helper()
	s := New()
	s.CreateTenant("t", "o")
	ds, err := s.CreateDataset("t", "o", Schema{
		Name: "d", Key: "id",
		Fields: []Field{
			{Name: "id", Required: true},
			{Name: "title", Searchable: true},
			{Name: "price", Type: TypeNumber},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ds.Put(Record{
			"id":    fmt.Sprintf("r%d", i),
			"title": fmt.Sprintf("product number %d deluxe edition", i),
			"price": fmt.Sprintf("%d", 10+i%90),
		})
	}
	return ds
}

func BenchmarkPut(b *testing.B) {
	ds := benchDataset(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds.Put(Record{
			"id":    fmt.Sprintf("r%d", i),
			"title": "a searchable product title",
			"price": "42",
		})
	}
}

func BenchmarkSearchText(b *testing.B) {
	ds := benchDataset(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.SearchContext(context.Background(), SearchRequest{Query: "deluxe", Limit: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchFiltered(b *testing.B) {
	ds := benchDataset(b, 5000)
	req := SearchRequest{
		Filters: []Filter{{Field: "price", Op: "<", Value: "30"}},
		OrderBy: "-price",
		Limit:   10,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.SearchContext(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// Snapshot/restore benchmarks live in persist_bench_test.go: the
// BenchmarkSnapshotRestore family compares serial v1 against the
// parallel framed v2 format at several worker counts.

func BenchmarkStats(b *testing.B) {
	ds := benchDataset(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ds.Stats(); len(got) != 3 {
			b.Fatal("stats lost fields")
		}
	}
}
