package store

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Mapped record sections: the store half of zero-copy boot.
//
// A v3 dataset frame carries its records in a binary record section
// instead of a JSON array, laid out so a restore can serve reads
// straight out of the snapshot file's mapped bytes:
//
//	u64  count                       (little-endian)
//	recDir   count x u64             entry offsets, insertion order
//	idSorted count x u32             entry indices sorted by record ID
//	entries  count x {uvarint-len id, uvarint nFields,
//	                  nFields x {uvarint-len key, uvarint-len value}}
//
// The fixed-width directories are random-accessed in place — List
// seeks to an insertion-order window, Get binary-searches idSorted —
// and individual entries decode on demand. A dataset restored mapped
// holds only the section's byte views until its first mutation, at
// which point the whole record table materializes to the heap
// (copy-on-write at dataset granularity; per-term posting
// materialization lives in the index layer). Entry keys are written
// sorted, so re-encoding a materialized-but-unchanged dataset
// reproduces the mapped bytes exactly — incremental checkpoints stay
// deterministic across the materialization boundary.

// recWriter accumulates a record section. It mirrors the index
// package's unexported codec; the duplication is the price of keeping
// that codec private to its hot paths.
type recWriter struct{ buf []byte }

func (w *recWriter) uvarint(x int) { w.buf = binary.AppendUvarint(w.buf, uint64(x)) }
func (w *recWriter) str(s string)  { w.uvarint(len(s)); w.buf = append(w.buf, s...) }
func (w *recWriter) u64(x uint64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, x) }
func (w *recWriter) u32(x uint32)  { w.buf = binary.LittleEndian.AppendUint32(w.buf, x) }

func (w *recWriter) reserve(n int) int {
	off := len(w.buf)
	w.buf = append(w.buf, make([]byte, n)...)
	return off
}

func (w *recWriter) patchU64(off int, x uint64) {
	binary.LittleEndian.PutUint64(w.buf[off:], x)
}

// encodeRecordSection serializes records in insertion order. Keys are
// sorted per entry so the encoding is a pure function of dataset
// content.
func encodeRecordSection(order []string, records map[string]Record) []byte {
	var w recWriter
	w.u64(uint64(len(order)))
	dirOff := w.reserve(len(order) * 8)
	perm := make([]int, len(order))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return order[perm[a]] < order[perm[b]] })
	for _, p := range perm {
		w.u32(uint32(p))
	}
	keys := make([]string, 0, 16)
	for i, id := range order {
		w.patchU64(dirOff+i*8, uint64(len(w.buf)))
		w.str(id)
		rec := records[id]
		keys = keys[:0]
		for k := range rec {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.uvarint(len(keys))
		for _, k := range keys {
			w.str(k)
			w.str(rec[k])
		}
	}
	return w.buf
}

var errRecordSection = fmt.Errorf("store: corrupt record section")

// mappedRecords is a record section attached in place: raw stays a
// view over the snapshot's bytes (mapped or heap — the code path is
// the same), entries decode on demand.
type mappedRecords struct {
	raw      []byte
	count    int
	recDir   []byte // count x u64
	idSorted []byte // count x u32
}

// attachRecordSection validates the section's directory structure —
// entry content is trusted to the frame checksum and decoded lazily.
func attachRecordSection(raw []byte) (*mappedRecords, error) {
	if len(raw) < 8 {
		return nil, errRecordSection
	}
	count := binary.LittleEndian.Uint64(raw)
	// Every entry needs a dir slot (8), an idSorted slot (4) and at
	// least 2 payload bytes, so an impossible count fails fast.
	if count > uint64(len(raw))/12 {
		return nil, errRecordSection
	}
	n := int(count)
	dirEnd := 8 + n*8
	idEnd := dirEnd + n*4
	if idEnd > len(raw) {
		return nil, errRecordSection
	}
	mr := &mappedRecords{
		raw:      raw,
		count:    n,
		recDir:   raw[8:dirEnd:dirEnd],
		idSorted: raw[dirEnd:idEnd:idEnd],
	}
	for i := 0; i < n; i++ {
		if off := mr.entryOff(i); off < idEnd || off >= len(raw) {
			return nil, errRecordSection
		}
	}
	return mr, nil
}

func (mr *mappedRecords) entryOff(i int) int {
	return int(binary.LittleEndian.Uint64(mr.recDir[i*8:]))
}

// readStr decodes one length-prefixed string at off, returning the
// string and the next offset, or ok=false on a malformed entry.
func (mr *mappedRecords) readStr(off int) (s string, next int, ok bool) {
	n, w := binary.Uvarint(mr.raw[off:])
	if w <= 0 || n > uint64(len(mr.raw)-off-w) {
		return "", 0, false
	}
	off += w
	return string(mr.raw[off : off+int(n)]), off + int(n), true
}

// idAt decodes only the record ID of entry i.
func (mr *mappedRecords) idAt(i int) (string, bool) {
	id, _, ok := mr.readStr(mr.entryOff(i))
	return id, ok
}

// entryAt decodes entry i completely. The returned record is freshly
// allocated and owned by the caller.
func (mr *mappedRecords) entryAt(i int) (string, Record, bool) {
	off := mr.entryOff(i)
	id, off, ok := mr.readStr(off)
	if !ok {
		return "", nil, false
	}
	nf, w := binary.Uvarint(mr.raw[off:])
	if w <= 0 || nf > uint64(len(mr.raw)-off) {
		return "", nil, false
	}
	off += w
	rec := make(Record, nf)
	for f := uint64(0); f < nf; f++ {
		var k, v string
		if k, off, ok = mr.readStr(off); !ok {
			return "", nil, false
		}
		if v, off, ok = mr.readStr(off); !ok {
			return "", nil, false
		}
		rec[k] = v
	}
	return id, rec, true
}

// find binary-searches idSorted for id, returning the entry's
// insertion-order index.
func (mr *mappedRecords) find(id string) (int, bool) {
	lo, hi := 0, mr.count
	for lo < hi {
		mid := (lo + hi) / 2
		ord := int(binary.LittleEndian.Uint32(mr.idSorted[mid*4:]))
		got, ok := mr.idAt(ord)
		if !ok {
			return 0, false
		}
		switch {
		case got < id:
			lo = mid + 1
		case got > id:
			hi = mid
		default:
			return ord, true
		}
	}
	return 0, false
}

// Dataset record accessors. Every read path goes through these so a
// dataset serves identically whether its records live in the heap map
// or a mapped section; write paths call materializeRecordsLocked
// first. All require d.mu held (read paths at least RLock, the
// materializer the write lock).

func (d *Dataset) lenLocked() int {
	if d.mrecs != nil {
		return d.mrecs.count
	}
	return len(d.records)
}

func (d *Dataset) existsLocked(id string) bool {
	if d.mrecs != nil {
		_, ok := d.mrecs.find(id)
		return ok
	}
	_, ok := d.records[id]
	return ok
}

// recordViewLocked returns a read-only view of the record: the live
// map on the heap path, a fresh decode on the mapped path. Callers
// must copy before mutating or retaining past the lock.
func (d *Dataset) recordViewLocked(id string) (Record, bool) {
	if d.mrecs != nil {
		i, ok := d.mrecs.find(id)
		if !ok {
			return nil, false
		}
		_, rec, ok := d.mrecs.entryAt(i)
		return rec, ok
	}
	rec, ok := d.records[id]
	return rec, ok
}

// viewAtLocked returns the id and read-only record at insertion
// position i.
func (d *Dataset) viewAtLocked(i int) (string, Record, bool) {
	if d.mrecs != nil {
		return d.mrecs.entryAt(i)
	}
	id := d.order[i]
	return id, d.records[id], true
}

// materializeRecordsLocked promotes a mapped record section to the
// heap map — the store-level copy-on-write boundary, crossed once per
// dataset on its first mutation (or first WAL-replayed record, which
// is the same thing: only datasets with a log tail pay it at boot).
func (d *Dataset) materializeRecordsLocked() {
	mr := d.mrecs
	if mr == nil {
		return
	}
	d.records = make(map[string]Record, mr.count)
	d.order = make([]string, 0, mr.count)
	for i := 0; i < mr.count; i++ {
		id, rec, ok := mr.entryAt(i)
		if !ok {
			// Post-checksum corruption; surface what decodes rather
			// than fail a write path that cannot return decode errors.
			continue
		}
		d.records[id] = rec
		d.order = append(d.order, id)
	}
	d.mrecs = nil
}

// MemStats reports the dataset's mapped-vs-heap residency: bytes
// still served from mapped snapshot views (record section + index
// payloads) and bytes copied to the heap by copy-on-write
// materialization.
func (d *Dataset) MemStats() (mappedBytes, materializedBytes int64) {
	d.mu.RLock()
	if d.mrecs != nil {
		mappedBytes = int64(len(d.mrecs.raw))
	}
	d.mu.RUnlock()
	st := d.ix.MMapStats()
	return mappedBytes + st.MappedBytes, st.MaterializedBytes
}
