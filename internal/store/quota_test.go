package store

import (
	"errors"
	"fmt"
	"testing"
)

func TestQuotaEnforced(t *testing.T) {
	s, ds := newInventory(t) // 4 records exist
	if err := s.SetQuota("gamerqueen", "ann", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Put(Record{"sku": "G5", "title": "Fifth Game"}); err != nil {
		t.Fatalf("put within quota failed: %v", err)
	}
	_, err := ds.Put(Record{"sku": "G6", "title": "Sixth Game"})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("quota not enforced: %v", err)
	}
	// Replacing an existing record is allowed at the quota ceiling.
	if _, err := ds.Put(Record{"sku": "G1", "title": "Zelda Updated"}); err != nil {
		t.Fatalf("replacement blocked by quota: %v", err)
	}
	// Deleting frees room.
	ds.Delete("G2")
	if _, err := ds.Put(Record{"sku": "G7", "title": "Seventh"}); err != nil {
		t.Fatalf("put after delete failed: %v", err)
	}
}

func TestQuotaSpansDatasets(t *testing.T) {
	s, _ := newInventory(t) // inventory has 4 records
	if err := s.SetQuota("gamerqueen", "ann", 6); err != nil {
		t.Fatal(err)
	}
	other, err := s.CreateDataset("gamerqueen", "ann", Schema{
		Name: "notes", Fields: []Field{{Name: "text", Searchable: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := other.Put(Record{"text": fmt.Sprintf("note %d", i)}); err != nil {
			t.Fatalf("note %d: %v", i, err)
		}
	}
	if _, err := other.Put(Record{"text": "over quota"}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("cross-dataset quota not enforced: %v", err)
	}
}

func TestQuotaOnlyOwnerSets(t *testing.T) {
	s, _ := newInventory(t)
	if err := s.SetQuota("gamerqueen", "mallory", 1); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("mallory set quota: %v", err)
	}
	if err := s.SetQuota("ghost", "ann", 1); !errors.Is(err, ErrNoSuchTenant) {
		t.Fatalf("ghost tenant: %v", err)
	}
}

func TestQuotaZeroUnlimited(t *testing.T) {
	s, ds := newInventory(t)
	if err := s.SetQuota("gamerqueen", "ann", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := ds.Put(Record{"sku": fmt.Sprintf("X%d", i), "title": "t"}); err != nil {
			t.Fatalf("unlimited quota blocked put: %v", err)
		}
	}
}
