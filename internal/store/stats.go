package store

import (
	"sort"
	"strconv"
)

// FieldStats summarizes one column for the design interface: when a
// designer configures "how each [source] should be searched" and
// binds layout elements, the GUI shows what each field contains.
type FieldStats struct {
	Field string
	Type  FieldType
	// NonEmpty counts records with a value.
	NonEmpty int
	// Distinct counts unique values (capped at CapDistinct).
	Distinct int
	// TopValues holds up to 5 most frequent values with counts.
	TopValues []ValueCount
	// Min/Max are populated for numeric fields.
	Min, Max float64
}

// ValueCount is a value with its frequency.
type ValueCount struct {
	Value string
	N     int
}

// CapDistinct bounds distinct-value tracking per field.
const CapDistinct = 10000

// Stats computes per-field statistics over the dataset.
func (d *Dataset) Stats() []FieldStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]FieldStats, 0, len(d.schema.Fields))
	for _, f := range d.schema.Fields {
		fs := FieldStats{Field: f.Name, Type: f.Type}
		counts := make(map[string]int)
		first := true
		for i, n := 0, d.lenLocked(); i < n; i++ {
			_, rec, ok := d.viewAtLocked(i)
			if !ok {
				continue
			}
			v := rec[f.Name]
			if v == "" {
				continue
			}
			fs.NonEmpty++
			if len(counts) < CapDistinct {
				counts[v]++
			}
			if f.Type == TypeNumber {
				if x, err := strconv.ParseFloat(v, 64); err == nil {
					if first || x < fs.Min {
						fs.Min = x
					}
					if first || x > fs.Max {
						fs.Max = x
					}
					first = false
				}
			}
		}
		fs.Distinct = len(counts)
		top := make([]ValueCount, 0, len(counts))
		for v, n := range counts {
			top = append(top, ValueCount{v, n})
		}
		sort.Slice(top, func(i, j int) bool {
			if top[i].N != top[j].N {
				return top[i].N > top[j].N
			}
			return top[i].Value < top[j].Value
		})
		if len(top) > 5 {
			top = top[:5]
		}
		fs.TopValues = top
		out = append(out, fs)
	}
	return out
}
