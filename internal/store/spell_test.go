package store

import "testing"

func TestSuggestQueryCorrectsTypo(t *testing.T) {
	_, ds := newInventory(t)
	got, changed := ds.SuggestQuery("zelta")
	if !changed || got != "zelda" {
		t.Fatalf("SuggestQuery = %q, %v", got, changed)
	}
}

func TestSuggestQueryKeepsValidWords(t *testing.T) {
	_, ds := newInventory(t)
	got, changed := ds.SuggestQuery("zelda adventure")
	if changed || got != "zelda adventure" {
		t.Fatalf("valid query altered: %q %v", got, changed)
	}
}

func TestSuggestQueryMixed(t *testing.T) {
	_, ds := newInventory(t)
	got, changed := ds.SuggestQuery("zelta adventure")
	if !changed || got != "zelda adventure" {
		t.Fatalf("mixed query = %q, %v", got, changed)
	}
}

func TestSuggestQueryGibberishUnchanged(t *testing.T) {
	_, ds := newInventory(t)
	got, changed := ds.SuggestQuery("xxyyzz qqwwee")
	if changed {
		t.Fatalf("gibberish corrected to %q", got)
	}
}

func TestSuggestQueryNoSearchableFields(t *testing.T) {
	s := New()
	s.CreateTenant("t", "o")
	ds, _ := s.CreateDataset("t", "o", Schema{Name: "d", Fields: []Field{{Name: "a"}}})
	if _, changed := ds.SuggestQuery("anything"); changed {
		t.Fatal("dataset without searchable fields corrected a query")
	}
}
