package store

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/index"
	"repro/internal/wal"
)

// Common errors. ErrAccessDenied is returned whenever an actor
// touches a tenant space without ownership or a grant.
var (
	ErrAccessDenied  = fmt.Errorf("store: access denied")
	ErrNoSuchTenant  = fmt.Errorf("store: no such tenant")
	ErrNoSuchDataset = fmt.Errorf("store: no such dataset")
	ErrDatasetExists = fmt.Errorf("store: dataset already exists")
)

// Permission is the access level of a grant.
type Permission string

// Grant levels: readers can query, writers can also modify.
const (
	PermRead  Permission = "read"
	PermWrite Permission = "write"
)

// ErrQuotaExceeded is returned when a tenant write would exceed its
// record quota.
var ErrQuotaExceeded = fmt.Errorf("store: tenant record quota exceeded")

// tenant is one designer's private space.
type tenant struct {
	owner    string
	datasets map[string]*Dataset
	grants   map[string]Permission // actor -> permission
	// quota bounds total records across the tenant's datasets
	// (0 = unlimited). Hosted platforms meter designer storage.
	quota int
}

// Store is the multi-tenant proprietary data store.
type Store struct {
	mu      sync.RWMutex
	tenants map[string]*tenant
	// shardTarget is the index shard count for datasets (0 = one per
	// CPU). Restores honor it too: a snapshot written under another
	// layout reshards to this target on load.
	shardTarget int
	// cache, when non-nil, is attached to every dataset index the
	// store creates or restores; each gets its own key namespace.
	cache *index.Cache
	// wal, when non-nil, receives every acknowledged mutation. Wired
	// by AttachWAL (wal.go) after restore + replay. Guarded by mu.
	wal *wal.Log
}

// Option configures a Store at construction time.
type Option func(*Store)

// WithShardTarget sets the full-text index shard count for every
// dataset the store creates or restores (0 = auto, one per CPU).
// Individual datasets can still be resharded online afterwards.
func WithShardTarget(n int) Option {
	return func(s *Store) {
		if n >= 0 {
			s.shardTarget = n
		}
	}
}

// WithCache attaches a shared cross-request result cache to every
// dataset index the store creates or restores. Tenants share the
// cache's capacity but never its keys (per-index namespaces), and
// stamped validation means a hit is always from the dataset's current
// mutation era. Nil leaves caching off.
func WithCache(c *index.Cache) Option {
	return func(s *Store) { s.cache = c }
}

// New returns an empty store.
func New(opts ...Option) *Store {
	s := &Store{tenants: make(map[string]*tenant)}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// CreateTenant creates a private space owned by owner. Creating an
// existing tenant is an error.
func (s *Store) CreateTenant(id, owner string) error {
	s.mu.Lock()
	if _, ok := s.tenants[id]; ok {
		s.mu.Unlock()
		return fmt.Errorf("store: tenant %q already exists", id)
	}
	s.tenants[id] = &tenant{
		owner:    owner,
		datasets: make(map[string]*Dataset),
		grants:   make(map[string]Permission),
	}
	c := s.walAppendLocked(&wal.Record{Op: wal.OpCreateTenant, Tenant: id, Actor: owner})
	s.mu.Unlock()
	return c.Wait(context.Background())
}

// SetQuota bounds the tenant's total record count (0 = unlimited).
// Only the owner may set it (in production, the platform operator).
func (s *Store) SetQuota(id, byActor string, records int) error {
	s.mu.Lock()
	t, ok := s.tenants[id]
	if !ok {
		s.mu.Unlock()
		return ErrNoSuchTenant
	}
	if t.owner != byActor {
		s.mu.Unlock()
		return ErrAccessDenied
	}
	t.quota = records
	for _, ds := range t.datasets {
		ds.setQuotaCheck(usageExcluding(t, ds), records)
	}
	c := s.walAppendLocked(&wal.Record{Op: wal.OpSetQuota, Tenant: id, Actor: byActor, N: records})
	s.mu.Unlock()
	return c.Wait(context.Background())
}

// usageExcluding reports the tenant's record count across every
// dataset except self. The excluded dataset adds its own (lock-held)
// count inside Put, avoiding self-deadlock.
func usageExcluding(t *tenant, self *Dataset) func() int {
	return func() int {
		total := 0
		for _, ds := range t.datasets {
			if ds != self {
				total += ds.Len()
			}
		}
		return total
	}
}

// Grant gives actor the given permission on tenant id. Only the owner
// may grant.
func (s *Store) Grant(id, byActor, toActor string, perm Permission) error {
	s.mu.Lock()
	t, ok := s.tenants[id]
	if !ok {
		s.mu.Unlock()
		return ErrNoSuchTenant
	}
	if t.owner != byActor {
		s.mu.Unlock()
		return ErrAccessDenied
	}
	t.grants[toActor] = perm
	c := s.walAppendLocked(&wal.Record{Op: wal.OpGrant, Tenant: id, Actor: byActor, ID: toActor, Perm: string(perm)})
	s.mu.Unlock()
	return c.Wait(context.Background())
}

// Revoke removes actor's grant. Only the owner may revoke.
func (s *Store) Revoke(id, byActor, fromActor string) error {
	s.mu.Lock()
	t, ok := s.tenants[id]
	if !ok {
		s.mu.Unlock()
		return ErrNoSuchTenant
	}
	if t.owner != byActor {
		s.mu.Unlock()
		return ErrAccessDenied
	}
	delete(t.grants, fromActor)
	c := s.walAppendLocked(&wal.Record{Op: wal.OpRevoke, Tenant: id, Actor: byActor, ID: fromActor})
	s.mu.Unlock()
	return c.Wait(context.Background())
}

func (s *Store) access(id, actor string, need Permission) (*tenant, error) {
	t, ok := s.tenants[id]
	if !ok {
		return nil, ErrNoSuchTenant
	}
	if t.owner == actor {
		return t, nil
	}
	perm, ok := t.grants[actor]
	if !ok {
		return nil, ErrAccessDenied
	}
	if need == PermWrite && perm != PermWrite {
		return nil, ErrAccessDenied
	}
	return t, nil
}

// CreateDataset creates a dataset in the tenant space.
func (s *Store) CreateDataset(tenantID, actor string, schema Schema) (*Dataset, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	t, err := s.access(tenantID, actor, PermWrite)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if _, ok := t.datasets[schema.Name]; ok {
		s.mu.Unlock()
		return nil, ErrDatasetExists
	}
	ds := newDataset(schema, s.shardTarget, s.cache)
	t.datasets[schema.Name] = ds
	if t.quota > 0 {
		ds.setQuotaCheck(usageExcluding(t, ds), t.quota)
	}
	var c *wal.Commit
	if s.wal != nil {
		ds.bindWAL(s.wal, tenantID)
		sb, merr := json.Marshal(schema)
		if merr != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("store: encode schema for wal: %w", merr)
		}
		c = s.wal.Append(&wal.Record{Op: wal.OpCreateDataset, Tenant: tenantID, Actor: actor, Dataset: schema.Name, Schema: sb})
	}
	s.mu.Unlock()
	if err := c.Wait(context.Background()); err != nil {
		return nil, err
	}
	return ds, nil
}

// DatasetContext returns a dataset for reading or writing; access is
// checked at the requested level. The lookup itself is cheap, but it
// honors an already-cancelled ctx so a request that timed out in an
// admission queue fails before touching tenant state.
func (s *Store) DatasetContext(ctx context.Context, tenantID, actor, name string, need Permission) (*Dataset, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, err := s.access(tenantID, actor, need)
	if err != nil {
		return nil, err
	}
	ds, ok := t.datasets[name]
	if !ok {
		return nil, ErrNoSuchDataset
	}
	return ds, nil
}

// DropDataset removes a dataset.
func (s *Store) DropDataset(tenantID, actor, name string) error {
	s.mu.Lock()
	t, err := s.access(tenantID, actor, PermWrite)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if _, ok := t.datasets[name]; !ok {
		s.mu.Unlock()
		return ErrNoSuchDataset
	}
	delete(t.datasets, name)
	c := s.walAppendLocked(&wal.Record{Op: wal.OpDropDataset, Tenant: tenantID, Actor: actor, Dataset: name})
	s.mu.Unlock()
	return c.Wait(context.Background())
}

// Datasets lists the dataset names visible to actor in the tenant.
func (s *Store) Datasets(tenantID, actor string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, err := s.access(tenantID, actor, PermRead)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(t.datasets))
	for name := range t.datasets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Tenants lists all tenant IDs (administrative; no data exposure).
func (s *Store) Tenants() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ReshardContext rebuilds one dataset's full-text index to n shards
// online. Access is checked at write level; the migration itself
// takes only that dataset's locks, so every other tenant and dataset
// is untouched while it runs. Cancelling ctx aborts the migration
// between shard copies, leaving the live index unchanged.
func (s *Store) ReshardContext(ctx context.Context, tenantID, actor, name string, n int) error {
	ds, err := s.DatasetContext(ctx, tenantID, actor, name, PermWrite)
	if err != nil {
		return err
	}
	return ds.ReshardContext(ctx, n)
}

// AddBatchContext bulk-inserts recs into a dataset after a write-
// level access check, returning the assigned IDs in input order. The
// batched write path analyzes documents in a worker pool and applies
// per-shard groups under one lock acquisition each — the bulk-load
// fast path behind `symctl load`.
func (s *Store) AddBatchContext(ctx context.Context, tenantID, actor, name string, recs []Record) ([]string, error) {
	ds, err := s.DatasetContext(ctx, tenantID, actor, name, PermWrite)
	if err != nil {
		return nil, err
	}
	return ds.AddBatchContext(ctx, recs)
}

// DatasetStatus is the operator-facing view of one dataset's index
// layout: shard count, ring generation (increments per completed
// reshard), tombstone ratio, whether a migration is in flight, and
// the block-max evaluator's cumulative posting counters (decoded vs
// jumped without decoding — operator-visible proof early exit is
// engaging on this dataset's traffic).
type DatasetStatus struct {
	Tenant          string  `json:"tenant"`
	Dataset         string  `json:"dataset"`
	Records         int     `json:"records"`
	Shards          int     `json:"shards"`
	RingGen         uint64  `json:"ringGen"`
	TombstoneRatio  float64 `json:"tombstoneRatio"`
	Resharding      bool    `json:"resharding,omitempty"`
	PostingsScored  uint64  `json:"postingsScored"`
	PostingsSkipped uint64  `json:"postingsSkipped"`
	// Residency counters for mapped restores: bytes still served as
	// views over the mapped snapshot vs. bytes copied to the heap by
	// copy-on-write materialization. Both zero for heap restores.
	MappedBytes       int64 `json:"mappedBytes,omitempty"`
	MaterializedBytes int64 `json:"materializedBytes,omitempty"`
}

// Status reports every dataset's shard layout in deterministic
// (tenant, dataset) order. Administrative like Tenants: layout
// metadata only, no record exposure. The store lock is released
// before any dataset is inspected.
func (s *Store) Status() []DatasetStatus {
	s.mu.RLock()
	type ref struct {
		tenant, name string
		ds           *Dataset
	}
	refs := make([]ref, 0)
	for id, t := range s.tenants {
		for name, ds := range t.datasets {
			refs = append(refs, ref{tenant: id, name: name, ds: ds})
		}
	}
	s.mu.RUnlock()
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].tenant != refs[j].tenant {
			return refs[i].tenant < refs[j].tenant
		}
		return refs[i].name < refs[j].name
	})
	out := make([]DatasetStatus, len(refs))
	for i, r := range refs {
		scan := r.ds.ScanStats()
		mapped, materialized := r.ds.MemStats()
		out[i] = DatasetStatus{
			Tenant:          r.tenant,
			Dataset:         r.name,
			Records:         r.ds.Len(),
			Shards:          r.ds.NumShards(),
			RingGen:         r.ds.RingGen(),
			TombstoneRatio:  r.ds.TombstoneRatio(),
			Resharding:      r.ds.Resharding(),
			PostingsScored:  scan.Scored,
			PostingsSkipped: scan.Skipped,

			MappedBytes:       mapped,
			MaterializedBytes: materialized,
		}
	}
	return out
}
