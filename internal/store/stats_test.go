package store

import (
	"context"
	"testing"
)

func TestStats(t *testing.T) {
	_, ds := newInventory(t)
	stats := ds.Stats()
	byField := map[string]FieldStats{}
	for _, s := range stats {
		byField[s.Field] = s
	}
	price := byField["price"]
	if price.NonEmpty != 4 || price.Min != 19.99 || price.Max != 49.99 {
		t.Fatalf("price stats = %+v", price)
	}
	producer := byField["producer"]
	if producer.Distinct != 3 {
		t.Fatalf("producer distinct = %d", producer.Distinct)
	}
	if len(producer.TopValues) == 0 || producer.TopValues[0].Value != "Nintendo" || producer.TopValues[0].N != 2 {
		t.Fatalf("producer top = %v", producer.TopValues)
	}
	image := byField["image"]
	if image.NonEmpty != 1 {
		t.Fatalf("image non-empty = %d", image.NonEmpty)
	}
	// Field order matches schema order.
	if stats[0].Field != "sku" || stats[1].Field != "title" {
		t.Fatalf("order = %v %v", stats[0].Field, stats[1].Field)
	}
}

func TestStatsEmptyDataset(t *testing.T) {
	s := New()
	s.CreateTenant("t", "o")
	ds, _ := s.CreateDataset("t", "o", Schema{Name: "d", Fields: []Field{{Name: "x", Type: TypeNumber}}})
	stats := ds.Stats()
	if len(stats) != 1 || stats[0].NonEmpty != 0 || stats[0].Distinct != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestFacets(t *testing.T) {
	_, ds := newInventory(t)
	facets, err := ds.FacetsContext(context.Background(), SearchRequest{Query: "game"}, "producer")
	if err != nil {
		t.Fatal(err)
	}
	if len(facets) != 3 || facets[0].Value != "Nintendo" || facets[0].N != 2 {
		t.Fatalf("facets = %v", facets)
	}
	// Facets compose with structured filters.
	facets, err = ds.FacetsContext(context.Background(), SearchRequest{Filters: []Filter{{Field: "instock", Op: "=", Value: "true"}}}, "producer")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range facets {
		total += f.N
	}
	if total != 3 {
		t.Fatalf("in-stock facet total = %d", total)
	}
	if _, err := ds.FacetsContext(context.Background(), SearchRequest{}, "ghost"); err == nil {
		t.Fatal("unknown facet field accepted")
	}
}

func TestStatsTopValuesCapped(t *testing.T) {
	s := New()
	s.CreateTenant("t", "o")
	ds, _ := s.CreateDataset("t", "o", Schema{Name: "d", Fields: []Field{{Name: "v"}}})
	for i := 0; i < 20; i++ {
		ds.Put(Record{"v": string(rune('a' + i%10))})
	}
	stats := ds.Stats()
	if len(stats[0].TopValues) != 5 {
		t.Fatalf("top values = %d", len(stats[0].TopValues))
	}
	if stats[0].Distinct != 10 {
		t.Fatalf("distinct = %d", stats[0].Distinct)
	}
}
