package store

// Legacy non-context entrypoints, kept for one release while callers
// migrate to the ctx-first API. Each delegates with a background
// context. This file doubles as the allowlist for the CI context-gate
// over new exported methods.

import (
	"context"
	"io"

	"repro/internal/index"
)

// Dataset looks up a dataset without cancellation.
//
// Deprecated: use DatasetContext.
func (s *Store) Dataset(tenantID, actor, name string, need Permission) (*Dataset, error) {
	return s.DatasetContext(context.Background(), tenantID, actor, name, need)
}

// Reshard reshards a dataset without cancellation.
//
// Deprecated: use ReshardContext.
func (s *Store) Reshard(tenantID, actor, name string, n int) error {
	return s.ReshardContext(context.Background(), tenantID, actor, name, n)
}

// Snapshot serializes the store without cancellation.
//
// Deprecated: use SnapshotContext.
func (s *Store) Snapshot(w io.Writer, opts ...PersistOption) error {
	return s.SnapshotContext(context.Background(), w, opts...)
}

// Restore loads a snapshot without cancellation.
//
// Deprecated: use RestoreContext.
func (s *Store) Restore(r io.Reader, opts ...PersistOption) error {
	return s.RestoreContext(context.Background(), r, opts...)
}

// Search runs a dataset query without cancellation.
//
// Deprecated: use SearchContext.
func (d *Dataset) Search(req SearchRequest) ([]Hit, error) {
	return d.SearchContext(context.Background(), req)
}

// Facets counts facet values without cancellation.
//
// Deprecated: use FacetsContext.
func (d *Dataset) Facets(req SearchRequest, field string) ([]index.FacetCount, error) {
	return d.FacetsContext(context.Background(), req, field)
}

// Reshard migrates the dataset's index without cancellation.
//
// Deprecated: use ReshardContext.
func (d *Dataset) Reshard(n int) error {
	return d.ReshardContext(context.Background(), n)
}
