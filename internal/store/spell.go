package store

import "strings"

// SuggestQuery corrects a free-text query against the dataset's
// searchable-field vocabulary: each word with no match in any
// searchable field is replaced by its closest indexed term. It
// returns the corrected query and whether anything changed — the
// dataset-level "did you mean" used when a proprietary primary source
// returns nothing.
func (d *Dataset) SuggestQuery(query string) (string, bool) {
	fields := d.schema.SearchableFields()
	if len(fields) == 0 {
		return query, false
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	words := strings.Fields(query)
	changed := false
	for i, w := range words {
		// A word is fine if any searchable field has it.
		present := false
		for _, f := range fields {
			if d.ix.DocFreq(f, w) > 0 {
				present = true
				break
			}
		}
		if present {
			continue
		}
		for _, f := range fields {
			if sugs := d.ix.SuggestTerms(f, w, 1); len(sugs) > 0 {
				words[i] = sugs[0]
				changed = true
				break
			}
		}
	}
	if !changed {
		return query, false
	}
	return strings.Join(words, " "), true
}
