package store

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/index"
	"repro/internal/textproc"
	"repro/internal/wal"
)

// Dataset is one named, schema'd collection of records inside a
// tenant space, with a full-text index over its searchable fields.
type Dataset struct {
	schema Schema

	mu      sync.RWMutex
	records map[string]Record
	order   []string // insertion order of IDs, for stable listing
	// mrecs, when non-nil, holds the dataset's records as views into a
	// mapped snapshot's record section; records/order are empty until
	// the first mutation materializes them (see mapped.go). Guarded by
	// mu.
	mrecs  *mappedRecords
	nextID int
	ix     *index.Index
	// ver counts mutations (puts, deletes, reshards) for dirty
	// tracking: incremental checkpoints re-encode a dataset's frame
	// only when its version moved since the cached encode. Guarded by
	// mu — bumped under the write lock, read under the read lock, so
	// a version observed while encoding is consistent with the bytes.
	ver uint64

	// Tenant quota enforcement, wired by the store: usage reports
	// records across the tenant, quota is the ceiling (0 = none).
	usage func() int
	quota int

	// Write-ahead logging, wired by the store (see wal.go): when wlog
	// is non-nil every acknowledged put/delete appends a record tagged
	// with the owning tenant. Guarded by mu.
	wlog      *wal.Log
	walTenant string
}

// setQuotaCheck wires tenant-level quota enforcement into Put.
func (d *Dataset) setQuotaCheck(usage func() int, quota int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.usage = usage
	d.quota = quota
}

// newDataset builds a dataset whose index has shardTarget shards
// (0 = the index default, one per CPU) and, when cache is non-nil,
// participates in the shared cross-request cache.
func newDataset(schema Schema, shardTarget int, cache *index.Cache) *Dataset {
	var ix *index.Index
	if shardTarget > 0 {
		ix = index.New(index.WithShards(shardTarget))
	} else {
		ix = index.New()
	}
	if cache != nil {
		ix.AttachCache(cache)
	}
	ds := &Dataset{
		schema:  schema,
		records: make(map[string]Record),
		ix:      ix,
	}
	for _, f := range schema.Fields {
		if f.Searchable {
			boost := 1.0
			if f.Name == "title" || f.Name == schema.Key {
				boost = 2
			}
			ds.ix.SetFieldOptions(f.Name, index.FieldOptions{Boost: boost})
		}
	}
	return ds
}

// Schema returns the dataset schema.
func (d *Dataset) Schema() Schema { return d.schema }

// Put inserts or replaces a record with no deadline, returning its ID.
func (d *Dataset) Put(rec Record) (string, error) {
	return d.PutContext(context.Background(), rec)
}

// PutContext inserts or replaces a record, returning its ID. When a
// write-ahead log is attached, the call returns only after the record
// is durable under the log's fsync policy; a *wal.WriteError return
// means the write applied in memory but is NOT durable (the log has
// failed — reads keep serving, further writes fail fast).
func (d *Dataset) PutContext(ctx context.Context, rec Record) (string, error) {
	if err := checkRecord(d.schema, rec); err != nil {
		return "", err
	}
	// Quota check runs BEFORE taking the write lock: usage() reads
	// sibling datasets' counts, and holding our lock while taking
	// theirs would invert lock order against their own Puts. The
	// check is therefore approximate under concurrent writers, which
	// is the usual contract for storage metering.
	d.mu.RLock()
	quota, usage := d.quota, d.usage
	cur := d.lenLocked()
	isNew := true
	if d.schema.Key != "" {
		isNew = !d.existsLocked(rec[d.schema.Key])
	}
	d.mu.RUnlock()
	if quota > 0 && usage != nil && isNew && usage()+cur >= quota {
		return "", ErrQuotaExceeded
	}

	d.mu.Lock()
	d.materializeRecordsLocked()
	var id string
	if d.schema.Key != "" {
		id = rec[d.schema.Key]
		if id == "" {
			d.mu.Unlock()
			return "", fmt.Errorf("store: record missing key field %q", d.schema.Key)
		}
	} else {
		d.nextID++
		id = strconv.Itoa(d.nextID)
	}
	if _, exists := d.records[id]; !exists {
		d.order = append(d.order, id)
	}
	cp := make(Record, len(rec))
	for k, v := range rec {
		cp[k] = v
	}
	d.records[id] = cp
	d.ver++
	err := d.reindexLocked(id, cp)
	// Append under the lock (log order = apply order for this key),
	// wait after releasing it so the fsync stalls only this caller.
	c := d.walAppendLocked(&wal.Record{Op: wal.OpPut, ID: id, Rec: cp})
	d.mu.Unlock()
	if err != nil {
		return "", err
	}
	if err := c.Wait(ctx); err != nil {
		return "", err
	}
	return id, nil
}

func (d *Dataset) reindexLocked(id string, rec Record) error {
	return d.ix.Add(docFor(d.schema, id, rec))
}

// docFor projects a record into its index document: every schema
// field stored verbatim, searchable non-empty fields analyzed.
func docFor(s Schema, id string, rec Record) index.Document {
	fields := make(map[string]string)
	stored := make(map[string]string, len(rec))
	for _, f := range s.Fields {
		v := rec[f.Name]
		stored[f.Name] = v
		if f.Searchable && v != "" {
			fields[f.Name] = v
		}
	}
	return index.Document{ID: id, Fields: fields, Stored: stored}
}

// AddBatchContext inserts or replaces recs as one batch, returning
// the assigned IDs in input order. The heavy lifting — text analysis
// and per-shard index application — runs through the index's batched
// write path (one lock acquisition per shard instead of one per
// document), which is what makes bulk loads scale; results are
// bit-identical to looping PutContext. The batch is atomic in memory:
// cancellation is honored before anything is applied, and once
// application starts the whole batch lands. One WAL record is still
// appended per document (replay needs per-record granularity), but
// the call waits once, on the last commit — the log syncs in order,
// so the last record durable implies the whole batch is.
func (d *Dataset) AddBatchContext(ctx context.Context, recs []Record) ([]string, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	for i := range recs {
		if err := checkRecord(d.schema, recs[i]); err != nil {
			return nil, fmt.Errorf("store: batch record %d: %w", i, err)
		}
		if d.schema.Key != "" && recs[i][d.schema.Key] == "" {
			return nil, fmt.Errorf("store: batch record %d missing key field %q", i, d.schema.Key)
		}
	}
	// Approximate pre-lock quota check, same contract as PutContext.
	d.mu.RLock()
	quota, usage := d.quota, d.usage
	cur := d.lenLocked()
	newCount := len(recs)
	if d.schema.Key != "" {
		newCount = 0
		seen := make(map[string]bool, len(recs))
		for _, rec := range recs {
			id := rec[d.schema.Key]
			if !d.existsLocked(id) && !seen[id] {
				seen[id] = true
				newCount++
			}
		}
	}
	d.mu.RUnlock()
	if quota > 0 && usage != nil && newCount > 0 && usage()+cur+newCount > quota {
		return nil, ErrQuotaExceeded
	}

	d.mu.Lock()
	d.materializeRecordsLocked()
	ids := make([]string, len(recs))
	cps := make([]Record, len(recs))
	docs := make([]index.Document, len(recs))
	assigned := 0
	for i, rec := range recs {
		if d.schema.Key != "" {
			ids[i] = rec[d.schema.Key]
		} else {
			d.nextID++
			assigned++
			ids[i] = strconv.Itoa(d.nextID)
		}
		cp := make(Record, len(rec))
		for k, v := range rec {
			cp[k] = v
		}
		cps[i] = cp
		docs[i] = docFor(d.schema, ids[i], cp)
	}
	// Index first: a ctx error here means nothing was applied, so the
	// records map is untouched and the assigned IDs can be returned to
	// the sequence for the next batch to reuse.
	if err := d.ix.AddBatchContext(ctx, docs); err != nil {
		d.nextID -= assigned
		d.mu.Unlock()
		return nil, err
	}
	var last *wal.Commit
	for i, id := range ids {
		if _, exists := d.records[id]; !exists {
			d.order = append(d.order, id)
		}
		d.records[id] = cps[i]
		last = d.walAppendLocked(&wal.Record{Op: wal.OpPut, ID: id, Rec: cps[i]})
	}
	d.ver++
	d.mu.Unlock()
	if err := last.Wait(ctx); err != nil {
		return nil, err
	}
	return ids, nil
}

// Get returns the record with the given ID.
func (d *Dataset) Get(id string) (Record, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	rec, ok := d.recordViewLocked(id)
	if !ok {
		return nil, false
	}
	cp := make(Record, len(rec))
	for k, v := range rec {
		cp[k] = v
	}
	return cp, true
}

// Delete removes a record with no deadline, reporting whether it
// existed. Durability failures are deferred to the next write's error
// (the log latches failed); use DeleteContext to observe them here.
func (d *Dataset) Delete(id string) bool {
	ok, _ := d.DeleteContext(context.Background(), id)
	return ok
}

// DeleteContext removes a record, reporting whether it existed. Like
// PutContext, with a log attached the call returns only after the
// tombstone is durable; a *wal.WriteError means the delete applied in
// memory but is not durable.
func (d *Dataset) DeleteContext(ctx context.Context, id string) (bool, error) {
	d.mu.Lock()
	if !d.deleteLocked(id) {
		d.mu.Unlock()
		return false, nil
	}
	c := d.walAppendLocked(&wal.Record{Op: wal.OpDelete, ID: id})
	d.mu.Unlock()
	return true, c.Wait(ctx)
}

func (d *Dataset) deleteLocked(id string) bool {
	// Check before materializing: deleting an absent ID from a mapped
	// dataset must stay a no-op, not a whole-table copy.
	if !d.existsLocked(id) {
		return false
	}
	d.materializeRecordsLocked()
	delete(d.records, id)
	for i, o := range d.order {
		if o == id {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	d.ix.Delete(id)
	d.ver++
	return true
}

// Version reports the dataset's mutation counter. A checkpoint frame
// cached at version v can be reused verbatim while Version still
// returns v — the dirty-tracking contract behind incremental
// checkpoints.
func (d *Dataset) Version() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.ver
}

// Reshard rebuilds the dataset's full-text index to n shards online,
// taking only this dataset's locks: reads proceed throughout, writes
// proceed except on the index shard currently being copied and
// during the final journal-replay window (see index.Reshard), and
// every other dataset is untouched. The version is bumped on both sides
// of the ring swap so a checkpoint frame encoded concurrently with
// the migration can never be cached as current. No-op and invalid
// reshards skip the bumps: they change nothing, so they must not
// dirty the dataset for incremental checkpoints.
func (d *Dataset) ReshardContext(ctx context.Context, n int) error {
	if n < 1 || n == d.ix.NumShards() {
		return d.ix.ReshardContext(ctx, n) // validates / no-ops without dirtying
	}
	d.bumpVersion()
	if err := d.ix.ReshardContext(ctx, n); err != nil {
		// Both aborted and failed migrations leave the live ring
		// unchanged, but the version already moved; the extra bump
		// just re-encodes one frame on the next checkpoint.
		return err
	}
	d.bumpVersion()
	return nil
}

func (d *Dataset) bumpVersion() {
	d.mu.Lock()
	d.ver++
	d.mu.Unlock()
}

// NumShards reports the dataset index's current shard count.
func (d *Dataset) NumShards() int { return d.ix.NumShards() }

// RingGen reports the dataset index's ring generation — it increments
// on every completed reshard, so operators can watch progress.
func (d *Dataset) RingGen() uint64 { return d.ix.RingGen() }

// ScanStats reports the dataset index's cumulative block-max scan
// counters: postings decoded vs. jumped without decoding.
func (d *Dataset) ScanStats() index.BlockScanStats { return d.ix.ScanStats() }

// TombstoneRatio reports the dataset index's uncompacted tombstone
// fraction.
func (d *Dataset) TombstoneRatio() float64 { return d.ix.TombstoneRatio() }

// Resharding reports whether a shard migration is in flight on the
// dataset's index.
func (d *Dataset) Resharding() bool { return d.ix.Resharding() }

// Len returns the record count.
func (d *Dataset) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lenLocked()
}

// List returns up to limit records in insertion order starting at
// offset. limit <= 0 means all.
func (d *Dataset) List(offset, limit int) []Record {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := d.lenLocked()
	if offset >= n {
		return nil
	}
	end := n
	if limit > 0 && offset+limit < end {
		end = offset + limit
	}
	out := make([]Record, 0, end-offset)
	for i := offset; i < end; i++ {
		id, rec, ok := d.viewAtLocked(i)
		if !ok {
			continue
		}
		cp := make(Record, len(rec)+1)
		for k, v := range rec {
			cp[k] = v
		}
		cp["_id"] = id
		out = append(out, cp)
	}
	return out
}

// Filter is a structured predicate over a typed field.
type Filter struct {
	Field string
	// Op is one of "=", "!=", "<", "<=", ">", ">=", "contains".
	Op    string
	Value string
}

// SearchRequest is a full-text + structured query over the dataset.
type SearchRequest struct {
	// Query is free text matched against searchable fields. Empty
	// matches all records (browse mode).
	Query string
	// Fields restricts which searchable fields the query runs
	// against; empty means all searchable fields.
	Fields  []string
	Filters []Filter
	Limit   int
	Offset  int
	// OrderBy sorts results by a field instead of relevance
	// ("price", "-price" for descending). Empty keeps BM25 order.
	OrderBy string
}

// Hit is one search result with its record and relevance score.
type Hit struct {
	ID     string
	Score  float64
	Record Record
}

// SearchContext runs the request. Cancelling ctx stops the index
// evaluation within one posting block and returns ctx.Err().
func (d *Dataset) SearchContext(ctx context.Context, req SearchRequest) ([]Hit, error) {
	fields := req.Fields
	if len(fields) == 0 {
		fields = d.schema.SearchableFields()
	} else {
		for _, f := range fields {
			fd, ok := d.schema.Field(f)
			if !ok {
				return nil, fmt.Errorf("store: unknown search field %q", f)
			}
			if !fd.Searchable {
				return nil, fmt.Errorf("store: field %q is not searchable", f)
			}
		}
	}
	for _, f := range req.Filters {
		if _, ok := d.schema.Field(f.Field); !ok {
			return nil, fmt.Errorf("store: unknown filter field %q", f.Field)
		}
	}

	var q index.Query
	if req.Query == "" {
		q = index.AllQuery{}
	} else {
		q = index.MatchQuery{Fields: fields, Text: req.Query}
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	// Fetch everything matching; structured filters and ordering are
	// applied here where types are known.
	raw, err := d.ix.SearchContext(ctx, q, index.SearchOptions{})
	if err != nil {
		return nil, err
	}
	hits := make([]Hit, 0, len(raw))
	for _, r := range raw {
		rec, _ := d.recordViewLocked(r.ID)
		ok, err := matchAll(d.schema, rec, req.Filters)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		cp := make(Record, len(rec)+1)
		for k, v := range rec {
			cp[k] = v
		}
		cp["_id"] = r.ID
		hits = append(hits, Hit{ID: r.ID, Score: r.Score, Record: cp})
	}
	if req.OrderBy != "" {
		if err := sortHits(d.schema, hits, req.OrderBy); err != nil {
			return nil, err
		}
	}
	if req.Offset > 0 {
		if req.Offset >= len(hits) {
			return nil, nil
		}
		hits = hits[req.Offset:]
	}
	if req.Limit > 0 && len(hits) > req.Limit {
		hits = hits[:req.Limit]
	}
	return hits, nil
}

// FacetsContext counts the values of field across records matching
// the request's query and filters — the designer's filter sidebar
// (e.g. producer counts next to inventory results).
func (d *Dataset) FacetsContext(ctx context.Context, req SearchRequest, field string) ([]index.FacetCount, error) {
	if _, ok := d.schema.Field(field); !ok {
		return nil, fmt.Errorf("store: unknown facet field %q", field)
	}
	hits, err := d.SearchContext(ctx, SearchRequest{
		Query:   req.Query,
		Fields:  req.Fields,
		Filters: req.Filters,
	})
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int)
	for _, h := range hits {
		if v := h.Record[field]; v != "" {
			counts[v]++
		}
	}
	out := make([]index.FacetCount, 0, len(counts))
	for v, n := range counts {
		out = append(out, index.FacetCount{Value: v, N: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		return out[i].Value < out[j].Value
	})
	return out, nil
}

func matchAll(s Schema, rec Record, filters []Filter) (bool, error) {
	for _, f := range filters {
		ok, err := matchFilter(s, rec, f)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

func matchFilter(s Schema, rec Record, f Filter) (bool, error) {
	fd, _ := s.Field(f.Field)
	have := rec[f.Field]
	switch f.Op {
	case "=", "":
		return have == f.Value, nil
	case "!=":
		return have != f.Value, nil
	case "contains":
		return containsFold(have, f.Value), nil
	case "<", "<=", ">", ">=":
		if fd.Type == TypeNumber {
			a, err1 := strconv.ParseFloat(have, 64)
			b, err2 := strconv.ParseFloat(f.Value, 64)
			if err1 != nil || err2 != nil {
				return false, nil
			}
			return cmpOrdered(a, b, f.Op), nil
		}
		return cmpOrdered(have, f.Value, f.Op), nil
	default:
		return false, fmt.Errorf("store: unknown filter op %q", f.Op)
	}
}

func cmpOrdered[T float64 | string](a, b T, op string) bool {
	switch op {
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	default:
		return a >= b
	}
}

func containsFold(haystack, needle string) bool {
	h := textproc.Terms(haystack)
	n := textproc.Terms(needle)
	if len(n) == 0 {
		return true
	}
	set := make(map[string]bool, len(h))
	for _, t := range h {
		set[t] = true
	}
	for _, t := range n {
		if !set[t] {
			return false
		}
	}
	return true
}

func sortHits(s Schema, hits []Hit, orderBy string) error {
	desc := false
	field := orderBy
	if len(field) > 0 && field[0] == '-' {
		desc = true
		field = field[1:]
	}
	fd, ok := s.Field(field)
	if !ok {
		return fmt.Errorf("store: unknown order field %q", field)
	}
	numeric := fd.Type == TypeNumber
	sort.SliceStable(hits, func(i, j int) bool {
		a, b := hits[i].Record[field], hits[j].Record[field]
		var less bool
		if numeric {
			af, _ := strconv.ParseFloat(a, 64)
			bf, _ := strconv.ParseFloat(b, 64)
			less = af < bf
		} else {
			less = a < b
		}
		if desc {
			return !less && a != b
		}
		return less
	})
	return nil
}
