package store

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"
)

// persistBenchStore builds a store shaped like a small hosted
// platform: many tenants, a couple of datasets each, free-text
// records — enough encode work per dataset that the worker pool has
// something to parallelize.
func persistBenchStore(b *testing.B, tenants, datasetsPer, recordsPer int) *Store {
	b.Helper()
	s := New()
	for ti := 0; ti < tenants; ti++ {
		tenant := fmt.Sprintf("tenant%02d", ti)
		owner := fmt.Sprintf("owner%02d", ti)
		if err := s.CreateTenant(tenant, owner); err != nil {
			b.Fatal(err)
		}
		for di := 0; di < datasetsPer; di++ {
			ds, err := s.CreateDataset(tenant, owner, Schema{
				Name: fmt.Sprintf("data%d", di), Key: "id",
				Fields: []Field{
					{Name: "id", Required: true},
					{Name: "title", Searchable: true},
					{Name: "body", Searchable: true},
					{Name: "price", Type: TypeNumber},
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			for ri := 0; ri < recordsPer; ri++ {
				_, err := ds.Put(Record{
					"id":    fmt.Sprintf("r%04d", ri),
					"title": fmt.Sprintf("catalog item %d in collection %d", ri, di),
					"body":  fmt.Sprintf("a fairly descriptive body with shared vocabulary and unique token%d for item number %d", ri, ri),
					"price": fmt.Sprintf("%d.99", 5+ri%200),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return s
}

// BenchmarkSnapshotRestore compares the serial legacy v1 path against
// the parallel framed path (now v3) at several worker counts,
// measuring a full checkpoint cycle (snapshot + restore into a fresh
// store). Results are recorded in BENCH_persist.json.
func BenchmarkSnapshotRestore(b *testing.B) {
	s := persistBenchStore(b, 8, 2, 400)

	roundTrip := func(b *testing.B, snap func(io.Writer) error, opts ...PersistOption) {
		b.Helper()
		var size int
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := snap(&buf); err != nil {
				b.Fatal(err)
			}
			size = buf.Len()
			fresh := New()
			if err := fresh.RestoreContext(context.Background(), bytes.NewReader(buf.Bytes()), opts...); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(size))
	}

	b.Run("v1-serial", func(b *testing.B) {
		roundTrip(b, s.SnapshotV1)
	})
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("v3-workers-%d", workers), func(b *testing.B) {
			roundTrip(b, func(w io.Writer) error {
				return s.SnapshotContext(context.Background(), w, WithWorkers(workers))
			}, WithWorkers(workers))
		})
	}
}

// benchWorkerCounts is 1, 4 and NumCPU, deduplicated so single-core
// machines don't run the same sub-benchmark twice.
func benchWorkerCounts() []int {
	counts := []int{1}
	for _, n := range []int{4, runtime.NumCPU()} {
		dup := false
		for _, c := range counts {
			dup = dup || c == n
		}
		if !dup {
			counts = append(counts, n)
		}
	}
	return counts
}

// BenchmarkSnapshotOnly isolates the checkpoint write path — what a
// running symphonyd pays in the background.
func BenchmarkSnapshotOnly(b *testing.B) {
	s := persistBenchStore(b, 8, 2, 400)
	b.Run("v1-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := s.SnapshotV1(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("v3-workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := s.SnapshotContext(context.Background(), io.Discard, WithWorkers(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRestoreOnly isolates boot-time restore: v1 reindexes every
// record, the framed heap path reattaches serialized shards, and the
// mapped path only walks frame CRCs and directory offsets — records
// and postings stay views into the snapshot bytes.
func BenchmarkRestoreOnly(b *testing.B) {
	s := persistBenchStore(b, 8, 2, 400)
	var v1, v3 bytes.Buffer
	if err := s.SnapshotV1(&v1); err != nil {
		b.Fatal(err)
	}
	if err := s.SnapshotContext(context.Background(), &v3); err != nil {
		b.Fatal(err)
	}
	b.Run("v1-serial", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(v1.Len()))
		for i := 0; i < b.N; i++ {
			if err := New().RestoreContext(context.Background(), bytes.NewReader(v1.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("v3-workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(v3.Len()))
			for i := 0; i < b.N; i++ {
				if err := New().RestoreContext(context.Background(), bytes.NewReader(v3.Bytes()), WithWorkers(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("v3-mapped", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(v3.Len()))
		for i := 0; i < b.N; i++ {
			if err := New().RestoreMappedContext(context.Background(), v3.Bytes()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
