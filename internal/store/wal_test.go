package store

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/wal"
)

func invSchema() Schema {
	return Schema{
		Name: "inventory",
		Key:  "sku",
		Fields: []Field{
			{Name: "sku", Type: TypeString, Required: true},
			{Name: "title", Type: TypeString, Searchable: true},
			{Name: "price", Type: TypeNumber},
		},
	}
}

// openStoreWAL builds a store with an attached log in dir.
func openStoreWAL(t *testing.T, dir string, policy wal.Policy) (*Store, *wal.Log) {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	s := New(WithShardTarget(2))
	s.AttachWAL(l)
	return s, l
}

// recoverStore replays dir into a fresh store, as boot would after
// restoring an empty snapshot.
func recoverStore(t *testing.T, dir string) (*Store, wal.ReplayStats) {
	t.Helper()
	s := New(WithShardTarget(2))
	st, err := wal.Replay(dir, s.ApplyWAL)
	if err != nil {
		t.Fatal(err)
	}
	return s, st
}

// TestWALRoundTrip drives the full mutation surface through the log
// and asserts a replayed store converges to the same state.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, l := openStoreWAL(t, dir, wal.PolicyAlways)
	ctx := context.Background()

	if err := s.CreateTenant("acme", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := s.Grant("acme", "alice", "bob", PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := s.SetQuota("acme", "alice", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDataset("acme", "alice", invSchema()); err != nil {
		t.Fatal(err)
	}
	ds, err := s.DatasetContext(ctx, "acme", "bob", "inventory", PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rec := Record{"sku": fmt.Sprintf("sku-%02d", i), "title": fmt.Sprintf("gadget %d", i), "price": fmt.Sprintf("%d", i*10)}
		if _, err := ds.PutContext(ctx, rec); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ds.AddBatchContext(ctx, []Record{
		{"sku": "sku-05", "title": "gadget five revised", "price": "55"},
		{"sku": "bulk-1", "title": "bulk widget", "price": "1"},
		{"sku": "bulk-2", "title": "bulk widget", "price": "2"},
	}); err != nil {
		t.Fatal(err)
	}
	if ok, err := ds.DeleteContext(ctx, "sku-03"); !ok || err != nil {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if err := s.Revoke("acme", "alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r, st := recoverStore(t, dir)
	if st.Torn || st.Skipped != 0 {
		t.Fatalf("clean replay reported damage: %+v", st)
	}
	// Access control replayed: bob's write grant was revoked.
	if _, err := r.DatasetContext(ctx, "acme", "bob", "inventory", PermRead); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("revoked grant survived replay: %v", err)
	}
	rds, err := r.DatasetContext(ctx, "acme", "alice", "inventory", PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rds.Len(), ds.Len(); got != want {
		t.Fatalf("recovered %d records, want %d", got, want)
	}
	if _, ok := rds.Get("sku-03"); ok {
		t.Fatal("deleted record resurrected by replay")
	}
	rec, ok := rds.Get("sku-05")
	if !ok || rec["title"] != "gadget five revised" {
		t.Fatalf("batch overwrite lost: %v %v", rec, ok)
	}
	// Search equivalence: same query, same hits, same scores.
	req := SearchRequest{Query: "bulk widget"}
	want, err := ds.SearchContext(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rds.SearchContext(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("search diverges after replay:\nwant %v\ngot  %v", want, got)
	}
	// Quota replayed too: it still bounds post-recovery writes.
	if err := r.SetQuota("acme", "alice", rds.Len()); err != nil {
		t.Fatal(err)
	}
	if _, err := rds.PutContext(ctx, Record{"sku": "over", "title": "x", "price": "1"}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("quota not enforced after replay: %v", err)
	}
}

// TestWALReplayIdempotent re-applies the same log twice over one
// store — the situation after restoring a snapshot that already
// contains a prefix of the log — and expects identical state.
func TestWALReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, l := openStoreWAL(t, dir, wal.PolicyGroup)
	ctx := context.Background()
	if err := s.CreateTenant("acme", "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDataset("acme", "alice", invSchema()); err != nil {
		t.Fatal(err)
	}
	ds, _ := s.DatasetContext(ctx, "acme", "alice", "inventory", PermWrite)
	if _, err := ds.AddBatchContext(ctx, []Record{
		{"sku": "a", "title": "alpha", "price": "1"},
		{"sku": "b", "title": "beta", "price": "2"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.DeleteContext(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	l.Close()

	r := New(WithShardTarget(2))
	for pass := 0; pass < 2; pass++ {
		if _, err := wal.Replay(dir, r.ApplyWAL); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
	}
	rds, err := r.DatasetContext(ctx, "acme", "alice", "inventory", PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if rds.Len() != 1 {
		t.Fatalf("double replay left %d records, want 1", rds.Len())
	}
	if _, ok := rds.Get("a"); ok {
		t.Fatal("deleted record present after double replay")
	}
}

// TestWALSkipsOrphanedWrites replays a put whose dataset was dropped
// later in history — it must be skipped, not fail the boot.
func TestWALSkipsOrphanedWrites(t *testing.T) {
	dir := t.TempDir()
	s, l := openStoreWAL(t, dir, wal.PolicyAlways)
	ctx := context.Background()
	if err := s.CreateTenant("acme", "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDataset("acme", "alice", invSchema()); err != nil {
		t.Fatal(err)
	}
	ds, _ := s.DatasetContext(ctx, "acme", "alice", "inventory", PermWrite)
	if _, err := ds.PutContext(ctx, Record{"sku": "x", "title": "t", "price": "1"}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Replay into a store where the create-dataset record is "gone":
	// simulate by dropping the dataset right after replaying it. Here
	// we instead replay into a store missing the tenant entirely for
	// the data ops, by filtering which records are applied.
	r := New()
	skipped := 0
	_, err := wal.Replay(dir, func(rec *wal.Record) error {
		if rec.Op == wal.OpCreateDataset {
			return wal.ErrSkipRecord // pretend the DDL predates the snapshot's truncated history
		}
		err := r.ApplyWAL(rec)
		if errors.Is(err, wal.ErrSkipRecord) {
			skipped++
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if skipped == 0 {
		t.Fatal("orphaned put was not skipped")
	}
}

// TestWALSequentialIDsAdvance ensures replayed auto-assigned IDs push
// the sequence forward so new inserts cannot collide.
func TestWALSequentialIDsAdvance(t *testing.T) {
	dir := t.TempDir()
	s, l := openStoreWAL(t, dir, wal.PolicyAlways)
	ctx := context.Background()
	sch := Schema{Name: "log", Fields: []Field{{Name: "msg", Type: TypeString, Searchable: true}}}
	if err := s.CreateTenant("acme", "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDataset("acme", "alice", sch); err != nil {
		t.Fatal(err)
	}
	ds, _ := s.DatasetContext(ctx, "acme", "alice", "log", PermWrite)
	var lastID string
	for i := 0; i < 5; i++ {
		id, err := ds.PutContext(ctx, Record{"msg": fmt.Sprintf("m%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		lastID = id
	}
	l.Close()

	r, _ := recoverStore(t, dir)
	rds, err := r.DatasetContext(ctx, "acme", "alice", "log", PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	id, err := rds.PutContext(ctx, Record{"msg": "after recovery"})
	if err != nil {
		t.Fatal(err)
	}
	if id == lastID {
		t.Fatalf("post-recovery insert reused replayed ID %s", id)
	}
	if rds.Len() != 6 {
		t.Fatalf("len = %d, want 6 (no collision overwrote a replayed record)", rds.Len())
	}
}
