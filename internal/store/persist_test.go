package store

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s, ds := newInventory(t)
	if err := s.Grant("gamerqueen", "ann", "bob", PermRead); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored := New()
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	ds2, err := restored.Dataset("gamerqueen", "ann", "inventory", PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Len() != ds.Len() {
		t.Fatalf("record counts differ: %d vs %d", ds2.Len(), ds.Len())
	}
	// Records intact.
	rec, ok := ds2.Get("G1")
	if !ok || rec["title"] != "The Legend of Zelda" {
		t.Fatalf("G1 = %v %v", rec, ok)
	}
	// Indexes rebuilt: search works.
	hits, err := ds2.Search(SearchRequest{Query: "zelda"})
	if err != nil || len(hits) != 2 {
		t.Fatalf("restored search = %v, %v", hits, err)
	}
	// Grants preserved.
	if _, err := restored.Dataset("gamerqueen", "bob", "inventory", PermRead); err != nil {
		t.Fatalf("grant lost: %v", err)
	}
	if _, err := restored.Dataset("gamerqueen", "mallory", "inventory", PermRead); err == nil {
		t.Fatal("access control lost in restore")
	}
	// Insertion order preserved.
	list := ds2.List(0, 0)
	if list[0]["sku"] != "G1" || list[3]["sku"] != "G4" {
		t.Fatalf("order lost: %v", list)
	}
}

func TestRestoreContinuesAutoIDs(t *testing.T) {
	s := New()
	s.CreateTenant("t", "o")
	ds, _ := s.CreateDataset("t", "o", Schema{Name: "notes", Fields: []Field{{Name: "text", Searchable: true}}})
	ds.Put(Record{"text": "first"})
	ds.Put(Record{"text": "second"})
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	ds2, _ := restored.Dataset("t", "o", "notes", PermWrite)
	id, err := ds2.Put(Record{"text": "third"})
	if err != nil {
		t.Fatal(err)
	}
	if id != "3" {
		t.Fatalf("auto ID after restore = %q, want 3", id)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	s := New()
	if err := s.Restore(strings.NewReader("{broken")); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := s.Restore(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if err := s.Restore(strings.NewReader(`{"version":1,"tenants":[{"id":"","owner":""}]}`)); err == nil {
		t.Fatal("empty tenant accepted")
	}
	bad := `{"version":1,"tenants":[{"id":"t","owner":"o","datasets":[{"schema":{"name":"d","fields":[{"name":"a"}]},"order":["1","2"],"records":[{"a":"x"}]}]}]}`
	if err := s.Restore(strings.NewReader(bad)); err == nil {
		t.Fatal("order/record mismatch accepted")
	}
}

func TestRestoreReplacesExistingState(t *testing.T) {
	s, _ := newInventory(t)
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// A store with unrelated content restores to exactly the snapshot.
	other := New()
	other.CreateTenant("junk", "j")
	if err := other.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if got := other.Tenants(); len(got) != 1 || got[0] != "gamerqueen" {
		t.Fatalf("tenants after restore = %v", got)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	s, _ := newInventory(t)
	var a, b bytes.Buffer
	if err := s.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("snapshots of identical state differ")
	}
}
