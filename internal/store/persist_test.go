package store

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s, ds := newInventory(t)
	if err := s.Grant("gamerqueen", "ann", "bob", PermRead); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SnapshotContext(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}

	restored := New()
	if err := restored.RestoreContext(context.Background(), bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	ds2, err := restored.DatasetContext(context.Background(), "gamerqueen", "ann", "inventory", PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Len() != ds.Len() {
		t.Fatalf("record counts differ: %d vs %d", ds2.Len(), ds.Len())
	}
	// Records intact.
	rec, ok := ds2.Get("G1")
	if !ok || rec["title"] != "The Legend of Zelda" {
		t.Fatalf("G1 = %v %v", rec, ok)
	}
	// Indexes rebuilt: search works.
	hits, err := ds2.SearchContext(context.Background(), SearchRequest{Query: "zelda"})
	if err != nil || len(hits) != 2 {
		t.Fatalf("restored search = %v, %v", hits, err)
	}
	// Grants preserved.
	if _, err := restored.DatasetContext(context.Background(), "gamerqueen", "bob", "inventory", PermRead); err != nil {
		t.Fatalf("grant lost: %v", err)
	}
	if _, err := restored.DatasetContext(context.Background(), "gamerqueen", "mallory", "inventory", PermRead); err == nil {
		t.Fatal("access control lost in restore")
	}
	// Insertion order preserved.
	list := ds2.List(0, 0)
	if list[0]["sku"] != "G1" || list[3]["sku"] != "G4" {
		t.Fatalf("order lost: %v", list)
	}
}

func TestRestoreContinuesAutoIDs(t *testing.T) {
	s := New()
	s.CreateTenant("t", "o")
	ds, _ := s.CreateDataset("t", "o", Schema{Name: "notes", Fields: []Field{{Name: "text", Searchable: true}}})
	ds.Put(Record{"text": "first"})
	ds.Put(Record{"text": "second"})
	var buf bytes.Buffer
	if err := s.SnapshotContext(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.RestoreContext(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	ds2, _ := restored.DatasetContext(context.Background(), "t", "o", "notes", PermWrite)
	id, err := ds2.Put(Record{"text": "third"})
	if err != nil {
		t.Fatal(err)
	}
	if id != "3" {
		t.Fatalf("auto ID after restore = %q, want 3", id)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	s := New()
	if err := s.RestoreContext(context.Background(), strings.NewReader("{broken")); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := s.RestoreContext(context.Background(), strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if err := s.RestoreContext(context.Background(), strings.NewReader(`{"version":1,"tenants":[{"id":"","owner":""}]}`)); err == nil {
		t.Fatal("empty tenant accepted")
	}
	bad := `{"version":1,"tenants":[{"id":"t","owner":"o","datasets":[{"schema":{"name":"d","fields":[{"name":"a"}]},"order":["1","2"],"records":[{"a":"x"}]}]}]}`
	if err := s.RestoreContext(context.Background(), strings.NewReader(bad)); err == nil {
		t.Fatal("order/record mismatch accepted")
	}
}

func TestRestoreReplacesExistingState(t *testing.T) {
	s, _ := newInventory(t)
	var buf bytes.Buffer
	if err := s.SnapshotContext(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	// A store with unrelated content restores to exactly the snapshot.
	other := New()
	other.CreateTenant("junk", "j")
	if err := other.RestoreContext(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	if got := other.Tenants(); len(got) != 1 || got[0] != "gamerqueen" {
		t.Fatalf("tenants after restore = %v", got)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	s, _ := newInventory(t)
	var a, b bytes.Buffer
	if err := s.SnapshotContext(context.Background(), &a); err != nil {
		t.Fatal(err)
	}
	if err := s.SnapshotContext(context.Background(), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("snapshots of identical state differ")
	}
	// Worker count must not change the bytes either: frames are
	// written in deterministic order regardless of encode order.
	var c bytes.Buffer
	if err := s.SnapshotContext(context.Background(), &c, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if a.String() != c.String() {
		t.Error("worker count changed snapshot bytes")
	}
}

// multiTenantStore builds a store with several tenants and datasets,
// quotas and grants, for cross-format and parallelism tests.
func multiTenantStore(t testing.TB) *Store {
	t.Helper()
	s := New()
	for ti := 0; ti < 4; ti++ {
		tenant := fmt.Sprintf("tenant%d", ti)
		owner := fmt.Sprintf("owner%d", ti)
		if err := s.CreateTenant(tenant, owner); err != nil {
			t.Fatal(err)
		}
		if err := s.Grant(tenant, owner, "auditor", PermRead); err != nil {
			t.Fatal(err)
		}
		for di := 0; di < 2; di++ {
			name := fmt.Sprintf("data%d", di)
			ds, err := s.CreateDataset(tenant, owner, Schema{
				Name: name, Key: "id",
				Fields: []Field{
					{Name: "id", Required: true},
					{Name: "title", Searchable: true},
					{Name: "body", Searchable: true},
					{Name: "price", Type: TypeNumber},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			for ri := 0; ri < 25; ri++ {
				_, err := ds.Put(Record{
					"id":    fmt.Sprintf("r%d", ri),
					"title": fmt.Sprintf("item %d of tenant %d", ri, ti),
					"body":  fmt.Sprintf("searchable common text plus unique%d", ri),
					"price": fmt.Sprintf("%d", 5+ri),
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			// Deletions leave tombstones in the serialized indexes.
			ds.Delete("r3")
			ds.Delete("r7")
		}
		if err := s.SetQuota(tenant, owner, 1000); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// storeFingerprint summarizes queryable state: per-dataset record
// counts, listing order, and search hits WITH scores, so two stores
// compare deep-equal through the public API.
func storeFingerprint(t testing.TB, s *Store) string {
	t.Helper()
	var b bytes.Buffer
	for _, tenant := range s.Tenants() {
		// The auditor grant gives read access everywhere in
		// multiTenantStore; newInventory stores use the owner.
		for _, actor := range []string{"auditor", "ann"} {
			names, err := s.Datasets(tenant, actor)
			if err != nil {
				continue
			}
			for _, name := range names {
				ds, err := s.DatasetContext(context.Background(), tenant, actor, name, PermRead)
				if err != nil {
					t.Fatal(err)
				}
				fmt.Fprintf(&b, "%s/%s len=%d\n", tenant, name, ds.Len())
				for _, rec := range ds.List(0, 0) {
					fmt.Fprintf(&b, "  %s=%s\n", rec["_id"], rec["title"])
				}
				hits, err := ds.SearchContext(context.Background(), SearchRequest{Query: "common unique4"})
				if err != nil {
					t.Fatal(err)
				}
				for _, h := range hits {
					fmt.Fprintf(&b, "  hit %s score=%v\n", h.ID, h.Score)
				}
			}
			break
		}
	}
	return b.String()
}

// TestV1V2CompatRoundTrip: a legacy v1 snapshot restores into a
// store whose v2 snapshot then round-trips to identical queryable
// state — the upgrade path from seed-era snapshots.
func TestV1V2CompatRoundTrip(t *testing.T) {
	orig := multiTenantStore(t)
	want := storeFingerprint(t, orig)

	var v1 bytes.Buffer
	if err := orig.SnapshotV1(&v1); err != nil {
		t.Fatal(err)
	}
	fromV1 := New()
	if err := fromV1.RestoreContext(context.Background(), bytes.NewReader(v1.Bytes())); err != nil {
		t.Fatalf("v1 restore: %v", err)
	}
	if got := storeFingerprint(t, fromV1); got != want {
		t.Fatalf("v1 restore state:\n%s\nwant:\n%s", got, want)
	}

	var v2 bytes.Buffer
	if err := fromV1.SnapshotContext(context.Background(), &v2); err != nil {
		t.Fatal(err)
	}
	fromV2 := New()
	if err := fromV2.RestoreContext(context.Background(), bytes.NewReader(v2.Bytes())); err != nil {
		t.Fatalf("v2 restore: %v", err)
	}
	if got := storeFingerprint(t, fromV2); got != want {
		t.Fatalf("v1->v2 round trip state:\n%s\nwant:\n%s", got, want)
	}
}

// TestV2RestoreMatchesFreshScores: search scores through a restored
// v2 store (reattached indexes) equal the freshly built store's.
func TestV2RestoreMatchesFreshScores(t *testing.T) {
	orig := multiTenantStore(t)
	var buf bytes.Buffer
	if err := orig.SnapshotContext(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.RestoreContext(context.Background(), bytes.NewReader(buf.Bytes()), WithWorkers(4)); err != nil {
		t.Fatal(err)
	}
	if got, want := storeFingerprint(t, restored), storeFingerprint(t, orig); got != want {
		t.Fatalf("restored store state:\n%s\nwant:\n%s", got, want)
	}
}

// TestV2QuotaSurvivesRestore: format v2 carries tenant quotas (v1
// never did) and rewires enforcement on restore.
func TestV2QuotaSurvivesRestore(t *testing.T) {
	s := New()
	s.CreateTenant("t", "o")
	ds, err := s.CreateDataset("t", "o", Schema{Name: "d", Fields: []Field{{Name: "x", Searchable: true}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Put(Record{"x": "one"}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetQuota("t", "o", 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SnapshotContext(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.RestoreContext(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	ds2, err := restored.DatasetContext(context.Background(), "t", "o", "d", PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds2.Put(Record{"x": "two"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ds2.Put(Record{"x": "three"}); err != ErrQuotaExceeded {
		t.Fatalf("third put after restore = %v, want ErrQuotaExceeded", err)
	}
}

// TestRestoreCorruptV2LeavesStoreUntouched: every corruption mode —
// truncation at any layer, bit flips, trailing junk, frame/header
// mismatches — must fail the restore AND leave the target store
// exactly as it was (restore builds aside, then swaps).
func TestRestoreCorruptV2LeavesStoreUntouched(t *testing.T) {
	src := multiTenantStore(t)
	var good bytes.Buffer
	if err := src.SnapshotContext(context.Background(), &good); err != nil {
		t.Fatal(err)
	}
	gb := good.Bytes()
	flip := func(pos int) []byte {
		out := append([]byte(nil), gb...)
		out[pos] ^= 0xFF
		return out
	}
	cases := map[string][]byte{
		"empty":            {},
		"garbage":          []byte("this is not a snapshot"),
		"magic-only":       gb[:8],
		"truncated-header": gb[:12],
		"truncated-10%":    gb[:len(gb)/10],
		"truncated-50%":    gb[:len(gb)/2],
		"truncated-99%":    gb[:len(gb)-len(gb)/100],
		"flip-early":       flip(40),
		"flip-middle":      flip(len(gb) / 2),
		"flip-late":        flip(len(gb) - 10),
		"trailing-junk":    append(append([]byte(nil), gb...), "extra bytes"...),
	}
	for name, data := range cases {
		target, _ := newInventory(t)
		before := storeFingerprint(t, target)
		if err := target.RestoreContext(context.Background(), bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
			continue
		}
		if after := storeFingerprint(t, target); after != before {
			t.Errorf("%s: failed restore mutated target store", name)
		}
	}
}

// TestSnapshotConcurrentWithWrites: format v2 locks one dataset at a
// time, so a snapshot racing concurrent writers must neither block
// them out nor produce a stream that fails to restore.
func TestSnapshotConcurrentWithWrites(t *testing.T) {
	s := multiTenantStore(t)
	ds, err := s.DatasetContext(context.Background(), "tenant0", "owner0", "data0", PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Throttled writer: steady background writes without
		// saturating the lock under the race detector.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Microsecond):
			}
			if _, err := ds.Put(Record{"id": fmt.Sprintf("w%d", i%50), "title": "written during checkpoint", "body": "concurrent"}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := s.SnapshotContext(context.Background(), &buf); err != nil {
			t.Fatal(err)
		}
		restored := New()
		if err := restored.RestoreContext(context.Background(), bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("snapshot %d failed to restore: %v", i, err)
		}
	}
	close(stop)
	<-done
}

// TestSnapshotConcurrentWithGrants: the snapshot header is marshaled
// after the store lock is released, so tenant grant maps must be
// copied, not referenced — otherwise Grant/Revoke racing a background
// checkpoint is a concurrent map read/write crash.
func TestSnapshotConcurrentWithGrants(t *testing.T) {
	s := multiTenantStore(t)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Microsecond):
			}
			actor := fmt.Sprintf("viewer%d", i%7)
			if err := s.Grant("tenant1", "owner1", actor, PermRead); err != nil {
				t.Error(err)
				return
			}
			if i%3 == 0 {
				s.Revoke("tenant1", "owner1", actor)
			}
		}
	}()
	for i := 0; i < 20; i++ {
		if err := s.SnapshotContext(context.Background(), io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-done
}
