package store

import (
	"bytes"
	"context"
	"fmt"
	"testing"
)

// TestDatasetReshard: an online reshard through the store facade
// keeps search results identical and bumps the observable layout.
func TestDatasetReshard(t *testing.T) {
	s, ds := newInventory(t)
	before, err := ds.SearchContext(context.Background(), SearchRequest{Query: "zelda adventure"})
	if err != nil {
		t.Fatal(err)
	}
	gen := ds.RingGen()
	if err := s.ReshardContext(context.Background(), "gamerqueen", "ann", "inventory", 5); err != nil {
		t.Fatal(err)
	}
	if got := ds.NumShards(); got != 5 {
		t.Fatalf("NumShards = %d, want 5", got)
	}
	if ds.RingGen() <= gen {
		t.Fatalf("ring gen did not advance: %d → %d", gen, ds.RingGen())
	}
	after, err := ds.SearchContext(context.Background(), SearchRequest{Query: "zelda adventure"})
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("hits after reshard = %d, want %d", len(after), len(before))
	}
	for i := range before {
		if before[i].ID != after[i].ID || before[i].Score != after[i].Score {
			t.Fatalf("hit %d: %s@%v → %s@%v", i, before[i].ID, before[i].Score, after[i].ID, after[i].Score)
		}
	}
	// A no-op reshard (same count) must not dirty the dataset, or
	// every idle reshard would force a full frame re-encode at the
	// next incremental checkpoint.
	v := ds.Version()
	if err := s.ReshardContext(context.Background(), "gamerqueen", "ann", "inventory", 5); err != nil {
		t.Fatal(err)
	}
	if got := ds.Version(); got != v {
		t.Fatalf("no-op reshard bumped version %d → %d", v, got)
	}
	if err := ds.ReshardContext(context.Background(), 0); err == nil {
		t.Fatal("Reshard(0) accepted")
	}
	if got := ds.Version(); got != v {
		t.Fatalf("invalid reshard bumped version %d → %d", v, got)
	}

	// Access control still applies: a reader cannot reshard.
	if err := s.Grant("gamerqueen", "ann", "bob", PermRead); err != nil {
		t.Fatal(err)
	}
	if err := s.ReshardContext(context.Background(), "gamerqueen", "bob", "inventory", 2); err != ErrAccessDenied {
		t.Fatalf("reader reshard = %v, want ErrAccessDenied", err)
	}
	if err := s.ReshardContext(context.Background(), "gamerqueen", "ann", "nope", 2); err != ErrNoSuchDataset {
		t.Fatalf("missing dataset reshard = %v, want ErrNoSuchDataset", err)
	}
}

// TestStoreShardTarget: WithShardTarget fixes the index layout for
// created AND restored datasets, decoupling snapshot layout from the
// restoring machine's parallelism.
func TestStoreShardTarget(t *testing.T) {
	s := New(WithShardTarget(3))
	if err := s.CreateTenant("gamerqueen", "ann"); err != nil {
		t.Fatal(err)
	}
	ds, err := s.CreateDataset("gamerqueen", "ann", gameSchema())
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.NumShards(); got != 3 {
		t.Fatalf("created dataset shards = %d, want 3", got)
	}
	if _, err := ds.Put(Record{"sku": "G1", "title": "Zelda", "producer": "Nintendo"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SnapshotContext(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}

	wide := New(WithShardTarget(8))
	if err := wide.RestoreContext(context.Background(), bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	rds, err := wide.DatasetContext(context.Background(), "gamerqueen", "ann", "inventory", PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if got := rds.NumShards(); got != 8 {
		t.Fatalf("restored dataset shards = %d, want configured 8 (snapshot had 3)", got)
	}
	hits, err := rds.SearchContext(context.Background(), SearchRequest{Query: "zelda"})
	if err != nil || len(hits) != 1 {
		t.Fatalf("restored search = %v, %v", hits, err)
	}
}

// TestStoreStatus: the operator view reports every dataset's layout
// in deterministic order.
func TestStoreStatus(t *testing.T) {
	s, _ := newInventory(t)
	if err := s.CreateTenant("acme", "bea"); err != nil {
		t.Fatal(err)
	}
	schema := gameSchema()
	schema.Name = "catalog"
	if _, err := s.CreateDataset("acme", "bea", schema); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if len(st) != 2 {
		t.Fatalf("status entries = %d, want 2", len(st))
	}
	if st[0].Tenant != "acme" || st[0].Dataset != "catalog" || st[1].Tenant != "gamerqueen" || st[1].Dataset != "inventory" {
		t.Fatalf("status order = %+v", st)
	}
	if st[1].Records != 4 || st[1].Shards < 1 || st[1].RingGen < 1 {
		t.Fatalf("inventory status = %+v", st[1])
	}
	if err := s.ReshardContext(context.Background(), "gamerqueen", "ann", "inventory", st[1].Shards+1); err != nil {
		t.Fatal(err)
	}
	st2 := s.Status()
	if st2[1].Shards != st[1].Shards+1 || st2[1].RingGen <= st[1].RingGen {
		t.Fatalf("status after reshard = %+v (was %+v)", st2[1], st[1])
	}
}

// TestSnapshotFrameCache pins the incremental-checkpoint contract:
// with a shared FrameCache, a second snapshot re-encodes only the
// datasets mutated since the first, the cached frames produce a
// byte-identical stream, and restores keep working.
func TestSnapshotFrameCache(t *testing.T) {
	s := multiTenantStore(t)
	cache := NewFrameCache()

	var first bytes.Buffer
	if err := s.SnapshotContext(context.Background(), &first, WithFrameCache(cache)); err != nil {
		t.Fatal(err)
	}
	_, misses0 := cache.Stats()
	if misses0 == 0 {
		t.Fatal("first snapshot encoded nothing")
	}

	// Nothing changed: the second pass must reuse every frame and
	// produce the identical stream.
	var second bytes.Buffer
	if err := s.SnapshotContext(context.Background(), &second, WithFrameCache(cache)); err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := cache.Stats()
	if misses1 != misses0 {
		t.Fatalf("clean snapshot re-encoded %d frames", misses1-misses0)
	}
	if hits1 != misses0 {
		t.Fatalf("clean snapshot reused %d frames, want %d", hits1, misses0)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("cached snapshot differs from encoded snapshot")
	}

	// Mutate exactly one dataset: only its frame re-encodes.
	ds, err := s.DatasetContext(context.Background(), "tenant0", "owner0", "data0", PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Put(Record{"id": "r99", "title": "New Game", "body": "fresh searchable body"}); err != nil {
		t.Fatal(err)
	}
	var third bytes.Buffer
	if err := s.SnapshotContext(context.Background(), &third, WithFrameCache(cache)); err != nil {
		t.Fatal(err)
	}
	_, misses2 := cache.Stats()
	if misses2 != misses1+1 {
		t.Fatalf("dirty snapshot re-encoded %d frames, want 1", misses2-misses1)
	}

	// The incremental stream restores like any other v2 snapshot.
	restored := New()
	if err := restored.RestoreContext(context.Background(), bytes.NewReader(third.Bytes())); err != nil {
		t.Fatal(err)
	}
	rds, err := restored.DatasetContext(context.Background(), "tenant0", "owner0", "data0", PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if rds.Len() != ds.Len() {
		t.Fatalf("restored Len = %d, want %d", rds.Len(), ds.Len())
	}
	if hits, err := rds.SearchContext(context.Background(), SearchRequest{Query: "new game"}); err != nil || len(hits) == 0 {
		t.Fatalf("restored search = %v, %v", hits, err)
	}

	// A reshard also dirties the frame (layout changed), and dropping
	// a dataset prunes its cache entry.
	if err := ds.ReshardContext(context.Background(), ds.NumShards()+1); err != nil {
		t.Fatal(err)
	}
	var fourth bytes.Buffer
	if err := s.SnapshotContext(context.Background(), &fourth, WithFrameCache(cache)); err != nil {
		t.Fatal(err)
	}
	_, misses3 := cache.Stats()
	if misses3 != misses2+1 {
		t.Fatalf("post-reshard snapshot re-encoded %d frames, want 1", misses3-misses2)
	}
	if err := s.DropDataset("tenant0", "owner0", "data0"); err != nil {
		t.Fatal(err)
	}
	var fifth bytes.Buffer
	if err := s.SnapshotContext(context.Background(), &fifth, WithFrameCache(cache)); err != nil {
		t.Fatal(err)
	}
	cache.mu.Lock()
	for cached := range cache.frames {
		if cached == ds {
			cache.mu.Unlock()
			t.Fatal("dropped dataset still cached")
		}
	}
	cache.mu.Unlock()
}

// TestFrameCacheConcurrentWriters: checkpoints with a frame cache
// racing live writers must neither corrupt the stream nor deadlock
// (the regression surface of the caching fast path).
func TestFrameCacheConcurrentWriters(t *testing.T) {
	s, ds := newInventory(t)
	cache := NewFrameCache()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if _, err := ds.Put(Record{"sku": fmt.Sprintf("W%03d", i), "title": fmt.Sprintf("Writer Game %d", i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if err := s.SnapshotContext(context.Background(), &buf, WithFrameCache(cache)); err != nil {
			t.Fatal(err)
		}
		restored := New()
		if err := restored.RestoreContext(context.Background(), bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("snapshot %d does not restore: %v", i, err)
		}
	}
	<-done
}
