// Package store implements Symphony's private, secure storage and
// indexing for application designers' proprietary data (§II-A,
// "Proprietary Data").
//
// Each designer owns a tenant space; inside it live named datasets,
// each with a typed schema. Records are stored, validated against the
// schema, and indexed for full-text search over the fields the
// designer marks searchable. Access control keeps one designer's data
// invisible to others unless explicitly granted — the paper's
// "private and secure space".
package store

import (
	"fmt"
	"strconv"
	"strings"
)

// FieldType is the declared type of a schema field.
type FieldType string

// Supported field types. Everything arrives as a string from the
// upload formats (delimited/XML/RSS); types drive validation and
// structured comparisons.
const (
	TypeString FieldType = "string"
	TypeNumber FieldType = "number"
	TypeBool   FieldType = "bool"
	TypeURL    FieldType = "url"
)

// Field describes one schema column.
type Field struct {
	Name string    `json:"name"`
	Type FieldType `json:"type"`
	// Searchable fields are analyzed into the dataset's full-text
	// index; the designer configures "how each [source] should be
	// searched" by choosing these.
	Searchable bool `json:"searchable"`
	// Required fields must be present and non-empty in every record.
	Required bool `json:"required"`
}

// Schema is a dataset's column layout.
type Schema struct {
	Name string `json:"name"`
	// Key names the field used as record identity. Empty means the
	// store assigns sequential IDs.
	Key    string  `json:"key,omitempty"`
	Fields []Field `json:"fields"`
}

// Validate checks internal consistency.
func (s Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("store: schema has no name")
	}
	if len(s.Fields) == 0 {
		return fmt.Errorf("store: schema %q has no fields", s.Name)
	}
	seen := make(map[string]bool, len(s.Fields))
	for _, f := range s.Fields {
		if f.Name == "" {
			return fmt.Errorf("store: schema %q has unnamed field", s.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("store: schema %q duplicates field %q", s.Name, f.Name)
		}
		seen[f.Name] = true
		switch f.Type {
		case TypeString, TypeNumber, TypeBool, TypeURL, "":
		default:
			return fmt.Errorf("store: field %q has unknown type %q", f.Name, f.Type)
		}
	}
	if s.Key != "" && !seen[s.Key] {
		return fmt.Errorf("store: key field %q not in schema", s.Key)
	}
	return nil
}

// Field returns the named field definition.
func (s Schema) Field(name string) (Field, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// FieldNames lists field names in schema order.
func (s Schema) FieldNames() []string {
	out := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		out[i] = f.Name
	}
	return out
}

// SearchableFields lists the names of searchable fields.
func (s Schema) SearchableFields() []string {
	var out []string
	for _, f := range s.Fields {
		if f.Searchable {
			out = append(out, f.Name)
		}
	}
	return out
}

// Record is one row of proprietary data. All values are strings at
// the storage layer; the schema's types govern validation and
// structured filtering.
type Record map[string]string

// checkRecord validates rec against the schema.
func checkRecord(s Schema, rec Record) error {
	for _, f := range s.Fields {
		v, ok := rec[f.Name]
		if f.Required && (!ok || strings.TrimSpace(v) == "") {
			return fmt.Errorf("store: record missing required field %q", f.Name)
		}
		if !ok || v == "" {
			continue
		}
		switch f.Type {
		case TypeNumber:
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				return fmt.Errorf("store: field %q: %q is not a number", f.Name, v)
			}
		case TypeBool:
			if _, err := strconv.ParseBool(v); err != nil {
				return fmt.Errorf("store: field %q: %q is not a bool", f.Name, v)
			}
		case TypeURL:
			if !strings.Contains(v, "://") {
				return fmt.Errorf("store: field %q: %q is not a URL", f.Name, v)
			}
		}
	}
	for name := range rec {
		if _, ok := s.Field(name); !ok {
			return fmt.Errorf("store: record has unknown field %q", name)
		}
	}
	return nil
}

// InferSchema derives a schema from sample records, used by the
// ingest package when an upload arrives without a declared schema.
// A column is a number/bool/url only if every non-empty sample parses
// as one; string otherwise. All string columns are searchable.
func InferSchema(name string, samples []Record) Schema {
	cols := map[string]FieldType{}
	order := []string{}
	for _, rec := range samples {
		for k, v := range rec {
			cur, seen := cols[k]
			if !seen {
				order = append(order, k)
				cols[k] = classify(v)
				continue
			}
			if v == "" {
				continue
			}
			if got := classify(v); got != cur {
				// widen conflicting types to string
				if cur != TypeString {
					cols[k] = widen(cur, got)
				}
			}
		}
	}
	// Keep column order stable: sort by first appearance.
	sch := Schema{Name: name}
	for _, k := range order {
		t := cols[k]
		sch.Fields = append(sch.Fields, Field{
			Name:       k,
			Type:       t,
			Searchable: t == TypeString,
		})
	}
	return sch
}

func classify(v string) FieldType {
	if v == "" {
		return TypeString
	}
	if _, err := strconv.ParseFloat(v, 64); err == nil {
		return TypeNumber
	}
	if _, err := strconv.ParseBool(v); err == nil {
		return TypeBool
	}
	if strings.HasPrefix(v, "http://") || strings.HasPrefix(v, "https://") || strings.HasPrefix(v, "ftp://") {
		return TypeURL
	}
	return TypeString
}

func widen(a, b FieldType) FieldType {
	if a == b {
		return a
	}
	return TypeString
}
