package store

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Persistence: Symphony hosts the designers' data, so the store can
// snapshot itself to a writer and restore from a reader. The format
// is versioned JSON — records are strings end to end, so JSON is
// lossless — and restoring rebuilds the full-text indexes from the
// records rather than serializing postings.

// snapshotVersion guards format evolution.
const snapshotVersion = 1

type snapshot struct {
	Version int              `json:"version"`
	Tenants []tenantSnapshot `json:"tenants"`
}

type tenantSnapshot struct {
	ID       string                `json:"id"`
	Owner    string                `json:"owner"`
	Grants   map[string]Permission `json:"grants,omitempty"`
	Datasets []datasetSnapshot     `json:"datasets"`
}

type datasetSnapshot struct {
	Schema  Schema   `json:"schema"`
	Order   []string `json:"order"`
	Records []Record `json:"records"`
	NextID  int      `json:"nextId"`
}

// Snapshot serializes the whole store.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := snapshot{Version: snapshotVersion}
	tenantIDs := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		tenantIDs = append(tenantIDs, id)
	}
	sort.Strings(tenantIDs)
	for _, id := range tenantIDs {
		t := s.tenants[id]
		ts := tenantSnapshot{ID: id, Owner: t.owner, Grants: t.grants}
		dsNames := make([]string, 0, len(t.datasets))
		for name := range t.datasets {
			dsNames = append(dsNames, name)
		}
		sort.Strings(dsNames)
		for _, name := range dsNames {
			ds := t.datasets[name]
			ds.mu.RLock()
			d := datasetSnapshot{
				Schema: ds.schema,
				Order:  append([]string(nil), ds.order...),
				NextID: ds.nextID,
			}
			for _, rid := range ds.order {
				rec := ds.records[rid]
				cp := make(Record, len(rec))
				for k, v := range rec {
					cp[k] = v
				}
				d.Records = append(d.Records, cp)
			}
			ds.mu.RUnlock()
			ts.Datasets = append(ts.Datasets, d)
		}
		snap.Tenants = append(snap.Tenants, ts)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// Restore replaces the store's contents from a snapshot, rebuilding
// all indexes.
func (s *Store) Restore(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("store: restore: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("store: restore: unsupported snapshot version %d", snap.Version)
	}
	tenants := make(map[string]*tenant, len(snap.Tenants))
	for _, ts := range snap.Tenants {
		if ts.ID == "" || ts.Owner == "" {
			return fmt.Errorf("store: restore: tenant with empty id/owner")
		}
		t := &tenant{
			owner:    ts.Owner,
			datasets: make(map[string]*Dataset, len(ts.Datasets)),
			grants:   ts.Grants,
		}
		if t.grants == nil {
			t.grants = make(map[string]Permission)
		}
		for _, dsnap := range ts.Datasets {
			if err := dsnap.Schema.Validate(); err != nil {
				return fmt.Errorf("store: restore tenant %s: %w", ts.ID, err)
			}
			if len(dsnap.Order) != len(dsnap.Records) {
				return fmt.Errorf("store: restore tenant %s dataset %s: order/record mismatch", ts.ID, dsnap.Schema.Name)
			}
			ds := newDataset(dsnap.Schema)
			ds.nextID = dsnap.NextID
			for i, rec := range dsnap.Records {
				id := dsnap.Order[i]
				if err := checkRecord(ds.schema, rec); err != nil {
					return fmt.Errorf("store: restore: record %s: %w", id, err)
				}
				cp := make(Record, len(rec))
				for k, v := range rec {
					cp[k] = v
				}
				ds.records[id] = cp
				ds.order = append(ds.order, id)
				if err := ds.reindexLocked(id, cp); err != nil {
					return err
				}
			}
			t.datasets[dsnap.Schema.Name] = ds
		}
		tenants[ts.ID] = t
	}
	s.mu.Lock()
	s.tenants = tenants
	s.mu.Unlock()
	return nil
}
