package store

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/frameio"
	"repro/internal/index"
)

// Persistence: Symphony hosts the designers' proprietary data, so
// durability is part of the platform contract. Three formats exist:
//
// Format v3 (written by Snapshot) keeps v2's framed envelope — the
// magic string, a header frame naming every tenant, one frame per
// dataset in deterministic (tenant, dataset) order — but a dataset
// frame carries its records as a binary record section with offset
// directories (see mapped.go) followed by the index's v3 mmap-ready
// stream, instead of a records JSON array. The same bytes serve two
// restore paths: RestoreContext decodes them to the heap as before,
// while RestoreMappedContext attaches datasets as lazy views over the
// snapshot's (typically mmap'd) bytes — records and postings
// materialize copy-on-write, so boot cost and resident set scale with
// what the workload touches, not corpus size.
//
// Format v2 (written by SnapshotV2Context, read transparently by
// RestoreContext) is the previous framed layout with JSON records.
// Format v1 (written by SnapshotV1) is the legacy single-JSON-document
// layout; restoring it rebuilds the indexes record by record.
//
// Frames are encoded by a worker pool, each under its own dataset's
// read lock — a checkpoint never holds the store-wide lock while
// encoding, so writers on other datasets are not blocked. The price
// is per-dataset (not global) point-in-time consistency, the usual
// contract for online checkpoints.
//
// Restore for every format builds the replacement tenant map
// completely — validating schemas, records and index attachment —
// before swapping it in, so a corrupt or truncated snapshot leaves
// the target store unchanged.

const (
	snapshotVersionV1 = 1
	snapshotVersionV2 = 2
	snapshotVersionV3 = 3
	// Magic strings start every framed stream. v1 streams start with
	// '{', so Restore can sniff the format from the first bytes.
	snapshotMagicV2 = "SYMSNP2\n"
	snapshotMagicV3 = "SYMSNP3\n"
)

// PersistOption configures Snapshot and Restore.
type PersistOption func(*persistOptions)

type persistOptions struct {
	workers int
	cache   *FrameCache
}

// WithWorkers sets how many goroutines encode or decode dataset
// frames (default: GOMAXPROCS). WithWorkers(1) is the serial
// baseline used by the benchmarks.
func WithWorkers(n int) PersistOption {
	return func(o *persistOptions) {
		if n > 0 {
			o.workers = n
		}
	}
}

// WithFrameCache makes Snapshot incremental: dataset frames whose
// dataset version has not moved since the cached encode are written
// from the cache instead of re-encoded — only datasets mutated since
// the last checkpoint pay serialization (the dominant snapshot cost;
// the v2 frame layout already isolates datasets, so the stream stays
// byte-compatible). Pass the same cache to every periodic checkpoint
// of one store; the cache prunes itself to the datasets seen in the
// latest pass, so dropped datasets do not pin memory. The cost is
// residency: the cache holds roughly one snapshot's worth of encoded
// frames for as long as it lives — memory traded for the skipped
// re-encodes.
func WithFrameCache(c *FrameCache) PersistOption {
	return func(o *persistOptions) { o.cache = c }
}

// FrameCache holds encoded dataset frames keyed by dataset identity
// and version, shared across the checkpoints of one store. Safe for
// concurrent use by the encode worker pool.
type FrameCache struct {
	mu     sync.Mutex
	frames map[*Dataset]cachedFrame
	hits   uint64
	misses uint64
}

type cachedFrame struct {
	version uint64
	format  int // snapshot format the payload was encoded in
	payload []byte
}

// NewFrameCache returns an empty frame cache.
func NewFrameCache() *FrameCache {
	return &FrameCache{frames: make(map[*Dataset]cachedFrame)}
}

func (c *FrameCache) get(ds *Dataset, version uint64, format int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cf, ok := c.frames[ds]
	if !ok || cf.version != version || cf.format != format {
		c.misses++
		return nil, false
	}
	c.hits++
	return cf.payload, true
}

func (c *FrameCache) put(ds *Dataset, version uint64, format int, payload []byte) {
	c.mu.Lock()
	c.frames[ds] = cachedFrame{version: version, format: format, payload: payload}
	c.mu.Unlock()
}

// retain drops cache entries for datasets absent from the latest
// snapshot pass (dropped datasets, dropped tenants).
func (c *FrameCache) retain(live map[*Dataset]bool) {
	c.mu.Lock()
	for ds := range c.frames {
		if !live[ds] {
			delete(c.frames, ds)
		}
	}
	c.mu.Unlock()
}

// Stats reports cumulative cache hits (frames reused) and misses
// (frames encoded) across all snapshots using this cache.
func (c *FrameCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func applyPersistOptions(opts []PersistOption) persistOptions {
	o := persistOptions{workers: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// v1 layout (also the legacy on-disk format).
type snapshot struct {
	Version int              `json:"version"`
	Tenants []tenantSnapshot `json:"tenants"`
}

type tenantSnapshot struct {
	ID       string                `json:"id"`
	Owner    string                `json:"owner"`
	Grants   map[string]Permission `json:"grants,omitempty"`
	Datasets []datasetSnapshot     `json:"datasets"`
}

type datasetSnapshot struct {
	Schema  Schema   `json:"schema"`
	Order   []string `json:"order"`
	Records []Record `json:"records"`
	NextID  int      `json:"nextId"`
}

// v2 layout.
type v2Header struct {
	Version int        `json:"version"`
	Tenants []v2Tenant `json:"tenants"`
}

type v2Tenant struct {
	ID       string                `json:"id"`
	Owner    string                `json:"owner"`
	Grants   map[string]Permission `json:"grants,omitempty"`
	Quota    int                   `json:"quota,omitempty"`
	Datasets []string              `json:"datasets,omitempty"`
}

// v2DatasetFrame is the JSON metadata part of a dataset frame. The
// frame payload is the 8-byte big-endian metadata length, the
// metadata JSON, then the dataset's serialized sharded index (an
// index.Snapshot stream) as raw bytes — concatenated rather than
// embedded so multi-megabyte postings avoid a base64 round trip.
type v2DatasetFrame struct {
	Tenant  string   `json:"tenant"`
	Schema  Schema   `json:"schema"`
	Order   []string `json:"order"`
	Records []Record `json:"records"`
	NextID  int      `json:"nextId"`
}

// v3DatasetMeta is the JSON metadata part of a v3 dataset frame. The
// frame payload is the 8-byte big-endian metadata length, the
// metadata JSON, an 8-byte big-endian record-section length, the
// binary record section (mapped.go), then the dataset's serialized
// sharded index (an index v3 stream) as raw bytes. Records and
// postings both live in directory-indexed binary sections, so a
// mapped restore serves them in place.
type v3DatasetMeta struct {
	Tenant string `json:"tenant"`
	Schema Schema `json:"schema"`
	NextID int    `json:"nextId"`
}

// splitDatasetFrame separates a dataset frame payload into its JSON
// metadata and raw index stream.
func splitDatasetFrame(payload []byte) (meta, index []byte, err error) {
	if len(payload) < 8 {
		return nil, nil, fmt.Errorf("dataset frame too short")
	}
	n := binary.BigEndian.Uint64(payload[:8])
	if n > uint64(len(payload)-8) {
		return nil, nil, fmt.Errorf("dataset frame metadata length %d exceeds payload", n)
	}
	return payload[8 : 8+n], payload[8+n:], nil
}

// splitDatasetFrameV3 separates a v3 dataset frame payload into JSON
// metadata, record section and raw index stream.
func splitDatasetFrameV3(payload []byte) (meta, recSec, index []byte, err error) {
	meta, rest, err := splitDatasetFrame(payload)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(rest) < 8 {
		return nil, nil, nil, fmt.Errorf("dataset frame missing record section")
	}
	n := binary.BigEndian.Uint64(rest[:8])
	if n > uint64(len(rest)-8) {
		return nil, nil, nil, fmt.Errorf("dataset frame record section length %d exceeds payload", n)
	}
	end := 8 + n
	return meta, rest[8:end:end], rest[end:], nil
}

// datasetRef pins one dataset for a snapshot pass.
type datasetRef struct {
	tenant string
	name   string
	ds     *Dataset
}

// collect walks the store under its read lock and returns the tenant
// metadata and dataset references in deterministic order. The store
// lock is released before any dataset is encoded.
func (s *Store) collect() ([]v2Tenant, []datasetRef) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var meta []v2Tenant
	var refs []datasetRef
	for _, id := range ids {
		t := s.tenants[id]
		// Deep-copy grants: the header is marshaled after this lock is
		// released, and Grant/Revoke mutate the live map.
		grants := make(map[string]Permission, len(t.grants))
		for actor, perm := range t.grants {
			grants[actor] = perm
		}
		vt := v2Tenant{ID: id, Owner: t.owner, Grants: grants, Quota: t.quota}
		for name := range t.datasets {
			vt.Datasets = append(vt.Datasets, name)
		}
		sort.Strings(vt.Datasets)
		for _, name := range vt.Datasets {
			refs = append(refs, datasetRef{tenant: id, name: name, ds: t.datasets[name]})
		}
		meta = append(meta, vt)
	}
	return meta, refs
}

// SnapshotContext serializes the whole store in format v3. Dataset
// frames are encoded concurrently by a worker pool and written in
// deterministic (tenant, dataset) order; only the frame being encoded
// holds its dataset's read lock, so concurrent writers on other
// datasets proceed during a checkpoint. Datasets still serving from a
// mapped snapshot re-emit their mapped bytes verbatim — a checkpoint
// of a freshly booted store copies views, it does not re-encode.
// Cancellation is checked between dataset frames: a cancelled
// snapshot stops encoding, leaves a truncated (unloadable, by design
// — Restore validates) stream and returns ctx.Err().
func (s *Store) SnapshotContext(ctx context.Context, w io.Writer, opts ...PersistOption) error {
	return s.snapshotFramed(ctx, w, snapshotVersionV3, opts)
}

// SnapshotV2Context serializes the store in the previous framed
// format with JSON records, for compatibility tooling and fixtures.
func (s *Store) SnapshotV2Context(ctx context.Context, w io.Writer, opts ...PersistOption) error {
	return s.snapshotFramed(ctx, w, snapshotVersionV2, opts)
}

func (s *Store) snapshotFramed(ctx context.Context, w io.Writer, version int, opts []PersistOption) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	o := applyPersistOptions(opts)
	meta, refs := s.collect()

	magic := snapshotMagicV3
	if version == snapshotVersionV2 {
		magic = snapshotMagicV2
	}
	if err := frameio.WriteMagic(w, magic); err != nil {
		return err
	}
	hdr, err := json.Marshal(v2Header{Version: version, Tenants: meta})
	if err != nil {
		return err
	}
	if err := frameio.WriteFrame(w, hdr); err != nil {
		return err
	}

	type frameResult struct {
		buf  []byte
		err  error
		done chan struct{}
	}
	results := make([]frameResult, len(refs))
	for i := range results {
		results[i].done = make(chan struct{})
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < o.workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i].buf, results[i].err = refs[i].encodeFrame(o.cache, version)
				close(results[i].done)
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range refs {
			select {
			case jobs <- i:
			case <-ctx.Done():
				// Undispatched frames stay un-encoded; the writer loop
				// below bails out on the same signal, so it never waits
				// on a done channel that will not close.
				return
			}
		}
	}()
	defer wg.Wait()

	// Write frames in order as each becomes ready: the stream is
	// deterministic even though encoding is concurrent.
	for i := range refs {
		select {
		case <-results[i].done:
		case <-ctx.Done():
			return ctx.Err()
		}
		if results[i].err != nil {
			return fmt.Errorf("store: snapshot %s/%s: %w", refs[i].tenant, refs[i].name, results[i].err)
		}
		if err := frameio.WriteFrame(w, results[i].buf); err != nil {
			return err
		}
	}
	if o.cache != nil {
		live := make(map[*Dataset]bool, len(refs))
		for _, ref := range refs {
			live[ref.ds] = true
		}
		o.cache.retain(live)
	}
	return nil
}

// encodeFrame serializes one dataset under its own read lock, or
// reuses the cached frame when the dataset's version has not moved
// since it was encoded. The version is read under the same read lock
// that covers the encode, so a cached (version, payload) pair always
// agrees with itself.
func (ref datasetRef) encodeFrame(cache *FrameCache, format int) ([]byte, error) {
	ds := ref.ds
	ds.mu.RLock()
	if cache != nil {
		if payload, ok := cache.get(ds, ds.ver, format); ok {
			ds.mu.RUnlock()
			return payload, nil
		}
	}
	version := ds.ver
	var payload []byte
	switch format {
	case snapshotVersionV3:
		meta, err := json.Marshal(v3DatasetMeta{Tenant: ref.tenant, Schema: ds.schema, NextID: ds.nextID})
		if err != nil {
			ds.mu.RUnlock()
			return nil, err
		}
		// A still-mapped record section round-trips verbatim; only
		// materialized datasets re-encode (and produce the same bytes
		// for the same content — the encoder is deterministic).
		var recSec []byte
		if ds.mrecs != nil {
			recSec = ds.mrecs.raw
		} else {
			recSec = encodeRecordSection(ds.order, ds.records)
		}
		payload = make([]byte, 8, 16+len(meta)+len(recSec))
		binary.BigEndian.PutUint64(payload, uint64(len(meta)))
		payload = append(payload, meta...)
		payload = binary.BigEndian.AppendUint64(payload, uint64(len(recSec)))
		payload = append(payload, recSec...)
	default:
		n := ds.lenLocked()
		frame := v2DatasetFrame{
			Tenant:  ref.tenant,
			Schema:  ds.schema,
			Order:   make([]string, 0, n),
			Records: make([]Record, 0, n),
			NextID:  ds.nextID,
		}
		for i := 0; i < n; i++ {
			id, rec, ok := ds.viewAtLocked(i)
			if !ok {
				continue
			}
			frame.Order = append(frame.Order, id)
			frame.Records = append(frame.Records, rec)
		}
		meta, err := json.Marshal(frame)
		if err != nil {
			ds.mu.RUnlock()
			return nil, err
		}
		payload = make([]byte, 8, 8+len(meta)+len(meta)/2)
		binary.BigEndian.PutUint64(payload, uint64(len(meta)))
		payload = append(payload, meta...)
	}
	// The index snapshot runs inside the dataset lock so records and
	// postings in this frame agree with each other. Index shard locks
	// nest inside the dataset lock; nothing takes them in the other
	// order. Clean mapped index shards are written verbatim by the
	// index encoder, completing the zero-re-encode checkpoint path.
	buf := bytes.NewBuffer(payload)
	var err error
	if format == snapshotVersionV2 {
		err = ds.ix.SnapshotV2(buf)
	} else {
		err = ds.ix.Snapshot(buf)
	}
	ds.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	if cache != nil {
		cache.put(ds, version, format, buf.Bytes())
	}
	return buf.Bytes(), nil
}

// SnapshotV1 serializes the store in the legacy v1 single-document
// JSON format, for compatibility tooling and the serial baseline
// benchmark. It holds the store-wide lock for the whole pass, like
// the seed implementation did.
func (s *Store) SnapshotV1(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := snapshot{Version: snapshotVersionV1}
	tenantIDs := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		tenantIDs = append(tenantIDs, id)
	}
	sort.Strings(tenantIDs)
	for _, id := range tenantIDs {
		t := s.tenants[id]
		ts := tenantSnapshot{ID: id, Owner: t.owner, Grants: t.grants}
		dsNames := make([]string, 0, len(t.datasets))
		for name := range t.datasets {
			dsNames = append(dsNames, name)
		}
		sort.Strings(dsNames)
		for _, name := range dsNames {
			ds := t.datasets[name]
			ds.mu.RLock()
			d := datasetSnapshot{
				Schema: ds.schema,
				Order:  append([]string(nil), ds.order...),
				NextID: ds.nextID,
			}
			for _, rid := range ds.order {
				rec := ds.records[rid]
				cp := make(Record, len(rec))
				for k, v := range rec {
					cp[k] = v
				}
				d.Records = append(d.Records, cp)
			}
			ds.mu.RUnlock()
			ts.Datasets = append(ts.Datasets, d)
		}
		snap.Tenants = append(snap.Tenants, ts)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// RestoreContext replaces the store's contents from a snapshot in any
// format: framed streams (v2/v3, sniffed by magic) decode dataset
// frames concurrently and reattach their serialized indexes; v1
// documents rebuild indexes from records. The replacement state is
// built and validated completely before it is swapped in, so a failed
// restore — including a cancelled one — leaves the store unchanged.
// Cancellation is checked between dataset frames.
func (s *Store) RestoreContext(ctx context.Context, r io.Reader, opts ...PersistOption) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	// Sniff the format from the first bytes. A short stream is
	// whatever of it we got — let the v1 JSON decoder report it.
	prefix := make([]byte, len(snapshotMagicV2))
	n, err := io.ReadFull(r, prefix)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return fmt.Errorf("store: restore: %w", err)
	}
	prefix = prefix[:n]
	switch string(prefix) {
	case snapshotMagicV2:
		return s.restoreFramed(ctx, r, applyPersistOptions(opts), snapshotVersionV2)
	case snapshotMagicV3:
		return s.restoreFramed(ctx, r, applyPersistOptions(opts), snapshotVersionV3)
	}
	return s.restoreV1(io.MultiReader(bytes.NewReader(prefix), r))
}

// SnapshotIsMappable reports whether data begins a v3 snapshot — the
// only format RestoreMappedContext accepts. Boot paths use it to
// decide between mapping a snapshot and streaming it: v1/v2 files
// restore through RestoreContext until the next checkpoint rewrites
// them as v3.
func SnapshotIsMappable(data []byte) bool {
	return len(data) >= len(snapshotMagicV3) && string(data[:len(snapshotMagicV3)]) == snapshotMagicV3
}

// RestoreMappedContext replaces the store's contents from a v3
// snapshot held in data — typically an mmapio mapping of the
// checkpoint file — attaching every dataset as lazy views over those
// bytes: record sections and posting payloads are NOT copied to the
// heap, and each dataset's index adopts the snapshot's shard layout
// (scores are layout-independent). Frame checksums are verified
// during the walk, so a truncated or corrupt file fails here, before
// anything serves from it. data must stay valid (mapped) for the life
// of the store; the mmapio package's never-unmap contract provides
// exactly that.
func (s *Store) RestoreMappedContext(ctx context.Context, data []byte, opts ...PersistOption) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(data) < len(snapshotMagicV3) || string(data[:len(snapshotMagicV3)]) != snapshotMagicV3 {
		return fmt.Errorf("store: restore mapped: not a v3 snapshot")
	}
	off := len(snapshotMagicV3)
	hdrBytes, off, err := frameio.NextFrameInBuf(data, off, true)
	if err != nil {
		return fmt.Errorf("store: restore mapped header: %w", err)
	}
	tenants, expects, err := parseFramedHeader(hdrBytes, snapshotVersionV3)
	if err != nil {
		return err
	}
	frames := make([][]byte, len(expects))
	for i := range frames {
		if err := ctx.Err(); err != nil {
			return err
		}
		if frames[i], off, err = frameio.NextFrameInBuf(data, off, true); err != nil {
			return fmt.Errorf("store: restore mapped %s/%s frame: %w", expects[i].tenant, expects[i].name, err)
		}
	}
	if _, _, err := frameio.NextFrameInBuf(data, off, false); err != io.EOF {
		return fmt.Errorf("store: restore mapped: trailing data after %d dataset frames", len(expects))
	}
	return s.installFromFrames(ctx, tenants, expects, frames, applyPersistOptions(opts), snapshotVersionV3, true)
}

func (s *Store) restoreFramed(ctx context.Context, r io.Reader, o persistOptions, version int) error {
	hdrBytes, err := frameio.ReadFrame(r)
	if err != nil {
		return fmt.Errorf("store: restore header: %w", err)
	}
	tenants, expects, err := parseFramedHeader(hdrBytes, version)
	if err != nil {
		return err
	}
	frames := make([][]byte, len(expects))
	for i := range frames {
		if err := ctx.Err(); err != nil {
			return err
		}
		if frames[i], err = frameio.ReadFrame(r); err != nil {
			return fmt.Errorf("store: restore %s/%s frame: %w", expects[i].tenant, expects[i].name, err)
		}
	}
	if _, err := frameio.ReadFrame(r); err != io.EOF {
		return fmt.Errorf("store: restore: trailing data after %d dataset frames", len(expects))
	}
	return s.installFromFrames(ctx, tenants, expects, frames, o, version, false)
}

// frameExpect names the dataset one frame must carry, derived from
// the header; the stream is rejected if they disagree.
type frameExpect struct{ tenant, name string }

// parseFramedHeader validates the header frame shared by the framed
// formats and returns the replacement tenant map plus the expected
// dataset frame sequence.
func parseFramedHeader(hdrBytes []byte, wantVersion int) (map[string]*tenant, []frameExpect, error) {
	var hdr v2Header
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return nil, nil, fmt.Errorf("store: restore header: %w", err)
	}
	if hdr.Version != wantVersion {
		return nil, nil, fmt.Errorf("store: restore: unsupported snapshot version %d", hdr.Version)
	}
	var expects []frameExpect
	tenants := make(map[string]*tenant, len(hdr.Tenants))
	for _, vt := range hdr.Tenants {
		if vt.ID == "" || vt.Owner == "" {
			return nil, nil, fmt.Errorf("store: restore: tenant with empty id/owner")
		}
		if _, dup := tenants[vt.ID]; dup {
			return nil, nil, fmt.Errorf("store: restore: duplicate tenant %q", vt.ID)
		}
		t := &tenant{
			owner:    vt.Owner,
			datasets: make(map[string]*Dataset, len(vt.Datasets)),
			grants:   vt.Grants,
			quota:    vt.Quota,
		}
		if t.grants == nil {
			t.grants = make(map[string]Permission)
		}
		tenants[vt.ID] = t
		for _, name := range vt.Datasets {
			expects = append(expects, frameExpect{tenant: vt.ID, name: name})
		}
	}
	return tenants, expects, nil
}

// installFromFrames decodes dataset frames on a worker pool and swaps
// the replacement tenant map in — the shared back half of every
// framed restore. Each job is independent, so decode scales with the
// dataset count. Cancellation stops dispatch between frames; already-
// dispatched decodes finish (they only build private state) and the
// whole restore returns without touching the store.
func (s *Store) installFromFrames(ctx context.Context, tenants map[string]*tenant, expects []frameExpect, frames [][]byte, o persistOptions, version int, mapped bool) error {
	datasets := make([]*Dataset, len(expects))
	errs := make([]error, len(expects))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < o.workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if version == snapshotVersionV3 {
					datasets[i], errs[i] = decodeFrameV3(frames[i], expects[i].tenant, expects[i].name, s.shardTarget, s.cache, mapped)
				} else {
					datasets[i], errs[i] = decodeFrame(frames[i], expects[i].tenant, expects[i].name, s.shardTarget, s.cache)
				}
			}
		}()
	}
	dispatched := len(frames)
	for i := range frames {
		if ctx.Err() != nil {
			dispatched = i
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if dispatched < len(frames) {
		return ctx.Err()
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("store: restore %s/%s: %w", expects[i].tenant, expects[i].name, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	for i, e := range expects {
		t := tenants[e.tenant]
		if _, dup := t.datasets[e.name]; dup {
			return fmt.Errorf("store: restore: duplicate dataset %s/%s", e.tenant, e.name)
		}
		t.datasets[e.name] = datasets[i]
	}
	for _, t := range tenants {
		if t.quota > 0 {
			for _, ds := range t.datasets {
				ds.setQuotaCheck(usageExcluding(t, ds), t.quota)
			}
		}
	}
	s.mu.Lock()
	s.tenants = tenants
	s.mu.Unlock()
	return nil
}

// decodeFrame rebuilds one dataset from its frame, reattaching the
// serialized sharded index and cross-checking it against the records.
// The index restore decodes the snapshot's shard layout and then
// reshards to the dataset's configured target, so checkpoint layout
// never caps query fan-out on the restoring machine.
func decodeFrame(payload []byte, wantTenant, wantName string, shardTarget int, cache *index.Cache) (*Dataset, error) {
	meta, index, err := splitDatasetFrame(payload)
	if err != nil {
		return nil, err
	}
	var frame v2DatasetFrame
	if err := json.Unmarshal(meta, &frame); err != nil {
		return nil, err
	}
	if frame.Tenant != wantTenant || frame.Schema.Name != wantName {
		return nil, fmt.Errorf("frame is %s/%s, header expects %s/%s",
			frame.Tenant, frame.Schema.Name, wantTenant, wantName)
	}
	if err := frame.Schema.Validate(); err != nil {
		return nil, err
	}
	if len(frame.Order) != len(frame.Records) {
		return nil, fmt.Errorf("order/record mismatch")
	}
	ds := newDataset(frame.Schema, shardTarget, cache)
	ds.nextID = frame.NextID
	for i, rec := range frame.Records {
		id := frame.Order[i]
		if id == "" {
			return nil, fmt.Errorf("empty record ID at position %d", i)
		}
		if _, dup := ds.records[id]; dup {
			return nil, fmt.Errorf("duplicate record ID %q", id)
		}
		if err := checkRecord(ds.schema, rec); err != nil {
			return nil, fmt.Errorf("record %s: %w", id, err)
		}
		cp := make(Record, len(rec))
		for k, v := range rec {
			cp[k] = v
		}
		ds.records[id] = cp
		ds.order = append(ds.order, id)
	}
	// Reattach the serialized index; newDataset already registered
	// the schema's field options, so boosts and analyzers line up.
	if err := ds.ix.Restore(bytes.NewReader(index)); err != nil {
		return nil, err
	}
	if got := ds.ix.Len(); got != len(ds.records) {
		return nil, fmt.Errorf("restored index has %d live docs, dataset has %d records", got, len(ds.records))
	}
	return ds, nil
}

// decodeFrameV3 rebuilds one dataset from a v3 frame. The heap path
// decodes the record section eagerly (validating every record, like
// v2) and reshards the index to the configured target. The mapped
// path attaches both sections as views over the frame's bytes:
// records and postings stay unmaterialized, the index keeps the
// snapshot's shard layout, and per-record validation is deferred to
// the write path that materializes them — the frame checksum already
// vouches for the bytes, and re-validating every record would decode
// everything the mapping exists to avoid.
func decodeFrameV3(payload []byte, wantTenant, wantName string, shardTarget int, cache *index.Cache, mapped bool) (*Dataset, error) {
	meta, recSec, ixBytes, err := splitDatasetFrameV3(payload)
	if err != nil {
		return nil, err
	}
	var frame v3DatasetMeta
	if err := json.Unmarshal(meta, &frame); err != nil {
		return nil, err
	}
	if frame.Tenant != wantTenant || frame.Schema.Name != wantName {
		return nil, fmt.Errorf("frame is %s/%s, header expects %s/%s",
			frame.Tenant, frame.Schema.Name, wantTenant, wantName)
	}
	if err := frame.Schema.Validate(); err != nil {
		return nil, err
	}
	mr, err := attachRecordSection(recSec)
	if err != nil {
		return nil, err
	}
	ds := newDataset(frame.Schema, shardTarget, cache)
	ds.nextID = frame.NextID
	if mapped {
		ds.mrecs = mr
		if err := ds.ix.RestoreMapped(ixBytes); err != nil {
			return nil, err
		}
	} else {
		for i := 0; i < mr.count; i++ {
			id, rec, ok := mr.entryAt(i)
			if !ok {
				return nil, fmt.Errorf("corrupt record entry at position %d", i)
			}
			if id == "" {
				return nil, fmt.Errorf("empty record ID at position %d", i)
			}
			if _, dup := ds.records[id]; dup {
				return nil, fmt.Errorf("duplicate record ID %q", id)
			}
			if err := checkRecord(ds.schema, rec); err != nil {
				return nil, fmt.Errorf("record %s: %w", id, err)
			}
			ds.records[id] = rec
			ds.order = append(ds.order, id)
		}
		if err := ds.ix.Restore(bytes.NewReader(ixBytes)); err != nil {
			return nil, err
		}
	}
	if got := ds.ix.Len(); got != mr.count {
		return nil, fmt.Errorf("restored index has %d live docs, dataset has %d records", got, mr.count)
	}
	return ds, nil
}

// restoreV1 reads the legacy single-document JSON format, rebuilding
// full-text indexes from the records.
func (s *Store) restoreV1(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("store: restore: %w", err)
	}
	if snap.Version != snapshotVersionV1 {
		return fmt.Errorf("store: restore: unsupported snapshot version %d", snap.Version)
	}
	tenants := make(map[string]*tenant, len(snap.Tenants))
	for _, ts := range snap.Tenants {
		if ts.ID == "" || ts.Owner == "" {
			return fmt.Errorf("store: restore: tenant with empty id/owner")
		}
		t := &tenant{
			owner:    ts.Owner,
			datasets: make(map[string]*Dataset, len(ts.Datasets)),
			grants:   ts.Grants,
		}
		if t.grants == nil {
			t.grants = make(map[string]Permission)
		}
		for _, dsnap := range ts.Datasets {
			if err := dsnap.Schema.Validate(); err != nil {
				return fmt.Errorf("store: restore tenant %s: %w", ts.ID, err)
			}
			if len(dsnap.Order) != len(dsnap.Records) {
				return fmt.Errorf("store: restore tenant %s dataset %s: order/record mismatch", ts.ID, dsnap.Schema.Name)
			}
			ds := newDataset(dsnap.Schema, s.shardTarget, s.cache)
			ds.nextID = dsnap.NextID
			for i, rec := range dsnap.Records {
				id := dsnap.Order[i]
				if err := checkRecord(ds.schema, rec); err != nil {
					return fmt.Errorf("store: restore: record %s: %w", id, err)
				}
				cp := make(Record, len(rec))
				for k, v := range rec {
					cp[k] = v
				}
				ds.records[id] = cp
				ds.order = append(ds.order, id)
				if err := ds.reindexLocked(id, cp); err != nil {
					return err
				}
			}
			t.datasets[dsnap.Schema.Name] = ds
		}
		tenants[ts.ID] = t
	}
	s.mu.Lock()
	s.tenants = tenants
	s.mu.Unlock()
	return nil
}
