package store

import (
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/wal"
)

// Write-ahead logging for the store.
//
// Every acknowledged mutation — record puts and deletes as well as
// the DDL surface (tenants, datasets, grants, quotas) — is appended
// to the attached log under the same lock that applied it to memory,
// so log order agrees with apply order for any single key. The append
// itself never blocks on disk; callers wait on the returned commit
// AFTER releasing the lock, so an fsync stalls only the writers that
// need the acknowledgment, never the whole store.
//
// Boot order is restore-snapshot, ApplyWAL-replay, then AttachWAL:
// replay runs with no log attached, so re-applying history can never
// re-log it.

// AttachWAL attaches l to the store: every subsequent acknowledged
// mutation is appended to it. Attach after restore + replay, before
// serving traffic. A nil log detaches (writes stop logging).
func (s *Store) AttachWAL(l *wal.Log) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal = l
	for id, t := range s.tenants {
		for _, ds := range t.datasets {
			ds.bindWAL(l, id)
		}
	}
}

// walAppendLocked appends rec to the attached log, if any. Callers
// hold s.mu so the log observes DDL in apply order; they wait on the
// returned commit after releasing it. A nil return (no log) waits as
// an immediate success.
func (s *Store) walAppendLocked(rec *wal.Record) *wal.Commit {
	if s.wal == nil {
		return nil
	}
	return s.wal.Append(rec)
}

// ApplyWAL applies one replayed log record, the callback side of
// wal.Replay. Application is idempotent — a record already reflected
// in the restored snapshot converges to the same state — and never
// re-logs (boot attaches the log only after replay). Records whose
// target tenant or dataset does not exist are skipped via
// wal.ErrSkipRecord: the only way to log one is a racing drop whose
// outcome was ambiguous when the crash hit, and the drop won.
func (s *Store) ApplyWAL(rec *wal.Record) error {
	switch rec.Op {
	case wal.OpCreateTenant:
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.tenants[rec.Tenant]; !ok {
			s.tenants[rec.Tenant] = &tenant{
				owner:    rec.Actor,
				datasets: make(map[string]*Dataset),
				grants:   make(map[string]Permission),
			}
		}
		return nil
	case wal.OpCreateDataset:
		var sch Schema
		if err := json.Unmarshal(rec.Schema, &sch); err != nil {
			return fmt.Errorf("store: replay create-dataset %s/%s: %w", rec.Tenant, rec.Dataset, err)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		t, ok := s.tenants[rec.Tenant]
		if !ok {
			return wal.ErrSkipRecord
		}
		if _, ok := t.datasets[sch.Name]; !ok {
			ds := newDataset(sch, s.shardTarget, s.cache)
			t.datasets[sch.Name] = ds
			if t.quota > 0 {
				ds.setQuotaCheck(usageExcluding(t, ds), t.quota)
			}
		}
		return nil
	case wal.OpDropDataset:
		s.mu.Lock()
		defer s.mu.Unlock()
		t, ok := s.tenants[rec.Tenant]
		if !ok {
			return wal.ErrSkipRecord
		}
		delete(t.datasets, rec.Dataset)
		return nil
	case wal.OpGrant:
		s.mu.Lock()
		defer s.mu.Unlock()
		t, ok := s.tenants[rec.Tenant]
		if !ok {
			return wal.ErrSkipRecord
		}
		t.grants[rec.ID] = Permission(rec.Perm)
		return nil
	case wal.OpRevoke:
		s.mu.Lock()
		defer s.mu.Unlock()
		t, ok := s.tenants[rec.Tenant]
		if !ok {
			return wal.ErrSkipRecord
		}
		delete(t.grants, rec.ID)
		return nil
	case wal.OpSetQuota:
		s.mu.Lock()
		defer s.mu.Unlock()
		t, ok := s.tenants[rec.Tenant]
		if !ok {
			return wal.ErrSkipRecord
		}
		t.quota = rec.N
		for _, ds := range t.datasets {
			ds.setQuotaCheck(usageExcluding(t, ds), rec.N)
		}
		return nil
	case wal.OpPut:
		ds, ok := s.lookupDataset(rec.Tenant, rec.Dataset)
		if !ok {
			return wal.ErrSkipRecord
		}
		return ds.applyPut(rec.ID, Record(rec.Rec))
	case wal.OpDelete:
		ds, ok := s.lookupDataset(rec.Tenant, rec.Dataset)
		if !ok {
			return wal.ErrSkipRecord
		}
		ds.applyDelete(rec.ID)
		return nil
	default:
		return fmt.Errorf("store: replay: unknown wal op %q (seq %d)", rec.Op, rec.Seq)
	}
}

// lookupDataset fetches a dataset without access checks, for replay:
// the logged write was authorized when it was first acknowledged.
func (s *Store) lookupDataset(tenantID, name string) (*Dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[tenantID]
	if !ok {
		return nil, false
	}
	ds, ok := t.datasets[name]
	return ds, ok
}

// bindWAL wires the log and owning-tenant name into the dataset so
// puts and deletes can build their own records.
func (d *Dataset) bindWAL(l *wal.Log, tenantID string) {
	d.mu.Lock()
	d.wlog = l
	d.walTenant = tenantID
	d.mu.Unlock()
}

// walAppendLocked appends a put/delete record for this dataset.
// Callers hold d.mu (apply order = log order per key) and wait on the
// commit after releasing it.
func (d *Dataset) walAppendLocked(rec *wal.Record) *wal.Commit {
	if d.wlog == nil {
		return nil
	}
	rec.Tenant = d.walTenant
	rec.Dataset = d.schema.Name
	return d.wlog.Append(rec)
}

// applyPut installs a replayed record under its logged ID: no quota
// check (the write was admitted when acknowledged), no re-logging,
// and the sequential-ID high-water mark advances so post-recovery
// inserts cannot collide with replayed IDs.
func (d *Dataset) applyPut(id string, rec Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Replay is the one boot path that mutates a mapped dataset: only
	// datasets with a log tail pay materialization.
	d.materializeRecordsLocked()
	if d.schema.Key == "" {
		if n, err := strconv.Atoi(id); err == nil && n > d.nextID {
			d.nextID = n
		}
	}
	if _, exists := d.records[id]; !exists {
		d.order = append(d.order, id)
	}
	cp := make(Record, len(rec))
	for k, v := range rec {
		cp[k] = v
	}
	d.records[id] = cp
	d.ver++
	return d.reindexLocked(id, cp)
}

// applyDelete removes a replayed record; deleting an absent ID is the
// idempotent no-op replay depends on.
func (d *Dataset) applyDelete(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.deleteLocked(id)
}
