package store

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func gameSchema() Schema {
	return Schema{
		Name: "inventory",
		Key:  "sku",
		Fields: []Field{
			{Name: "sku", Type: TypeString, Required: true},
			{Name: "title", Type: TypeString, Searchable: true, Required: true},
			{Name: "producer", Type: TypeString, Searchable: true},
			{Name: "description", Type: TypeString, Searchable: true},
			{Name: "price", Type: TypeNumber},
			{Name: "instock", Type: TypeBool},
			{Name: "image", Type: TypeURL},
		},
	}
}

func newInventory(t testing.TB) (*Store, *Dataset) {
	t.Helper()
	s := New()
	if err := s.CreateTenant("gamerqueen", "ann"); err != nil {
		t.Fatal(err)
	}
	ds, err := s.CreateDataset("gamerqueen", "ann", gameSchema())
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{"sku": "G1", "title": "The Legend of Zelda", "producer": "Nintendo", "description": "adventure game with puzzles", "price": "49.99", "instock": "true", "image": "http://img.example/zelda.png"},
		{"sku": "G2", "title": "Halo Wars", "producer": "Ensemble", "description": "strategy game in space", "price": "39.99", "instock": "true"},
		{"sku": "G3", "title": "Gears of War", "producer": "Epic", "description": "shooter game with cover", "price": "19.99", "instock": "false"},
		{"sku": "G4", "title": "Zelda Spirit Tracks", "producer": "Nintendo", "description": "handheld adventure game", "price": "29.99", "instock": "true"},
	}
	for _, r := range recs {
		if _, err := ds.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	return s, ds
}

func TestSchemaValidate(t *testing.T) {
	if err := gameSchema().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schema{
		{},
		{Name: "x"},
		{Name: "x", Fields: []Field{{Name: ""}}},
		{Name: "x", Fields: []Field{{Name: "a"}, {Name: "a"}}},
		{Name: "x", Key: "nope", Fields: []Field{{Name: "a"}}},
		{Name: "x", Fields: []Field{{Name: "a", Type: "blob"}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func TestPutGetDelete(t *testing.T) {
	_, ds := newInventory(t)
	if ds.Len() != 4 {
		t.Fatalf("Len = %d", ds.Len())
	}
	rec, ok := ds.Get("G1")
	if !ok || rec["title"] != "The Legend of Zelda" {
		t.Fatalf("Get G1 = %v %v", rec, ok)
	}
	if !ds.Delete("G1") || ds.Delete("G1") {
		t.Fatal("delete semantics wrong")
	}
	if ds.Len() != 3 {
		t.Fatalf("Len after delete = %d", ds.Len())
	}
}

func TestPutValidation(t *testing.T) {
	_, ds := newInventory(t)
	cases := []Record{
		{"sku": "B1"}, // missing required title
		{"sku": "B2", "title": "X", "price": "abc"},       // bad number
		{"sku": "B3", "title": "X", "instock": "maybe"},   // bad bool
		{"sku": "B4", "title": "X", "image": "not-a-url"}, // bad url
		{"sku": "B5", "title": "X", "mystery": "y"},       // unknown field
		{"title": "no key"},                               // missing key
	}
	for i, rec := range cases {
		if _, err := ds.Put(rec); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
	if ds.Len() != 4 {
		t.Fatalf("failed puts mutated the dataset: %d", ds.Len())
	}
}

func TestPutReplacesByKey(t *testing.T) {
	_, ds := newInventory(t)
	if _, err := ds.Put(Record{"sku": "G1", "title": "Zelda Remastered"}); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 4 {
		t.Fatalf("Len = %d after replace", ds.Len())
	}
	rec, _ := ds.Get("G1")
	if rec["title"] != "Zelda Remastered" {
		t.Errorf("replace failed: %v", rec)
	}
	hits, _ := ds.SearchContext(context.Background(), SearchRequest{Query: "legend"})
	if len(hits) != 0 {
		t.Error("old indexed content survived replace")
	}
}

func TestAutoIDWhenNoKey(t *testing.T) {
	s := New()
	s.CreateTenant("t", "o")
	ds, err := s.CreateDataset("t", "o", Schema{Name: "notes", Fields: []Field{{Name: "text", Type: TypeString, Searchable: true}}})
	if err != nil {
		t.Fatal(err)
	}
	id1, _ := ds.Put(Record{"text": "first"})
	id2, _ := ds.Put(Record{"text": "second"})
	if id1 == id2 || id1 == "" {
		t.Fatalf("auto IDs wrong: %q %q", id1, id2)
	}
}

func TestSearchFullText(t *testing.T) {
	_, ds := newInventory(t)
	hits, err := ds.SearchContext(context.Background(), SearchRequest{Query: "zelda"})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("zelda hits = %d", len(hits))
	}
	for _, h := range hits {
		if h.Record["_id"] != h.ID {
			t.Error("_id not set on hit record")
		}
	}
}

func TestSearchFieldRestriction(t *testing.T) {
	_, ds := newInventory(t)
	hits, err := ds.SearchContext(context.Background(), SearchRequest{Query: "adventure", Fields: []string{"title"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("title-only adventure hits = %d", len(hits))
	}
	if _, err := ds.SearchContext(context.Background(), SearchRequest{Query: "x", Fields: []string{"price"}}); err == nil {
		t.Error("non-searchable field accepted")
	}
	if _, err := ds.SearchContext(context.Background(), SearchRequest{Query: "x", Fields: []string{"nope"}}); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestSearchEmptyQueryBrowses(t *testing.T) {
	_, ds := newInventory(t)
	hits, err := ds.SearchContext(context.Background(), SearchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 4 {
		t.Fatalf("browse returned %d", len(hits))
	}
}

func TestNumericFilters(t *testing.T) {
	_, ds := newInventory(t)
	hits, err := ds.SearchContext(context.Background(), SearchRequest{Filters: []Filter{{Field: "price", Op: "<", Value: "35"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("price<35 hits = %d", len(hits))
	}
	hits, _ = ds.SearchContext(context.Background(), SearchRequest{Filters: []Filter{
		{Field: "price", Op: ">=", Value: "29.99"},
		{Field: "instock", Op: "=", Value: "true"},
	}})
	if len(hits) != 3 {
		t.Fatalf("combined filters = %d", len(hits))
	}
}

func TestContainsFilter(t *testing.T) {
	_, ds := newInventory(t)
	hits, err := ds.SearchContext(context.Background(), SearchRequest{Filters: []Filter{{Field: "description", Op: "contains", Value: "GAME adventure"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("contains hits = %d", len(hits))
	}
}

func TestFilterErrors(t *testing.T) {
	_, ds := newInventory(t)
	if _, err := ds.SearchContext(context.Background(), SearchRequest{Filters: []Filter{{Field: "nope", Op: "="}}}); err == nil {
		t.Error("unknown filter field accepted")
	}
	if _, err := ds.SearchContext(context.Background(), SearchRequest{Filters: []Filter{{Field: "price", Op: "~"}}}); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestOrderBy(t *testing.T) {
	_, ds := newInventory(t)
	hits, err := ds.SearchContext(context.Background(), SearchRequest{OrderBy: "price"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Record["price"] < hits[i-1].Record["price"] {
			t.Fatal("ascending order violated")
		}
	}
	hits, _ = ds.SearchContext(context.Background(), SearchRequest{OrderBy: "-price"})
	if hits[0].Record["sku"] != "G1" {
		t.Errorf("descending price first = %v", hits[0].Record["sku"])
	}
	if _, err := ds.SearchContext(context.Background(), SearchRequest{OrderBy: "nope"}); err == nil {
		t.Error("unknown order field accepted")
	}
}

func TestSearchPagination(t *testing.T) {
	_, ds := newInventory(t)
	all, _ := ds.SearchContext(context.Background(), SearchRequest{OrderBy: "price"})
	p, _ := ds.SearchContext(context.Background(), SearchRequest{OrderBy: "price", Limit: 2, Offset: 2})
	if len(p) != 2 || p[0].ID != all[2].ID {
		t.Fatal("pagination misaligned")
	}
	if p, _ := ds.SearchContext(context.Background(), SearchRequest{Offset: 99}); p != nil {
		t.Error("offset past end not empty")
	}
}

func TestListInsertionOrder(t *testing.T) {
	_, ds := newInventory(t)
	recs := ds.List(0, 0)
	if len(recs) != 4 || recs[0]["sku"] != "G1" || recs[3]["sku"] != "G4" {
		t.Fatalf("List order wrong: %v", recs)
	}
	page := ds.List(2, 1)
	if len(page) != 1 || page[0]["sku"] != "G3" {
		t.Fatalf("List page wrong: %v", page)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	_, ds := newInventory(t)
	rec, _ := ds.Get("G1")
	rec["title"] = "mutated"
	rec2, _ := ds.Get("G1")
	if rec2["title"] == "mutated" {
		t.Error("Get exposed internal record")
	}
}

func TestTenantIsolation(t *testing.T) {
	s, _ := newInventory(t)
	// Bob cannot see Ann's data.
	if _, err := s.DatasetContext(context.Background(), "gamerqueen", "bob", "inventory", PermRead); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("bob read = %v", err)
	}
	if _, err := s.Datasets("gamerqueen", "bob"); !errors.Is(err, ErrAccessDenied) {
		t.Fatal("bob listed datasets")
	}
	// Grant read: bob can read but not write.
	if err := s.Grant("gamerqueen", "ann", "bob", PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DatasetContext(context.Background(), "gamerqueen", "bob", "inventory", PermRead); err != nil {
		t.Fatalf("bob read after grant = %v", err)
	}
	if _, err := s.DatasetContext(context.Background(), "gamerqueen", "bob", "inventory", PermWrite); !errors.Is(err, ErrAccessDenied) {
		t.Fatal("bob got write with read grant")
	}
	// Revoke.
	if err := s.Revoke("gamerqueen", "ann", "bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DatasetContext(context.Background(), "gamerqueen", "bob", "inventory", PermRead); !errors.Is(err, ErrAccessDenied) {
		t.Fatal("bob read after revoke")
	}
}

func TestOnlyOwnerGrants(t *testing.T) {
	s, _ := newInventory(t)
	if err := s.Grant("gamerqueen", "mallory", "mallory", PermWrite); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("mallory granted herself access: %v", err)
	}
	if err := s.Revoke("gamerqueen", "mallory", "ann"); !errors.Is(err, ErrAccessDenied) {
		t.Fatal("mallory revoked")
	}
}

func TestStoreErrors(t *testing.T) {
	s := New()
	if err := s.CreateTenant("t", "o"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTenant("t", "o"); err == nil {
		t.Error("duplicate tenant accepted")
	}
	if _, err := s.DatasetContext(context.Background(), "missing", "o", "x", PermRead); !errors.Is(err, ErrNoSuchTenant) {
		t.Error("missing tenant not reported")
	}
	if _, err := s.DatasetContext(context.Background(), "t", "o", "x", PermRead); !errors.Is(err, ErrNoSuchDataset) {
		t.Error("missing dataset not reported")
	}
	sch := Schema{Name: "d", Fields: []Field{{Name: "a"}}}
	if _, err := s.CreateDataset("t", "o", sch); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDataset("t", "o", sch); !errors.Is(err, ErrDatasetExists) {
		t.Error("duplicate dataset accepted")
	}
	if err := s.DropDataset("t", "o", "d"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropDataset("t", "o", "d"); !errors.Is(err, ErrNoSuchDataset) {
		t.Error("double drop accepted")
	}
}

func TestInferSchema(t *testing.T) {
	samples := []Record{
		{"title": "Halo", "price": "49.99", "instock": "true", "url": "http://x.example/a"},
		{"title": "Zelda", "price": "29.99", "instock": "false", "url": "http://x.example/b"},
	}
	sch := InferSchema("inv", samples)
	types := map[string]FieldType{}
	searchable := map[string]bool{}
	for _, f := range sch.Fields {
		types[f.Name] = f.Type
		searchable[f.Name] = f.Searchable
	}
	if types["title"] != TypeString || !searchable["title"] {
		t.Errorf("title inferred as %v searchable=%v", types["title"], searchable["title"])
	}
	if types["price"] != TypeNumber {
		t.Errorf("price inferred as %v", types["price"])
	}
	if types["instock"] != TypeBool {
		t.Errorf("instock inferred as %v", types["instock"])
	}
	if types["url"] != TypeURL {
		t.Errorf("url inferred as %v", types["url"])
	}
}

func TestInferSchemaWidensConflicts(t *testing.T) {
	samples := []Record{{"v": "12"}, {"v": "twelve"}}
	sch := InferSchema("x", samples)
	f, _ := sch.Field("v")
	if f.Type != TypeString {
		t.Errorf("conflicting column inferred as %v", f.Type)
	}
}

// Property: every record put with a unique searchable token is
// findable, and structured price filters agree with a linear scan.
func TestPropertyPutSearchAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		s.CreateTenant("t", "o")
		ds, _ := s.CreateDataset("t", "o", Schema{
			Name: "d", Key: "id",
			Fields: []Field{
				{Name: "id"},
				{Name: "name", Type: TypeString, Searchable: true},
				{Name: "price", Type: TypeNumber},
			},
		})
		n := rng.Intn(40) + 1
		prices := make([]float64, n)
		for i := 0; i < n; i++ {
			prices[i] = float64(rng.Intn(100))
			ds.Put(Record{
				"id":    fmt.Sprintf("r%d", i),
				"name":  fmt.Sprintf("token%d item", i),
				"price": fmt.Sprintf("%.0f", prices[i]),
			})
		}
		cut := float64(rng.Intn(100))
		hits, err := ds.SearchContext(context.Background(), SearchRequest{Filters: []Filter{{Field: "price", Op: "<", Value: fmt.Sprintf("%.0f", cut)}}})
		if err != nil {
			return false
		}
		want := 0
		for _, p := range prices {
			if p < cut {
				want++
			}
		}
		if len(hits) != want {
			return false
		}
		i := rng.Intn(n)
		found, err := ds.SearchContext(context.Background(), SearchRequest{Query: fmt.Sprintf("token%d", i)})
		return err == nil && len(found) == 1 && found[0].ID == fmt.Sprintf("r%d", i)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
