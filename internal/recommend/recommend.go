// Package recommend implements the paper's first future-work item:
// "recommending suitable supplemental content (e.g., good game review
// sites) for a designer's primary content (e.g., game inventory)".
//
// Given a sample of the designer's primary records, it issues probe
// queries built from the drive field to the engine's web vertical and
// scores sites by how often and how highly they rank across probes —
// sites that consistently answer queries about the catalog's entities
// are good supplemental restriction sets. When a click-log suggester
// is supplied, its co-visitation signal is blended in.
package recommend

import (
	"context"
	"sort"

	"repro/internal/engine"
	"repro/internal/sitesuggest"
	"repro/internal/store"
	"repro/internal/webcorpus"
)

// SiteScore is one recommended supplemental site.
type SiteScore struct {
	Site  string
	Score float64
	// Hits is the number of probe queries the site answered.
	Hits int
}

// Options tunes a recommendation run.
type Options struct {
	// DriveField is the record field probes are built from (e.g.
	// "title"). Required.
	DriveField string
	// ProbeSuffix is appended to each probe ("review", "trailer").
	ProbeSuffix string
	// SampleSize bounds how many records to probe (default 10).
	SampleSize int
	// PerProbe is how many results to examine per probe (default 10).
	PerProbe int
	// Limit bounds the returned sites (default 5).
	Limit int
	// Suggester optionally blends click-log co-visitation scores.
	Suggester *sitesuggest.Suggester
}

// SupplementalSites recommends restriction sites for supplementing
// the dataset's content.
func SupplementalSites(ctx context.Context, e *engine.Engine, ds *store.Dataset, opts Options) ([]SiteScore, error) {
	if opts.SampleSize <= 0 {
		opts.SampleSize = 10
	}
	if opts.PerProbe <= 0 {
		opts.PerProbe = 10
	}
	if opts.Limit <= 0 {
		opts.Limit = 5
	}
	records := ds.List(0, opts.SampleSize)
	scores := make(map[string]float64)
	hits := make(map[string]int)
	probes := 0
	for _, rec := range records {
		seedVal := rec[opts.DriveField]
		if seedVal == "" {
			continue
		}
		query := seedVal
		if opts.ProbeSuffix != "" {
			query += " " + opts.ProbeSuffix
		}
		rs, err := e.Search(ctx, engine.Request{
			Query:    query,
			Vertical: webcorpus.VerticalWeb,
			Limit:    opts.PerProbe,
		})
		if err != nil {
			return nil, err
		}
		probes++
		seen := map[string]bool{}
		for rank, r := range rs {
			// Reciprocal-rank credit, counted once per probe per site.
			if seen[r.Site] {
				continue
			}
			seen[r.Site] = true
			scores[r.Site] += 1.0 / float64(rank+1)
			hits[r.Site]++
		}
	}
	if probes == 0 {
		return nil, nil
	}
	out := make([]SiteScore, 0, len(scores))
	for site, sc := range scores {
		blended := sc / float64(probes)
		out = append(out, SiteScore{Site: site, Score: blended, Hits: hits[site]})
	}
	if opts.Suggester != nil && len(out) > 0 {
		// Blend: seed the click-graph with our current top site and
		// boost sites the crowd co-visits with it.
		sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
		seed := out[0].Site
		boost := map[string]float64{}
		for _, sg := range opts.Suggester.Suggest([]string{seed}, 10) {
			boost[sg.Site] = sg.Score
		}
		for i := range out {
			out[i].Score += 0.5 * boost[out[i].Site]
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Site < out[j].Site
	})
	if len(out) > opts.Limit {
		out = out[:opts.Limit]
	}
	return out, nil
}
