package recommend

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/sitesuggest"
	"repro/internal/store"
	"repro/internal/webcorpus"
)

var corpus = webcorpus.Generate(webcorpus.Config{Seed: 31})
var eng = engine.New(corpus)

func gameInventory(t testing.TB) *store.Dataset {
	t.Helper()
	s := store.New()
	s.CreateTenant("t", "o")
	ds, err := s.CreateDataset("t", "o", store.Schema{
		Name: "inv", Key: "sku",
		Fields: []store.Field{
			{Name: "sku", Required: true},
			{Name: "title", Searchable: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, title := range webcorpus.Entities(webcorpus.Config{Seed: 31}, webcorpus.TopicGames)[:12] {
		if _, err := ds.Put(store.Record{"sku": fmt.Sprintf("G%d", i), "title": title}); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestRecommendsGameSites(t *testing.T) {
	ds := gameInventory(t)
	recs, err := SupplementalSites(context.Background(), eng, ds, Options{DriveField: "title", ProbeSuffix: "review", Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	gameSites := map[string]bool{}
	for _, s := range webcorpus.SitesForTopic(webcorpus.TopicGames) {
		gameSites[s] = true
	}
	// The majority of top recommendations should publish game content
	// — the paper's "good game review sites" for a game inventory.
	hits := 0
	for _, r := range recs {
		if gameSites[r.Site] {
			hits++
		}
		if r.Score <= 0 || r.Hits <= 0 {
			t.Errorf("degenerate rec %+v", r)
		}
	}
	if hits*2 < len(recs) {
		t.Errorf("only %d/%d recommendations are game sites: %+v", hits, len(recs), recs)
	}
}

func TestScoresDescendAndLimit(t *testing.T) {
	ds := gameInventory(t)
	recs, err := SupplementalSites(context.Background(), eng, ds, Options{DriveField: "title", Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) > 3 {
		t.Fatalf("limit ignored: %d", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Score > recs[i-1].Score {
			t.Fatal("scores not descending")
		}
	}
}

func TestEmptyDriveFieldYieldsNothing(t *testing.T) {
	s := store.New()
	s.CreateTenant("t", "o")
	ds, _ := s.CreateDataset("t", "o", store.Schema{Name: "d", Fields: []store.Field{{Name: "x"}}})
	ds.Put(store.Record{"x": ""})
	recs, err := SupplementalSites(context.Background(), eng, ds, Options{DriveField: "x"})
	if err != nil || recs != nil {
		t.Fatalf("recs = %v, %v", recs, err)
	}
}

func TestSuggesterBlendBoosts(t *testing.T) {
	ds := gameInventory(t)
	base, err := SupplementalSites(context.Background(), eng, ds, Options{DriveField: "title", ProbeSuffix: "review", Limit: 10})
	if err != nil || len(base) < 2 {
		t.Skip("not enough base recommendations")
	}
	// Build a click log that ties the top site to the last site.
	top, last := base[0].Site, base[len(base)-1].Site
	var log []engine.LogEntry
	for i := 0; i < 5; i++ {
		q := fmt.Sprintf("query %d", i)
		log = append(log,
			engine.LogEntry{Query: q, Site: top, ClickedURL: "http://" + top},
			engine.LogEntry{Query: q, Site: last, ClickedURL: "http://" + last},
		)
	}
	sug := sitesuggest.Build(log)
	blended, err := SupplementalSites(context.Background(), eng, ds, Options{
		DriveField: "title", ProbeSuffix: "review", Limit: 10, Suggester: sug,
	})
	if err != nil {
		t.Fatal(err)
	}
	var baseScore, blendScore float64
	for _, r := range base {
		if r.Site == last {
			baseScore = r.Score
		}
	}
	for _, r := range blended {
		if r.Site == last {
			blendScore = r.Score
		}
	}
	if blendScore <= baseScore {
		t.Errorf("co-visitation did not boost %s: %f <= %f", last, blendScore, baseScore)
	}
}
