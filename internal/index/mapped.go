package index

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Mapped shards: snapshot format v3 lays a shard out so it can be
// served directly from the snapshot file's bytes (mmap'd by the
// caller) instead of being decoded onto the heap. The payload carries
// fixed-width offset directories — doc table, ID order, per-field
// term dictionaries — so every lookup the query path needs is a
// binary search plus a bounds-checked uvarint decode over the raw
// bytes. The block iterators and WAND cursors already consume plain
// []byte posting streams, so a decoded "view" posting list whose
// docTF/posBuf point into the mapped payload evaluates through the
// exact same code as a heap-built one, bit-identically.
//
// Mutability is copy-on-write with two granularities:
//
//   - the doc table (docs, byID) materializes onto the heap as a
//     whole on the shard's first mutation — every write needs the
//     ordinal space anyway;
//   - posting lists materialize per term: a write that touches one
//     term copies only that term's bytes to the heap, so a lightly
//     written tenant keeps almost all of its index off-heap.
//
// The invariant the v3 encoder relies on: a dirty shard (any
// mutation since attach) always has its doc table materialized, so
// re-encoding walks heap docs; a clean mapped shard re-encodes by
// writing its payload bytes verbatim.
//
// View slices are cap-clamped (buf[a:b:b]), so an append through a
// promoted posting list reallocates instead of scribbling on the
// mapping. Mapped payloads are never unmapped while the index lives
// (see internal/mmapio); decode errors on lazy paths — impossible
// after the frame CRC unless the writer was buggy — are counted on
// the index and degrade to "term/document absent" rather than panic.

// v3 shard payload layout (all offsets absolute within the payload):
//
//	header: 8 x u64 LE
//	  [0] nDocs  [1] live  [2] dead  [3] nFields
//	  [4] docDirOff  [5] idSortedOff  [6] fieldDirOff  [7] reserved
//	doc entries: per live doc: str ID, strmap Fields, strmap Stored
//	docDir   at docDirOff:   nDocs x u64 entry offset (^0 = tombstone)
//	idSorted at idSortedOff: live x u32 ordinals sorted by doc ID
//	fieldDir at fieldDirOff: nFields x u64 field section offset
//	field section (fields sorted by name):
//	  str name, uvarint totalLen, docCount, minLen,
//	  uvarint nLens, nLens x (uvarint ord, uvarint len),
//	  uvarint nTerms, termDir: nTerms x u64 entry offset
//	  (entries sorted by term), then the term entries
//	term entry:
//	  str term, uvarint n, lastDoc, maxTF, nBlocks,
//	  nBlocks x (uvarint firstDoc, docOff, posOff, maxTF),
//	  uvarint len + raw docTF, uvarint len + raw posBuf

const (
	v3HeaderLen = 64
	// v3Tombstone marks a dead ordinal in the doc directory.
	v3Tombstone = ^uint64(0)
)

// mappedShard is the view side of a shard attached from a v3 payload.
type mappedShard struct {
	payload  []byte
	nDocs    int
	docDir   []byte // nDocs * 8
	idSorted []byte // live * 4
	// docsMat flips once when the doc table has been materialized
	// into s.docs/s.byID; after that the heap table is authoritative.
	docsMat bool
}

// mappedField is the view side of one field's term dictionary.
type mappedField struct {
	payload []byte
	termDir []byte // nTerms * 8
	nTerms  int
	// lazy caches decoded view posting lists by term. Pointer
	// identity matters: the cross-request cache keys decoded postings
	// by *postingList, so repeated lookups must return the same list.
	lazy sync.Map // term -> *postingList
	// names caches the decoded term dictionary (sorted).
	names atomic.Pointer[[]string]
	ix    *Index
}

// MMapStats reports where an index's bytes live: still mapped, or
// materialized onto the heap by writes.
type MMapStats struct {
	MappedShards        int   `json:"mappedShards"`
	MappedBytes         int64 `json:"mappedBytes"`
	MaterializedTerms   int64 `json:"materializedTerms"`
	MaterializedBytes   int64 `json:"materializedBytes"`
	MaterializedDocTabs int64 `json:"materializedDocTables"`
	LazyDecodeErrors    int64 `json:"lazyDecodeErrors"`
}

// MMapStats reports the index's mapped-vs-heap residency counters.
func (ix *Index) MMapStats() MMapStats {
	st := MMapStats{
		MappedBytes:         ix.mmMappedBytes.Load(),
		MaterializedTerms:   ix.mmMatTerms.Load(),
		MaterializedBytes:   ix.mmMatBytes.Load(),
		MaterializedDocTabs: ix.mmMatDocTabs.Load(),
		LazyDecodeErrors:    ix.mmLazyErrs.Load(),
	}
	r := ix.ring.Load()
	for _, s := range r.shards {
		s.mu.RLock()
		if s.ms != nil {
			st.MappedShards++
		}
		s.mu.RUnlock()
	}
	return st
}

func (ix *Index) lazyErr() { ix.mmLazyErrs.Add(1) }

// attachShardV3 builds a shard whose reads serve from payload. The
// eager part — field registry, doc lengths, counts — is O(docs) tiny
// integers; postings and the doc table stay views. Structural bounds
// are validated here so query-time decodes start from sane offsets.
func (ix *Index) attachShardV3(payload []byte, optsFor func(string) (FieldOptions, bool)) (*shard, error) {
	fail := func(err error) (*shard, error) {
		return nil, fmt.Errorf("index: attaching v3 shard: %w", err)
	}
	if len(payload) < v3HeaderLen {
		return fail(fmt.Errorf("payload %d bytes, header needs %d", len(payload), v3HeaderLen))
	}
	u64At := func(i int) uint64 { return binary.LittleEndian.Uint64(payload[i*8:]) }
	nDocs, live, dead, nFields := int(u64At(0)), int(u64At(1)), int(u64At(2)), int(u64At(3))
	docDirOff, idSortedOff, fieldDirOff := u64At(4), u64At(5), u64At(6)
	// Counts are bounded by the payload itself: every doc costs at
	// least one directory entry, every field at least one.
	if nDocs < 0 || nDocs > len(payload) || live < 0 || dead < 0 || live+dead != nDocs ||
		nFields < 0 || nFields > len(payload) {
		return fail(fmt.Errorf("implausible header counts docs=%d live=%d dead=%d fields=%d", nDocs, live, dead, nFields))
	}
	section := func(off uint64, n int) ([]byte, error) {
		end := off + uint64(n)
		if off > uint64(len(payload)) || end > uint64(len(payload)) {
			return nil, fmt.Errorf("directory [%d,%d) outside payload of %d bytes", off, end, len(payload))
		}
		return payload[off:end:end], nil
	}
	docDir, err := section(docDirOff, nDocs*8)
	if err != nil {
		return fail(err)
	}
	idSorted, err := section(idSortedOff, live*4)
	if err != nil {
		return fail(err)
	}
	fieldDir, err := section(fieldDirOff, nFields*8)
	if err != nil {
		return fail(err)
	}
	s := newShard(ix)
	s.live, s.dead = live, dead
	s.ms = &mappedShard{payload: payload, nDocs: nDocs, docDir: docDir, idSorted: idSorted}
	ix.mmMappedBytes.Add(int64(len(payload)))
	for i := 0; i < nFields; i++ {
		off := binary.LittleEndian.Uint64(fieldDir[i*8:])
		if off > uint64(len(payload)) {
			return fail(fmt.Errorf("field %d section offset %d outside payload", i, off))
		}
		br := &binReader{buf: payload, off: int(off)}
		name, err := br.str()
		if err != nil {
			return fail(err)
		}
		fp := &fieldPostings{terms: make(map[string]*postingList), docLen: make([]int, nDocs)}
		if fp.totalLen, err = br.uvarint(); err != nil {
			return fail(err)
		}
		if fp.docCount, err = br.uvarint(); err != nil {
			return fail(err)
		}
		if fp.minLen, err = br.uvarint(); err != nil {
			return fail(err)
		}
		nLens, err := br.count()
		if err != nil {
			return fail(err)
		}
		for j := 0; j < nLens; j++ {
			ord, err := br.uvarint()
			if err != nil {
				return fail(err)
			}
			if ord >= nDocs {
				return fail(fmt.Errorf("field %q doc length for ordinal %d of %d", name, ord, nDocs))
			}
			if fp.docLen[ord], err = br.uvarint(); err != nil {
				return fail(err)
			}
		}
		nTerms, err := br.count()
		if err != nil {
			return fail(err)
		}
		termDir, err := section(uint64(br.off), nTerms*8)
		if err != nil {
			return fail(fmt.Errorf("field %q: %w", name, err))
		}
		fp.mapped = &mappedField{payload: payload, termDir: termDir, nTerms: nTerms, ix: ix}
		if opts, ok := optsFor(name); ok {
			fp.opts = opts
		}
		s.fields[name] = fp
	}
	return s, nil
}

// termAt decodes the term string of dictionary slot i.
func (mf *mappedField) termAt(i int) (string, error) {
	off := binary.LittleEndian.Uint64(mf.termDir[i*8:])
	if off > uint64(len(mf.payload)) {
		return "", errShardPayload
	}
	br := &binReader{buf: mf.payload, off: int(off)}
	return br.str()
}

// find binary-searches the mapped term dictionary.
func (mf *mappedField) find(term string) (slot int, ok bool) {
	lo, hi := 0, mf.nTerms
	for lo < hi {
		mid := (lo + hi) / 2
		t, err := mf.termAt(mid)
		if err != nil {
			mf.ix.lazyErr()
			return 0, false
		}
		if t < term {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < mf.nTerms {
		t, err := mf.termAt(lo)
		if err != nil {
			mf.ix.lazyErr()
			return 0, false
		}
		if t == term {
			return lo, true
		}
	}
	return 0, false
}

// decodeSlot builds a view posting list for dictionary slot i: block
// metadata on the heap (it is decoded integers either way), byte
// streams as cap-clamped views into the payload.
func (mf *mappedField) decodeSlot(i int) (*postingList, error) {
	off := binary.LittleEndian.Uint64(mf.termDir[i*8:])
	if off > uint64(len(mf.payload)) {
		return nil, errShardPayload
	}
	br := &binReader{buf: mf.payload, off: int(off)}
	if _, err := br.str(); err != nil { // term, already known to callers
		return nil, err
	}
	l := &postingList{}
	var err error
	if l.n, err = br.uvarint(); err != nil {
		return nil, err
	}
	if l.lastDoc, err = br.uvarint(); err != nil {
		return nil, err
	}
	if l.maxTF, err = br.uvarint(); err != nil {
		return nil, err
	}
	nBlocks, err := br.count()
	if err != nil {
		return nil, err
	}
	if want := (l.n + postingBlockSize - 1) / postingBlockSize; nBlocks != want {
		return nil, errShardPayload
	}
	l.blocks = make([]blockMeta, nBlocks)
	for b := range l.blocks {
		bm := &l.blocks[b]
		if bm.firstDoc, err = br.uvarint(); err != nil {
			return nil, err
		}
		if bm.docOff, err = br.uvarint(); err != nil {
			return nil, err
		}
		if bm.posOff, err = br.uvarint(); err != nil {
			return nil, err
		}
		if bm.maxTF, err = br.uvarint(); err != nil {
			return nil, err
		}
	}
	view := func() ([]byte, error) {
		n, err := br.count()
		if err != nil {
			return nil, err
		}
		end := br.off + n
		v := br.buf[br.off:end:end]
		br.off = end
		return v, nil
	}
	if l.docTF, err = view(); err != nil {
		return nil, err
	}
	if l.posBuf, err = view(); err != nil {
		return nil, err
	}
	return l, nil
}

// lookup resolves a term's posting list: heap map first (new and
// materialized terms), then the lazy view cache, then a decode from
// the mapped dictionary. Callers hold the shard lock (read suffices).
// nil means the field has no such term.
func (fp *fieldPostings) lookup(term string) *postingList {
	if l, ok := fp.terms[term]; ok {
		return l
	}
	mf := fp.mapped
	if mf == nil {
		return nil
	}
	if v, ok := mf.lazy.Load(term); ok {
		return v.(*postingList)
	}
	slot, ok := mf.find(term)
	if !ok {
		return nil
	}
	l, err := mf.decodeSlot(slot)
	if err != nil {
		mf.ix.lazyErr()
		return nil
	}
	// LoadOrStore keeps pointer identity stable under concurrent
	// first lookups — the postings cache keys on the pointer.
	actual, _ := mf.lazy.LoadOrStore(term, l)
	return actual.(*postingList)
}

// lookupForWrite resolves a term for appending: a mapped term is
// first copied onto the heap (copy-on-write at term granularity) so
// the mutation cannot touch the mapping. Returns nil when the term
// does not exist yet anywhere. Callers hold the write lock.
func (fp *fieldPostings) lookupForWrite(term string) *postingList {
	return fp.promoteTermLocked(term, true)
}

// promoteTermLocked copies a mapped term's bytes onto the heap and
// installs the copy in the heap map. count selects whether the
// copy-on-write counters record it: writes do, a wholesale heap
// restore does not (there the heap is the chosen representation, not
// a mutation cost).
func (fp *fieldPostings) promoteTermLocked(term string, count bool) *postingList {
	if l, ok := fp.terms[term]; ok {
		return l
	}
	mf := fp.mapped
	if mf == nil {
		return nil
	}
	view := fp.lookup(term)
	if view == nil {
		return nil
	}
	heap := &postingList{
		n:       view.n,
		lastDoc: view.lastDoc,
		maxTF:   view.maxTF,
		docTF:   append([]byte(nil), view.docTF...),
		posBuf:  append([]byte(nil), view.posBuf...),
		blocks:  append([]blockMeta(nil), view.blocks...),
	}
	fp.terms[term] = heap
	mf.lazy.Delete(term)
	if count {
		mf.ix.mmMatTerms.Add(1)
		mf.ix.mmMatBytes.Add(int64(len(heap.docTF) + len(heap.posBuf)))
	}
	return heap
}

// mappedTermNames returns the sorted mapped dictionary, decoding and
// caching it on first use.
func (mf *mappedField) mappedTermNames() []string {
	if p := mf.names.Load(); p != nil {
		return *p
	}
	names := make([]string, 0, mf.nTerms)
	for i := 0; i < mf.nTerms; i++ {
		t, err := mf.termAt(i)
		if err != nil {
			mf.ix.lazyErr()
			break
		}
		names = append(names, t)
	}
	mf.names.Store(&names)
	return names
}

// sortedTermsAll is sortedTerms for fields that may have a mapped
// dictionary: the union of mapped terms and heap terms (new terms
// from writes; materialized terms exist in both and dedup away).
func (fp *fieldPostings) sortedTermsAll() []string {
	if fp.mapped == nil {
		return fp.sortedTerms()
	}
	if p := fp.dict.Load(); p != nil {
		return *p
	}
	mappedNames := fp.mapped.mappedTermNames()
	merged := make([]string, 0, len(mappedNames)+len(fp.terms))
	merged = append(merged, mappedNames...)
	for t := range fp.terms {
		i := sort.SearchStrings(mappedNames, t)
		if i >= len(mappedNames) || mappedNames[i] != t {
			merged = append(merged, t)
		}
	}
	sort.Strings(merged)
	fp.dict.Store(&merged)
	return merged
}

// numDocs returns the shard's ordinal-space size.
func (s *shard) numDocs() int {
	if s.ms != nil && !s.ms.docsMat {
		return s.ms.nDocs
	}
	return len(s.docs)
}

// liveAt reports whether ordinal ord holds a live document. O(1) on
// both representations: heap checks the doc table, mapped checks the
// doc directory's tombstone sentinel.
func (s *shard) liveAt(ord int) bool {
	if s.ms != nil && !s.ms.docsMat {
		return binary.LittleEndian.Uint64(s.ms.docDir[ord*8:]) != v3Tombstone
	}
	return s.docs[ord].ID != ""
}

// docEntryAt decodes the mapped doc entry at ordinal ord; ok=false
// for tombstones. The returned Document's maps are freshly decoded —
// a per-call allocation, so callers on hot paths should only reach it
// for actual hits.
func (ms *mappedShard) docEntryAt(ix *Index, ord int) (Document, bool) {
	off := binary.LittleEndian.Uint64(ms.docDir[ord*8:])
	if off == v3Tombstone {
		return Document{}, false
	}
	if off > uint64(len(ms.payload)) {
		ix.lazyErr()
		return Document{}, false
	}
	br := &binReader{buf: ms.payload, off: int(off)}
	doc := Document{}
	var err error
	if doc.ID, err = br.str(); err != nil || doc.ID == "" {
		ix.lazyErr()
		return Document{}, false
	}
	if doc.Fields, err = br.strmap(); err != nil {
		ix.lazyErr()
		return Document{}, false
	}
	if doc.Stored, err = br.strmap(); err != nil {
		ix.lazyErr()
		return Document{}, false
	}
	return doc, true
}

// idAt returns the document ID at ord ("" for tombstones).
func (s *shard) idAt(ord int) string {
	if s.ms != nil && !s.ms.docsMat {
		off := binary.LittleEndian.Uint64(s.ms.docDir[ord*8:])
		if off == v3Tombstone {
			return ""
		}
		if off > uint64(len(s.ms.payload)) {
			s.ix.lazyErr()
			return ""
		}
		br := &binReader{buf: s.ms.payload, off: int(off)}
		id, err := br.str()
		if err != nil {
			s.ix.lazyErr()
			return ""
		}
		return id
	}
	return s.docs[ord].ID
}

// docAt returns the document at ord (zero Document for tombstones).
func (s *shard) docAt(ord int) Document {
	if s.ms != nil && !s.ms.docsMat {
		doc, _ := s.ms.docEntryAt(s.ix, ord)
		return doc
	}
	return s.docs[ord]
}

// findOrd resolves a document ID to its ordinal. The mapped path
// binary-searches the ID-sorted ordinal permutation.
func (s *shard) findOrd(id string) (int, bool) {
	if s.ms == nil || s.ms.docsMat {
		ord, ok := s.byID[id]
		return ord, ok
	}
	ms := s.ms
	n := len(ms.idSorted) / 4
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		ord := int(binary.LittleEndian.Uint32(ms.idSorted[mid*4:]))
		if s.idAt(ord) < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n {
		ord := int(binary.LittleEndian.Uint32(ms.idSorted[lo*4:]))
		if s.idAt(ord) == id {
			return ord, true
		}
	}
	return 0, false
}

// materializeDocsLocked decodes the mapped doc table into the heap
// representation (docs, byID). Corrupt entries — unreachable after
// the frame CRC — are counted and land as tombstones.
func (s *shard) materializeDocsLocked() {
	ms := s.ms
	if ms == nil || ms.docsMat {
		return
	}
	s.docs = make([]Document, ms.nDocs)
	s.byID = make(map[string]int, s.live)
	for ord := 0; ord < ms.nDocs; ord++ {
		doc, ok := ms.docEntryAt(s.ix, ord)
		if !ok {
			continue
		}
		s.docs[ord] = doc
		s.byID[doc.ID] = ord
	}
	ms.docsMat = true
}

// prepareWriteLocked is the copy-on-write hook every mutation runs
// first: materialize the doc table and mark the shard dirty, so the
// encoder knows this shard can no longer be written verbatim.
func (s *shard) prepareWriteLocked() {
	if s.ms != nil && !s.ms.docsMat {
		s.materializeDocsLocked()
		s.ix.mmMatDocTabs.Add(1)
	}
	s.dirty = true
}

// materializeAllLocked converts the whole shard to the heap
// representation and detaches the mapping: doc table, then every
// still-mapped term. Used by whole-shard rewrites (compaction,
// reshard migration) and by the heap restore path, where the "mapped"
// payload is a heap frame that should not stay referenced.
func (s *shard) materializeAllLocked(count bool) {
	if s.ms == nil {
		return
	}
	if count && !s.ms.docsMat {
		s.ix.mmMatDocTabs.Add(1)
	}
	s.materializeDocsLocked()
	for _, fp := range s.fields {
		mf := fp.mapped
		if mf == nil {
			continue
		}
		for _, term := range mf.mappedTermNames() {
			fp.promoteTermLocked(term, count)
		}
		fp.mapped = nil
		fp.dict.Store(nil)
	}
	s.ix.mmMappedBytes.Add(-int64(len(s.ms.payload)))
	s.ms = nil
}
