package index

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/textproc"
)

func sampleIndex(t testing.TB) *Index {
	t.Helper()
	ix := New()
	ix.SetFieldOptions("title", FieldOptions{Boost: 2})
	docs := []Document{
		{ID: "g1", Fields: map[string]string{"title": "The Legend of Zelda", "desc": "An adventure game with puzzles and exploration"}, Stored: map[string]string{"title": "The Legend of Zelda", "producer": "Nintendo"}},
		{ID: "g2", Fields: map[string]string{"title": "Halo Wars", "desc": "A strategy game set in the Halo universe"}, Stored: map[string]string{"title": "Halo Wars", "producer": "Ensemble"}},
		{ID: "g3", Fields: map[string]string{"title": "Gears of War", "desc": "A shooter game with cover mechanics"}, Stored: map[string]string{"title": "Gears of War", "producer": "Epic"}},
		{ID: "g4", Fields: map[string]string{"title": "Zelda Spirit Tracks", "desc": "A handheld adventure game in the Zelda series"}, Stored: map[string]string{"title": "Zelda Spirit Tracks", "producer": "Nintendo"}},
	}
	if err := ix.AddBatch(docs); err != nil {
		t.Fatal(err)
	}
	return ix
}

func ids(rs []Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

func TestAddAndGet(t *testing.T) {
	ix := sampleIndex(t)
	if ix.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ix.Len())
	}
	doc, ok := ix.Get("g1")
	if !ok || doc.Stored["producer"] != "Nintendo" {
		t.Fatalf("Get g1 = %#v, %v", doc, ok)
	}
	if _, ok := ix.Get("missing"); ok {
		t.Error("Get(missing) reported ok")
	}
}

func TestAddEmptyID(t *testing.T) {
	if err := New().Add(Document{}); err == nil {
		t.Fatal("empty ID accepted")
	}
}

func TestMatchQueryOr(t *testing.T) {
	ix := sampleIndex(t)
	rs := ix.mustSearch(MatchQuery{Text: "zelda adventure"}, SearchOptions{})
	got := ids(rs)
	if len(got) < 2 || got[0] != "g1" && got[0] != "g4" {
		t.Fatalf("zelda adventure results = %v", got)
	}
	// g2 (halo) must not match
	for _, id := range got {
		if id == "g2" {
			t.Error("g2 matched zelda adventure")
		}
	}
}

func TestMatchQueryAnd(t *testing.T) {
	ix := sampleIndex(t)
	rs := ix.mustSearch(MatchQuery{Text: "zelda puzzles", Operator: "and"}, SearchOptions{})
	if got := ids(rs); len(got) != 1 || got[0] != "g1" {
		t.Fatalf("AND query = %v, want [g1]", got)
	}
}

func TestFieldRestrictedMatch(t *testing.T) {
	ix := sampleIndex(t)
	rs := ix.mustSearch(MatchQuery{Fields: []string{"title"}, Text: "adventure"}, SearchOptions{})
	if len(rs) != 0 {
		t.Fatalf("title-only adventure matched %v", ids(rs))
	}
	rs = ix.mustSearch(MatchQuery{Fields: []string{"desc"}, Text: "adventure"}, SearchOptions{})
	if len(rs) != 2 {
		t.Fatalf("desc adventure = %v", ids(rs))
	}
}

func TestTitleBoostRanksTitleHitsFirst(t *testing.T) {
	ix := sampleIndex(t)
	rs := ix.mustSearch(MatchQuery{Text: "war"}, SearchOptions{})
	// g2 "Halo Wars" and g3 "Gears of War" have title hits; both should
	// rank and g2/g3 should beat any desc-only hit.
	if len(rs) < 2 {
		t.Fatalf("war results: %v", ids(rs))
	}
}

func TestPhraseQuery(t *testing.T) {
	ix := sampleIndex(t)
	rs := ix.mustSearch(PhraseQuery{Field: "title", Text: "spirit tracks"}, SearchOptions{})
	if got := ids(rs); len(got) != 1 || got[0] != "g4" {
		t.Fatalf("phrase = %v", got)
	}
	// Out-of-order words must not match as phrase.
	rs = ix.mustSearch(PhraseQuery{Field: "title", Text: "tracks spirit"}, SearchOptions{})
	if len(rs) != 0 {
		t.Fatalf("reversed phrase matched %v", ids(rs))
	}
}

func TestPhraseQueryWithStopwordGap(t *testing.T) {
	ix := sampleIndex(t)
	// "legend of zelda": "of" is a stopword; the gap must be honored.
	rs := ix.mustSearch(PhraseQuery{Field: "title", Text: "legend of zelda"}, SearchOptions{})
	if got := ids(rs); len(got) != 1 || got[0] != "g1" {
		t.Fatalf("stopword phrase = %v", got)
	}
	// "legend zelda" with no gap should NOT match because the indexed
	// positions have a hole where "of" was.
	rs = ix.mustSearch(PhraseQuery{Field: "title", Text: "legend zelda"}, SearchOptions{})
	if len(rs) != 0 {
		t.Fatalf("gapless phrase matched %v", ids(rs))
	}
}

func TestPrefixQuery(t *testing.T) {
	ix := sampleIndex(t)
	rs := ix.mustSearch(PrefixQuery{Field: "title", Prefix: "zel"}, SearchOptions{})
	if len(rs) != 2 {
		t.Fatalf("prefix zel = %v", ids(rs))
	}
}

func TestBoolQuery(t *testing.T) {
	ix := sampleIndex(t)
	q := BoolQuery{
		Must:    []Query{MatchQuery{Text: "game"}},
		MustNot: []Query{MatchQuery{Text: "zelda"}},
	}
	rs := ix.mustSearch(q, SearchOptions{})
	for _, id := range ids(rs) {
		if id == "g1" || id == "g4" {
			t.Errorf("mustnot leaked %s", id)
		}
	}
	if len(rs) != 2 {
		t.Fatalf("bool = %v", ids(rs))
	}
}

func TestBoolQueryShouldOnly(t *testing.T) {
	ix := sampleIndex(t)
	q := BoolQuery{Should: []Query{
		TermQuery{Field: "title", Term: "halo"},
		TermQuery{Field: "title", Term: "gears"},
	}}
	rs := ix.mustSearch(q, SearchOptions{})
	if len(rs) != 2 {
		t.Fatalf("should-only = %v", ids(rs))
	}
}

func TestAllQueryAndFilters(t *testing.T) {
	ix := sampleIndex(t)
	rs := ix.mustSearch(AllQuery{}, SearchOptions{Filters: map[string]string{"producer": "Nintendo"}})
	if len(rs) != 2 {
		t.Fatalf("filter producer=Nintendo = %v", ids(rs))
	}
}

func TestCount(t *testing.T) {
	ix := sampleIndex(t)
	if n := ix.mustCount(MatchQuery{Text: "game"}, nil); n != 4 {
		t.Fatalf("Count(game) = %d", n)
	}
	if n := ix.mustCount(nil, map[string]string{"producer": "Epic"}); n != 1 {
		t.Fatalf("Count(producer=Epic) = %d", n)
	}
}

func TestLimitOffset(t *testing.T) {
	ix := sampleIndex(t)
	all := ix.mustSearch(MatchQuery{Text: "game"}, SearchOptions{})
	page1 := ix.mustSearch(MatchQuery{Text: "game"}, SearchOptions{Limit: 2})
	page2 := ix.mustSearch(MatchQuery{Text: "game"}, SearchOptions{Limit: 2, Offset: 2})
	if len(page1) != 2 || len(page2) != 2 {
		t.Fatalf("pagination sizes %d %d", len(page1), len(page2))
	}
	if page1[0].ID != all[0].ID || page2[0].ID != all[2].ID {
		t.Error("pagination does not line up with full result order")
	}
	if got := ix.mustSearch(MatchQuery{Text: "game"}, SearchOptions{Offset: 99}); got != nil {
		t.Error("offset past end should be empty")
	}
}

func TestDelete(t *testing.T) {
	ix := sampleIndex(t)
	if !ix.Delete("g1") {
		t.Fatal("Delete(g1) = false")
	}
	if ix.Delete("g1") {
		t.Fatal("double delete reported true")
	}
	if ix.Len() != 3 {
		t.Fatalf("Len after delete = %d", ix.Len())
	}
	rs := ix.mustSearch(MatchQuery{Text: "legend"}, SearchOptions{})
	if len(rs) != 0 {
		t.Fatalf("deleted doc still matches: %v", ids(rs))
	}
}

func TestReAddReplaces(t *testing.T) {
	ix := sampleIndex(t)
	err := ix.Add(Document{ID: "g1", Fields: map[string]string{"title": "Completely New"}, Stored: map[string]string{"title": "Completely New"}})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 4 {
		t.Fatalf("Len after replace = %d", ix.Len())
	}
	if rs := ix.mustSearch(MatchQuery{Text: "legend"}, SearchOptions{}); len(rs) != 0 {
		t.Error("old content of replaced doc still searchable")
	}
	if rs := ix.mustSearch(MatchQuery{Text: "completely"}, SearchOptions{}); len(rs) != 1 {
		t.Error("new content of replaced doc not searchable")
	}
}

func TestCompact(t *testing.T) {
	ix := sampleIndex(t)
	ix.Delete("g2")
	ix.Delete("g3")
	ix.Compact()
	rs := ix.mustSearch(MatchQuery{Text: "zelda"}, SearchOptions{})
	if len(rs) != 2 {
		t.Fatalf("post-compact zelda = %v", ids(rs))
	}
	if ix.DocFreq("title", "halo") != 0 {
		t.Error("compacted term still has df")
	}
}

func TestDocFreq(t *testing.T) {
	ix := sampleIndex(t)
	if df := ix.DocFreq("title", "zelda"); df != 2 {
		t.Fatalf("df(zelda) = %d", df)
	}
	if df := ix.DocFreq("missing", "zelda"); df != 0 {
		t.Fatalf("df on missing field = %d", df)
	}
}

func TestFieldsSorted(t *testing.T) {
	ix := sampleIndex(t)
	fs := ix.Fields()
	if len(fs) != 2 || fs[0] != "desc" || fs[1] != "title" {
		t.Fatalf("Fields = %v", fs)
	}
}

func TestSnippetHighlights(t *testing.T) {
	ix := sampleIndex(t)
	rs := ix.mustSearch(MatchQuery{Text: "adventure"}, SearchOptions{SnippetField: "desc"})
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	found := false
	for _, r := range rs {
		if strings.Contains(r.Snippet, "<b>adventure</b>") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no highlighted snippet in %v", rs)
	}
}

func TestSnippetStemmedHighlight(t *testing.T) {
	ix := New()
	ix.Add(Document{ID: "d", Fields: map[string]string{"body": "Latest reviews from critics"}})
	rs := ix.mustSearch(MatchQuery{Text: "review"}, SearchOptions{SnippetField: "body"})
	if len(rs) != 1 || !strings.Contains(rs[0].Snippet, "<b>reviews</b>") {
		t.Fatalf("stemmed highlight missing: %#v", rs)
	}
}

func TestKeywordFieldAnalyzer(t *testing.T) {
	ix := New()
	ix.SetFieldOptions("site", FieldOptions{Analyzer: textproc.KeywordAnalyzer})
	ix.Add(Document{ID: "p", Fields: map[string]string{"site": "ign.com"}})
	rs := ix.mustSearch(TermQuery{Field: "site", Term: "ign"}, SearchOptions{})
	if len(rs) != 1 {
		t.Fatalf("keyword term = %v", ids(rs))
	}
}

func TestScoreOrderingDeterministic(t *testing.T) {
	ix := sampleIndex(t)
	a := ids(ix.mustSearch(MatchQuery{Text: "game"}, SearchOptions{}))
	for i := 0; i < 5; i++ {
		b := ids(ix.mustSearch(MatchQuery{Text: "game"}, SearchOptions{}))
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("nondeterministic order: %v vs %v", a, b)
			}
		}
	}
}

func TestEmptyQueryText(t *testing.T) {
	ix := sampleIndex(t)
	if rs := ix.mustSearch(MatchQuery{Text: "   "}, SearchOptions{}); len(rs) != 0 {
		t.Fatalf("blank query matched %v", ids(rs))
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	ix := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ix.Add(Document{
					ID:     fmt.Sprintf("w%d-%d", w, i),
					Fields: map[string]string{"body": "concurrent search platform test"},
				})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ix.mustSearch(MatchQuery{Text: "platform"}, SearchOptions{Limit: 10})
			}
		}()
	}
	wg.Wait()
	if ix.Len() != 800 {
		t.Fatalf("Len = %d, want 800", ix.Len())
	}
}

// Property: every document added with a unique term is findable by it,
// and Count agrees with Search.
func TestPropertySearchFindsAdded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := New()
		n := rng.Intn(30) + 1
		for i := 0; i < n; i++ {
			ix.Add(Document{
				ID:     fmt.Sprintf("doc%d", i),
				Fields: map[string]string{"body": fmt.Sprintf("uniqueterm%d shared", i)},
			})
		}
		for i := 0; i < n; i++ {
			rs := ix.mustSearch(MatchQuery{Text: fmt.Sprintf("uniqueterm%d", i)}, SearchOptions{})
			if len(rs) != 1 || rs[0].ID != fmt.Sprintf("doc%d", i) {
				return false
			}
		}
		return ix.mustCount(MatchQuery{Text: "shared"}, nil) == n &&
			len(ix.mustSearch(MatchQuery{Text: "shared"}, SearchOptions{})) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: delete then search never returns the deleted doc.
func TestPropertyDeleteInvisible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := New()
		n := rng.Intn(20) + 2
		for i := 0; i < n; i++ {
			ix.Add(Document{ID: fmt.Sprintf("d%d", i), Fields: map[string]string{"b": "alpha beta"}})
		}
		victim := fmt.Sprintf("d%d", rng.Intn(n))
		ix.Delete(victim)
		for _, r := range ix.mustSearch(MatchQuery{Text: "alpha"}, SearchOptions{}) {
			if r.ID == victim {
				return false
			}
		}
		return ix.Len() == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: BM25 scores are positive and rarer terms score at least as
// high as common ones for same-length docs.
func TestPropertyIDFMonotonic(t *testing.T) {
	ix := New()
	for i := 0; i < 50; i++ {
		body := "common"
		if i == 0 {
			body = "rare"
		}
		ix.Add(Document{ID: fmt.Sprintf("d%d", i), Fields: map[string]string{"b": body}})
	}
	rare := ix.mustSearch(MatchQuery{Text: "rare"}, SearchOptions{})
	common := ix.mustSearch(MatchQuery{Text: "common"}, SearchOptions{})
	if len(rare) != 1 || len(common) != 49 {
		t.Fatal("setup wrong")
	}
	if rare[0].Score <= common[0].Score {
		t.Errorf("rare score %f <= common score %f", rare[0].Score, common[0].Score)
	}
	for _, r := range append(rare, common...) {
		if r.Score <= 0 {
			t.Errorf("non-positive score %f", r.Score)
		}
	}
}
