package index

import (
	"sync"
	"sync/atomic"
)

// Request-scratch pooling: every transient a query evaluation needs —
// the aggregated-statistics struct with its maps, the per-shard
// partial-result buffers, the merge cursors, the bounded top-k heap
// backing arrays and the block-max cursor/plan objects (wandArena in
// wand.go) — recycles through sync.Pools instead of being reallocated
// per request. Two rules make this safe:
//
//  1. Join before release. Every fan-out (runShards) returns only
//     after all shard tasks have returned, even on a cancelled
//     context, so nothing is ever put back while a worker still
//     writes to it.
//  2. Generation checks. Pooled searchStats carry a generation stamp
//     bumped on every release; the fan-out captures the stamp at
//     submit time and each shard task re-checks it before evaluating.
//     A reference that somehow outlived its query (a bug in rule 1)
//     skips the work instead of scribbling on a later query's scratch.
//
// SetScratchPooling(false) routes every acquisition to a fresh
// allocation — the pre-pooling behaviour — for A/B benchmarks and
// equivalence tests.

var scratchOff atomic.Bool

// SetScratchPooling toggles request-scratch recycling (on by
// default). Disabled, every query allocates fresh scratch exactly as
// before pooling existed; results are identical either way.
func SetScratchPooling(on bool) { scratchOff.Store(!on) }

var statsPool = sync.Pool{New: func() any { return newSearchStats() }}

// getSearchStats returns an empty searchStats, pooled when pooling is
// enabled.
func getSearchStats() *searchStats {
	if scratchOff.Load() {
		return newSearchStats()
	}
	return statsPool.Get().(*searchStats)
}

// putSearchStats clears st and returns it to the pool. The generation
// bump invalidates any stale reference still carrying the old stamp.
func putSearchStats(st *searchStats) {
	if scratchOff.Load() {
		return
	}
	st.gen.Add(1)
	clear(st.avgLen)
	clear(st.df)
	clear(st.terms)
	clear(st.toks)
	clear(st.need)
	clear(st.needFields)
	clear(st.raw)
	st.allFields = nil
	st.live = 0
	st.done = nil
	st.cref = nil
	st.stamp = Stamp{}
	statsPool.Put(st)
}

// slicePool recycles buffers of any slice type; get returns a zeroed
// slice of length n. It is a mutex-guarded freelist rather than a
// sync.Pool on purpose: storing a slice header in a sync.Pool boxes it
// into an interface — one heap allocation per put, which is exactly
// the churn the pool exists to remove. The critical sections are a few
// instructions, far cheaper than the allocation they avoid.
type slicePool[T any] struct {
	mu   sync.Mutex
	free [][]T
}

// slicePoolCap bounds each freelist; beyond it buffers are dropped to
// the GC so a burst can never pin memory forever.
const slicePoolCap = 64

func (sp *slicePool[T]) get(n int) []T {
	if scratchOff.Load() {
		return make([]T, n)
	}
	sp.mu.Lock()
	var v []T
	if len(sp.free) > 0 {
		v = sp.free[len(sp.free)-1]
		sp.free[len(sp.free)-1] = nil
		sp.free = sp.free[:len(sp.free)-1]
	}
	sp.mu.Unlock()
	if cap(v) < n {
		return make([]T, n)
	}
	v = v[:n]
	var zero T
	for i := range v {
		v[i] = zero
	}
	return v
}

func (sp *slicePool[T]) put(v []T) {
	if v == nil || scratchOff.Load() {
		return
	}
	sp.mu.Lock()
	if len(sp.free) < slicePoolCap {
		sp.free = append(sp.free, v[:0])
	}
	sp.mu.Unlock()
}

var (
	partsPool      slicePool[[]shardHit]
	countsPool     slicePool[int]
	facetPartsPool slicePool[map[string]int]
	headsPool      slicePool[int]
	mergedPool     slicePool[mergedHit]
	shardHitsPool  slicePool[shardHit]
)

// getShardHits returns an empty hit buffer for a shard's partial
// results (top-k heap backing or the exhaustive path's append target).
// Ownership transfers with the buffer: the shard hands it to
// searchWith inside parts, and searchWith releases all of them after
// the merge.
func getShardHits() []shardHit { return shardHitsPool.get(0) }

func putShardHits(h []shardHit) { shardHitsPool.put(h) }

// sessionPool recycles Session structs with their memo maps; see
// Session.Release in session.go.
var sessionPool = sync.Pool{New: func() any { return newSession() }}

func getSession() *Session {
	if scratchOff.Load() {
		return newSession()
	}
	return sessionPool.Get().(*Session)
}
