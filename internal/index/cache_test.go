package index

import (
	"fmt"
	"strings"
	"testing"
)

// The cross-request cache must be invisible except in latency: a hit
// returns exactly what evaluation would have, any mutation makes every
// older entry unservable, and a pinned session can neither be fed
// fresher data than its snapshot nor clobber it.

func TestCacheWarmHitIdentical(t *testing.T) {
	ix := equivCorpus(t, 3)
	c := NewCache(8 << 20)
	ix.AttachCache(c)
	q := MatchQuery{Text: "zelda strategy"}
	opts := SearchOptions{Limit: 10}

	cold := ix.mustSearch(q, opts)
	h0 := c.Stats().Hits
	warm := ix.mustSearch(q, opts)
	if c.Stats().Hits == h0 {
		t.Fatal("second identical query did not hit the cache")
	}
	mustEqualResults(t, "warm vs cold", warm, cold)

	// Hits are copies: a caller scribbling on its results must not
	// poison the cached value.
	warm[0].Score = -1
	warm[0].ID = "scribbled"
	again := ix.mustSearch(q, opts)
	mustEqualResults(t, "after scribble", again, cold)

	// Counts and facets ride the same cache.
	n := ix.mustCount(q, nil)
	h1 := c.Stats().Hits
	if got := ix.mustCount(q, nil); got != n {
		t.Fatalf("warm Count %d, want %d", got, n)
	}
	if c.Stats().Hits == h1 {
		t.Fatal("second Count did not hit the cache")
	}
	fc := ix.mustFacets(q, "producer", nil)
	h2 := c.Stats().Hits
	fc2 := ix.mustFacets(q, "producer", nil)
	if c.Stats().Hits == h2 {
		t.Fatal("second Facets did not hit the cache")
	}
	if len(fc) != len(fc2) {
		t.Fatalf("warm facets %v, want %v", fc2, fc)
	}
	for i := range fc {
		if fc[i] != fc2[i] {
			t.Fatalf("warm facet %d: %v, want %v", i, fc2[i], fc[i])
		}
	}
}

// TestCacheInvalidationOnMutation: after any write the cache must
// never serve the pre-write answer. Every post-mutation query is held
// to bit-identity with the reference evaluator over the live data.
func TestCacheInvalidationOnMutation(t *testing.T) {
	ix := equivCorpus(t, 3)
	c := NewCache(8 << 20)
	ix.AttachCache(c)
	q := MatchQuery{Text: "zelda adventure"}
	opts := SearchOptions{Limit: 10}

	ix.mustSearch(q, opts) // fill
	ix.mustSearch(q, opts) // warm

	// Add a document that must dominate the ranking.
	ix.Add(Document{
		ID:     "fresh",
		Fields: map[string]string{"title": "zelda zelda", "body": strings.Repeat("zelda adventure ", 8)},
		Stored: map[string]string{"producer": "Nintendo", "parity": "1"},
	})
	got := ix.mustSearch(q, opts)
	mustEqualResults(t, "after add", got, refSearch(ix, q, opts))
	found := false
	for _, r := range got {
		found = found || r.ID == "fresh"
	}
	if !found {
		t.Fatal("stale SERP served: added document missing from results")
	}

	// Delete it again; it must vanish immediately.
	ix.mustSearch(q, opts) // re-fill under the post-add stamp
	if !ix.Delete("fresh") {
		t.Fatal("Delete(fresh) found nothing")
	}
	got = ix.mustSearch(q, opts)
	mustEqualResults(t, "after delete", got, refSearch(ix, q, opts))
	for _, r := range got {
		if r.ID == "fresh" {
			t.Fatal("stale SERP served: deleted document still in results")
		}
	}

	// Configuration changes are mutations too.
	ix.mustSearch(q, opts)
	ix.SetFieldOptions("title", FieldOptions{Boost: 5})
	mustEqualResults(t, "after boost change", ix.mustSearch(q, opts), refSearch(ix, q, opts))

	if c.Stats().Invalidated == 0 {
		t.Fatal("no entry was invalidated by stamp mismatch")
	}
}

// TestCacheSessionStampPinned: a session presents its creation-time
// stamp for its whole life. After a mutation it simply stops matching
// the cache — it re-evaluates against live postings (so writes stay
// visible) and must not overwrite entries stamped after it.
func TestCacheSessionStampPinned(t *testing.T) {
	ix := equivCorpus(t, 2)
	c := NewCache(8 << 20)
	ix.AttachCache(c)
	q := MatchQuery{Text: "zelda adventure"}
	opts := SearchOptions{Limit: 10}

	sess := ix.Session()
	sess.mustSearch(q, opts) // cached under the session's stamp

	ix.Add(Document{
		ID:     "fresh",
		Fields: map[string]string{"body": strings.Repeat("zelda adventure ", 8)},
		Stored: map[string]string{"producer": "Epic", "parity": "1"},
	})
	// Index-level query: fresh stamp, sees the write, refills the cache.
	post := ix.mustSearch(q, opts)
	foundAt := func(rs []Result) bool {
		for _, r := range rs {
			if r.ID == "fresh" {
				return true
			}
		}
		return false
	}
	if !foundAt(post) {
		t.Fatal("index-level query missed the new document")
	}
	// The pinned session evaluates live postings too (its statistics
	// snapshot is pinned, not its data), so the write is visible; what
	// it must NOT do is hit the newer cache entry or replace it.
	if !foundAt(sess.mustSearch(q, opts)) {
		t.Fatal("session query missed the new document")
	}
	if got := ix.mustSearch(q, opts); !foundAt(got) {
		t.Fatal("session overwrote a fresher cache entry with its own")
	}
}

// TestCacheEviction: a cache smaller than the working set evicts LRU
// entries instead of growing, and stays within budget.
func TestCacheEviction(t *testing.T) {
	ix := New(WithShards(1))
	for i := 0; i < 50; i++ {
		ix.Add(Document{
			ID:     fmt.Sprintf("d%02d", i),
			Fields: map[string]string{"body": fmt.Sprintf("common term%d %s", i, strings.Repeat("pad ", 40))},
		})
	}
	budget := int64(4 << 10)
	c := NewCache(budget)
	ix.AttachCache(c)
	for i := 0; i < 50; i++ {
		ix.mustSearch(MatchQuery{Text: fmt.Sprintf("term%d common", i)}, SearchOptions{Limit: 20})
	}
	st := c.Stats()
	if st.Evicted == 0 {
		t.Fatalf("tiny cache never evicted: %+v", st)
	}
	if st.Bytes > budget {
		t.Fatalf("cache exceeded budget: %d > %d", st.Bytes, budget)
	}
	if st.Entries == 0 {
		t.Fatalf("cache held nothing at all: %+v", st)
	}
}

// TestCacheStampRules pins the get/put era rules at the unit level:
// exact match serves, a newer reader kills an older entry, an older
// reader (pinned session) neither reads nor replaces a newer entry.
func TestCacheStampRules(t *testing.T) {
	c := NewCache(1 << 20)
	ref := &cacheRef{c: c, ns: cacheNSCounter.Add(1)}
	k := ref.key(kindSERP, "q")
	old := Stamp{Gen: 1, Ver: 1}
	cur := Stamp{Gen: 1, Ver: 2}

	c.put(k, old, "old", 8)
	if v, ok := c.get(k, old); !ok || v != "old" {
		t.Fatalf("exact-stamp get = %v, %v", v, ok)
	}
	// A reader from a newer era invalidates the entry on sight.
	if _, ok := c.get(k, cur); ok {
		t.Fatal("newer reader was served an older entry")
	}
	if st := c.Stats(); st.Invalidated != 1 {
		t.Fatalf("invalidated = %d, want 1", st.Invalidated)
	}
	if _, ok := c.get(k, old); ok {
		t.Fatal("invalidated entry still served to its own era")
	}

	// An older writer must not clobber a newer entry, and an older
	// reader must not be served it — but the entry survives.
	c.put(k, cur, "cur", 8)
	c.put(k, old, "stale", 8)
	if _, ok := c.get(k, old); ok {
		t.Fatal("older reader was served a newer entry")
	}
	if v, ok := c.get(k, cur); !ok || v != "cur" {
		t.Fatalf("newer entry lost: %v, %v", v, ok)
	}

	// A generation bump outranks any version.
	gen2 := Stamp{Gen: 2, Ver: 0}
	if _, ok := c.get(k, gen2); ok {
		t.Fatal("next-generation reader was served an old-generation entry")
	}
	if _, ok := c.get(k, cur); ok {
		t.Fatal("gen-invalidated entry still served")
	}

	// Values over budget are simply not cached.
	c.put(ref.key(kindSERP, "huge"), cur, "x", 2<<20)
	if _, ok := c.get(ref.key(kindSERP, "huge"), cur); ok {
		t.Fatal("over-budget value was cached")
	}
}
