package index

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/textproc"
)

// Session is a request-scoped statistics cache. One end-user request
// typically hits the index several times with overlapping terms —
// ranked hits, a total count, a facet sidebar, often for the same
// query — and each call re-aggregated document frequencies and field
// lengths across every shard. A Session remembers what one request
// already aggregated (live count, per-field average lengths, per-term
// document frequencies, query-text analysis) so the second and later
// calls reuse it, taking zero shard locks when nothing new is needed.
//
// Statistics are cached as of first use, which is exactly the point:
// the queries of one request see one consistent statistics snapshot.
// Do not reuse a Session across requests on a mutating index — create
// one per request; creation is cheap.
//
// A Session is safe for concurrent use: the cache is mutex-guarded
// and each query evaluates against its own private searchStats copy.
//
// A Session pins the shard ring it was created on: every query of the
// request aggregates and evaluates against one layout generation, so
// an online Reshard mid-request cannot mix statistics from one layout
// with evaluation on another. (The pinned ring's shards remain fully
// valid after a swap — they just stop receiving new writes, which is
// exactly the request-scoped snapshot contract.)
type Session struct {
	ix *Index
	r  *ring
	// ref/st pin the shared cross-request cache (nil when none) and
	// the mutation era captured at session creation. Every cache
	// operation of the session presents this one stamp, so the session
	// reads one consistent era — its documented snapshot semantics —
	// and anything it stores is never served to readers that started
	// after a later mutation.
	ref *cacheRef
	st  Stamp

	mu     sync.Mutex
	ranker Ranker
	k1, b  float64

	liveOK bool
	live   int
	// avgLen caches per-field average lengths; avgLenOK marks fields
	// aggregated already (a field absent from every shard caches 0,
	// which scoring treats as 1 — same as the uncached lookup miss).
	avgLen   map[string]float64
	avgLenOK map[string]bool
	// df caches document frequencies; dfOK marks aggregated terms
	// (df 0 is a valid cached value).
	df   map[fieldTerm]int
	dfOK map[fieldTerm]bool
	// terms/toks cache query-text analysis keyed by (field, raw);
	// raw caches tokenized query text keyed by the raw text.
	terms map[fieldTerm][]string
	toks  map[fieldTerm][]textproc.Token
	raw   map[string][]string

	// released guards the pooled lifecycle (see Release): sessions
	// recycle through a sync.Pool, and the flag makes double-release
	// a no-op instead of a double-put.
	released atomic.Bool
}

func newSession() *Session {
	return &Session{
		avgLen:   make(map[string]float64),
		avgLenOK: make(map[string]bool),
		df:       make(map[fieldTerm]int),
		dfOK:     make(map[fieldTerm]bool),
		terms:    make(map[fieldTerm][]string),
		toks:     make(map[fieldTerm][]textproc.Token),
		raw:      make(map[string][]string),
	}
}

// Release returns the session's scratch (its struct and memo maps) to
// the process-wide pool. Call it when the request that created the
// session is done; the session must not be used afterwards. Release
// is idempotent and optional — an unreleased session is garbage
// collected exactly as before pooling existed.
func (sess *Session) Release() {
	if scratchOff.Load() {
		return
	}
	if sess.released.Swap(true) {
		return
	}
	sess.ix = nil
	sess.r = nil
	sess.ref = nil
	sess.st = Stamp{}
	sess.liveOK = false
	sess.live = 0
	clear(sess.avgLen)
	clear(sess.avgLenOK)
	clear(sess.df)
	clear(sess.dfOK)
	clear(sess.terms)
	clear(sess.toks)
	clear(sess.raw)
	sessionPool.Put(sess)
}

// Session returns a new request-scoped statistics cache over the
// index. The scoring configuration is snapshotted here so every query
// of the request scores under one ranker.
func (ix *Index) Session() *Session {
	sess := getSession()
	sess.released.Store(false)
	sess.ix = ix
	sess.r = ix.ring.Load()
	sess.ranker, sess.k1, sess.b = ix.scoringParams()
	sess.ref = ix.cache.Load()
	sess.st = ix.stampFor(sess.r)
	return sess
}

// statsFor assembles the searchStats q needs, aggregating across
// shards only what this session has not seen yet. The returned stats
// hold private copies of the cached maps' relevant entries, so
// concurrent session queries never share mutable state — including
// the cancellation channel, which is per-call, not per-session.
func (sess *Session) statsFor(ctx context.Context, q Query) *searchStats {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	st := getSearchStats()
	st.done = ctx.Done()
	st.ranker, st.k1, st.b = sess.ranker, sess.k1, sess.b
	st.cref, st.stamp = sess.ref, sess.st
	// Seed the analysis caches so collectTerms skips re-analysis of
	// raw text this session has already processed.
	for k, v := range sess.terms {
		st.terms[k] = v
	}
	for k, v := range sess.toks {
		st.toks[k] = v
	}
	for k, v := range sess.raw {
		st.raw[k] = v
	}
	need := st.need
	sess.ix.collectTerms(q, need, st)
	for k, v := range st.terms {
		sess.terms[k] = v
	}
	for k, v := range st.toks {
		sess.toks[k] = v
	}
	for k, v := range st.raw {
		sess.raw[k] = v
	}
	if len(need) == 0 {
		// Nothing scores by BM25: same fast path as Index.gatherStats.
		return st
	}
	missingTerms := make(map[fieldTerm]bool)
	missingFields := make(map[string]bool)
	for ft := range need {
		if !sess.dfOK[ft] {
			missingTerms[ft] = true
		}
		if !sess.avgLenOK[ft.field] {
			missingFields[ft.field] = true
		}
	}
	if len(missingTerms) > 0 || len(missingFields) > 0 || !sess.liveOK {
		live, avgLen, df := aggregateStatsCached(sess.ref, sess.st, sess.r, missingFields, missingTerms)
		if !sess.liveOK {
			sess.live = live
			sess.liveOK = true
		}
		for f := range missingFields {
			sess.avgLen[f] = avgLen[f] // 0 when absent from every shard
			sess.avgLenOK[f] = true
		}
		for ft := range missingTerms {
			sess.df[ft] = df[ft]
			sess.dfOK[ft] = true
		}
	}
	st.live = sess.live
	for ft := range need {
		st.df[ft] = sess.df[ft]
		if v := sess.avgLen[ft.field]; v != 0 {
			st.avgLen[ft.field] = v
		}
	}
	return st
}

// RingGen reports the ring generation this session is pinned to,
// the invalidation key for holding sessions across requests.
func (sess *Session) RingGen() uint64 { return sess.r.gen }

// SearchContext is Index.SearchContext evaluated under this session's
// statistics, served from the shared cache when an identical request
// was answered in the same mutation era.
func (sess *Session) SearchContext(ctx context.Context, q Query, opts SearchOptions) ([]Result, error) {
	if q == nil {
		q = AllQuery{}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if sess.ref != nil {
		if key, ok := serpKey(q, opts); ok {
			ck := sess.ref.key(kindSERP, key)
			if v, ok := sess.ref.c.get(ck, sess.st); ok {
				return copyResults(v.([]Result)), nil
			}
			hits, err := sess.ix.searchWith(ctx, sess.r, sess.statsFor(ctx, q), q, opts)
			if err != nil {
				return nil, err
			}
			sess.ref.c.put(ck, sess.st, hits, serpBytes(hits))
			return copyResults(hits), nil
		}
	}
	return sess.ix.searchWith(ctx, sess.r, sess.statsFor(ctx, q), q, opts)
}

// CountContext is Index.CountContext evaluated under this session's
// statistics, cached like SearchContext.
func (sess *Session) CountContext(ctx context.Context, q Query, filters map[string]string) (int, error) {
	if q == nil {
		q = AllQuery{}
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if sess.ref != nil {
		if key, ok := countKey(q, filters); ok {
			ck := sess.ref.key(kindCount, key)
			if v, ok := sess.ref.c.get(ck, sess.st); ok {
				return v.(int), nil
			}
			n, err := sess.ix.countWith(ctx, sess.r, sess.statsFor(ctx, q), q, filters)
			if err != nil {
				return 0, err
			}
			sess.ref.c.put(ck, sess.st, n, 8)
			return n, nil
		}
	}
	return sess.ix.countWith(ctx, sess.r, sess.statsFor(ctx, q), q, filters)
}

// FacetsContext is Index.FacetsContext evaluated under this session's
// statistics, cached like SearchContext.
func (sess *Session) FacetsContext(ctx context.Context, q Query, field string, filters map[string]string) ([]FacetCount, error) {
	if q == nil {
		q = AllQuery{}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if sess.ref != nil {
		if key, ok := facetsKey(q, field, filters); ok {
			ck := sess.ref.key(kindFacets, key)
			if v, ok := sess.ref.c.get(ck, sess.st); ok {
				return copyFacets(v.([]FacetCount)), nil
			}
			fc, err := sess.ix.facetsWith(ctx, sess.r, sess.statsFor(ctx, q), q, field, filters)
			if err != nil {
				return nil, err
			}
			sess.ref.c.put(ck, sess.st, fc, facetBytes(fc))
			return copyFacets(fc), nil
		}
	}
	return sess.ix.facetsWith(ctx, sess.r, sess.statsFor(ctx, q), q, field, filters)
}
