package index

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

func executorCorpus(t testing.TB, shards, docs int) *Index {
	t.Helper()
	ix := New(WithShards(shards))
	for i := 0; i < docs; i++ {
		ix.Add(Document{
			ID: fmt.Sprintf("d%05d", i),
			Fields: map[string]string{
				"body": fmt.Sprintf("common words here zelda doc%d extra%d", i, i%17),
			},
			Stored: map[string]string{"parity": fmt.Sprint(i % 2)},
		})
	}
	return ix
}

// settleGoroutines polls until the goroutine count drops back to at
// most base+slack, failing after the deadline. The poll loop absorbs
// the runtime's own lag in reaping exited goroutines.
func settleGoroutines(t *testing.T, base, slack int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finalizers and give exited goroutines a beat
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d goroutines, want <= %d (base %d + slack %d)", what, n, base+slack, base, slack)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExecutorNoGoroutineLeak drives the three scenarios that could
// strand goroutines — queries cancelled mid-fan-out, a reshard racing
// live queries, and repeated executor resizes — then requires the
// process goroutine count to settle back to its baseline. The executor
// replaces per-query goroutine spawning, so after the storm the only
// survivors should be the fixed worker pool of the final generation.
func TestExecutorNoGoroutineLeak(t *testing.T) {
	t.Cleanup(func() { ConfigureExecutor(0) })
	ix := executorCorpus(t, 4, 4000)
	q := Query(MatchQuery{Text: "common zelda extra3"})
	currentExecutor() // force the pool up before taking the baseline
	base := runtime.NumGoroutine()

	// Cancel mid-fan-out: contexts cancelled at random points during
	// evaluation. The submitter still joins every shard task, so no
	// task may outlive its query.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*100*time.Microsecond)
				ix.SearchContext(ctx, q, SearchOptions{Limit: 10})
				ix.CountContext(ctx, q, nil)
				cancel()
			}
		}(g)
	}
	wg.Wait()
	settleGoroutines(t, base, 2, "after cancel storm")

	// Reshard during execution: queries keep running against the old
	// ring while the migration installs the new one.
	done := make(chan struct{})
	var qwg sync.WaitGroup
	for g := 0; g < 4; g++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for {
				select {
				case <-done:
					return
				default:
					ix.mustSearch(q, SearchOptions{Limit: 5})
				}
			}
		}()
	}
	for _, n := range []int{2, 6, 4} {
		if err := ix.ReshardContext(context.Background(), n); err != nil {
			t.Fatalf("reshard to %d: %v", n, err)
		}
	}
	close(done)
	qwg.Wait()
	settleGoroutines(t, base, 2, "after reshard under load")

	// Resize cycles: every ConfigureExecutor swaps in a fresh worker
	// pool; the old generation's workers must all exit.
	for i := 0; i < 5; i++ {
		ConfigureExecutor(1 + i%3)
		ix.mustSearch(q, SearchOptions{Limit: 5})
	}
	ConfigureExecutor(0)
	// The final pool replaces the baseline pool worker for worker, so
	// the count must return to the original baseline.
	settleGoroutines(t, base, 2, "after resize cycles")
}

// TestExecutorStatsProgress: the operator counters must move when
// queries run, and SetExecutorEnabled must route fan-out off the pool.
func TestExecutorStatsProgress(t *testing.T) {
	ix := executorCorpus(t, 4, 2000)
	q := Query(MatchQuery{Text: "common zelda"})
	before := GetExecutorStats()
	if before.Workers < 1 {
		t.Fatalf("executor reports %d workers", before.Workers)
	}
	for i := 0; i < 20; i++ {
		ix.mustSearch(q, SearchOptions{Limit: 10})
	}
	after := GetExecutorStats()
	if after.Tasks <= before.Tasks {
		t.Fatalf("task counter did not move: before %d after %d", before.Tasks, after.Tasks)
	}
	if !after.Enabled {
		t.Fatal("executor reports disabled while enabled")
	}
	SetExecutorEnabled(false)
	defer SetExecutorEnabled(true)
	if GetExecutorStats().Enabled {
		t.Fatal("executor reports enabled while disabled")
	}
	// Disabled, queries still answer (legacy fan-out path).
	if got := len(ix.mustSearch(q, SearchOptions{Limit: 10})); got == 0 {
		t.Fatal("no hits with executor disabled")
	}
}

// TestScratchGenerationAdvances pins the use-after-release guard:
// recycling search scratch must bump its generation stamp, so a shard
// task still holding the old generation observes the mismatch and
// drops its write instead of corrupting the next query's scratch.
func TestScratchGenerationAdvances(t *testing.T) {
	st := getSearchStats()
	gen := st.gen.Load()
	putSearchStats(st)
	st2 := getSearchStats()
	defer putSearchStats(st2)
	if st2 == st && st2.gen.Load() == gen {
		t.Fatalf("recycled scratch kept generation %d", gen)
	}
}

// TestRunShardsCancelledGenCheck exercises the late-task path end to
// end: a query whose context is cancelled before evaluation must
// return an error and must not leave results behind — its shard tasks
// see the stale generation or the cancelled context and bail.
func TestRunShardsCancelledGenCheck(t *testing.T) {
	ix := executorCorpus(t, 4, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.SearchContext(ctx, MatchQuery{Text: "common zelda"}, SearchOptions{Limit: 10}); err == nil {
		t.Fatal("cancelled search returned nil error")
	}
	if _, err := ix.CountContext(ctx, MatchQuery{Text: "common"}, nil); err == nil {
		t.Fatal("cancelled count returned nil error")
	}
	if _, err := ix.FacetsContext(ctx, MatchQuery{Text: "common"}, "parity", nil); err == nil {
		t.Fatal("cancelled facets returned nil error")
	}
	// And a healthy query right after is unaffected by the cancelled
	// one's recycled scratch.
	if got := len(ix.mustSearch(MatchQuery{Text: "common zelda"}, SearchOptions{Limit: 10})); got == 0 {
		t.Fatal("follow-up query found nothing")
	}
}
