package index

import (
	"reflect"
	"testing"
)

func TestFacetsOverMatch(t *testing.T) {
	ix := sampleIndex(t)
	got := ix.mustFacets(MatchQuery{Text: "game"}, "producer", nil)
	want := []FacetCount{
		{Value: "Nintendo", N: 2},
		{Value: "Ensemble", N: 1},
		{Value: "Epic", N: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("facets = %v", got)
	}
}

func TestFacetsRespectFilters(t *testing.T) {
	ix := sampleIndex(t)
	got := ix.mustFacets(nil, "producer", map[string]string{"producer": "Nintendo"})
	if len(got) != 1 || got[0].N != 2 {
		t.Fatalf("filtered facets = %v", got)
	}
}

func TestFacetsSkipDeletedAndEmpty(t *testing.T) {
	ix := sampleIndex(t)
	ix.Delete("g1")
	got := ix.mustFacets(nil, "producer", nil)
	for _, f := range got {
		if f.Value == "Nintendo" && f.N != 1 {
			t.Fatalf("deleted doc counted: %v", got)
		}
	}
	if got := ix.mustFacets(nil, "nonexistent", nil); len(got) != 0 {
		t.Fatalf("phantom field facets = %v", got)
	}
}
