// Package index implements the in-memory inverted index that backs
// every searchable source in the Symphony reproduction: the synthetic
// web engine's verticals and each designer's proprietary data store.
//
// It supports multi-field documents, BM25 ranking with per-field
// boosts, term / and / or / phrase / prefix queries, exact filters on
// keyword fields, deletions, and snippet generation.
//
// Concurrency model: the index is split into N shards (default
// GOMAXPROCS, configurable via WithShards). Each shard owns its own
// RWMutex, postings maps, doc table and ordinal space; documents route
// to shards by an FNV-1a hash of their ID. Queries fan out across
// shards in parallel and merge ranked partials, so readers contend on
// N locks instead of one and writers block only 1/N of the corpus —
// matching the paper's read-heavy hosted execution model where the
// platform index is the shared hot path for every published app.
//
// BM25 stays globally correct: corpus statistics (live doc count,
// per-field total lengths, document frequencies) are aggregated across
// shards before evaluation, so scores are bit-identical for any shard
// count.
package index

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"repro/internal/textproc"
)

// Document is the unit of indexing. Fields holds the analyzed,
// searchable text per field; Stored holds values returned verbatim
// with results (display fields, URLs, prices).
type Document struct {
	ID     string
	Fields map[string]string
	Stored map[string]string
}

// FieldOptions controls how a field is analyzed and scored.
type FieldOptions struct {
	// Analyzer used at index and query time. Nil means the default
	// free-text analyzer.
	Analyzer *textproc.Analyzer
	// Boost multiplies the field's BM25 contribution. Zero means 1.
	Boost float64
}

// Ranker selects the scoring function.
type Ranker int

// Rankers: BM25 (default) and classic TF-IDF, kept for the ablation
// in DESIGN.md §5.
const (
	RankerBM25 Ranker = iota
	RankerTFIDF
)

// Option configures an Index at construction time.
type Option func(*indexConfig)

type indexConfig struct {
	shards      int
	autoCompact float64
}

// WithShards sets the number of shards. Values below 1 are ignored.
// WithShards(1) reproduces the pre-sharding single-lock behaviour,
// including exact result ordering and scores.
func WithShards(n int) Option {
	return func(c *indexConfig) {
		if n > 0 {
			c.shards = n
		}
	}
}

// WithAutoCompact makes each shard compact itself when its tombstone
// ratio — tombstoned ordinals over (tombstoned + live) — reaches
// ratio after a deletion. Compaction is per shard, so a delete-heavy
// shard reclaims its postings without stalling the other shards'
// readers. Ratios outside (0, 1] disable auto-compaction (the
// default): callers then invoke Compact explicitly.
func WithAutoCompact(ratio float64) Option {
	return func(c *indexConfig) {
		if ratio > 0 && ratio <= 1 {
			c.autoCompact = ratio
		}
	}
}

// Index is a thread-safe sharded inverted index.
type Index struct {
	shards []*shard
	// autoCompact is the per-shard tombstone ratio that triggers
	// compaction after a delete; 0 disables. Immutable after New.
	autoCompact float64

	// cfg guards global, shard-independent state: the scoring
	// configuration and the registry of known fields with their
	// analysis options.
	cfg struct {
		sync.RWMutex
		ranker Ranker
		k1, b  float64
		fields map[string]FieldOptions
	}
}

// New returns an empty index with standard BM25 parameters
// (k1=1.2, b=0.75) and one shard per available CPU.
func New(opts ...Option) *Index {
	c := indexConfig{shards: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&c)
	}
	if c.shards < 1 {
		c.shards = 1
	}
	ix := &Index{shards: make([]*shard, c.shards), autoCompact: c.autoCompact}
	ix.cfg.k1 = 1.2
	ix.cfg.b = 0.75
	ix.cfg.fields = make(map[string]FieldOptions)
	for i := range ix.shards {
		ix.shards[i] = newShard(ix)
	}
	return ix
}

// NumShards reports how many shards the index was built with.
func (ix *Index) NumShards() int { return len(ix.shards) }

// shardFor routes a document ID to its owning shard.
func (ix *Index) shardFor(id string) *shard {
	if len(ix.shards) == 1 {
		return ix.shards[0]
	}
	h := fnv.New32a()
	h.Write([]byte(id))
	return ix.shards[h.Sum32()%uint32(len(ix.shards))]
}

// SetRanker switches the scoring function. Safe to call at any time;
// it affects subsequent searches only.
func (ix *Index) SetRanker(r Ranker) {
	ix.cfg.Lock()
	defer ix.cfg.Unlock()
	ix.cfg.ranker = r
}

// SetFieldOptions configures analysis and boost for a field. It must
// be called before documents containing the field are added; changing
// analyzers after indexing would desynchronize query analysis.
func (ix *Index) SetFieldOptions(field string, opts FieldOptions) {
	ix.cfg.Lock()
	ix.cfg.fields[field] = opts
	ix.cfg.Unlock()
	for _, s := range ix.shards {
		s.setFieldOptions(field, opts)
	}
}

// fieldOpts returns the registered options for field and whether the
// field is known to the index.
func (ix *Index) fieldOpts(field string) (FieldOptions, bool) {
	ix.cfg.RLock()
	defer ix.cfg.RUnlock()
	opts, ok := ix.cfg.fields[field]
	return opts, ok
}

// ensureField registers a field name with default options if it has
// not been seen before.
func (ix *Index) ensureField(field string) {
	ix.cfg.RLock()
	_, ok := ix.cfg.fields[field]
	ix.cfg.RUnlock()
	if ok {
		return
	}
	ix.cfg.Lock()
	if _, ok := ix.cfg.fields[field]; !ok {
		ix.cfg.fields[field] = FieldOptions{}
	}
	ix.cfg.Unlock()
}

// scoringParams snapshots the ranker configuration for one search.
func (ix *Index) scoringParams() (Ranker, float64, float64) {
	ix.cfg.RLock()
	defer ix.cfg.RUnlock()
	return ix.cfg.ranker, ix.cfg.k1, ix.cfg.b
}

// Add indexes doc, replacing any existing document with the same ID.
// Text analysis — the expensive part of indexing — runs before the
// shard write lock is taken, so concurrent readers are only blocked
// for the map updates themselves.
func (ix *Index) Add(doc Document) error {
	if doc.ID == "" {
		return fmt.Errorf("index: document has empty ID")
	}
	analyzed := make(map[string][]textproc.Token, len(doc.Fields))
	for field, text := range doc.Fields {
		ix.ensureField(field)
		opts, _ := ix.fieldOpts(field)
		analyzed[field] = opts.Analyzer.Analyze(text)
	}
	ix.shardFor(doc.ID).add(doc, analyzed)
	return nil
}

// AddBatch indexes docs, stopping at the first error.
func (ix *Index) AddBatch(docs []Document) error {
	for _, d := range docs {
		if err := ix.Add(d); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes the document with the given ID. It reports whether a
// document was removed.
func (ix *Index) Delete(id string) bool {
	return ix.shardFor(id).delete(id)
}

// Compact rebuilds posting lists without tombstoned entries. Call it
// after bulk deletions; queries work correctly either way. Indexes
// built with WithAutoCompact schedule this per shard automatically.
func (ix *Index) Compact() {
	ix.eachShard(func(_ int, s *shard) { s.compact() })
}

// TombstoneRatio reports the fraction of uncompacted tombstoned
// ordinals across the whole index: dead/(dead+live), 0 when empty.
// Operators (and WithAutoCompact) use it to decide when compaction
// is worth the write locks.
func (ix *Index) TombstoneRatio() float64 {
	dead, live := 0, 0
	for _, s := range ix.shards {
		s.mu.RLock()
		dead += s.dead
		live += s.live
		s.mu.RUnlock()
	}
	if dead == 0 {
		return 0
	}
	return float64(dead) / float64(dead+live)
}

// ShardTombstoneRatios reports each shard's tombstone ratio, for
// observability of skewed deletion patterns.
func (ix *Index) ShardTombstoneRatios() []float64 {
	out := make([]float64, len(ix.shards))
	for i, s := range ix.shards {
		out[i] = s.tombstoneRatio()
	}
	return out
}

// Len returns the number of live documents.
func (ix *Index) Len() int {
	n := 0
	for _, s := range ix.shards {
		n += s.lenLive()
	}
	return n
}

// Get returns the stored document for id.
func (ix *Index) Get(id string) (Document, bool) {
	return ix.shardFor(id).get(id)
}

// Fields returns the names of all indexed fields, sorted.
func (ix *Index) Fields() []string {
	ix.cfg.RLock()
	defer ix.cfg.RUnlock()
	out := make([]string, 0, len(ix.cfg.fields))
	for f := range ix.cfg.fields {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// DocFreq returns how many live documents contain term in field after
// analysis with the field's analyzer.
func (ix *Index) DocFreq(field, term string) int {
	opts, ok := ix.fieldOpts(field)
	if !ok {
		return 0
	}
	terms := opts.Analyzer.AnalyzeTerms(term)
	if len(terms) == 0 {
		return 0
	}
	dfs := make([]int, len(ix.shards))
	ix.eachShard(func(i int, s *shard) { dfs[i] = s.docFreq(field, terms[0]) })
	n := 0
	for _, df := range dfs {
		n += df
	}
	return n
}
