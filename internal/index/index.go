// Package index implements the in-memory inverted index that backs
// every searchable source in the Symphony reproduction: the synthetic
// web engine's verticals and each designer's proprietary data store.
//
// It supports multi-field documents, BM25 ranking with per-field
// boosts, term / and / or / phrase / prefix queries, exact filters on
// keyword fields, deletions, and snippet generation. Everything is
// guarded by one RWMutex: reads (queries) vastly outnumber writes in
// the platform's workload, matching the paper's read-heavy hosted
// execution model.
package index

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/textproc"
)

// Document is the unit of indexing. Fields holds the analyzed,
// searchable text per field; Stored holds values returned verbatim
// with results (display fields, URLs, prices).
type Document struct {
	ID     string
	Fields map[string]string
	Stored map[string]string
}

// FieldOptions controls how a field is analyzed and scored.
type FieldOptions struct {
	// Analyzer used at index and query time. Nil means the default
	// free-text analyzer.
	Analyzer *textproc.Analyzer
	// Boost multiplies the field's BM25 contribution. Zero means 1.
	Boost float64
}

type posting struct {
	doc       int   // internal ordinal
	positions []int // term positions within the field
}

type fieldPostings struct {
	// term -> postings ordered by doc ordinal
	terms map[string][]posting
	// total token count across live docs, for average length
	totalLen int
	// per-doc field length
	docLen map[int]int
	opts   FieldOptions
}

// Ranker selects the scoring function.
type Ranker int

// Rankers: BM25 (default) and classic TF-IDF, kept for the ablation
// in DESIGN.md §5.
const (
	RankerBM25 Ranker = iota
	RankerTFIDF
)

// Index is a thread-safe inverted index.
type Index struct {
	mu sync.RWMutex

	fields map[string]*fieldPostings
	docs   []Document // by ordinal; deleted entries have ID ""
	byID   map[string]int
	live   int

	ranker Ranker
	// bm25 parameters
	k1, b float64
}

// New returns an empty index with standard BM25 parameters
// (k1=1.2, b=0.75).
func New() *Index {
	return &Index{
		fields: make(map[string]*fieldPostings),
		byID:   make(map[string]int),
		k1:     1.2,
		b:      0.75,
	}
}

// SetRanker switches the scoring function. Safe to call at any time;
// it affects subsequent searches only.
func (ix *Index) SetRanker(r Ranker) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.ranker = r
}

// SetFieldOptions configures analysis and boost for a field. It must
// be called before documents containing the field are added; changing
// analyzers after indexing would desynchronize query analysis.
func (ix *Index) SetFieldOptions(field string, opts FieldOptions) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	fp := ix.fieldFor(field)
	fp.opts = opts
}

func (ix *Index) fieldFor(field string) *fieldPostings {
	fp, ok := ix.fields[field]
	if !ok {
		fp = &fieldPostings{
			terms:  make(map[string][]posting),
			docLen: make(map[int]int),
		}
		ix.fields[field] = fp
	}
	return fp
}

// Add indexes doc, replacing any existing document with the same ID.
func (ix *Index) Add(doc Document) error {
	if doc.ID == "" {
		return fmt.Errorf("index: document has empty ID")
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ord, ok := ix.byID[doc.ID]; ok {
		ix.deleteOrdLocked(ord)
	}
	ord := len(ix.docs)
	ix.docs = append(ix.docs, doc)
	ix.byID[doc.ID] = ord
	ix.live++
	for field, text := range doc.Fields {
		fp := ix.fieldFor(field)
		an := fp.opts.Analyzer
		toks := an.Analyze(text)
		fp.docLen[ord] = len(toks)
		fp.totalLen += len(toks)
		perTerm := make(map[string][]int)
		for _, t := range toks {
			perTerm[t.Term] = append(perTerm[t.Term], t.Position)
		}
		for term, positions := range perTerm {
			fp.terms[term] = append(fp.terms[term], posting{doc: ord, positions: positions})
		}
	}
	return nil
}

// AddBatch indexes docs, stopping at the first error.
func (ix *Index) AddBatch(docs []Document) error {
	for _, d := range docs {
		if err := ix.Add(d); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes the document with the given ID. It reports whether a
// document was removed.
func (ix *Index) Delete(id string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ord, ok := ix.byID[id]
	if !ok {
		return false
	}
	ix.deleteOrdLocked(ord)
	return true
}

// deleteOrdLocked tombstones a document ordinal. Postings are lazily
// skipped at query time (posting lists may still reference the
// ordinal) and fully dropped at Compact.
func (ix *Index) deleteOrdLocked(ord int) {
	doc := ix.docs[ord]
	if doc.ID == "" {
		return
	}
	delete(ix.byID, doc.ID)
	for field := range doc.Fields {
		fp := ix.fields[field]
		if fp == nil {
			continue
		}
		fp.totalLen -= fp.docLen[ord]
		delete(fp.docLen, ord)
	}
	ix.docs[ord] = Document{}
	ix.live--
}

// Compact rebuilds posting lists without tombstoned entries. Call it
// after bulk deletions; queries work correctly either way.
func (ix *Index) Compact() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, fp := range ix.fields {
		for term, list := range fp.terms {
			kept := list[:0]
			for _, p := range list {
				if ix.docs[p.doc].ID != "" {
					kept = append(kept, p)
				}
			}
			if len(kept) == 0 {
				delete(fp.terms, term)
			} else {
				fp.terms[term] = kept
			}
		}
	}
}

// Len returns the number of live documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.live
}

// Get returns the stored document for id.
func (ix *Index) Get(id string) (Document, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ord, ok := ix.byID[id]
	if !ok {
		return Document{}, false
	}
	return ix.docs[ord], true
}

// Fields returns the names of all indexed fields, sorted.
func (ix *Index) Fields() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.fields))
	for f := range ix.fields {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// DocFreq returns how many live documents contain term in field after
// analysis with the field's analyzer.
func (ix *Index) DocFreq(field, term string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	fp := ix.fields[field]
	if fp == nil {
		return 0
	}
	terms := fp.opts.Analyzer.AnalyzeTerms(term)
	if len(terms) == 0 {
		return 0
	}
	n := 0
	for _, p := range fp.terms[terms[0]] {
		if ix.docs[p.doc].ID != "" {
			n++
		}
	}
	return n
}
