// Package index implements the in-memory inverted index that backs
// every searchable source in the Symphony reproduction: the synthetic
// web engine's verticals and each designer's proprietary data store.
//
// It supports multi-field documents, BM25 ranking with per-field
// boosts, term / and / or / phrase / prefix queries, exact filters on
// keyword fields, deletions, and snippet generation.
//
// Concurrency model: the index is split into N shards (default
// GOMAXPROCS, configurable via WithShards). Each shard owns its own
// RWMutex, postings maps, doc table and ordinal space; documents route
// to shards by an FNV-1a hash of their ID. Queries fan out across
// shards in parallel and merge ranked partials, so readers contend on
// N locks instead of one and writers block only 1/N of the corpus —
// matching the paper's read-heavy hosted execution model where the
// platform index is the shared hot path for every published app.
//
// The shard set itself is a live property: every operation routes
// through an immutable ring descriptor held behind an atomic pointer,
// and Reshard (reshard.go) rebuilds the ring toward a new shard count
// copy-on-write while readers keep using the old one. Restore decodes
// a snapshot into the layout it was written with and then reshards to
// the configured count, so durability layout no longer pins runtime
// parallelism.
//
// BM25 stays globally correct: corpus statistics (live doc count,
// per-field total lengths, document frequencies) are aggregated across
// shards before evaluation, so scores are bit-identical for any shard
// count.
package index

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/textproc"
)

// Document is the unit of indexing. Fields holds the analyzed,
// searchable text per field; Stored holds values returned verbatim
// with results (display fields, URLs, prices).
type Document struct {
	ID     string
	Fields map[string]string
	Stored map[string]string
}

// FieldOptions controls how a field is analyzed and scored.
type FieldOptions struct {
	// Analyzer used at index and query time. Nil means the default
	// free-text analyzer.
	Analyzer *textproc.Analyzer
	// Boost multiplies the field's BM25 contribution. Zero means 1.
	Boost float64
}

// Ranker selects the scoring function.
type Ranker int

// Rankers: BM25 (default) and classic TF-IDF, kept for the ablation
// in DESIGN.md §5.
const (
	RankerBM25 Ranker = iota
	RankerTFIDF
)

// Option configures an Index at construction time.
type Option func(*indexConfig)

type indexConfig struct {
	shards      int
	autoCompact float64
}

// WithShards sets the number of shards. Values below 1 are ignored.
// WithShards(1) reproduces the pre-sharding single-lock behaviour,
// including exact result ordering and scores.
func WithShards(n int) Option {
	return func(c *indexConfig) {
		if n > 0 {
			c.shards = n
		}
	}
}

// WithAutoCompact makes each shard compact itself when its tombstone
// ratio — tombstoned ordinals over (tombstoned + live) — reaches
// ratio after a deletion. Compaction is per shard, so a delete-heavy
// shard reclaims its postings without stalling the other shards'
// readers. Ratios outside (0, 1] disable auto-compaction (the
// default): callers then invoke Compact explicitly.
func WithAutoCompact(ratio float64) Option {
	return func(c *indexConfig) {
		if ratio > 0 && ratio <= 1 {
			c.autoCompact = ratio
		}
	}
}

// ring is one immutable generation of the shard layout. All routing
// (shardFor), fan-out and statistics aggregation for a single
// operation read one ring, loaded once from the index's atomic
// pointer, so an operation can never see half of an old layout and
// half of a new one. Reshard builds a fresh ring and swaps the
// pointer; rings are never mutated after publication (shard *contents*
// keep their own locks — the ring only fixes which shards exist).
type ring struct {
	// gen increments on every layout change (Reshard, Restore). It is
	// the natural invalidation stamp for caches keyed to a layout.
	gen    uint64
	shards []*shard
}

// shardFor routes a document ID to its owning shard in this ring.
func (r *ring) shardFor(id string) *shard {
	return r.shards[r.shardIndexFor(id)]
}

// shardIndexFor routes a document ID to its owning shard's index,
// for callers grouping documents per shard before applying.
func (r *ring) shardIndexFor(id string) int {
	if len(r.shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(r.shards)))
}

// Index is a thread-safe sharded inverted index.
type Index struct {
	// ring is the current shard layout. Readers load it once per
	// operation and never block on layout changes.
	ring atomic.Pointer[ring]
	// target is the configured shard count (WithShards, defaulting to
	// GOMAXPROCS). Restore honors it by resharding after decoding a
	// snapshot written under a different layout; Reshard updates it.
	// Written only under reshardMu.
	target int
	// autoCompact is the per-shard tombstone ratio that triggers
	// compaction after a delete; 0 disables. Immutable after New.
	autoCompact float64

	// wgate orders writers against ring swaps: Add, Delete and
	// SetFieldOptions hold it shared for the whole route-and-apply,
	// and Reshard's commit holds it exclusively while it replays the
	// write journal and swaps the ring. Readers never touch it, so
	// queries stay non-blocking through a migration. The shared
	// acquisition is a deliberate tax on writers: it is a handful of
	// atomic ops against the text analysis and shard-map work every
	// write already does, and it keeps the lost-write argument a
	// two-line invariant (no writer is mid-apply at swap time) rather
	// than a route-revalidation retry loop.
	wgate sync.RWMutex
	// reshardMu serializes Reshard calls (one migration at a time).
	reshardMu sync.Mutex

	// earlyExitOff disables the block-max top-k evaluator (wand.go),
	// forcing every search through the exhaustive accumulator path.
	// For equivalence tests and A/B benchmarks; results are identical
	// either way.
	earlyExitOff atomic.Bool
	// scanScored / scanSkipped count postings decoded vs. jumped
	// without decoding by the block-max evaluator, across all
	// searches — operator-visible proof that early exit is live.
	scanScored  atomic.Uint64
	scanSkipped atomic.Uint64
	// wandDenseForce disables the dense-disjunction fallback in
	// searchTopK, sending every streamable top-k through the
	// block-max evaluator even when no skipping is possible. Only
	// equivalence tests set it: small fixtures are always "dense".
	wandDenseForce atomic.Bool
	// mig, when non-nil, is the active migration. Writers load it
	// under their shard's write lock and journal every applied op so
	// the commit replay cannot lose a write. See reshard.go.
	mig atomic.Pointer[migration]

	// ver counts completed mutations (adds, deletes, compactions,
	// configuration changes). Together with the ring generation it
	// forms the Stamp that validates entries in the attached
	// cross-request cache: mutations bump it after they apply, so
	// anything cached against the old value is never served to a
	// reader that starts after the mutation.
	ver atomic.Uint64
	// cache, when non-nil, is the shared cross-request cache plus this
	// index's key namespace. See AttachCache in cache.go.
	cache atomic.Pointer[cacheRef]

	// an memoizes query-text analysis and the sorted field list across
	// requests, swapped out wholesale whenever the field registry (and
	// with it an analyzer) changes. Populated lazily; see analysisMemo.
	an atomic.Pointer[analysisMemo]

	// Mapped-vs-heap residency counters (mapped.go): bytes still
	// served from attached v3 payloads, and what copy-on-write has
	// materialized onto the heap so far.
	mmMappedBytes atomic.Int64
	mmMatTerms    atomic.Int64
	mmMatBytes    atomic.Int64
	mmMatDocTabs  atomic.Int64
	mmLazyErrs    atomic.Int64

	// cfg guards global, shard-independent state: the scoring
	// configuration and the registry of known fields with their
	// analysis options.
	cfg struct {
		sync.RWMutex
		ranker Ranker
		k1, b  float64
		fields map[string]FieldOptions
	}
}

// New returns an empty index with standard BM25 parameters
// (k1=1.2, b=0.75) and one shard per available CPU.
func New(opts ...Option) *Index {
	c := indexConfig{shards: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&c)
	}
	if c.shards < 1 {
		c.shards = 1
	}
	ix := &Index{target: c.shards, autoCompact: c.autoCompact}
	ix.cfg.k1 = 1.2
	ix.cfg.b = 0.75
	ix.cfg.fields = make(map[string]FieldOptions)
	shards := make([]*shard, c.shards)
	for i := range shards {
		shards[i] = newShard(ix)
	}
	ix.ring.Store(&ring{gen: 1, shards: shards})
	return ix
}

// NumShards reports how many shards the index currently has. Unlike
// the original construction-time property, this is live: Reshard and
// Restore change it.
func (ix *Index) NumShards() int { return len(ix.ring.Load().shards) }

// RingGen reports the current ring generation. It increments on every
// layout change (Reshard, Restore), so it serves as an invalidation
// stamp for layout-scoped caches and as operator-visible evidence
// that a reshard completed.
func (ix *Index) RingGen() uint64 { return ix.ring.Load().gen }

// SetEarlyExit toggles the block-max early-exit evaluator (on by
// default). Rankings are bit-identical either way; disabling it is
// only useful for equivalence testing and A/B benchmarking.
func (ix *Index) SetEarlyExit(on bool) { ix.earlyExitOff.Store(!on) }

// BlockScanStats reports cumulative posting-block activity of the
// block-max evaluator: blocks entered for decoding and whole blocks
// skipped without decoding. A zero Skipped on a corpus larger than a
// few blocks means early exit is not engaging.
type BlockScanStats struct {
	Scored  uint64 `json:"scored"`
	Skipped uint64 `json:"skipped"`
}

// ScanStats returns the index's cumulative block scan counters.
func (ix *Index) ScanStats() BlockScanStats {
	return BlockScanStats{Scored: ix.scanScored.Load(), Skipped: ix.scanSkipped.Load()}
}

// SetRanker switches the scoring function. Safe to call at any time;
// it affects subsequent searches only.
func (ix *Index) SetRanker(r Ranker) {
	ix.cfg.Lock()
	ix.cfg.ranker = r
	ix.cfg.Unlock()
	ix.bumpVer()
}

// SetFieldOptions configures analysis and boost for a field. It must
// be called before documents containing the field are added; changing
// analyzers after indexing would desynchronize query analysis.
//
// It holds the write gate shared so a concurrent Reshard cannot swap
// the ring mid-update: the registry write below is re-applied to the
// staging shards at commit, so options land on whichever ring wins.
func (ix *Index) SetFieldOptions(field string, opts FieldOptions) {
	ix.wgate.RLock()
	defer ix.wgate.RUnlock()
	ix.cfg.Lock()
	ix.cfg.fields[field] = opts
	ix.cfg.Unlock()
	ix.invalidateAnalysis()
	for _, s := range ix.ring.Load().shards {
		s.setFieldOptions(field, opts)
	}
	ix.bumpVer()
}

// analysisMemo is the cross-request analysis cache: analyzed terms
// keyed by (field, raw text), plus the sorted field list. Query text
// repeats heavily across requests — the whole memo exists so the warm
// query path re-analyzes nothing and allocates nothing for analysis.
// Invalidation is wholesale: any registry write (new field, changed
// analyzer, restore) drops the memo pointer and the next query starts
// a fresh one. In-flight queries may finish against the old memo,
// which matches the existing snapshot semantics (they captured their
// field options before the write anyway).
type analysisMemo struct {
	mu     sync.RWMutex
	terms  map[fieldTerm][]string
	fields []string // sorted registry snapshot; nil until first use
}

// analysisMemoCap bounds the memo so adversarial query vocabularies
// cannot grow it without bound; at the cap, misses just skip storing.
const analysisMemoCap = 4096

func (ix *Index) analysisMemoRef() *analysisMemo {
	if m := ix.an.Load(); m != nil {
		return m
	}
	m := &analysisMemo{terms: make(map[fieldTerm][]string)}
	if ix.an.CompareAndSwap(nil, m) {
		return m
	}
	return ix.an.Load()
}

// invalidateAnalysis drops the analysis memo; callers are the registry
// write sites (SetFieldOptions, ensureField on a new field, restore).
func (ix *Index) invalidateAnalysis() { ix.an.Store(nil) }

// fieldsCached is Fields through the analysis memo: one registry scan
// and sort per registry change instead of per query. The returned
// slice is shared — callers must not mutate it.
func (ix *Index) fieldsCached() []string {
	if scratchOff.Load() {
		// The A/B baseline: with request pooling off, analysis caching is
		// off too, so the legacy stage measures true per-query cost.
		return ix.Fields()
	}
	m := ix.analysisMemoRef()
	m.mu.RLock()
	f := m.fields
	m.mu.RUnlock()
	if f != nil {
		return f
	}
	f = ix.Fields()
	m.mu.Lock()
	if m.fields == nil {
		m.fields = f
	} else {
		f = m.fields
	}
	m.mu.Unlock()
	return f
}

// analyzedTermsCached returns opts.Analyzer.AnalyzeTerms(raw) through
// the cross-request memo. Returned slices are shared and immutable.
func (ix *Index) analyzedTermsCached(opts FieldOptions, field, raw string) []string {
	if scratchOff.Load() {
		return opts.Analyzer.AnalyzeTerms(raw)
	}
	m := ix.analysisMemoRef()
	key := fieldTerm{field, raw}
	m.mu.RLock()
	terms, ok := m.terms[key]
	m.mu.RUnlock()
	if ok {
		return terms
	}
	terms = opts.Analyzer.AnalyzeTerms(raw)
	m.mu.Lock()
	if len(m.terms) < analysisMemoCap {
		m.terms[key] = terms
	}
	m.mu.Unlock()
	return terms
}

// fieldOpts returns the registered options for field and whether the
// field is known to the index.
func (ix *Index) fieldOpts(field string) (FieldOptions, bool) {
	ix.cfg.RLock()
	defer ix.cfg.RUnlock()
	opts, ok := ix.cfg.fields[field]
	return opts, ok
}

// ensureField registers a field name with default options if it has
// not been seen before.
func (ix *Index) ensureField(field string) {
	ix.cfg.RLock()
	_, ok := ix.cfg.fields[field]
	ix.cfg.RUnlock()
	if ok {
		return
	}
	ix.cfg.Lock()
	if _, ok := ix.cfg.fields[field]; !ok {
		ix.cfg.fields[field] = FieldOptions{}
	}
	ix.cfg.Unlock()
	ix.invalidateAnalysis()
}

// scoringParams snapshots the ranker configuration for one search.
func (ix *Index) scoringParams() (Ranker, float64, float64) {
	ix.cfg.RLock()
	defer ix.cfg.RUnlock()
	return ix.cfg.ranker, ix.cfg.k1, ix.cfg.b
}

// Add indexes doc, replacing any existing document with the same ID.
// Text analysis — the expensive part of indexing — runs before the
// shard write lock is taken, so concurrent readers are only blocked
// for the map updates themselves. The write gate (held shared) orders
// the routing decision against ring swaps: a write routed on the old
// ring is journaled by the shard (see shard.add) and replayed into
// the new ring before the swap, so no document is lost to a reshard.
func (ix *Index) Add(doc Document) error {
	if doc.ID == "" {
		return fmt.Errorf("index: document has empty ID")
	}
	analyzed := make(map[string][]textproc.Token, len(doc.Fields))
	for field, text := range doc.Fields {
		ix.ensureField(field)
		opts, _ := ix.fieldOpts(field)
		analyzed[field] = opts.Analyzer.Analyze(text)
	}
	ix.wgate.RLock()
	ix.ring.Load().shardFor(doc.ID).add(doc, analyzed)
	ix.wgate.RUnlock()
	ix.bumpVer()
	return nil
}

// AddBatch indexes docs with the batched write path and no deadline.
func (ix *Index) AddBatch(docs []Document) error {
	return ix.AddBatchContext(context.Background(), docs)
}

// AddBatchContext indexes docs as one batch: text analysis — the
// dominant indexing cost — runs in a worker pool, documents are
// grouped by owning shard, and each shard group is applied under ONE
// write-lock acquisition (in parallel across shards) instead of one
// per document. The result is bit-identical to sequential Adds of
// the same slice: within a shard, documents apply in slice order, so
// duplicate IDs resolve last-write-wins exactly like the loop would.
//
// Cancellation is honored during validation and analysis, before
// anything is applied; once application starts the whole batch lands
// and the call returns nil. Callers therefore never see a
// half-applied batch on ctx cancellation.
func (ix *Index) AddBatchContext(ctx context.Context, docs []Document) error {
	if len(docs) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := range docs {
		if docs[i].ID == "" {
			return fmt.Errorf("index: document %d has empty ID", i)
		}
	}
	// Register fields serially first (cheap, contended map) so the
	// analysis workers only take read locks.
	for i := range docs {
		for field := range docs[i].Fields {
			ix.ensureField(field)
		}
	}
	analyzed := make([]map[string][]textproc.Token, len(docs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers <= 1 {
		for i := range docs {
			if i%64 == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			analyzed[i] = ix.analyzeDoc(&docs[i])
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					analyzed[i] = ix.analyzeDoc(&docs[i])
				}
			}()
		}
		dispatched := len(docs)
		for i := range docs {
			if ctx.Err() != nil {
				dispatched = i
				break
			}
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		if dispatched < len(docs) {
			return ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Apply: group by shard under the write gate (held shared, like
	// Add) so the routing ring cannot swap mid-batch; each group is
	// one lock acquisition on its shard, groups run in parallel.
	ix.wgate.RLock()
	r := ix.ring.Load()
	groups := make([][]int, len(r.shards))
	for i := range docs {
		si := r.shardIndexFor(docs[i].ID)
		groups[si] = append(groups[si], i)
	}
	var wg sync.WaitGroup
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s *shard, idxs []int) {
			defer wg.Done()
			s.addBatch(docs, analyzed, idxs)
		}(r.shards[si], idxs)
	}
	wg.Wait()
	ix.wgate.RUnlock()
	ix.bumpVer()
	return nil
}

// analyzeDoc runs each field of doc through its analyzer.
func (ix *Index) analyzeDoc(doc *Document) map[string][]textproc.Token {
	analyzed := make(map[string][]textproc.Token, len(doc.Fields))
	for field, text := range doc.Fields {
		opts, _ := ix.fieldOpts(field)
		analyzed[field] = opts.Analyzer.Analyze(text)
	}
	return analyzed
}

// Delete removes the document with the given ID. It reports whether a
// document was removed. Like Add, it holds the write gate shared so
// the delete is journaled and replayed across an in-flight reshard.
func (ix *Index) Delete(id string) bool {
	ix.wgate.RLock()
	deleted := ix.ring.Load().shardFor(id).delete(id)
	ix.wgate.RUnlock()
	if deleted {
		ix.bumpVer()
	}
	return deleted
}

// Compact rebuilds posting lists without tombstoned entries. Call it
// after bulk deletions; queries work correctly either way. Indexes
// built with WithAutoCompact schedule this per shard automatically.
func (ix *Index) Compact() {
	r := ix.ring.Load()
	eachShard(r, func(_ int, s *shard) { s.compact() })
	ix.bumpVer()
}

// TombstoneRatio reports the fraction of uncompacted tombstoned
// ordinals across the whole index: dead/(dead+live), 0 when empty.
// Operators (and WithAutoCompact) use it to decide when compaction
// is worth the write locks.
func (ix *Index) TombstoneRatio() float64 {
	dead, live := 0, 0
	for _, s := range ix.ring.Load().shards {
		s.mu.RLock()
		dead += s.dead
		live += s.live
		s.mu.RUnlock()
	}
	if dead == 0 {
		return 0
	}
	return float64(dead) / float64(dead+live)
}

// ShardTombstoneRatios reports each shard's tombstone ratio, for
// observability of skewed deletion patterns.
func (ix *Index) ShardTombstoneRatios() []float64 {
	shards := ix.ring.Load().shards
	out := make([]float64, len(shards))
	for i, s := range shards {
		out[i] = s.tombstoneRatio()
	}
	return out
}

// Len returns the number of live documents.
func (ix *Index) Len() int {
	n := 0
	for _, s := range ix.ring.Load().shards {
		n += s.lenLive()
	}
	return n
}

// Get returns the stored document for id.
func (ix *Index) Get(id string) (Document, bool) {
	return ix.ring.Load().shardFor(id).get(id)
}

// Fields returns the names of all indexed fields, sorted.
func (ix *Index) Fields() []string {
	ix.cfg.RLock()
	defer ix.cfg.RUnlock()
	out := make([]string, 0, len(ix.cfg.fields))
	for f := range ix.cfg.fields {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// DocFreq returns how many live documents contain term in field after
// analysis with the field's analyzer.
func (ix *Index) DocFreq(field, term string) int {
	opts, ok := ix.fieldOpts(field)
	if !ok {
		return 0
	}
	terms := opts.Analyzer.AnalyzeTerms(term)
	if len(terms) == 0 {
		return 0
	}
	r := ix.ring.Load()
	dfs := make([]int, len(r.shards))
	eachShard(r, func(i int, s *shard) { dfs[i] = s.docFreq(field, terms[0]) })
	n := 0
	for _, df := range dfs {
		n += df
	}
	return n
}
