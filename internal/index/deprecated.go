package index

// Legacy non-context entrypoints, kept for one release while callers
// migrate to the ctx-first API. Each delegates with a background
// context, which can never be cancelled, so the error return of the
// canonical method is statically nil and safely dropped here. This
// file doubles as the allowlist for the CI context-gate: every
// exported method in this package that lacks a context.Context first
// parameter must live here.

import "context"

// Search evaluates q without cancellation.
//
// Deprecated: use SearchContext.
func (ix *Index) Search(q Query, opts SearchOptions) []Result {
	res, _ := ix.SearchContext(context.Background(), q, opts)
	return res
}

// Count counts q's matches without cancellation.
//
// Deprecated: use CountContext.
func (ix *Index) Count(q Query, filters map[string]string) int {
	n, _ := ix.CountContext(context.Background(), q, filters)
	return n
}

// Facets counts facet values without cancellation.
//
// Deprecated: use FacetsContext.
func (ix *Index) Facets(q Query, field string, filters map[string]string) []FacetCount {
	fc, _ := ix.FacetsContext(context.Background(), q, field, filters)
	return fc
}

// Reshard migrates to n shards without cancellation.
//
// Deprecated: use ReshardContext.
func (ix *Index) Reshard(n int) error {
	return ix.ReshardContext(context.Background(), n)
}

// Search is Session.SearchContext without cancellation.
//
// Deprecated: use Session.SearchContext.
func (sess *Session) Search(q Query, opts SearchOptions) []Result {
	res, _ := sess.SearchContext(context.Background(), q, opts)
	return res
}

// Count is Session.CountContext without cancellation.
//
// Deprecated: use Session.CountContext.
func (sess *Session) Count(q Query, filters map[string]string) int {
	n, _ := sess.CountContext(context.Background(), q, filters)
	return n
}

// Facets is Session.FacetsContext without cancellation.
//
// Deprecated: use Session.FacetsContext.
func (sess *Session) Facets(q Query, field string, filters map[string]string) []FacetCount {
	fc, _ := sess.FacetsContext(context.Background(), q, field, filters)
	return fc
}
