package index

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/frameio"
)

// persistCorpus builds a multi-shard index with deletions, so
// snapshots carry tombstones and replaced documents.
func persistCorpus(t testing.TB, opts ...Option) *Index {
	t.Helper()
	ix := shardCorpus(t, opts...)
	for i := 0; i < 60; i += 5 {
		if !ix.Delete(fmt.Sprintf("doc%02d", i)) {
			t.Fatalf("delete doc%02d failed", i)
		}
	}
	// Replace a few documents so ordinal reuse and stale postings are
	// in the snapshot too.
	for i := 1; i < 10; i += 4 {
		ix.Add(Document{
			ID:     fmt.Sprintf("doc%02d", i),
			Fields: map[string]string{"title": fmt.Sprintf("Replaced %d", i), "body": "replacement zelda content"},
			Stored: map[string]string{"producer": "Replaced"},
		})
	}
	return ix
}

// TestSnapshotRestoreEquivalence pins the core durability guarantee:
// a restored index returns IDs, scores and rankings bit-identical to
// a freshly built index over the same live documents, for every query
// type, plus identical facets, counts, doc frequencies and spell
// suggestions.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	fresh := persistCorpus(t, WithShards(4))
	var buf bytes.Buffer
	if err := fresh.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into indexes built with different shard counts: the
	// snapshot's layout is decoded and then resharded to the
	// configured count, and scores stay identical because BM25
	// statistics aggregate globally.
	for _, n := range []int{1, 4, 8} {
		restored := New(WithShards(n))
		restored.SetFieldOptions("title", FieldOptions{Boost: 2})
		if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("restore into %d-shard index: %v", n, err)
		}
		if restored.NumShards() != n {
			t.Fatalf("restored shards = %d, want configured %d", restored.NumShards(), n)
		}
		if restored.Len() != fresh.Len() {
			t.Fatalf("restored Len = %d, want %d", restored.Len(), fresh.Len())
		}
		for name, q := range shardQueries() {
			want := fresh.Search(q, SearchOptions{})
			got := restored.Search(q, SearchOptions{})
			if len(want) != len(got) {
				t.Fatalf("%s: %d hits, want %d", name, len(got), len(want))
			}
			for i := range want {
				if want[i].ID != got[i].ID || want[i].Score != got[i].Score {
					t.Fatalf("%s hit %d: got %s@%v, want %s@%v",
						name, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
				}
			}
			if wc, gc := fresh.Count(q, nil), restored.Count(q, nil); wc != gc {
				t.Fatalf("%s: Count %d, want %d", name, gc, wc)
			}
		}
		wantFacets := fresh.Facets(MatchQuery{Text: "zelda"}, "producer", nil)
		gotFacets := restored.Facets(MatchQuery{Text: "zelda"}, "producer", nil)
		if fmt.Sprint(wantFacets) != fmt.Sprint(gotFacets) {
			t.Fatalf("facets = %v, want %v", gotFacets, wantFacets)
		}
		if wd, gd := fresh.DocFreq("body", "zelda"), restored.DocFreq("body", "zelda"); wd != gd {
			t.Fatalf("DocFreq = %d, want %d", gd, wd)
		}
		if ws, gs := fresh.SuggestTerms("body", "zeldo", 3), restored.SuggestTerms("body", "zeldo", 3); fmt.Sprint(ws) != fmt.Sprint(gs) {
			t.Fatalf("SuggestTerms = %v, want %v", gs, ws)
		}
	}
}

// TestSnapshotEquivalentToRebuild: restoring must also be equivalent
// to building a brand-new index from only the live documents — the
// tombstones a snapshot carries must not influence scoring.
func TestSnapshotEquivalentToRebuild(t *testing.T) {
	withTombstones := persistCorpus(t, WithShards(4))
	var buf bytes.Buffer
	if err := withTombstones.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	rebuilt := New(WithShards(4))
	rebuilt.SetFieldOptions("title", FieldOptions{Boost: 2})
	for i := 0; i < 60; i++ {
		doc, ok := withTombstones.Get(fmt.Sprintf("doc%02d", i))
		if !ok {
			continue
		}
		if err := rebuilt.Add(doc); err != nil {
			t.Fatal(err)
		}
	}
	for name, q := range shardQueries() {
		want := rebuilt.Search(q, SearchOptions{})
		got := restored.Search(q, SearchOptions{})
		if len(want) != len(got) {
			t.Fatalf("%s: %d hits, want %d", name, len(got), len(want))
		}
		for i := range want {
			if want[i].ID != got[i].ID || want[i].Score != got[i].Score {
				t.Fatalf("%s hit %d: restored %s@%v, rebuilt %s@%v",
					name, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
	}
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	ix := persistCorpus(t, WithShards(4))
	var a, b bytes.Buffer
	if err := ix.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := ix.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshots of identical index differ byte-for-byte")
	}
}

func TestShardSnapshotRoundTrip(t *testing.T) {
	ix := persistCorpus(t, WithShards(3))
	other := New(WithShards(3))
	other.SetFieldOptions("title", FieldOptions{Boost: 2})
	for i := range 3 {
		var buf bytes.Buffer
		if err := ix.SnapshotShard(i, &buf); err != nil {
			t.Fatal(err)
		}
		if err := other.RestoreShard(i, &buf); err != nil {
			t.Fatal(err)
		}
	}
	if other.Len() != ix.Len() {
		t.Fatalf("Len = %d, want %d", other.Len(), ix.Len())
	}
	want := ix.Search(MatchQuery{Text: "zelda"}, SearchOptions{})
	got := other.Search(MatchQuery{Text: "zelda"}, SearchOptions{})
	if fmt.Sprint(ids(want)) != fmt.Sprint(ids(got)) {
		t.Fatalf("per-shard restore = %v, want %v", ids(got), ids(want))
	}
	if err := ix.SnapshotShard(7, &bytes.Buffer{}); err == nil {
		t.Fatal("out-of-range shard snapshot accepted")
	}
	if err := other.RestoreShard(-1, strings.NewReader("{}")); err == nil {
		t.Fatal("out-of-range shard restore accepted")
	}
}

// TestRestoreRejectsCorruptLeavesIndexIntact: corrupt streams fail
// cleanly and leave the target untouched.
func TestRestoreRejectsCorrupt(t *testing.T) {
	ix := persistCorpus(t, WithShards(2))
	var good bytes.Buffer
	if err := ix.Snapshot(&good); err != nil {
		t.Fatal(err)
	}
	target := sampleIndex(t)
	wantLen := target.Len()

	cases := map[string][]byte{
		"garbage":       []byte("not a snapshot at all"),
		"empty":         {},
		"magic-only":    []byte("SYMIDX1\n"),
		"truncated-25%": good.Bytes()[:good.Len()/4],
		"truncated-90%": good.Bytes()[:good.Len()*9/10],
		"bit-flipped":   append(append([]byte(nil), good.Bytes()[:good.Len()/2]...), append([]byte{0xFF}, good.Bytes()[good.Len()/2+1:]...)...),
		"trailing-junk": append(append([]byte(nil), good.Bytes()...), 0, 0, 0, 0, 0, 0, 0, 5, 'h', 'e', 'l', 'l', 'o'),
	}
	// A CRC-valid header claiming an absurd shard count must fail
	// cleanly instead of sizing allocations and goroutine fan-out.
	var huge bytes.Buffer
	if err := frameio.WriteMagic(&huge, "SYMIDX1\n"); err != nil {
		t.Fatal(err)
	}
	if err := frameio.WriteFrame(&huge, []byte(`{"version":1,"shards":1099511627776,"k1":1.2,"b":0.75}`)); err != nil {
		t.Fatal(err)
	}
	cases["huge-shard-count"] = huge.Bytes()

	for name, data := range cases {
		if err := target.Restore(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
		if target.Len() != wantLen {
			t.Fatalf("%s: failed restore mutated index: Len = %d, want %d", name, target.Len(), wantLen)
		}
		if got := target.Search(MatchQuery{Text: "zelda"}, SearchOptions{}); len(got) == 0 {
			t.Fatalf("%s: failed restore broke target search", name)
		}
	}
}

func TestRestorePreservesAnalyzersAndRanker(t *testing.T) {
	ix := New(WithShards(2))
	ix.SetRanker(RankerTFIDF)
	ix.SetFieldOptions("title", FieldOptions{Boost: 3})
	if err := ix.Add(Document{ID: "a", Fields: map[string]string{"title": "zelda adventure"}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	ranker, k1, b := restored.scoringParams()
	if ranker != RankerTFIDF || k1 != 1.2 || b != 0.75 {
		t.Fatalf("scoring params = %v %v %v", ranker, k1, b)
	}
	opts, ok := restored.fieldOpts("title")
	if !ok || opts.Boost != 3 {
		t.Fatalf("title opts = %+v, %v", opts, ok)
	}
}

// TestRestoredIndexIsWritable: the restored structures must accept
// further writes, deletes and compaction like a fresh index.
func TestRestoredIndexIsWritable(t *testing.T) {
	ix := persistCorpus(t, WithShards(4))
	var buf bytes.Buffer
	if err := ix.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	before := restored.Len()
	if err := restored.Add(Document{ID: "new1", Fields: map[string]string{"body": "brand new zelda sequel"}}); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != before+1 {
		t.Fatalf("Len after add = %d, want %d", restored.Len(), before+1)
	}
	got := restored.Search(TermQuery{Field: "body", Term: "sequel"}, SearchOptions{})
	if len(got) != 1 || got[0].ID != "new1" {
		t.Fatalf("search for new doc = %v", ids(got))
	}
	if !restored.Delete("new1") {
		t.Fatal("delete after restore failed")
	}
	restored.Compact()
	if restored.TombstoneRatio() != 0 {
		t.Fatalf("ratio after compact = %v", restored.TombstoneRatio())
	}
}
