package index

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/frameio"
)

// persistCorpus builds a multi-shard index with deletions, so
// snapshots carry tombstones and replaced documents.
func persistCorpus(t testing.TB, opts ...Option) *Index {
	t.Helper()
	ix := shardCorpus(t, opts...)
	for i := 0; i < 60; i += 5 {
		if !ix.Delete(fmt.Sprintf("doc%02d", i)) {
			t.Fatalf("delete doc%02d failed", i)
		}
	}
	// Replace a few documents so ordinal reuse and stale postings are
	// in the snapshot too.
	for i := 1; i < 10; i += 4 {
		ix.Add(Document{
			ID:     fmt.Sprintf("doc%02d", i),
			Fields: map[string]string{"title": fmt.Sprintf("Replaced %d", i), "body": "replacement zelda content"},
			Stored: map[string]string{"producer": "Replaced"},
		})
	}
	return ix
}

// TestSnapshotRestoreEquivalence pins the core durability guarantee:
// a restored index returns IDs, scores and rankings bit-identical to
// a freshly built index over the same live documents, for every query
// type, plus identical facets, counts, doc frequencies and spell
// suggestions.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	fresh := persistCorpus(t, WithShards(4))
	var buf bytes.Buffer
	if err := fresh.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into indexes built with different shard counts: the
	// snapshot's layout is decoded and then resharded to the
	// configured count, and scores stay identical because BM25
	// statistics aggregate globally.
	for _, n := range []int{1, 4, 8} {
		restored := New(WithShards(n))
		restored.SetFieldOptions("title", FieldOptions{Boost: 2})
		if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("restore into %d-shard index: %v", n, err)
		}
		if restored.NumShards() != n {
			t.Fatalf("restored shards = %d, want configured %d", restored.NumShards(), n)
		}
		if restored.Len() != fresh.Len() {
			t.Fatalf("restored Len = %d, want %d", restored.Len(), fresh.Len())
		}
		for name, q := range shardQueries() {
			want := fresh.mustSearch(q, SearchOptions{})
			got := restored.mustSearch(q, SearchOptions{})
			if len(want) != len(got) {
				t.Fatalf("%s: %d hits, want %d", name, len(got), len(want))
			}
			for i := range want {
				if want[i].ID != got[i].ID || want[i].Score != got[i].Score {
					t.Fatalf("%s hit %d: got %s@%v, want %s@%v",
						name, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
				}
			}
			if wc, gc := fresh.mustCount(q, nil), restored.mustCount(q, nil); wc != gc {
				t.Fatalf("%s: Count %d, want %d", name, gc, wc)
			}
		}
		wantFacets := fresh.mustFacets(MatchQuery{Text: "zelda"}, "producer", nil)
		gotFacets := restored.mustFacets(MatchQuery{Text: "zelda"}, "producer", nil)
		if fmt.Sprint(wantFacets) != fmt.Sprint(gotFacets) {
			t.Fatalf("facets = %v, want %v", gotFacets, wantFacets)
		}
		if wd, gd := fresh.DocFreq("body", "zelda"), restored.DocFreq("body", "zelda"); wd != gd {
			t.Fatalf("DocFreq = %d, want %d", gd, wd)
		}
		if ws, gs := fresh.SuggestTerms("body", "zeldo", 3), restored.SuggestTerms("body", "zeldo", 3); fmt.Sprint(ws) != fmt.Sprint(gs) {
			t.Fatalf("SuggestTerms = %v, want %v", gs, ws)
		}
	}
}

// TestSnapshotEquivalentToRebuild: restoring must also be equivalent
// to building a brand-new index from only the live documents — the
// tombstones a snapshot carries must not influence scoring.
func TestSnapshotEquivalentToRebuild(t *testing.T) {
	withTombstones := persistCorpus(t, WithShards(4))
	var buf bytes.Buffer
	if err := withTombstones.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	rebuilt := New(WithShards(4))
	rebuilt.SetFieldOptions("title", FieldOptions{Boost: 2})
	for i := 0; i < 60; i++ {
		doc, ok := withTombstones.Get(fmt.Sprintf("doc%02d", i))
		if !ok {
			continue
		}
		if err := rebuilt.Add(doc); err != nil {
			t.Fatal(err)
		}
	}
	for name, q := range shardQueries() {
		want := rebuilt.mustSearch(q, SearchOptions{})
		got := restored.mustSearch(q, SearchOptions{})
		if len(want) != len(got) {
			t.Fatalf("%s: %d hits, want %d", name, len(got), len(want))
		}
		for i := range want {
			if want[i].ID != got[i].ID || want[i].Score != got[i].Score {
				t.Fatalf("%s hit %d: restored %s@%v, rebuilt %s@%v",
					name, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
	}
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	ix := persistCorpus(t, WithShards(4))
	var a, b bytes.Buffer
	if err := ix.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := ix.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshots of identical index differ byte-for-byte")
	}
}

func TestShardSnapshotRoundTrip(t *testing.T) {
	ix := persistCorpus(t, WithShards(3))
	other := New(WithShards(3))
	other.SetFieldOptions("title", FieldOptions{Boost: 2})
	for i := range 3 {
		var buf bytes.Buffer
		if err := ix.SnapshotShard(i, &buf); err != nil {
			t.Fatal(err)
		}
		if err := other.RestoreShard(i, &buf); err != nil {
			t.Fatal(err)
		}
	}
	if other.Len() != ix.Len() {
		t.Fatalf("Len = %d, want %d", other.Len(), ix.Len())
	}
	want := ix.mustSearch(MatchQuery{Text: "zelda"}, SearchOptions{})
	got := other.mustSearch(MatchQuery{Text: "zelda"}, SearchOptions{})
	if fmt.Sprint(ids(want)) != fmt.Sprint(ids(got)) {
		t.Fatalf("per-shard restore = %v, want %v", ids(got), ids(want))
	}
	if err := ix.SnapshotShard(7, &bytes.Buffer{}); err == nil {
		t.Fatal("out-of-range shard snapshot accepted")
	}
	if err := other.RestoreShard(-1, strings.NewReader("{}")); err == nil {
		t.Fatal("out-of-range shard restore accepted")
	}
}

// snapshotV1 encodes ix in the pre-block-max layout: header version 1
// and shard payloads without the per-term max tf field. It mirrors the
// v1 writer byte-for-byte so restore compatibility stays pinned even
// as the current writer evolves.
func snapshotV1(t *testing.T, ix *Index) []byte {
	t.Helper()
	r := ix.ring.Load()
	hdr := indexHeader{Version: 1, Shards: len(r.shards), Boosts: make(map[string]float64)}
	ix.cfg.RLock()
	hdr.Ranker = int(ix.cfg.ranker)
	hdr.K1, hdr.B = ix.cfg.k1, ix.cfg.b
	for f, opts := range ix.cfg.fields {
		hdr.Boosts[f] = opts.Boost
	}
	ix.cfg.RUnlock()
	var out bytes.Buffer
	if err := frameio.WriteMagic(&out, indexSnapshotMagic); err != nil {
		t.Fatal(err)
	}
	hdrBytes, err := json.Marshal(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := frameio.WriteFrame(&out, hdrBytes); err != nil {
		t.Fatal(err)
	}
	var positions []int
	for _, s := range r.shards {
		s.mu.RLock()
		bw := &binWriter{}
		bw.uvarint(len(s.docs))
		for _, doc := range s.docs {
			bw.str(doc.ID)
			if doc.ID == "" {
				continue
			}
			bw.strmap(doc.Fields)
			bw.strmap(doc.Stored)
		}
		bw.uvarint(s.live)
		bw.uvarint(s.dead)
		names := make([]string, 0, len(s.fields))
		for name := range s.fields {
			names = append(names, name)
		}
		sort.Strings(names)
		bw.uvarint(len(names))
		for _, name := range names {
			fp := s.fields[name]
			bw.str(name)
			bw.uvarint(fp.totalLen)
			ords := make([]int, 0, fp.docCount)
			for ord := range s.docs {
				if s.docs[ord].ID == "" {
					continue
				}
				if _, ok := s.docs[ord].Fields[name]; ok {
					ords = append(ords, ord)
				}
			}
			bw.uvarint(len(ords))
			for _, ord := range ords {
				bw.uvarint(ord)
				bw.uvarint(fp.lenAt(ord))
			}
			terms := fp.sortedTerms()
			bw.uvarint(len(terms))
			for _, term := range terms {
				list := fp.terms[term]
				bw.str(term)
				bw.uvarint(list.n)
				it := list.iter()
				pi := list.positions()
				for it.next() {
					bw.uvarint(it.doc)
					bw.uvarint(it.tf)
					positions = pi.read(it.tf, positions)
					for _, pos := range positions {
						bw.uvarint(pos)
					}
				}
			}
		}
		s.mu.RUnlock()
		if err := frameio.WriteFrame(&out, bw.buf); err != nil {
			t.Fatal(err)
		}
	}
	return out.Bytes()
}

// TestRestoreV1Snapshot: snapshots written before the block-max fields
// existed (version 1, no per-term max tf) must still restore. Decode
// rebuilds posting lists through appendPosting, so the maxima the
// early-exit path depends on are recomputed, and every query — both
// the accumulator path and the top-k early-exit path — returns results
// bit-identical to the index that wrote the snapshot.
func TestRestoreV1Snapshot(t *testing.T) {
	ix := persistCorpus(t, WithShards(3))
	data := snapshotV1(t, ix)

	restored := New(WithShards(3))
	restored.SetFieldOptions("title", FieldOptions{Boost: 2})
	if err := restored.Restore(bytes.NewReader(data)); err != nil {
		t.Fatalf("restore v1 snapshot: %v", err)
	}
	if restored.Len() != ix.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), ix.Len())
	}

	// The block-max metadata must be fully rebuilt: every non-empty
	// posting list carries a positive max tf consistent with its blocks.
	for _, s := range restored.ring.Load().shards {
		for name, fp := range s.fields {
			for term, list := range fp.terms {
				if list.n == 0 {
					continue
				}
				if list.maxTF < 1 {
					t.Fatalf("field %q term %q: max tf %d after v1 restore", name, term, list.maxTF)
				}
				blockMax := 0
				for _, b := range list.blocks {
					if b.maxTF > blockMax {
						blockMax = b.maxTF
					}
				}
				if blockMax != list.maxTF {
					t.Fatalf("field %q term %q: list max tf %d, block max %d", name, term, list.maxTF, blockMax)
				}
			}
		}
	}

	for name, q := range shardQueries() {
		for _, opts := range []SearchOptions{{}, {Limit: 3}} {
			want := ix.mustSearch(q, opts)
			got := restored.mustSearch(q, opts)
			if len(want) != len(got) {
				t.Fatalf("%s limit=%d: %d hits, want %d", name, opts.Limit, len(got), len(want))
			}
			for i := range want {
				if want[i].ID != got[i].ID || want[i].Score != got[i].Score {
					t.Fatalf("%s limit=%d hit %d: got %s@%v, want %s@%v",
						name, opts.Limit, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
				}
			}
		}
	}
}

// TestRestoreRejectsDeclaredMaxTFMismatch: a v2 stream whose declared
// max tf disagrees with its own postings is corruption, not something
// to silently repair.
func TestRestoreRejectsDeclaredMaxTFMismatch(t *testing.T) {
	ix := New(WithShards(1))
	if err := ix.Add(Document{ID: "a", Fields: map[string]string{"body": "zelda zelda quest"}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.SnapshotShard(0, &buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the declared max tf for the first term by re-encoding the
	// payload with every per-term max tf bumped by one.
	target := New(WithShards(1))
	if err := target.RestoreShard(0, &buf); err != nil {
		t.Fatalf("sanity restore: %v", err)
	}
	s := ix.ring.Load().shards[0]
	list := s.fields["body"].terms["zelda"]
	list.maxTF++
	var bad bytes.Buffer
	err := s.snapshotV2(&bad)
	list.maxTF--
	if err != nil {
		t.Fatal(err)
	}
	// The declared-max-tf cross-check lives in the v1/v2 walking
	// decoder (v3 attaches the streams as-is under the frame CRC).
	if _, err := target.decodeShardVersion(bad.Bytes(), target.fieldOpts, 2, false); err == nil {
		t.Fatal("restore accepted max tf that disagrees with postings")
	}
}
func TestRestoreRejectsCorrupt(t *testing.T) {
	ix := persistCorpus(t, WithShards(2))
	var good bytes.Buffer
	if err := ix.Snapshot(&good); err != nil {
		t.Fatal(err)
	}
	target := sampleIndex(t)
	wantLen := target.Len()

	cases := map[string][]byte{
		"garbage":       []byte("not a snapshot at all"),
		"empty":         {},
		"magic-only":    []byte("SYMIDX1\n"),
		"truncated-25%": good.Bytes()[:good.Len()/4],
		"truncated-90%": good.Bytes()[:good.Len()*9/10],
		"bit-flipped":   append(append([]byte(nil), good.Bytes()[:good.Len()/2]...), append([]byte{0xFF}, good.Bytes()[good.Len()/2+1:]...)...),
		"trailing-junk": append(append([]byte(nil), good.Bytes()...), 0, 0, 0, 0, 0, 0, 0, 5, 'h', 'e', 'l', 'l', 'o'),
	}
	// A CRC-valid header claiming an absurd shard count must fail
	// cleanly instead of sizing allocations and goroutine fan-out.
	var huge bytes.Buffer
	if err := frameio.WriteMagic(&huge, "SYMIDX1\n"); err != nil {
		t.Fatal(err)
	}
	if err := frameio.WriteFrame(&huge, []byte(`{"version":1,"shards":1099511627776,"k1":1.2,"b":0.75}`)); err != nil {
		t.Fatal(err)
	}
	cases["huge-shard-count"] = huge.Bytes()

	for name, data := range cases {
		if err := target.Restore(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
		if target.Len() != wantLen {
			t.Fatalf("%s: failed restore mutated index: Len = %d, want %d", name, target.Len(), wantLen)
		}
		if got := target.mustSearch(MatchQuery{Text: "zelda"}, SearchOptions{}); len(got) == 0 {
			t.Fatalf("%s: failed restore broke target search", name)
		}
	}
}

func TestRestorePreservesAnalyzersAndRanker(t *testing.T) {
	ix := New(WithShards(2))
	ix.SetRanker(RankerTFIDF)
	ix.SetFieldOptions("title", FieldOptions{Boost: 3})
	if err := ix.Add(Document{ID: "a", Fields: map[string]string{"title": "zelda adventure"}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	ranker, k1, b := restored.scoringParams()
	if ranker != RankerTFIDF || k1 != 1.2 || b != 0.75 {
		t.Fatalf("scoring params = %v %v %v", ranker, k1, b)
	}
	opts, ok := restored.fieldOpts("title")
	if !ok || opts.Boost != 3 {
		t.Fatalf("title opts = %+v, %v", opts, ok)
	}
}

// TestRestoredIndexIsWritable: the restored structures must accept
// further writes, deletes and compaction like a fresh index.
func TestRestoredIndexIsWritable(t *testing.T) {
	ix := persistCorpus(t, WithShards(4))
	var buf bytes.Buffer
	if err := ix.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	before := restored.Len()
	if err := restored.Add(Document{ID: "new1", Fields: map[string]string{"body": "brand new zelda sequel"}}); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != before+1 {
		t.Fatalf("Len after add = %d, want %d", restored.Len(), before+1)
	}
	got := restored.mustSearch(TermQuery{Field: "body", Term: "sequel"}, SearchOptions{})
	if len(got) != 1 || got[0].ID != "new1" {
		t.Fatalf("search for new doc = %v", ids(got))
	}
	if !restored.Delete("new1") {
		t.Fatal("delete after restore failed")
	}
	restored.Compact()
	if restored.TombstoneRatio() != 0 {
		t.Fatalf("ratio after compact = %v", restored.TombstoneRatio())
	}
}
