package index

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/frameio"
)

// Per-shard persistence: each shard serializes its postings, doc
// table and ordinal space directly, so restoring an index reattaches
// the inverted structures instead of reindexing every document.
// The index-level format is framed — a header frame describing the
// configuration, then one frame per shard — so Snapshot can encode
// shards concurrently and still write a deterministic byte stream,
// and Restore can hand whole shard payloads to a decoding pool.
//
// BM25 statistics need no separate persistence: queries aggregate
// live counts, field lengths and document frequencies across shards
// at evaluation time, and all of those integers are serialized
// exactly, so a restored index scores bit-identically to the index
// that was snapshotted (and to a fresh build of the same live docs).
//
// Analyzers are code, not data: they are never serialized. Restore
// keeps the analyzers registered on the receiving index and applies
// the snapshot's boosts, so the caller must configure field analyzers
// (SetFieldOptions) before restoring, exactly as before indexing.

// indexSnapshotMagic/indexSnapshotVersion guard the framed format.
const (
	indexSnapshotMagic   = "SYMIDX1\n"
	indexSnapshotVersion = 1
)

// indexHeader is the header frame: everything shard-independent.
type indexHeader struct {
	Version int                `json:"version"`
	Shards  int                `json:"shards"`
	Ranker  int                `json:"ranker"`
	K1      float64            `json:"k1"`
	B       float64            `json:"b"`
	Boosts  map[string]float64 `json:"boosts"`
}

// Shard payloads are binary, not JSON: postings dominate snapshot
// size, and uvarint encoding keeps them a fraction of the equivalent
// JSON while encoding several times faster. Layout (all integers
// uvarint, strings length-prefixed):
//
//	docCount, then per ordinal: ID ("" = tombstone); for live docs
//	  the Fields and Stored maps (sorted keys, len + k/v pairs)
//	live, dead
//	fieldCount, then per field (sorted): name, totalLen,
//	  docLen entries (count + ord/len pairs, sorted by ord),
//	  terms (count + per sorted term: postings as ord + positions)
//
// Map keys are sorted wherever maps are walked, so identical state
// encodes to identical bytes.

// binWriter accumulates the binary shard payload.
type binWriter struct{ buf []byte }

func (w *binWriter) uvarint(x int) { w.buf = binary.AppendUvarint(w.buf, uint64(x)) }
func (w *binWriter) str(s string)  { w.uvarint(len(s)); w.buf = append(w.buf, s...) }
func (w *binWriter) strmap(m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.uvarint(len(keys))
	for _, k := range keys {
		w.str(k)
		w.str(m[k])
	}
}

// binReader decodes a binary shard payload with bounds checking.
type binReader struct {
	buf []byte
	off int
}

var errShardPayload = fmt.Errorf("index: corrupt shard payload")

func (r *binReader) uvarint() (int, error) {
	x, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 || x > 1<<56 {
		return 0, errShardPayload
	}
	r.off += n
	return int(x), nil
}

// count reads an element count: every counted element occupies at
// least one payload byte, so a count beyond the remaining bytes is
// corruption, caught before it can size an allocation.
func (r *binReader) count() (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > len(r.buf)-r.off {
		return 0, errShardPayload
	}
	return n, nil
}

func (r *binReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n < 0 || r.off+n > len(r.buf) {
		return "", errShardPayload
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s, nil
}

func (r *binReader) strmap() (map[string]string, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.str()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

// SnapshotShard serializes shard i to w. The shard's read lock is
// held while encoding; other shards stay fully available.
func (ix *Index) SnapshotShard(i int, w io.Writer) error {
	if i < 0 || i >= len(ix.shards) {
		return fmt.Errorf("index: snapshot shard %d of %d", i, len(ix.shards))
	}
	s := ix.shards[i]
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := &binWriter{}
	bw.uvarint(len(s.docs))
	for _, doc := range s.docs {
		bw.str(doc.ID)
		if doc.ID == "" {
			continue
		}
		bw.strmap(doc.Fields)
		bw.strmap(doc.Stored)
	}
	bw.uvarint(s.live)
	bw.uvarint(s.dead)
	names := make([]string, 0, len(s.fields))
	for name := range s.fields {
		names = append(names, name)
	}
	sort.Strings(names)
	bw.uvarint(len(names))
	for _, name := range names {
		fp := s.fields[name]
		bw.str(name)
		bw.uvarint(fp.totalLen)
		ords := make([]int, 0, len(fp.docLen))
		for ord := range fp.docLen {
			ords = append(ords, ord)
		}
		sort.Ints(ords)
		bw.uvarint(len(ords))
		for _, ord := range ords {
			bw.uvarint(ord)
			bw.uvarint(fp.docLen[ord])
		}
		terms := make([]string, 0, len(fp.terms))
		for term := range fp.terms {
			terms = append(terms, term)
		}
		sort.Strings(terms)
		bw.uvarint(len(terms))
		for _, term := range terms {
			list := fp.terms[term]
			bw.str(term)
			bw.uvarint(len(list))
			for _, p := range list {
				bw.uvarint(p.doc)
				bw.uvarint(len(p.positions))
				for _, pos := range p.positions {
					bw.uvarint(pos)
				}
			}
		}
	}
	_, err := w.Write(bw.buf)
	return err
}

// RestoreShard replaces shard i's contents from a SnapshotShard
// stream, rebuilding the ID table and revalidating ordinal
// references. Field options come from the index registry, so boosts
// and analyzers configured on the index apply to the restored shard.
func (ix *Index) RestoreShard(i int, r io.Reader) error {
	if i < 0 || i >= len(ix.shards) {
		return fmt.Errorf("index: restore shard %d of %d", i, len(ix.shards))
	}
	fresh, err := ix.decodeShard(r, ix.fieldOpts)
	if err != nil {
		return err
	}
	// Fields the shard carries must exist in the index-level registry
	// or cross-shard statistics aggregation would skip them.
	for field := range fresh.fields {
		ix.ensureField(field)
	}
	s := ix.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs, s.byID, s.live, s.dead, s.fields = fresh.docs, fresh.byID, fresh.live, fresh.dead, fresh.fields
	return nil
}

// decodeShard builds a fresh shard from a SnapshotShard payload,
// validating internal consistency so a corrupt frame cannot produce
// an index that panics at query time. optsFor resolves field options
// (Restore passes the merged registry before it is installed).
func (ix *Index) decodeShard(r io.Reader, optsFor func(string) (FieldOptions, bool)) (*shard, error) {
	payload, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("index: reading shard payload: %w", err)
	}
	br := &binReader{buf: payload}
	fail := func(err error) (*shard, error) {
		return nil, fmt.Errorf("index: decoding shard: %w", err)
	}
	nDocs, err := br.count()
	if err != nil {
		return fail(err)
	}
	s := newShard(ix)
	s.docs = make([]Document, nDocs)
	for ord := 0; ord < nDocs; ord++ {
		id, err := br.str()
		if err != nil {
			return fail(err)
		}
		if id == "" {
			continue
		}
		doc := Document{ID: id}
		if doc.Fields, err = br.strmap(); err != nil {
			return fail(err)
		}
		if doc.Stored, err = br.strmap(); err != nil {
			return fail(err)
		}
		if prev, dup := s.byID[id]; dup {
			return fail(fmt.Errorf("ID %q at ordinals %d and %d", id, prev, ord))
		}
		s.docs[ord] = doc
		s.byID[id] = ord
		s.live++
	}
	live, err := br.uvarint()
	if err != nil {
		return fail(err)
	}
	if s.dead, err = br.uvarint(); err != nil {
		return fail(err)
	}
	if s.live != live {
		return fail(fmt.Errorf("live count %d, doc table has %d", live, s.live))
	}
	nFields, err := br.count()
	if err != nil {
		return fail(err)
	}
	for i := 0; i < nFields; i++ {
		name, err := br.str()
		if err != nil {
			return fail(err)
		}
		fp := &fieldPostings{
			terms:  make(map[string][]posting),
			docLen: make(map[int]int),
		}
		if fp.totalLen, err = br.uvarint(); err != nil {
			return fail(err)
		}
		nLens, err := br.count()
		if err != nil {
			return fail(err)
		}
		for j := 0; j < nLens; j++ {
			ord, err := br.uvarint()
			if err != nil {
				return fail(err)
			}
			if ord >= len(s.docs) {
				return fail(fmt.Errorf("field %q doc length for ordinal %d of %d", name, ord, len(s.docs)))
			}
			if fp.docLen[ord], err = br.uvarint(); err != nil {
				return fail(err)
			}
		}
		nTerms, err := br.count()
		if err != nil {
			return fail(err)
		}
		for j := 0; j < nTerms; j++ {
			term, err := br.str()
			if err != nil {
				return fail(err)
			}
			nPostings, err := br.count()
			if err != nil {
				return fail(err)
			}
			list := make([]posting, nPostings)
			for k := range list {
				doc, err := br.uvarint()
				if err != nil {
					return fail(err)
				}
				if doc >= len(s.docs) {
					return fail(fmt.Errorf("field %q term %q posting ordinal %d of %d", name, term, doc, len(s.docs)))
				}
				nPos, err := br.count()
				if err != nil {
					return fail(err)
				}
				positions := make([]int, nPos)
				for m := range positions {
					if positions[m], err = br.uvarint(); err != nil {
						return fail(err)
					}
				}
				list[k] = posting{doc: doc, positions: positions}
			}
			fp.terms[term] = list
		}
		if opts, ok := optsFor(name); ok {
			fp.opts = opts
		}
		s.fields[name] = fp
	}
	if br.off != len(br.buf) {
		return fail(fmt.Errorf("%d trailing bytes", len(br.buf)-br.off))
	}
	return s, nil
}

// Snapshot serializes the whole index: a header frame with the
// scoring configuration and field boosts, then one frame per shard.
// Shard frames are encoded concurrently (each under its own read
// lock) and written in shard order, so the output is deterministic.
func (ix *Index) Snapshot(w io.Writer) error {
	hdr := indexHeader{
		Version: indexSnapshotVersion,
		Shards:  len(ix.shards),
		Boosts:  make(map[string]float64),
	}
	ix.cfg.RLock()
	hdr.Ranker = int(ix.cfg.ranker)
	hdr.K1, hdr.B = ix.cfg.k1, ix.cfg.b
	for f, opts := range ix.cfg.fields {
		hdr.Boosts[f] = opts.Boost
	}
	ix.cfg.RUnlock()

	if err := frameio.WriteMagic(w, indexSnapshotMagic); err != nil {
		return err
	}
	hdrBytes, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	if err := frameio.WriteFrame(w, hdrBytes); err != nil {
		return err
	}
	bufs := make([]bytes.Buffer, len(ix.shards))
	errs := make([]error, len(ix.shards))
	ix.eachShard(func(i int, _ *shard) {
		errs[i] = ix.SnapshotShard(i, &bufs[i])
	})
	for i := range ix.shards {
		if errs[i] != nil {
			return fmt.Errorf("index: snapshot shard %d: %w", i, errs[i])
		}
		if err := frameio.WriteFrame(w, bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// Restore replaces the index contents from a Snapshot stream. The
// shard layout adopts the snapshot's shard count (document routing
// hashes by ID mod shard count, so postings only make sense under the
// count they were written with); shard frames decode concurrently.
// Restore builds the new shards completely before installing them, so
// a corrupt or truncated snapshot leaves the index unchanged.
//
// Restore must not run concurrently with other operations on the
// same index: callers restore into a fresh or quiesced index.
func (ix *Index) Restore(r io.Reader) error {
	if err := frameio.ExpectMagic(r, indexSnapshotMagic); err != nil {
		return fmt.Errorf("index: restore: %w", err)
	}
	hdrBytes, err := frameio.ReadFrame(r)
	if err != nil {
		return fmt.Errorf("index: restore header: %w", err)
	}
	var hdr indexHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return fmt.Errorf("index: restore header: %w", err)
	}
	if hdr.Version != indexSnapshotVersion {
		return fmt.Errorf("index: restore: unsupported snapshot version %d", hdr.Version)
	}
	// Bound the shard count before it sizes allocations and goroutine
	// fan-out: no sane snapshot exceeds this, and a corrupt-but-CRC-
	// valid header must fail cleanly, not OOM.
	const maxSnapshotShards = 1 << 16
	if hdr.Shards < 1 || hdr.Shards > maxSnapshotShards {
		return fmt.Errorf("index: restore: snapshot has %d shards", hdr.Shards)
	}
	frames := make([][]byte, hdr.Shards)
	for i := range frames {
		if frames[i], err = frameio.ReadFrame(r); err != nil {
			return fmt.Errorf("index: restore shard %d: %w", i, err)
		}
	}
	if _, err := frameio.ReadFrame(r); err != io.EOF {
		return fmt.Errorf("index: restore: trailing data after %d shard frames", hdr.Shards)
	}

	// Merge field options before decoding, without installing them:
	// analyzers registered on the receiver survive, snapshot boosts
	// win. Decoded shards bind options from this merged view, and
	// nothing mutates the index until every shard decoded cleanly.
	merged := make(map[string]FieldOptions, len(hdr.Boosts))
	ix.cfg.RLock()
	for f, boost := range hdr.Boosts {
		opts := ix.cfg.fields[f]
		opts.Boost = boost
		merged[f] = opts
	}
	ix.cfg.RUnlock()
	optsFor := func(field string) (FieldOptions, bool) {
		opts, ok := merged[field]
		return opts, ok
	}

	shards := make([]*shard, hdr.Shards)
	errs := make([]error, hdr.Shards)
	fanOut(hdr.Shards, func(i int) {
		shards[i], errs[i] = ix.decodeShard(bytes.NewReader(frames[i]), optsFor)
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("index: restore shard %d: %w", i, err)
		}
	}
	ix.cfg.Lock()
	ix.cfg.ranker = Ranker(hdr.Ranker)
	ix.cfg.k1, ix.cfg.b = hdr.K1, hdr.B
	for f, opts := range merged {
		ix.cfg.fields[f] = opts
	}
	ix.cfg.Unlock()
	ix.shards = shards
	return nil
}
