package index

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/frameio"
)

// Per-shard persistence: each shard serializes its postings, doc
// table and ordinal space directly, so restoring an index reattaches
// the inverted structures instead of reindexing every document.
// The index-level format is framed — a header frame describing the
// configuration, then one frame per shard — so Snapshot can encode
// shards concurrently and still write a deterministic byte stream,
// and Restore can hand whole shard payloads to a decoding pool.
//
// The uvarint codec lives in encoding.go and is shared with the
// in-memory posting lists: snapshot encode streams postings straight
// out of the block-compressed resident representation, and decode
// appends straight back into it, with no intermediate slices.
//
// BM25 statistics need no separate persistence: queries aggregate
// live counts, field lengths and document frequencies across shards
// at evaluation time, and all of those integers are serialized
// exactly, so a restored index scores bit-identically to the index
// that was snapshotted (and to a fresh build of the same live docs).
//
// Analyzers are code, not data: they are never serialized. Restore
// keeps the analyzers registered on the receiving index and applies
// the snapshot's boosts, so the caller must configure field analyzers
// (SetFieldOptions) before restoring, exactly as before indexing.

// indexSnapshotMagic/indexSnapshotVersion guard the framed format.
// Version 2 added the per-term max term frequency (the block-max
// early-exit bound's input) ahead of each posting run. Version 3 is
// the mmap-friendly layout (mapped.go): offset directories plus the
// raw block-compressed byte streams, so a shard can be attached as a
// read-only view over the file instead of decoded. Versions 1 and 2
// still restore (always onto the heap): decode rebuilds posting lists
// through appendPosting, which recomputes every block's metadata —
// including maxima — so v2's declared max tf is an integrity check
// and simply absent from v1.
const (
	indexSnapshotMagic   = "SYMIDX1\n"
	indexSnapshotVersion = 3
)

// indexHeader is the header frame: everything shard-independent.
type indexHeader struct {
	Version int                `json:"version"`
	Shards  int                `json:"shards"`
	Ranker  int                `json:"ranker"`
	K1      float64            `json:"k1"`
	B       float64            `json:"b"`
	Boosts  map[string]float64 `json:"boosts"`
}

// Shard payloads are binary, not JSON: postings dominate snapshot
// size, and uvarint encoding keeps them a fraction of the equivalent
// JSON while encoding several times faster. Layout (all integers
// uvarint, strings length-prefixed):
//
//	docCount, then per ordinal: ID ("" = tombstone); for live docs
//	  the Fields and Stored maps (sorted keys, len + k/v pairs)
//	live, dead
//	fieldCount, then per field (sorted): name, totalLen,
//	  docLen entries (count + ord/len pairs, sorted by ord),
//	  terms (count + per sorted term: max tf [v2+], postings as
//	  ord + positions)
//
// Map keys are sorted wherever maps are walked, so identical state
// encodes to identical bytes.

// SnapshotShard serializes shard i of the current ring to w (format
// v3). The shard's read lock is held while encoding; other shards
// stay fully available.
func (ix *Index) SnapshotShard(i int, w io.Writer) error {
	shards := ix.ring.Load().shards
	if i < 0 || i >= len(shards) {
		return fmt.Errorf("index: snapshot shard %d of %d", i, len(shards))
	}
	return shards[i].snapshotV3(w)
}

// snapshotV2 serializes this shard in the legacy v2 layout, kept so
// compatibility fixtures (and SnapshotV2 streams) can still be
// produced and cross-checked against v3.
func (s *shard) snapshotV2(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := &binWriter{}
	nDocs := s.numDocs()
	bw.uvarint(nDocs)
	for ord := 0; ord < nDocs; ord++ {
		doc := s.docAt(ord)
		bw.str(doc.ID)
		if doc.ID == "" {
			continue
		}
		bw.strmap(doc.Fields)
		bw.strmap(doc.Stored)
	}
	bw.uvarint(s.live)
	bw.uvarint(s.dead)
	names := make([]string, 0, len(s.fields))
	for name := range s.fields {
		names = append(names, name)
	}
	sort.Strings(names)
	bw.uvarint(len(names))
	var positions []int
	for _, name := range names {
		fp := s.fields[name]
		bw.str(name)
		bw.uvarint(fp.totalLen)
		// A live ordinal carries the field exactly when the document
		// lists it, so the dense length table serializes as the same
		// sorted (ord, len) pairs the map representation produced.
		ords := make([]int, 0, fp.docCount)
		for ord := 0; ord < nDocs; ord++ {
			if !s.liveAt(ord) {
				continue
			}
			if _, ok := s.docAt(ord).Fields[name]; ok {
				ords = append(ords, ord)
			}
		}
		bw.uvarint(len(ords))
		for _, ord := range ords {
			bw.uvarint(ord)
			bw.uvarint(fp.lenAt(ord))
		}
		terms := fp.sortedTermsAll()
		lists := make([]*postingList, 0, len(terms))
		kept := make([]string, 0, len(terms))
		for _, term := range terms {
			if l := fp.lookup(term); l != nil {
				lists = append(lists, l)
				kept = append(kept, term)
			}
		}
		terms = kept
		bw.uvarint(len(terms))
		for ti, term := range terms {
			list := lists[ti]
			bw.str(term)
			bw.uvarint(list.maxTF)
			bw.uvarint(list.n)
			it := list.iter()
			pi := list.positions()
			for it.next() {
				bw.uvarint(it.doc)
				bw.uvarint(it.tf)
				positions = pi.read(it.tf, positions)
				for _, pos := range positions {
					bw.uvarint(pos)
				}
			}
		}
	}
	_, err := w.Write(bw.buf)
	return err
}

// snapshotV3 serializes this shard in the mmap-friendly v3 layout
// (see mapped.go for the full map). A shard that is still an
// untouched mapped view writes its payload bytes verbatim — the
// incremental-checkpoint fast path that makes re-checkpointing a
// mapped, read-mostly corpus byte-copy cheap. Anything dirty has its
// doc table materialized (prepareWriteLocked's invariant), so the
// generic walk below reads heap docs and per-term lookups that may
// still be views — both encode identically.
func (s *shard) snapshotV3(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ms != nil && !s.dirty {
		_, err := w.Write(s.ms.payload)
		return err
	}
	bw := &binWriter{}
	nDocs := s.numDocs()
	bw.reserve(v3HeaderLen)
	// Doc entries first, recording each live doc's offset; the
	// directory and ID permutation follow.
	docOff := make([]uint64, nDocs)
	type idOrd struct {
		id  string
		ord int
	}
	byIDSorted := make([]idOrd, 0, s.live)
	for ord := 0; ord < nDocs; ord++ {
		doc := s.docAt(ord)
		if doc.ID == "" {
			docOff[ord] = v3Tombstone
			continue
		}
		docOff[ord] = uint64(len(bw.buf))
		bw.str(doc.ID)
		bw.strmap(doc.Fields)
		bw.strmap(doc.Stored)
		byIDSorted = append(byIDSorted, idOrd{doc.ID, ord})
	}
	docDirOff := len(bw.buf)
	for _, off := range docOff {
		bw.u64(off)
	}
	sort.Slice(byIDSorted, func(i, j int) bool { return byIDSorted[i].id < byIDSorted[j].id })
	idSortedOff := len(bw.buf)
	for _, e := range byIDSorted {
		bw.u32(uint32(e.ord))
	}
	names := make([]string, 0, len(s.fields))
	for name := range s.fields {
		names = append(names, name)
	}
	sort.Strings(names)
	fieldOffs := make([]uint64, len(names))
	for fi, name := range names {
		fp := s.fields[name]
		fieldOffs[fi] = uint64(len(bw.buf))
		bw.str(name)
		bw.uvarint(fp.totalLen)
		bw.uvarint(fp.docCount)
		bw.uvarint(fp.minLen)
		ords := make([]int, 0, fp.docCount)
		for ord := 0; ord < nDocs; ord++ {
			if !s.liveAt(ord) {
				continue
			}
			if _, ok := s.docAt(ord).Fields[name]; ok {
				ords = append(ords, ord)
			}
		}
		bw.uvarint(len(ords))
		for _, ord := range ords {
			bw.uvarint(ord)
			bw.uvarint(fp.lenAt(ord))
		}
		terms := fp.sortedTermsAll()
		lists := make([]*postingList, 0, len(terms))
		kept := make([]string, 0, len(terms))
		for _, term := range terms {
			if l := fp.lookup(term); l != nil {
				lists = append(lists, l)
				kept = append(kept, term)
			}
		}
		terms = kept
		bw.uvarint(len(terms))
		termDirOff := bw.reserve(len(terms) * 8)
		for ti, term := range terms {
			bw.patchU64(termDirOff+ti*8, uint64(len(bw.buf)))
			list := lists[ti]
			bw.str(term)
			bw.uvarint(list.n)
			bw.uvarint(list.lastDoc)
			bw.uvarint(list.maxTF)
			bw.uvarint(len(list.blocks))
			for _, b := range list.blocks {
				bw.uvarint(b.firstDoc)
				bw.uvarint(b.docOff)
				bw.uvarint(b.posOff)
				bw.uvarint(b.maxTF)
			}
			bw.uvarint(len(list.docTF))
			bw.buf = append(bw.buf, list.docTF...)
			bw.uvarint(len(list.posBuf))
			bw.buf = append(bw.buf, list.posBuf...)
		}
	}
	fieldDirOff := len(bw.buf)
	for _, off := range fieldOffs {
		bw.u64(off)
	}
	hdr := []uint64{uint64(nDocs), uint64(s.live), uint64(s.dead), uint64(len(names)),
		uint64(docDirOff), uint64(idSortedOff), uint64(fieldDirOff), 0}
	for i, x := range hdr {
		bw.patchU64(i*8, x)
	}
	_, err := w.Write(bw.buf)
	return err
}

// RestoreShard replaces shard i's contents from a SnapshotShard
// stream, rebuilding the ID table and revalidating ordinal
// references. Field options come from the index registry, so boosts
// and analyzers configured on the index apply to the restored shard.
// Like Restore, it must not run concurrently with a Reshard: it
// swaps one shard's contents in place within the current ring.
func (ix *Index) RestoreShard(i int, r io.Reader) error {
	shards := ix.ring.Load().shards
	if i < 0 || i >= len(shards) {
		return fmt.Errorf("index: restore shard %d of %d", i, len(shards))
	}
	payload, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("index: reading shard payload: %w", err)
	}
	fresh, err := ix.decodeShardVersion(payload, ix.fieldOpts, indexSnapshotVersion, false)
	if err != nil {
		return err
	}
	// Fields the shard carries must exist in the index-level registry
	// or cross-shard statistics aggregation would skip them.
	for field := range fresh.fields {
		ix.ensureField(field)
	}
	s := shards[i]
	s.mu.Lock()
	s.docs, s.byID, s.live, s.dead, s.fields = fresh.docs, fresh.byID, fresh.live, fresh.dead, fresh.fields
	s.mu.Unlock()
	ix.bumpVer()
	return nil
}

// decodeShardVersion decodes one shard payload of any supported
// version. v1/v2 go through the legacy walking decoder; v3 attaches
// the offset-directory layout as views and then — unless mapped is
// true — materializes everything onto the heap so the payload's
// backing buffer is not retained. With mapped=true the payload must
// outlive the shard (an mmap'd file, or a buffer the caller pins).
func (ix *Index) decodeShardVersion(payload []byte, optsFor func(string) (FieldOptions, bool), version int, mapped bool) (*shard, error) {
	if version < 3 {
		return ix.decodeShard(bytes.NewReader(payload), optsFor, version)
	}
	s, err := ix.attachShardV3(payload, optsFor)
	if err != nil {
		return nil, err
	}
	if !mapped {
		s.materializeAllLocked(false)
	}
	return s, nil
}

// decodeShard builds a fresh shard from a SnapshotShard payload,
// validating internal consistency so a corrupt frame cannot produce
// an index that panics at query time. optsFor resolves field options
// (Restore passes the merged registry before it is installed).
// version selects the payload layout; appendPosting rebuilds block
// metadata either way, so pre-block-max (v1) payloads restore with
// maxima recomputed and v2's declared max tf is checked against the
// recomputed value.
func (ix *Index) decodeShard(r io.Reader, optsFor func(string) (FieldOptions, bool), version int) (*shard, error) {
	payload, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("index: reading shard payload: %w", err)
	}
	br := &binReader{buf: payload}
	fail := func(err error) (*shard, error) {
		return nil, fmt.Errorf("index: decoding shard: %w", err)
	}
	nDocs, err := br.count()
	if err != nil {
		return fail(err)
	}
	s := newShard(ix)
	s.docs = make([]Document, nDocs)
	for ord := 0; ord < nDocs; ord++ {
		id, err := br.str()
		if err != nil {
			return fail(err)
		}
		if id == "" {
			continue
		}
		doc := Document{ID: id}
		if doc.Fields, err = br.strmap(); err != nil {
			return fail(err)
		}
		if doc.Stored, err = br.strmap(); err != nil {
			return fail(err)
		}
		if prev, dup := s.byID[id]; dup {
			return fail(fmt.Errorf("ID %q at ordinals %d and %d", id, prev, ord))
		}
		s.docs[ord] = doc
		s.byID[id] = ord
		s.live++
	}
	live, err := br.uvarint()
	if err != nil {
		return fail(err)
	}
	if s.dead, err = br.uvarint(); err != nil {
		return fail(err)
	}
	if s.live != live {
		return fail(fmt.Errorf("live count %d, doc table has %d", live, s.live))
	}
	nFields, err := br.count()
	if err != nil {
		return fail(err)
	}
	var positions []int
	for i := 0; i < nFields; i++ {
		name, err := br.str()
		if err != nil {
			return fail(err)
		}
		fp := &fieldPostings{
			terms:  make(map[string]*postingList),
			docLen: make([]int, nDocs),
		}
		if fp.totalLen, err = br.uvarint(); err != nil {
			return fail(err)
		}
		nLens, err := br.count()
		if err != nil {
			return fail(err)
		}
		for j := 0; j < nLens; j++ {
			ord, err := br.uvarint()
			if err != nil {
				return fail(err)
			}
			if ord >= nDocs {
				return fail(fmt.Errorf("field %q doc length for ordinal %d of %d", name, ord, nDocs))
			}
			if fp.docLen[ord], err = br.uvarint(); err != nil {
				return fail(err)
			}
			if n := fp.docLen[ord]; n > 0 && (fp.minLen == 0 || n < fp.minLen) {
				fp.minLen = n
			}
		}
		fp.docCount = nLens
		nTerms, err := br.count()
		if err != nil {
			return fail(err)
		}
		dict := make([]string, 0, nTerms)
		for j := 0; j < nTerms; j++ {
			term, err := br.str()
			if err != nil {
				return fail(err)
			}
			dict = append(dict, term)
			declaredMaxTF := -1
			if version >= 2 {
				if declaredMaxTF, err = br.uvarint(); err != nil {
					return fail(err)
				}
			}
			nPostings, err := br.count()
			if err != nil {
				return fail(err)
			}
			list := &postingList{}
			prevDoc := -1
			for k := 0; k < nPostings; k++ {
				doc, err := br.uvarint()
				if err != nil {
					return fail(err)
				}
				if doc >= nDocs {
					return fail(fmt.Errorf("field %q term %q posting ordinal %d of %d", name, term, doc, nDocs))
				}
				// Delta encoding requires the ordinal invariant the
				// writer guarantees; a violation is corruption.
				if doc <= prevDoc {
					return fail(fmt.Errorf("field %q term %q postings out of order at ordinal %d", name, term, doc))
				}
				prevDoc = doc
				nPos, err := br.count()
				if err != nil {
					return fail(err)
				}
				positions = positions[:0]
				prevPos := -1
				for m := 0; m < nPos; m++ {
					pos, err := br.uvarint()
					if err != nil {
						return fail(err)
					}
					if pos < prevPos {
						return fail(fmt.Errorf("field %q term %q positions out of order in ordinal %d", name, term, doc))
					}
					prevPos = pos
					positions = append(positions, pos)
				}
				list.appendPosting(doc, positions)
			}
			if declaredMaxTF >= 0 && list.maxTF != declaredMaxTF {
				return fail(fmt.Errorf("field %q term %q max tf %d, postings say %d", name, term, declaredMaxTF, list.maxTF))
			}
			fp.terms[term] = list
		}
		// The snapshot writes terms sorted, so the dictionary cache
		// comes for free on restore.
		sortedDict := dict
		if !sort.StringsAreSorted(sortedDict) {
			return fail(fmt.Errorf("field %q term dictionary out of order", name))
		}
		fp.dict.Store(&sortedDict)
		if opts, ok := optsFor(name); ok {
			fp.opts = opts
		}
		s.fields[name] = fp
	}
	if br.off != len(br.buf) {
		return fail(fmt.Errorf("%d trailing bytes", len(br.buf)-br.off))
	}
	return s, nil
}

// Snapshot serializes the whole index in the current format (v3): a
// header frame with the scoring configuration and field boosts, then
// one frame per shard. Shard frames are encoded concurrently (each
// under its own read lock) and written in shard order, so the output
// is deterministic. Shards that are still clean mapped views write
// their payload bytes verbatim.
func (ix *Index) Snapshot(w io.Writer) error {
	return ix.snapshotVersion(w, indexSnapshotVersion)
}

// SnapshotV2 serializes the whole index in the legacy v2 format, for
// compatibility fixtures and downgrade tooling.
func (ix *Index) SnapshotV2(w io.Writer) error {
	return ix.snapshotVersion(w, 2)
}

func (ix *Index) snapshotVersion(w io.Writer, version int) error {
	r := ix.ring.Load()
	hdr := indexHeader{
		Version: version,
		Shards:  len(r.shards),
		Boosts:  make(map[string]float64),
	}
	ix.cfg.RLock()
	hdr.Ranker = int(ix.cfg.ranker)
	hdr.K1, hdr.B = ix.cfg.k1, ix.cfg.b
	for f, opts := range ix.cfg.fields {
		hdr.Boosts[f] = opts.Boost
	}
	ix.cfg.RUnlock()

	if err := frameio.WriteMagic(w, indexSnapshotMagic); err != nil {
		return err
	}
	hdrBytes, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	if err := frameio.WriteFrame(w, hdrBytes); err != nil {
		return err
	}
	bufs := make([]bytes.Buffer, len(r.shards))
	errs := make([]error, len(r.shards))
	eachShard(r, func(i int, s *shard) {
		if version >= 3 {
			errs[i] = s.snapshotV3(&bufs[i])
		} else {
			errs[i] = s.snapshotV2(&bufs[i])
		}
	})
	for i := range r.shards {
		if errs[i] != nil {
			return fmt.Errorf("index: snapshot shard %d: %w", i, errs[i])
		}
		if err := frameio.WriteFrame(w, bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// Restore replaces the index contents from a Snapshot stream. The
// snapshot's shard layout no longer pins the index: frames decode
// concurrently into the layout they were written with (document
// routing hashes by ID mod shard count, so postings only make sense
// under the count they were written with), and the index then
// reshards to its configured shard count (WithShards, default
// GOMAXPROCS) when the two differ. A checkpoint taken on a 4-core
// box therefore restores to full fan-out on a 64-core one, with
// rankings bit-identical to a fresh build at the configured count.
// Restore builds the new shards completely before installing them, so
// a corrupt or truncated snapshot leaves the index unchanged.
//
// Restore must not run concurrently with other operations on the
// same index: callers restore into a fresh or quiesced index.
func (ix *Index) Restore(r io.Reader) error {
	if err := frameio.ExpectMagic(r, indexSnapshotMagic); err != nil {
		return fmt.Errorf("index: restore: %w", err)
	}
	hdrBytes, err := frameio.ReadFrame(r)
	if err != nil {
		return fmt.Errorf("index: restore header: %w", err)
	}
	var hdr indexHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return fmt.Errorf("index: restore header: %w", err)
	}
	if hdr.Version < 1 || hdr.Version > indexSnapshotVersion {
		return fmt.Errorf("index: restore: unsupported snapshot version %d", hdr.Version)
	}
	// Bound the shard count before it sizes allocations and goroutine
	// fan-out: no sane snapshot exceeds this, and a corrupt-but-CRC-
	// valid header must fail cleanly, not OOM.
	const maxSnapshotShards = 1 << 16
	if hdr.Shards < 1 || hdr.Shards > maxSnapshotShards {
		return fmt.Errorf("index: restore: snapshot has %d shards", hdr.Shards)
	}
	frames := make([][]byte, hdr.Shards)
	for i := range frames {
		if frames[i], err = frameio.ReadFrame(r); err != nil {
			return fmt.Errorf("index: restore shard %d: %w", i, err)
		}
	}
	if _, err := frameio.ReadFrame(r); err != io.EOF {
		return fmt.Errorf("index: restore: trailing data after %d shard frames", hdr.Shards)
	}

	// Merge field options before decoding, without installing them:
	// analyzers registered on the receiver survive, snapshot boosts
	// win. Decoded shards bind options from this merged view, and
	// nothing mutates the index until every shard decoded cleanly.
	merged := make(map[string]FieldOptions, len(hdr.Boosts))
	ix.cfg.RLock()
	for f, boost := range hdr.Boosts {
		opts := ix.cfg.fields[f]
		opts.Boost = boost
		merged[f] = opts
	}
	ix.cfg.RUnlock()
	optsFor := func(field string) (FieldOptions, bool) {
		opts, ok := merged[field]
		return opts, ok
	}

	shards := make([]*shard, hdr.Shards)
	errs := make([]error, hdr.Shards)
	fanOut(hdr.Shards, func(i int) {
		shards[i], errs[i] = ix.decodeShardVersion(frames[i], optsFor, hdr.Version, false)
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("index: restore shard %d: %w", i, err)
		}
	}
	ix.cfg.Lock()
	ix.cfg.ranker = Ranker(hdr.Ranker)
	ix.cfg.k1, ix.cfg.b = hdr.K1, hdr.B
	for f, opts := range merged {
		ix.cfg.fields[f] = opts
	}
	ix.cfg.Unlock()
	ix.invalidateAnalysis()
	old := ix.ring.Load()
	ix.ring.Store(&ring{gen: old.gen + 1, shards: shards})
	// Durability layout is decoupled from runtime parallelism: honor
	// the configured shard count, not the snapshot's. The index is
	// quiesced here (Restore's contract), so the reshard's journal
	// stays empty and this is a pure rehash.
	if hdr.Shards != ix.target {
		return ix.ReshardContext(context.Background(), ix.target)
	}
	return nil
}

// RestoreMapped attaches the index from an in-memory v3 Snapshot
// stream — typically a subslice of an mmap'd snapshot file — without
// decoding postings or documents onto the heap: shards become views
// over data and materialize copy-on-write as writes arrive
// (mapped.go). The caller guarantees data stays valid (and unmodified)
// for the life of the index; internal/mmapio's contract is that
// mappings are never unmapped while a serving process holds views.
//
// Unlike Restore, RestoreMapped adopts the snapshot's shard layout
// instead of resharding to the configured target: scores are
// bit-identical at any shard count, and resharding would materialize
// every byte, forfeiting the zero-copy boot. Frame checksums are
// verified during the walk, so a truncated or corrupt file fails here
// rather than at query time.
func (ix *Index) RestoreMapped(data []byte) error {
	off := len(indexSnapshotMagic)
	if len(data) < off || string(data[:off]) != indexSnapshotMagic {
		return fmt.Errorf("index: restore mapped: bad magic")
	}
	hdrBytes, off, err := frameio.NextFrameInBuf(data, off, true)
	if err != nil {
		return fmt.Errorf("index: restore mapped header: %w", err)
	}
	var hdr indexHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return fmt.Errorf("index: restore mapped header: %w", err)
	}
	if hdr.Version != 3 {
		return fmt.Errorf("index: restore mapped: snapshot version %d is not mappable (v3 required)", hdr.Version)
	}
	const maxSnapshotShards = 1 << 16
	if hdr.Shards < 1 || hdr.Shards > maxSnapshotShards {
		return fmt.Errorf("index: restore mapped: snapshot has %d shards", hdr.Shards)
	}
	frames := make([][]byte, hdr.Shards)
	for i := range frames {
		if frames[i], off, err = frameio.NextFrameInBuf(data, off, true); err != nil {
			return fmt.Errorf("index: restore mapped shard %d: %w", i, err)
		}
	}
	if off != len(data) {
		return fmt.Errorf("index: restore mapped: %d trailing bytes after %d shard frames", len(data)-off, hdr.Shards)
	}

	// Same option-merge contract as Restore: receiver's analyzers
	// survive, snapshot boosts win.
	merged := make(map[string]FieldOptions, len(hdr.Boosts))
	ix.cfg.RLock()
	for f, boost := range hdr.Boosts {
		opts := ix.cfg.fields[f]
		opts.Boost = boost
		merged[f] = opts
	}
	ix.cfg.RUnlock()
	optsFor := func(field string) (FieldOptions, bool) {
		opts, ok := merged[field]
		return opts, ok
	}

	shards := make([]*shard, hdr.Shards)
	errs := make([]error, hdr.Shards)
	fanOut(hdr.Shards, func(i int) {
		shards[i], errs[i] = ix.decodeShardVersion(frames[i], optsFor, hdr.Version, true)
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("index: restore mapped shard %d: %w", i, err)
		}
	}
	ix.cfg.Lock()
	ix.cfg.ranker = Ranker(hdr.Ranker)
	ix.cfg.k1, ix.cfg.b = hdr.K1, hdr.B
	for f, opts := range merged {
		ix.cfg.fields[f] = opts
	}
	ix.cfg.Unlock()
	ix.invalidateAnalysis()
	old := ix.ring.Load()
	ix.ring.Store(&ring{gen: old.gen + 1, shards: shards})
	return nil
}
