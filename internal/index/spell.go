package index

import (
	"sort"

	"repro/internal/textproc"
)

// Spell correction: a search platform serving end users must survive
// typos in queries. SuggestTerms proposes indexed terms close to a
// misspelled one, using character-bigram candidate generation and
// Damerau-Levenshtein (distance ≤ 2) ranking weighted by document
// frequency — more common terms are more likely intended.

// SuggestTerms returns up to limit indexed terms within edit distance
// 2 of term (post-analysis with the field's analyzer), most frequent
// first. An exact indexed term returns nil: nothing to correct.
// Candidate generation fans out across shards; per-shard document
// frequencies for the same candidate term are summed before ranking.
func (ix *Index) SuggestTerms(field, term string, limit int) []string {
	if limit <= 0 {
		limit = 3
	}
	opts, ok := ix.fieldOpts(field)
	if !ok {
		return nil
	}
	analyzed := opts.Analyzer.AnalyzeTerms(term)
	if len(analyzed) == 0 {
		return nil
	}
	target := analyzed[0]
	targetGrams := gramSet(target)

	r := ix.ring.Load()
	parts := make([]map[string]candidate, len(r.shards))
	exact := make([]bool, len(r.shards))
	eachShard(r, func(i int, s *shard) {
		parts[i], exact[i] = s.suggestCandidates(field, target, targetGrams)
	})
	for _, e := range exact {
		if e {
			return nil
		}
	}
	merged := make(map[string]candidate)
	for _, p := range parts {
		for t, c := range p {
			m := merged[t]
			m.dist = c.dist // identical in every shard for the same term
			m.df += c.df
			merged[t] = m
		}
	}
	type cand struct {
		term string
		dist int
		df   int
	}
	cands := make([]cand, 0, len(merged))
	for t, c := range merged {
		cands = append(cands, cand{t, c.dist, c.df})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		if cands[i].df != cands[j].df {
			return cands[i].df > cands[j].df
		}
		return cands[i].term < cands[j].term
	})
	if len(cands) > limit {
		cands = cands[:limit]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.term
	}
	return out
}

// candidate is one spell-correction candidate term's edit distance
// and live document frequency within a shard.
type candidate struct {
	dist int
	df   int
}

// suggestCandidates scans this shard's term dictionary for terms
// within edit distance 2 of target, returning each candidate's edit
// distance and live document frequency. The second return reports
// whether the exact target term is present (postings may include
// tombstones, matching the pre-sharding behaviour: an exact term
// needs no correction).
func (s *shard) suggestCandidates(field, target string, targetGrams map[string]bool) (map[string]candidate, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fp := s.fields[field]
	if fp == nil {
		return nil, false
	}
	if list := fp.lookup(target); list != nil && list.n > 0 {
		return nil, true
	}
	out := make(map[string]candidate)
	// Walk the cached sorted dictionary (shared with prefix scans):
	// slice iteration is cheaper than a map walk and deterministic.
	for _, t := range fp.sortedTermsAll() {
		// Cheap bigram prefilter before the edit-distance check.
		if !gramsOverlap(targetGrams, t) {
			continue
		}
		d := editDistance(target, t, 2)
		if d < 0 {
			continue
		}
		df := 0
		list := fp.lookup(t)
		if list == nil {
			continue
		}
		it := list.iter()
		for it.next() {
			if s.liveAt(it.doc) {
				df++
			}
		}
		if df > 0 {
			out[t] = candidate{dist: d, df: df}
		}
	}
	return out, false
}

// Bigrams (not trigrams) drive candidate generation: a transposition
// in a 4-letter word ("ahlo" for "halo") shares no trigram with the
// intended term but always shares a bigram.
func gramSet(term string) map[string]bool {
	set := make(map[string]bool)
	for _, g := range textproc.NGrams(term, 2) {
		set[g] = true
	}
	return set
}

// gramsOverlap reports whether candidate shares at least one bigram
// with the target (or either is too short for bigram evidence).
func gramsOverlap(target map[string]bool, candidate string) bool {
	grams := textproc.NGrams(candidate, 2)
	if len(grams) == 0 || len(target) == 0 {
		return true
	}
	for _, g := range grams {
		if target[g] {
			return true
		}
	}
	return false
}

// editDistance computes Damerau-Levenshtein distance with transposition,
// returning -1 when it exceeds maxDist (band-limited).
func editDistance(a, b string, maxDist int) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la-lb > maxDist || lb-la > maxDist {
		return -1
	}
	prev2 := make([]int, lb+1)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < m {
					m = t
				}
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > maxDist {
			return -1
		}
		prev2, prev, cur = prev, cur, prev2
	}
	if prev[lb] > maxDist {
		return -1
	}
	return prev[lb]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
