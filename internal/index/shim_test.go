package index

import "context"

// Test-side shims over the ctx-first API. The suite's queries never
// carry a deadline, so each shim evaluates under a background context
// and treats an error — impossible without cancellation — as test
// corruption worth a panic rather than a silently skewed expectation.

func (ix *Index) mustSearch(q Query, opts SearchOptions) []Result {
	rs, err := ix.SearchContext(context.Background(), q, opts)
	if err != nil {
		panic(err)
	}
	return rs
}

func (ix *Index) mustCount(q Query, filters map[string]string) int {
	n, err := ix.CountContext(context.Background(), q, filters)
	if err != nil {
		panic(err)
	}
	return n
}

func (ix *Index) mustFacets(q Query, field string, filters map[string]string) []FacetCount {
	fc, err := ix.FacetsContext(context.Background(), q, field, filters)
	if err != nil {
		panic(err)
	}
	return fc
}

func (sess *Session) mustSearch(q Query, opts SearchOptions) []Result {
	rs, err := sess.SearchContext(context.Background(), q, opts)
	if err != nil {
		panic(err)
	}
	return rs
}

func (sess *Session) mustCount(q Query, filters map[string]string) int {
	n, err := sess.CountContext(context.Background(), q, filters)
	if err != nil {
		panic(err)
	}
	return n
}

func (sess *Session) mustFacets(q Query, field string, filters map[string]string) []FacetCount {
	fc, err := sess.FacetsContext(context.Background(), q, field, filters)
	if err != nil {
		panic(err)
	}
	return fc
}
