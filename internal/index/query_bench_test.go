package index

import (
	"fmt"
	"math/rand"
	goruntime "runtime"
	"strings"
	"sync"
	"testing"
)

// The BenchmarkQuery family measures the shard-local query hot path
// over a corpus big enough (≥10k docs) that posting-list iteration,
// accumulator management and top-k selection dominate, not fixture
// noise. Results are tracked per PR in BENCH_query.json.

const queryBenchDocs = 12000

var (
	queryBenchOnce sync.Once
	queryBenchIx   *Index
)

// queryBenchCorpus generates a deterministic skewed corpus: a Zipf
// vocabulary so common terms have long posting lists (worst case for
// scoring), a fixed phrase planted in every 13th doc, and a low-card
// stored facet field.
func queryBenchCorpus(n int) []Document {
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 1.0, 999)
	producers := []string{"Nintendo", "Ensemble", "Epic", "Valve", "Sega", "Capcom", "Rare"}
	docs := make([]Document, n)
	for i := range docs {
		var b strings.Builder
		for w := 0; w < 40; w++ {
			fmt.Fprintf(&b, "w%04d ", zipf.Uint64())
			if w == 19 && i%13 == 0 {
				b.WriteString("grand quest chronicle ")
			}
		}
		title := fmt.Sprintf("w%04d w%04d saga", zipf.Uint64(), zipf.Uint64())
		docs[i] = Document{
			ID:     fmt.Sprintf("doc%06d", i),
			Fields: map[string]string{"title": title, "body": b.String()},
			Stored: map[string]string{"producer": producers[i%len(producers)], "title": title},
		}
	}
	return docs
}

func queryBenchIndex(b *testing.B) *Index {
	b.Helper()
	queryBenchOnce.Do(func() {
		ix := New()
		ix.SetFieldOptions("title", FieldOptions{Boost: 2})
		if err := ix.AddBatch(queryBenchCorpus(queryBenchDocs)); err != nil {
			panic(err)
		}
		queryBenchIx = ix
	})
	return queryBenchIx
}

func BenchmarkQuery(b *testing.B) {
	ix := queryBenchIndex(b)
	queries := map[string]struct {
		q    Query
		opts SearchOptions
	}{
		"match":     {MatchQuery{Text: "w0001 w0007 saga"}, SearchOptions{Limit: 10}},
		"match-and": {MatchQuery{Text: "w0001 w0007", Operator: "and"}, SearchOptions{Limit: 10}},
		"bool": {BoolQuery{
			Must:    []Query{MatchQuery{Text: "w0001"}},
			Should:  []Query{TermQuery{Field: "body", Term: "w0042"}},
			MustNot: []Query{TermQuery{Field: "title", Term: "w0003"}},
		}, SearchOptions{Limit: 10}},
		"phrase": {PhraseQuery{Field: "body", Text: "grand quest chronicle"}, SearchOptions{Limit: 10}},
		"prefix": {PrefixQuery{Field: "body", Prefix: "w00"}, SearchOptions{Limit: 10}},
	}
	for name, tc := range queries {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if rs := ix.mustSearch(tc.q, tc.opts); len(rs) == 0 {
					b.Fatal("no hits")
				}
			}
		})
	}
	b.Run("facets", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if fc := ix.mustFacets(MatchQuery{Text: "w0001"}, "producer", nil); len(fc) == 0 {
				b.Fatal("no facets")
			}
		}
	})
	// serp is one end-user results page: ranked hits + total count +
	// facet sidebar for the same query, the exact shape the engine's
	// fan-out issues per request.
	b.Run("serp", func(b *testing.B) {
		b.ReportAllocs()
		q := MatchQuery{Text: "w0001 w0007 saga"}
		for i := 0; i < b.N; i++ {
			ix.mustSearch(q, SearchOptions{Limit: 10})
			ix.mustCount(q, nil)
			ix.mustFacets(q, "producer", nil)
		}
	})
	// serp-session is the same page through one request-scoped
	// Session: the df/avgLen aggregation runs once instead of thrice.
	b.Run("serp-session", func(b *testing.B) {
		b.ReportAllocs()
		q := MatchQuery{Text: "w0001 w0007 saga"}
		for i := 0; i < b.N; i++ {
			sess := ix.Session()
			sess.mustSearch(q, SearchOptions{Limit: 10})
			sess.mustCount(q, nil)
			sess.mustFacets(q, "producer", nil)
		}
	})
}

var (
	scaleBenchMu  sync.Mutex
	scaleBenchIxs = map[int]*Index{}
)

// scaleBenchIndex builds (once per size) an index over n docs from the
// same deterministic generator as queryBenchIndex.
func scaleBenchIndex(b *testing.B, n int) *Index {
	b.Helper()
	scaleBenchMu.Lock()
	defer scaleBenchMu.Unlock()
	if ix := scaleBenchIxs[n]; ix != nil {
		return ix
	}
	ix := New()
	ix.SetFieldOptions("title", FieldOptions{Boost: 2})
	if err := ix.AddBatch(queryBenchCorpus(n)); err != nil {
		b.Fatal(err)
	}
	scaleBenchIxs[n] = ix
	return ix
}

// BenchmarkQueryScale pins the sublinear-scoring claim: the same
// top-10 query over 12k and 120k documents (a 10x corpus). The
// headline case is the classic block-max one — a single common term
// whose long posting list the evaluator prunes block-by-block once
// the top-10 threshold rises above most per-block maxTF bounds, so
// latency must grow far slower than the corpus does.
// postings-skipped/op counts postings jumped without decoding, and CI
// fails the smoke run when it reads zero.
func BenchmarkQueryScale(b *testing.B) {
	q := TermQuery{Field: "body", Term: "w0001"}
	for _, n := range []int{queryBenchDocs, 10 * queryBenchDocs} {
		b.Run(fmt.Sprintf("docs=%d", n), func(b *testing.B) {
			ix := scaleBenchIndex(b, n)
			s0 := ix.ScanStats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rs := ix.mustSearch(q, SearchOptions{Limit: 10}); len(rs) == 0 {
					b.Fatal("no hits")
				}
			}
			b.StopTimer()
			s1 := ix.ScanStats()
			b.ReportMetric(float64(s1.Scored-s0.Scored)/float64(b.N), "postings-scored/op")
			b.ReportMetric(float64(s1.Skipped-s0.Skipped)/float64(b.N), "postings-skipped/op")
		})
	}
}

// BenchmarkQueryCache measures one SERP (search + count + facets)
// cold — every request fully evaluated — versus warm, answered out of
// the generation-stamped cross-request cache.
func BenchmarkQueryCache(b *testing.B) {
	ix := queryBenchIndex(b)
	q := MatchQuery{Text: "w0001 w0007 saga"}
	serp := func() {
		ix.mustSearch(q, SearchOptions{Limit: 10})
		ix.mustCount(q, nil)
		ix.mustFacets(q, "producer", nil)
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			serp()
		}
	})
	b.Run("warm", func(b *testing.B) {
		c := NewCache(64 << 20)
		ix.AttachCache(c)
		defer ix.AttachCache(nil)
		serp() // fill
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serp()
		}
		b.StopTimer()
		st := c.Stats()
		if total := st.Hits + st.Misses; total > 0 {
			b.ReportMetric(float64(st.Hits)/float64(total)*100, "hit-%")
		}
	})
}

// BenchmarkQueryBuild tracks indexing cost: ns/op and allocation
// churn of building a fixed corpus.
func BenchmarkQueryBuild(b *testing.B) {
	docs := queryBenchCorpus(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := New(WithShards(4))
		ix.SetFieldOptions("title", FieldOptions{Boost: 2})
		if err := ix.AddBatch(docs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryResident reports the live heap an index retains after
// building and a GC — the resident cost of the posting lists and doc
// tables, which allocation churn (B/op) cannot show.
func BenchmarkQueryResident(b *testing.B) {
	docs := queryBenchCorpus(2000)
	var m0, m1 goruntime.MemStats
	for i := 0; i < b.N; i++ {
		goruntime.GC()
		goruntime.ReadMemStats(&m0)
		ix := New(WithShards(4))
		ix.SetFieldOptions("title", FieldOptions{Boost: 2})
		if err := ix.AddBatch(docs); err != nil {
			b.Fatal(err)
		}
		goruntime.GC()
		goruntime.ReadMemStats(&m1)
		b.ReportMetric(float64(m1.HeapAlloc)-float64(m0.HeapAlloc), "resident-B")
		goruntime.KeepAlive(ix)
	}
}
