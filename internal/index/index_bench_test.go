package index

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func benchDocs(n int) []Document {
	rng := rand.New(rand.NewSource(11))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa", "search", "review", "platform"}
	docs := make([]Document, n)
	for i := range docs {
		var b strings.Builder
		for w := 0; w < 20; w++ {
			b.WriteString(vocab[rng.Intn(len(vocab))])
			b.WriteByte(' ')
		}
		docs[i] = Document{
			ID:     fmt.Sprintf("d%d", i),
			Fields: map[string]string{"body": b.String(), "title": vocab[i%len(vocab)]},
		}
	}
	return docs
}

func BenchmarkAddSingle(b *testing.B) {
	docs := benchDocs(b.N + 1)
	ix := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ix.Add(docs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchMatch(b *testing.B) {
	ix := New()
	ix.AddBatch(benchDocs(5000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.mustSearch(MatchQuery{Text: "alpha review"}, SearchOptions{Limit: 10})
	}
}

func BenchmarkSearchBool(b *testing.B) {
	ix := New()
	ix.AddBatch(benchDocs(5000))
	q := BoolQuery{
		Must:    []Query{MatchQuery{Text: "alpha"}},
		MustNot: []Query{TermQuery{Field: "title", Term: "beta"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.mustSearch(q, SearchOptions{Limit: 10})
	}
}

// BenchmarkSearchMatchParallel drives concurrent searches against a
// single-shard index and the default sharded fan-out.
func BenchmarkSearchMatchParallel(b *testing.B) {
	docs := benchDocs(5000)
	for _, cfg := range []struct {
		name string
		opts []Option
	}{
		{"shards=1", []Option{WithShards(1)}},
		{"shards=default", nil},
	} {
		ix := New(cfg.opts...)
		if err := ix.AddBatch(docs); err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					ix.mustSearch(MatchQuery{Text: "alpha review"}, SearchOptions{Limit: 10})
				}
			})
		})
	}
}

func BenchmarkDeleteAndCompact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ix := New()
		ix.AddBatch(benchDocs(2000))
		b.StartTimer()
		for d := 0; d < 1000; d++ {
			ix.Delete(fmt.Sprintf("d%d", d))
		}
		ix.Compact()
	}
}

func BenchmarkSuggestTerms(b *testing.B) {
	ix := New()
	ix.AddBatch(benchDocs(5000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SuggestTerms("body", "alpka", 3)
	}
}
