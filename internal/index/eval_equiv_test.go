package index

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestEvalEquivalence pins the iterator/accumulator evaluator, the
// bounded top-k selection and the Session statistics cache to the
// map-based reference evaluator: scores must be float-equal (==, no
// tolerance) and orderings identical, for every query type, across
// shard counts {1, 3, NumCPU}, with tombstones present, for both
// rankers.

// equivCorpus builds a corpus with shared/rare terms, phrases, field
// boosts, facet values and a block-spanning ordinal range, then
// deletes some documents so tombstoned postings stay in the lists.
func equivCorpus(t testing.TB, shards int) *Index {
	t.Helper()
	ix := New(WithShards(shards))
	ix.SetFieldOptions("title", FieldOptions{Boost: 2})
	producers := []string{"Nintendo", "Ensemble", "Epic"}
	for i := 0; i < 300; i++ {
		body := fmt.Sprintf("shared corpus document number%d", i)
		if i%3 == 0 {
			body += " zelda adventure exploration"
		}
		if i%4 == 0 {
			body += " halo strategy"
		}
		if i%7 == 0 {
			body += " grand quest chronicle begins"
		}
		if i%2 == 0 {
			body += strings.Repeat(" filler", i%11)
		}
		ix.Add(Document{
			ID:     fmt.Sprintf("doc%03d", i),
			Fields: map[string]string{"title": fmt.Sprintf("Title %d zelda", i%5), "body": body},
			Stored: map[string]string{"producer": producers[i%len(producers)], "parity": fmt.Sprint(i % 2)},
		})
	}
	// Tombstones without compaction: dead postings must be skipped
	// identically by both evaluators.
	for i := 0; i < 300; i += 13 {
		ix.Delete(fmt.Sprintf("doc%03d", i))
	}
	return ix
}

func equivQueries() map[string]Query {
	return map[string]Query{
		"all":          AllQuery{},
		"term":         TermQuery{Field: "body", Term: "adventure"},
		"term-miss":    TermQuery{Field: "body", Term: "nosuchterm"},
		"match-or":     MatchQuery{Text: "zelda strategy"},
		"match-and":    MatchQuery{Text: "zelda halo", Operator: "and"},
		"match-fields": MatchQuery{Fields: []string{"title"}, Text: "zelda"},
		"phrase":       PhraseQuery{Field: "body", Text: "zelda adventure"},
		"phrase-long":  PhraseQuery{Field: "body", Text: "grand quest chronicle"},
		"phrase-one":   PhraseQuery{Field: "body", Text: "halo"},
		"prefix":       PrefixQuery{Field: "body", Prefix: "numb"},
		"prefix-wide":  PrefixQuery{Field: "body", Prefix: "f"},
		"bool": BoolQuery{
			Must:    []Query{MatchQuery{Text: "shared"}},
			Should:  []Query{TermQuery{Field: "body", Term: "halo"}},
			MustNot: []Query{TermQuery{Field: "body", Term: "number7"}},
		},
		"bool-musts": BoolQuery{
			Must: []Query{MatchQuery{Text: "zelda"}, TermQuery{Field: "body", Term: "halo"}},
		},
		"bool-pure-should": BoolQuery{
			Should: []Query{TermQuery{Field: "body", Term: "zelda"}, TermQuery{Field: "body", Term: "strategy"}},
		},
		"bool-nested": BoolQuery{
			Must: []Query{BoolQuery{
				Should: []Query{MatchQuery{Text: "zelda"}, PhraseQuery{Field: "body", Text: "halo strategy"}},
			}},
			MustNot: []Query{PrefixQuery{Field: "body", Prefix: "number1"}},
		},
	}
}

// mustEqualResults fails unless got and want are bit-identical hit
// lists: same length, IDs, float-equal scores, same order.
func mustEqualResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Fatalf("%s hit %d: got %s@%v, want %s@%v",
				label, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

func TestEvalEquivalence(t *testing.T) {
	shardCounts := []int{1, 3, runtime.NumCPU()}
	for _, ranker := range []Ranker{RankerBM25, RankerTFIDF} {
		for _, n := range shardCounts {
			ix := equivCorpus(t, n)
			ix.SetRanker(ranker)
			for _, force := range []bool{false, true} {
				// force=true pins the block-max evaluator on even for the
				// dense disjunctions the density fallback would hand back.
				ix.wandDenseForce.Store(force)
				for name, q := range equivQueries() {
					label := fmt.Sprintf("ranker=%d shards=%d force=%v %s", ranker, n, force, name)
					opts := []SearchOptions{
						{},
						{Limit: 10},
						{Limit: 10, Offset: 7},
						{Limit: 5, Filters: map[string]string{"producer": "Epic"}},
						{Filters: map[string]string{"parity": "0"}},
					}
					for i, o := range opts {
						mustEqualResults(t, fmt.Sprintf("%s opts%d", label, i),
							ix.mustSearch(q, o), refSearch(ix, q, o))
					}
					if got, want := ix.mustCount(q, nil), refCount(ix, q, nil); got != want {
						t.Fatalf("%s: Count %d, want %d", label, got, want)
					}
					filt := map[string]string{"producer": "Nintendo"}
					if got, want := ix.mustCount(q, filt), refCount(ix, q, filt); got != want {
						t.Fatalf("%s: filtered Count %d, want %d", label, got, want)
					}
					gotF, wantF := ix.mustFacets(q, "producer", nil), refFacets(ix, q, "producer", nil)
					if len(gotF) != len(wantF) {
						t.Fatalf("%s: %d facets, want %d", label, len(gotF), len(wantF))
					}
					for i := range wantF {
						if gotF[i] != wantF[i] {
							t.Fatalf("%s facet %d: got %v, want %v", label, i, gotF[i], wantF[i])
						}
					}
				}
			}
		}
	}
}

// mappedCopy snapshots ix in v3 and attaches the bytes to a fresh
// index through the zero-copy path, so queries decode postings lazily
// from the snapshot layout instead of heap structures.
func mappedCopy(t testing.TB, ix *Index) *Index {
	t.Helper()
	var snap bytes.Buffer
	if err := ix.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	mx := New()
	if err := mx.RestoreMapped(snap.Bytes()); err != nil {
		t.Fatal(err)
	}
	return mx
}

// TestEvalEquivalenceMapped: an index served from mapped v3 snapshot
// views must rank bit-identically to the heap index it was written
// from — for every query type, both rankers, across shard counts, with
// block-max early exit forced on and off, and after copy-on-write
// materialization from post-boot writes.
func TestEvalEquivalenceMapped(t *testing.T) {
	for _, ranker := range []Ranker{RankerBM25, RankerTFIDF} {
		for _, n := range []int{1, 3, runtime.NumCPU()} {
			ix := equivCorpus(t, n)
			ix.SetRanker(ranker)
			mx := mappedCopy(t, ix)
			if st := mx.MMapStats(); st.MappedShards == 0 || st.MappedBytes == 0 {
				t.Fatalf("ranker=%d shards=%d: mapped copy reports no mapped shards: %+v", ranker, n, st)
			}
			compare := func(stage string) {
				t.Helper()
				for name, q := range equivQueries() {
					label := fmt.Sprintf("ranker=%d shards=%d %s %s", ranker, n, stage, name)
					for i, o := range []SearchOptions{
						{},
						{Limit: 10},
						{Limit: 10, Offset: 7},
						{Limit: 5, Filters: map[string]string{"producer": "Epic"}},
					} {
						mustEqualResults(t, fmt.Sprintf("%s opts%d", label, i),
							mx.mustSearch(q, o), ix.mustSearch(q, o))
						mustEqualResults(t, fmt.Sprintf("%s opts%d ref", label, i),
							mx.mustSearch(q, o), refSearch(mx, q, o))
					}
					if got, want := mx.mustCount(q, nil), ix.mustCount(q, nil); got != want {
						t.Fatalf("%s: mapped Count %d, want %d", label, got, want)
					}
					gotF, wantF := mx.mustFacets(q, "producer", nil), ix.mustFacets(q, "producer", nil)
					if len(gotF) != len(wantF) {
						t.Fatalf("%s: mapped %d facets, want %d", label, len(gotF), len(wantF))
					}
					for i := range wantF {
						if gotF[i] != wantF[i] {
							t.Fatalf("%s mapped facet %d: got %v, want %v", label, i, gotF[i], wantF[i])
						}
					}
				}
			}
			compare("cold")
			mx.wandDenseForce.Store(true)
			ix.wandDenseForce.Store(true)
			compare("wand-forced")
			mx.wandDenseForce.Store(false)
			ix.wandDenseForce.Store(false)

			// Copy-on-write: the same post-boot mutations applied to both
			// sides must keep rankings bit-identical while only the
			// touched terms materialize on the mapped side.
			mutate := func(target *Index) {
				target.Add(Document{
					ID:     "doc301",
					Fields: map[string]string{"title": "Title 1 zelda", "body": "shared zelda halo strategy adventure fresh"},
					Stored: map[string]string{"producer": "Epic", "parity": "1"},
				})
				target.Delete("doc010")
				target.Add(Document{
					ID:     "doc020",
					Fields: map[string]string{"title": "Title 0 zelda", "body": "shared corpus document number20 rewritten halo"},
					Stored: map[string]string{"producer": "Nintendo", "parity": "0"},
				})
			}
			mutate(ix)
			mutate(mx)
			compare("post-cow")
			if st := mx.MMapStats(); st.MaterializedTerms == 0 {
				t.Fatalf("ranker=%d shards=%d: writes to mapped index materialized no terms: %+v", ranker, n, st)
			}
		}
	}
}

// TestSessionEquivalence: queries through a Session — whose second
// and later stats lookups come from the request cache — must return
// bit-identical results to direct Index calls, in any order and with
// overlapping terms.
func TestSessionEquivalence(t *testing.T) {
	for _, n := range []int{1, 4} {
		ix := equivCorpus(t, n)
		sess := ix.Session()
		for name, q := range equivQueries() {
			label := fmt.Sprintf("shards=%d %s", n, name)
			// Same query three ways through one session: Search warms
			// the cache, Count and Facets must reuse it exactly.
			mustEqualResults(t, label, sess.mustSearch(q, SearchOptions{Limit: 10}), ix.mustSearch(q, SearchOptions{Limit: 10}))
			if got, want := sess.mustCount(q, nil), ix.mustCount(q, nil); got != want {
				t.Fatalf("%s: session Count %d, want %d", label, got, want)
			}
			gotF, wantF := sess.mustFacets(q, "producer", nil), ix.mustFacets(q, "producer", nil)
			if len(gotF) != len(wantF) {
				t.Fatalf("%s: session %d facets, want %d", label, len(gotF), len(wantF))
			}
			for i := range wantF {
				if gotF[i] != wantF[i] {
					t.Fatalf("%s session facet %d: got %v, want %v", label, i, gotF[i], wantF[i])
				}
			}
		}
		// Repeating the full suite on the same warmed session must not
		// drift: everything now comes from the cache.
		for name, q := range equivQueries() {
			mustEqualResults(t, fmt.Sprintf("shards=%d %s warm", n, name),
				sess.mustSearch(q, SearchOptions{Limit: 10}), ix.mustSearch(q, SearchOptions{Limit: 10}))
		}
	}
}

// TestEvalEquivalenceFuzz builds randomized corpora (random vocab,
// doc lengths, deletions) and compares randomized queries against the
// reference evaluator across shard counts, with block-max early exit
// on and off, and with the shared cross-request cache cold and warm.
func TestEvalEquivalenceFuzz(t *testing.T) {
	t.Cleanup(func() {
		SetExecutorEnabled(true)
		SetScratchPooling(true)
		ConfigureExecutor(0)
	})
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		vocabN := 30 + rng.Intn(50)
		vocab := make([]string, vocabN)
		for i := range vocab {
			vocab[i] = fmt.Sprintf("term%c%d", 'a'+i%5, i)
		}
		nDocs := 100 + rng.Intn(200)
		type spec struct {
			id     string
			title  string
			body   string
			facet  string
			delete bool
		}
		specs := make([]spec, nDocs)
		for i := range specs {
			var b strings.Builder
			for w, wn := 0, 3+rng.Intn(25); w < wn; w++ {
				b.WriteString(vocab[rng.Intn(vocabN)])
				b.WriteByte(' ')
			}
			specs[i] = spec{
				id:     fmt.Sprintf("d%04d", i),
				title:  vocab[rng.Intn(vocabN)] + " " + vocab[rng.Intn(vocabN)],
				body:   b.String(),
				facet:  fmt.Sprint(rng.Intn(4)),
				delete: rng.Intn(10) == 0,
			}
		}
		randTerm := func() string { return vocab[rng.Intn(vocabN)] }
		queries := make([]Query, 0, 20)
		for i := 0; i < 20; i++ {
			switch rng.Intn(6) {
			case 0:
				queries = append(queries, TermQuery{Field: "body", Term: randTerm()})
			case 1:
				queries = append(queries, MatchQuery{Text: randTerm() + " " + randTerm()})
			case 2:
				queries = append(queries, MatchQuery{Text: randTerm() + " " + randTerm(), Operator: "and"})
			case 3:
				queries = append(queries, PhraseQuery{Field: "body", Text: randTerm() + " " + randTerm()})
			case 4:
				queries = append(queries, PrefixQuery{Field: "body", Prefix: "term" + string(rune('a'+rng.Intn(5)))})
			case 5:
				queries = append(queries, BoolQuery{
					Must:    []Query{MatchQuery{Text: randTerm()}},
					Should:  []Query{TermQuery{Field: "title", Term: randTerm()}},
					MustNot: []Query{TermQuery{Field: "body", Term: randTerm()}},
				})
			}
		}
		for _, n := range []int{1, 3, runtime.NumCPU()} {
			ix := New(WithShards(n))
			ix.SetFieldOptions("title", FieldOptions{Boost: 1.5})
			for _, sp := range specs {
				ix.Add(Document{
					ID:     sp.id,
					Fields: map[string]string{"title": sp.title, "body": sp.body},
					Stored: map[string]string{"facet": sp.facet},
				})
			}
			for _, sp := range specs {
				if sp.delete {
					ix.Delete(sp.id)
				}
			}
			// The full matrix: block-max early exit on and off, then
			// with a shared cache attached — the first pass fills it,
			// the second is answered from it. Every cell must be
			// bit-identical to the reference evaluator.
			runAll := func(stage string) {
				for qi, q := range queries {
					label := fmt.Sprintf("seed=%d shards=%d %s q%d(%T)", seed, n, stage, qi, q)
					mustEqualResults(t, label, ix.mustSearch(q, SearchOptions{}), refSearch(ix, q, SearchOptions{}))
					mustEqualResults(t, label+" top5", ix.mustSearch(q, SearchOptions{Limit: 5}), refSearch(ix, q, SearchOptions{Limit: 5}))
					if got, want := ix.mustCount(q, nil), refCount(ix, q, nil); got != want {
						t.Fatalf("%s: Count %d, want %d", label, got, want)
					}
				}
			}
			// Scheduling dimension: the shared shard executor off (legacy
			// one-goroutine-per-shard fan-out), resized to a single
			// worker, and with request-scratch pooling disabled. Rankings
			// must be bit-identical under every scheduling policy.
			SetExecutorEnabled(false)
			runAll("executor-off")
			SetExecutorEnabled(true)
			ConfigureExecutor(1)
			runAll("exec-one-worker")
			ConfigureExecutor(0)
			SetScratchPooling(false)
			runAll("scratch-off")
			SetScratchPooling(true)
			if n == 3 {
				// Saturation: the same queries from enough concurrent
				// goroutines to keep every pool worker busy, so the
				// adaptive fan-out degrades queries to inline execution
				// mid-stream. Each concurrent result must still equal the
				// reference computed before the stampede.
				wantTop := make([][]Result, len(queries))
				for qi, q := range queries {
					wantTop[qi] = refSearch(ix, q, SearchOptions{Limit: 5})
				}
				var wg sync.WaitGroup
				errc := make(chan error, 8)
				for g := 0; g < 8; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for rep := 0; rep < 3; rep++ {
							for qi, q := range queries {
								got, err := ix.SearchContext(context.Background(), q, SearchOptions{Limit: 5})
								if err != nil {
									errc <- err
									return
								}
								want := wantTop[qi]
								if len(got) != len(want) {
									errc <- fmt.Errorf("seed=%d saturated q%d: %d hits, want %d", seed, qi, len(got), len(want))
									return
								}
								for i := range want {
									if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
										errc <- fmt.Errorf("seed=%d saturated q%d hit %d: got %s@%v, want %s@%v",
											seed, qi, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
										return
									}
								}
							}
						}
					}()
				}
				wg.Wait()
				close(errc)
				for err := range errc {
					t.Fatal(err)
				}
			}
			runAll("early-exit")
			// Fuzz corpora are tiny and dense, so the density fallback
			// routes most disjunctions to the accumulator; forcing the
			// block-max evaluator keeps WAND itself under fuzz.
			ix.wandDenseForce.Store(true)
			runAll("wand-forced")
			ix.wandDenseForce.Store(false)
			ix.SetEarlyExit(false)
			runAll("exhaustive")
			ix.SetEarlyExit(true)
			c := NewCache(8 << 20)
			ix.AttachCache(c)
			runAll("cache-cold")
			runAll("cache-warm")
			if st := c.Stats(); st.Hits == 0 {
				t.Fatalf("seed=%d shards=%d: warm pass never hit the cache: %+v", seed, n, st)
			}
			// Mapped dimension: the same corpus served from snapshot
			// views must match the heap index and the reference
			// evaluator cell for cell, before and after copy-on-write.
			mx := mappedCopy(t, ix)
			compareMapped := func(stage string) {
				for qi, q := range queries {
					label := fmt.Sprintf("seed=%d shards=%d %s q%d(%T)", seed, n, stage, qi, q)
					mustEqualResults(t, label, mx.mustSearch(q, SearchOptions{}), ix.mustSearch(q, SearchOptions{}))
					mustEqualResults(t, label+" ref", mx.mustSearch(q, SearchOptions{Limit: 5}), refSearch(mx, q, SearchOptions{Limit: 5}))
					if got, want := mx.mustCount(q, nil), ix.mustCount(q, nil); got != want {
						t.Fatalf("%s: mapped Count %d, want %d", label, got, want)
					}
				}
			}
			compareMapped("mapped")
			// Cache states over mapped views: a cold pass fills the
			// shared cache from lazily decoded postings, the warm pass
			// answers from it, and the CoW mutation below must
			// invalidate by generation stamp — with the cache still
			// attached throughout.
			mc := NewCache(8 << 20)
			mx.AttachCache(mc)
			compareMapped("mapped-cache-cold")
			compareMapped("mapped-cache-warm")
			if st := mc.Stats(); st.Hits == 0 {
				t.Fatalf("seed=%d shards=%d: mapped warm pass never hit the cache: %+v", seed, n, st)
			}
			for i := 0; i < 5 && i < len(specs); i++ {
				doc := Document{
					ID:     specs[i].id,
					Fields: map[string]string{"title": specs[i].title, "body": specs[i].body + " " + vocab[i%vocabN]},
					Stored: map[string]string{"facet": specs[i].facet},
				}
				ix.Add(doc)
				mx.Add(doc)
			}
			compareMapped("mapped-cow")
		}
	}
}
