package index

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Shared uvarint codec. The same primitives encode both the snapshot
// format (persist.go) and the hot in-memory posting lists below, so
// the on-disk and resident representations cannot drift: a posting
// decoded from a snapshot re-encodes to identical bytes.

// binWriter accumulates a uvarint binary payload.
type binWriter struct{ buf []byte }

func (w *binWriter) uvarint(x int) { w.buf = binary.AppendUvarint(w.buf, uint64(x)) }
func (w *binWriter) str(s string)  { w.uvarint(len(s)); w.buf = append(w.buf, s...) }
func (w *binWriter) strmap(m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.uvarint(len(keys))
	for _, k := range keys {
		w.str(k)
		w.str(m[k])
	}
}

// Fixed-width little-endian integers for the v3 offset directories:
// directories are random-accessed straight out of mapped bytes, so
// their entries cannot be varints.
func (w *binWriter) u64(x uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, x)
}
func (w *binWriter) u32(x uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, x)
}

// reserve appends n zero bytes and returns their offset, for
// directories whose entries are patched in after the sections they
// point at have been written.
func (w *binWriter) reserve(n int) int {
	off := len(w.buf)
	w.buf = append(w.buf, make([]byte, n)...)
	return off
}

func (w *binWriter) patchU64(off int, x uint64) {
	binary.LittleEndian.PutUint64(w.buf[off:], x)
}

// binReader decodes a uvarint binary payload with bounds checking.
type binReader struct {
	buf []byte
	off int
}

var errShardPayload = fmt.Errorf("index: corrupt shard payload")

func (r *binReader) uvarint() (int, error) {
	x, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 || x > 1<<56 {
		return 0, errShardPayload
	}
	r.off += n
	return int(x), nil
}

// count reads an element count: every counted element occupies at
// least one payload byte, so a count beyond the remaining bytes is
// corruption, caught before it can size an allocation.
func (r *binReader) count() (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > len(r.buf)-r.off {
		return 0, errShardPayload
	}
	return n, nil
}

func (r *binReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n < 0 || r.off+n > len(r.buf) {
		return "", errShardPayload
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s, nil
}

func (r *binReader) strmap() (map[string]string, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.str()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

// Block-compressed posting lists: the in-memory representation of one
// (field, term)'s postings. Document ordinals are strictly increasing
// per shard, so they delta+uvarint encode into a byte stream split
// into blocks of postingBlockSize entries; each block's skip entry
// records its first ordinal and byte offset, so point lookups (tfAt,
// the phrase anchor scorer) decode one block instead of the whole
// list.
//
// Scoring needs only (ordinal, term frequency); term positions —
// needed by PhraseQuery alone — live in a separate byte stream that
// scoring never touches, decoded lazily in lockstep with the doc
// stream only when a phrase asks for them.
const postingBlockSize = 128

// blockMeta is the skip entry for one block of postings. Besides the
// decode anchors (first ordinal, byte offsets into both streams) it
// carries the block's maximum term frequency — the input to the
// Block-Max early-exit bound: a ranker's per-(field,term) scorer turns
// maxTF into an upper bound on any document's score inside the block,
// so the top-k loop can skip the whole block without decoding it when
// that bound cannot beat the running threshold. posOff is the byte
// offset of the block's first position run, so phrase evaluation
// seeks straight to a candidate block's positions instead of
// length-walking every run before it.
type blockMeta struct {
	firstDoc int // ordinal of the block's first posting
	docOff   int // byte offset of the block in docTF
	posOff   int // byte offset of the block's first position run in posBuf
	maxTF    int // maximum term frequency within the block
}

type postingList struct {
	n       int // posting (document) count
	lastDoc int // last appended ordinal, for delta appends
	maxTF   int // maximum term frequency across the whole list
	// docTF holds (docDelta, tf) uvarint pairs; a block's first entry
	// encodes delta 0 relative to its skip entry's firstDoc, so blocks
	// decode independently.
	docTF []byte
	// posBuf holds each posting's tf positions: first absolute, then
	// deltas. Consumed only by phrase evaluation and persistence.
	posBuf []byte
	blocks []blockMeta
}

// appendPosting adds a posting for doc with the given term positions
// (tf = len(positions)). Ordinals must arrive strictly increasing;
// positions must be non-decreasing.
func (l *postingList) appendPosting(doc int, positions []int) {
	prev := l.lastDoc
	if l.n%postingBlockSize == 0 {
		l.blocks = append(l.blocks, blockMeta{firstDoc: doc, docOff: len(l.docTF), posOff: len(l.posBuf)})
		prev = doc
	}
	l.docTF = binary.AppendUvarint(l.docTF, uint64(doc-prev))
	l.docTF = binary.AppendUvarint(l.docTF, uint64(len(positions)))
	pp := 0
	for i, p := range positions {
		if i == 0 {
			l.posBuf = binary.AppendUvarint(l.posBuf, uint64(p))
		} else {
			l.posBuf = binary.AppendUvarint(l.posBuf, uint64(p-pp))
		}
		pp = p
	}
	if tf := len(positions); tf > 0 {
		b := &l.blocks[len(l.blocks)-1]
		if tf > b.maxTF {
			b.maxTF = tf
		}
		if tf > l.maxTF {
			l.maxTF = tf
		}
	}
	l.lastDoc = doc
	l.n++
}

// numBlocks returns the number of posting blocks in the list.
func (l *postingList) numBlocks() int { return len(l.blocks) }

// blockEnd returns the index one past the last posting of block b.
func (l *postingList) blockEnd(b int) int {
	end := (b + 1) * postingBlockSize
	if end > l.n {
		end = l.n
	}
	return end
}

// blockLastDoc returns the last document ordinal covered by block b:
// lastDoc for the final block, one less than the next block's first
// ordinal otherwise. (The true last ordinal of a non-final block is
// not recorded, but any doc beyond this bound lives in a later
// block, which is all the skip logic needs.)
func (l *postingList) blockLastDoc(b int) int {
	if b+1 < len(l.blocks) {
		return l.blocks[b+1].firstDoc - 1
	}
	return l.lastDoc
}

// blockFor returns the index of the last block whose firstDoc <= doc.
func (l *postingList) blockFor(doc int) int {
	return sort.Search(len(l.blocks), func(i int) bool { return l.blocks[i].firstDoc > doc }) - 1
}

// postingIter streams (doc, tf) pairs out of a list. Positions are
// not decoded; pair it with a positionIter when they are needed.
type postingIter struct {
	l   *postingList
	i   int // index of the next posting
	off int // byte offset of the next posting in docTF
	doc int
	tf  int
}

func (l *postingList) iter() postingIter { return postingIter{l: l} }

func (it *postingIter) next() bool {
	if it.i >= it.l.n {
		return false
	}
	if it.i%postingBlockSize == 0 {
		it.doc = it.l.blocks[it.i/postingBlockSize].firstDoc
	}
	delta, n := binary.Uvarint(it.l.docTF[it.off:])
	it.off += n
	it.doc += int(delta)
	tf, n := binary.Uvarint(it.l.docTF[it.off:])
	it.off += n
	it.tf = int(tf)
	it.i++
	return true
}

// positionIter streams position runs out of posBuf. It must advance
// in lockstep with a postingIter: for every posting, call exactly one
// of read (tf positions, decoded) or skip (tf positions, scanned
// without decoding).
type positionIter struct {
	buf []byte
	off int
}

func (l *postingList) positions() positionIter { return positionIter{buf: l.posBuf} }

func (p *positionIter) read(tf int, dst []int) []int {
	dst = dst[:0]
	cur := 0
	for k := 0; k < tf; k++ {
		d, n := binary.Uvarint(p.buf[p.off:])
		p.off += n
		if k == 0 {
			cur = int(d)
		} else {
			cur += int(d)
		}
		dst = append(dst, cur)
	}
	return dst
}

func (p *positionIter) skip(tf int) {
	for k := 0; k < tf; k++ {
		for p.buf[p.off]&0x80 != 0 {
			p.off++
		}
		p.off++
	}
}

// tfAt returns the term frequency for ordinal doc, decoding only the
// block that can contain it. ok is false when the list has no posting
// for doc.
func (l *postingList) tfAt(doc int) (tf int, ok bool) {
	if l.n == 0 || doc < l.blocks[0].firstDoc || doc > l.lastDoc {
		return 0, false
	}
	// Last block whose firstDoc <= doc.
	b := sort.Search(len(l.blocks), func(i int) bool { return l.blocks[i].firstDoc > doc }) - 1
	cur := l.blocks[b].firstDoc
	off := l.blocks[b].docOff
	end := b*postingBlockSize + postingBlockSize
	if end > l.n {
		end = l.n
	}
	for i := b * postingBlockSize; i < end; i++ {
		delta, n := binary.Uvarint(l.docTF[off:])
		off += n
		cur += int(delta)
		f, n := binary.Uvarint(l.docTF[off:])
		off += n
		if cur == doc {
			return int(f), true
		}
		if cur > doc {
			return 0, false
		}
	}
	return 0, false
}
