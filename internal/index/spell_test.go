package index

import (
	"fmt"
	"testing"
)

func spellIndex(t testing.TB) *Index {
	t.Helper()
	ix := New()
	docs := []Document{}
	// "zelda" appears in many docs, "zelds" in none; "halo" common.
	for i := 0; i < 10; i++ {
		docs = append(docs, Document{
			ID:     fmt.Sprintf("z%d", i),
			Fields: map[string]string{"title": "zelda adventure"},
		})
	}
	for i := 0; i < 3; i++ {
		docs = append(docs, Document{
			ID:     fmt.Sprintf("h%d", i),
			Fields: map[string]string{"title": "halo strategy"},
		})
	}
	docs = append(docs, Document{ID: "x", Fields: map[string]string{"title": "zebra documentary"}})
	if err := ix.AddBatch(docs); err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestSuggestTermsCorrectsTypo(t *testing.T) {
	ix := spellIndex(t)
	sugs := ix.SuggestTerms("title", "zelta", 3)
	if len(sugs) == 0 || sugs[0] != "zelda" {
		t.Fatalf("suggestions = %v", sugs)
	}
}

func TestSuggestTermsTransposition(t *testing.T) {
	ix := spellIndex(t)
	sugs := ix.SuggestTerms("title", "ahlo", 3)
	if len(sugs) == 0 || sugs[0] != "halo" {
		t.Fatalf("transposed suggestions = %v", sugs)
	}
}

func TestSuggestTermsExactTermNoCorrection(t *testing.T) {
	ix := spellIndex(t)
	if sugs := ix.SuggestTerms("title", "zelda", 3); sugs != nil {
		t.Fatalf("exact term corrected: %v", sugs)
	}
}

func TestSuggestTermsPrefersFrequent(t *testing.T) {
	ix := spellIndex(t)
	// "zeldb" is distance 1 from "zelda" (df=10); "zebra" is farther.
	sugs := ix.SuggestTerms("title", "zeldb", 3)
	if len(sugs) == 0 || sugs[0] != "zelda" {
		t.Fatalf("suggestions = %v", sugs)
	}
}

func TestSuggestTermsNoCandidates(t *testing.T) {
	ix := spellIndex(t)
	if sugs := ix.SuggestTerms("title", "qqqqqqq", 3); len(sugs) != 0 {
		t.Fatalf("far word produced %v", sugs)
	}
	if sugs := ix.SuggestTerms("missingfield", "zelta", 3); sugs != nil {
		t.Fatalf("missing field produced %v", sugs)
	}
	if sugs := ix.SuggestTerms("title", "", 3); sugs != nil {
		t.Fatalf("empty term produced %v", sugs)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		max  int
		want int
	}{
		{"abc", "abc", 2, 0},
		{"abc", "abd", 2, 1},
		{"abc", "acb", 2, 1}, // transposition
		{"abc", "xyz", 2, -1},
		{"kitten", "sitting", 2, -1},
		{"zelda", "zelta", 2, 1},
		{"a", "abc", 2, 2},
		{"a", "abcd", 2, -1}, // length gap exceeds band
		{"", "ab", 2, 2},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b, c.max); got != c.want {
			t.Errorf("editDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceSymmetric(t *testing.T) {
	pairs := [][2]string{{"zelda", "zelta"}, {"halo", "ahlo"}, {"game", "games"}}
	for _, p := range pairs {
		if editDistance(p[0], p[1], 2) != editDistance(p[1], p[0], 2) {
			t.Errorf("asymmetric distance for %v", p)
		}
	}
}
