package index

import (
	"fmt"
	"testing"
)

func TestTFIDFRankerProducesResults(t *testing.T) {
	ix := sampleIndex(t)
	ix.SetRanker(RankerTFIDF)
	rs := ix.mustSearch(MatchQuery{Text: "zelda adventure"}, SearchOptions{})
	if len(rs) == 0 {
		t.Fatal("tfidf returned nothing")
	}
	for _, r := range rs {
		if r.Score <= 0 {
			t.Errorf("non-positive tfidf score %f", r.Score)
		}
	}
	// Same match set as BM25, possibly different order.
	ix.SetRanker(RankerBM25)
	bm := ix.mustSearch(MatchQuery{Text: "zelda adventure"}, SearchOptions{})
	if len(bm) != len(rs) {
		t.Fatalf("match sets differ: %d vs %d", len(rs), len(bm))
	}
}

func TestRankersDifferOnLengthNormalization(t *testing.T) {
	// BM25 penalizes long documents; lnc TF-IDF here does not. A term
	// appearing once in a short doc vs once in a very long doc ranks
	// differently under BM25 but identically under this TF-IDF.
	build := func(r Ranker) []Result {
		ix := New()
		ix.SetRanker(r)
		long := "target "
		for i := 0; i < 200; i++ {
			long += fmt.Sprintf("filler%d ", i)
		}
		ix.Add(Document{ID: "short", Fields: map[string]string{"b": "target word"}})
		ix.Add(Document{ID: "long", Fields: map[string]string{"b": long}})
		return ix.mustSearch(MatchQuery{Text: "target"}, SearchOptions{})
	}
	bm := build(RankerBM25)
	if len(bm) != 2 || bm[0].ID != "short" {
		t.Fatalf("bm25 order = %v", bm)
	}
	if bm[0].Score <= bm[1].Score {
		t.Error("bm25 did not penalize the long document")
	}
	ti := build(RankerTFIDF)
	if len(ti) != 2 {
		t.Fatal("tfidf lost a match")
	}
	if ti[0].Score != ti[1].Score {
		t.Errorf("tfidf length-normalized unexpectedly: %f vs %f", ti[0].Score, ti[1].Score)
	}
}
