package index

import (
	"context"
	"math"
	"sort"
	"strings"
)

// This file keeps the pre-iterator, map-based query evaluator alive
// as a test-only reference. It reproduces the old evaluation pipeline
// — one map[int]float64 per query node, full sort of every match in
// shard.search — on top of the block-compressed posting storage, so
// TestEvalEquivalence can pin the production iterator/accumulator
// pipeline bit-identical to it: same scores (float equality, not
// tolerance), same ordering, for every query type and shard count.

// refSearch is the old Index.Search: reference evaluation per shard,
// full sort, k-way merge, pagination.
func refSearch(ix *Index, q Query, opts SearchOptions) []Result {
	if q == nil {
		q = AllQuery{}
	}
	r := ix.ring.Load()
	st := ix.gatherStats(context.Background(), r, q)
	want := 0
	if opts.Limit > 0 {
		want = opts.Offset + opts.Limit
	}
	parts := make([][]shardHit, len(r.shards))
	eachShard(r, func(i int, s *shard) {
		parts[i] = refSearchShard(s, q, st, opts.Filters, want)
	})
	merged := mergeHits(r.shards, parts, want)
	if opts.Offset > 0 {
		if opts.Offset >= len(merged) {
			return nil
		}
		merged = merged[opts.Offset:]
	}
	if opts.Limit > 0 && len(merged) > opts.Limit {
		merged = merged[:opts.Limit]
	}
	hits := make([]Result, len(merged))
	for i, m := range merged {
		hits[i] = m.res
	}
	return hits
}

func refCount(ix *Index, q Query, filters map[string]string) int {
	if q == nil {
		q = AllQuery{}
	}
	r := ix.ring.Load()
	st := ix.gatherStats(context.Background(), r, q)
	n := 0
	for _, s := range r.shards {
		s.mu.RLock()
		for ord := range refEval(q, s, st) {
			doc := s.docAt(ord)
			if doc.ID != "" && matchFilters(doc, filters) {
				n++
			}
		}
		s.mu.RUnlock()
	}
	return n
}

func refFacets(ix *Index, q Query, field string, filters map[string]string) []FacetCount {
	if q == nil {
		q = AllQuery{}
	}
	r := ix.ring.Load()
	st := ix.gatherStats(context.Background(), r, q)
	parts := make([]map[string]int, 0, len(r.shards))
	for _, s := range r.shards {
		s.mu.RLock()
		counts := make(map[string]int)
		for ord := range refEval(q, s, st) {
			doc := s.docAt(ord)
			if doc.ID == "" || !matchFilters(doc, filters) {
				continue
			}
			if v := doc.Stored[field]; v != "" {
				counts[v]++
			}
		}
		s.mu.RUnlock()
		parts = append(parts, counts)
	}
	return mergeFacets(parts)
}

// refSearchShard is the old shard.search: score everything, sort
// everything, truncate.
func refSearchShard(s *shard, q Query, st *searchStats, filters map[string]string, cap int) []shardHit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	scores := refEval(q, s, st)
	hits := make([]shardHit, 0, len(scores))
	for ord, score := range scores {
		doc := s.docAt(ord)
		if doc.ID == "" {
			continue
		}
		if !matchFilters(doc, filters) {
			continue
		}
		hits = append(hits, shardHit{ord: ord, res: Result{ID: doc.ID, Score: score, Stored: doc.Stored}})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].res.Score != hits[j].res.Score {
			return hits[i].res.Score > hits[j].res.Score
		}
		return hits[i].res.ID < hits[j].res.ID
	})
	if cap > 0 && len(hits) > cap {
		hits = hits[:cap]
	}
	return hits
}

// refEval dispatches to the old per-node map evaluators.
func refEval(q Query, s *shard, st *searchStats) map[int]float64 {
	switch t := q.(type) {
	case AllQuery:
		return refEvalAll(s)
	case TermQuery:
		return refEvalTerm(t, s, st)
	case MatchQuery:
		return refEvalMatch(t, s, st)
	case PhraseQuery:
		return refEvalPhrase(t, s, st)
	case PrefixQuery:
		return refEvalPrefix(t, s)
	case BoolQuery:
		return refEvalBool(t, s, st)
	}
	return nil
}

func refEvalAll(s *shard) map[int]float64 {
	out := make(map[int]float64, s.live)
	for ord, n := 0, s.numDocs(); ord < n; ord++ {
		if s.liveAt(ord) {
			out[ord] = 1
		}
	}
	return out
}

// refScoreTerm is the old shard.scoreTerm: materialize a score map
// for every live doc in the posting list.
func refScoreTerm(s *shard, field, term string, st *searchStats) map[int]float64 {
	fp := s.fields[field]
	if fp == nil {
		return nil
	}
	list := fp.lookup(term)
	if list == nil || list.n == 0 {
		return nil
	}
	df := st.df[fieldTerm{field, term}]
	if df == 0 {
		return nil
	}
	idf := math.Log(1 + (float64(st.live)-float64(df)+0.5)/(float64(df)+0.5))
	avgLen := st.avgLen[field]
	if avgLen == 0 {
		avgLen = 1
	}
	boost := fp.opts.Boost
	if boost == 0 {
		boost = 1
	}
	out := make(map[int]float64, list.n)
	it := list.iter()
	for it.next() {
		if !s.liveAt(it.doc) {
			continue
		}
		tf := float64(it.tf)
		var score float64
		switch st.ranker {
		case RankerTFIDF:
			score = (1 + math.Log(tf)) * math.Log(float64(st.live+1)/float64(df))
		default: // BM25
			dl := float64(fp.lenAt(it.doc))
			denom := tf + st.k1*(1-st.b+st.b*dl/avgLen)
			score = idf * (tf * (st.k1 + 1)) / denom
		}
		out[it.doc] = boost * score
	}
	return out
}

func refEvalTerm(q TermQuery, s *shard, st *searchStats) map[int]float64 {
	fp := s.fields[q.Field]
	if fp == nil {
		return nil
	}
	terms := st.analyzedTerms(fp, q.Field, q.Term)
	if len(terms) == 0 {
		return nil
	}
	return refScoreTerm(s, q.Field, terms[0], st)
}

func refEvalMatch(q MatchQuery, s *shard, st *searchStats) map[int]float64 {
	fields := q.Fields
	if len(fields) == 0 {
		for f := range s.fields {
			fields = append(fields, f)
		}
		sort.Strings(fields)
	}
	type termScores = map[int]float64
	var perTerm []termScores
	rawTerms := strings.Fields(strings.ToLower(q.Text))
	if len(rawTerms) == 0 {
		return nil
	}
	for _, raw := range rawTerms {
		acc := make(termScores)
		for _, field := range fields {
			fp := s.fields[field]
			if fp == nil {
				continue
			}
			for _, t := range st.analyzedTerms(fp, field, raw) {
				for ord, sc := range refScoreTerm(s, field, t, st) {
					if sc > acc[ord] {
						acc[ord] = sc // max across fields
					}
				}
			}
		}
		perTerm = append(perTerm, acc)
	}
	out := make(map[int]float64)
	if strings.EqualFold(q.Operator, "and") {
		first := perTerm[0]
	outer:
		for ord, sc := range first {
			total := sc
			for _, ts := range perTerm[1:] {
				s2, ok := ts[ord]
				if !ok {
					continue outer
				}
				total += s2
			}
			out[ord] = total
		}
		return out
	}
	for _, ts := range perTerm {
		for ord, sc := range ts {
			out[ord] += sc
		}
	}
	return out
}

func refEvalPhrase(q PhraseQuery, s *shard, st *searchStats) map[int]float64 {
	fp := s.fields[q.Field]
	if fp == nil {
		return nil
	}
	toks := st.analyzedToks(fp, q.Field, q.Text)
	if len(toks) == 0 {
		return nil
	}
	if len(toks) == 1 {
		return refScoreTerm(s, q.Field, toks[0].Term, st)
	}
	// decodePostings inflates a compressed list back to the old
	// in-memory shape: (doc, positions) pairs.
	decodePostings := func(list *postingList) map[int][]int {
		out := make(map[int][]int)
		if list == nil {
			return out
		}
		it := list.iter()
		pi := list.positions()
		for it.next() {
			out[it.doc] = pi.read(it.tf, nil)
		}
		return out
	}
	base := toks[0].Position
	cand := make(map[int][]int)
	for doc, positions := range decodePostings(fp.lookup(toks[0].Term)) {
		if s.liveAt(doc) {
			cand[doc] = positions
		}
	}
	for _, tok := range toks[1:] {
		gap := tok.Position - base
		next := make(map[int][]int)
		for doc, positions := range decodePostings(fp.lookup(tok.Term)) {
			starts, ok := cand[doc]
			if !ok {
				continue
			}
			posSet := make(map[int]bool, len(positions))
			for _, pos := range positions {
				posSet[pos] = true
			}
			var kept []int
			for _, start := range starts {
				if posSet[start+gap] {
					kept = append(kept, start)
				}
			}
			if len(kept) > 0 {
				next[doc] = kept
			}
		}
		cand = next
		if len(cand) == 0 {
			return nil
		}
	}
	out := make(map[int]float64, len(cand))
	for ord, starts := range cand {
		base := refScoreTerm(s, q.Field, toks[0].Term, st)[ord]
		out[ord] = base * (1 + 0.5*float64(len(starts)))
	}
	return out
}

func refEvalPrefix(q PrefixQuery, s *shard) map[int]float64 {
	fp := s.fields[q.Field]
	if fp == nil {
		return nil
	}
	prefix := strings.ToLower(q.Prefix)
	out := make(map[int]float64)
	for _, term := range fp.sortedTermsAll() {
		if !strings.HasPrefix(term, prefix) {
			continue
		}
		list := fp.lookup(term)
		if list == nil {
			continue
		}
		it := list.iter()
		for it.next() {
			if s.liveAt(it.doc) {
				out[it.doc] += 1
			}
		}
	}
	return out
}

func refEvalBool(q BoolQuery, s *shard, st *searchStats) map[int]float64 {
	var out map[int]float64
	if len(q.Must) > 0 {
		out = refEval(q.Must[0], s, st)
		for _, sub := range q.Must[1:] {
			s2 := refEval(sub, s, st)
			merged := make(map[int]float64)
			for ord, sc := range out {
				if extra, ok := s2[ord]; ok {
					merged[ord] = sc + extra
				}
			}
			out = merged
		}
	} else {
		out = refEvalAll(s)
		for ord := range out {
			out[ord] = 0
		}
	}
	if len(q.Should) > 0 {
		any := make(map[int]float64)
		for _, sub := range q.Should {
			for ord, sc := range refEval(sub, s, st) {
				any[ord] += sc
			}
		}
		if len(q.Must) == 0 {
			merged := make(map[int]float64)
			for ord, sc := range any {
				if _, ok := out[ord]; ok {
					merged[ord] = sc
				}
			}
			out = merged
		} else {
			for ord := range out {
				out[ord] += any[ord]
			}
		}
	}
	for _, sub := range q.MustNot {
		for ord := range refEval(sub, s, st) {
			delete(out, ord)
		}
	}
	return out
}
