package index

// FacetCount is one stored-field value with its hit count.
type FacetCount struct {
	Value string
	N     int
}

// Facets counts the distinct values of a stored field across every
// live document matching q (before pagination). Search applications
// use this for the filter sidebar: producer counts next to inventory
// results, site counts next to web results. Each shard counts its own
// matches in parallel; the per-shard maps are summed before sorting,
// so counts are exact across shard boundaries.
func (ix *Index) Facets(q Query, field string, filters map[string]string) []FacetCount {
	if q == nil {
		q = AllQuery{}
	}
	r := ix.ring.Load()
	return ix.facetsWith(r, ix.gatherStats(r, q), q, field, filters)
}

func (ix *Index) facetsWith(r *ring, st *searchStats, q Query, field string, filters map[string]string) []FacetCount {
	parts := make([]map[string]int, len(r.shards))
	eachShard(r, func(i int, s *shard) {
		parts[i] = s.facets(q, st, field, filters)
	})
	return mergeFacets(parts)
}
