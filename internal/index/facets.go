package index

import "sort"

// FacetCount is one stored-field value with its hit count.
type FacetCount struct {
	Value string
	N     int
}

// Facets counts the distinct values of a stored field across every
// live document matching q (before pagination). Search applications
// use this for the filter sidebar: producer counts next to inventory
// results, site counts next to web results.
func (ix *Index) Facets(q Query, field string, filters map[string]string) []FacetCount {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if q == nil {
		q = AllQuery{}
	}
	counts := make(map[string]int)
	for ord := range q.eval(ix) {
		doc := ix.docs[ord]
		if doc.ID == "" || !matchFilters(doc, filters) {
			continue
		}
		if v := doc.Stored[field]; v != "" {
			counts[v]++
		}
	}
	out := make([]FacetCount, 0, len(counts))
	for v, n := range counts {
		out = append(out, FacetCount{Value: v, N: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		return out[i].Value < out[j].Value
	})
	return out
}
