package index

import "context"

// FacetCount is one stored-field value with its hit count.
type FacetCount struct {
	Value string
	N     int
}

// FacetsContext counts the distinct values of a stored field across
// every live document matching q (before pagination). Search
// applications use this for the filter sidebar: producer counts next
// to inventory results, site counts next to web results. Each shard
// counts its own matches in parallel; the per-shard maps are summed
// before sorting, so counts are exact across shard boundaries.
// Cancelling ctx stops evaluation within one posting block per shard
// and returns ctx.Err().
func (ix *Index) FacetsContext(ctx context.Context, q Query, field string, filters map[string]string) ([]FacetCount, error) {
	if q == nil {
		q = AllQuery{}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := ix.ring.Load()
	ref := ix.cache.Load()
	st := ix.stampFor(r)
	if ref != nil {
		if key, ok := facetsKey(q, field, filters); ok {
			ck := ref.key(kindFacets, key)
			if v, ok := ref.c.get(ck, st); ok {
				return copyFacets(v.([]FacetCount)), nil
			}
			fc, err := ix.facetsWith(ctx, r, ix.gatherStats(ctx, r, q), q, field, filters)
			if err != nil {
				return nil, err
			}
			ref.c.put(ck, st, fc, facetBytes(fc))
			return copyFacets(fc), nil
		}
	}
	return ix.facetsWith(ctx, r, ix.gatherStats(ctx, r, q), q, field, filters)
}

func (ix *Index) facetsWith(ctx context.Context, r *ring, st *searchStats, q Query, field string, filters map[string]string) ([]FacetCount, error) {
	defer putSearchStats(st)
	parts := facetPartsPool.get(len(r.shards))
	defer facetPartsPool.put(parts)
	gen := st.gen.Load()
	ix.runShards(st, r, func(i int, s *shard) {
		if st.gen.Load() != gen {
			return
		}
		parts[i] = s.facets(ctx, q, st, field, filters)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return mergeFacets(parts), nil
}
