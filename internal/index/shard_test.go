package index

import (
	"fmt"
	"sync"
	"testing"
)

// shardCorpus builds the same moderately sized corpus into an index
// with the given shard count: enough docs that every shard of a
// 4-shard index owns several, with shared and unique terms, stored
// facet values, and varied field lengths.
func shardCorpus(t testing.TB, opts ...Option) *Index {
	t.Helper()
	ix := New(opts...)
	ix.SetFieldOptions("title", FieldOptions{Boost: 2})
	producers := []string{"Nintendo", "Ensemble", "Epic"}
	for i := 0; i < 60; i++ {
		body := fmt.Sprintf("shared corpus document number%d", i)
		if i%3 == 0 {
			body += " zelda adventure exploration"
		}
		if i%4 == 0 {
			body += " halo strategy"
		}
		ix.Add(Document{
			ID:     fmt.Sprintf("doc%02d", i),
			Fields: map[string]string{"title": fmt.Sprintf("Title %d", i), "body": body},
			Stored: map[string]string{"producer": producers[i%len(producers)]},
		})
	}
	return ix
}

func shardQueries() map[string]Query {
	return map[string]Query{
		"match-or":  MatchQuery{Text: "zelda strategy"},
		"match-and": MatchQuery{Text: "zelda halo", Operator: "and"},
		"term":      TermQuery{Field: "body", Term: "adventure"},
		"phrase":    PhraseQuery{Field: "body", Text: "zelda adventure"},
		"prefix":    PrefixQuery{Field: "body", Prefix: "numb"},
		"bool": BoolQuery{
			Must:    []Query{MatchQuery{Text: "shared"}},
			Should:  []Query{TermQuery{Field: "body", Term: "halo"}},
			MustNot: []Query{TermQuery{Field: "body", Term: "number7"}},
		},
		"all": AllQuery{},
	}
}

// TestWithShardsEquivalence: every query type must return identical
// IDs, identical scores (BM25 global stats are aggregated exactly) and
// identical order no matter how many shards the index is split into.
func TestWithShardsEquivalence(t *testing.T) {
	base := shardCorpus(t, WithShards(1))
	for _, n := range []int{2, 3, 8} {
		sharded := shardCorpus(t, WithShards(n))
		if got := sharded.NumShards(); got != n {
			t.Fatalf("NumShards = %d, want %d", got, n)
		}
		for name, q := range shardQueries() {
			want := base.mustSearch(q, SearchOptions{})
			got := sharded.mustSearch(q, SearchOptions{})
			if len(want) != len(got) {
				t.Fatalf("shards=%d %s: %d hits, want %d", n, name, len(got), len(want))
			}
			for i := range want {
				if want[i].ID != got[i].ID || want[i].Score != got[i].Score {
					t.Fatalf("shards=%d %s hit %d: got %s@%v, want %s@%v",
						n, name, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
				}
			}
			if bc, sc := base.mustCount(q, nil), sharded.mustCount(q, nil); bc != sc {
				t.Fatalf("shards=%d %s: Count %d, want %d", n, name, sc, bc)
			}
		}
		if bd, sd := base.DocFreq("body", "zelda"), sharded.DocFreq("body", "zelda"); bd != sd {
			t.Fatalf("shards=%d DocFreq %d, want %d", n, sd, bd)
		}
	}
}

// TestWithShards1PreRefactorRanking pins the single-shard path to the
// pre-refactor rankings of the classic sample corpus: title boost and
// BM25 length normalization must place the shorter boosted title first.
func TestWithShards1PreRefactorRanking(t *testing.T) {
	ix := New(WithShards(1))
	ix.SetFieldOptions("title", FieldOptions{Boost: 2})
	docs := []Document{
		{ID: "g1", Fields: map[string]string{"title": "The Legend of Zelda", "desc": "An adventure game with puzzles and exploration"}, Stored: map[string]string{"producer": "Nintendo"}},
		{ID: "g2", Fields: map[string]string{"title": "Halo Wars", "desc": "A strategy game set in the Halo universe"}, Stored: map[string]string{"producer": "Ensemble"}},
		{ID: "g3", Fields: map[string]string{"title": "Gears of War", "desc": "A shooter game with cover mechanics"}, Stored: map[string]string{"producer": "Epic"}},
		{ID: "g4", Fields: map[string]string{"title": "Zelda Spirit Tracks", "desc": "A handheld adventure game in the Zelda series"}, Stored: map[string]string{"producer": "Nintendo"}},
	}
	if err := ix.AddBatch(docs); err != nil {
		t.Fatal(err)
	}
	got := ids(ix.mustSearch(MatchQuery{Text: "zelda"}, SearchOptions{}))
	if len(got) != 2 || got[0] != "g1" || got[1] != "g4" {
		t.Fatalf("zelda ranking = %v, want [g1 g4]", got)
	}
	if got := ids(ix.mustSearch(MatchQuery{Text: "zelda puzzles", Operator: "and"}, SearchOptions{})); len(got) != 1 || got[0] != "g1" {
		t.Fatalf("AND ranking = %v, want [g1]", got)
	}
}

// TestCrossShardFacetsSummation: facet counts must be exact sums over
// documents that live in different shards.
func TestCrossShardFacetsSummation(t *testing.T) {
	for _, n := range []int{1, 4} {
		ix := shardCorpus(t, WithShards(n))
		got := ix.mustFacets(AllQuery{}, "producer", nil)
		if len(got) != 3 {
			t.Fatalf("shards=%d facets = %v", n, got)
		}
		total := 0
		for _, f := range got {
			total += f.N
			if f.N != 20 {
				t.Fatalf("shards=%d producer %s count = %d, want 20", n, f.Value, f.N)
			}
		}
		if total != 60 {
			t.Fatalf("shards=%d facet total = %d, want 60", n, total)
		}
		// Restricted query: every third doc mentions zelda.
		zelda := ix.mustFacets(MatchQuery{Text: "zelda"}, "producer", nil)
		zTotal := 0
		for _, f := range zelda {
			zTotal += f.N
		}
		if zTotal != 20 {
			t.Fatalf("shards=%d zelda facet total = %d, want 20", n, zTotal)
		}
	}
}

// TestDeleteCompactNonZeroShard deletes and compacts a document that
// routes to a shard other than shard 0, then verifies it is gone from
// search, facets and document-frequency stats.
func TestDeleteCompactNonZeroShard(t *testing.T) {
	ix := New(WithShards(4))
	r := ix.ring.Load()
	victim := ""
	for i := 0; i < 32 && victim == ""; i++ {
		id := fmt.Sprintf("pick%d", i)
		if r.shardFor(id) != r.shards[0] {
			victim = id
		}
	}
	if victim == "" {
		t.Fatal("no ID routed off shard 0")
	}
	ix.Add(Document{ID: victim, Fields: map[string]string{"body": "rarestterm common"}, Stored: map[string]string{"kind": "victim"}})
	ix.Add(Document{ID: "keeper", Fields: map[string]string{"body": "common words"}, Stored: map[string]string{"kind": "keeper"}})
	if !ix.Delete(victim) {
		t.Fatal("Delete returned false")
	}
	ix.Compact()
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
	if rs := ix.mustSearch(MatchQuery{Text: "rarestterm"}, SearchOptions{}); len(rs) != 0 {
		t.Fatalf("deleted doc still matches: %v", ids(rs))
	}
	if df := ix.DocFreq("body", "rarestterm"); df != 0 {
		t.Fatalf("post-compact df = %d", df)
	}
	for _, f := range ix.mustFacets(nil, "kind", nil) {
		if f.Value == "victim" {
			t.Fatalf("deleted doc still faceted: %v", f)
		}
	}
}

// TestTieBreakDeterministicAcrossShards: documents with identical
// content have identical scores; the cross-shard merge must order them
// by ascending ID regardless of which shard each landed in.
func TestTieBreakDeterministicAcrossShards(t *testing.T) {
	for _, n := range []int{1, 4, 7} {
		ix := New(WithShards(n))
		for i := 0; i < 40; i++ {
			ix.Add(Document{ID: fmt.Sprintf("tie%02d", i), Fields: map[string]string{"b": "identical content everywhere"}})
		}
		rs := ix.mustSearch(MatchQuery{Text: "identical"}, SearchOptions{})
		if len(rs) != 40 {
			t.Fatalf("shards=%d hits = %d", n, len(rs))
		}
		for i, r := range rs {
			if want := fmt.Sprintf("tie%02d", i); r.ID != want {
				t.Fatalf("shards=%d hit %d = %s, want %s", n, i, r.ID, want)
			}
			if r.Score != rs[0].Score {
				t.Fatalf("shards=%d unequal tie scores: %v vs %v", n, r.Score, rs[0].Score)
			}
		}
		// Pagination across the tie must line up with the full ordering.
		page := ix.mustSearch(MatchQuery{Text: "identical"}, SearchOptions{Limit: 10, Offset: 15})
		for i, r := range page {
			if want := rs[15+i].ID; r.ID != want {
				t.Fatalf("shards=%d page hit %d = %s, want %s", n, i, r.ID, want)
			}
		}
	}
}

// TestSuggestTermsAcrossShards: candidate document frequencies must be
// summed across shards so the most common correction wins even when
// its occurrences are spread over every shard.
func TestSuggestTermsAcrossShards(t *testing.T) {
	for _, n := range []int{1, 4} {
		ix := New(WithShards(n))
		for i := 0; i < 12; i++ {
			ix.Add(Document{ID: fmt.Sprintf("z%d", i), Fields: map[string]string{"title": "zelda adventure"}})
		}
		ix.Add(Document{ID: "zb", Fields: map[string]string{"title": "zebra documentary"}})
		sugs := ix.SuggestTerms("title", "zeldb", 3)
		if len(sugs) == 0 || sugs[0] != "zelda" {
			t.Fatalf("shards=%d suggestions = %v", n, sugs)
		}
		if sugs := ix.SuggestTerms("title", "zelda", 3); sugs != nil {
			t.Fatalf("shards=%d exact term corrected: %v", n, sugs)
		}
	}
}

// TestShardedConcurrentMixedOps hammers a multi-shard index with
// concurrent adds, deletes and fan-out reads; run under -race in CI.
func TestShardedConcurrentMixedOps(t *testing.T) {
	ix := New(WithShards(4))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				ix.Add(Document{ID: id, Fields: map[string]string{"body": "concurrent sharded platform"}, Stored: map[string]string{"w": fmt.Sprint(w)}})
				if i%10 == 9 {
					ix.Delete(fmt.Sprintf("w%d-%d", w, i-5))
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ix.mustSearch(MatchQuery{Text: "platform"}, SearchOptions{Limit: 10, SnippetField: "body"})
				ix.mustFacets(MatchQuery{Text: "sharded"}, "w", nil)
				ix.mustCount(AllQuery{}, nil)
			}
		}()
	}
	wg.Wait()
	if got, want := ix.Len(), 4*(100-10); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}
