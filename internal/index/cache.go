package index

import (
	"container/list"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Cross-request result caching. A hosted search platform answers the
// same queries over and over — the same SERP for every visitor of a
// published app page, the same document frequencies for every query
// sharing a term — so one Cache is shared by many indexes (every store
// dataset, every engine vertical) and remembers work across requests.
//
// Correctness rests on generation stamps, not explicit invalidation.
// Every cached value is stamped with the (ring generation, mutation
// version) pair of the index it was computed against; readers pass the
// stamp they captured before evaluating, and a stored value is served
// only when the stamps match exactly. Mutations bump the version
// AFTER they complete, so any value computed concurrently with a
// mutation carries a stamp no post-mutation reader can present — stale
// data dies at the bump without the mutation path ever touching the
// cache. A pinned Session keeps presenting its creation-time stamp,
// which is exactly its documented snapshot semantics.
//
// The cache is size-bounded (bytes, estimated) with LRU eviction, and
// every index attached to it gets a private key namespace, so tenants
// sharing the process share capacity but never collide on keys.

// Stamp identifies one mutation era of one index: the shard-ring
// generation (layout changes) and the mutation version (content and
// configuration changes). Values cached under a stamp are served only
// to readers presenting the same stamp.
type Stamp struct {
	Gen uint64
	Ver uint64
}

// newer reports whether a was taken after b (both counters are
// monotonic, and Gen bumps reset nothing).
func (a Stamp) newer(b Stamp) bool {
	if a.Gen != b.Gen {
		return a.Gen > b.Gen
	}
	return a.Ver > b.Ver
}

// Cache entry kinds. Each kind has its own key grammar; the kind byte
// keeps the grammars from colliding.
const (
	kindSERP uint8 = iota
	kindCount
	kindFacets
	kindDF
	kindAvgLen
	kindLive
	kindPostings
)

// cacheKey addresses one cached value. ns scopes keys to one attached
// index. Posting-list entries key on the list pointer itself: a
// compaction or reshard builds new lists, so entries for the old ones
// simply become unreachable and age out.
type cacheKey struct {
	ns   uint64
	kind uint8
	key  string
	list *postingList
}

type cacheEntry struct {
	key   cacheKey
	stamp Stamp
	bytes int64
	val   any
}

// entryOverhead is the accounted fixed cost of one entry: the entry
// struct, its map slot, its LRU element and key string header.
const entryOverhead = 160

// postingCacheMin is the posting count below which decoded lists are
// not cached: short lists decode faster than a cache round-trip.
const postingCacheMin = 1024

// CacheStats is the operator view of a Cache.
type CacheStats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Evicted     uint64 `json:"evicted"`
	Invalidated uint64 `json:"invalidated"`
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	Budget      int64  `json:"budget"`
}

// Cache is a shared, size-bounded, stamp-validated result cache. One
// Cache serves any number of indexes (see Index.AttachCache); all
// methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	lru     *list.List // front = most recently used; values are *cacheEntry
	entries map[cacheKey]*list.Element

	hits        atomic.Uint64
	misses      atomic.Uint64
	evicted     atomic.Uint64
	invalidated atomic.Uint64
}

// NewCache returns a cache bounded to roughly maxBytes of cached
// values (sizes are estimates: postings and result slices dominate and
// are accounted exactly; per-entry bookkeeping is a fixed charge).
func NewCache(maxBytes int64) *Cache {
	if maxBytes < 1 {
		maxBytes = 1
	}
	return &Cache{
		budget:  maxBytes,
		lru:     list.New(),
		entries: make(map[cacheKey]*list.Element),
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries, bytes := len(c.entries), c.used
	c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evicted:     c.evicted.Load(),
		Invalidated: c.invalidated.Load(),
		Entries:     entries,
		Bytes:       bytes,
		Budget:      c.budget,
	}
}

// get returns the value stored under k if its stamp matches st
// exactly. An entry with an older stamp is dead for every future
// reader — it is removed on sight. An entry with a newer stamp is kept
// (the reader is a pinned session presenting an old stamp) but not
// served.
func (c *Cache) get(k cacheKey, st Stamp) (any, bool) {
	c.mu.Lock()
	el, ok := c.entries[k]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.stamp != st {
		if st.newer(e.stamp) {
			c.removeLocked(el, e)
			c.mu.Unlock()
			c.invalidated.Add(1)
		} else {
			c.mu.Unlock()
		}
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.mu.Unlock()
	c.hits.Add(1)
	return e.val, true
}

// put stores val under k with stamp st, evicting least-recently-used
// entries to stay within budget. A value larger than the whole budget
// is not cached. An existing entry with a newer stamp wins over the
// incoming one (a pinned session must not clobber fresher data).
func (c *Cache) put(k cacheKey, st Stamp, val any, bytes int64) {
	bytes += entryOverhead + int64(len(k.key))
	if bytes > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		e := el.Value.(*cacheEntry)
		if e.stamp.newer(st) {
			return
		}
		c.removeLocked(el, e)
	}
	for c.used+bytes > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back, back.Value.(*cacheEntry))
		c.evicted.Add(1)
	}
	e := &cacheEntry{key: k, stamp: st, bytes: bytes, val: val}
	c.entries[k] = c.lru.PushFront(e)
	c.used += bytes
}

func (c *Cache) removeLocked(el *list.Element, e *cacheEntry) {
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.used -= e.bytes
}

// cacheRef pairs an attached cache with the attaching index's private
// key namespace. Indexes hold it behind an atomic pointer so
// AttachCache is safe against in-flight queries.
type cacheRef struct {
	c  *Cache
	ns uint64
}

func (ref *cacheRef) key(kind uint8, key string) cacheKey {
	return cacheKey{ns: ref.ns, kind: kind, key: key}
}

func (ref *cacheRef) listKey(l *postingList) cacheKey {
	return cacheKey{ns: ref.ns, kind: kindPostings, list: l}
}

// cacheNSCounter hands out one namespace per AttachCache call,
// process-wide, so two indexes can never share keys even across
// detach/re-attach cycles.
var cacheNSCounter atomic.Uint64

// AttachCache connects the index to a shared cross-request cache (nil
// detaches). Queries consult it for whole SERPs, counts, facets,
// aggregated term statistics and hot decoded posting lists; mutations
// need no cache hooks because every entry is stamped with the ring
// generation and mutation version it was computed under, and readers
// only accept exact stamp matches.
func (ix *Index) AttachCache(c *Cache) {
	if c == nil {
		ix.cache.Store(nil)
		return
	}
	ix.cache.Store(&cacheRef{c: c, ns: cacheNSCounter.Add(1)})
}

// stampFor is the index's current mutation era under ring r. Callers
// capture it before evaluating and pass it to every cache operation of
// that evaluation, so a mutation completing mid-read (which bumps the
// version after it applies) strands the read's stores in the old era
// instead of ever serving them forward.
func (ix *Index) stampFor(r *ring) Stamp {
	return Stamp{Gen: r.gen, Ver: ix.ver.Load()}
}

// bumpVer marks a completed mutation: anything cached before or during
// it is now unservable to new readers.
func (ix *Index) bumpVer() { ix.ver.Add(1) }

// --- key construction ---------------------------------------------

// Keys are built from length-prefixed components so adjacent fields
// can never alias ("ab"+"c" vs "a"+"bc").
func appendComp(b []byte, s string) []byte {
	b = strconv.AppendInt(b, int64(len(s)), 10)
	b = append(b, ':')
	return append(b, s...)
}

// appendQueryKey serializes q canonically. The bool return is false
// for query shapes the cache does not key (nil sub-queries embedded in
// bools keep a canonical tag, so every package query type serializes).
func appendQueryKey(b []byte, q Query) ([]byte, bool) {
	switch t := q.(type) {
	case nil:
		return append(b, 'n'), true
	case AllQuery:
		return append(b, 'A'), true
	case TermQuery:
		b = append(b, 'T')
		b = appendComp(b, t.Field)
		return appendComp(b, t.Term), true
	case PrefixQuery:
		b = append(b, 'P')
		b = appendComp(b, t.Field)
		return appendComp(b, t.Prefix), true
	case PhraseQuery:
		b = append(b, 'H')
		b = appendComp(b, t.Field)
		return appendComp(b, t.Text), true
	case MatchQuery:
		b = append(b, 'M')
		b = strconv.AppendInt(b, int64(len(t.Fields)), 10)
		b = append(b, ';')
		for _, f := range t.Fields {
			b = appendComp(b, f)
		}
		b = appendComp(b, t.Text)
		return appendComp(b, t.Operator), true
	case BoolQuery:
		b = append(b, 'B')
		var ok bool
		for _, group := range []struct {
			tag  byte
			subs []Query
		}{{'m', t.Must}, {'s', t.Should}, {'x', t.MustNot}} {
			b = append(b, group.tag)
			b = strconv.AppendInt(b, int64(len(group.subs)), 10)
			b = append(b, ';')
			for _, sub := range group.subs {
				if b, ok = appendQueryKey(b, sub); !ok {
					return nil, false
				}
			}
		}
		return b, true
	default:
		return nil, false
	}
}

// appendFiltersKey serializes a filter map with sorted keys.
func appendFiltersKey(b []byte, filters map[string]string) []byte {
	b = strconv.AppendInt(b, int64(len(filters)), 10)
	b = append(b, ';')
	if len(filters) == 0 {
		return b
	}
	keys := make([]string, 0, len(filters))
	for k := range filters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = appendComp(b, k)
		b = appendComp(b, filters[k])
	}
	return b
}

// serpKey keys one (query, options) SERP. ok is false when the query
// is an unknown implementation and must not be cached.
func serpKey(q Query, opts SearchOptions) (string, bool) {
	b, ok := appendQueryKey(make([]byte, 0, 64), q)
	if !ok {
		return "", false
	}
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(opts.Limit), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(opts.Offset), 10)
	b = append(b, ',')
	b = appendComp(b, opts.SnippetField)
	b = appendFiltersKey(b, opts.Filters)
	return string(b), true
}

// countKey keys one (query, filters) count.
func countKey(q Query, filters map[string]string) (string, bool) {
	b, ok := appendQueryKey(make([]byte, 0, 48), q)
	if !ok {
		return "", false
	}
	b = append(b, '|')
	b = appendFiltersKey(b, filters)
	return string(b), true
}

// facetsKey keys one (query, facet field, filters) facet table.
func facetsKey(q Query, field string, filters map[string]string) (string, bool) {
	b, ok := appendQueryKey(make([]byte, 0, 48), q)
	if !ok {
		return "", false
	}
	b = append(b, '|')
	b = appendComp(b, field)
	b = appendFiltersKey(b, filters)
	return string(b), true
}

func dfKey(ft fieldTerm) string {
	b := appendComp(make([]byte, 0, 32), ft.field)
	return string(appendComp(b, ft.term))
}

// --- size estimates ------------------------------------------------

// serpBytes estimates the retained size of a cached result slice.
// Stored maps are shared with the index's own document table (Results
// reference, never copy them), so they are charged as pointers.
func serpBytes(hits []Result) int64 {
	n := int64(len(hits)) * 48
	for i := range hits {
		n += int64(len(hits[i].ID) + len(hits[i].Snippet))
	}
	return n
}

func facetBytes(fc []FacetCount) int64 {
	n := int64(len(fc)) * 24
	for i := range fc {
		n += int64(len(fc[i].Value))
	}
	return n
}

// copyResults returns a shallow copy of cached hits so a caller
// appending to or reslicing its result cannot corrupt the cached
// value. Stored maps stay shared, as they already are with the index.
func copyResults(hits []Result) []Result {
	if hits == nil {
		return nil
	}
	out := make([]Result, len(hits))
	copy(out, hits)
	return out
}

func copyFacets(fc []FacetCount) []FacetCount {
	if fc == nil {
		return nil
	}
	out := make([]FacetCount, len(fc))
	copy(out, fc)
	return out
}

// --- decoded posting lists ----------------------------------------

// decodedList is a posting list's (ordinal, tf) stream decoded into
// flat arrays: the accumulator, count and facet paths iterate it
// without re-walking the varint blocks. Read-only once cached.
type decodedList struct {
	ords []int32
	tfs  []int32
}

func decodePostings(list *postingList) *decodedList {
	dec := &decodedList{
		ords: make([]int32, 0, list.n),
		tfs:  make([]int32, 0, list.n),
	}
	it := list.iter()
	for it.next() {
		dec.ords = append(dec.ords, int32(it.doc))
		dec.tfs = append(dec.tfs, int32(it.tf))
	}
	return dec
}

// cachedPostings returns the decoded form of list, through the cache
// when one is attached and the list is long enough to be worth it.
func cachedPostings(ref *cacheRef, st Stamp, list *postingList) *decodedList {
	if ref == nil || list.n < postingCacheMin {
		return nil
	}
	k := ref.listKey(list)
	if v, ok := ref.c.get(k, st); ok {
		return v.(*decodedList)
	}
	dec := decodePostings(list)
	ref.c.put(k, st, dec, int64(len(dec.ords))*8)
	return dec
}

// --- cached statistics aggregation --------------------------------

// aggregateStatsCached is aggregateStats through the shared cache:
// per-term document frequencies, per-field average lengths and the
// live count are served from the cache when stamped current, and only
// the misses pay a shard walk (whose results are then cached). With
// ref nil it is exactly aggregateStats.
func aggregateStatsCached(ref *cacheRef, st Stamp, r *ring, needFields map[string]bool, needTerms map[fieldTerm]bool) (int, map[string]float64, map[fieldTerm]int) {
	if ref == nil {
		return aggregateStats(r, needFields, needTerms)
	}
	avgLen := make(map[string]float64, len(needFields))
	df := make(map[fieldTerm]int, len(needTerms))
	missFields := make(map[string]bool)
	missTerms := make(map[fieldTerm]bool)
	for f := range needFields {
		if v, ok := ref.c.get(ref.key(kindAvgLen, f), st); ok {
			avgLen[f] = v.(float64)
		} else {
			missFields[f] = true
		}
	}
	for ft := range needTerms {
		if v, ok := ref.c.get(ref.key(kindDF, dfKey(ft)), st); ok {
			df[ft] = v.(int)
		} else {
			missTerms[ft] = true
		}
	}
	live, liveOK := 0, false
	if v, ok := ref.c.get(ref.key(kindLive, ""), st); ok {
		live, liveOK = v.(int), true
	}
	if liveOK && len(missFields) == 0 && len(missTerms) == 0 {
		return live, avgLen, df
	}
	aggLive, aggAvg, aggDF := aggregateStats(r, missFields, missTerms)
	if !liveOK {
		live = aggLive
		ref.c.put(ref.key(kindLive, ""), st, live, 8)
	}
	for f, v := range aggAvg {
		avgLen[f] = v
		ref.c.put(ref.key(kindAvgLen, f), st, v, 8)
	}
	for ft, n := range aggDF {
		df[ft] = n
		ref.c.put(ref.key(kindDF, dfKey(ft)), st, n, 8)
	}
	return live, avgLen, df
}
