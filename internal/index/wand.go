package index

import (
	"encoding/binary"
	"math"
	"sort"
	"strings"
	"sync"
)

// Block-max early exit: a document-at-a-time top-k evaluator that
// skips whole posting blocks whose score upper bound cannot beat the
// bounded heap's running threshold (Block-Max WAND). It is an
// alternative execution strategy for the accumulator evaluator in
// query.go, used only when a query is "streamable" — expressible as
// ordered term cursors — and the caller wants a top-k (k > 0; counts
// and facets need every match and keep the accumulator path).
//
// The contract is bit-identical rankings: for every candidate the
// score is assembled with exactly the accumulator path's float
// operation order (per-raw-term group max across fields, terms and
// bool entries summed left-to-right, Should totals folded in as one
// addition), and a document is only ever skipped when its upper bound
// is strictly below the heap threshold — a bound that also caps the
// true score, so the skipped document would have been rejected by the
// same heap comparison the accumulator path applies. Upper bounds are
// inflated by ubMargin so float rounding differences between the
// bound expression and the real scoring expression can never flip a
// skip decision the wrong way.

// ubMargin inflates every upper bound. The bound and the score
// evaluate the same monotone formula through different float paths;
// their divergence is a few ulps (~1e-16 relative), so a 1e-9 margin
// is six orders of magnitude of headroom and costs only a marginally
// conservative skip at the threshold boundary.
const ubMargin = 1 + 1e-9

// wandArena recycles every transient the plan builder creates for one
// shard evaluation: the cursor/group/entry objects and the small
// pointer slices that link them. Objects live in slab-of-pointer
// free-lists reused by index; link slices are carved off append-only
// slabs — each collection is built completely before the next starts,
// so a 3-index subslice of the slab is a stable view even if a later
// append grows the slab (the view keeps the old backing, whose
// pointers were already written and never mutate).
//
// Everything in the arena is strictly scoped to one searchTopK call:
// the only thing that escapes is the heap's hit buffer, which comes
// from shardHitsPool, not from here.
type wandArena struct {
	curs []*memberCursor
	nCur int
	grps []*planGroup
	nGrp int
	ents []*planEntry
	nEnt int

	memSlab []*memberCursor
	grpSlab []*planGroup
	entSlab []*planEntry
	byDoc   []*planEntry

	plan topkPlan
	heap topkHeap
}

var wandArenaPool = sync.Pool{New: func() any { return &wandArena{} }}

func getWandArena() *wandArena {
	if scratchOff.Load() {
		// Pooling disabled: a fresh arena per call is the plain-
		// allocation behaviour the A/B baseline wants.
		return &wandArena{}
	}
	return wandArenaPool.Get().(*wandArena)
}

func putWandArena(ar *wandArena) {
	if scratchOff.Load() {
		return
	}
	ar.nCur, ar.nGrp, ar.nEnt = 0, 0, 0
	clear(ar.memSlab)
	clear(ar.grpSlab)
	clear(ar.entSlab)
	clear(ar.byDoc)
	ar.memSlab = ar.memSlab[:0]
	ar.grpSlab = ar.grpSlab[:0]
	ar.entSlab = ar.entSlab[:0]
	ar.byDoc = ar.byDoc[:0]
	ar.plan = topkPlan{}
	ar.heap = topkHeap{}
	wandArenaPool.Put(ar)
}

// cursor returns a reset memberCursor from the object slab, keeping
// its ubMemo capacity.
func (ar *wandArena) cursor() *memberCursor {
	if ar.nCur == len(ar.curs) {
		ar.curs = append(ar.curs, new(memberCursor))
	}
	m := ar.curs[ar.nCur]
	ar.nCur++
	memo := m.ubMemo
	*m = memberCursor{ubMemo: memo[:0]}
	return m
}

func (ar *wandArena) group() *planGroup {
	if ar.nGrp == len(ar.grps) {
		ar.grps = append(ar.grps, new(planGroup))
	}
	g := ar.grps[ar.nGrp]
	ar.nGrp++
	*g = planGroup{}
	return g
}

func (ar *wandArena) entry() *planEntry {
	if ar.nEnt == len(ar.ents) {
		ar.ents = append(ar.ents, new(planEntry))
	}
	e := ar.ents[ar.nEnt]
	ar.nEnt++
	*e = planEntry{}
	return e
}

// oneGroup carves a single-element group list off the link slab.
func (ar *wandArena) oneGroup(g *planGroup) []*planGroup {
	start := len(ar.grpSlab)
	ar.grpSlab = append(ar.grpSlab, g)
	return ar.grpSlab[start:len(ar.grpSlab):len(ar.grpSlab)]
}

// oneEntry carves a single-element entry list off the link slab.
func (ar *wandArena) oneEntry(e *planEntry) []*planEntry {
	start := len(ar.entSlab)
	ar.entSlab = append(ar.entSlab, e)
	return ar.entSlab[start:len(ar.entSlab):len(ar.entSlab)]
}

// docSentinel marks an exhausted cursor; it compares after every real
// ordinal so min-based merging needs no special cases.
const docSentinel = math.MaxInt

// scanCounters tallies posting decode/skip activity for one shard
// evaluation; aggregated atomically into the Index when done. Skips
// are counted at posting granularity because the block-max jump
// usually abandons the remainder of a partially-decoded block — work
// avoided that whole-block counting would miss entirely.
type scanCounters struct {
	scored  uint64 // postings decoded
	skipped uint64 // postings jumped without decoding
}

// upperBound returns an inflated upper bound on score(tf, docLen) for
// any 1 <= tf <= maxTF and any docLen >= minLen. Both rankers are
// monotone increasing in tf; BM25 is monotone decreasing in docLen,
// so the bound evaluates the scoring formula itself at (maxTF,
// minLen) — the field's smallest recorded length, far tighter than
// length zero on real corpora — and for TFIDF docLen never enters.
func (sc *termScorer) upperBound(maxTF, minLen int) float64 {
	if maxTF <= 0 || sc.boost == 0 {
		// A zero scorer (phrase cursors walk postings without scoring;
		// scorerFor always sets boost >= 1) has no meaningful bound.
		return 0
	}
	return sc.score(float64(maxTF), minLen) * ubMargin
}

// memberCursor walks one (field, term) posting list in ordinal order
// with block-level seeks. It is postingIter plus: current-block
// tracking (for block-max bounds), seekGE jumps over whole blocks via
// the skip entries, and an optional lazily-synced position stream for
// phrase evaluation.
type memberCursor struct {
	list *postingList
	fp   *fieldPostings
	sc   termScorer
	ub   float64 // inflated upper bound over the whole list

	doc  int // current ordinal; docSentinel when exhausted
	tf   int
	i    int // index of the next posting to decode
	off  int // byte offset of the next posting in docTF
	blk  int // block index of the current posting
	done bool

	// ubMemo caches upperBound by block maxTF (small ints bounded by
	// the list maxTF), so block-metadata scans pay no scoring math.
	ubMemo []float64

	// Lazily-synced position stream (phrase evaluation only). The
	// doc walk never touches posBuf; when positions of the current
	// posting are requested, the stream jumps to the current block's
	// posOff anchor and length-walks only the runs of the preceding
	// in-block postings — tfBefore tracks their total, posTFOff how
	// much of it the stream has already consumed.
	tfBefore int
	posIt    positionIter
	posBlk   int
	posTFOff int

	cnt *scanCounters
}

func (ar *wandArena) newMemberCursor(list *postingList, fp *fieldPostings, sc termScorer, cnt *scanCounters) *memberCursor {
	m := ar.cursor()
	m.list, m.fp, m.sc, m.cnt = list, fp, sc, cnt
	m.posBlk = -1
	m.ub = sc.upperBound(list.maxTF, fp.minLen)
	m.next()
	return m
}

// newMemberCursor is the arena-free constructor for paths outside
// searchTopK (phrase evaluation walks cursors but builds no plan).
func newMemberCursor(list *postingList, fp *fieldPostings, sc termScorer, cnt *scanCounters) *memberCursor {
	m := &memberCursor{list: list, fp: fp, sc: sc, cnt: cnt, posBlk: -1}
	m.ub = sc.upperBound(list.maxTF, fp.minLen)
	m.next()
	return m
}

// next advances to the following posting; on exhaustion doc becomes
// docSentinel.
func (m *memberCursor) next() bool {
	if m.i >= m.list.n {
		m.done = true
		m.doc = docSentinel
		return false
	}
	if m.i%postingBlockSize == 0 {
		m.blk = m.i / postingBlockSize
		m.doc = m.list.blocks[m.blk].firstDoc
		m.tfBefore = 0
	} else {
		m.tfBefore += m.tf
	}
	m.cnt.scored++
	delta, n := binary.Uvarint(m.list.docTF[m.off:])
	m.off += n
	m.doc += int(delta)
	tf, n := binary.Uvarint(m.list.docTF[m.off:])
	m.off += n
	m.tf = int(tf)
	m.i++
	return true
}

// readPositions decodes the current posting's term positions into
// dst, seeking the position stream to the current block's anchor
// instead of streaming every preceding run in the list.
func (m *memberCursor) readPositions(dst []int) []int {
	if m.posBlk != m.blk {
		m.posIt = positionIter{buf: m.list.posBuf, off: m.list.blocks[m.blk].posOff}
		m.posBlk = m.blk
		m.posTFOff = 0
	}
	m.posIt.skip(m.tfBefore - m.posTFOff)
	dst = m.posIt.read(m.tf, dst)
	m.posTFOff = m.tfBefore + m.tf
	return dst
}

// seekGE positions the cursor at the first posting with ordinal >=
// target, jumping whole blocks via the skip entries. Cursors only
// move forward.
func (m *memberCursor) seekGE(target int) {
	if m.done || m.doc >= target {
		return
	}
	if target > m.list.lastDoc {
		m.cnt.skipped += uint64(m.list.n - m.i)
		m.done = true
		m.doc = docSentinel
		return
	}
	// Only pay blockFor's binary search when the target leaves the
	// current block; most seeks advance by one or two postings.
	if target > m.list.blockLastDoc(m.blk) {
		if b := m.list.blockFor(target); b > m.blk {
			m.cnt.skipped += uint64(b*postingBlockSize - m.i)
			m.blk = b
			m.i = b * postingBlockSize
			m.off = m.list.blocks[b].docOff
		}
	}
	for m.next() {
		if m.doc >= target {
			return
		}
	}
}

// ubFor returns upperBound(maxTF, minLen) through the per-maxTF memo.
// The memo buffer is arena-recycled, so a too-short one is re-extended
// (and cleared of the previous list's values) on first use.
func (m *memberCursor) ubFor(maxTF int) float64 {
	if n := m.list.maxTF + 1; len(m.ubMemo) < n {
		if cap(m.ubMemo) >= n {
			m.ubMemo = m.ubMemo[:n]
			clear(m.ubMemo)
		} else {
			m.ubMemo = make([]float64, n)
		}
	}
	v := m.ubMemo[maxTF]
	if v == 0 && maxTF > 0 {
		v = m.sc.upperBound(maxTF, m.fp.minLen)
		m.ubMemo[maxTF] = v
	}
	return v
}

// blockUB returns an inflated upper bound on this member's score for
// any document inside its current block.
func (m *memberCursor) blockUB() float64 {
	if m.done {
		return 0
	}
	return m.ubFor(m.list.blocks[m.blk].maxTF)
}

// ffwd fast-forwards the cursor past every upcoming block whose bound
// plus base (the caller's Should-entry bound, added with the exact
// float op order the generic skip branch uses) stays below theta. The
// scan touches only block metadata — no posting decodes, no repeated
// pivot machinery — which is what keeps a long single-term list
// sublinear: the per-hop cost is one memoized bound compare.
// The caller has already rejected the current block.
func (m *memberCursor) ffwd(theta, base float64) {
	b := m.blk + 1
	for b < len(m.list.blocks) && base+m.ubFor(m.list.blocks[b].maxTF) < theta {
		b++
	}
	if b >= len(m.list.blocks) {
		m.cnt.skipped += uint64(m.list.n - m.i)
		m.done = true
		m.doc = docSentinel
		return
	}
	m.cnt.skipped += uint64(b*postingBlockSize - m.i)
	m.i = b * postingBlockSize
	m.off = m.list.blocks[b].docOff
	m.next()
}

// score computes the member's contribution at its current posting.
func (m *memberCursor) score() float64 {
	return m.sc.score(float64(m.tf), m.fp.lenAt(m.doc))
}

// planGroup is the cursor form of one raw query term: every (field,
// analyzed term) member it expands to in this shard. Its score at a
// document is the max over members present there — the accumulator
// path's mergeMax across fields, which is order-independent and
// float-exact.
type planGroup struct {
	members []*memberCursor
	ub      float64 // max member ub
	doc     int     // min member doc; docSentinel when all exhausted
}

func (ar *wandArena) newPlanGroup(members []*memberCursor) *planGroup {
	g := ar.group()
	g.members = members
	for _, m := range members {
		if m.ub > g.ub {
			g.ub = m.ub
		}
	}
	g.updateDoc()
	return g
}

func (g *planGroup) updateDoc() {
	d := docSentinel
	for _, m := range g.members {
		if m.doc < d {
			d = m.doc
		}
	}
	g.doc = d
}

func (g *planGroup) seekGE(target int) {
	if g.doc >= target {
		return
	}
	for _, m := range g.members {
		m.seekGE(target)
	}
	g.updateDoc()
}

// scoreAt returns the group's contribution at d == g.doc.
func (g *planGroup) scoreAt(d int) float64 {
	best := 0.0
	for _, m := range g.members {
		if m.doc == d {
			if v := m.score(); v > best {
				best = v
			}
		}
	}
	return best
}

// blockBound returns an upper bound on the group's contribution to
// any document in [g.doc, end]: each member's posting in that range
// lies inside the member's current block (end is the minimum of the
// members' current-block last ordinals), so the max of the members'
// block bounds dominates.
func (g *planGroup) blockBound() (ub float64, end int) {
	end = docSentinel
	for _, m := range g.members {
		if m.done {
			continue
		}
		if u := m.blockUB(); u > ub {
			ub = u
		}
		if be := m.list.blockLastDoc(m.blk); be < end {
			end = be
		}
	}
	return ub, end
}

// planEntry is one scoring unit of a normalized query: a Must/Should
// sub-query (or a single raw term promoted to a unit). conj entries
// require every group (match "and"); disjunctive entries require at
// least one. An entry's total at a document is its groups' ordered
// float sum — computed locally, exactly as the accumulator path sums
// each sub-query into its own scratch accumulator before combining.
type planEntry struct {
	conj   bool
	groups []*planGroup
	ub     float64 // ordered float sum of group ubs
	doc    int     // current candidate ordinal; docSentinel when exhausted
}

func (ar *wandArena) newPlanEntry(conj bool, groups []*planGroup) *planEntry {
	e := ar.entry()
	e.conj = conj
	e.groups = groups
	for _, g := range groups {
		e.ub += g.ub
	}
	e.updateDoc()
	return e
}

func (e *planEntry) updateDoc() {
	if e.conj {
		e.alignFrom(0)
		return
	}
	d := docSentinel
	for _, g := range e.groups {
		if g.doc < d {
			d = g.doc
		}
	}
	e.doc = d
}

// alignFrom leapfrogs every group to the first common ordinal >= t.
func (e *planEntry) alignFrom(t int) {
	d := t
	for {
		changed := false
		for _, g := range e.groups {
			g.seekGE(d)
			if g.doc == docSentinel {
				e.doc = docSentinel
				return
			}
			if g.doc > d {
				d = g.doc
				changed = true
			}
		}
		if !changed {
			e.doc = d
			return
		}
	}
}

func (e *planEntry) seekGE(target int) {
	if e.doc >= target {
		return
	}
	if e.conj {
		e.alignFrom(target)
		return
	}
	for _, g := range e.groups {
		g.seekGE(target)
	}
	e.updateDoc()
}

// scoreAt returns the entry's total at d == e.doc: the ordered float
// sum over its groups present at d (for conj entries all of them),
// matching the accumulator path's left-to-right summation.
func (e *planEntry) scoreAt(d int) float64 {
	total := 0.0
	for _, g := range e.groups {
		if g.doc == d {
			total += g.scoreAt(d)
		}
	}
	return total
}

// sizeHint estimates how many documents this entry can match, for
// the density fallback in searchTopK: a conjunctive entry's
// intersection is bounded by its rarest group, a disjunctive entry's
// union reaches at least its largest. Group size is the sum of its
// member list lengths (an upper bound on the group union).
func (e *planEntry) sizeHint() int {
	best := 0
	if e.conj {
		best = math.MaxInt
	}
	for _, g := range e.groups {
		n := 0
		for _, m := range g.members {
			n += m.list.n
		}
		if e.conj {
			if n < best {
				best = n
			}
		} else if n > best {
			best = n
		}
	}
	return best
}

// blockBound returns an upper bound on the entry's contribution to
// any document in [e.doc, end], from its groups' current blocks.
func (e *planEntry) blockBound() (ub float64, end int) {
	end = docSentinel
	for _, g := range e.groups {
		u, ge := g.blockBound()
		ub += u
		if ge < end {
			end = ge
		}
	}
	return ub, end
}

// topkPlan is a query normalized to cursor form.
//
//   - drive: disjunctive scoring units; candidates are the union of
//     their documents (a plain or-match's term groups, or a pure-
//     Should bool's entries).
//   - req: conjunctive scoring units; candidates are the intersection
//     (match "and", bool Must entries). drive and req are mutually
//     exclusive.
//   - opt: additive units that never generate candidates on their own
//     (bool Should entries under a Must).
//   - not: exclusion units (bool MustNot), presence-checked only.
type topkPlan struct {
	drive []*planEntry
	req   []*planEntry
	opt   []*planEntry
	not   []*planEntry
	optUB float64 // ordered float sum of opt entry ubs
	empty bool    // streamable, but provably matches nothing in this shard
}

// buildTopkPlan normalizes q into cursor form, or reports ok=false
// when q is not streamable (phrase, prefix, all, nested bool, empty
// bool) and the accumulator path must run instead. Must be called
// with the shard read lock held.
func (s *shard) buildTopkPlan(ar *wandArena, q Query, st *searchStats, cnt *scanCounters) (*topkPlan, bool) {
	plan := &ar.plan
	*plan = topkPlan{}
	switch t := q.(type) {
	case TermQuery:
		e, ok := s.buildEntry(ar, t, st, cnt)
		if !ok {
			return nil, false
		}
		if e == nil {
			plan.empty = true
			return plan, true
		}
		plan.drive = ar.oneEntry(e)
		return plan, true
	case MatchQuery:
		e, ok := s.buildEntry(ar, t, st, cnt)
		if !ok {
			return nil, false
		}
		if e == nil {
			plan.empty = true
			return plan, true
		}
		if e.conj {
			plan.req = ar.oneEntry(e)
		} else {
			plan.drive = ar.splitGroups(e)
		}
		return plan, true
	case BoolQuery:
		if len(t.Must) == 0 && len(t.Should) == 0 {
			// Browse base (all live docs): not cursor-streamable.
			return nil, false
		}
		mustStart := len(ar.entSlab)
		for _, sub := range t.Must {
			e, ok := s.buildEntry(ar, sub, st, cnt)
			if !ok {
				return nil, false
			}
			if e == nil {
				plan.empty = true
				return plan, true
			}
			ar.entSlab = append(ar.entSlab, e)
		}
		must := ar.entSlab[mustStart:len(ar.entSlab):len(ar.entSlab)]
		shouldStart := len(ar.entSlab)
		for _, sub := range t.Should {
			e, ok := s.buildEntry(ar, sub, st, cnt)
			if !ok {
				return nil, false
			}
			if e != nil {
				ar.entSlab = append(ar.entSlab, e)
			}
		}
		should := ar.entSlab[shouldStart:len(ar.entSlab):len(ar.entSlab)]
		notStart := len(ar.entSlab)
		for _, sub := range t.MustNot {
			e, ok := s.buildEntry(ar, sub, st, cnt)
			if !ok {
				return nil, false
			}
			if e != nil {
				ar.entSlab = append(ar.entSlab, e)
			}
		}
		not := ar.entSlab[notStart:len(ar.entSlab):len(ar.entSlab)]
		plan.not = not
		if len(must) == 0 {
			// Pure Should: candidates are the union of the Should
			// entries, and the gate replaces the zero browse base with
			// the Should total — entry order preserved.
			if len(should) == 0 {
				plan.empty = true
				return plan, true
			}
			plan.drive = should
			return plan, true
		}
		plan.opt = should
		for _, e := range should {
			plan.optUB += e.ub
		}
		if len(must) == 1 && !must[0].conj {
			// A single disjunctive Must drives best as WAND over its
			// groups: same ordered sum, better pivot skipping.
			plan.drive = ar.splitGroups(must[0])
		} else {
			plan.req = must
		}
		return plan, true
	default:
		return nil, false
	}
}

// splitGroups promotes each group of a disjunctive entry to its own
// single-group entry so the WAND pivot can reason per group. The
// ordered sum over the split entries equals the original entry total.
func (ar *wandArena) splitGroups(e *planEntry) []*planEntry {
	start := len(ar.entSlab)
	for _, g := range e.groups {
		ar.entSlab = append(ar.entSlab, ar.newPlanEntry(false, ar.oneGroup(g)))
	}
	return ar.entSlab[start:len(ar.entSlab):len(ar.entSlab)]
}

// buildEntry converts one streamable sub-query (Term or Match) to an
// entry. A nil entry with ok=true means the sub-query provably
// matches nothing in this shard (unknown field, term absent, a
// required term missing locally).
func (s *shard) buildEntry(ar *wandArena, q Query, st *searchStats, cnt *scanCounters) (*planEntry, bool) {
	switch t := q.(type) {
	case TermQuery:
		fp := s.fields[t.Field]
		if fp == nil {
			return nil, true
		}
		terms := st.analyzedTerms(fp, t.Field, t.Term)
		if len(terms) == 0 {
			return nil, true
		}
		start := len(ar.memSlab)
		ar.appendMember(s, fp, t.Field, terms[0], st, cnt)
		members := ar.memSlab[start:len(ar.memSlab):len(ar.memSlab)]
		if len(members) == 0 {
			return nil, true
		}
		return ar.newPlanEntry(false, ar.oneGroup(ar.newPlanGroup(members))), true
	case MatchQuery:
		fields := st.fieldsOf(t.Fields)
		if fields == nil {
			// Off the public query paths collectTerms never primed the
			// field memo; derive the shard-local list as before.
			fields = make([]string, 0, len(s.fields))
			for f := range s.fields {
				fields = append(fields, f)
			}
			sort.Strings(fields)
		}
		rawTerms := st.rawTokens(t.Text)
		if len(rawTerms) == 0 {
			return nil, true
		}
		and := strings.EqualFold(t.Operator, "and")
		start := len(ar.grpSlab)
		for _, raw := range rawTerms {
			g := s.buildRawGroup(ar, st, fields, raw, cnt)
			if g == nil {
				if and {
					// A required term with no postings here empties the
					// intersection for the whole shard.
					return nil, true
				}
				continue
			}
			ar.grpSlab = append(ar.grpSlab, g)
		}
		groups := ar.grpSlab[start:len(ar.grpSlab):len(ar.grpSlab)]
		if len(groups) == 0 {
			return nil, true
		}
		return ar.newPlanEntry(and, groups), true
	default:
		return nil, false
	}
}

// buildRawGroup builds the member set one raw match term expands to
// across fields: each (field, analyzed term) with local postings and a
// non-zero global document frequency. nil when the term scores
// nothing in this shard.
func (s *shard) buildRawGroup(ar *wandArena, st *searchStats, fields []string, raw string, cnt *scanCounters) *planGroup {
	start := len(ar.memSlab)
	for _, field := range fields {
		fp := s.fields[field]
		if fp == nil {
			continue
		}
		for _, term := range st.analyzedTerms(fp, field, raw) {
			ar.appendMember(s, fp, field, term, st, cnt)
		}
	}
	members := ar.memSlab[start:len(ar.memSlab):len(ar.memSlab)]
	if len(members) == 0 {
		return nil
	}
	return ar.newPlanGroup(members)
}

func (ar *wandArena) appendMember(s *shard, fp *fieldPostings, field, term string, st *searchStats, cnt *scanCounters) {
	list := fp.lookup(term)
	if list == nil || list.n == 0 {
		return
	}
	sc, ok := s.scorerFor(fp, field, term, st)
	if !ok {
		return
	}
	ar.memSlab = append(ar.memSlab, ar.newMemberCursor(list, fp, sc, cnt))
}

// searchTopK runs the block-max evaluator for q when it is
// streamable; ok=false sends the caller to the accumulator path.
// Must be called with the shard read lock held and k > 0.
func (s *shard) searchTopK(q Query, st *searchStats, filters map[string]string, k int) ([]shardHit, bool) {
	var cnt scanCounters
	ar := getWandArena()
	defer putWandArena(ar)
	plan, ok := s.buildTopkPlan(ar, q, st, &cnt)
	if !ok {
		return nil, false
	}
	defer func() {
		s.ix.scanScored.Add(cnt.scored)
		s.ix.scanSkipped.Add(cnt.skipped)
	}()
	if plan.empty {
		return nil, true
	}
	single := len(plan.drive) == 1 && len(plan.drive[0].groups) == 1 &&
		len(plan.drive[0].groups[0].members) == 1
	if !single && !s.ix.wandDenseForce.Load() {
		// Density fallback: when even the rarest candidate-generating
		// entry averages a posting per block, no 128-ordinal gaps
		// exist for seekGE to jump and the cursor machinery decodes
		// everything the accumulator would, slower. Hand the query
		// back (results identical either way — only the evaluation
		// strategy differs). The single-cursor case is exempt: it
		// prunes on per-block maxTF variance, which needs no gaps.
		gen := plan.drive
		if len(gen) == 0 {
			gen = plan.req
		}
		minN := math.MaxInt
		for _, e := range gen {
			if n := e.sizeHint(); n < minN {
				minN = n
			}
		}
		if len(gen) > 0 && minN > s.live/postingBlockSize {
			return nil, false
		}
	}
	h := &ar.heap
	*h = topkHeap{k: k, h: getShardHits()}
	switch {
	case len(plan.drive) == 1 && len(plan.drive[0].groups) == 1 && len(plan.drive[0].groups[0].members) == 1:
		s.wandSingle(plan, st, h, filters)
	case len(plan.drive) > 0:
		s.wandDisjunctive(ar, plan, st, h, filters)
	default:
		s.wandConjunctive(plan, st, h, filters)
	}
	if st.canceled() {
		putShardHits(h.h)
		return nil, true
	}
	return h.sorted(), true
}

// excludedAt reports whether any MustNot entry matches d. Entries
// advance monotonically; candidates are visited in ascending order,
// so lazy forward seeks are sufficient.
func excludedAt(not []*planEntry, d int) bool {
	for _, e := range not {
		e.seekGE(d)
		if e.doc == d {
			return true
		}
	}
	return false
}

// scoreCandidate assembles the full score at d in the accumulator
// path's operation order: the driving/required totals summed
// left-to-right, then the Should total folded in as one addition.
func scoreCandidate(units []*planEntry, opt []*planEntry, d int) float64 {
	sc := 0.0
	for _, e := range units {
		if e.doc == d {
			sc += e.scoreAt(d)
		}
	}
	return addShould(sc, opt, d)
}

// addShould folds the Should entries' total at d into sc as one
// addition, exactly as the accumulator path combines them.
func addShould(sc float64, opt []*planEntry, d int) float64 {
	if len(opt) == 0 {
		return sc
	}
	anyTot := 0.0
	seen := false
	for _, e := range opt {
		e.seekGE(d)
		if e.doc == d {
			anyTot += e.scoreAt(d)
			seen = true
		}
	}
	if seen {
		sc += anyTot
	}
	return sc
}

// wandSingle is wandDisjunctive specialized to one driving cursor —
// the lone-term query that dominates real traffic and the classic
// block-max case. It applies the exact decision sequence the generic
// loop would (whole-list bound, block bound, per-tf bound, offer),
// with identical float expressions, but walks the cursor directly so
// each decoded posting costs two uvarints and two memoized compares
// instead of the pivot/sort machinery.
func (s *shard) wandSingle(plan *topkPlan, st *searchStats, h *topkHeap, filters map[string]string) {
	m := plan.drive[0].groups[0].members[0]
	n := 0
	for !m.done {
		if n++; n&(cancelStride-1) == 0 && st.canceled() {
			return
		}
		if h.full() {
			theta := h.threshold()
			if plan.optUB+m.ub < theta {
				// Even a maximal posting cannot place: nothing further
				// in the list can qualify.
				return
			}
			if plan.optUB+m.blockUB() < theta {
				m.ffwd(theta, plan.optUB)
				continue
			}
			if plan.optUB+m.ubFor(m.tf) < theta {
				m.next()
				continue
			}
		}
		// The entry/group wrappers are not advanced in this loop, so
		// score the member directly; a single member's contribution is
		// float-equal to the generic drive sum (0 + max(0, v) = v).
		if d := m.doc; s.liveAt(d) && !excludedAt(plan.not, d) {
			h.offer(s, d, addShould(m.score(), plan.opt, d), filters)
		}
		m.next()
	}
}

// wandDisjunctive runs WAND over the driving entries: sort by current
// ordinal, find the pivot (first prefix whose upper-bound sum reaches
// the heap threshold), and either advance the pre-pivot entries or
// evaluate the pivot document — first checking the tighter block-max
// bound, which can skip a whole aligned block range without decoding.
func (s *shard) wandDisjunctive(ar *wandArena, plan *topkPlan, st *searchStats, h *topkHeap, filters map[string]string) {
	byDoc := append(ar.byDoc[:0], plan.drive...)
	ar.byDoc = byDoc // keep the (possibly regrown) backing for reuse
	n := 0
	for {
		if n++; n&(cancelStride-1) == 0 && st.canceled() {
			return
		}
		alive := byDoc[:0]
		for _, e := range byDoc {
			if e.doc != docSentinel {
				alive = append(alive, e)
			}
		}
		byDoc = alive
		if len(byDoc) == 0 {
			return
		}
		// Between iterations only the advanced entries moved, so the
		// slice is nearly sorted; insertion sort keeps the hot loop
		// free of sort.Slice's per-call reflection allocations.
		for i := 1; i < len(byDoc); i++ {
			e := byDoc[i]
			j := i - 1
			for j >= 0 && byDoc[j].doc > e.doc {
				byDoc[j+1] = byDoc[j]
				j--
			}
			byDoc[j+1] = e
		}
		pivot := 0
		if h.full() {
			theta := h.threshold()
			acc := plan.optUB
			pivot = -1
			for i, e := range byDoc {
				acc += e.ub
				if acc >= theta {
					pivot = i
					break
				}
			}
			if pivot < 0 {
				// Even all remaining entries together stay strictly
				// below the threshold: no further doc can place.
				return
			}
		}
		pivotDoc := byDoc[pivot].doc
		if byDoc[0].doc != pivotDoc {
			// Documents before the pivot are covered only by the
			// pre-pivot prefix, whose bound sum is below the threshold
			// by pivot minimality — skip them.
			for _, e := range byDoc[:pivot] {
				e.seekGE(pivotDoc)
			}
			continue
		}
		last := pivot
		for last+1 < len(byDoc) && byDoc[last+1].doc == pivotDoc {
			last++
		}
		if h.full() {
			theta := h.threshold()
			bub := plan.optUB
			end := docSentinel
			for _, e := range byDoc[:last+1] {
				u, be := e.blockBound()
				bub += u
				if be < end {
					end = be
				}
			}
			if bub < theta {
				if len(byDoc) == 1 && len(byDoc[0].groups) == 1 && len(byDoc[0].groups[0].members) == 1 {
					// Single-cursor plan (the common lone-term query):
					// fast-forward through block metadata instead of
					// re-entering the loop once per rejected block.
					g := byDoc[0].groups[0]
					g.members[0].ffwd(theta, plan.optUB)
					g.updateDoc()
					byDoc[0].updateDoc()
					continue
				}
				// The aligned entries' current blocks cannot produce a
				// qualifying score anywhere in [pivotDoc, end]; jump
				// past the range (capped at the next entry's ordinal,
				// which the bound does not cover).
				t := end + 1
				if last+1 < len(byDoc) && byDoc[last+1].doc < t {
					t = byDoc[last+1].doc
				}
				if t <= pivotDoc {
					t = pivotDoc + 1
				}
				for _, e := range byDoc[:last+1] {
					e.seekGE(t)
				}
				continue
			}
		}
		if h.full() && last == 0 && len(byDoc[0].groups) == 1 && len(byDoc[0].groups[0].members) == 1 {
			// Single-cursor candidate: the memoized per-tf bound caps
			// the true score, so a posting whose bound stays under the
			// threshold would be rejected by the same strict heap
			// comparison — skip the doc-table and doc-length lookups.
			m := byDoc[0].groups[0].members[0]
			if plan.optUB+m.ubFor(m.tf) < h.threshold() {
				byDoc[0].seekGE(pivotDoc + 1)
				continue
			}
		}
		if s.liveAt(pivotDoc) && !excludedAt(plan.not, pivotDoc) {
			h.offer(s, pivotDoc, scoreCandidate(plan.drive, plan.opt, pivotDoc), filters)
		}
		for _, e := range byDoc[:last+1] {
			e.seekGE(pivotDoc + 1)
		}
	}
}

// wandConjunctive leapfrogs the required entries to their next common
// ordinal; at each aligned candidate the block-max bound (required
// entries' current blocks plus the Should entries' global bounds) can
// skip the whole aligned block range.
func (s *shard) wandConjunctive(plan *topkPlan, st *searchStats, h *topkHeap, filters map[string]string) {
	d := 0
	n := 0
	for {
		if n++; n&(cancelStride-1) == 0 && st.canceled() {
			return
		}
		for {
			changed := false
			for _, e := range plan.req {
				e.seekGE(d)
				if e.doc == docSentinel {
					return
				}
				if e.doc > d {
					d = e.doc
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		if h.full() {
			bub := plan.optUB
			end := docSentinel
			for _, e := range plan.req {
				u, be := e.blockBound()
				bub += u
				if be < end {
					end = be
				}
			}
			if bub < h.threshold() {
				d = end + 1
				continue
			}
		}
		if s.liveAt(d) && !excludedAt(plan.not, d) {
			h.offer(s, d, scoreCandidate(plan.req, plan.opt, d), filters)
		}
		d++
	}
}
