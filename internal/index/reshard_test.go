package index

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestReshardEquivalence walks an index through the shard-count
// transitions 1→3→NumCPU→2 and pins, after every transition, the full
// query suite (search with pagination and filters, counts, facets)
// float-equal to both the reference evaluator and a freshly built
// index at that count — extending the eval_equiv harness across
// reshard transitions.
func TestReshardEquivalence(t *testing.T) {
	ix := equivCorpus(t, 1)
	transitions := []int{3, runtime.NumCPU(), 2}
	gen := ix.RingGen()
	for _, n := range transitions {
		if err := ix.ReshardContext(context.Background(), n); err != nil {
			t.Fatalf("Reshard(%d): %v", n, err)
		}
		if got := ix.NumShards(); got != n {
			t.Fatalf("NumShards after Reshard(%d) = %d", n, got)
		}
		if g := ix.RingGen(); n != 1 && g <= gen {
			t.Fatalf("ring gen after Reshard(%d) = %d, want > %d", n, g, gen)
		}
		gen = ix.RingGen()
		fresh := equivCorpus(t, n)
		for name, q := range equivQueries() {
			label := fmt.Sprintf("reshard→%d %s", n, name)
			opts := []SearchOptions{
				{},
				{Limit: 10},
				{Limit: 10, Offset: 7},
				{Limit: 5, Filters: map[string]string{"producer": "Epic"}},
			}
			for i, o := range opts {
				got := ix.mustSearch(q, o)
				mustEqualResults(t, fmt.Sprintf("%s ref opts%d", label, i), got, refSearch(ix, q, o))
				mustEqualResults(t, fmt.Sprintf("%s fresh opts%d", label, i), got, fresh.mustSearch(q, o))
			}
			if got, want := ix.mustCount(q, nil), fresh.mustCount(q, nil); got != want {
				t.Fatalf("%s: Count %d, want %d", label, got, want)
			}
			gotF, wantF := ix.mustFacets(q, "producer", nil), fresh.mustFacets(q, "producer", nil)
			if fmt.Sprint(gotF) != fmt.Sprint(wantF) {
				t.Fatalf("%s: facets %v, want %v", label, gotF, wantF)
			}
		}
		if got, want := ix.Len(), fresh.Len(); got != want {
			t.Fatalf("reshard→%d: Len %d, want %d", n, got, want)
		}
	}
}

// TestReshardValidation covers the edges: invalid counts error, a
// same-count reshard is a no-op that keeps the ring generation, and
// resharding an empty index works.
func TestReshardValidation(t *testing.T) {
	ix := New(WithShards(2))
	if err := ix.ReshardContext(context.Background(), 0); err == nil {
		t.Fatal("Reshard(0) accepted")
	}
	if err := ix.ReshardContext(context.Background(), -3); err == nil {
		t.Fatal("Reshard(-3) accepted")
	}
	gen := ix.RingGen()
	if err := ix.ReshardContext(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if ix.RingGen() != gen {
		t.Fatalf("no-op reshard bumped ring gen %d → %d", gen, ix.RingGen())
	}
	if err := ix.ReshardContext(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	if ix.NumShards() != 5 || ix.Len() != 0 {
		t.Fatalf("empty reshard: shards=%d len=%d", ix.NumShards(), ix.Len())
	}
	if err := ix.Add(Document{ID: "a", Fields: map[string]string{"body": "hello world"}}); err != nil {
		t.Fatal(err)
	}
	if got := ix.mustSearch(TermQuery{Field: "body", Term: "hello"}, SearchOptions{}); len(got) != 1 {
		t.Fatalf("post-reshard add not searchable: %d hits", len(got))
	}
}

// TestRestoreHonorsConfiguredShards is the regression test for the
// silent WithShards override: a snapshot written by a 4-shard index
// (a 4-core box) restored on a WithShards(16) index (a 16-core box)
// must end with 16 shards and rankings float-equal to a fresh
// 16-shard build of the same live documents.
func TestRestoreHonorsConfiguredShards(t *testing.T) {
	src := equivCorpus(t, 4)
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored := New(WithShards(16))
	restored.SetFieldOptions("title", FieldOptions{Boost: 2})
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := restored.NumShards(); got != 16 {
		t.Fatalf("restored NumShards = %d, want configured 16", got)
	}

	fresh := equivCorpus(t, 16)
	for name, q := range equivQueries() {
		mustEqualResults(t, "restore-16 "+name,
			restored.mustSearch(q, SearchOptions{Limit: 20}), fresh.mustSearch(q, SearchOptions{Limit: 20}))
	}

	// The other direction: a wide snapshot restored on a narrow box.
	var wide bytes.Buffer
	if err := restored.Snapshot(&wide); err != nil {
		t.Fatal(err)
	}
	narrow := New(WithShards(2))
	narrow.SetFieldOptions("title", FieldOptions{Boost: 2})
	if err := narrow.Restore(bytes.NewReader(wide.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := narrow.NumShards(); got != 2 {
		t.Fatalf("narrow restore NumShards = %d, want 2", got)
	}
	for name, q := range equivQueries() {
		mustEqualResults(t, "restore-2 "+name,
			narrow.mustSearch(q, SearchOptions{Limit: 20}), fresh.mustSearch(q, SearchOptions{Limit: 20}))
	}
}

// TestReshardReadersBitIdenticalDuringMigration pins the CoW reader
// guarantee: with a static corpus, queries racing a series of
// reshards must return bit-identical results at every instant —
// before, during and after each ring swap.
func TestReshardReadersBitIdenticalDuringMigration(t *testing.T) {
	ix := equivCorpus(t, 2)
	q := MatchQuery{Text: "zelda strategy"}
	baseline := ix.mustSearch(q, SearchOptions{Limit: 20})
	baseCount := ix.mustCount(q, nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failed atomic.Bool
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := ix.mustSearch(q, SearchOptions{Limit: 20})
				if len(got) != len(baseline) {
					failed.Store(true)
					return
				}
				for i := range got {
					if got[i].ID != baseline[i].ID || got[i].Score != baseline[i].Score {
						failed.Store(true)
						return
					}
				}
				if ix.mustCount(q, nil) != baseCount {
					failed.Store(true)
					return
				}
			}
		}()
	}
	for i := 0; i < 6; i++ {
		if err := ix.ReshardContext(context.Background(), 1+i%4); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if failed.Load() {
		t.Fatal("query observed non-baseline results during reshard")
	}
}

// TestReshardTorture races concurrent Add/Delete/Search/Session
// traffic against a sequence of reshards under the race detector,
// then quiesces and pins the surviving state float-equal to a fresh
// build of the same live documents — no write may be lost or
// duplicated across ring swaps.
func TestReshardTorture(t *testing.T) {
	ix := New(WithShards(2))
	ix.SetFieldOptions("title", FieldOptions{Boost: 2})
	// Seed a base corpus.
	for i := 0; i < 200; i++ {
		mustAdd(t, ix, i, 0)
	}

	const writers = 3
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			rev := 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(300)
				switch rng.Intn(4) {
				case 0:
					ix.Delete(tortureID(i))
				default:
					mustAdd(t, ix, i, rev)
					rev++
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		q := MatchQuery{Text: "torture common"}
		for {
			select {
			case <-stop:
				return
			default:
			}
			ix.mustSearch(q, SearchOptions{Limit: 10})
			sess := ix.Session()
			sess.mustSearch(q, SearchOptions{Limit: 5})
			sess.mustCount(q, nil)
		}
	}()

	for _, n := range []int{5, 1, 4, 3, 2} {
		if err := ix.ReshardContext(context.Background(), n); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: rebuild from the survivors and require float-equal
	// rankings — the journal replay must have converged exactly.
	fresh := New(WithShards(ix.NumShards()))
	fresh.SetFieldOptions("title", FieldOptions{Boost: 2})
	n := 0
	for i := 0; i < 300; i++ {
		if doc, ok := ix.Get(tortureID(i)); ok {
			if err := fresh.Add(doc); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	if got := ix.Len(); got != n {
		t.Fatalf("Len = %d, but %d docs retrievable", got, n)
	}
	for name, q := range map[string]Query{
		"match":  MatchQuery{Text: "torture common"},
		"term":   TermQuery{Field: "body", Term: "torture"},
		"phrase": PhraseQuery{Field: "body", Text: "torture common"},
		"all":    AllQuery{},
	} {
		mustEqualResults(t, "torture "+name, ix.mustSearch(q, SearchOptions{}), fresh.mustSearch(q, SearchOptions{}))
	}
}

func tortureID(i int) string { return fmt.Sprintf("t%04d", i) }

func mustAdd(t *testing.T, ix *Index, i, rev int) {
	t.Helper()
	err := ix.Add(Document{
		ID: tortureID(i),
		Fields: map[string]string{
			"title": fmt.Sprintf("Torture %d rev%d", i%7, rev),
			"body":  fmt.Sprintf("torture common text item%d rev%d", i, rev),
		},
		Stored: map[string]string{"n": fmt.Sprint(i)},
	})
	if err != nil {
		t.Error(err)
	}
}

// TestReshardPreservesTombstoneFreeState: migration copies only live
// documents, so a reshard implicitly compacts.
func TestReshardPreservesTombstoneFreeState(t *testing.T) {
	ix := New(WithShards(2))
	fillSequential(t, ix, 20)
	for i := 0; i < 10; i++ {
		ix.Delete(fmt.Sprintf("doc%03d", i))
	}
	if ix.TombstoneRatio() == 0 {
		t.Fatal("expected tombstones before reshard")
	}
	if err := ix.ReshardContext(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if got := ix.TombstoneRatio(); got != 0 {
		t.Fatalf("tombstone ratio after reshard = %v, want 0", got)
	}
	if got := ix.Len(); got != 10 {
		t.Fatalf("Len after reshard = %d, want 10", got)
	}
}
