package index

import (
	"context"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/textproc"
)

type fieldPostings struct {
	// term -> block-compressed postings ordered by doc ordinal
	terms map[string]*postingList
	// total token count across live docs, for average length
	totalLen int
	// per-ordinal field length, dense (0 = absent or empty); docCount
	// tracks how many live ordinals carry the field, the denominator
	// of the BM25 average length.
	docLen   []int
	docCount int
	// minLen is the smallest non-zero field length ever recorded
	// (0 = none yet). Deletes leave it alone: a stale low value is
	// still a valid lower bound on every live length, which is all
	// the block-max score bound needs — BM25 only grows as length
	// shrinks, so bounding at minLen instead of zero stays correct
	// while cutting the bound's slack enormously.
	minLen int
	opts   FieldOptions
	// mapped, when non-nil, backs terms absent from the heap map with
	// the shard's v3 payload (see mapped.go). Read lookups go through
	// lookup(), writes through lookupForWrite().
	mapped *mappedField
	// dict caches the sorted term dictionary for prefix scans and
	// spell candidates. Writers holding the shard write lock
	// invalidate it (Store nil); readers holding the read lock rebuild
	// and cache it on demand — concurrent rebuilds are benign.
	dict atomic.Pointer[[]string]
}

// sortedTerms returns the field's term dictionary in sorted order,
// rebuilding the cache if a writer invalidated it. Callers must hold
// the shard lock (read or write).
func (fp *fieldPostings) sortedTerms() []string {
	if p := fp.dict.Load(); p != nil {
		return *p
	}
	terms := make([]string, 0, len(fp.terms))
	for t := range fp.terms {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	fp.dict.Store(&terms)
	return terms
}

func (fp *fieldPostings) setDocLen(ord, n int) {
	for len(fp.docLen) <= ord {
		// append, not a sized make: amortized doubling keeps a corpus
		// build linear.
		fp.docLen = append(fp.docLen, 0)
	}
	fp.docLen[ord] = n
	fp.docCount++
	if n > 0 && (fp.minLen == 0 || n < fp.minLen) {
		fp.minLen = n
	}
}

func (fp *fieldPostings) lenAt(ord int) int {
	if ord < len(fp.docLen) {
		return fp.docLen[ord]
	}
	return 0
}

// shard is one independent slice of the index. It owns its mutex, its
// postings, its doc table and its ordinal space; ordinals are never
// meaningful across shards. No code path holds two shard locks at
// once, so fan-out readers and single-shard writers cannot deadlock.
// Lock ordering: a shard lock may wrap ix.cfg.RLock (fieldForLocked
// reads the field registry), never the reverse — code holding
// ix.cfg's write lock must not touch a shard lock.
type shard struct {
	mu sync.RWMutex
	ix *Index

	fields map[string]*fieldPostings
	docs   []Document // by ordinal; deleted entries have ID ""
	byID   map[string]int
	live   int
	// dead counts tombstoned ordinals whose postings have not been
	// compacted away yet; compact resets it. The tombstone ratio
	// dead/(dead+live) drives per-shard auto-compaction.
	dead int

	// ms, when non-nil, is the mapped v3 payload this shard was
	// attached from (mapped.go); the doc table and posting lists
	// materialize onto the heap copy-on-write. dirty records any
	// mutation since attach: a clean mapped shard snapshots verbatim.
	ms    *mappedShard
	dirty bool
}

func newShard(ix *Index) *shard {
	return &shard{
		ix:     ix,
		fields: make(map[string]*fieldPostings),
		byID:   make(map[string]int),
	}
}

func (s *shard) setFieldOptions(field string, opts FieldOptions) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fieldForLocked(field).opts = opts
}

func (s *shard) fieldForLocked(field string) *fieldPostings {
	fp, ok := s.fields[field]
	if !ok {
		fp = &fieldPostings{
			terms: make(map[string]*postingList),
		}
		if opts, ok := s.ix.fieldOpts(field); ok {
			fp.opts = opts
		}
		s.fields[field] = fp
	}
	return fp
}

// add inserts doc using per-field tokens analyzed by the caller
// outside the write lock. While a migration is active, the applied op
// is journaled under this shard's write lock, so journal order agrees
// with apply order for any single document ID (same ID, same shard,
// same lock) and the commit replay converges on the same final state.
// The migration pointer is loaded inside the lock: if this add ran
// after the migration's copy pass visited the shard, the load is
// guaranteed to observe the active migration and journal the op.
func (s *shard) add(doc Document, analyzed map[string][]textproc.Token) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addLocked(doc, analyzed)
	if m := s.ix.mig.Load(); m != nil {
		m.journalAdd(doc, analyzed)
	}
}

// addBatch applies the shard's slice of a batched Add under a single
// write-lock acquisition: idxs selects this shard's documents from
// docs, in slice order, so the result is identical to one add() per
// document without paying one lock round trip each. The migration
// pointer is loaded once inside the lock — the copy pass cannot
// visit mid-batch (it needs this same lock), so journaling the whole
// batch against one observation is sound.
func (s *shard) addBatch(docs []Document, analyzed []map[string][]textproc.Token, idxs []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.ix.mig.Load()
	for _, i := range idxs {
		s.addLocked(docs[i], analyzed[i])
		if m != nil {
			m.journalAdd(docs[i], analyzed[i])
		}
	}
}

// addStaging is add without the journal hook, for migration staging
// shards and journal replay — both feed the ring being built, which
// must not journal into itself.
func (s *shard) addStaging(doc Document, analyzed map[string][]textproc.Token) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addLocked(doc, analyzed)
}

// addLocked inserts doc under an already-held write lock. Ordinals
// grow monotonically, so postings always append in increasing doc
// order — the invariant the delta-encoded lists rely on.
func (s *shard) addLocked(doc Document, analyzed map[string][]textproc.Token) {
	s.prepareWriteLocked()
	if ord, ok := s.byID[doc.ID]; ok {
		s.deleteOrdLocked(ord)
		defer s.maybeCompactLocked()
	}
	ord := len(s.docs)
	s.docs = append(s.docs, doc)
	s.byID[doc.ID] = ord
	s.live++
	for field := range doc.Fields {
		fp := s.fieldForLocked(field)
		toks := analyzed[field]
		fp.setDocLen(ord, len(toks))
		fp.totalLen += len(toks)
		perTerm := make(map[string][]int)
		for _, t := range toks {
			perTerm[t.Term] = append(perTerm[t.Term], t.Position)
		}
		for term, positions := range perTerm {
			// lookupForWrite copies a still-mapped term onto the heap
			// first, so the append never touches the mapping.
			list := fp.lookupForWrite(term)
			if list == nil {
				list = &postingList{}
				fp.terms[term] = list
				fp.dict.Store(nil)
			}
			list.appendPosting(ord, positions)
		}
	}
}

func (s *shard) delete(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.deleteByIDLocked(id) {
		return false
	}
	// A delete of a document this shard never held is a no-op on both
	// rings, so only applied deletes are journaled.
	if m := s.ix.mig.Load(); m != nil {
		m.journalDelete(id)
	}
	return true
}

// deleteStaging is delete without the journal hook, for replay into
// migration staging shards.
func (s *shard) deleteStaging(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deleteByIDLocked(id)
}

func (s *shard) deleteByIDLocked(id string) bool {
	// On a still-mapped shard, resolve the ID against the mapped table
	// first: a miss must not materialize anything.
	if s.ms != nil && !s.ms.docsMat {
		if _, ok := s.findOrd(id); !ok {
			return false
		}
		s.prepareWriteLocked()
	}
	s.dirty = true
	ord, ok := s.byID[id]
	if !ok {
		return false
	}
	s.deleteOrdLocked(ord)
	s.maybeCompactLocked()
	return true
}

// deleteOrdLocked tombstones a document ordinal. Postings are lazily
// skipped at query time (posting lists may still reference the
// ordinal) and fully dropped at Compact.
func (s *shard) deleteOrdLocked(ord int) {
	doc := s.docs[ord]
	if doc.ID == "" {
		return
	}
	delete(s.byID, doc.ID)
	for field := range doc.Fields {
		fp := s.fields[field]
		if fp == nil {
			continue
		}
		fp.totalLen -= fp.lenAt(ord)
		if ord < len(fp.docLen) {
			fp.docLen[ord] = 0
		}
		fp.docCount--
	}
	s.docs[ord] = Document{}
	s.live--
	s.dead++
}

// maybeCompactLocked compacts this shard when its tombstone ratio has
// crossed the index's auto-compact threshold. Deletions call it so
// delete-heavy shards reclaim postings without the whole-index
// Compact other shards never needed.
func (s *shard) maybeCompactLocked() {
	t := s.ix.autoCompact
	if t <= 0 || s.dead == 0 {
		return
	}
	if float64(s.dead)/float64(s.dead+s.live) >= t {
		s.compactLocked()
	}
}

// tombstoneRatio reports dead/(dead+live) for this shard; 0 for an
// empty shard.
func (s *shard) tombstoneRatio() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.dead == 0 {
		return 0
	}
	return float64(s.dead) / float64(s.dead+s.live)
}

func (s *shard) compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactLocked()
}

// compactLocked rebuilds every posting list without tombstoned
// ordinals, re-encoding the surviving postings (ordinals are stable,
// so deltas stay valid and positions carry over unchanged).
func (s *shard) compactLocked() {
	if s.dead == 0 {
		// Nothing to reclaim — and the early return keeps Compact on a
		// clean mapped shard from materializing it.
		return
	}
	// Compaction rewrites every list containing tombstones; the walk
	// below iterates the heap maps, so a mapped shard converts first.
	// (Deletes materialized the doc table already; this pulls the
	// posting lists across too.)
	s.materializeAllLocked(true)
	s.dirty = true
	var positions []int
	for _, fp := range s.fields {
		removedTerm := false
		for term, list := range fp.terms {
			diedHere := 0
			it := list.iter()
			for it.next() {
				if s.docs[it.doc].ID == "" {
					diedHere++
				}
			}
			if diedHere == 0 {
				continue
			}
			if diedHere == list.n {
				delete(fp.terms, term)
				removedTerm = true
				continue
			}
			kept := &postingList{}
			it = list.iter()
			pi := list.positions()
			for it.next() {
				if s.docs[it.doc].ID == "" {
					pi.skip(it.tf)
					continue
				}
				positions = pi.read(it.tf, positions)
				kept.appendPosting(it.doc, positions)
			}
			fp.terms[term] = kept
		}
		if removedTerm {
			fp.dict.Store(nil)
		}
	}
	s.dead = 0
}

func (s *shard) lenLive() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.live
}

func (s *shard) get(id string) (Document, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ord, ok := s.findOrd(id)
	if !ok {
		return Document{}, false
	}
	return s.docAt(ord), true
}

// docFreq counts live documents containing the analyzed term.
func (s *shard) docFreq(field, term string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.liveDFLocked(field, term)
}

func (s *shard) liveDFLocked(field, term string) int {
	fp := s.fields[field]
	if fp == nil {
		return 0
	}
	list := fp.lookup(term)
	if list == nil {
		return 0
	}
	if s.dead == 0 {
		// No tombstones anywhere in the shard: every posting is live,
		// so df is the list length — O(1) instead of a full list walk.
		// Compaction restores this fast path after deletions.
		return list.n
	}
	n := 0
	it := list.iter()
	for it.next() {
		if s.liveAt(it.doc) {
			n++
		}
	}
	return n
}

// shardHit is one scored live document inside a shard, before the
// cross-shard merge.
type shardHit struct {
	ord int
	res Result
}

// search evaluates q against this shard only, using the globally
// aggregated stats, and returns hits sorted by (score desc, ID asc).
// When k > 0 a bounded min-heap selects the shard-local top k during
// the scan — the global top k can only contain each shard's local top
// k — instead of sorting every match.
//
// A cancelled ctx skips the shard entirely; cancellation mid-eval is
// caught by the stride polls inside the eval loops, and the caller
// (searchWith) discards every partial once any poll has fired.
func (s *shard) search(ctx context.Context, q Query, st *searchStats, filters map[string]string, k int) []shardHit {
	if ctx.Err() != nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Streamable top-k queries take the block-max early-exit path
	// (wand.go), which skips whole posting blocks the bounded heap's
	// threshold rules out — same hits, same scores, same order.
	if k > 0 && !s.ix.earlyExitOff.Load() {
		if hits, ok := s.searchTopK(q, st, filters, k); ok {
			return hits
		}
	}
	acc := getAccum(s.numDocs())
	defer putAccum(acc)
	q.eval(s, st, acc)
	if st.canceled() {
		return nil
	}
	if k > 0 {
		return s.topKLocked(acc, filters, k)
	}
	hits := getShardHits()
	for ord, seen := range acc.seen {
		if !seen {
			continue
		}
		doc := s.docAt(ord)
		if doc.ID == "" || !matchFilters(doc, filters) {
			continue
		}
		hits = append(hits, shardHit{ord: ord, res: Result{ID: doc.ID, Score: acc.scores[ord], Stored: doc.Stored}})
	}
	slices.SortFunc(hits, cmpShardHits)
	return hits
}

// cmpShardHits orders hits by (score desc, ID asc) — a total order,
// since IDs are unique within a shard.
func cmpShardHits(a, b shardHit) int {
	if a.res.Score != b.res.Score {
		if a.res.Score > b.res.Score {
			return -1
		}
		return 1
	}
	if a.res.ID < b.res.ID {
		return -1
	}
	if a.res.ID > b.res.ID {
		return 1
	}
	return 0
}

// topKLocked selects the k best (score desc, ID asc) matching hits
// with a bounded min-heap: the heap root is the worst retained hit,
// and candidates that cannot beat it are rejected before a Result is
// even built. (score, ID) is a total order — IDs are unique — so the
// selected set and final sort are identical to sorting every match
// and truncating.
func (s *shard) topKLocked(acc *accum, filters map[string]string, k int) []shardHit {
	h := &topkHeap{k: k, h: getShardHits()}
	for ord, seen := range acc.seen {
		if !seen {
			continue
		}
		if !s.liveAt(ord) {
			continue
		}
		h.offer(s, ord, acc.scores[ord], filters)
	}
	return h.sorted()
}

// topkHeap is the bounded min-heap both evaluation paths feed: the
// root is the worst retained hit, its score the running threshold the
// block-max evaluator skips against. Candidates must be offered in
// ascending ordinal order so both paths build identical heaps.
type topkHeap struct {
	h []shardHit
	k int
}

func (t *topkHeap) full() bool { return len(t.h) == t.k }

// threshold is the worst retained score; callers must check full()
// first — with fewer than k hits every candidate must be evaluated.
func (t *topkHeap) threshold() float64 { return t.h[0].res.Score }

// offer considers the live document at ord with score sc. The
// cannot-place rejection runs before the filter check, exactly as the
// original loop ordered them.
func (t *topkHeap) offer(s *shard, ord int, sc float64, filters map[string]string) {
	doc := s.docAt(ord)
	// ranksBelow: (sc, id) orders after the heap root, i.e. is worse.
	if t.full() && (sc < t.h[0].res.Score || (sc == t.h[0].res.Score && doc.ID > t.h[0].res.ID)) {
		return
	}
	if !matchFilters(doc, filters) {
		return
	}
	hit := shardHit{ord: ord, res: Result{ID: doc.ID, Score: sc, Stored: doc.Stored}}
	if len(t.h) < t.k {
		t.h = append(t.h, hit)
		siftUp(t.h, len(t.h)-1)
		return
	}
	t.h[0] = hit
	siftDown(t.h, 0)
}

func (t *topkHeap) sorted() []shardHit {
	slices.SortFunc(t.h, cmpShardHits)
	return t.h
}

// heapLess orders the worst hit first (min-heap on the search order).
func heapLess(a, b shardHit) bool {
	if a.res.Score != b.res.Score {
		return a.res.Score < b.res.Score
	}
	return a.res.ID > b.res.ID
}

func siftUp(h []shardHit, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []shardHit, i int) {
	for {
		least := i
		if l := 2*i + 1; l < len(h) && heapLess(h[l], h[least]) {
			least = l
		}
		if r := 2*i + 2; r < len(h) && heapLess(h[r], h[least]) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// count returns how many live documents in this shard match q with the
// filters.
func (s *shard) count(ctx context.Context, q Query, st *searchStats, filters map[string]string) int {
	if ctx.Err() != nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	acc := getAccum(s.numDocs())
	defer putAccum(acc)
	q.eval(s, st, acc)
	n := 0
	for ord, seen := range acc.seen {
		if !seen {
			continue
		}
		if doc := s.docAt(ord); doc.ID != "" && matchFilters(doc, filters) {
			n++
		}
	}
	return n
}

// facets returns this shard's stored-field value counts for docs
// matching q.
func (s *shard) facets(ctx context.Context, q Query, st *searchStats, field string, filters map[string]string) map[string]int {
	if ctx.Err() != nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	acc := getAccum(s.numDocs())
	defer putAccum(acc)
	q.eval(s, st, acc)
	counts := make(map[string]int)
	for ord, seen := range acc.seen {
		if !seen {
			continue
		}
		doc := s.docAt(ord)
		if doc.ID == "" || !matchFilters(doc, filters) {
			continue
		}
		if v := doc.Stored[field]; v != "" {
			counts[v]++
		}
	}
	return counts
}

// snippetText returns the indexed text of field for the hit at ord,
// re-checking that the ordinal still holds the same document.
func (s *shard) snippetText(ord int, id, field string) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ord >= s.numDocs() || s.idAt(ord) != id {
		return ""
	}
	return s.docAt(ord).Fields[field]
}

// termScorer holds the per-(field, term) constants of the scoring
// formula, hoisted out of the per-posting loop. Corpus-wide inputs
// (live count, document frequency, average field length) come from st
// so scores are identical regardless of shard count.
type termScorer struct {
	ranker   Ranker
	k1, b    float64
	idf      float64
	tfidfIDF float64
	avgLen   float64
	boost    float64
}

// scorerFor resolves the scoring constants for (field, term), or
// ok=false when the term scores nothing (unknown term, df 0).
func (s *shard) scorerFor(fp *fieldPostings, field, term string, st *searchStats) (termScorer, bool) {
	df := st.df[fieldTerm{field, term}]
	if df == 0 {
		return termScorer{}, false
	}
	sc := termScorer{ranker: st.ranker, k1: st.k1, b: st.b}
	sc.idf = math.Log(1 + (float64(st.live)-float64(df)+0.5)/(float64(df)+0.5))
	if st.ranker == RankerTFIDF {
		sc.tfidfIDF = math.Log(float64(st.live+1) / float64(df))
	}
	sc.avgLen = st.avgLen[field]
	if sc.avgLen == 0 {
		sc.avgLen = 1
	}
	sc.boost = fp.opts.Boost
	if sc.boost == 0 {
		sc.boost = 1
	}
	return sc, true
}

// score computes one document's contribution, bit-identical to the
// pre-iterator map evaluator's formula.
func (sc *termScorer) score(tf float64, docLen int) float64 {
	var score float64
	switch sc.ranker {
	case RankerTFIDF:
		// Classic lnc-style TF-IDF with log tf damping and raw
		// inverse document frequency, no length normalization.
		score = (1 + math.Log(tf)) * sc.tfidfIDF
	default: // BM25
		dl := float64(docLen)
		denom := tf + sc.k1*(1-sc.b+sc.b*dl/sc.avgLen)
		score = sc.idf * (tf * (sc.k1 + 1)) / denom
	}
	return sc.boost * score
}

// scoreTermInto scores every live posting of (field, term) into out,
// decoding only the (doc, tf) stream — positions stay untouched. max
// selects disjunctive-max accumulation (across fields) over sum.
func (s *shard) scoreTermInto(fp *fieldPostings, field, term string, st *searchStats, out *accum, max bool) {
	list := fp.lookup(term)
	if list == nil || list.n == 0 {
		return
	}
	sc, ok := s.scorerFor(fp, field, term, st)
	if !ok {
		return
	}
	// Long lists go through the shared cache in decoded form: the
	// varint walk is paid once per mutation era instead of per query.
	if dec := cachedPostings(st.cref, st.stamp, list); dec != nil {
		for i, ord := range dec.ords {
			if i&(cancelStride-1) == cancelStride-1 && st.canceled() {
				return
			}
			doc := int(ord)
			if !s.liveAt(doc) {
				continue
			}
			v := sc.score(float64(dec.tfs[i]), fp.lenAt(doc))
			if max {
				out.mergeMax(doc, v)
			} else {
				out.add(doc, v)
			}
		}
		return
	}
	it := list.iter()
	n := 0
	for it.next() {
		if n++; n&(cancelStride-1) == 0 && st.canceled() {
			return
		}
		if !s.liveAt(it.doc) {
			continue
		}
		v := sc.score(float64(it.tf), fp.lenAt(it.doc))
		if max {
			out.mergeMax(it.doc, v)
		} else {
			out.add(it.doc, v)
		}
	}
}
