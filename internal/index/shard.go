package index

import (
	"math"
	"sort"
	"sync"

	"repro/internal/textproc"
)

type posting struct {
	doc       int   // internal ordinal, local to the shard
	positions []int // term positions within the field
}

type fieldPostings struct {
	// term -> postings ordered by doc ordinal
	terms map[string][]posting
	// total token count across live docs, for average length
	totalLen int
	// per-doc field length
	docLen map[int]int
	opts   FieldOptions
}

// shard is one independent slice of the index. It owns its mutex, its
// postings, its doc table and its ordinal space; ordinals are never
// meaningful across shards. No code path holds two shard locks at
// once, so fan-out readers and single-shard writers cannot deadlock.
// Lock ordering: a shard lock may wrap ix.cfg.RLock (fieldForLocked
// reads the field registry), never the reverse — code holding
// ix.cfg's write lock must not touch a shard lock.
type shard struct {
	mu sync.RWMutex
	ix *Index

	fields map[string]*fieldPostings
	docs   []Document // by ordinal; deleted entries have ID ""
	byID   map[string]int
	live   int
	// dead counts tombstoned ordinals whose postings have not been
	// compacted away yet; compact resets it. The tombstone ratio
	// dead/(dead+live) drives per-shard auto-compaction.
	dead int
}

func newShard(ix *Index) *shard {
	return &shard{
		ix:     ix,
		fields: make(map[string]*fieldPostings),
		byID:   make(map[string]int),
	}
}

func (s *shard) setFieldOptions(field string, opts FieldOptions) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fieldForLocked(field).opts = opts
}

func (s *shard) fieldForLocked(field string) *fieldPostings {
	fp, ok := s.fields[field]
	if !ok {
		fp = &fieldPostings{
			terms:  make(map[string][]posting),
			docLen: make(map[int]int),
		}
		if opts, ok := s.ix.fieldOpts(field); ok {
			fp.opts = opts
		}
		s.fields[field] = fp
	}
	return fp
}

// add inserts doc using per-field tokens analyzed by the caller
// outside the write lock.
func (s *shard) add(doc Document, analyzed map[string][]textproc.Token) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ord, ok := s.byID[doc.ID]; ok {
		s.deleteOrdLocked(ord)
		defer s.maybeCompactLocked()
	}
	ord := len(s.docs)
	s.docs = append(s.docs, doc)
	s.byID[doc.ID] = ord
	s.live++
	for field := range doc.Fields {
		fp := s.fieldForLocked(field)
		toks := analyzed[field]
		fp.docLen[ord] = len(toks)
		fp.totalLen += len(toks)
		perTerm := make(map[string][]int)
		for _, t := range toks {
			perTerm[t.Term] = append(perTerm[t.Term], t.Position)
		}
		for term, positions := range perTerm {
			fp.terms[term] = append(fp.terms[term], posting{doc: ord, positions: positions})
		}
	}
}

func (s *shard) delete(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ord, ok := s.byID[id]
	if !ok {
		return false
	}
	s.deleteOrdLocked(ord)
	s.maybeCompactLocked()
	return true
}

// deleteOrdLocked tombstones a document ordinal. Postings are lazily
// skipped at query time (posting lists may still reference the
// ordinal) and fully dropped at Compact.
func (s *shard) deleteOrdLocked(ord int) {
	doc := s.docs[ord]
	if doc.ID == "" {
		return
	}
	delete(s.byID, doc.ID)
	for field := range doc.Fields {
		fp := s.fields[field]
		if fp == nil {
			continue
		}
		fp.totalLen -= fp.docLen[ord]
		delete(fp.docLen, ord)
	}
	s.docs[ord] = Document{}
	s.live--
	s.dead++
}

// maybeCompactLocked compacts this shard when its tombstone ratio has
// crossed the index's auto-compact threshold. Deletions call it so
// delete-heavy shards reclaim postings without the whole-index
// Compact other shards never needed.
func (s *shard) maybeCompactLocked() {
	t := s.ix.autoCompact
	if t <= 0 || s.dead == 0 {
		return
	}
	if float64(s.dead)/float64(s.dead+s.live) >= t {
		s.compactLocked()
	}
}

// tombstoneRatio reports dead/(dead+live) for this shard; 0 for an
// empty shard.
func (s *shard) tombstoneRatio() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.dead == 0 {
		return 0
	}
	return float64(s.dead) / float64(s.dead+s.live)
}

func (s *shard) compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactLocked()
}

func (s *shard) compactLocked() {
	for _, fp := range s.fields {
		for term, list := range fp.terms {
			kept := list[:0]
			for _, p := range list {
				if s.docs[p.doc].ID != "" {
					kept = append(kept, p)
				}
			}
			if len(kept) == 0 {
				delete(fp.terms, term)
			} else {
				fp.terms[term] = kept
			}
		}
	}
	s.dead = 0
}

func (s *shard) lenLive() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.live
}

func (s *shard) get(id string) (Document, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ord, ok := s.byID[id]
	if !ok {
		return Document{}, false
	}
	return s.docs[ord], true
}

// docFreq counts live documents containing the analyzed term.
func (s *shard) docFreq(field, term string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.liveDFLocked(field, term)
}

func (s *shard) liveDFLocked(field, term string) int {
	fp := s.fields[field]
	if fp == nil {
		return 0
	}
	n := 0
	for _, p := range fp.terms[term] {
		if s.docs[p.doc].ID != "" {
			n++
		}
	}
	return n
}

// shardHit is one scored live document inside a shard, before the
// cross-shard merge.
type shardHit struct {
	ord int
	res Result
}

// search evaluates q against this shard only, using the globally
// aggregated stats, and returns hits sorted by (score desc, ID asc).
// When cap > 0 the list is truncated to cap entries: the global top
// cap can only contain each shard's local top cap.
func (s *shard) search(q Query, st *searchStats, filters map[string]string, cap int) []shardHit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	scores := q.eval(s, st)
	hits := make([]shardHit, 0, len(scores))
	for ord, score := range scores {
		doc := s.docs[ord]
		if doc.ID == "" {
			continue
		}
		if !matchFilters(doc, filters) {
			continue
		}
		hits = append(hits, shardHit{ord: ord, res: Result{ID: doc.ID, Score: score, Stored: doc.Stored}})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].res.Score != hits[j].res.Score {
			return hits[i].res.Score > hits[j].res.Score
		}
		return hits[i].res.ID < hits[j].res.ID
	})
	if cap > 0 && len(hits) > cap {
		hits = hits[:cap]
	}
	return hits
}

// count returns how many live documents in this shard match q with the
// filters.
func (s *shard) count(q Query, st *searchStats, filters map[string]string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for ord := range q.eval(s, st) {
		doc := s.docs[ord]
		if doc.ID != "" && matchFilters(doc, filters) {
			n++
		}
	}
	return n
}

// facets returns this shard's stored-field value counts for docs
// matching q.
func (s *shard) facets(q Query, st *searchStats, field string, filters map[string]string) map[string]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	counts := make(map[string]int)
	for ord := range q.eval(s, st) {
		doc := s.docs[ord]
		if doc.ID == "" || !matchFilters(doc, filters) {
			continue
		}
		if v := doc.Stored[field]; v != "" {
			counts[v]++
		}
	}
	return counts
}

// snippetText returns the indexed text of field for the hit at ord,
// re-checking that the ordinal still holds the same document.
func (s *shard) snippetText(ord int, id, field string) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ord >= len(s.docs) || s.docs[ord].ID != id {
		return ""
	}
	return s.docs[ord].Fields[field]
}

// scoreTerm computes BM25 (or TF-IDF) scores for this shard's live
// docs containing the analyzed term in field. Corpus-wide statistics
// (live count, document frequency, average field length) come from st
// so scores are identical regardless of shard count.
func (s *shard) scoreTerm(field, term string, st *searchStats) map[int]float64 {
	fp := s.fields[field]
	if fp == nil {
		return nil
	}
	list := fp.terms[term]
	if len(list) == 0 {
		return nil
	}
	df := st.df[fieldTerm{field, term}]
	if df == 0 {
		return nil
	}
	idf := math.Log(1 + (float64(st.live)-float64(df)+0.5)/(float64(df)+0.5))
	avgLen := st.avgLen[field]
	if avgLen == 0 {
		avgLen = 1
	}
	boost := fp.opts.Boost
	if boost == 0 {
		boost = 1
	}
	out := make(map[int]float64, len(list))
	for _, p := range list {
		if s.docs[p.doc].ID == "" {
			continue
		}
		tf := float64(len(p.positions))
		var score float64
		switch st.ranker {
		case RankerTFIDF:
			// Classic lnc-style TF-IDF with log tf damping and raw
			// inverse document frequency, no length normalization.
			score = (1 + math.Log(tf)) * math.Log(float64(st.live+1)/float64(df))
		default: // BM25
			dl := float64(fp.docLen[p.doc])
			denom := tf + st.k1*(1-st.b+st.b*dl/avgLen)
			score = idf * (tf * (st.k1 + 1)) / denom
		}
		out[p.doc] = boost * score
	}
	return out
}

func (s *shard) scoreTermDoc(field, term string, ord int, st *searchStats) float64 {
	scores := s.scoreTerm(field, term, st)
	return scores[ord]
}
