package index

import (
	"context"
	"sort"
	"testing"
	"time"
)

// BenchmarkReshard measures the two costs of an online shard
// migration over the 12k-doc Zipf corpus shared with BenchmarkQuery:
// migration throughput (docs moved per second, the operator-facing
// cost model) and query latency while a reshard is in flight (the
// reader-side guarantee: non-blocking, so p50 should stay close to
// the steady-state BenchmarkQuery numbers). Results are tracked in
// BENCH_reshard.json and uploaded per PR by CI next to the
// BenchmarkQuery family.
func BenchmarkReshard(b *testing.B) {
	b.Run("migrate-2to4", func(b *testing.B) {
		ix := New(WithShards(2))
		ix.SetFieldOptions("title", FieldOptions{Boost: 2})
		if err := ix.AddBatch(queryBenchCorpus(queryBenchDocs)); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		targets := [2]int{4, 2}
		for i := 0; i < b.N; i++ {
			if err := ix.ReshardContext(context.Background(), targets[i%2]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(queryBenchDocs)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
	})

	// query-during-reshard: search latency while a migration loop runs
	// in the background. ns/op is the mean; the p50-ns metric is the
	// median of per-op wall times, the number an operator would watch
	// on a latency dashboard during a reshard.
	b.Run("query-during-reshard", func(b *testing.B) {
		ix := New(WithShards(2))
		ix.SetFieldOptions("title", FieldOptions{Boost: 2})
		if err := ix.AddBatch(queryBenchCorpus(queryBenchDocs)); err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		done := make(chan int)
		go func() {
			cycles := 0
			targets := [2]int{4, 2}
			for {
				select {
				case <-stop:
					done <- cycles
					return
				default:
				}
				if err := ix.ReshardContext(context.Background(), targets[cycles%2]); err != nil {
					panic(err)
				}
				cycles++
			}
		}()
		q := MatchQuery{Text: "w0001 w0007 saga"}
		lat := make([]time.Duration, 0, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if rs := ix.mustSearch(q, SearchOptions{Limit: 10}); len(rs) == 0 {
				b.Fatal("no hits")
			}
			lat = append(lat, time.Since(t0))
		}
		b.StopTimer()
		close(stop)
		cycles := <-done
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
		b.ReportMetric(float64(cycles), "reshards")
	})

	// query-steady: the same query with no migration running, built at
	// the same shard count, as the in-flight comparison baseline.
	b.Run("query-steady", func(b *testing.B) {
		ix := New(WithShards(2))
		ix.SetFieldOptions("title", FieldOptions{Boost: 2})
		if err := ix.AddBatch(queryBenchCorpus(queryBenchDocs)); err != nil {
			b.Fatal(err)
		}
		q := MatchQuery{Text: "w0001 w0007 saga"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rs := ix.mustSearch(q, SearchOptions{Limit: 10}); len(rs) == 0 {
				b.Fatal("no hits")
			}
		}
	})
}
