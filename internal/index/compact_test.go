package index

import (
	"fmt"
	"testing"
)

func fillSequential(t testing.TB, ix *Index, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := ix.Add(Document{
			ID:     fmt.Sprintf("doc%03d", i),
			Fields: map[string]string{"body": fmt.Sprintf("common text item%d", i)},
			Stored: map[string]string{"n": fmt.Sprint(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTombstoneRatio(t *testing.T) {
	ix := New(WithShards(1))
	if got := ix.TombstoneRatio(); got != 0 {
		t.Fatalf("empty index ratio = %v", got)
	}
	fillSequential(t, ix, 10)
	for i := 0; i < 4; i++ {
		ix.Delete(fmt.Sprintf("doc%03d", i))
	}
	if got := ix.TombstoneRatio(); got != 0.4 {
		t.Fatalf("ratio after 4/10 deletes = %v, want 0.4", got)
	}
	ix.Compact()
	if got := ix.TombstoneRatio(); got != 0 {
		t.Fatalf("ratio after compact = %v, want 0", got)
	}
	if ratios := ix.ShardTombstoneRatios(); len(ratios) != 1 || ratios[0] != 0 {
		t.Fatalf("shard ratios = %v", ratios)
	}
}

// TestAutoCompact: with WithAutoCompact(0.3), deleting past the
// threshold compacts the affected shard automatically — the ratio
// drops back and dead postings are gone — and queries stay correct
// throughout.
func TestAutoCompact(t *testing.T) {
	ix := New(WithShards(1), WithAutoCompact(0.3))
	fillSequential(t, ix, 10)

	// Two deletes: 2/10 = 0.2 < 0.3, no compaction yet.
	ix.Delete("doc000")
	ix.Delete("doc001")
	if got := ix.TombstoneRatio(); got != 0.2 {
		t.Fatalf("ratio below threshold = %v, want 0.2 (2 dead, 8 live)", got)
	}
	// Third delete crosses the threshold (3/10 = 0.3): the shard
	// compacts itself and the ratio resets.
	ix.Delete("doc002")
	if got := ix.TombstoneRatio(); got != 0 {
		t.Fatalf("ratio after auto-compact = %v, want 0", got)
	}
	// Postings really were pruned: the common term's list holds only
	// live docs.
	s := ix.ring.Load().shards[0]
	s.mu.RLock()
	n := s.fields["body"].terms["common"].n
	s.mu.RUnlock()
	if n != 7 {
		t.Fatalf("postings for 'common' after auto-compact = %d, want 7", n)
	}
	if got := ix.mustSearch(TermQuery{Field: "body", Term: "common"}, SearchOptions{}); len(got) != 7 {
		t.Fatalf("search after auto-compact = %d hits, want 7", len(got))
	}
}

// TestAutoCompactOnReplace: replacing a document tombstones the old
// ordinal, which also counts toward the threshold.
func TestAutoCompactOnReplace(t *testing.T) {
	ix := New(WithShards(1), WithAutoCompact(0.5))
	fillSequential(t, ix, 2)
	// Replace both docs: each replacement kills one ordinal. After the
	// second replace 2 dead / 2 live = 0.5 triggers compaction.
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("doc%03d", i)
		if err := ix.Add(Document{ID: id, Fields: map[string]string{"body": "replaced text"}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ix.TombstoneRatio(); got != 0 {
		t.Fatalf("ratio after replacements = %v, want 0 (auto-compacted)", got)
	}
	if got := ix.mustSearch(TermQuery{Field: "body", Term: "replaced"}, SearchOptions{}); len(got) != 2 {
		t.Fatalf("search = %d hits, want 2", len(got))
	}
}

// TestAutoCompactPerShard: only the shard crossing the threshold
// compacts; a sibling shard's tombstones stay until it crosses too.
func TestAutoCompactPerShard(t *testing.T) {
	ix := New(WithShards(4), WithAutoCompact(0.9))
	fillSequential(t, ix, 40)
	// Delete every doc in exactly one shard: that shard hits ratio
	// 1.0 ≥ 0.9 and compacts; others never cross.
	r := ix.ring.Load()
	victim := r.shards[0]
	var victimIDs []string
	victim.mu.RLock()
	for id := range victim.byID {
		victimIDs = append(victimIDs, id)
	}
	victim.mu.RUnlock()
	// Also one delete in some other shard, below its threshold.
	otherDeleted := false
	for i := 0; i < 40 && !otherDeleted; i++ {
		id := fmt.Sprintf("doc%03d", i)
		if r.shardFor(id) != victim {
			ix.Delete(id)
			otherDeleted = true
		}
	}
	for _, id := range victimIDs {
		ix.Delete(id)
	}
	ratios := ix.ShardTombstoneRatios()
	sawDirty := false
	for i, s := range r.shards {
		if s == victim {
			if ratios[i] != 0 {
				t.Fatalf("victim shard ratio = %v, want 0 (auto-compacted)", ratios[i])
			}
			continue
		}
		if ratios[i] > 0 {
			sawDirty = true
		}
	}
	if !sawDirty {
		t.Fatal("expected an uncompacted sibling shard with tombstones")
	}
}
