package index

import (
	"context"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/textproc"
)

// This file holds the cross-shard machinery: global BM25 statistics
// aggregation, the parallel fan-out helper, and the k-way merges that
// combine per-shard partial results into one globally ranked answer.

// fieldTerm keys the global document-frequency table.
type fieldTerm struct {
	field, term string
}

// searchStats carries the corpus-wide statistics one query evaluation
// needs: live doc count, per-field average lengths, and document
// frequencies for every term the query scores, all aggregated across
// shards before evaluation begins. It also snapshots the scoring
// configuration so a concurrent SetRanker cannot split one search
// across two rankers, and caches query-text analysis so each shard
// evaluates without re-running analyzers under its read lock.
//
// Stats are gathered with at most one shard lock held at a time, and
// evaluation holds only the evaluating shard's lock, so no code path
// ever waits on a second shard lock while holding a first — the
// classic sharded-reader deadlock is structurally impossible.
type searchStats struct {
	live   int
	ranker Ranker
	k1, b  float64
	avgLen map[string]float64
	df     map[fieldTerm]int
	// terms caches AnalyzeTerms output keyed by (field, raw text);
	// toks caches full Analyze output (with positions) for phrases.
	terms map[fieldTerm][]string
	toks  map[fieldTerm][]textproc.Token
	// gen is the scratch generation stamp (see scratch.go): bumped
	// every time this pooled struct is released, so a stale reference
	// from a past query can be detected before it evaluates.
	gen atomic.Uint32
	// need/needFields are gatherStats working maps, pooled with the
	// struct; raw memoizes strings.Fields(strings.ToLower(text)) per
	// query text, and allFields memoizes the index's registered field
	// list, so MatchQuery evaluation never re-derives either per shard.
	need       map[fieldTerm]bool
	needFields map[string]bool
	raw        map[string][]string
	allFields  []string
	// done, when non-nil, is the request context's Done channel. The
	// evaluation loops poll it once per posting block (cancelStride),
	// so a cancelled query stops scoring within one block boundary
	// instead of burning CPU to the end of every posting list. A nil
	// channel (background context) costs one nil check per block.
	done <-chan struct{}
	// cref/stamp carry the attached cross-request cache (nil when none)
	// and the mutation era this evaluation was stamped with, so shard
	// evaluation can fetch and store decoded posting lists.
	cref  *cacheRef
	stamp Stamp
}

// cancelStride is how many postings an evaluation loop scores between
// cancellation polls. It equals the posting block size, so the pinned
// contract is "a cancelled query stops within one block".
const cancelStride = postingBlockSize

// canceled reports whether the request driving this evaluation has
// been cancelled. It never blocks.
func (st *searchStats) canceled() bool {
	if st.done == nil {
		return false
	}
	select {
	case <-st.done:
		return true
	default:
		return false
	}
}

func newSearchStats() *searchStats {
	return &searchStats{
		avgLen:     make(map[string]float64),
		df:         make(map[fieldTerm]int),
		terms:      make(map[fieldTerm][]string),
		toks:       make(map[fieldTerm][]textproc.Token),
		need:       make(map[fieldTerm]bool),
		needFields: make(map[string]bool),
		raw:        make(map[string][]string),
	}
}

// rawTokens returns strings.Fields(strings.ToLower(text)) through the
// per-query memo, so shard evaluation and plan building never re-run
// the tokenizer collectTerms already paid for. It never writes the
// memo: shard evaluation runs concurrently over one shared stats
// struct, so misses (only possible off the public query paths)
// recompute without storing.
func (st *searchStats) rawTokens(text string) []string {
	if toks, ok := st.raw[text]; ok {
		return toks
	}
	return strings.Fields(strings.ToLower(text))
}

// memoRawTokens is rawTokens for the single-threaded collect phase,
// where storing into the memo is safe.
func (st *searchStats) memoRawTokens(text string) []string {
	if toks, ok := st.raw[text]; ok {
		return toks
	}
	toks := strings.Fields(strings.ToLower(text))
	st.raw[text] = toks
	return toks
}

// fieldsOf resolves a MatchQuery's field list: its own when explicit,
// else the memoized index-wide registry (identical to the per-shard
// expansion it replaces — shards skip unknown fields via fp == nil,
// and both lists are sorted).
func (st *searchStats) fieldsOf(explicit []string) []string {
	if len(explicit) > 0 {
		return explicit
	}
	return st.allFields
}

// analyzedTerms returns the cached analysis of raw text for field,
// falling back to the shard's own analyzer on a cache miss.
func (st *searchStats) analyzedTerms(fp *fieldPostings, field, raw string) []string {
	if terms, ok := st.terms[fieldTerm{field, raw}]; ok {
		return terms
	}
	return fp.opts.Analyzer.AnalyzeTerms(raw)
}

// analyzedToks is analyzedTerms for position-carrying tokens.
func (st *searchStats) analyzedToks(fp *fieldPostings, field, raw string) []textproc.Token {
	if toks, ok := st.toks[fieldTerm{field, raw}]; ok {
		return toks
	}
	return fp.opts.Analyzer.Analyze(raw)
}

// gatherStats walks q to find every (field, term) pair it will score,
// then makes one pass over r's shards summing live counts, field
// lengths and document frequencies. Integer sums are exact, so the
// derived floats are bit-identical for any shard count. The ring is
// supplied by the caller so statistics and evaluation read the same
// layout generation even if a reshard swaps rings mid-request. The
// context's Done channel is carried into the stats so every
// evaluation loop downstream can poll for cancellation.
func (ix *Index) gatherStats(ctx context.Context, r *ring, q Query) *searchStats {
	st := getSearchStats()
	st.done = ctx.Done()
	st.ranker, st.k1, st.b = ix.scoringParams()
	st.cref = ix.cache.Load()
	st.stamp = ix.stampFor(r)
	need := st.need
	ix.collectTerms(q, need, st)
	if len(need) == 0 {
		// Nothing scores by BM25 (AllQuery, PrefixQuery): skip the
		// aggregation pass entirely.
		return st
	}
	needFields := st.needFields
	for ft := range need {
		needFields[ft.field] = true
	}
	if st.cref == nil {
		// No cache attached: aggregate straight into the pooled stats
		// maps, no intermediates.
		st.live = aggregateStatsInto(r, needFields, need, st.avgLen, st.df)
		return st
	}
	live, avgLen, df := aggregateStatsCached(st.cref, st.stamp, r, needFields, need)
	st.live = live
	for f, v := range avgLen {
		st.avgLen[f] = v
	}
	for ft, n := range df {
		st.df[ft] = n
	}
	return st
}

// aggregateStats makes one pass over the ring's shards — one shard
// lock at a time, never nested — summing the live doc count, the
// requested fields' total lengths and doc counts, and the requested
// terms' document frequencies. avgLen has an entry only for fields
// some shard actually carries, mirroring the scoring fallback to 1.
func aggregateStats(r *ring, needFields map[string]bool, needTerms map[fieldTerm]bool) (live int, avgLen map[string]float64, df map[fieldTerm]int) {
	avgLen = make(map[string]float64, len(needFields))
	df = make(map[fieldTerm]int, len(needTerms))
	live = aggregateStatsInto(r, needFields, needTerms, avgLen, df)
	return live, avgLen, df
}

// aggregateStatsInto is aggregateStats writing into caller-supplied
// maps (typically a pooled searchStats'), so the uncached aggregation
// path allocates nothing. avgLen gets an entry only for fields some
// shard actually carries, mirroring the scoring fallback to 1.
func aggregateStatsInto(r *ring, needFields map[string]bool, needTerms map[fieldTerm]bool, avgLen map[string]float64, df map[fieldTerm]int) (live int) {
	// The handful of requested fields makes a linear-scanned slice
	// cheaper than a map — and allocation-free at steady state.
	type lenAcc struct {
		field              string
		totalLen, docCount int
		present            bool
	}
	var accBuf [8]lenAcc
	acc := accBuf[:0]
	for f := range needFields {
		if len(acc) == cap(acc) {
			acc = append(acc, lenAcc{field: f})
			continue
		}
		acc = acc[:len(acc)+1]
		acc[len(acc)-1] = lenAcc{field: f}
	}
	for _, s := range r.shards {
		s.mu.RLock()
		live += s.live
		for i := range acc {
			if fp := s.fields[acc[i].field]; fp != nil {
				acc[i].totalLen += fp.totalLen
				acc[i].docCount += fp.docCount
				acc[i].present = true
			}
		}
		for ft := range needTerms {
			df[ft] += s.liveDFLocked(ft.field, ft.term)
		}
		s.mu.RUnlock()
	}
	for i := range acc {
		if !acc[i].present {
			continue
		}
		if acc[i].docCount > 0 {
			avgLen[acc[i].field] = float64(acc[i].totalLen) / float64(acc[i].docCount)
		} else {
			avgLen[acc[i].field] = 1
		}
	}
	return live
}

// collectTerms records every (field, analyzed term) pair q scores and
// fills st's analysis caches so shard evaluation never re-runs an
// analyzer under a shard lock. Pre-seeded cache entries (a Session
// reusing a previous query's analysis) are honored instead of
// re-analyzing. Analysis uses the index-level field registry, which
// SetFieldOptions keeps in lockstep with every shard's per-field
// options.
func (ix *Index) collectTerms(q Query, need map[fieldTerm]bool, st *searchStats) {
	switch t := q.(type) {
	case MatchQuery:
		fields := t.Fields
		if len(fields) == 0 {
			if st.allFields == nil {
				st.allFields = ix.fieldsCached()
			}
			fields = st.allFields
		}
		rawTerms := st.memoRawTokens(t.Text)
		for _, field := range fields {
			opts, ok := ix.fieldOpts(field)
			if !ok {
				continue
			}
			for _, raw := range rawTerms {
				key := fieldTerm{field, raw}
				terms, ok := st.terms[key]
				if !ok {
					terms = ix.analyzedTermsCached(opts, field, raw)
					st.terms[key] = terms
				}
				for _, term := range terms {
					need[fieldTerm{field, term}] = true
				}
			}
		}
	case TermQuery:
		opts, ok := ix.fieldOpts(t.Field)
		if !ok {
			return
		}
		key := fieldTerm{t.Field, t.Term}
		terms, ok := st.terms[key]
		if !ok {
			terms = ix.analyzedTermsCached(opts, t.Field, t.Term)
			st.terms[key] = terms
		}
		if len(terms) > 0 {
			need[fieldTerm{t.Field, terms[0]}] = true
		}
	case PhraseQuery:
		opts, ok := ix.fieldOpts(t.Field)
		if !ok {
			return
		}
		key := fieldTerm{t.Field, t.Text}
		toks, ok := st.toks[key]
		if !ok {
			toks = opts.Analyzer.Analyze(t.Text)
			st.toks[key] = toks
		}
		if len(toks) > 0 {
			// Phrase scoring is anchored on the first term's BM25 score.
			need[fieldTerm{t.Field, toks[0].Term}] = true
		}
	case BoolQuery:
		for _, sub := range t.Must {
			ix.collectTerms(sub, need, st)
		}
		for _, sub := range t.Should {
			ix.collectTerms(sub, need, st)
		}
		for _, sub := range t.MustNot {
			ix.collectTerms(sub, need, st)
		}
	}
}

// eachShard runs fn once per shard of the ring, in parallel when
// there is more than one shard. fn must only take its own shard's
// lock.
func eachShard(r *ring, fn func(i int, s *shard)) {
	fanOut(len(r.shards), func(i int) { fn(i, r.shards[i]) })
}

// fanOut runs fn for 0..n-1, in parallel goroutines when n > 1. It is
// the common fan-out for query evaluation and snapshot encode/decode.
func fanOut(n int, fn func(i int)) {
	if n == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(i)
		}()
	}
	wg.Wait()
}

// mergedHit pairs a result with the shard and ordinal it came from so
// snippet generation can find the source text after the merge.
type mergedHit struct {
	s   *shard
	ord int
	res Result
}

// mergeHits k-way merges per-shard hit lists (each already sorted by
// score desc, ID asc) into one globally ordered list. When cap > 0 the
// merge stops after cap hits. Shard counts are small, so a linear scan
// for the best head beats heap bookkeeping.
// The returned slice comes from a pool; callers release it with
// mergedPool.put when the request's results have been copied out.
func mergeHits(shards []*shard, parts [][]shardHit, cap int) []mergedHit {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if cap <= 0 || cap > total {
		cap = total
	}
	out := mergedPool.get(0)
	heads := headsPool.get(len(parts))
	defer headsPool.put(heads)
	for len(out) < cap {
		best := -1
		for i, p := range parts {
			h := heads[i]
			if h >= len(p) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			b := parts[best][heads[best]].res
			c := p[h].res
			if c.Score > b.Score || (c.Score == b.Score && c.ID < b.ID) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		hit := parts[best][heads[best]]
		heads[best]++
		out = append(out, mergedHit{s: shards[best], ord: hit.ord, res: hit.res})
	}
	return out
}

// mergeFacets sums per-shard facet count maps and returns them sorted
// by count desc, value asc.
func mergeFacets(parts []map[string]int) []FacetCount {
	counts := make(map[string]int)
	for _, p := range parts {
		for v, n := range p {
			counts[v] += n
		}
	}
	out := make([]FacetCount, 0, len(counts))
	for v, n := range counts {
		out = append(out, FacetCount{Value: v, N: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		return out[i].Value < out[j].Value
	})
	return out
}
