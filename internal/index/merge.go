package index

import (
	"context"
	"sort"
	"strings"
	"sync"

	"repro/internal/textproc"
)

// This file holds the cross-shard machinery: global BM25 statistics
// aggregation, the parallel fan-out helper, and the k-way merges that
// combine per-shard partial results into one globally ranked answer.

// fieldTerm keys the global document-frequency table.
type fieldTerm struct {
	field, term string
}

// searchStats carries the corpus-wide statistics one query evaluation
// needs: live doc count, per-field average lengths, and document
// frequencies for every term the query scores, all aggregated across
// shards before evaluation begins. It also snapshots the scoring
// configuration so a concurrent SetRanker cannot split one search
// across two rankers, and caches query-text analysis so each shard
// evaluates without re-running analyzers under its read lock.
//
// Stats are gathered with at most one shard lock held at a time, and
// evaluation holds only the evaluating shard's lock, so no code path
// ever waits on a second shard lock while holding a first — the
// classic sharded-reader deadlock is structurally impossible.
type searchStats struct {
	live   int
	ranker Ranker
	k1, b  float64
	avgLen map[string]float64
	df     map[fieldTerm]int
	// terms caches AnalyzeTerms output keyed by (field, raw text);
	// toks caches full Analyze output (with positions) for phrases.
	terms map[fieldTerm][]string
	toks  map[fieldTerm][]textproc.Token
	// done, when non-nil, is the request context's Done channel. The
	// evaluation loops poll it once per posting block (cancelStride),
	// so a cancelled query stops scoring within one block boundary
	// instead of burning CPU to the end of every posting list. A nil
	// channel (background context) costs one nil check per block.
	done <-chan struct{}
	// cref/stamp carry the attached cross-request cache (nil when none)
	// and the mutation era this evaluation was stamped with, so shard
	// evaluation can fetch and store decoded posting lists.
	cref  *cacheRef
	stamp Stamp
}

// cancelStride is how many postings an evaluation loop scores between
// cancellation polls. It equals the posting block size, so the pinned
// contract is "a cancelled query stops within one block".
const cancelStride = postingBlockSize

// canceled reports whether the request driving this evaluation has
// been cancelled. It never blocks.
func (st *searchStats) canceled() bool {
	if st.done == nil {
		return false
	}
	select {
	case <-st.done:
		return true
	default:
		return false
	}
}

func newSearchStats() *searchStats {
	return &searchStats{
		avgLen: make(map[string]float64),
		df:     make(map[fieldTerm]int),
		terms:  make(map[fieldTerm][]string),
		toks:   make(map[fieldTerm][]textproc.Token),
	}
}

// analyzedTerms returns the cached analysis of raw text for field,
// falling back to the shard's own analyzer on a cache miss.
func (st *searchStats) analyzedTerms(fp *fieldPostings, field, raw string) []string {
	if terms, ok := st.terms[fieldTerm{field, raw}]; ok {
		return terms
	}
	return fp.opts.Analyzer.AnalyzeTerms(raw)
}

// analyzedToks is analyzedTerms for position-carrying tokens.
func (st *searchStats) analyzedToks(fp *fieldPostings, field, raw string) []textproc.Token {
	if toks, ok := st.toks[fieldTerm{field, raw}]; ok {
		return toks
	}
	return fp.opts.Analyzer.Analyze(raw)
}

// gatherStats walks q to find every (field, term) pair it will score,
// then makes one pass over r's shards summing live counts, field
// lengths and document frequencies. Integer sums are exact, so the
// derived floats are bit-identical for any shard count. The ring is
// supplied by the caller so statistics and evaluation read the same
// layout generation even if a reshard swaps rings mid-request. The
// context's Done channel is carried into the stats so every
// evaluation loop downstream can poll for cancellation.
func (ix *Index) gatherStats(ctx context.Context, r *ring, q Query) *searchStats {
	st := newSearchStats()
	st.done = ctx.Done()
	st.ranker, st.k1, st.b = ix.scoringParams()
	st.cref = ix.cache.Load()
	st.stamp = ix.stampFor(r)
	need := make(map[fieldTerm]bool)
	ix.collectTerms(q, need, st)
	if len(need) == 0 {
		// Nothing scores by BM25 (AllQuery, PrefixQuery): skip the
		// aggregation pass entirely.
		return st
	}
	needFields := make(map[string]bool, len(need))
	for ft := range need {
		needFields[ft.field] = true
	}
	live, avgLen, df := aggregateStatsCached(st.cref, st.stamp, r, needFields, need)
	st.live = live
	for f, v := range avgLen {
		st.avgLen[f] = v
	}
	for ft, n := range df {
		st.df[ft] = n
	}
	return st
}

// aggregateStats makes one pass over the ring's shards — one shard
// lock at a time, never nested — summing the live doc count, the
// requested fields' total lengths and doc counts, and the requested
// terms' document frequencies. avgLen has an entry only for fields
// some shard actually carries, mirroring the scoring fallback to 1.
func aggregateStats(r *ring, needFields map[string]bool, needTerms map[fieldTerm]bool) (live int, avgLen map[string]float64, df map[fieldTerm]int) {
	type lenAcc struct{ totalLen, docCount int }
	fieldAcc := make(map[string]*lenAcc, len(needFields))
	df = make(map[fieldTerm]int, len(needTerms))
	for _, s := range r.shards {
		s.mu.RLock()
		live += s.live
		for f, fp := range s.fields {
			if !needFields[f] {
				continue
			}
			acc := fieldAcc[f]
			if acc == nil {
				acc = &lenAcc{}
				fieldAcc[f] = acc
			}
			acc.totalLen += fp.totalLen
			acc.docCount += fp.docCount
		}
		for ft := range needTerms {
			df[ft] += s.liveDFLocked(ft.field, ft.term)
		}
		s.mu.RUnlock()
	}
	avgLen = make(map[string]float64, len(fieldAcc))
	for f, acc := range fieldAcc {
		if acc.docCount > 0 {
			avgLen[f] = float64(acc.totalLen) / float64(acc.docCount)
		} else {
			avgLen[f] = 1
		}
	}
	return live, avgLen, df
}

// collectTerms records every (field, analyzed term) pair q scores and
// fills st's analysis caches so shard evaluation never re-runs an
// analyzer under a shard lock. Pre-seeded cache entries (a Session
// reusing a previous query's analysis) are honored instead of
// re-analyzing. Analysis uses the index-level field registry, which
// SetFieldOptions keeps in lockstep with every shard's per-field
// options.
func (ix *Index) collectTerms(q Query, need map[fieldTerm]bool, st *searchStats) {
	switch t := q.(type) {
	case MatchQuery:
		fields := t.Fields
		if len(fields) == 0 {
			fields = ix.Fields()
		}
		rawTerms := strings.Fields(strings.ToLower(t.Text))
		for _, field := range fields {
			opts, ok := ix.fieldOpts(field)
			if !ok {
				continue
			}
			for _, raw := range rawTerms {
				key := fieldTerm{field, raw}
				terms, ok := st.terms[key]
				if !ok {
					terms = opts.Analyzer.AnalyzeTerms(raw)
					st.terms[key] = terms
				}
				for _, term := range terms {
					need[fieldTerm{field, term}] = true
				}
			}
		}
	case TermQuery:
		opts, ok := ix.fieldOpts(t.Field)
		if !ok {
			return
		}
		key := fieldTerm{t.Field, t.Term}
		terms, ok := st.terms[key]
		if !ok {
			terms = opts.Analyzer.AnalyzeTerms(t.Term)
			st.terms[key] = terms
		}
		if len(terms) > 0 {
			need[fieldTerm{t.Field, terms[0]}] = true
		}
	case PhraseQuery:
		opts, ok := ix.fieldOpts(t.Field)
		if !ok {
			return
		}
		key := fieldTerm{t.Field, t.Text}
		toks, ok := st.toks[key]
		if !ok {
			toks = opts.Analyzer.Analyze(t.Text)
			st.toks[key] = toks
		}
		if len(toks) > 0 {
			// Phrase scoring is anchored on the first term's BM25 score.
			need[fieldTerm{t.Field, toks[0].Term}] = true
		}
	case BoolQuery:
		for _, sub := range t.Must {
			ix.collectTerms(sub, need, st)
		}
		for _, sub := range t.Should {
			ix.collectTerms(sub, need, st)
		}
		for _, sub := range t.MustNot {
			ix.collectTerms(sub, need, st)
		}
	}
}

// eachShard runs fn once per shard of the ring, in parallel when
// there is more than one shard. fn must only take its own shard's
// lock.
func eachShard(r *ring, fn func(i int, s *shard)) {
	fanOut(len(r.shards), func(i int) { fn(i, r.shards[i]) })
}

// fanOut runs fn for 0..n-1, in parallel goroutines when n > 1. It is
// the common fan-out for query evaluation and snapshot encode/decode.
func fanOut(n int, fn func(i int)) {
	if n == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(i)
		}()
	}
	wg.Wait()
}

// mergedHit pairs a result with the shard and ordinal it came from so
// snippet generation can find the source text after the merge.
type mergedHit struct {
	s   *shard
	ord int
	res Result
}

// mergeHits k-way merges per-shard hit lists (each already sorted by
// score desc, ID asc) into one globally ordered list. When cap > 0 the
// merge stops after cap hits. Shard counts are small, so a linear scan
// for the best head beats heap bookkeeping.
func mergeHits(shards []*shard, parts [][]shardHit, cap int) []mergedHit {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if cap <= 0 || cap > total {
		cap = total
	}
	out := make([]mergedHit, 0, cap)
	heads := make([]int, len(parts))
	for len(out) < cap {
		best := -1
		for i, p := range parts {
			h := heads[i]
			if h >= len(p) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			b := parts[best][heads[best]].res
			c := p[h].res
			if c.Score > b.Score || (c.Score == b.Score && c.ID < b.ID) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		hit := parts[best][heads[best]]
		heads[best]++
		out = append(out, mergedHit{s: shards[best], ord: hit.ord, res: hit.res})
	}
	return out
}

// mergeFacets sums per-shard facet count maps and returns them sorted
// by count desc, value asc.
func mergeFacets(parts []map[string]int) []FacetCount {
	counts := make(map[string]int)
	for _, p := range parts {
		for v, n := range p {
			counts[v] += n
		}
	}
	out := make([]FacetCount, 0, len(counts))
	for v, n := range counts {
		out = append(out, FacetCount{Value: v, N: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		return out[i].Value < out[j].Value
	})
	return out
}
