package index

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// midwayCtx reports done from the start but only admits being
// cancelled from the second Err() call on. SearchContext's entry
// check (the first Err call) therefore passes, evaluation begins, and
// the eval loops observe the closed Done channel — a deterministic
// stand-in for "the context was cancelled after evaluation started",
// with no timing dependence.
type midwayCtx struct {
	context.Context
	mu   sync.Mutex
	errs int
}

var closedCh = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

func (c *midwayCtx) Done() <-chan struct{} { return closedCh }

func (c *midwayCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errs++
	if c.errs == 1 {
		return nil
	}
	return context.Canceled
}

func cancelTestIndex(t *testing.T, n int) *Index {
	t.Helper()
	ix := New(WithShards(1))
	docs := make([]Document, n)
	for i := range docs {
		docs[i] = Document{
			ID:     fmt.Sprintf("d%05d", i),
			Fields: map[string]string{"body": "foo common text"},
			Stored: map[string]string{"kind": "k"},
		}
	}
	if err := ix.AddBatch(docs); err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestSearchContextPreCancelled(t *testing.T) {
	ix := cancelTestIndex(t, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := TermQuery{Field: "body", Term: "foo"}

	if res, err := ix.SearchContext(ctx, q, SearchOptions{}); !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("SearchContext = %v, %v; want nil, context.Canceled", res, err)
	}
	if n, err := ix.CountContext(ctx, q, nil); !errors.Is(err, context.Canceled) || n != 0 {
		t.Fatalf("CountContext = %d, %v; want 0, context.Canceled", n, err)
	}
	if fc, err := ix.FacetsContext(ctx, q, "kind", nil); !errors.Is(err, context.Canceled) || fc != nil {
		t.Fatalf("FacetsContext = %v, %v; want nil, context.Canceled", fc, err)
	}

	sess := ix.Session()
	if res, err := sess.SearchContext(ctx, q, SearchOptions{}); !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("Session.SearchContext = %v, %v; want nil, context.Canceled", res, err)
	}
	if n, err := sess.CountContext(ctx, q, nil); !errors.Is(err, context.Canceled) || n != 0 {
		t.Fatalf("Session.CountContext = %d, %v; want 0, context.Canceled", n, err)
	}
	if fc, err := sess.FacetsContext(ctx, q, "kind", nil); !errors.Is(err, context.Canceled) || fc != nil {
		t.Fatalf("Session.FacetsContext = %v, %v; want nil, context.Canceled", fc, err)
	}
}

// TestCancelStopsWithinOneBlock pins the cancellation granularity
// contract: once the context is done, an evaluation loop scores at
// most cancelStride (= one posting block) more postings before
// stopping. The term posting list spans many blocks; with the done
// channel closed from the start, the first stride poll fires before
// posting cancelStride+1 is accumulated.
func TestCancelStopsWithinOneBlock(t *testing.T) {
	const docs = 40 * postingBlockSize
	ix := cancelTestIndex(t, docs)
	r := ix.ring.Load()
	s := r.shards[0]

	q := TermQuery{Field: "body", Term: "foo"}
	st := ix.gatherStats(context.Background(), r, q)
	st.done = closedCh

	s.mu.RLock()
	acc := getAccum(len(s.docs))
	q.eval(s, st, acc)
	scored := 0
	for _, seen := range acc.seen {
		if seen {
			scored++
		}
	}
	putAccum(acc)
	s.mu.RUnlock()

	if scored > cancelStride {
		t.Fatalf("cancelled eval scored %d postings; want <= %d (one block)", scored, cancelStride)
	}
	if scored == 0 {
		t.Fatal("eval scored nothing; the stride poll should fire mid-list, not before the list")
	}
}

// TestCancelMidEvaluation drives the full SearchContext path with a
// context that reports cancellation only after the entry check, so
// the cancel lands mid-evaluation by construction. Partial results
// must be discarded.
func TestCancelMidEvaluation(t *testing.T) {
	ix := cancelTestIndex(t, 8*postingBlockSize)
	ctx := &midwayCtx{Context: context.Background()}
	res, err := ix.SearchContext(ctx, TermQuery{Field: "body", Term: "foo"}, SearchOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("got %d partial results; want none", len(res))
	}
}

// TestCancelPromptOverBenchCorpus runs a deliberately heavy query
// over the 12k-doc bench corpus with a context that reports
// cancellation right after the entry check (midwayCtx — racing a real
// timer against the only P is unreliable on single-CPU CI), and pins
// that the cancelled evaluation returns promptly: the stride polls
// must cut evaluation far below the uncancelled baseline, not let it
// run to completion and fail at the final check.
func TestCancelPromptOverBenchCorpus(t *testing.T) {
	ix := New()
	ix.SetFieldOptions("title", FieldOptions{Boost: 2})
	if err := ix.AddBatch(queryBenchCorpus(queryBenchDocs)); err != nil {
		t.Fatal(err)
	}
	// A wide disjunction over the Zipf head: long posting lists in
	// every branch, so evaluation is orders of magnitude longer than
	// the cancellation stride.
	var q BoolQuery
	for i := 0; i < 64; i++ {
		q.Should = append(q.Should, MatchQuery{Text: fmt.Sprintf("w%04d w%04d", i, i+1)})
	}

	// Warm, then take the best of three as the uncancelled baseline.
	full := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := ix.SearchContext(context.Background(), q, SearchOptions{Limit: 10}); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < full {
			full = d
		}
	}

	cancelled := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		ctx := &midwayCtx{Context: context.Background()}
		start := time.Now()
		res, err := ix.SearchContext(ctx, q, SearchOptions{Limit: 10})
		d := time.Since(start)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v; want context.Canceled", err)
		}
		if res != nil {
			t.Fatalf("got %d partial results alongside cancellation", len(res))
		}
		if d < cancelled {
			cancelled = d
		}
	}
	if cancelled >= full/2 {
		t.Fatalf("cancelled evaluation took %v; want well under the %v uncancelled baseline", cancelled, full)
	}
}

// TestReshardContextCancelled checks an aborted reshard leaves the
// ring, the configured target, and the data untouched, and that the
// index remains fully writable and reshardable afterwards.
func TestReshardContextCancelled(t *testing.T) {
	ix := cancelTestIndex(t, 500)
	before := ix.NumShards()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ix.ReshardContext(ctx, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReshardContext = %v; want context.Canceled", err)
	}
	if got := ix.NumShards(); got != before {
		t.Fatalf("aborted reshard changed shard count: %d -> %d", before, got)
	}
	if ix.Resharding() {
		t.Fatal("migration still published after aborted reshard")
	}
	if err := ix.Add(Document{ID: "after", Fields: map[string]string{"body": "foo"}}); err != nil {
		t.Fatalf("Add after aborted reshard: %v", err)
	}
	if err := ix.ReshardContext(context.Background(), 4); err != nil {
		t.Fatalf("ReshardContext retry: %v", err)
	}
	if got := ix.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d; want 4", got)
	}
	n, err := ix.CountContext(context.Background(), TermQuery{Field: "body", Term: "foo"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 501 {
		t.Fatalf("Count after reshard = %d; want 501", n)
	}
}
