package index

import "sync"

// accum is the dense per-shard scratch one query node evaluates into:
// a score slot per ordinal plus a membership flag (a match may carry
// score 0 — e.g. a filter-only BoolQuery — so presence cannot be
// inferred from the score). Ordinals are dense within a shard, so a
// flat array replaces the per-node map[int]float64 the old evaluator
// allocated; buffers recycle through a sync.Pool and steady-state
// evaluation allocates nothing per query node.
//
// All combine operations preserve the reference evaluator's float
// semantics exactly: per-ordinal additions happen in the same order
// the map evaluator applied them, and every score is non-negative, so
// `0 + x` on a fresh slot is bit-identical to the map's first insert.
type accum struct {
	scores []float64
	seen   []bool
}

var accumPool = sync.Pool{New: func() any { return new(accum) }}

// getAccum returns a zeroed accumulator with n slots.
func getAccum(n int) *accum {
	a := accumPool.Get().(*accum)
	if cap(a.scores) < n {
		a.scores = make([]float64, n)
		a.seen = make([]bool, n)
		return a
	}
	a.scores = a.scores[:n]
	a.seen = a.seen[:n]
	a.clear()
	return a
}

func putAccum(a *accum) { accumPool.Put(a) }

func (a *accum) clear() {
	for i := range a.scores {
		a.scores[i] = 0
	}
	for i := range a.seen {
		a.seen[i] = false
	}
}

// add accumulates a score contribution (sum semantics).
func (a *accum) add(ord int, sc float64) {
	a.scores[ord] += sc
	a.seen[ord] = true
}

// mergeMax keeps the maximum contribution (disjunctive max across
// fields). Membership follows the map evaluator exactly: a document
// joins only when some contribution beats the slot's current value
// (zero when untouched), so a non-positive score never creates a
// match on its own.
func (a *accum) mergeMax(ord int, sc float64) {
	if sc > a.scores[ord] {
		a.scores[ord] = sc
		a.seen[ord] = true
	}
}

// unionAdd folds b into a with OR semantics: every ordinal in b joins
// a, scores summed.
func (a *accum) unionAdd(b *accum) {
	for i, seen := range b.seen {
		if seen {
			a.scores[i] += b.scores[i]
			a.seen[i] = true
		}
	}
}

// intersectAdd keeps only ordinals present in both, summing scores —
// AND / conjunctive-must semantics.
func (a *accum) intersectAdd(b *accum) {
	for i, seen := range a.seen {
		if !seen {
			continue
		}
		if b.seen[i] {
			a.scores[i] += b.scores[i]
		} else {
			a.seen[i] = false
			a.scores[i] = 0
		}
	}
}

// addSeen adds b's scores to ordinals already in a without changing
// membership — Should contributions on top of a Must set. Slots b
// never touched hold 0, matching the map evaluator's `+= any[ord]`
// on a missing key.
func (a *accum) addSeen(b *accum) {
	for i, seen := range a.seen {
		if seen {
			a.scores[i] += b.scores[i]
		}
	}
}

// gate restricts a to ordinals present in b and replaces scores with
// b's — pure-Should semantics: must match at least one, Should scores
// win over the zeroed All base.
func (a *accum) gate(b *accum) {
	for i, seen := range a.seen {
		if !seen {
			continue
		}
		if b.seen[i] {
			a.scores[i] = b.scores[i]
		} else {
			a.seen[i] = false
			a.scores[i] = 0
		}
	}
}

// subtract removes b's ordinals from a — MustNot semantics.
func (a *accum) subtract(b *accum) {
	for i, seen := range b.seen {
		if seen {
			a.seen[i] = false
			a.scores[i] = 0
		}
	}
}
