package index

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Process-wide shard executor: a fixed pool of workers with per-worker
// run queues and work-stealing that replaces the per-query goroutine
// fan-out on the read path (search, count, facets). One query used to
// spawn one goroutine per shard per call — under load that is pure
// scheduler churn, since the runtime only has GOMAXPROCS lanes anyway.
// The executor caps the process at a fixed worker set and lets the
// submitting goroutine participate in its own job, so
//
//   - goroutine creation on the query path drops to zero,
//   - a saturated server degrades to inline single-threaded execution
//     (flat throughput) instead of drowning in runnable goroutines,
//   - an idle server still fans a big query out across all workers.
//
// Progress is never owed to the pool: the caller claims tasks from its
// own job until none remain, so a job completes even if every worker
// is busy elsewhere. Workers are strictly an acceleration.
//
// Job lifecycle and the scratch-safety contract: jobs are pooled and
// recycled. A job is only reset and returned to the pool when its
// reference count — one for the submitter, one per queued worker ref —
// reaches zero, so a worker that dequeues a stale reference after the
// job completed can never observe the next query's task function or
// double-complete into its scratch. Combined with the join in
// runShards (the submitter always waits for every task, even when the
// request context is already cancelled), nothing downstream can
// release per-query scratch while an executor task still writes to it.

// execJob is one fan-out: run fn(i) for i in [0, n).
type execJob struct {
	fn func(int)
	n  int32
	// next is the claim cursor: a worker (or the submitter) owns index
	// i by winning next.Add(1)-1 == i.
	next atomic.Int32
	// done counts completed tasks; whoever completes the last one
	// signals fin.
	done atomic.Int32
	// refs pins the job: 1 for the submitter plus 1 per queued worker
	// reference. The job recycles only at zero, so stale queue entries
	// can never touch a reset job.
	refs atomic.Int32
	fin  chan struct{}
}

var execJobPool = sync.Pool{
	New: func() any { return &execJob{fin: make(chan struct{}, 1)} },
}

// run claims and executes tasks until the claim cursor passes n.
func (j *execJob) run() {
	n := j.n
	for {
		i := j.next.Add(1) - 1
		if i >= n {
			return
		}
		j.fn(int(i))
		if j.done.Add(1) == n {
			j.fin <- struct{}{}
		}
	}
}

// release drops one reference; the last reference resets and pools
// the job.
func (j *execJob) release() {
	if j.refs.Add(-1) == 0 {
		j.fn = nil
		execJobPool.Put(j)
	}
}

// execWorker is one pool worker: a mutex-guarded run queue plus a
// one-slot wake channel (the buffered token survives the race between
// a submitter's wake and the worker's park, so wakeups are never
// lost).
type execWorker struct {
	mu   sync.Mutex
	q    []*execJob
	wake chan struct{}
}

func (w *execWorker) pop() *execJob {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.q) == 0 {
		return nil
	}
	j := w.q[len(w.q)-1]
	w.q[len(w.q)-1] = nil
	w.q = w.q[:len(w.q)-1]
	return j
}

// steal takes from the queue's front — the oldest job — so stolen work
// is the work least likely to still be contended by the queue's owner.
func (w *execWorker) steal() *execJob {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.q) == 0 {
		return nil
	}
	j := w.q[0]
	copy(w.q, w.q[1:])
	w.q[len(w.q)-1] = nil
	w.q = w.q[:len(w.q)-1]
	return j
}

// executor is one immutable generation of the pool. ConfigureExecutor
// swaps the whole value so resizing never locks the submit path.
type executor struct {
	workers []*execWorker
	quit    chan struct{}
	// idle counts parked workers — the adaptive fan-out signal: a
	// query only queues helper references when somebody is free to take
	// them, and degrades to inline execution when the pool is
	// saturated.
	idle atomic.Int32
	// rr round-robins which worker queue a submission lands on.
	rr atomic.Uint32
	// wg tracks worker goroutines for leak-free shutdown.
	wg sync.WaitGroup
}

func newExecutor(n int) *executor {
	e := &executor{quit: make(chan struct{})}
	e.workers = make([]*execWorker, n)
	for i := range e.workers {
		e.workers[i] = &execWorker{wake: make(chan struct{}, 1)}
	}
	for i := range e.workers {
		e.wg.Add(1)
		go e.workerLoop(i)
	}
	return e
}

func (e *executor) workerLoop(self int) {
	defer e.wg.Done()
	w := e.workers[self]
	for {
		j := w.pop()
		if j == nil {
			for o := range e.workers {
				if o == self {
					continue
				}
				if j = e.workers[o].steal(); j != nil {
					execStolen.Add(1)
					break
				}
			}
		}
		if j != nil {
			j.run()
			j.release()
			continue
		}
		// Park: declare idleness, re-check for work submitted in the
		// window, then block on the wake token.
		e.idle.Add(1)
		if e.anyQueued() {
			e.idle.Add(-1)
			continue
		}
		select {
		case <-w.wake:
			e.idle.Add(-1)
		case <-e.quit:
			e.idle.Add(-1)
			return
		}
	}
}

func (e *executor) anyQueued() bool {
	for _, w := range e.workers {
		w.mu.Lock()
		n := len(w.q)
		w.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// offer queues helpers references to j on distinct worker queues and
// wakes their owners. It never blocks.
func (e *executor) offer(j *execJob, helpers int) {
	start := int(e.rr.Add(1))
	for k := 0; k < helpers; k++ {
		w := e.workers[(start+k)%len(e.workers)]
		w.mu.Lock()
		w.q = append(w.q, j)
		w.mu.Unlock()
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// close stops the workers after their queues drain naturally: quit
// only wins the park select, so a worker holding queued jobs finishes
// them first (job references are pinned regardless, and submitters
// self-complete, so even an abandoned queue entry would be safe —
// this just keeps the common shutdown tidy).
func (e *executor) close() {
	close(e.quit)
	e.wg.Wait()
}

// Global executor state. The pool is process-wide by design: it exists
// to bound total query parallelism across every index in the process,
// which a per-index pool cannot do.
var (
	execPtr      atomic.Pointer[executor]
	execInitOnce sync.Once
	execMu       sync.Mutex // serializes ConfigureExecutor
	execOff      atomic.Bool

	// Counters for /statusz and the benchmarks.
	execParallel atomic.Uint64 // fan-outs that queued helper refs
	execInline   atomic.Uint64 // fan-outs executed fully inline
	execTasks    atomic.Uint64 // shard tasks executed (any path)
	execStolen   atomic.Uint64 // jobs taken from another worker's queue
)

func currentExecutor() *executor {
	if e := execPtr.Load(); e != nil {
		return e
	}
	execInitOnce.Do(func() {
		execMu.Lock()
		defer execMu.Unlock()
		if execPtr.Load() == nil {
			execPtr.Store(newExecutor(runtime.GOMAXPROCS(0)))
		}
	})
	return execPtr.Load()
}

// ConfigureExecutor resizes the process-wide shard executor to n
// workers (n < 1 means GOMAXPROCS). The previous pool's workers drain
// and exit; in-flight jobs are unaffected because submitters always
// self-complete their jobs.
func ConfigureExecutor(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	execMu.Lock()
	defer execMu.Unlock()
	old := execPtr.Load()
	execPtr.Store(newExecutor(n))
	if old != nil {
		old.close()
	}
}

// SetExecutorEnabled toggles the shared executor for the query read
// path. Disabled, fan-out reverts to the legacy one-goroutine-per-
// shard spawn — for A/B benchmarks and equivalence tests; results are
// bit-identical either way.
func SetExecutorEnabled(on bool) { execOff.Store(!on) }

// ExecutorStats is the operator view of the shard executor.
type ExecutorStats struct {
	Workers  int    `json:"workers"`
	Idle     int    `json:"idle"`
	Enabled  bool   `json:"enabled"`
	Parallel uint64 `json:"parallelRuns"`
	Inline   uint64 `json:"inlineRuns"`
	Tasks    uint64 `json:"tasks"`
	Stolen   uint64 `json:"stolen"`
}

// GetExecutorStats reports the process-wide executor counters.
func GetExecutorStats() ExecutorStats {
	e := currentExecutor()
	return ExecutorStats{
		Workers:  len(e.workers),
		Idle:     int(e.idle.Load()),
		Enabled:  !execOff.Load(),
		Parallel: execParallel.Load(),
		Inline:   execInline.Load(),
		Tasks:    execTasks.Load(),
		Stolen:   execStolen.Load(),
	}
}

// workHint estimates the postings work a query will score — the sum of
// the global document frequencies of its terms, which upper-bounds the
// candidate set. Below inlineWorkHint the fixed cost of queueing and
// waking helpers exceeds the work itself and the fan-out runs inline.
func (st *searchStats) workHint() int {
	n := 0
	for _, df := range st.df {
		n += df
	}
	return n
}

// inlineWorkHint is the postings-work floor under which a query never
// fans out: scoring a few hundred postings is faster than one
// queue/wake round trip.
const inlineWorkHint = 512

// runShards executes fn once per shard of the ring for the query read
// path. Parallelism is adaptive: the fan-out degree is the number of
// currently idle pool workers (capped by shard count), further capped
// to 1 when the estimated postings work is too small to amortize a
// wakeup. Degree 1 runs fully inline on the submitting goroutine —
// the saturation behaviour: when every worker is busy, new queries
// cost zero goroutines and zero queue traffic, so throughput holds
// flat instead of collapsing under scheduler churn.
//
// The submitter always participates and always joins: runShards
// returns only after every fn(i) has returned, even when the request
// context is long cancelled (tasks observe cancellation via st and
// finish within one posting block). Callers may therefore recycle
// any scratch fn wrote to as soon as runShards returns.
func (ix *Index) runShards(st *searchStats, r *ring, fn func(i int, s *shard)) {
	n := len(r.shards)
	if n == 1 {
		execTasks.Add(1)
		fn(0, r.shards[0])
		return
	}
	if execOff.Load() {
		// Legacy per-query goroutine fan-out, kept for A/B measurement
		// and as the equivalence baseline.
		eachShard(r, fn)
		return
	}
	e := currentExecutor()
	degree := int(e.idle.Load()) + 1
	if degree > n {
		degree = n
	}
	if degree > 1 && st != nil && st.workHint() < inlineWorkHint {
		degree = 1
	}
	execTasks.Add(uint64(n))
	if degree <= 1 {
		execInline.Add(1)
		for i, s := range r.shards {
			fn(i, s)
		}
		return
	}
	execParallel.Add(1)
	j := execJobPool.Get().(*execJob)
	j.fn = func(i int) { fn(i, r.shards[i]) }
	j.n = int32(n)
	j.next.Store(0)
	j.done.Store(0)
	j.refs.Store(int32(degree)) // submitter + degree-1 helper refs
	e.offer(j, degree-1)
	j.run()
	<-j.fin
	j.release()
}
