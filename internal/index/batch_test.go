package index

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// batchCorpus builds n docs with Zipf-ish vocabulary and a few
// duplicate IDs so last-write-wins ordering is exercised.
func batchCorpus(n int, seed int64) []Document {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "lattice", "symphony", "quartz", "ember"}
	docs := make([]Document, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("doc-%04d", i)
		if i > 10 && rng.Intn(17) == 0 {
			id = fmt.Sprintf("doc-%04d", rng.Intn(i)) // duplicate: replaces earlier doc
		}
		title := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		body := ""
		for w := 0; w < 5+rng.Intn(20); w++ {
			body += words[rng.Intn(len(words))] + " "
		}
		docs = append(docs, Document{
			ID:     id,
			Fields: map[string]string{"title": title, "body": body},
			Stored: map[string]string{"title": title},
		})
	}
	return docs
}

// searchAll runs a few representative queries and returns their full
// results for equivalence comparison.
func searchAll(t *testing.T, ix *Index) map[string][]Result {
	t.Helper()
	out := make(map[string][]Result)
	for _, q := range []string{"alpha", "symphony quartz", "lattice ember beta"} {
		res, err := ix.SearchContext(context.Background(), MatchQuery{Fields: []string{"title", "body"}, Text: q}, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out[q] = res
	}
	return out
}

// TestAddBatchEquivalence pins the batched write path bit-identical
// to sequential Adds: same docs, same order, same scores, across
// shard counts and batch sizes.
func TestAddBatchEquivalence(t *testing.T) {
	docs := batchCorpus(500, 42)
	for _, shards := range []int{1, 3, 8} {
		for _, batch := range []int{1, 7, 64, 500} {
			t.Run(fmt.Sprintf("shards=%d/batch=%d", shards, batch), func(t *testing.T) {
				seq := New(WithShards(shards))
				for _, d := range docs {
					if err := seq.Add(d); err != nil {
						t.Fatal(err)
					}
				}
				batched := New(WithShards(shards))
				for i := 0; i < len(docs); i += batch {
					end := i + batch
					if end > len(docs) {
						end = len(docs)
					}
					if err := batched.AddBatchContext(context.Background(), docs[i:end]); err != nil {
						t.Fatal(err)
					}
				}
				if seq.Len() != batched.Len() {
					t.Fatalf("len: sequential %d, batched %d", seq.Len(), batched.Len())
				}
				want, got := searchAll(t, seq), searchAll(t, batched)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("batched results diverge from sequential:\nwant %v\ngot  %v", want, got)
				}
			})
		}
	}
}

func TestAddBatchEmptyIDRejected(t *testing.T) {
	ix := New(WithShards(2))
	err := ix.AddBatchContext(context.Background(), []Document{
		{ID: "ok", Fields: map[string]string{"f": "x"}},
		{ID: "", Fields: map[string]string{"f": "y"}},
	})
	if err == nil {
		t.Fatal("empty ID accepted")
	}
	if ix.Len() != 0 {
		t.Fatalf("rejected batch partially applied: len=%d", ix.Len())
	}
}

func TestAddBatchCancelledBeforeApply(t *testing.T) {
	ix := New(WithShards(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ix.AddBatchContext(ctx, batchCorpus(100, 7))
	if err == nil {
		t.Fatal("cancelled batch reported success")
	}
	if ix.Len() != 0 {
		t.Fatalf("cancelled batch applied %d docs; cancellation must land before apply", ix.Len())
	}
}

// TestAddBatchDuringReshard races batched writers against an online
// migration; the journal must capture batch-applied docs exactly
// like single Adds.
func TestAddBatchDuringReshard(t *testing.T) {
	ix := New(WithShards(2))
	if err := ix.AddBatchContext(context.Background(), batchCorpus(300, 1)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	first := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]Document, 0, 8)
			for k := 0; k < 8; k++ {
				batch = append(batch, Document{
					ID:     fmt.Sprintf("live-%05d", n),
					Fields: map[string]string{"body": "symphony lattice ember"},
				})
				n++
			}
			if err := ix.AddBatchContext(context.Background(), batch); err != nil {
				t.Error(err)
				return
			}
			if n == 8 {
				close(first) // first batch acknowledged; reshards may begin
			}
		}
	}()
	<-first
	for _, target := range []int{5, 3} {
		if err := ix.ReshardContext(context.Background(), target); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	// Every live- doc written before the final reshard completed must
	// be present (journal replay), and the index must be internally
	// consistent: Len equals the count of distinct IDs ever added.
	res, err := ix.CountContext(context.Background(), MatchQuery{Fields: []string{"body"}, Text: "symphony"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res == 0 {
		t.Fatal("no live docs found after reshard + batched writes")
	}
	for _, id := range []string{"live-00000", "live-00007"} {
		if _, ok := ix.Get(id); !ok {
			t.Fatalf("batched doc %s lost across reshard", id)
		}
	}
}
