package index

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/textproc"
)

// TestMakeSnippetEquivalence pins the pooled sliding-window snippet
// generator to the seed implementation byte-for-byte across randomized
// texts: stemmed-suffix vocabulary, punctuation, unicode, truncation
// at every fragment boundary, and zero/partial/dense match mixes.
func TestMakeSnippetEquivalence(t *testing.T) {
	SetScratchPooling(true)
	t.Cleanup(func() { SetScratchPooling(true) })

	vocab := []string{
		"game", "games", "gaming", "gamed", "review", "reviews", "reviewing",
		"wine", "wines", "winery", "player", "plays", "running", "ran",
		"ponies", "caresses", "möbius", "東京", "x", "a1b2",
	}
	seps := []string{" ", ", ", "! ", " — ", "\n", "'", "...", "  "}
	rng := rand.New(rand.NewSource(99))

	for iter := 0; iter < 3000; iter++ {
		var b strings.Builder
		nWords := rng.Intn(120)
		for w := 0; w < nWords; w++ {
			b.WriteString(vocab[rng.Intn(len(vocab))])
			b.WriteString(seps[rng.Intn(len(seps))])
		}
		text := b.String()
		var terms []string
		for n := rng.Intn(4); n > 0; n-- {
			terms = append(terms, textproc.Stem(vocab[rng.Intn(len(vocab))]))
		}
		maxLen := []int{1, 20, 160, 4096}[rng.Intn(4)]

		want := makeSnippetRef(text, terms, maxLen)
		got := makeSnippet(text, terms, maxLen)
		if got != want {
			t.Fatalf("iter %d: snippet mismatch for terms %v maxLen %d\ntext: %q\n got: %q\nwant: %q",
				iter, terms, maxLen, text, got, want)
		}
	}

	// Degenerate inputs the random sweep cannot hit deterministically.
	for _, tc := range []struct {
		text   string
		terms  []string
		maxLen int
	}{
		{"", []string{"game"}, 160},
		{"!!! ... ???", []string{"game"}, 160},
		{"!!! ... ??? and much more punctuation follows here", nil, 8},
		{"word", nil, 160},
		{strings.Repeat("review ", 200), []string{"review"}, 160},
	} {
		want := makeSnippetRef(tc.text, tc.terms, tc.maxLen)
		got := makeSnippet(tc.text, tc.terms, tc.maxLen)
		if got != want {
			t.Fatalf("degenerate case %q: got %q want %q", tc.text, got, want)
		}
	}
}

// TestMakeSnippetScratchOffMatchesRef checks the A/B switch: with
// pooling off, makeSnippet must route to the reference implementation.
func TestMakeSnippetScratchOffMatchesRef(t *testing.T) {
	SetScratchPooling(false)
	t.Cleanup(func() { SetScratchPooling(true) })
	text := "the reviews of the game were glowing and the players agreed"
	got := makeSnippet(text, []string{"review"}, 30)
	want := makeSnippetRef(text, []string{"review"}, 30)
	if got != want {
		t.Fatalf("scratch-off path diverged: got %q want %q", got, want)
	}
}

func BenchmarkMakeSnippet(b *testing.B) {
	var sb strings.Builder
	rng := rand.New(rand.NewSource(3))
	words := []string{"game", "review", "wine", "player", "strategy", "vintage", "score", "level"}
	for w := 0; w < 400; w++ {
		sb.WriteString(words[rng.Intn(len(words))])
		sb.WriteByte(' ')
	}
	text := sb.String()
	terms := []string{"review", "vintag"}
	for _, mode := range []struct {
		name   string
		pooled bool
	}{{"ref", false}, {"pooled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			SetScratchPooling(mode.pooled)
			defer SetScratchPooling(true)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				makeSnippet(text, terms, 160)
			}
		})
	}
}
