package index

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/textproc"
)

// Online dynamic resharding: Reshard rebuilds the index toward a new
// shard count while readers keep querying and writers keep mutating.
//
// The protocol is copy-on-write over the ring descriptor (index.go):
//
//  1. Publish a migration. From this point every writer journals the
//     op it applied to the live ring, under the owning shard's write
//     lock (shard.add / shard.delete), so journal order agrees with
//     apply order per document ID.
//  2. Copy one source shard at a time into the staging shards: under
//     the source's read lock, invert its block-compressed postings
//     back into per-document token streams and re-add each live
//     document, routed by the target ring's hash. Only one source
//     shard's worth of decoded tokens is resident at a time — the
//     memory high-water mark of a migration is ~1/N of the corpus.
//     Readers are never blocked (the copy holds a read lock, same as
//     any query). Writers routed to the shard currently being copied
//     queue behind that read lock for the duration of that shard's
//     copy — 1/N of the write traffic at a time; writers on every
//     other shard proceed.
//  3. Commit: take the write gate exclusively (waits for in-flight
//     writers, blocks new ones — readers are unaffected), replay the
//     journal into the staging shards, re-apply the field-options
//     registry, swap the ring pointer, clear the migration. The
//     window is proportional to the journal length, i.e. to the
//     write traffic that arrived during the copy.
//
// A write that lands before the copy pass reads its shard is picked
// up by the copy; one that lands after is journaled (the migration
// pointer is re-loaded under the shard lock, which the copy's read
// lock synchronizes with); one that straddles is both copied and
// journaled, and the replay is idempotent (adds replace, deletes
// tolerate absence). Scores after a reshard are bit-identical to a
// fresh build at the target count because every input to scoring —
// term frequencies, document lengths, live counts, document
// frequencies — is an exact integer carried over unchanged, and
// ordinals never leak across shards.

// migration is the journal shared by writers while a reshard copies.
type migration struct {
	mu  sync.Mutex
	ops []journalOp
}

// journalOp is one applied write: a replacement add (doc + its
// analyzed tokens, so replay never re-runs an analyzer) or a delete.
type journalOp struct {
	del      bool
	id       string
	doc      Document
	analyzed map[string][]textproc.Token
}

func (m *migration) journalAdd(doc Document, analyzed map[string][]textproc.Token) {
	m.mu.Lock()
	m.ops = append(m.ops, journalOp{doc: doc, analyzed: analyzed})
	m.mu.Unlock()
}

func (m *migration) journalDelete(id string) {
	m.mu.Lock()
	m.ops = append(m.ops, journalOp{del: true, id: id})
	m.mu.Unlock()
}

// Resharding reports whether a shard-count migration is in flight.
func (ix *Index) Resharding() bool { return ix.mig.Load() != nil }

// ReshardContext rebuilds the index to n shards online. Readers are
// never blocked: queries run against the old ring throughout the
// migration and against the new ring after the atomic swap, with
// bit-identical scores either way. Writers stay live on every shard
// except the one currently being copied (whose writes queue behind
// the copy's read lock), and all writers pause for the commit window
// while the journal — sized by the write traffic that arrived during
// the copy — is replayed. Concurrent reshard calls serialize;
// resharding to the current count is a no-op.
//
// Cancelling ctx aborts the migration between shard copies: the
// staging ring is dropped, the live ring and the recorded target
// shard count are left exactly as before, and ctx.Err() is returned.
// An abort never loses a write — writers only ever applied ops to the
// live ring; the journal that dies with the migration held copies.
func (ix *Index) ReshardContext(ctx context.Context, n int) error {
	if n < 1 {
		return fmt.Errorf("index: reshard to %d shards", n)
	}
	ix.reshardMu.Lock()
	defer ix.reshardMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	old := ix.ring.Load()
	if len(old.shards) == n {
		ix.target = n
		return nil
	}

	staging := &ring{gen: old.gen + 1, shards: make([]*shard, n)}
	for i := range staging.shards {
		staging.shards[i] = newShard(ix)
	}

	// Publish the migration before reading any source shard: every
	// write applied after this point is journaled (shard.add/delete
	// load the pointer under the shard lock).
	m := &migration{}
	ix.mig.Store(m)

	// Copy one source shard at a time while readers and writers keep
	// using the old ring, checking for cancellation between shards —
	// each copy holds a read lock, so mid-shard aborts would buy
	// little and complicate the journal contract.
	for _, src := range old.shards {
		if err := ctx.Err(); err != nil {
			ix.mig.Store(nil)
			return err
		}
		migrateShard(src, staging)
	}
	if err := ctx.Err(); err != nil {
		ix.mig.Store(nil)
		return err
	}

	// Commit: exclude writers, replay the journal, swap. The target
	// count is recorded only here, so an aborted reshard leaves no
	// trace.
	ix.wgate.Lock()
	ix.target = n
	m.mu.Lock() // writers are drained; taken for the race detector's benefit
	ops := m.ops
	m.mu.Unlock()
	for _, op := range ops {
		if op.del {
			staging.shardFor(op.id).deleteStaging(op.id)
		} else {
			staging.shardFor(op.doc.ID).addStaging(op.doc, op.analyzed)
		}
	}
	// Re-apply the field-options registry: SetFieldOptions calls that
	// raced the copy updated the registry (under the shared write
	// gate) but possibly only the old ring's shards.
	ix.cfg.RLock()
	fields := make(map[string]FieldOptions, len(ix.cfg.fields))
	for f, opts := range ix.cfg.fields {
		fields[f] = opts
	}
	ix.cfg.RUnlock()
	for _, s := range staging.shards {
		for f, opts := range fields {
			s.setFieldOptions(f, opts)
		}
	}
	ix.ring.Store(staging)
	ix.mig.Store(nil)
	ix.wgate.Unlock()
	return nil
}

// migrateShard copies every live document of src into the staging
// ring, reconstructing each document's per-field token stream from
// the inverted postings (term + positions) instead of re-running
// analyzers. Document lengths are preserved exactly: a document's
// token count per field equals the sum of its term frequencies, and
// fields indexed with zero tokens are re-created by addLocked from
// doc.Fields itself.
func migrateShard(src *shard, staging *ring) {
	src.mu.RLock()
	defer src.mu.RUnlock()
	nDocs := src.numDocs()
	toks := make([]map[string][]textproc.Token, nDocs)
	var positions []int
	for field, fp := range src.fields {
		// Walk the full dictionary — heap and still-mapped terms alike.
		// lookup() only touches the lazy view cache, so a mapped shard
		// migrates without materializing anything under the read lock;
		// the staging shards it feeds are plain heap shards.
		for _, term := range fp.sortedTermsAll() {
			list := fp.lookup(term)
			if list == nil {
				continue
			}
			it := list.iter()
			pi := list.positions()
			for it.next() {
				if !src.liveAt(it.doc) {
					pi.skip(it.tf)
					continue
				}
				positions = pi.read(it.tf, positions)
				per := toks[it.doc]
				if per == nil {
					per = make(map[string][]textproc.Token)
					toks[it.doc] = per
				}
				for _, p := range positions {
					per[field] = append(per[field], textproc.Token{Term: term, Position: p})
				}
			}
		}
	}
	for ord := 0; ord < nDocs; ord++ {
		doc := src.docAt(ord)
		if doc.ID == "" {
			continue
		}
		staging.shardFor(doc.ID).addStaging(doc, toks[ord])
		toks[ord] = nil // release as we go; migration memory stays ~1 shard
	}
}
