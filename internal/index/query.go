package index

import (
	"sort"
	"strings"
)

// Query is the interface implemented by all query node types. A query
// evaluates to a set of matching ordinals with scores; composition is
// by the usual boolean operators.
type Query interface {
	// eval returns shard-local ordinal -> score for live documents in
	// s, scoring with the corpus-wide statistics in st.
	eval(s *shard, st *searchStats) map[int]float64
}

// MatchQuery analyzes Text with each field's analyzer and matches
// documents containing any resulting term (disjunctive max across
// fields, sum across terms) — the standard free-text search box query.
type MatchQuery struct {
	// Fields to search. Empty means all indexed fields.
	Fields []string
	Text   string
	// Operator "and" requires every analyzed term to appear (in any of
	// the fields); the default "or" requires at least one.
	Operator string
}

// TermQuery matches documents whose field contains the exact analyzed
// term.
type TermQuery struct {
	Field string
	Term  string
}

// PhraseQuery matches documents where the analyzed terms of Text occur
// at consecutive positions in Field.
type PhraseQuery struct {
	Field string
	Text  string
}

// PrefixQuery matches documents whose field has a term with the given
// prefix (post-analysis). Used by suggestion features.
type PrefixQuery struct {
	Field  string
	Prefix string
}

// BoolQuery combines sub-queries: all Must match (scores summed), at
// least one Should matches if any are present (scores added), none of
// MustNot may match.
type BoolQuery struct {
	Must    []Query
	Should  []Query
	MustNot []Query
}

// AllQuery matches every live document with score 1. It is the primary
// query for browse-style applications with filters only.
type AllQuery struct{}

// Result is one search hit.
type Result struct {
	ID     string
	Score  float64
	Stored map[string]string
	// Snippet holds a highlighted fragment when SearchOptions.Snippet
	// was requested.
	Snippet string
}

// SearchOptions controls Search behaviour.
type SearchOptions struct {
	Limit  int
	Offset int
	// SnippetField, when non-empty, generates a highlighted snippet
	// from that field for each hit using the query's match terms.
	SnippetField string
	// Filters restricts hits to documents whose stored field equals
	// the given value (e.g. site:"ign.com"). Applied post-scoring.
	Filters map[string]string
}

// Search evaluates q and returns ranked results. Evaluation runs in
// two phases: corpus statistics are aggregated across shards (one
// shard lock at a time), then every shard evaluates the query in its
// own goroutine and the ranked partials are k-way merged. Ties break
// on ascending ID, so ordering is deterministic for any shard count.
func (ix *Index) Search(q Query, opts SearchOptions) []Result {
	if q == nil {
		q = AllQuery{}
	}
	st := ix.gatherStats(q)
	want := 0
	if opts.Limit > 0 {
		want = opts.Offset + opts.Limit
	}
	parts := make([][]shardHit, len(ix.shards))
	ix.eachShard(func(i int, s *shard) {
		parts[i] = s.search(q, st, opts.Filters, want)
	})
	merged := mergeHits(ix.shards, parts, want)
	if opts.Offset > 0 {
		if opts.Offset >= len(merged) {
			return nil
		}
		merged = merged[opts.Offset:]
	}
	if opts.Limit > 0 && len(merged) > opts.Limit {
		merged = merged[:opts.Limit]
	}
	hits := make([]Result, len(merged))
	for i, m := range merged {
		hits[i] = m.res
	}
	if opts.SnippetField != "" {
		terms := ix.queryTerms(q, opts.SnippetField)
		for i, m := range merged {
			text := m.s.snippetText(m.ord, m.res.ID, opts.SnippetField)
			hits[i].Snippet = makeSnippet(text, terms, 160)
		}
	}
	return hits
}

// Count returns how many live documents match q with the filters.
func (ix *Index) Count(q Query, filters map[string]string) int {
	if q == nil {
		q = AllQuery{}
	}
	st := ix.gatherStats(q)
	counts := make([]int, len(ix.shards))
	ix.eachShard(func(i int, s *shard) {
		counts[i] = s.count(q, st, filters)
	})
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

func matchFilters(doc Document, filters map[string]string) bool {
	for f, want := range filters {
		if doc.Stored[f] != want {
			return false
		}
	}
	return true
}

func (AllQuery) eval(s *shard, _ *searchStats) map[int]float64 {
	out := make(map[int]float64, s.live)
	for ord, doc := range s.docs {
		if doc.ID != "" {
			out[ord] = 1
		}
	}
	return out
}

func (q TermQuery) eval(s *shard, st *searchStats) map[int]float64 {
	fp := s.fields[q.Field]
	if fp == nil {
		return nil
	}
	terms := st.analyzedTerms(fp, q.Field, q.Term)
	if len(terms) == 0 {
		return nil
	}
	return s.scoreTerm(q.Field, terms[0], st)
}

func (q MatchQuery) eval(s *shard, st *searchStats) map[int]float64 {
	fields := q.Fields
	if len(fields) == 0 {
		for f := range s.fields {
			fields = append(fields, f)
		}
		sort.Strings(fields)
	}
	// Evaluate per term across fields so "and" semantics can require
	// each term somewhere.
	type termScores = map[int]float64
	var perTerm []termScores
	// Terms may analyze differently per field; use the union keyed by
	// the source token text before analysis.
	rawTerms := strings.Fields(strings.ToLower(q.Text))
	if len(rawTerms) == 0 {
		return nil
	}
	for _, raw := range rawTerms {
		acc := make(termScores)
		for _, field := range fields {
			fp := s.fields[field]
			if fp == nil {
				continue
			}
			for _, t := range st.analyzedTerms(fp, field, raw) {
				for ord, sc := range s.scoreTerm(field, t, st) {
					if sc > acc[ord] {
						acc[ord] = sc // max across fields
					}
				}
			}
		}
		perTerm = append(perTerm, acc)
	}
	out := make(map[int]float64)
	if strings.EqualFold(q.Operator, "and") {
		first := perTerm[0]
	outer:
		for ord, sc := range first {
			total := sc
			for _, ts := range perTerm[1:] {
				s2, ok := ts[ord]
				if !ok {
					continue outer
				}
				total += s2
			}
			out[ord] = total
		}
		return out
	}
	for _, ts := range perTerm {
		for ord, sc := range ts {
			out[ord] += sc
		}
	}
	return out
}

func (q PhraseQuery) eval(s *shard, st *searchStats) map[int]float64 {
	fp := s.fields[q.Field]
	if fp == nil {
		return nil
	}
	toks := st.analyzedToks(fp, q.Field, q.Text)
	if len(toks) == 0 {
		return nil
	}
	if len(toks) == 1 {
		return s.scoreTerm(q.Field, toks[0].Term, st)
	}
	// Gather positions per doc for each term, honoring the analyzed
	// position gaps (stopword holes count).
	base := toks[0].Position
	cand := make(map[int][]int) // doc -> positions of first term
	for _, p := range fp.terms[toks[0].Term] {
		if s.docs[p.doc].ID != "" {
			cand[p.doc] = p.positions
		}
	}
	for _, tok := range toks[1:] {
		gap := tok.Position - base
		next := make(map[int][]int)
		for _, p := range fp.terms[tok.Term] {
			starts, ok := cand[p.doc]
			if !ok {
				continue
			}
			posSet := make(map[int]bool, len(p.positions))
			for _, pos := range p.positions {
				posSet[pos] = true
			}
			var kept []int
			for _, start := range starts {
				if posSet[start+gap] {
					kept = append(kept, start)
				}
			}
			if len(kept) > 0 {
				next[p.doc] = kept
			}
		}
		cand = next
		if len(cand) == 0 {
			return nil
		}
	}
	out := make(map[int]float64, len(cand))
	for ord, starts := range cand {
		base := s.scoreTermDoc(q.Field, toks[0].Term, ord, st)
		out[ord] = base * (1 + 0.5*float64(len(starts)))
	}
	return out
}

func (q PrefixQuery) eval(s *shard, _ *searchStats) map[int]float64 {
	fp := s.fields[q.Field]
	if fp == nil {
		return nil
	}
	prefix := strings.ToLower(q.Prefix)
	out := make(map[int]float64)
	for term, list := range fp.terms {
		if !strings.HasPrefix(term, prefix) {
			continue
		}
		for _, p := range list {
			if s.docs[p.doc].ID != "" {
				out[p.doc] += 1
			}
		}
	}
	return out
}

func (q BoolQuery) eval(s *shard, st *searchStats) map[int]float64 {
	var out map[int]float64
	if len(q.Must) > 0 {
		out = q.Must[0].eval(s, st)
		for _, sub := range q.Must[1:] {
			s2 := sub.eval(s, st)
			merged := make(map[int]float64)
			for ord, sc := range out {
				if extra, ok := s2[ord]; ok {
					merged[ord] = sc + extra
				}
			}
			out = merged
		}
	} else {
		out = AllQuery{}.eval(s, st)
		for ord := range out {
			out[ord] = 0
		}
	}
	if len(q.Should) > 0 {
		any := make(map[int]float64)
		for _, sub := range q.Should {
			for ord, sc := range sub.eval(s, st) {
				any[ord] += sc
			}
		}
		if len(q.Must) == 0 {
			// pure should: must match at least one
			merged := make(map[int]float64)
			for ord, sc := range any {
				if _, ok := out[ord]; ok {
					merged[ord] = sc
				}
			}
			out = merged
		} else {
			for ord := range out {
				out[ord] += any[ord]
			}
		}
	}
	for _, sub := range q.MustNot {
		for ord := range sub.eval(s, st) {
			delete(out, ord)
		}
	}
	return out
}

// queryTerms extracts the raw match terms a query would highlight in
// the given field, analyzed with the field's registered analyzer.
func (ix *Index) queryTerms(q Query, field string) []string {
	opts, ok := ix.fieldOpts(field)
	if !ok {
		return nil
	}
	an := opts.Analyzer
	var out []string
	var walk func(Query)
	walk = func(q Query) {
		switch t := q.(type) {
		case MatchQuery:
			out = append(out, an.AnalyzeTerms(t.Text)...)
		case TermQuery:
			out = append(out, an.AnalyzeTerms(t.Term)...)
		case PhraseQuery:
			out = append(out, an.AnalyzeTerms(t.Text)...)
		case PrefixQuery:
			out = append(out, strings.ToLower(t.Prefix))
		case BoolQuery:
			for _, sub := range t.Must {
				walk(sub)
			}
			for _, sub := range t.Should {
				walk(sub)
			}
		}
	}
	walk(q)
	return out
}
