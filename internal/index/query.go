package index

import (
	"math"
	"sort"
	"strings"
)

// Query is the interface implemented by all query node types. A query
// evaluates to a set of matching ordinals with scores; composition is
// by the usual boolean operators.
type Query interface {
	// eval returns ordinal -> score for live documents.
	eval(ix *Index) map[int]float64
}

// MatchQuery analyzes Text with each field's analyzer and matches
// documents containing any resulting term (disjunctive max across
// fields, sum across terms) — the standard free-text search box query.
type MatchQuery struct {
	// Fields to search. Empty means all indexed fields.
	Fields []string
	Text   string
	// Operator "and" requires every analyzed term to appear (in any of
	// the fields); the default "or" requires at least one.
	Operator string
}

// TermQuery matches documents whose field contains the exact analyzed
// term.
type TermQuery struct {
	Field string
	Term  string
}

// PhraseQuery matches documents where the analyzed terms of Text occur
// at consecutive positions in Field.
type PhraseQuery struct {
	Field string
	Text  string
}

// PrefixQuery matches documents whose field has a term with the given
// prefix (post-analysis). Used by suggestion features.
type PrefixQuery struct {
	Field  string
	Prefix string
}

// BoolQuery combines sub-queries: all Must match (scores summed), at
// least one Should matches if any are present (scores added), none of
// MustNot may match.
type BoolQuery struct {
	Must    []Query
	Should  []Query
	MustNot []Query
}

// AllQuery matches every live document with score 1. It is the primary
// query for browse-style applications with filters only.
type AllQuery struct{}

// Result is one search hit.
type Result struct {
	ID     string
	Score  float64
	Stored map[string]string
	// Snippet holds a highlighted fragment when SearchOptions.Snippet
	// was requested.
	Snippet string
}

// SearchOptions controls Search behaviour.
type SearchOptions struct {
	Limit  int
	Offset int
	// SnippetField, when non-empty, generates a highlighted snippet
	// from that field for each hit using the query's match terms.
	SnippetField string
	// Filters restricts hits to documents whose stored field equals
	// the given value (e.g. site:"ign.com"). Applied post-scoring.
	Filters map[string]string
}

// Search evaluates q and returns ranked results.
func (ix *Index) Search(q Query, opts SearchOptions) []Result {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if q == nil {
		q = AllQuery{}
	}
	scores := q.eval(ix)
	hits := make([]Result, 0, len(scores))
	for ord, score := range scores {
		doc := ix.docs[ord]
		if doc.ID == "" {
			continue
		}
		if !matchFilters(doc, opts.Filters) {
			continue
		}
		hits = append(hits, Result{ID: doc.ID, Score: score, Stored: doc.Stored})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if opts.Offset > 0 {
		if opts.Offset >= len(hits) {
			return nil
		}
		hits = hits[opts.Offset:]
	}
	if opts.Limit > 0 && len(hits) > opts.Limit {
		hits = hits[:opts.Limit]
	}
	if opts.SnippetField != "" {
		terms := queryTerms(ix, q, opts.SnippetField)
		for i := range hits {
			ord := ix.byID[hits[i].ID]
			text := ix.docs[ord].Fields[opts.SnippetField]
			hits[i].Snippet = makeSnippet(text, terms, 160)
		}
	}
	return hits
}

// Count returns how many live documents match q with the filters.
func (ix *Index) Count(q Query, filters map[string]string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if q == nil {
		q = AllQuery{}
	}
	n := 0
	for ord := range q.eval(ix) {
		doc := ix.docs[ord]
		if doc.ID != "" && matchFilters(doc, filters) {
			n++
		}
	}
	return n
}

func matchFilters(doc Document, filters map[string]string) bool {
	for f, want := range filters {
		if doc.Stored[f] != want {
			return false
		}
	}
	return true
}

func (AllQuery) eval(ix *Index) map[int]float64 {
	out := make(map[int]float64, ix.live)
	for ord, doc := range ix.docs {
		if doc.ID != "" {
			out[ord] = 1
		}
	}
	return out
}

func (q TermQuery) eval(ix *Index) map[int]float64 {
	fp := ix.fields[q.Field]
	if fp == nil {
		return nil
	}
	terms := fp.opts.Analyzer.AnalyzeTerms(q.Term)
	if len(terms) == 0 {
		return nil
	}
	return ix.scoreTerm(q.Field, terms[0])
}

func (q MatchQuery) eval(ix *Index) map[int]float64 {
	fields := q.Fields
	if len(fields) == 0 {
		for f := range ix.fields {
			fields = append(fields, f)
		}
		sort.Strings(fields)
	}
	// Evaluate per term across fields so "and" semantics can require
	// each term somewhere.
	type termScores = map[int]float64
	var perTerm []termScores
	// Terms may analyze differently per field; use the union keyed by
	// the source token text before analysis.
	rawTerms := strings.Fields(strings.ToLower(q.Text))
	if len(rawTerms) == 0 {
		return nil
	}
	for _, raw := range rawTerms {
		acc := make(termScores)
		for _, field := range fields {
			fp := ix.fields[field]
			if fp == nil {
				continue
			}
			for _, t := range fp.opts.Analyzer.AnalyzeTerms(raw) {
				for ord, s := range ix.scoreTerm(field, t) {
					if s > acc[ord] {
						acc[ord] = s // max across fields
					}
				}
			}
		}
		perTerm = append(perTerm, acc)
	}
	out := make(map[int]float64)
	if strings.EqualFold(q.Operator, "and") {
		first := perTerm[0]
	outer:
		for ord, s := range first {
			total := s
			for _, ts := range perTerm[1:] {
				s2, ok := ts[ord]
				if !ok {
					continue outer
				}
				total += s2
			}
			out[ord] = total
		}
		return out
	}
	for _, ts := range perTerm {
		for ord, s := range ts {
			out[ord] += s
		}
	}
	return out
}

func (q PhraseQuery) eval(ix *Index) map[int]float64 {
	fp := ix.fields[q.Field]
	if fp == nil {
		return nil
	}
	toks := fp.opts.Analyzer.Analyze(q.Text)
	if len(toks) == 0 {
		return nil
	}
	if len(toks) == 1 {
		return ix.scoreTerm(q.Field, toks[0].Term)
	}
	// Gather positions per doc for each term, honoring the analyzed
	// position gaps (stopword holes count).
	base := toks[0].Position
	cand := make(map[int][]int) // doc -> positions of first term
	for _, p := range fp.terms[toks[0].Term] {
		if ix.docs[p.doc].ID != "" {
			cand[p.doc] = p.positions
		}
	}
	for _, tok := range toks[1:] {
		gap := tok.Position - base
		next := make(map[int][]int)
		for _, p := range fp.terms[tok.Term] {
			starts, ok := cand[p.doc]
			if !ok {
				continue
			}
			posSet := make(map[int]bool, len(p.positions))
			for _, pos := range p.positions {
				posSet[pos] = true
			}
			var kept []int
			for _, s := range starts {
				if posSet[s+gap] {
					kept = append(kept, s)
				}
			}
			if len(kept) > 0 {
				next[p.doc] = kept
			}
		}
		cand = next
		if len(cand) == 0 {
			return nil
		}
	}
	out := make(map[int]float64, len(cand))
	for ord, starts := range cand {
		base := ix.scoreTermDoc(q.Field, toks[0].Term, ord)
		out[ord] = base * (1 + 0.5*float64(len(starts)))
	}
	return out
}

func (q PrefixQuery) eval(ix *Index) map[int]float64 {
	fp := ix.fields[q.Field]
	if fp == nil {
		return nil
	}
	prefix := strings.ToLower(q.Prefix)
	out := make(map[int]float64)
	for term, list := range fp.terms {
		if !strings.HasPrefix(term, prefix) {
			continue
		}
		for _, p := range list {
			if ix.docs[p.doc].ID != "" {
				out[p.doc] += 1
			}
		}
	}
	return out
}

func (q BoolQuery) eval(ix *Index) map[int]float64 {
	var out map[int]float64
	if len(q.Must) > 0 {
		out = q.Must[0].eval(ix)
		for _, sub := range q.Must[1:] {
			s2 := sub.eval(ix)
			merged := make(map[int]float64)
			for ord, s := range out {
				if extra, ok := s2[ord]; ok {
					merged[ord] = s + extra
				}
			}
			out = merged
		}
	} else {
		out = AllQuery{}.eval(ix)
		for ord := range out {
			out[ord] = 0
		}
	}
	if len(q.Should) > 0 {
		any := make(map[int]float64)
		for _, sub := range q.Should {
			for ord, s := range sub.eval(ix) {
				any[ord] += s
			}
		}
		if len(q.Must) == 0 {
			// pure should: must match at least one
			merged := make(map[int]float64)
			for ord, s := range any {
				if _, ok := out[ord]; ok {
					merged[ord] = s
				}
			}
			out = merged
		} else {
			for ord := range out {
				out[ord] += any[ord]
			}
		}
	}
	for _, sub := range q.MustNot {
		for ord := range sub.eval(ix) {
			delete(out, ord)
		}
	}
	return out
}

// scoreTerm computes BM25 scores for all live docs containing the
// analyzed term in field.
func (ix *Index) scoreTerm(field, term string) map[int]float64 {
	fp := ix.fields[field]
	if fp == nil {
		return nil
	}
	list := fp.terms[term]
	if len(list) == 0 {
		return nil
	}
	df := 0
	for _, p := range list {
		if ix.docs[p.doc].ID != "" {
			df++
		}
	}
	if df == 0 {
		return nil
	}
	idf := math.Log(1 + (float64(ix.live)-float64(df)+0.5)/(float64(df)+0.5))
	avgLen := 1.0
	if n := len(fp.docLen); n > 0 {
		avgLen = float64(fp.totalLen) / float64(n)
	}
	boost := fp.opts.Boost
	if boost == 0 {
		boost = 1
	}
	out := make(map[int]float64, df)
	for _, p := range list {
		if ix.docs[p.doc].ID == "" {
			continue
		}
		tf := float64(len(p.positions))
		var score float64
		switch ix.ranker {
		case RankerTFIDF:
			// Classic lnc-style TF-IDF with log tf damping and raw
			// inverse document frequency, no length normalization.
			score = (1 + math.Log(tf)) * math.Log(float64(ix.live+1)/float64(df))
		default: // BM25
			dl := float64(fp.docLen[p.doc])
			denom := tf + ix.k1*(1-ix.b+ix.b*dl/avgLen)
			score = idf * (tf * (ix.k1 + 1)) / denom
		}
		out[p.doc] = boost * score
	}
	return out
}

func (ix *Index) scoreTermDoc(field, term string, ord int) float64 {
	scores := ix.scoreTerm(field, term)
	return scores[ord]
}

// queryTerms extracts the raw match terms a query would highlight in
// the given field.
func queryTerms(ix *Index, q Query, field string) []string {
	fp := ix.fields[field]
	var an = fp.opts.Analyzer
	var out []string
	var walk func(Query)
	walk = func(q Query) {
		switch t := q.(type) {
		case MatchQuery:
			out = append(out, an.AnalyzeTerms(t.Text)...)
		case TermQuery:
			out = append(out, an.AnalyzeTerms(t.Term)...)
		case PhraseQuery:
			out = append(out, an.AnalyzeTerms(t.Text)...)
		case PrefixQuery:
			out = append(out, strings.ToLower(t.Prefix))
		case BoolQuery:
			for _, s := range t.Must {
				walk(s)
			}
			for _, s := range t.Should {
				walk(s)
			}
		}
	}
	if fp != nil {
		walk(q)
	}
	return out
}
