package index

import (
	"context"
	"sort"
	"strings"
)

// Query is the interface implemented by all query node types. A query
// evaluates to a set of matching ordinals with scores; composition is
// by the usual boolean operators.
type Query interface {
	// eval scores this node's live matches in s into out, which the
	// caller supplies zeroed and sized to the shard's ordinal space.
	// Corpus-wide statistics come from st.
	eval(s *shard, st *searchStats, out *accum)
}

// MatchQuery analyzes Text with each field's analyzer and matches
// documents containing any resulting term (disjunctive max across
// fields, sum across terms) — the standard free-text search box query.
type MatchQuery struct {
	// Fields to search. Empty means all indexed fields.
	Fields []string
	Text   string
	// Operator "and" requires every analyzed term to appear (in any of
	// the fields); the default "or" requires at least one.
	Operator string
}

// TermQuery matches documents whose field contains the exact analyzed
// term.
type TermQuery struct {
	Field string
	Term  string
}

// PhraseQuery matches documents where the analyzed terms of Text occur
// at consecutive positions in Field.
type PhraseQuery struct {
	Field string
	Text  string
}

// PrefixQuery matches documents whose field has a term with the given
// prefix (post-analysis). Used by suggestion features.
type PrefixQuery struct {
	Field  string
	Prefix string
}

// BoolQuery combines sub-queries: all Must match (scores summed), at
// least one Should matches if any are present (scores added), none of
// MustNot may match.
type BoolQuery struct {
	Must    []Query
	Should  []Query
	MustNot []Query
}

// AllQuery matches every live document with score 1. It is the primary
// query for browse-style applications with filters only.
type AllQuery struct{}

// Result is one search hit.
type Result struct {
	ID     string
	Score  float64
	Stored map[string]string
	// Snippet holds a highlighted fragment when SearchOptions.Snippet
	// was requested.
	Snippet string
}

// SearchOptions controls Search behaviour.
type SearchOptions struct {
	Limit  int
	Offset int
	// SnippetField, when non-empty, generates a highlighted snippet
	// from that field for each hit using the query's match terms.
	SnippetField string
	// Filters restricts hits to documents whose stored field equals
	// the given value (e.g. site:"ign.com"). Applied post-scoring.
	Filters map[string]string
}

// SearchContext evaluates q and returns ranked results. Evaluation
// runs in two phases: corpus statistics are aggregated across shards
// (one shard lock at a time), then every shard evaluates the query in
// its own goroutine and the ranked partials are k-way merged. Ties
// break on ascending ID, so ordering is deterministic for any shard
// count. The ring is loaded once, so statistics and evaluation see
// one consistent shard layout even while a Reshard is migrating.
//
// Cancelling ctx stops evaluation within one posting block per shard
// and returns ctx.Err(); partial results are discarded, never
// returned.
func (ix *Index) SearchContext(ctx context.Context, q Query, opts SearchOptions) ([]Result, error) {
	if q == nil {
		q = AllQuery{}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := ix.ring.Load()
	ref := ix.cache.Load()
	st := ix.stampFor(r)
	if ref != nil {
		if key, ok := serpKey(q, opts); ok {
			ck := ref.key(kindSERP, key)
			if v, ok := ref.c.get(ck, st); ok {
				return copyResults(v.([]Result)), nil
			}
			hits, err := ix.searchWith(ctx, r, ix.gatherStats(ctx, r, q), q, opts)
			if err != nil {
				return nil, err
			}
			ref.c.put(ck, st, hits, serpBytes(hits))
			return copyResults(hits), nil
		}
	}
	return ix.searchWith(ctx, r, ix.gatherStats(ctx, r, q), q, opts)
}

func (ix *Index) searchWith(ctx context.Context, r *ring, st *searchStats, q Query, opts SearchOptions) ([]Result, error) {
	defer putSearchStats(st)
	want := 0
	if opts.Limit > 0 {
		want = opts.Offset + opts.Limit
	}
	parts := partsPool.get(len(r.shards))
	defer func() {
		for _, p := range parts {
			putShardHits(p)
		}
		partsPool.put(parts)
	}()
	// The generation stamp catches a stale task reference outliving its
	// query (see scratch.go): runShards joins before returning, so the
	// check can only fail if that contract is broken — in which case
	// skipping the shard is the safe failure.
	gen := st.gen.Load()
	ix.runShards(st, r, func(i int, s *shard) {
		if st.gen.Load() != gen {
			return
		}
		parts[i] = s.search(ctx, q, st, opts.Filters, want)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	merged := mergeHits(r.shards, parts, want)
	defer mergedPool.put(merged)
	page := merged
	if opts.Offset > 0 {
		if opts.Offset >= len(page) {
			return nil, nil
		}
		page = page[opts.Offset:]
	}
	if opts.Limit > 0 && len(page) > opts.Limit {
		page = page[:opts.Limit]
	}
	hits := make([]Result, len(page))
	for i, m := range page {
		hits[i] = m.res
	}
	if opts.SnippetField != "" {
		terms := ix.queryTerms(q, opts.SnippetField)
		for i, m := range page {
			text := m.s.snippetText(m.ord, m.res.ID, opts.SnippetField)
			hits[i].Snippet = makeSnippet(text, terms, 160)
		}
	}
	return hits, nil
}

// CountContext returns how many live documents match q with the
// filters, honoring ctx like SearchContext.
func (ix *Index) CountContext(ctx context.Context, q Query, filters map[string]string) (int, error) {
	if q == nil {
		q = AllQuery{}
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	r := ix.ring.Load()
	ref := ix.cache.Load()
	st := ix.stampFor(r)
	if ref != nil {
		if key, ok := countKey(q, filters); ok {
			ck := ref.key(kindCount, key)
			if v, ok := ref.c.get(ck, st); ok {
				return v.(int), nil
			}
			n, err := ix.countWith(ctx, r, ix.gatherStats(ctx, r, q), q, filters)
			if err != nil {
				return 0, err
			}
			ref.c.put(ck, st, n, 8)
			return n, nil
		}
	}
	return ix.countWith(ctx, r, ix.gatherStats(ctx, r, q), q, filters)
}

func (ix *Index) countWith(ctx context.Context, r *ring, st *searchStats, q Query, filters map[string]string) (int, error) {
	defer putSearchStats(st)
	counts := countsPool.get(len(r.shards))
	defer countsPool.put(counts)
	gen := st.gen.Load()
	ix.runShards(st, r, func(i int, s *shard) {
		if st.gen.Load() != gen {
			return
		}
		counts[i] = s.count(ctx, q, st, filters)
	})
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	n := 0
	for _, c := range counts {
		n += c
	}
	return n, nil
}

func matchFilters(doc Document, filters map[string]string) bool {
	for f, want := range filters {
		if doc.Stored[f] != want {
			return false
		}
	}
	return true
}

func (AllQuery) eval(s *shard, st *searchStats, out *accum) {
	n := 0
	nDocs := s.numDocs()
	for ord := 0; ord < nDocs; ord++ {
		if n++; n&(cancelStride-1) == 0 && st.canceled() {
			return
		}
		if s.liveAt(ord) {
			out.scores[ord] = 1
			out.seen[ord] = true
		}
	}
}

func (q TermQuery) eval(s *shard, st *searchStats, out *accum) {
	fp := s.fields[q.Field]
	if fp == nil {
		return
	}
	terms := st.analyzedTerms(fp, q.Field, q.Term)
	if len(terms) == 0 {
		return
	}
	s.scoreTermInto(fp, q.Field, terms[0], st, out, false)
}

func (q MatchQuery) eval(s *shard, st *searchStats, out *accum) {
	fields := st.fieldsOf(q.Fields)
	if fields == nil {
		// Stats built without this query in scope (defensive; every
		// public path runs collectTerms first): fall back to the
		// per-shard field expansion.
		fields = make([]string, 0, len(s.fields))
		for f := range s.fields {
			fields = append(fields, f)
		}
		sort.Strings(fields)
	}
	// Terms may analyze differently per field; evaluate per raw token
	// (union keyed by pre-analysis text) so "and" semantics can
	// require each term somewhere, taking the max across fields.
	rawTerms := st.rawTokens(q.Text)
	if len(rawTerms) == 0 {
		return
	}
	and := strings.EqualFold(q.Operator, "and")
	var tmp *accum
	for i, raw := range rawTerms {
		dst := out
		if i > 0 {
			if tmp == nil {
				tmp = getAccum(s.numDocs())
			} else {
				tmp.clear()
			}
			dst = tmp
		}
		for _, field := range fields {
			fp := s.fields[field]
			if fp == nil {
				continue
			}
			for _, t := range st.analyzedTerms(fp, field, raw) {
				s.scoreTermInto(fp, field, t, st, dst, true)
			}
		}
		if i == 0 {
			continue
		}
		if and {
			out.intersectAdd(tmp)
		} else {
			out.unionAdd(tmp)
		}
	}
	if tmp != nil {
		putAccum(tmp)
	}
}

func (q PhraseQuery) eval(s *shard, st *searchStats, out *accum) {
	fp := s.fields[q.Field]
	if fp == nil {
		return
	}
	toks := st.analyzedToks(fp, q.Field, q.Text)
	if len(toks) == 0 {
		return
	}
	if len(toks) == 1 {
		s.scoreTermInto(fp, q.Field, toks[0].Term, st, out, false)
		return
	}
	// Gather positions per doc for each term, honoring the analyzed
	// position gaps (stopword holes count). Only this query type pays
	// for position decoding — and only for candidate blocks: after the
	// anchor term fixes the candidate set, later terms seek their doc
	// cursors block-to-block and jump the position stream to each
	// block's posOff anchor, never length-walking non-candidate
	// blocks' positions.
	base := toks[0].Position
	first := fp.lookup(toks[0].Term)
	if first == nil {
		return
	}
	var cnt scanCounters
	defer func() {
		s.ix.scanScored.Add(cnt.scored)
		s.ix.scanSkipped.Add(cnt.skipped)
	}()
	type phraseCand struct {
		ord    int
		starts []int
	}
	cand := make([]phraseCand, 0, first.n) // ascending ord, surviving start positions
	cur := newMemberCursor(first, fp, termScorer{}, &cnt)
	nc := 0
	for !cur.done {
		if nc++; nc&(cancelStride-1) == 0 && st.canceled() {
			return
		}
		if s.liveAt(cur.doc) {
			cand = append(cand, phraseCand{ord: cur.doc, starts: cur.readPositions(nil)})
		}
		cur.next()
	}
	var scratch []int
	for _, tok := range toks[1:] {
		gap := tok.Position - base
		list := fp.lookup(tok.Term)
		if list == nil {
			return
		}
		cur := newMemberCursor(list, fp, termScorer{}, &cnt)
		kept := cand[:0]
		for _, c := range cand {
			if nc++; nc&(cancelStride-1) == 0 && st.canceled() {
				return
			}
			cur.seekGE(c.ord)
			if cur.doc != c.ord {
				continue
			}
			scratch = cur.readPositions(scratch)
			// Both position runs ascend, so a two-pointer sweep
			// replaces the per-doc position set of the old evaluator.
			surv := c.starts[:0]
			j := 0
			for _, start := range c.starts {
				wantPos := start + gap
				for j < len(scratch) && scratch[j] < wantPos {
					j++
				}
				if j < len(scratch) && scratch[j] == wantPos {
					surv = append(surv, start)
				}
			}
			if len(surv) > 0 {
				kept = append(kept, phraseCand{ord: c.ord, starts: surv})
			}
		}
		cand = kept
		if len(cand) == 0 {
			return
		}
	}
	// One scorer for the anchor term; per candidate only the (tf,
	// docLen) lookup and the formula itself run.
	sc, ok := s.scorerFor(fp, q.Field, toks[0].Term, st)
	if !ok {
		return
	}
	for _, c := range cand {
		var base float64
		if tf, ok := first.tfAt(c.ord); ok {
			base = sc.score(float64(tf), fp.lenAt(c.ord))
		}
		out.scores[c.ord] = base * (1 + 0.5*float64(len(c.starts)))
		out.seen[c.ord] = true
	}
}

func (q PrefixQuery) eval(s *shard, st *searchStats, out *accum) {
	fp := s.fields[q.Field]
	if fp == nil {
		return
	}
	prefix := strings.ToLower(q.Prefix)
	// The sorted term dictionary turns the full term-map scan of the
	// old evaluator into a binary-search range scan.
	dict := fp.sortedTermsAll()
	i := sort.SearchStrings(dict, prefix)
	n := 0
	for ; i < len(dict) && strings.HasPrefix(dict[i], prefix); i++ {
		list := fp.lookup(dict[i])
		if list == nil {
			continue
		}
		it := list.iter()
		for it.next() {
			if n++; n&(cancelStride-1) == 0 && st.canceled() {
				return
			}
			if s.liveAt(it.doc) {
				out.add(it.doc, 1)
			}
		}
	}
}

func (q BoolQuery) eval(s *shard, st *searchStats, out *accum) {
	n := s.numDocs()
	if len(q.Must) > 0 {
		q.Must[0].eval(s, st, out)
		if len(q.Must) > 1 {
			tmp := getAccum(n)
			for i, sub := range q.Must[1:] {
				if i > 0 {
					tmp.clear()
				}
				sub.eval(s, st, tmp)
				out.intersectAdd(tmp)
			}
			putAccum(tmp)
		}
	} else {
		// No Must: start from every live doc at score 0 (browse base).
		for ord := 0; ord < n; ord++ {
			if s.liveAt(ord) {
				out.seen[ord] = true
			}
		}
	}
	if len(q.Should) > 0 {
		any := getAccum(n)
		tmp := getAccum(n)
		for i, sub := range q.Should {
			if i > 0 {
				tmp.clear()
			}
			sub.eval(s, st, tmp)
			any.unionAdd(tmp)
		}
		if len(q.Must) == 0 {
			// Pure should: must match at least one.
			out.gate(any)
		} else {
			out.addSeen(any)
		}
		putAccum(tmp)
		putAccum(any)
	}
	if len(q.MustNot) > 0 {
		tmp := getAccum(n)
		for i, sub := range q.MustNot {
			if i > 0 {
				tmp.clear()
			}
			sub.eval(s, st, tmp)
			out.subtract(tmp)
		}
		putAccum(tmp)
	}
}

// queryTerms extracts the raw match terms a query would highlight in
// the given field, analyzed with the field's registered analyzer.
func (ix *Index) queryTerms(q Query, field string) []string {
	opts, ok := ix.fieldOpts(field)
	if !ok {
		return nil
	}
	an := opts.Analyzer
	var out []string
	var walk func(Query)
	walk = func(q Query) {
		switch t := q.(type) {
		case MatchQuery:
			out = append(out, an.AnalyzeTerms(t.Text)...)
		case TermQuery:
			out = append(out, an.AnalyzeTerms(t.Term)...)
		case PhraseQuery:
			out = append(out, an.AnalyzeTerms(t.Text)...)
		case PrefixQuery:
			out = append(out, strings.ToLower(t.Prefix))
		case BoolQuery:
			for _, sub := range t.Must {
				walk(sub)
			}
			for _, sub := range t.Should {
				walk(sub)
			}
		}
	}
	walk(q)
	return out
}
