package index

import (
	"strings"

	"repro/internal/textproc"
)

// makeSnippet returns a fragment of text of roughly maxLen bytes
// centered on the densest window of match terms, with matches wrapped
// in <b>...</b>. Terms are compared post-stemming so "reviews"
// highlights for query "review".
func makeSnippet(text string, matchTerms []string, maxLen int) string {
	if text == "" {
		return ""
	}
	want := make(map[string]bool, len(matchTerms))
	for _, t := range matchTerms {
		want[t] = true
	}
	toks := textproc.Tokenize(text)
	// Find the window of up to 25 tokens with the most matches.
	bestStart, bestCount := 0, -1
	const window = 25
	for i := range toks {
		count := 0
		for j := i; j < len(toks) && j < i+window; j++ {
			if want[textproc.Stem(toks[j].Term)] {
				count++
			}
		}
		if count > bestCount {
			bestStart, bestCount = i, count
		}
		if i > 0 && toks[i].Start > maxLen && bestCount > 0 {
			break
		}
	}
	start := toks[bestStart].Start
	end := len(text)
	if start+maxLen < end {
		end = start + maxLen
	}
	frag := text[start:end]

	// Highlight matched tokens inside the fragment.
	var b strings.Builder
	last := 0
	for _, tok := range textproc.Tokenize(frag) {
		if !want[textproc.Stem(tok.Term)] {
			continue
		}
		b.WriteString(frag[last:tok.Start])
		b.WriteString("<b>")
		b.WriteString(frag[tok.Start:tok.End])
		b.WriteString("</b>")
		last = tok.End
	}
	b.WriteString(frag[last:])
	out := b.String()
	if start > 0 {
		out = "…" + out
	}
	if end < len(text) {
		out += "…"
	}
	return out
}
