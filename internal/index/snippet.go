package index

import (
	"strings"
	"sync"

	"repro/internal/textproc"
)

// snippetScratch holds the per-call working set of makeSnippet so the
// hot path — one call per returned hit, dozens per query — reuses its
// buffers instead of reallocating them. The stem memo deliberately
// survives across requests: Stem is pure, so a term→stem entry never
// goes stale, and the map is size-capped so an adversarial vocabulary
// cannot grow it without bound.
// snipTok is the per-token state the window scan needs: byte offsets
// plus whether the stemmed term is a query match. Term strings are
// never materialized on this path.
type snipTok struct {
	start, end int
	match      bool
}

type snippetScratch struct {
	toks  []snipTok
	want  map[string]bool
	out   []byte
	stems map[string]string
}

const snippetStemMemoMax = 8192

var snippetPool = sync.Pool{New: func() any {
	return &snippetScratch{
		want:  make(map[string]bool, 8),
		stems: make(map[string]string, 512),
	}
}}

// matchTerm reports whether the stem of term is a wanted query term.
// The string(term) conversions inside map lookups do not allocate; the
// warm path (memo hit) is allocation-free.
func (sc *snippetScratch) matchTerm(term []byte) bool {
	if s, ok := sc.stems[string(term)]; ok {
		return sc.want[s]
	}
	t := string(term)
	s := textproc.Stem(t)
	if len(sc.stems) < snippetStemMemoMax {
		sc.stems[t] = s
	}
	return sc.want[s]
}

// makeSnippet returns a fragment of text of roughly maxLen bytes
// centered on the densest window of match terms, with matches wrapped
// in <b>...</b>. Terms are compared post-stemming so "reviews"
// highlights for query "review".
//
// With scratch pooling off it routes to makeSnippetRef — the seed
// implementation, kept verbatim as both the A/B baseline and the
// oracle for TestMakeSnippetEquivalence. The pooled path here must
// stay byte-identical to it: it stems each token once and slides the
// window count instead of rescanning up to 25 tokens per position.
func makeSnippet(text string, matchTerms []string, maxLen int) string {
	if scratchOff.Load() {
		return makeSnippetRef(text, matchTerms, maxLen)
	}
	if text == "" {
		return ""
	}
	sc := snippetPool.Get().(*snippetScratch)
	defer snippetPool.Put(sc)
	clear(sc.want)
	for _, t := range matchTerms {
		sc.want[t] = true
	}
	toks := sc.toks[:0]
	textproc.TokenizeFunc(text, func(term []byte, _, start, end int) {
		toks = append(toks, snipTok{start, end, sc.matchTerm(term)})
	})
	sc.toks = toks
	if len(toks) == 0 {
		// Punctuation-only text: no window to center on, plain prefix.
		if maxLen < len(text) {
			return text[:maxLen] + "…"
		}
		return text
	}

	const window = 25
	// count tracks matches inside toks[i : i+window) as i advances.
	count := 0
	for j := 0; j < len(toks) && j < window; j++ {
		if toks[j].match {
			count++
		}
	}
	bestStart, bestCount := 0, -1
	for i := range toks {
		if i > 0 {
			if toks[i-1].match {
				count--
			}
			if i+window-1 < len(toks) && toks[i+window-1].match {
				count++
			}
		}
		if count > bestCount {
			bestStart, bestCount = i, count
		}
		if i > 0 && toks[i].start > maxLen && bestCount > 0 {
			break
		}
	}
	start := toks[bestStart].start
	end := len(text)
	if start+maxLen < end {
		end = start + maxLen
	}
	frag := text[start:end]

	out := sc.out[:0]
	if start > 0 {
		out = append(out, "…"...)
	}
	// Highlight matched tokens inside the fragment. The fragment is
	// re-tokenized (it is at most maxLen bytes, so this is cheap)
	// because its last token may be a truncation of a body token and
	// stem differently.
	last := 0
	textproc.TokenizeFunc(frag, func(term []byte, _, tstart, tend int) {
		if !sc.matchTerm(term) {
			return
		}
		out = append(out, frag[last:tstart]...)
		out = append(out, "<b>"...)
		out = append(out, frag[tstart:tend]...)
		out = append(out, "</b>"...)
		last = tend
	})
	out = append(out, frag[last:]...)
	if end < len(text) {
		out = append(out, "…"...)
	}
	sc.out = out
	return string(out)
}

// makeSnippetRef is the seed snippet generator, unchanged. It rescans
// the token window at every position (stemming each token up to 25
// times) and is O(tokens × window); makeSnippet is the O(tokens)
// replacement that must produce byte-identical output.
func makeSnippetRef(text string, matchTerms []string, maxLen int) string {
	if text == "" {
		return ""
	}
	want := make(map[string]bool, len(matchTerms))
	for _, t := range matchTerms {
		want[t] = true
	}
	toks := textproc.Tokenize(text)
	if len(toks) == 0 {
		// Punctuation-only text: no window to center on, plain prefix.
		if maxLen < len(text) {
			return text[:maxLen] + "…"
		}
		return text
	}
	// Find the window of up to 25 tokens with the most matches.
	bestStart, bestCount := 0, -1
	const window = 25
	for i := range toks {
		count := 0
		for j := i; j < len(toks) && j < i+window; j++ {
			if want[textproc.Stem(toks[j].Term)] {
				count++
			}
		}
		if count > bestCount {
			bestStart, bestCount = i, count
		}
		if i > 0 && toks[i].Start > maxLen && bestCount > 0 {
			break
		}
	}
	start := toks[bestStart].Start
	end := len(text)
	if start+maxLen < end {
		end = start + maxLen
	}
	frag := text[start:end]

	// Highlight matched tokens inside the fragment.
	var b strings.Builder
	last := 0
	for _, tok := range textproc.Tokenize(frag) {
		if !want[textproc.Stem(tok.Term)] {
			continue
		}
		b.WriteString(frag[last:tok.Start])
		b.WriteString("<b>")
		b.WriteString(frag[tok.Start:tok.End])
		b.WriteString("</b>")
		last = tok.End
	}
	b.WriteString(frag[last:])
	out := b.String()
	if start > 0 {
		out = "…" + out
	}
	if end < len(text) {
		out += "…"
	}
	return out
}
