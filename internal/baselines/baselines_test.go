package baselines

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ingest"
)

func platform(t testing.TB) *core.Platform {
	t.Helper()
	return core.New(core.Config{Seed: 8})
}

func TestProbeSymphony(t *testing.T) {
	p := platform(t)
	sym, err := NewSymphony(p)
	if err != nil {
		t.Fatal(err)
	}
	row, err := Probe(context.Background(), sym)
	if err != nil {
		t.Fatal(err)
	}
	if !row.CustomSites {
		t.Error("symphony custom sites not detected")
	}
	if len(row.UploadFormats) != len(probeFormats) {
		t.Errorf("symphony formats = %v", row.UploadFormats)
	}
	if row.Monetization != MonetizationVoluntary || row.CustomUI != UIDragDrop {
		t.Errorf("row = %+v", row)
	}
	if len(row.Deployment) != 3 {
		t.Errorf("deployment = %v", row.Deployment)
	}
	if err := sym.ProbeDragDrop(); err != nil {
		t.Errorf("drag-drop probe failed: %v", err)
	}
}

func TestProbeBaselines(t *testing.T) {
	p := platform(t)
	systems, err := AllSystems(p)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]Row{}
	for _, s := range systems {
		row, err := Probe(context.Background(), s)
		if err != nil {
			t.Fatalf("probe %s: %v", s.Name(), err)
		}
		got[s.Name()] = row
	}
	// Row-by-row expectations matching the paper's Table I.
	if got["yboss"].ProprietaryData != "no" || !got["yboss"].CustomSites {
		t.Errorf("yboss = %+v", got["yboss"])
	}
	if got["rollyo"].ProprietaryData != "no" || got["rollyo"].CustomUI != UIBasicStyling {
		t.Errorf("rollyo = %+v", got["rollyo"])
	}
	if got["eurekster"].Monetization != MonetizationForProfitOnly {
		t.Errorf("eurekster = %+v", got["eurekster"])
	}
	if got["googlecustom"].ProprietaryData != "no" || got["googlecustom"].SearchAPI != "Google" {
		t.Errorf("googlecustom = %+v", got["googlecustom"])
	}
	gb := got["googlebase"]
	if gb.CustomSites {
		t.Error("google base should not support custom sites")
	}
	// Google Base: rss/txt/xml uploads but no Excel.
	hasXLS := false
	for _, f := range gb.UploadFormats {
		if f == ingest.FormatXLS {
			hasXLS = true
		}
	}
	if hasXLS || len(gb.UploadFormats) == 0 {
		t.Errorf("googlebase formats = %v", gb.UploadFormats)
	}
	// Only Symphony has both custom sites and full uploads.
	for name, row := range got {
		if name == "symphony" {
			continue
		}
		if row.CustomSites && len(row.UploadFormats) == len(probeFormats) {
			t.Errorf("%s matches symphony's full capability set", name)
		}
	}
}

func TestRollyoRequiresSites(t *testing.T) {
	p := platform(t)
	r := NewRollyo(p.Engine)
	if _, err := r.Search(context.Background(), "anything", nil, 5); err == nil {
		t.Fatal("rollyo searched without a searchroll")
	}
}

func TestGoogleBaseUploadSearchable(t *testing.T) {
	p := platform(t)
	gb := NewGoogleBase(p.Engine)
	err := gb.UploadProprietary(ingest.FormatCSV, strings.NewReader("title,price\nUnique Widget,5\n"))
	if err != nil {
		t.Fatal(err)
	}
	hits, err := gb.SearchProprietary(context.Background(), "widget", 5)
	if err != nil || len(hits) != 1 {
		t.Fatalf("hits = %v, %v", hits, err)
	}
	if err := gb.UploadProprietary(ingest.FormatXLS, strings.NewReader("a\tb\n1\t2\n")); !errors.Is(err, ErrUnsupported) {
		t.Error("google base accepted an Excel upload")
	}
}

func TestRenderTableI(t *testing.T) {
	p := platform(t)
	systems, err := AllSystems(p)
	if err != nil {
		t.Fatal(err)
	}
	table, err := RenderTableI(context.Background(), systems)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"symphony", "yboss", "rollyo", "eurekster", "googlecustom", "googlebase",
		"Search API", "Custom Sites", "Proprietary Data", "Monetization", "Custom UI", "Deployment",
		"Bing", "Yahoo", "Google", "drag'n'drop",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q", want)
		}
	}
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 7 {
		t.Errorf("table rows = %d", len(lines))
	}
}

func TestExpectedTableIShape(t *testing.T) {
	exp := ExpectedTableI()
	if len(exp) != 6 {
		t.Fatalf("expected systems = %d", len(exp))
	}
	for sys, rows := range exp {
		if len(rows) != 6 {
			t.Errorf("%s has %d capability rows", sys, len(rows))
		}
	}
}
