package baselines

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/publish"
	"repro/internal/store"
)

// Symphony adapts the full platform to the System probe interface so
// it sits in the same matrix as the baselines.
type Symphony struct {
	Platform *core.Platform
	datasets int
}

// NewSymphony wraps a platform (registering the probe designer).
func NewSymphony(p *core.Platform) (*Symphony, error) {
	if err := p.RegisterDesigner("designer", "symphony-probe"); err != nil {
		return nil, err
	}
	return &Symphony{Platform: p}, nil
}

// Name implements System.
func (s *Symphony) Name() string { return "symphony" }

// SearchAPI implements System.
func (s *Symphony) SearchAPI() string { return "Bing" }

// Search implements System.
func (s *Symphony) Search(ctx context.Context, q string, sites []string, limit int) ([]engine.Result, error) {
	return s.Platform.Engine.Search(ctx, engine.Request{Query: q, Sites: sites, Limit: limit})
}

// UploadProprietary implements System.
func (s *Symphony) UploadProprietary(format ingest.Format, r io.Reader) error {
	s.datasets++
	_, err := s.Platform.Upload(ingest.Options{
		Tenant:  "symphony-probe",
		Actor:   "designer",
		Dataset: fmt.Sprintf("probe%d", s.datasets),
		Format:  format,
	}, r)
	return err
}

// SearchProprietary implements System.
func (s *Symphony) SearchProprietary(ctx context.Context, q string, limit int) ([]store.Hit, error) {
	names, err := s.Platform.Store.Datasets("symphony-probe", "designer")
	if err != nil {
		return nil, err
	}
	var out []store.Hit
	for _, n := range names {
		ds, err := s.Platform.Store.DatasetContext(ctx, "symphony-probe", "designer", n, store.PermRead)
		if err != nil {
			return nil, err
		}
		hits, err := ds.SearchContext(ctx, store.SearchRequest{Query: q, Limit: limit})
		if err != nil {
			return nil, err
		}
		out = append(out, hits...)
	}
	return out, nil
}

// Monetization implements System.
func (s *Symphony) Monetization() Monetization { return MonetizationVoluntary }

// CustomUI implements System.
func (s *Symphony) CustomUI() UILevel { return UIDragDrop }

// Deployment implements System.
func (s *Symphony) Deployment() []Deployment {
	return []Deployment{DeployHosted, DeployThirdParty, DeployFacebook}
}

// ProbeDragDrop verifies the drag-n-drop claim behaviourally: build
// and publish an app through the no-code Designer API.
func (s *Symphony) ProbeDragDrop() error {
	d := s.Platform.NewApp("probe-app", "Probe", "designer", "symphony-probe")
	d.DropPrimary(app.SourceConfig{ID: "web", Kind: app.KindWebSearch})
	d.UseTemplate("web", "headline-snippet", map[string]string{"title": "title", "url": "url", "snippet": "snippet"})
	a, err := d.Build()
	if err != nil {
		return err
	}
	_, err = s.Platform.Publish(a, publish.TargetWeb, publish.TargetFacebook)
	return err
}

// Row is one system's probed capability summary (one column of the
// paper's Table I, transposed here per system).
type Row struct {
	System          string
	SearchAPI       string
	CustomSites     bool
	ProprietaryData string
	UploadFormats   []ingest.Format
	Monetization    Monetization
	CustomUI        UILevel
	Deployment      []Deployment
}

// probeFormats are the upload formats Table I cares about.
var probeFormats = []ingest.Format{
	ingest.FormatCSV, ingest.FormatTSV, ingest.FormatXML, ingest.FormatRSS, ingest.FormatXLS,
}

func sampleUpload(format ingest.Format) io.Reader {
	switch format {
	case ingest.FormatXML:
		return strings.NewReader("<items><item><title>Probe</title><price>1</price></item></items>")
	case ingest.FormatRSS:
		return strings.NewReader(`<rss><channel><title>t</title><item><title>Probe</title><link>http://p.example</link><description>d</description></item></channel></rss>`)
	case ingest.FormatTSV, ingest.FormatXLS:
		return strings.NewReader("title\tprice\nProbe\t1\n")
	default:
		return strings.NewReader("title,price\nProbe,1\n")
	}
}

// Probe exercises each capability of a system and summarizes it.
// Cancelling ctx aborts the live search probes.
func Probe(ctx context.Context, s System) (Row, error) {
	row := Row{
		System:       s.Name(),
		SearchAPI:    s.SearchAPI(),
		Monetization: s.Monetization(),
		CustomUI:     s.CustomUI(),
		Deployment:   s.Deployment(),
	}
	// Custom sites: does a site-restricted search stay restricted?
	rs, err := s.Search(ctx, "review", []string{"ign.com", "gamespot.com"}, 10)
	if err == nil {
		row.CustomSites = true
		for _, r := range rs {
			if r.Site != "ign.com" && r.Site != "gamespot.com" {
				return row, fmt.Errorf("%s: site restriction leaked %s", s.Name(), r.Site)
			}
		}
	}
	// Proprietary uploads: try each format, then verify the data is
	// actually searchable.
	for _, f := range probeFormats {
		if err := s.UploadProprietary(f, sampleUpload(f)); err == nil {
			row.UploadFormats = append(row.UploadFormats, f)
		}
	}
	if len(row.UploadFormats) > 0 {
		hits, err := s.SearchProprietary(ctx, "probe", 10)
		if err != nil {
			return row, fmt.Errorf("%s: uploaded data not searchable: %v", s.Name(), err)
		}
		if len(hits) == 0 {
			return row, fmt.Errorf("%s: uploaded data not found by search", s.Name())
		}
		row.ProprietaryData = FormatList(row.UploadFormats)
	} else {
		row.ProprietaryData = "no"
	}
	return row, nil
}

// AllSystems builds every system over a shared engine plus the full
// Symphony platform.
func AllSystems(p *core.Platform) ([]System, error) {
	sym, err := NewSymphony(p)
	if err != nil {
		return nil, err
	}
	eng := p.Engine
	return []System{
		sym,
		NewYBoss(eng),
		NewRollyo(eng),
		NewEurekster(eng),
		NewGoogleCustom(eng),
		NewGoogleBase(eng),
	}, nil
}

// RenderTableI probes all systems and renders the comparison matrix
// in the paper's row order.
func RenderTableI(ctx context.Context, systems []System) (string, error) {
	rows := make([]Row, 0, len(systems))
	for _, s := range systems {
		row, err := Probe(ctx, s)
		if err != nil {
			return "", err
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	write := func(label string, cell func(Row) string) {
		fmt.Fprintf(&b, "%-28s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, "| %-38s", cell(r))
		}
		b.WriteString("\n")
	}
	write("", func(r Row) string { return r.System })
	write("Search API", func(r Row) string { return r.SearchAPI })
	write("Custom Sites", func(r Row) string {
		if r.CustomSites {
			return "supported"
		}
		return "no"
	})
	write("Proprietary Data", func(r Row) string { return r.ProprietaryData })
	write("Monetization", func(r Row) string { return string(r.Monetization) })
	write("Custom UI", func(r Row) string { return string(r.CustomUI) })
	write("Deployment", func(r Row) string {
		parts := make([]string, len(r.Deployment))
		for i, d := range r.Deployment {
			parts[i] = string(d)
		}
		return strings.Join(parts, "; ")
	})
	return b.String(), nil
}

// ExpectedTableI captures the paper's published matrix for the
// assertions in tests and EXPERIMENTS.md: system -> capability row ->
// condensed expected value.
func ExpectedTableI() map[string]map[string]string {
	return map[string]map[string]string{
		"symphony":     {"api": "Bing", "sites": "supported", "data": "uploads", "monetization": "voluntary", "ui": "drag'n'drop", "deploy": "hosted"},
		"yboss":        {"api": "Yahoo", "sites": "supported", "data": "no", "monetization": "mandatory", "ui": "library", "deploy": "no assistance"},
		"rollyo":       {"api": "Yahoo", "sites": "supported", "data": "no", "monetization": "own ads", "ui": "basic", "deploy": "search box"},
		"eurekster":    {"api": "Yahoo", "sites": "supported", "data": "no", "monetization": "for-profit", "ui": "basic", "deploy": "search box"},
		"googlecustom": {"api": "Google", "sites": "supported", "data": "no", "monetization": "for-profit", "ui": "basic", "deploy": "3rd-party"},
		"googlebase":   {"api": "Google", "sites": "no", "data": "uploads", "monetization": "none", "ui": "none", "deploy": "surfaced"},
	}
}
