package webcorpus

import (
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7})
	b := Generate(Config{Seed: 7})
	if len(a.Pages) != len(b.Pages) {
		t.Fatalf("page counts differ: %d vs %d", len(a.Pages), len(b.Pages))
	}
	for i := range a.Pages {
		if a.Pages[i].URL != b.Pages[i].URL || a.Pages[i].Title != b.Pages[i].Title {
			t.Fatalf("page %d differs between same-seed runs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(Config{Seed: 1})
	b := Generate(Config{Seed: 2})
	same := 0
	n := len(a.Pages)
	if len(b.Pages) < n {
		n = len(b.Pages)
	}
	for i := 0; i < n; i++ {
		if a.Pages[i].Title == b.Pages[i].Title {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical corpora")
	}
}

func TestPagesHaveAllVerticalsAndTopics(t *testing.T) {
	c := Generate(Config{Seed: 3})
	verts := map[Vertical]int{}
	topics := map[Topic]int{}
	for _, p := range c.Pages {
		verts[p.Vertical]++
		topics[p.Topic]++
	}
	for _, v := range Verticals {
		if verts[v] == 0 {
			t.Errorf("vertical %s has no pages", v)
		}
	}
	for _, tp := range Topics {
		if topics[tp] == 0 {
			t.Errorf("topic %s has no pages", tp)
		}
	}
}

func TestURLsUnique(t *testing.T) {
	c := Generate(Config{Seed: 4})
	seen := make(map[string]bool, len(c.Pages))
	for _, p := range c.Pages {
		if seen[p.URL] {
			t.Fatalf("duplicate URL %s", p.URL)
		}
		seen[p.URL] = true
	}
}

func TestPageByURL(t *testing.T) {
	c := Generate(Config{Seed: 5})
	want := c.Pages[10]
	got, ok := c.PageByURL(want.URL)
	if !ok || got.Title != want.Title {
		t.Fatalf("PageByURL failed: %v %v", got, ok)
	}
	if _, ok := c.PageByURL("http://nope.example/x"); ok {
		t.Error("missing URL reported found")
	}
}

func TestPagesBySite(t *testing.T) {
	c := Generate(Config{Seed: 6})
	pages := c.PagesBySite("ign.com")
	if len(pages) == 0 {
		t.Fatal("ign.com has no pages")
	}
	for _, p := range pages {
		if p.Site != "ign.com" {
			t.Fatalf("page %s attributed to ign.com", p.URL)
		}
	}
}

func TestSitesForTopicIncludesPaperSites(t *testing.T) {
	sites := SitesForTopic(TopicGames)
	want := []string{"ign.com", "gamespot.com", "teamxbox.com"}
	for _, w := range want {
		found := false
		for _, s := range sites {
			if s == w {
				found = true
			}
		}
		if !found {
			t.Errorf("paper site %s missing from games sites", w)
		}
	}
}

func TestEntitiesDeterministicAndUnique(t *testing.T) {
	a := Entities(Config{Seed: 9}, TopicGames)
	b := Entities(Config{Seed: 9}, TopicGames)
	if len(a) != 60 {
		t.Fatalf("default entity count = %d", len(a))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("entities not deterministic")
		}
		if seen[a[i]] {
			t.Fatalf("duplicate entity %q", a[i])
		}
		seen[a[i]] = true
	}
}

func TestLinksPointInsideCorpus(t *testing.T) {
	c := Generate(Config{Seed: 11})
	checked := 0
	for _, p := range c.Pages {
		for _, l := range p.Links {
			if _, ok := c.PageByURL(l); !ok {
				t.Fatalf("dangling link %s on %s", l, p.URL)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no links generated")
	}
}

func TestPageHTML(t *testing.T) {
	c := Generate(Config{Seed: 12})
	p := c.Pages[0]
	html := p.HTML()
	if !strings.Contains(html, "<title>"+p.Title+"</title>") {
		t.Error("HTML missing title")
	}
	for _, l := range p.Links {
		if !strings.Contains(html, l) {
			t.Errorf("HTML missing link %s", l)
		}
	}
}

func TestBodyMentionsEntity(t *testing.T) {
	c := Generate(Config{Seed: 13})
	for _, p := range c.Pages[:50] {
		if !strings.Contains(p.Body, p.Entity) {
			t.Errorf("page %s body does not mention its entity %q", p.URL, p.Entity)
		}
	}
}
