// Package webcorpus generates the deterministic synthetic web that
// stands in for the live internet behind the paper's Bing substrate.
//
// The corpus contains sites (domains) each publishing pages in one of
// the four verticals the paper's built-in services expose — web,
// image, video, news — over a set of topics (video games, wine,
// movies, health, general). Generation is seeded, so every run of the
// benchmarks and examples sees the same web.
package webcorpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Vertical identifies which built-in search service a page belongs to.
type Vertical string

// The four verticals named in the paper (§II-A, Built-in Services).
const (
	VerticalWeb   Vertical = "web"
	VerticalImage Vertical = "image"
	VerticalVideo Vertical = "video"
	VerticalNews  Vertical = "news"
)

// Verticals lists all verticals in stable order.
var Verticals = []Vertical{VerticalWeb, VerticalImage, VerticalVideo, VerticalNews}

// Topic is a content domain the generator can write about.
type Topic string

// Topics covered by the synthetic web. They mirror the application
// domains the paper motivates: video games (GamerQueen), wine, movies
// (video store), plus health and general filler.
const (
	TopicGames   Topic = "games"
	TopicWine    Topic = "wine"
	TopicMovies  Topic = "movies"
	TopicHealth  Topic = "health"
	TopicGeneral Topic = "general"
)

// Topics lists all topics in stable order.
var Topics = []Topic{TopicGames, TopicWine, TopicMovies, TopicHealth, TopicGeneral}

// Page is one synthetic web document.
type Page struct {
	URL      string
	Site     string // registrable domain, e.g. "ign.com"
	Title    string
	Body     string
	Vertical Vertical
	Topic    Topic
	// Entity is the subject the page is about (a game title, a wine
	// name); supplemental search relevance is judged against it.
	Entity string
	// Links holds intra-corpus URLs, used by the crawler substrate.
	Links []string
	// PublishedDay is a day ordinal for news freshness ranking.
	PublishedDay int
}

// Site is a synthetic publisher.
type Site struct {
	Domain  string
	Topic   Topic
	Quality float64 // 0..1 editorial quality prior, used in ranking
}

// Corpus is a generated synthetic web.
type Corpus struct {
	Sites []Site
	Pages []Page

	bySite map[string][]int
	byURL  map[string]int
}

// Config controls generation.
type Config struct {
	Seed int64
	// PagesPerSite is the mean page count per site (default 40).
	PagesPerSite int
	// EntitiesPerTopic is how many distinct subjects each topic has
	// (default 60). Entity names are what proprietary catalogs in the
	// examples overlap with.
	EntitiesPerTopic int
}

// Known review sites per topic: these reproduce the paper's §II-B
// example of restricting game-review search to ign.com, gamespot.com
// and teamxbox.com.
var topicSites = map[Topic][]string{
	TopicGames: {
		"ign.com", "gamespot.com", "teamxbox.com", "kotaku.com",
		"eurogamer.net", "polygon.example", "gamerankings.example",
		"pixelcritic.example", "joystiq.example", "nukezone.example",
	},
	TopicWine: {
		"winespectator.example", "cellartracker.example", "vinous.example",
		"decanter.example", "grapevine.example", "sommelier.example",
		"barrelnotes.example", "terroir.example",
	},
	TopicMovies: {
		"imdb.example", "rottentomatoes.example", "variety.example",
		"screenrant.example", "filmdaily.example", "cinephile.example",
		"boxoffice.example", "trailerpark.example",
	},
	TopicHealth: {
		"webmd.example", "healthline.example", "mayoclinic.example",
		"medscape.example", "wellness.example",
	},
	TopicGeneral: {
		"news.example", "blogspot.example", "wikipedia.example",
		"aboutstuff.example", "dailypost.example", "answers.example",
		"forumhub.example",
	},
}

var gameWords = []string{"Legend", "Halo", "Gears", "Spirit", "Shadow", "Dragon", "Quest", "Fortress", "Empire", "Galaxy", "Racer", "Tactics", "Arena", "Chronicles", "Odyssey", "Infinite", "Storm", "Blade", "Kingdom", "Nebula"}
var wineWords = []string{"Chateau", "Ridge", "Valley", "Estate", "Reserve", "Vineyard", "Creek", "Hill", "Coast", "Oak", "Stone", "River", "Meadow", "Cellars", "Summit"}
var wineVarietals = []string{"Cabernet", "Merlot", "Pinot Noir", "Chardonnay", "Riesling", "Zinfandel", "Syrah", "Malbec"}
var movieWords = []string{"Midnight", "Crimson", "Silent", "Broken", "Golden", "Last", "First", "Hidden", "Lost", "Eternal", "Winter", "Summer", "Iron", "Paper", "Glass"}
var movieNouns = []string{"Horizon", "Promise", "City", "Garden", "Voyage", "Letter", "Echo", "Harbor", "Crown", "Mirror", "Station", "Bridge"}
var healthTerms = []string{"migraine", "allergy", "insomnia", "nutrition", "fitness", "diabetes", "posture", "hydration", "recovery", "immunity"}
var generalTerms = []string{"travel", "finance", "gardening", "photography", "cooking", "history", "weather", "music", "fashion", "science"}

var fillerWords = []string{
	"the", "latest", "complete", "guide", "review", "analysis", "impressions",
	"detailed", "hands", "on", "coverage", "exclusive", "report", "roundup",
	"community", "expert", "opinion", "rating", "scores", "verdict", "deep",
	"dive", "comparison", "feature", "story", "update", "preview", "breakdown",
}

// Entities returns the generated entity names for a topic with the
// given config. It is deterministic for a seed, and is exported so
// example catalogs can be built from the same universe of subjects.
func Entities(cfg Config, topic Topic) []string {
	n := cfg.EntitiesPerTopic
	if n <= 0 {
		n = 60
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(len(topic))*7919))
	out := make([]string, 0, n)
	seen := make(map[string]bool)
	for len(out) < n {
		var name string
		switch topic {
		case TopicGames:
			name = gameWords[rng.Intn(len(gameWords))] + " " + gameWords[rng.Intn(len(gameWords))]
			if rng.Intn(3) == 0 {
				name += fmt.Sprintf(" %d", 2+rng.Intn(5))
			}
		case TopicWine:
			name = wineWords[rng.Intn(len(wineWords))] + " " + wineWords[rng.Intn(len(wineWords))] + " " + wineVarietals[rng.Intn(len(wineVarietals))]
		case TopicMovies:
			name = movieWords[rng.Intn(len(movieWords))] + " " + movieNouns[rng.Intn(len(movieNouns))]
		case TopicHealth:
			name = healthTerms[rng.Intn(len(healthTerms))] + " " + healthTerms[rng.Intn(len(healthTerms))]
		default:
			name = generalTerms[rng.Intn(len(generalTerms))] + " " + generalTerms[rng.Intn(len(generalTerms))]
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

// Generate builds the corpus.
func Generate(cfg Config) *Corpus {
	perSite := cfg.PagesPerSite
	if perSite <= 0 {
		perSite = 40
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{bySite: make(map[string][]int), byURL: make(map[string]int)}

	entities := make(map[Topic][]string)
	for _, topic := range Topics {
		entities[topic] = Entities(cfg, topic)
		for _, domain := range topicSites[topic] {
			c.Sites = append(c.Sites, Site{
				Domain:  domain,
				Topic:   topic,
				Quality: 0.3 + 0.7*rng.Float64(),
			})
		}
	}

	for _, site := range c.Sites {
		n := perSite/2 + rng.Intn(perSite)
		for i := 0; i < n; i++ {
			topic := site.Topic
			// 15% of pages are off-topic noise.
			if rng.Intn(100) < 15 {
				topic = Topics[rng.Intn(len(Topics))]
			}
			ents := entities[topic]
			entity := ents[rng.Intn(len(ents))]
			vertical := pickVertical(rng)
			page := makePage(rng, site, topic, entity, vertical, i)
			c.bySite[site.Domain] = append(c.bySite[site.Domain], len(c.Pages))
			c.byURL[page.URL] = len(c.Pages)
			c.Pages = append(c.Pages, page)
		}
	}

	// Wire intra-corpus links: each web page links to a handful of
	// pages, biased to the same site (for crawler traversal).
	for i := range c.Pages {
		p := &c.Pages[i]
		if p.Vertical != VerticalWeb {
			continue
		}
		nLinks := 2 + rng.Intn(5)
		for j := 0; j < nLinks; j++ {
			var target Page
			if rng.Intn(100) < 70 {
				sameSite := c.bySite[p.Site]
				target = c.Pages[sameSite[rng.Intn(len(sameSite))]]
			} else {
				target = c.Pages[rng.Intn(len(c.Pages))]
			}
			if target.URL != p.URL {
				p.Links = append(p.Links, target.URL)
			}
		}
	}
	return c
}

func pickVertical(rng *rand.Rand) Vertical {
	switch r := rng.Intn(100); {
	case r < 55:
		return VerticalWeb
	case r < 70:
		return VerticalImage
	case r < 85:
		return VerticalVideo
	default:
		return VerticalNews
	}
}

func makePage(rng *rand.Rand, site Site, topic Topic, entity string, vertical Vertical, ord int) Page {
	slug := strings.ToLower(strings.ReplaceAll(entity, " ", "-"))
	url := fmt.Sprintf("http://%s/%s/%s-%d", site.Domain, vertical, slug, ord)

	var title string
	switch vertical {
	case VerticalImage:
		title = entity + " screenshots and photo gallery"
	case VerticalVideo:
		title = entity + " official trailer and gameplay video"
	case VerticalNews:
		title = entity + " announcement: " + fillerWords[rng.Intn(len(fillerWords))] + " news"
	default:
		title = entity + " review - " + fillerWords[rng.Intn(len(fillerWords))] + " " + fillerWords[rng.Intn(len(fillerWords))]
	}

	var b strings.Builder
	b.WriteString(entity)
	b.WriteString(" ")
	sentences := 3 + rng.Intn(6)
	for s := 0; s < sentences; s++ {
		words := 8 + rng.Intn(10)
		for w := 0; w < words; w++ {
			if rng.Intn(10) == 0 {
				b.WriteString(entity)
			} else {
				b.WriteString(fillerWords[rng.Intn(len(fillerWords))])
			}
			b.WriteByte(' ')
		}
		b.WriteString(". ")
	}
	b.WriteString(string(topic))

	return Page{
		URL:          url,
		Site:         site.Domain,
		Title:        title,
		Body:         b.String(),
		Vertical:     vertical,
		Topic:        topic,
		Entity:       entity,
		PublishedDay: rng.Intn(365),
	}
}

// PagesBySite returns the pages of one site.
func (c *Corpus) PagesBySite(domain string) []Page {
	idxs := c.bySite[domain]
	out := make([]Page, len(idxs))
	for i, ix := range idxs {
		out[i] = c.Pages[ix]
	}
	return out
}

// PageByURL finds a page by URL; the crawler uses this as its HTTP
// fetch.
func (c *Corpus) PageByURL(url string) (Page, bool) {
	ix, ok := c.byURL[url]
	if !ok {
		return Page{}, false
	}
	return c.Pages[ix], true
}

// SitesForTopic lists domains publishing a topic.
func SitesForTopic(topic Topic) []string {
	out := make([]string, len(topicSites[topic]))
	copy(out, topicSites[topic])
	return out
}

// HTML renders the page as a minimal HTML document, used by the
// crawler substrate to exercise real extraction.
func (p Page) HTML() string {
	var b strings.Builder
	b.WriteString("<html><head><title>")
	b.WriteString(p.Title)
	b.WriteString("</title></head><body><h1>")
	b.WriteString(p.Title)
	b.WriteString("</h1><p>")
	b.WriteString(p.Body)
	b.WriteString("</p>")
	for _, l := range p.Links {
		b.WriteString(`<a href="`)
		b.WriteString(l)
		b.WriteString(`">link</a>`)
	}
	b.WriteString("</body></html>")
	return b.String()
}
