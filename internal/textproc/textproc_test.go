package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize("Hello, World! 42")
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3: %#v", len(toks), toks)
	}
	want := []string{"hello", "world", "42"}
	for i, w := range want {
		if toks[i].Term != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Term, w)
		}
		if toks[i].Position != i {
			t.Errorf("token %d position = %d, want %d", i, toks[i].Position, i)
		}
	}
}

func TestTokenizeOffsets(t *testing.T) {
	text := "The Legend of Zelda"
	for _, tok := range Tokenize(text) {
		got := strings.ToLower(text[tok.Start:tok.End])
		if got != tok.Term {
			t.Errorf("offsets of %q give %q", tok.Term, got)
		}
	}
}

func TestTokenizeApostrophe(t *testing.T) {
	toks := Tokenize("Ann's store")
	if toks[0].Term != "anns" {
		t.Errorf("got %q, want anns", toks[0].Term)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("empty text produced %d tokens", len(got))
	}
	if got := Tokenize("  ,.!  "); len(got) != 0 {
		t.Errorf("punctuation-only text produced %d tokens", len(got))
	}
}

func TestTokenizeUnicode(t *testing.T) {
	toks := Tokenize("café Pokémon")
	if len(toks) != 2 || toks[0].Term != "café" || toks[1].Term != "pokémon" {
		t.Fatalf("unicode tokens wrong: %#v", toks)
	}
}

func TestTokenizePropertyLowercaseNoSeparators(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok.Term == "" {
				return false
			}
			for _, r := range tok.Term {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					return false
				}
				// Characters with no lowercase mapping (e.g.
				// mathematical capitals) pass through ToLower
				// unchanged; only a failed mapping is a bug.
				if unicode.IsUpper(r) && unicode.ToLower(r) != r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizePropertyPositionsMonotonic(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		for i, tok := range toks {
			if tok.Position != i {
				return false
			}
			if i > 0 && tok.Start < toks[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"reviews":    "review",
		"reviewed":   "review",
		"reviewing":  "review",
		"games":      "game",
		"ponies":     "poni",
		"caresses":   "caress",
		"running":    "run",
		"hopping":    "hop",
		"relational": "relate",
		"cat":        "cat", // too short to touch
		"plus":       "plus",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemIdempotentOnShort(t *testing.T) {
	for _, s := range []string{"a", "an", "of", "ign"} {
		if Stem(s) != s {
			t.Errorf("short word %q was stemmed to %q", s, Stem(s))
		}
	}
}

func TestStemVariantsCollapse(t *testing.T) {
	variants := []string{"review", "reviews", "reviewed", "reviewing"}
	base := Stem(variants[0])
	for _, v := range variants[1:] {
		if Stem(v) != base {
			t.Errorf("Stem(%q) = %q, want %q", v, Stem(v), base)
		}
	}
}

func TestAnalyzerStopwords(t *testing.T) {
	terms := DefaultAnalyzer.AnalyzeTerms("the legend of zelda")
	if !reflect.DeepEqual(terms, []string{"legend", "zelda"}) {
		t.Errorf("got %v", terms)
	}
}

func TestAnalyzerPositionsPreserveGaps(t *testing.T) {
	toks := DefaultAnalyzer.Analyze("legend of zelda")
	if len(toks) != 2 {
		t.Fatalf("got %d tokens", len(toks))
	}
	if toks[1].Position-toks[0].Position != 2 {
		t.Errorf("stopword gap lost: positions %d %d", toks[0].Position, toks[1].Position)
	}
}

func TestKeywordAnalyzer(t *testing.T) {
	terms := KeywordAnalyzer.AnalyzeTerms("The Running Games")
	if !reflect.DeepEqual(terms, []string{"the", "running", "games"}) {
		t.Errorf("keyword analyzer altered terms: %v", terms)
	}
}

func TestAnalyzerCustomStopwords(t *testing.T) {
	an := &Analyzer{Stopwords: map[string]bool{"zelda": true}, NoStem: true}
	terms := an.AnalyzeTerms("legend of zelda")
	if !reflect.DeepEqual(terms, []string{"legend", "of"}) {
		t.Errorf("got %v", terms)
	}
}

func TestNilAnalyzerDefaults(t *testing.T) {
	var an *Analyzer
	terms := an.AnalyzeTerms("the games")
	if !reflect.DeepEqual(terms, []string{"game"}) {
		t.Errorf("nil analyzer: got %v", terms)
	}
}

func TestNGrams(t *testing.T) {
	got := NGrams("abcd", 3)
	if !reflect.DeepEqual(got, []string{"abc", "bcd"}) {
		t.Errorf("got %v", got)
	}
	if got := NGrams("ab", 3); !reflect.DeepEqual(got, []string{"ab"}) {
		t.Errorf("short: got %v", got)
	}
	if NGrams("abc", 0) != nil {
		t.Error("n=0 should be nil")
	}
}

func TestShingles(t *testing.T) {
	got := Shingles([]string{"a", "b", "c"}, 2)
	if !reflect.DeepEqual(got, []string{"a b", "b c"}) {
		t.Errorf("got %v", got)
	}
	if got := Shingles([]string{"a"}, 2); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("short: got %v", got)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || IsStopword("zelda") {
		t.Error("stopword classification wrong")
	}
}
