package textproc

import "strings"

// Stem applies a light English suffix-stripping stemmer (a compact
// variant of Porter steps 1a/1b/2) so that "reviews", "reviewed" and
// "reviewing" collapse to a common form. It is intentionally
// conservative: wrong merges hurt a search platform more than missed
// merges, because proprietary catalogs contain many product names.
func Stem(term string) string {
	if len(term) <= 3 {
		return term
	}
	t := term

	// Step 1a: plurals.
	switch {
	case strings.HasSuffix(t, "sses"):
		t = t[:len(t)-2]
	case strings.HasSuffix(t, "ies"):
		t = t[:len(t)-2]
	case strings.HasSuffix(t, "ss"):
		// keep
	case strings.HasSuffix(t, "s") && !strings.HasSuffix(t, "us"):
		t = t[:len(t)-1]
	}

	// Step 1b: -ed / -ing, only when a vowel remains in the stem.
	switch {
	case strings.HasSuffix(t, "eed"):
		if measure(t[:len(t)-3]) > 0 {
			t = t[:len(t)-1]
		}
	case strings.HasSuffix(t, "ed") && hasVowel(t[:len(t)-2]):
		t = cleanup1b(t[:len(t)-2])
	case strings.HasSuffix(t, "ing") && hasVowel(t[:len(t)-3]):
		t = cleanup1b(t[:len(t)-3])
	}

	// Step 1c: terminal y -> i when a vowel precedes it.
	if strings.HasSuffix(t, "y") && hasVowel(t[:len(t)-1]) {
		t = t[:len(t)-1] + "i"
	}

	// A few common step-2 suffixes.
	for _, p := range [...]struct{ from, to string }{
		{"ational", "ate"},
		{"tional", "tion"},
		{"ization", "ize"},
		{"fulness", "ful"},
		{"ousness", "ous"},
		{"iveness", "ive"},
		{"biliti", "ble"},
	} {
		if strings.HasSuffix(t, p.from) && measure(t[:len(t)-len(p.from)]) > 0 {
			t = t[:len(t)-len(p.from)] + p.to
			break
		}
	}
	return t
}

// cleanup1b restores the classic Porter post-1b fixes: "at"->"ate",
// "bl"->"ble", "iz"->"ize", undouble most doubled consonants.
func cleanup1b(t string) string {
	switch {
	case strings.HasSuffix(t, "at"), strings.HasSuffix(t, "bl"), strings.HasSuffix(t, "iz"):
		return t + "e"
	}
	n := len(t)
	if n >= 2 && t[n-1] == t[n-2] && isConsonant(t, n-1) {
		switch t[n-1] {
		case 'l', 's', 'z':
			return t
		}
		return t[:n-1]
	}
	return t
}

func isConsonant(s string, i int) bool {
	switch s[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(s, i-1)
	}
	return true
}

func hasVowel(s string) bool {
	for i := range s {
		if !isConsonant(s, i) {
			return true
		}
	}
	return false
}

// measure counts vowel-consonant sequences (Porter's m).
func measure(s string) int {
	m := 0
	prevVowel := false
	for i := range s {
		v := !isConsonant(s, i)
		if prevVowel && !v {
			m++
		}
		prevVowel = v
	}
	return m
}
