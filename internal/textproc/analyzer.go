package textproc

// Analyzer turns raw text into index terms. Index-time and query-time
// analysis must use the same Analyzer; the engine and the store each
// hold one and pass it to internal/index.
type Analyzer struct {
	// KeepStopwords disables stopword removal. Catalog fields such as
	// product titles often want stopwords kept ("The Last of Us").
	KeepStopwords bool
	// NoStem disables stemming, used for keyword/identifier fields.
	NoStem bool
	// Stopwords overrides DefaultStopwords when non-nil.
	Stopwords map[string]bool
}

// DefaultAnalyzer is the analyzer used for free-text fields: lower
// cased, stopworded, stemmed.
var DefaultAnalyzer = &Analyzer{}

// KeywordAnalyzer keeps every token verbatim (no stopwords removed,
// no stemming); used for fields like URLs, SKUs and site names.
var KeywordAnalyzer = &Analyzer{KeepStopwords: true, NoStem: true}

// Analyze runs the full pipeline. Token positions are preserved from
// tokenization even when stopwords are removed, so phrase queries see
// the original gaps ("president of france" matches with a position gap
// at "of").
func (a *Analyzer) Analyze(text string) []Token {
	if a == nil {
		a = DefaultAnalyzer
	}
	toks := Tokenize(text)
	stop := a.Stopwords
	if stop == nil {
		stop = DefaultStopwords
	}
	out := toks[:0]
	for _, t := range toks {
		if !a.KeepStopwords && stop[t.Term] {
			continue
		}
		if !a.NoStem {
			t.Term = Stem(t.Term)
		}
		out = append(out, t)
	}
	return out
}

// AnalyzeTerms returns just the terms of Analyze.
func (a *Analyzer) AnalyzeTerms(text string) []string {
	toks := a.Analyze(text)
	terms := make([]string, len(toks))
	for i, t := range toks {
		terms[i] = t.Term
	}
	return terms
}
