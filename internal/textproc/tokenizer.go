// Package textproc provides the text analysis pipeline used by the
// Symphony search substrate: tokenization, case folding, stopword
// removal, stemming and n-gram generation.
//
// The pipeline is deliberately small and allocation-conscious: the
// inverted index in internal/index calls Analyze on every document
// field and every query, so the hot path avoids regexp and keeps
// per-token garbage low.
package textproc

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is a single analyzed term together with its position in the
// source text. Positions are term positions (0, 1, 2, ...), not byte
// offsets; they are what phrase queries match against.
type Token struct {
	Term     string
	Position int
	// Start and End are byte offsets into the original text, used by
	// snippet generation and highlighting.
	Start int
	End   int
}

// Tokenize splits text into lower-cased word tokens. A word is a
// maximal run of letters or digits; everything else is a separator.
// Apostrophes inside words are dropped ("Ann's" -> "anns") so that
// possessives match their stem.
func Tokenize(text string) []Token {
	return TokenizeAppend(make([]Token, 0, len(text)/6+1), text)
}

// TokenizeAppend is Tokenize appending into dst, so repeat callers
// can recycle one slice instead of allocating a fresh token buffer per
// document.
func TokenizeAppend(dst []Token, text string) []Token {
	tokens := dst
	var b strings.Builder
	pos := 0
	start := -1
	flush := func(end int) {
		if b.Len() == 0 {
			return
		}
		tokens = append(tokens, Token{
			Term:     b.String(),
			Position: pos,
			Start:    start,
			End:      end,
		})
		pos++
		b.Reset()
		start = -1
	}
	for i, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			if start < 0 {
				start = i
			}
			b.WriteRune(unicode.ToLower(r))
		case r == '\'':
			// swallow apostrophes inside words
		default:
			flush(i)
		}
	}
	flush(len(text))
	return tokens
}

// TokenizeFunc streams the tokens of text to fn without materializing
// a string per token: term is the lowered term bytes in a scratch
// buffer that is reused for the next token, so it is only valid during
// the call (copy it to retain it). Position, start and end carry the
// same meaning as in Token. Tokenization rules are identical to
// Tokenize; snippet generation uses this to stay allocation-free on
// the per-hit path.
func TokenizeFunc(text string, fn func(term []byte, position, start, end int)) {
	var scratch [48]byte
	term := scratch[:0]
	pos := 0
	start := -1
	flush := func(end int) {
		if len(term) == 0 {
			return
		}
		fn(term, pos, start, end)
		pos++
		term = term[:0]
		start = -1
	}
	for i, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			if start < 0 {
				start = i
			}
			term = utf8.AppendRune(term, unicode.ToLower(r))
		case r == '\'':
			// swallow apostrophes inside words
		default:
			flush(i)
		}
	}
	flush(len(text))
}

// Terms is a convenience wrapper returning just the token terms.
func Terms(text string) []string {
	toks := Tokenize(text)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Term
	}
	return out
}

// NGrams returns the character n-grams of a term, used for fuzzy
// prefix suggestions. For n larger than the term it returns the term
// itself.
func NGrams(term string, n int) []string {
	if n <= 0 {
		return nil
	}
	runes := []rune(term)
	if len(runes) <= n {
		return []string{term}
	}
	out := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		out = append(out, string(runes[i:i+n]))
	}
	return out
}

// Shingles returns word w-shingles joined by a single space. Shingles
// power the near-duplicate detection in the crawler.
func Shingles(terms []string, w int) []string {
	if w <= 0 || len(terms) == 0 {
		return nil
	}
	if len(terms) <= w {
		return []string{strings.Join(terms, " ")}
	}
	out := make([]string, 0, len(terms)-w+1)
	for i := 0; i+w <= len(terms); i++ {
		out = append(out, strings.Join(terms[i:i+w], " "))
	}
	return out
}
