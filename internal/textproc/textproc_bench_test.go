package textproc

import (
	"strings"
	"testing"
)

var benchText = strings.Repeat("The Legend of Zelda is an adventure game with puzzles, exploration and the latest reviews from critics. ", 20)

func BenchmarkTokenize(b *testing.B) {
	b.SetBytes(int64(len(benchText)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if toks := Tokenize(benchText); len(toks) == 0 {
			b.Fatal("no tokens")
		}
	}
}

func BenchmarkAnalyze(b *testing.B) {
	b.SetBytes(int64(len(benchText)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if toks := DefaultAnalyzer.Analyze(benchText); len(toks) == 0 {
			b.Fatal("no tokens")
		}
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"reviews", "running", "relational", "exploration", "puzzles", "adventure"}
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
