package textproc

// DefaultStopwords is the stopword list applied by the default
// analyzer. It mirrors the classic SMART short list; query-time and
// index-time analysis must use the same list or phrase positions
// drift.
var DefaultStopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true,
	"at": true, "be": true, "but": true, "by": true, "for": true,
	"if": true, "in": true, "into": true, "is": true, "it": true,
	"no": true, "not": true, "of": true, "on": true, "or": true,
	"such": true, "that": true, "the": true, "their": true,
	"then": true, "there": true, "these": true, "they": true,
	"this": true, "to": true, "was": true, "will": true, "with": true,
}

// IsStopword reports whether term is in the default stopword list.
func IsStopword(term string) bool { return DefaultStopwords[term] }
