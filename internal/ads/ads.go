// Package ads simulates the advertising service (adCenter in the
// paper) that Symphony integrates: "allowing ads to be displayed and
// configured just like any other content source" (§II-A), with
// automatic crediting of ad-click revenue to application designers
// (§II-A, Monetization).
//
// Advertisers register keyword-targeted ads with a cost-per-click
// bid. Selection runs a generalized second-price auction over the
// ads matching the query's keywords; a click charges the advertiser
// the price below their bid and credits the configured revenue share
// to the application designer.
package ads

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/textproc"
)

// Ad is one registered advertisement.
type Ad struct {
	ID         string
	Advertiser string
	Title      string
	Text       string
	LandingURL string
	Keywords   []string
	BidCPC     float64 // advertiser's maximum cost per click
}

// Selected is an ad chosen for display, with the price a click will
// actually cost (second-price).
type Selected struct {
	Ad       Ad
	ClickCPC float64
	Score    float64
}

// Service is the ad marketplace.
type Service struct {
	// RevenueShare is the fraction of click revenue credited to the
	// application designer (the paper: "shares any revenue with the
	// designer"). Default 0.5.
	RevenueShare float64

	mu       sync.Mutex
	ads      map[string]Ad
	byKw     map[string][]string // analyzed keyword -> ad IDs
	earnings map[string]float64  // designer -> credited revenue
	spend    map[string]float64  // advertiser -> charged spend
	clicks   int
}

// NewService returns an empty ad service with a 50% revenue share.
func NewService() *Service {
	return &Service{
		RevenueShare: 0.5,
		ads:          make(map[string]Ad),
		byKw:         make(map[string][]string),
		earnings:     make(map[string]float64),
		spend:        make(map[string]float64),
	}
}

// Register adds or replaces an ad.
func (s *Service) Register(ad Ad) error {
	if ad.ID == "" {
		return fmt.Errorf("ads: ad has no ID")
	}
	if ad.BidCPC <= 0 {
		return fmt.Errorf("ads: ad %s has non-positive bid", ad.ID)
	}
	if len(ad.Keywords) == 0 {
		return fmt.Errorf("ads: ad %s has no keywords", ad.ID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.ads[ad.ID]; ok {
		s.removeKeywordsLocked(old)
	}
	s.ads[ad.ID] = ad
	for _, kw := range ad.Keywords {
		for _, term := range textproc.DefaultAnalyzer.AnalyzeTerms(kw) {
			s.byKw[term] = append(s.byKw[term], ad.ID)
		}
	}
	return nil
}

func (s *Service) removeKeywordsLocked(ad Ad) {
	for _, kw := range ad.Keywords {
		for _, term := range textproc.DefaultAnalyzer.AnalyzeTerms(kw) {
			list := s.byKw[term]
			kept := list[:0]
			for _, id := range list {
				if id != ad.ID {
					kept = append(kept, id)
				}
			}
			if len(kept) == 0 {
				delete(s.byKw, term)
			} else {
				s.byKw[term] = kept
			}
		}
	}
}

// Unregister removes an ad.
func (s *Service) Unregister(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ad, ok := s.ads[id]
	if !ok {
		return false
	}
	s.removeKeywordsLocked(ad)
	delete(s.ads, id)
	return true
}

// Select runs the auction for a query and returns up to limit ads
// ordered by auction rank (bid x relevance). ClickCPC of the i-th ad
// is the rank-normalized bid of the (i+1)-th — generalized second
// price — or a minimum of 0.01 for the last slot.
func (s *Service) Select(query string, limit int) []Selected {
	if limit <= 0 {
		limit = 3
	}
	terms := textproc.DefaultAnalyzer.AnalyzeTerms(query)
	if len(terms) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// relevance = number of matched keywords terms
	matched := make(map[string]int)
	for _, t := range terms {
		for _, id := range s.byKw[t] {
			matched[id]++
		}
	}
	if len(matched) == 0 {
		return nil
	}
	out := make([]Selected, 0, len(matched))
	for id, rel := range matched {
		ad := s.ads[id]
		out = append(out, Selected{
			Ad:    ad,
			Score: ad.BidCPC * float64(rel),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Ad.ID < out[j].Ad.ID
	})
	if len(out) > limit {
		out = out[:limit]
	}
	// Second-price: each slot pays the score of the slot below scaled
	// back into its own relevance, bounded by its own bid.
	for i := range out {
		price := 0.01
		if i+1 < len(out) {
			rel := out[i].Score / out[i].Ad.BidCPC
			price = out[i+1].Score/rel + 0.01
		}
		if price > out[i].Ad.BidCPC {
			price = out[i].Ad.BidCPC
		}
		out[i].ClickCPC = price
	}
	return out
}

// RecordClick charges the advertiser and credits the designer. It
// returns the designer's credited amount.
func (s *Service) RecordClick(designer string, sel Selected) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clicks++
	s.spend[sel.Ad.Advertiser] += sel.ClickCPC
	credit := sel.ClickCPC * s.RevenueShare
	s.earnings[designer] += credit
	return credit
}

// Earnings returns the designer's accumulated revenue share.
func (s *Service) Earnings(designer string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.earnings[designer]
}

// Spend returns an advertiser's accumulated charges.
func (s *Service) Spend(advertiser string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spend[advertiser]
}

// Clicks returns the total billed clicks.
func (s *Service) Clicks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clicks
}

// Len returns the number of registered ads.
func (s *Service) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ads)
}

// SuggestBid proposes a bid for keywords: 10% above the current top
// bid among ads sharing any keyword term, or 0.10 if none compete.
func (s *Service) SuggestBid(keywords []string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	top := 0.0
	for _, kw := range keywords {
		for _, term := range textproc.DefaultAnalyzer.AnalyzeTerms(strings.ToLower(kw)) {
			for _, id := range s.byKw[term] {
				if b := s.ads[id].BidCPC; b > top {
					top = b
				}
			}
		}
	}
	if top == 0 {
		return 0.10
	}
	return top * 1.1
}
