package ads

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func sampleService(t testing.TB) *Service {
	t.Helper()
	s := NewService()
	adsList := []Ad{
		{ID: "a1", Advertiser: "GameMart", Title: "Buy Zelda", Text: "Best prices", LandingURL: "http://gamemart.example/zelda", Keywords: []string{"zelda", "adventure games"}, BidCPC: 1.00},
		{ID: "a2", Advertiser: "PlayShop", Title: "Zelda Sale", Text: "Discounts", LandingURL: "http://playshop.example/zelda", Keywords: []string{"zelda"}, BidCPC: 0.60},
		{ID: "a3", Advertiser: "WineClub", Title: "Cabernet Club", Text: "Join now", LandingURL: "http://wineclub.example/", Keywords: []string{"cabernet", "wine"}, BidCPC: 2.00},
	}
	for _, ad := range adsList {
		if err := s.Register(ad); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestRegisterValidation(t *testing.T) {
	s := NewService()
	bad := []Ad{
		{},
		{ID: "x", BidCPC: 1},               // no keywords
		{ID: "x", Keywords: []string{"k"}}, // no bid
		{ID: "x", Keywords: []string{"k"}, BidCPC: -1}, // negative bid
	}
	for i, ad := range bad {
		if err := s.Register(ad); err == nil {
			t.Errorf("bad ad %d accepted", i)
		}
	}
	if s.Len() != 0 {
		t.Error("bad ads registered")
	}
}

func TestSelectMatchesKeywords(t *testing.T) {
	s := sampleService(t)
	sels := s.Select("zelda walkthrough", 5)
	if len(sels) != 2 {
		t.Fatalf("zelda ads = %d", len(sels))
	}
	// a1 bids higher, should rank first.
	if sels[0].Ad.ID != "a1" {
		t.Errorf("top ad = %s", sels[0].Ad.ID)
	}
	for _, sel := range sels {
		if sel.Ad.ID == "a3" {
			t.Error("wine ad matched a game query")
		}
	}
}

func TestSelectNoMatch(t *testing.T) {
	s := sampleService(t)
	if sels := s.Select("quantum physics", 5); len(sels) != 0 {
		t.Errorf("irrelevant query returned %d ads", len(sels))
	}
	if sels := s.Select("", 5); len(sels) != 0 {
		t.Error("empty query returned ads")
	}
}

func TestSecondPricePricing(t *testing.T) {
	s := sampleService(t)
	sels := s.Select("zelda", 5)
	if len(sels) != 2 {
		t.Fatal("setup")
	}
	// Winner pays just above loser's effective bid, never more than
	// their own bid; loser pays the floor.
	if sels[0].ClickCPC > sels[0].Ad.BidCPC {
		t.Errorf("winner pays %f above bid %f", sels[0].ClickCPC, sels[0].Ad.BidCPC)
	}
	if sels[0].ClickCPC <= sels[1].ClickCPC {
		t.Errorf("price ordering wrong: %f <= %f", sels[0].ClickCPC, sels[1].ClickCPC)
	}
	wantWinner := 0.60 + 0.01 // runner-up bid + increment (equal relevance)
	if math.Abs(sels[0].ClickCPC-wantWinner) > 1e-9 {
		t.Errorf("winner price = %f, want %f", sels[0].ClickCPC, wantWinner)
	}
	if math.Abs(sels[1].ClickCPC-0.01) > 1e-9 {
		t.Errorf("last slot price = %f, want 0.01", sels[1].ClickCPC)
	}
}

func TestRelevanceBeatsBidWhenMoreTermsMatch(t *testing.T) {
	s := NewService()
	s.Register(Ad{ID: "broad", Advertiser: "x", Keywords: []string{"wine", "cabernet"}, BidCPC: 1.0, Title: "t", LandingURL: "u"})
	s.Register(Ad{ID: "rich", Advertiser: "y", Keywords: []string{"wine"}, BidCPC: 1.5, Title: "t", LandingURL: "u"})
	sels := s.Select("cabernet wine tasting", 2)
	if len(sels) != 2 || sels[0].Ad.ID != "broad" {
		t.Fatalf("expected two-term match to win: %+v", sels)
	}
}

func TestClickBillingAndRevenueShare(t *testing.T) {
	s := sampleService(t)
	sels := s.Select("zelda", 1)
	credit := s.RecordClick("ann", sels[0])
	if math.Abs(credit-sels[0].ClickCPC*0.5) > 1e-9 {
		t.Errorf("credit = %f", credit)
	}
	if got := s.Earnings("ann"); math.Abs(got-credit) > 1e-9 {
		t.Errorf("earnings = %f", got)
	}
	if got := s.Spend(sels[0].Ad.Advertiser); math.Abs(got-sels[0].ClickCPC) > 1e-9 {
		t.Errorf("spend = %f", got)
	}
	if s.Clicks() != 1 {
		t.Errorf("clicks = %d", s.Clicks())
	}
}

func TestCustomRevenueShare(t *testing.T) {
	s := sampleService(t)
	s.RevenueShare = 0.7
	sels := s.Select("zelda", 1)
	credit := s.RecordClick("ann", sels[0])
	if math.Abs(credit-sels[0].ClickCPC*0.7) > 1e-9 {
		t.Errorf("credit = %f", credit)
	}
}

func TestUnregister(t *testing.T) {
	s := sampleService(t)
	if !s.Unregister("a1") || s.Unregister("a1") {
		t.Fatal("unregister semantics")
	}
	sels := s.Select("zelda", 5)
	for _, sel := range sels {
		if sel.Ad.ID == "a1" {
			t.Error("unregistered ad still selected")
		}
	}
}

func TestReRegisterReplacesKeywords(t *testing.T) {
	s := sampleService(t)
	s.Register(Ad{ID: "a1", Advertiser: "GameMart", Title: "Wine now", Keywords: []string{"merlot"}, BidCPC: 1, LandingURL: "u"})
	for _, sel := range s.Select("zelda", 5) {
		if sel.Ad.ID == "a1" {
			t.Error("old keywords survived re-register")
		}
	}
	found := false
	for _, sel := range s.Select("merlot", 5) {
		if sel.Ad.ID == "a1" {
			found = true
		}
	}
	if !found {
		t.Error("new keywords not live")
	}
}

func TestSuggestBid(t *testing.T) {
	s := sampleService(t)
	if got := s.SuggestBid([]string{"nonexistent keyword"}); got != 0.10 {
		t.Errorf("floor bid = %f", got)
	}
	got := s.SuggestBid([]string{"zelda"})
	if math.Abs(got-1.10) > 1e-9 {
		t.Errorf("competitive bid = %f, want 1.10", got)
	}
}

func TestSelectLimit(t *testing.T) {
	s := NewService()
	for i := 0; i < 10; i++ {
		s.Register(Ad{ID: fmt.Sprintf("ad%d", i), Advertiser: "a", Keywords: []string{"game"}, BidCPC: float64(i + 1), Title: "t", LandingURL: "u"})
	}
	if got := len(s.Select("game", 3)); got != 3 {
		t.Errorf("limit 3 returned %d", got)
	}
	if got := len(s.Select("game", 0)); got != 3 {
		t.Errorf("default limit returned %d", got)
	}
}

// Property: total designer credit equals clicks x share x price, and
// advertiser spend always covers designer earnings.
func TestPropertyBillingConsistent(t *testing.T) {
	f := func(nClicks uint8) bool {
		s := sampleService(t)
		sels := s.Select("zelda", 2)
		var wantEarn, wantSpend float64
		for i := 0; i < int(nClicks%20); i++ {
			sel := sels[i%len(sels)]
			s.RecordClick("ann", sel)
			wantEarn += sel.ClickCPC * 0.5
			wantSpend += sel.ClickCPC
		}
		var gotSpend float64
		for _, adv := range []string{"GameMart", "PlayShop"} {
			gotSpend += s.Spend(adv)
		}
		return math.Abs(s.Earnings("ann")-wantEarn) < 1e-6 &&
			math.Abs(gotSpend-wantSpend) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
