// Package analytics implements the paper's Monetization support:
// "built-in support for the application designer to be able to record
// customer interactions with the application and obtain various
// summaries... a summary of an application's click traffic can be
// downloaded by the application designer to serve as the basis for
// charging or auditing referral compensation."
//
// It records impressions (queries served) and clicks per application,
// attributes ad-click revenue, and produces per-app summaries plus a
// CSV export for referral auditing.
package analytics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// EventType distinguishes logged interactions.
type EventType string

// Interaction kinds: a query served (impression of results), a click
// on an outbound content link, a click on an ad.
const (
	EventQuery   EventType = "query"
	EventClick   EventType = "click"
	EventAdClick EventType = "adclick"
)

// Event is one logged customer interaction.
type Event struct {
	Time  time.Time
	App   string
	Type  EventType
	Query string
	// URL is the click target (clicks only).
	URL  string
	Site string
	// Revenue credited to the designer (ad clicks only).
	Revenue float64
	// Customer is an opaque visitor identifier when available.
	Customer string
}

// Log is the append-only interaction log.
type Log struct {
	mu     sync.Mutex
	events []Event
	now    func() time.Time
}

// NewLog returns an empty log.
func NewLog() *Log {
	return &Log{now: time.Now}
}

// SetClock injects a clock for deterministic tests.
func (l *Log) SetClock(now func() time.Time) { l.now = now }

// Record appends an event, stamping the time if unset.
func (l *Log) Record(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e.Time.IsZero() {
		e.Time = l.now()
	}
	if e.Site == "" && e.URL != "" {
		e.Site = siteOf(e.URL)
	}
	l.events = append(l.events, e)
}

func siteOf(url string) string {
	s := url
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// Len returns the number of logged events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of events for app (all apps when app is "").
func (l *Log) Events(app string) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.events))
	for _, e := range l.events {
		if app == "" || e.App == app {
			out = append(out, e)
		}
	}
	return out
}

// Summary aggregates one application's traffic.
type Summary struct {
	App         string
	Queries     int
	Clicks      int
	AdClicks    int
	Revenue     float64
	CTR         float64 // clicks (incl. ad clicks) per query
	TopQueries  []Count
	TopSites    []Count
	UniqueUsers int
}

// Count is a labeled tally.
type Count struct {
	Label string
	N     int
}

// Summarize computes the designer-facing traffic summary.
func (l *Log) Summarize(app string, topN int) Summary {
	if topN <= 0 {
		topN = 5
	}
	events := l.Events(app)
	s := Summary{App: app}
	queries := map[string]int{}
	sites := map[string]int{}
	users := map[string]bool{}
	for _, e := range events {
		if e.Customer != "" {
			users[e.Customer] = true
		}
		switch e.Type {
		case EventQuery:
			s.Queries++
			if e.Query != "" {
				queries[strings.ToLower(e.Query)]++
			}
		case EventClick:
			s.Clicks++
			if e.Site != "" {
				sites[e.Site]++
			}
		case EventAdClick:
			s.AdClicks++
			s.Revenue += e.Revenue
		}
	}
	if s.Queries > 0 {
		s.CTR = float64(s.Clicks+s.AdClicks) / float64(s.Queries)
	}
	s.TopQueries = topCounts(queries, topN)
	s.TopSites = topCounts(sites, topN)
	s.UniqueUsers = len(users)
	return s
}

func topCounts(m map[string]int, n int) []Count {
	out := make([]Count, 0, len(m))
	for k, v := range m {
		out = append(out, Count{Label: k, N: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		return out[i].Label < out[j].Label
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// ReferralReport tallies outbound clicks per destination site — the
// paper's "basis for charging or auditing referral compensation".
func (l *Log) ReferralReport(app string) []Count {
	sites := map[string]int{}
	for _, e := range l.Events(app) {
		if e.Type == EventClick && e.Site != "" {
			sites[e.Site]++
		}
	}
	return topCounts(sites, len(sites))
}

// ExportCSV writes the app's click traffic as CSV, the downloadable
// summary the paper describes.
func (l *Log) ExportCSV(app string) string {
	var b strings.Builder
	b.WriteString("time,app,type,query,url,site,revenue,customer\n")
	for _, e := range l.Events(app) {
		b.WriteString(fmt.Sprintf("%s,%s,%s,%s,%s,%s,%.4f,%s\n",
			e.Time.UTC().Format(time.RFC3339),
			csvEscape(e.App), string(e.Type), csvEscape(e.Query),
			csvEscape(e.URL), csvEscape(e.Site), e.Revenue, csvEscape(e.Customer)))
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// RevenueStatement reports per-app designer earnings from ad clicks.
func (l *Log) RevenueStatement(app string) (clicks int, total float64) {
	for _, e := range l.Events(app) {
		if e.Type == EventAdClick {
			clicks++
			total += e.Revenue
		}
	}
	return clicks, total
}
