package analytics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func seededLog() *Log {
	l := NewLog()
	base := time.Date(2010, 3, 1, 0, 0, 0, 0, time.UTC)
	tick := 0
	l.SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Second)
	})
	l.Record(Event{App: "gamerqueen", Type: EventQuery, Query: "zelda", Customer: "c1"})
	l.Record(Event{App: "gamerqueen", Type: EventQuery, Query: "Zelda", Customer: "c2"})
	l.Record(Event{App: "gamerqueen", Type: EventQuery, Query: "halo", Customer: "c1"})
	l.Record(Event{App: "gamerqueen", Type: EventClick, URL: "http://ign.com/review/1", Customer: "c1"})
	l.Record(Event{App: "gamerqueen", Type: EventClick, URL: "http://gamespot.com/x", Customer: "c2"})
	l.Record(Event{App: "gamerqueen", Type: EventClick, URL: "http://ign.com/review/2", Customer: "c2"})
	l.Record(Event{App: "gamerqueen", Type: EventAdClick, URL: "http://ads.example/1", Revenue: 0.25, Customer: "c1"})
	l.Record(Event{App: "winefinder", Type: EventQuery, Query: "merlot"})
	return l
}

func TestSummarize(t *testing.T) {
	l := seededLog()
	s := l.Summarize("gamerqueen", 5)
	if s.Queries != 3 || s.Clicks != 3 || s.AdClicks != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Revenue != 0.25 {
		t.Errorf("revenue = %f", s.Revenue)
	}
	wantCTR := 4.0 / 3.0
	if s.CTR < wantCTR-1e-9 || s.CTR > wantCTR+1e-9 {
		t.Errorf("CTR = %f", s.CTR)
	}
	if s.UniqueUsers != 2 {
		t.Errorf("unique users = %d", s.UniqueUsers)
	}
	// queries case-folded: "zelda" counted twice
	if len(s.TopQueries) == 0 || s.TopQueries[0].Label != "zelda" || s.TopQueries[0].N != 2 {
		t.Errorf("top queries = %v", s.TopQueries)
	}
	if len(s.TopSites) == 0 || s.TopSites[0].Label != "ign.com" || s.TopSites[0].N != 2 {
		t.Errorf("top sites = %v", s.TopSites)
	}
}

func TestSummaryIsolatesApps(t *testing.T) {
	l := seededLog()
	s := l.Summarize("winefinder", 5)
	if s.Queries != 1 || s.Clicks != 0 {
		t.Fatalf("winefinder summary contaminated: %+v", s)
	}
}

func TestSiteDerivedFromURL(t *testing.T) {
	l := NewLog()
	l.Record(Event{App: "a", Type: EventClick, URL: "https://sub.example.com/path?x=1"})
	events := l.Events("a")
	if events[0].Site != "sub.example.com" {
		t.Errorf("site = %q", events[0].Site)
	}
}

func TestReferralReport(t *testing.T) {
	l := seededLog()
	rep := l.ReferralReport("gamerqueen")
	if len(rep) != 2 {
		t.Fatalf("report = %v", rep)
	}
	if rep[0].Label != "ign.com" || rep[0].N != 2 || rep[1].Label != "gamespot.com" {
		t.Errorf("report = %v", rep)
	}
}

func TestExportCSV(t *testing.T) {
	l := seededLog()
	csv := l.ExportCSV("gamerqueen")
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 8 { // header + 7 events
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "time,app,type,") {
		t.Error("header missing")
	}
	if !strings.Contains(csv, "adclick") || !strings.Contains(csv, "0.2500") {
		t.Error("ad click row missing")
	}
}

func TestCSVEscaping(t *testing.T) {
	l := NewLog()
	l.Record(Event{App: "a", Type: EventQuery, Query: `games, "best" ones`})
	csv := l.ExportCSV("a")
	if !strings.Contains(csv, `"games, ""best"" ones"`) {
		t.Errorf("csv escaping wrong:\n%s", csv)
	}
}

func TestRevenueStatement(t *testing.T) {
	l := seededLog()
	clicks, total := l.RevenueStatement("gamerqueen")
	if clicks != 1 || total != 0.25 {
		t.Fatalf("statement = %d, %f", clicks, total)
	}
}

func TestEventsAllApps(t *testing.T) {
	l := seededLog()
	if got := len(l.Events("")); got != 8 {
		t.Fatalf("all events = %d", got)
	}
	if l.Len() != 8 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestTimeStamping(t *testing.T) {
	l := seededLog()
	events := l.Events("gamerqueen")
	for i := 1; i < len(events); i++ {
		if !events[i].Time.After(events[i-1].Time) {
			t.Fatal("timestamps not monotonic under injected clock")
		}
	}
	// Explicit time preserved.
	explicit := time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC)
	l.Record(Event{App: "x", Type: EventQuery, Time: explicit})
	if got := l.Events("x")[0].Time; !got.Equal(explicit) {
		t.Errorf("explicit time overwritten: %v", got)
	}
}

// Property: summary counters always equal a manual scan of Events.
func TestPropertySummaryMatchesEvents(t *testing.T) {
	f := func(queries, clicks, adclicks uint8) bool {
		l := NewLog()
		for i := 0; i < int(queries%30); i++ {
			l.Record(Event{App: "a", Type: EventQuery, Query: "q"})
		}
		for i := 0; i < int(clicks%30); i++ {
			l.Record(Event{App: "a", Type: EventClick, URL: "http://s.example/x"})
		}
		for i := 0; i < int(adclicks%30); i++ {
			l.Record(Event{App: "a", Type: EventAdClick, Revenue: 0.1})
		}
		s := l.Summarize("a", 3)
		return s.Queries == int(queries%30) &&
			s.Clicks == int(clicks%30) &&
			s.AdClicks == int(adclicks%30)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
