package analytics

import (
	"strings"
	"testing"
	"time"
)

func TestSeriesDailyBuckets(t *testing.T) {
	l := NewLog()
	day := func(d int) time.Time {
		return time.Date(2010, 3, 1+d, 12, 0, 0, 0, time.UTC)
	}
	l.Record(Event{App: "a", Type: EventQuery, Time: day(0)})
	l.Record(Event{App: "a", Type: EventQuery, Time: day(0)})
	l.Record(Event{App: "a", Type: EventClick, URL: "http://x.example", Time: day(0)})
	// day 1: nothing (gap must appear as an empty bucket)
	l.Record(Event{App: "a", Type: EventAdClick, Revenue: 0.5, Time: day(2)})

	buckets := l.Series("a", 24*time.Hour)
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if buckets[0].Queries != 2 || buckets[0].Clicks != 1 {
		t.Errorf("day0 = %+v", buckets[0])
	}
	if buckets[1].Queries != 0 || buckets[1].Clicks != 0 || buckets[1].AdClicks != 0 {
		t.Errorf("gap day not empty: %+v", buckets[1])
	}
	if buckets[2].AdClicks != 1 || buckets[2].Revenue != 0.5 {
		t.Errorf("day2 = %+v", buckets[2])
	}
	for i := 1; i < len(buckets); i++ {
		if got := buckets[i].Start.Sub(buckets[i-1].Start); got != 24*time.Hour {
			t.Fatalf("bucket spacing = %v", got)
		}
	}
}

func TestSeriesEmptyAndDefaults(t *testing.T) {
	l := NewLog()
	if got := l.Series("none", time.Hour); got != nil {
		t.Fatalf("empty app series = %v", got)
	}
	l.Record(Event{App: "a", Type: EventQuery, Time: time.Date(2010, 3, 1, 5, 0, 0, 0, time.UTC)})
	// bucket <= 0 defaults to daily
	if got := l.Series("a", 0); len(got) != 1 {
		t.Fatalf("default bucket series = %v", got)
	}
}

func TestSeriesHourly(t *testing.T) {
	l := NewLog()
	base := time.Date(2010, 3, 1, 9, 10, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		l.Record(Event{App: "a", Type: EventQuery, Time: base.Add(time.Duration(i) * 30 * time.Minute)})
	}
	buckets := l.Series("a", time.Hour)
	if len(buckets) != 3 {
		t.Fatalf("hourly buckets = %d", len(buckets))
	}
	total := 0
	for _, b := range buckets {
		total += b.Queries
	}
	if total != 5 {
		t.Fatalf("queries lost in bucketing: %d", total)
	}
}

func TestRenderSeries(t *testing.T) {
	l := NewLog()
	l.Record(Event{App: "a", Type: EventQuery, Time: time.Date(2010, 3, 1, 0, 30, 0, 0, time.UTC)})
	out := RenderSeries(l.Series("a", 24*time.Hour))
	if !strings.Contains(out, "2010-03-01") || !strings.Contains(out, "queries") {
		t.Fatalf("rendered series:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
}
