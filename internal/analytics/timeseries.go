package analytics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Time-bucketed reporting: the paper's "various summaries" include
// traffic over time; designers chart daily queries/clicks/revenue.

// Bucket is one time slice of an application's traffic.
type Bucket struct {
	Start    time.Time
	Queries  int
	Clicks   int
	AdClicks int
	Revenue  float64
}

// Series buckets the app's events by the given duration (e.g. 24h for
// daily). Buckets are contiguous from the first to the last event;
// empty buckets are included so charts have no gaps.
func (l *Log) Series(app string, bucket time.Duration) []Bucket {
	if bucket <= 0 {
		bucket = 24 * time.Hour
	}
	events := l.Events(app)
	if len(events) == 0 {
		return nil
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
	start := events[0].Time.Truncate(bucket)
	end := events[len(events)-1].Time.Truncate(bucket)
	n := int(end.Sub(start)/bucket) + 1
	out := make([]Bucket, n)
	for i := range out {
		out[i].Start = start.Add(time.Duration(i) * bucket)
	}
	for _, e := range events {
		i := int(e.Time.Truncate(bucket).Sub(start) / bucket)
		switch e.Type {
		case EventQuery:
			out[i].Queries++
		case EventClick:
			out[i].Clicks++
		case EventAdClick:
			out[i].AdClicks++
			out[i].Revenue += e.Revenue
		}
	}
	return out
}

// RenderSeries formats a series as an aligned text table, the shape
// the designer downloads alongside the CSV log.
func RenderSeries(buckets []Bucket) string {
	var b strings.Builder
	b.WriteString("bucket               queries  clicks  adclicks  revenue\n")
	for _, bu := range buckets {
		fmt.Fprintf(&b, "%-20s %7d %7d %9d  $%.2f\n",
			bu.Start.UTC().Format("2006-01-02 15:04"),
			bu.Queries, bu.Clicks, bu.AdClicks, bu.Revenue)
	}
	return b.String()
}
