// Package source defines the DataSource abstraction that Symphony's
// runtime composes: proprietary datasets, the engine's built-in
// web/image/video/news services, ad services, and SOAP/REST web
// services all answer the same Search call, which is what lets the
// design interface treat them as interchangeable drag-n-drop blocks
// (§II-A, Data Integration).
package source

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/ads"
	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/webcorpus"
	"repro/internal/webservice"
)

// Item is one unified result: a bag of display fields. Adapter
// implementations document which fields they emit.
type Item map[string]string

// Request is a unified query. For primary sources Query carries the
// end user's text; for supplemental sources Args carries the driving
// field values from one primary result and Query is built from the
// source's template over them.
type Request struct {
	Query string
	Args  map[string]string
	Limit int
}

// Source is anything that can answer a search.
type Source interface {
	// Name identifies the source instance in traces and layouts.
	Name() string
	// Kind describes the adapter family ("proprietary", "websearch",
	// "ads", "service", ...).
	Kind() string
	// Search returns ranked items.
	Search(ctx context.Context, req Request) ([]Item, error)
}

// QueryCorrector is implemented by sources that can spell-correct a
// query against their own vocabulary. The runtime consults it when a
// primary source returns no results ("did you mean").
type QueryCorrector interface {
	CorrectQuery(query string) (corrected string, changed bool)
}

// CorrectQuery implements QueryCorrector over the dataset vocabulary.
func (s *StoreSource) CorrectQuery(query string) (string, bool) {
	return s.Dataset.SuggestQuery(query)
}

// StoreSource exposes one proprietary dataset. Emitted fields are the
// record's schema fields plus "_id" and "_score".
type StoreSource struct {
	SourceName string
	Dataset    *store.Dataset
	// SearchFields configures which fields the user query runs
	// against ("search by title, producer, and description").
	SearchFields []string
	Filters      []store.Filter
	OrderBy      string
}

// Name implements Source.
func (s *StoreSource) Name() string { return s.SourceName }

// Kind implements Source.
func (s *StoreSource) Kind() string { return "proprietary" }

// Search implements Source.
func (s *StoreSource) Search(ctx context.Context, req Request) ([]Item, error) {
	hits, err := s.Dataset.SearchContext(ctx, store.SearchRequest{
		Query:   req.Query,
		Fields:  s.SearchFields,
		Filters: s.Filters,
		OrderBy: s.OrderBy,
		Limit:   req.Limit,
	})
	if err != nil {
		return nil, fmt.Errorf("source %s: %w", s.SourceName, err)
	}
	out := make([]Item, len(hits))
	for i, h := range hits {
		item := make(Item, len(h.Record)+1)
		for k, v := range h.Record {
			item[k] = v
		}
		item["_score"] = fmt.Sprintf("%.4f", h.Score)
		out[i] = item
	}
	return out, nil
}

// EngineSource exposes one engine vertical with the paper's
// configuration hooks. Emitted fields: url, site, title, snippet,
// entity, _score.
type EngineSource struct {
	SourceName string
	Engine     *engine.Engine
	Vertical   webcorpus.Vertical
	Sites      []string
	AddTerms   []string
	PreferURLs []string
	// QueryTemplate builds the engine query for supplemental use,
	// e.g. "{title} review". Empty means use req.Query directly.
	QueryTemplate string
}

// Name implements Source.
func (s *EngineSource) Name() string { return s.SourceName }

// Kind implements Source.
func (s *EngineSource) Kind() string {
	if s.Vertical == "" {
		return "websearch"
	}
	return string(s.Vertical) + "search"
}

// Search implements Source.
func (s *EngineSource) Search(ctx context.Context, req Request) ([]Item, error) {
	query := req.Query
	if s.QueryTemplate != "" {
		// A supplemental query with no driving data is skipped: firing
		// "review" for every item whose title field is empty would
		// return unrelated content.
		if allRefsEmpty(s.QueryTemplate, req.Args) {
			return nil, nil
		}
		query = webservice.ExpandTemplate(s.QueryTemplate, req.Args)
	}
	if strings.TrimSpace(query) == "" {
		return nil, nil
	}
	rs, err := s.Engine.Search(ctx, engine.Request{
		Query:      query,
		Vertical:   s.Vertical,
		Sites:      s.Sites,
		AddTerms:   s.AddTerms,
		PreferURLs: s.PreferURLs,
		Limit:      req.Limit,
	})
	if err != nil {
		return nil, fmt.Errorf("source %s: %w", s.SourceName, err)
	}
	out := make([]Item, len(rs))
	for i, r := range rs {
		out[i] = Item{
			"url":     r.URL,
			"site":    r.Site,
			"title":   r.Title,
			"snippet": r.Snippet,
			"entity":  r.Entity,
			"_score":  fmt.Sprintf("%.4f", r.Score),
		}
	}
	return out, nil
}

// CorrectQuery implements QueryCorrector over the engine's web-title
// vocabulary.
func (s *EngineSource) CorrectQuery(query string) (string, bool) {
	return s.Engine.DidYouMean(query)
}

// allRefsEmpty reports whether a query template references at least
// one placeholder and every referenced arg is empty.
func allRefsEmpty(tmpl string, args map[string]string) bool {
	refs := webservice.TemplateRefs(tmpl)
	if len(refs) == 0 {
		return false
	}
	for _, r := range refs {
		if strings.TrimSpace(args[r]) != "" {
			return false
		}
	}
	return true
}

// ServiceSource exposes a SOAP/REST web service. Emitted fields are
// whatever the service returns.
type ServiceSource struct {
	SourceName string
	Client     *webservice.Client
	Definition webservice.Definition
}

// Name implements Source.
func (s *ServiceSource) Name() string { return s.SourceName }

// Kind implements Source.
func (s *ServiceSource) Kind() string { return "service" }

// Search implements Source.
func (s *ServiceSource) Search(ctx context.Context, req Request) ([]Item, error) {
	args := req.Args
	if args == nil {
		args = map[string]string{"query": req.Query}
	}
	resp, err := s.Client.Call(ctx, s.Definition, args)
	if err != nil {
		return nil, fmt.Errorf("source %s: %w", s.SourceName, err)
	}
	items := resp.Items
	if req.Limit > 0 && len(items) > req.Limit {
		items = items[:req.Limit]
	}
	out := make([]Item, len(items))
	for i, it := range items {
		item := make(Item, len(it))
		for k, v := range it {
			item[k] = v
		}
		out[i] = item
	}
	return out, nil
}

// AdSource exposes the ad service as a content source (§II-A: ads are
// "displayed and configured just like any other content source").
// Emitted fields: title, text, url, cpc, adid, advertiser.
type AdSource struct {
	SourceName string
	Service    *ads.Service
	// QueryTemplate optionally targets ads with supplemental args
	// instead of the user query.
	QueryTemplate string
}

// Name implements Source.
func (s *AdSource) Name() string { return s.SourceName }

// Kind implements Source.
func (s *AdSource) Kind() string { return "ads" }

// Search implements Source.
func (s *AdSource) Search(_ context.Context, req Request) ([]Item, error) {
	query := req.Query
	if s.QueryTemplate != "" {
		if allRefsEmpty(s.QueryTemplate, req.Args) {
			return nil, nil
		}
		query = webservice.ExpandTemplate(s.QueryTemplate, req.Args)
	}
	sels := s.Service.Select(query, req.Limit)
	out := make([]Item, len(sels))
	for i, sel := range sels {
		out[i] = Item{
			"title":      sel.Ad.Title,
			"text":       sel.Ad.Text,
			"url":        sel.Ad.LandingURL,
			"cpc":        fmt.Sprintf("%.2f", sel.ClickCPC),
			"adid":       sel.Ad.ID,
			"advertiser": sel.Ad.Advertiser,
		}
	}
	return out, nil
}

// Func adapts a function to Source; used in tests and for app
// composition.
type Func struct {
	SourceName string
	SourceKind string
	Fn         func(ctx context.Context, req Request) ([]Item, error)
}

// Name implements Source.
func (f *Func) Name() string { return f.SourceName }

// Kind implements Source.
func (f *Func) Kind() string {
	if f.SourceKind == "" {
		return "func"
	}
	return f.SourceKind
}

// Search implements Source.
func (f *Func) Search(ctx context.Context, req Request) ([]Item, error) {
	return f.Fn(ctx, req)
}
