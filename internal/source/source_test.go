package source

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/ads"
	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/webcorpus"
	"repro/internal/webservice"
)

func inventoryDataset(t testing.TB) *store.Dataset {
	t.Helper()
	s := store.New()
	if err := s.CreateTenant("t", "ann"); err != nil {
		t.Fatal(err)
	}
	ds, err := s.CreateDataset("t", "ann", store.Schema{
		Name: "inv", Key: "sku",
		Fields: []store.Field{
			{Name: "sku", Required: true},
			{Name: "title", Searchable: true},
			{Name: "price", Type: store.TypeNumber},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds.Put(store.Record{"sku": "G1", "title": "Legend of Zelda", "price": "49.99"})
	ds.Put(store.Record{"sku": "G2", "title": "Halo Wars", "price": "39.99"})
	return ds
}

func TestStoreSource(t *testing.T) {
	src := &StoreSource{SourceName: "inv", Dataset: inventoryDataset(t), SearchFields: []string{"title"}}
	if src.Kind() != "proprietary" || src.Name() != "inv" {
		t.Error("identity wrong")
	}
	items, err := src.Search(context.Background(), Request{Query: "zelda", Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0]["title"] != "Legend of Zelda" {
		t.Fatalf("items = %v", items)
	}
	if items[0]["_score"] == "" || items[0]["_id"] != "G1" {
		t.Errorf("metadata fields missing: %v", items[0])
	}
}

func TestStoreSourceError(t *testing.T) {
	src := &StoreSource{SourceName: "inv", Dataset: inventoryDataset(t), SearchFields: []string{"nope"}}
	if _, err := src.Search(context.Background(), Request{Query: "x"}); err == nil {
		t.Fatal("bad field accepted")
	}
}

func TestEngineSourceDirectQuery(t *testing.T) {
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 3})
	e := engine.New(corpus)
	src := &EngineSource{SourceName: "web", Engine: e}
	if src.Kind() != "websearch" {
		t.Errorf("kind = %s", src.Kind())
	}
	items, err := src.Search(context.Background(), Request{Query: "review", Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 || items[0]["url"] == "" || items[0]["site"] == "" {
		t.Fatalf("items = %v", items)
	}
}

func TestEngineSourceTemplateQuery(t *testing.T) {
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 3})
	e := engine.New(corpus)
	entity := corpus.Pages[0].Entity
	src := &EngineSource{
		SourceName:    "reviews",
		Engine:        e,
		Vertical:      webcorpus.VerticalWeb,
		QueryTemplate: "{title} review",
	}
	items, err := src.Search(context.Background(), Request{Args: map[string]string{"title": entity}, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 {
		t.Fatal("templated supplemental query returned nothing")
	}
	// Empty args -> empty query -> no results, no error.
	items, err = src.Search(context.Background(), Request{Args: map[string]string{}})
	if err != nil || items != nil {
		t.Errorf("empty template query: %v, %v", items, err)
	}
}

func TestEngineSourceKinds(t *testing.T) {
	for v, want := range map[webcorpus.Vertical]string{
		webcorpus.VerticalImage: "imagesearch",
		webcorpus.VerticalVideo: "videosearch",
		webcorpus.VerticalNews:  "newssearch",
	} {
		src := &EngineSource{Vertical: v}
		if src.Kind() != want {
			t.Errorf("kind(%s) = %s", v, src.Kind())
		}
	}
}

func TestServiceSource(t *testing.T) {
	p := webservice.NewPricingService(7, []string{"Legend of Zelda"})
	srv := httptest.NewServer(p)
	defer srv.Close()
	src := &ServiceSource{
		SourceName: "pricing",
		Client:     webservice.NewClient(srv.Client()),
		Definition: webservice.Definition{
			Name:     "pricing",
			Endpoint: srv.URL + "/price",
			Params:   map[string]string{"title": "{title}"},
		},
	}
	if src.Kind() != "service" {
		t.Error("kind wrong")
	}
	items, err := src.Search(context.Background(), Request{Args: map[string]string{"title": "Legend of Zelda"}, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0]["price"] == "" {
		t.Fatalf("items = %v", items)
	}
}

func TestAdSource(t *testing.T) {
	svc := ads.NewService()
	svc.Register(ads.Ad{ID: "a1", Advertiser: "x", Title: "Buy Zelda", Text: "now", LandingURL: "http://x.example", Keywords: []string{"zelda"}, BidCPC: 1})
	src := &AdSource{SourceName: "ads", Service: svc}
	if src.Kind() != "ads" {
		t.Error("kind wrong")
	}
	items, err := src.Search(context.Background(), Request{Query: "zelda games", Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0]["adid"] != "a1" || items[0]["cpc"] == "" {
		t.Fatalf("items = %v", items)
	}
}

func TestAdSourceTemplate(t *testing.T) {
	svc := ads.NewService()
	svc.Register(ads.Ad{ID: "a1", Advertiser: "x", Title: "t", Text: "x", LandingURL: "u", Keywords: []string{"zelda"}, BidCPC: 1})
	src := &AdSource{SourceName: "ads", Service: svc, QueryTemplate: "{title}"}
	items, _ := src.Search(context.Background(), Request{Args: map[string]string{"title": "zelda"}, Limit: 3})
	if len(items) != 1 {
		t.Fatalf("templated ad targeting failed: %v", items)
	}
}

func TestFuncSource(t *testing.T) {
	f := &Func{SourceName: "fn", Fn: func(_ context.Context, req Request) ([]Item, error) {
		return []Item{{"echo": req.Query}}, nil
	}}
	if f.Kind() != "func" {
		t.Error("default kind wrong")
	}
	items, err := f.Search(context.Background(), Request{Query: "hi"})
	if err != nil || items[0]["echo"] != "hi" {
		t.Fatalf("func source: %v %v", items, err)
	}
}
