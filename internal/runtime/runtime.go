// Package runtime executes applications: it is the component in the
// middle of the paper's Fig 2. A query arrives from the embedded
// JavaScript, is processed by the primary content sources, then the
// supplemental sources are queried with fields drawn from each
// primary result, and everything is merged and formatted into HTML
// that is sent back for injection into the host page.
//
// The executor also implements the paper's customer-data hook ("In a
// more complex scenario, customer data could also be included to
// alter the query") and records every stage in a Trace so the Fig 2
// flow can be printed and benchmarked.
package runtime

import (
	"context"
	"fmt"
	"html"
	"strings"
	"sync"
	"time"

	"repro/internal/ads"
	"repro/internal/analytics"
	"repro/internal/app"
	"repro/internal/engine"
	"repro/internal/render"
	"repro/internal/source"
	"repro/internal/store"
	"repro/internal/webcorpus"
	"repro/internal/webservice"
)

// Query is one end-user request against an application.
type Query struct {
	Text string
	// Customer is an opaque visitor ID for analytics and
	// personalization.
	Customer string
	// Profile carries customer data used to alter the query — extra
	// preference terms appended to engine queries (the paper's "prefer
	// some types of games over others").
	Profile *CustomerProfile
	// Offset pages through primary results.
	Offset int
}

// CustomerProfile is the personalization record.
type CustomerProfile struct {
	PreferTerms []string
}

// SourceBlock is the executed output of one primary source.
type SourceBlock struct {
	SourceID string
	Kind     string
	Items    []source.Item
	// SupplementalByItem[i][suppID] holds supplemental items for
	// primary item i.
	SupplementalByItem []map[string][]source.Item
	HTML               string
}

// Response is the executed application output.
type Response struct {
	AppID  string
	Query  string
	HTML   string
	Blocks []SourceBlock
	Trace  *Trace
}

// Trace records per-stage timing, reproducing Fig 2's stages.
type Trace struct {
	Stages []Stage
	Total  time.Duration
}

// Stage is one timed pipeline step.
type Stage struct {
	Name     string
	Detail   string
	Duration time.Duration
	Items    int
	Err      string
}

func (t *Trace) add(name, detail string, d time.Duration, items int, err error) {
	s := Stage{Name: name, Detail: detail, Duration: d, Items: items}
	if err != nil {
		s.Err = err.Error()
	}
	t.Stages = append(t.Stages, s)
}

// Executor wires the platform services the runtime draws on.
type Executor struct {
	Store    *store.Store
	Engine   *engine.Engine
	Services *webservice.Client
	Ads      *ads.Service
	Log      *analytics.Log

	// SupplementalParallelism bounds concurrent supplemental fetches
	// per primary source (the ablation in DESIGN.md §5). 0 means 8;
	// 1 means sequential.
	SupplementalParallelism int

	// ClickBase, when set, routes rendered links through the hosting
	// click endpoint for monetization logging.
	ClickBase string

	// ResolveApp resolves composed applications (KindApp sources).
	// Nil disables composition.
	ResolveApp func(appID string) (*app.Application, error)

	// maxComposeDepth guards composed apps from cycles.
	maxComposeDepth int
}

// DefaultPrimaryLimit is used when a source sets no MaxResults.
const DefaultPrimaryLimit = 10

// DefaultSupplementalLimit bounds supplemental results per primary
// item when unset.
const DefaultSupplementalLimit = 3

// Execute runs the Fig 2 pipeline for one query.
func (x *Executor) Execute(ctx context.Context, a *app.Application, q Query) (*Response, error) {
	start := time.Now()
	if a == nil {
		return nil, fmt.Errorf("runtime: nil application")
	}
	// Cancellation is the caller giving up, not a partial outage: fail
	// the page instead of rendering a degraded one, so the serving
	// layer can map it to a timeout status. Per-source degradation
	// below stays reserved for genuine source failures.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	trace := &Trace{}
	trace.add("receive", fmt.Sprintf("query %q forwarded to Symphony", q.Text), 0, 0, nil)

	resp := &Response{AppID: a.ID, Query: q.Text, Trace: trace}
	renderer := &render.Renderer{Stylesheet: a.Stylesheet, ClickBase: x.ClickBase, AppID: a.ID}

	if x.Log != nil {
		x.Log.Record(analytics.Event{App: a.ID, Type: analytics.EventQuery, Query: q.Text, Customer: q.Customer})
	}

	var blocks []string
	for i := range a.Primary {
		sc := &a.Primary[i]
		block, err := x.executePrimary(ctx, a, sc, q, renderer, trace, 0)
		if err != nil {
			// A failing source degrades to an empty block rather than
			// failing the whole page: hosted apps must stay up when a
			// 3rd-party service is down.
			trace.add("primary:"+sc.ID, "failed", 0, 0, err)
			continue
		}
		resp.Blocks = append(resp.Blocks, *block)
		blocks = append(blocks, block.HTML)
	}
	if err := ctx.Err(); err != nil {
		// The deadline landed mid-page: every remaining source failed
		// with the same cancellation, so the partial page is garbage.
		return nil, err
	}
	stageStart := time.Now()
	resp.HTML = render.Page(a.ID, blocks)
	trace.add("format", "merged content formatted into HTML", time.Since(stageStart), len(blocks), nil)
	trace.add("respond", "HTML returned to embedded JavaScript", 0, 0, nil)
	trace.Total = time.Since(start)
	return resp, nil
}

func (x *Executor) executePrimary(ctx context.Context, a *app.Application, sc *app.SourceConfig, q Query, renderer *render.Renderer, trace *Trace, depth int) (*SourceBlock, error) {
	src, err := x.resolve(ctx, a, sc, depth)
	if err != nil {
		return nil, err
	}
	limit := sc.MaxResults
	if limit <= 0 {
		limit = DefaultPrimaryLimit
	}
	req := source.Request{Query: x.alteredQuery(sc, q), Limit: limit + q.Offset}
	stageStart := time.Now()
	items, err := src.Search(ctx, req)
	if err != nil {
		return nil, err
	}
	// "Did you mean": a primary source with spell correction gets one
	// corrected retry when the query text matched nothing.
	if len(items) == 0 && req.Query != "" {
		if corrector, ok := src.(source.QueryCorrector); ok {
			if corrected, changed := corrector.CorrectQuery(req.Query); changed {
				req.Query = corrected
				items, err = src.Search(ctx, req)
				if err != nil {
					return nil, err
				}
				trace.add("didyoumean:"+sc.ID, fmt.Sprintf("query corrected to %q", corrected), 0, len(items), nil)
			}
		}
	}
	if q.Offset > 0 {
		if q.Offset >= len(items) {
			items = nil
		} else {
			items = items[q.Offset:]
		}
	}
	trace.add("primary:"+sc.ID, fmt.Sprintf("%s source queried", src.Kind()), time.Since(stageStart), len(items), nil)

	block := &SourceBlock{SourceID: sc.ID, Kind: src.Kind(), Items: items}

	// Supplemental fan-out: which supplemental sources does this
	// primary's layout place?
	var suppConfigs []*app.SourceConfig
	if sc.Layout != nil {
		for _, slot := range sc.Layout.SourceSlots() {
			if ssc, ok := a.Source(slot); ok {
				suppConfigs = append(suppConfigs, ssc)
			}
		}
	}
	block.SupplementalByItem = make([]map[string][]source.Item, len(items))
	if len(suppConfigs) > 0 && len(items) > 0 {
		stageStart = time.Now()
		n, err := x.fanOut(ctx, a, block, suppConfigs, depth)
		detail := fmt.Sprintf("%d supplemental queries driven by primary fields", n)
		trace.add("supplemental:"+sc.ID, detail, time.Since(stageStart), n, err)
	}

	// Render: each item, with its supplemental HTML, through the
	// configured layout.
	stageStart = time.Now()
	suppHTML := make([]map[string]string, len(items))
	for i := range items {
		m := make(map[string]string)
		for suppID, suppItems := range block.SupplementalByItem[i] {
			ssc, _ := a.Source(suppID)
			var lay = ssc.Layout
			m[suppID] = renderer.List(lay, suppItems, nil)
		}
		suppHTML[i] = m
	}
	var itemsHTML string
	itemsHTML = renderListWithSupp(renderer, sc, items, suppHTML)
	block.HTML = itemsHTML
	trace.add("render:"+sc.ID, "layout applied", time.Since(stageStart), len(items), nil)
	return block, nil
}

func renderListWithSupp(r *render.Renderer, sc *app.SourceConfig, items []source.Item, supp []map[string]string) string {
	var blocks []string
	for i, item := range items {
		var m map[string]string
		if i < len(supp) {
			m = supp[i]
		}
		blocks = append(blocks, r.Item(sc.Layout, item, m))
	}
	return `<div class="sym-source" data-source="` + html.EscapeString(sc.ID) + `">` + strings.Join(blocks, "") + `</div>`
}

// fanOut queries every supplemental source for every primary item,
// bounded by SupplementalParallelism. It returns the number of
// supplemental queries issued and the first error (non-fatal).
func (x *Executor) fanOut(ctx context.Context, a *app.Application, block *SourceBlock, suppConfigs []*app.SourceConfig, depth int) (int, error) {
	type job struct {
		itemIdx int
		sc      *app.SourceConfig
	}
	var jobs []job
	for i := range block.Items {
		block.SupplementalByItem[i] = make(map[string][]source.Item, len(suppConfigs))
		for _, ssc := range suppConfigs {
			jobs = append(jobs, job{i, ssc})
		}
	}
	par := x.SupplementalParallelism
	if par <= 0 {
		par = 8
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			items, err := x.querySupplemental(ctx, a, j.sc, block.Items[j.itemIdx], depth)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			block.SupplementalByItem[j.itemIdx][j.sc.ID] = items
		}(j)
	}
	wg.Wait()
	return len(jobs), firstErr
}

// querySupplemental runs one supplemental source for one primary
// item, passing the configured drive fields as args.
func (x *Executor) querySupplemental(ctx context.Context, a *app.Application, sc *app.SourceConfig, item source.Item, depth int) ([]source.Item, error) {
	src, err := x.resolve(ctx, a, sc, depth)
	if err != nil {
		return nil, err
	}
	args := make(map[string]string, len(sc.DriveFields))
	for _, f := range sc.DriveFields {
		args[f] = item[f]
	}
	limit := sc.MaxResults
	if limit <= 0 {
		limit = DefaultSupplementalLimit
	}
	// The query template is expanded by the source itself (engine/ads
	// sources) or ignored (service sources use args directly).
	return src.Search(ctx, source.Request{Args: args, Limit: limit})
}

// alteredQuery applies customer personalization to engine-backed
// primary sources.
func (x *Executor) alteredQuery(sc *app.SourceConfig, q Query) string {
	text := q.Text
	if q.Profile == nil || len(q.Profile.PreferTerms) == 0 {
		return text
	}
	switch sc.Kind {
	case app.KindWebSearch, app.KindImageSearch, app.KindVideoSearch, app.KindNewsSearch:
		for _, t := range q.Profile.PreferTerms {
			text += " " + t
		}
	}
	return text
}

// resolve turns a SourceConfig into a live Source.
func (x *Executor) resolve(ctx context.Context, a *app.Application, sc *app.SourceConfig, depth int) (source.Source, error) {
	switch sc.Kind {
	case app.KindProprietary:
		if x.Store == nil {
			return nil, fmt.Errorf("runtime: no store configured")
		}
		ds, err := x.Store.DatasetContext(ctx, a.Tenant, a.Owner, sc.Dataset, store.PermRead)
		if err != nil {
			return nil, fmt.Errorf("runtime: source %s: %w", sc.ID, err)
		}
		return &source.StoreSource{
			SourceName:   sc.ID,
			Dataset:      ds,
			SearchFields: sc.SearchFields,
			Filters:      sc.Filters,
			OrderBy:      sc.OrderBy,
		}, nil
	case app.KindWebSearch, app.KindImageSearch, app.KindVideoSearch, app.KindNewsSearch:
		if x.Engine == nil {
			return nil, fmt.Errorf("runtime: no engine configured")
		}
		return &source.EngineSource{
			SourceName:    sc.ID,
			Engine:        x.Engine,
			Vertical:      verticalOf(sc.Kind),
			Sites:         sc.Sites,
			AddTerms:      sc.AddTerms,
			PreferURLs:    sc.PreferURLs,
			QueryTemplate: sc.QueryTemplate,
		}, nil
	case app.KindAds:
		if x.Ads == nil {
			return nil, fmt.Errorf("runtime: no ad service configured")
		}
		return &source.AdSource{SourceName: sc.ID, Service: x.Ads, QueryTemplate: sc.QueryTemplate}, nil
	case app.KindService:
		if x.Services == nil {
			return nil, fmt.Errorf("runtime: no service client configured")
		}
		return &source.ServiceSource{SourceName: sc.ID, Client: x.Services, Definition: sc.Service}, nil
	case app.KindApp:
		return x.resolveApp(sc, depth)
	default:
		return nil, fmt.Errorf("runtime: source %s: unknown kind %q", sc.ID, sc.Kind)
	}
}

func verticalOf(k app.SourceKind) webcorpus.Vertical {
	switch k {
	case app.KindImageSearch:
		return webcorpus.VerticalImage
	case app.KindVideoSearch:
		return webcorpus.VerticalVideo
	case app.KindNewsSearch:
		return webcorpus.VerticalNews
	default:
		return webcorpus.VerticalWeb
	}
}

// resolveApp implements application composition (§IV future work:
// "creating new applications by composing other applications"): the
// composed app's primary results become this source's items.
func (x *Executor) resolveApp(sc *app.SourceConfig, depth int) (source.Source, error) {
	if x.ResolveApp == nil {
		return nil, fmt.Errorf("runtime: source %s: app composition not configured", sc.ID)
	}
	maxDepth := x.maxComposeDepth
	if maxDepth == 0 {
		maxDepth = 3
	}
	if depth >= maxDepth {
		return nil, fmt.Errorf("runtime: source %s: app composition too deep", sc.ID)
	}
	sub, err := x.ResolveApp(sc.AppID)
	if err != nil {
		return nil, fmt.Errorf("runtime: source %s: %w", sc.ID, err)
	}
	return &source.Func{
		SourceName: sc.ID,
		SourceKind: "app",
		Fn: func(ctx context.Context, req source.Request) ([]source.Item, error) {
			query := req.Query
			if sc.QueryTemplate != "" {
				query = webservice.ExpandTemplate(sc.QueryTemplate, req.Args)
			}
			var all []source.Item
			for i := range sub.Primary {
				psc := &sub.Primary[i]
				srcSub, err := x.resolve(ctx, sub, psc, depth+1)
				if err != nil {
					return nil, err
				}
				items, err := srcSub.Search(ctx, source.Request{Query: query, Limit: req.Limit})
				if err != nil {
					return nil, err
				}
				all = append(all, items...)
			}
			if req.Limit > 0 && len(all) > req.Limit {
				all = all[:req.Limit]
			}
			return all, nil
		},
	}, nil
}
