package runtime

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/ads"
	"repro/internal/analytics"
	"repro/internal/app"
	"repro/internal/engine"
	"repro/internal/layout"
	"repro/internal/store"
	"repro/internal/webcorpus"
	"repro/internal/webservice"
)

var corpus = webcorpus.Generate(webcorpus.Config{Seed: 99})

// fixture builds the full GamerQueen scenario: an inventory whose
// titles are real corpus entities (so supplemental web search finds
// reviews), a pricing service, and an executor.
type fixture struct {
	exec    *Executor
	app     *app.Application
	pricing *webservice.PricingService
	titles  []string
}

func newFixture(t testing.TB, parallelism int) *fixture {
	t.Helper()
	st := store.New()
	if err := st.CreateTenant("gamerqueen", "ann"); err != nil {
		t.Fatal(err)
	}
	ds, err := st.CreateDataset("gamerqueen", "ann", store.Schema{
		Name: "inventory", Key: "sku",
		Fields: []store.Field{
			{Name: "sku", Required: true},
			{Name: "title", Searchable: true},
			{Name: "producer", Searchable: true},
			{Name: "description", Searchable: true},
			{Name: "image", Type: store.TypeURL},
			{Name: "detailurl", Type: store.TypeURL},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	titles := webcorpus.Entities(webcorpus.Config{Seed: 99}, webcorpus.TopicGames)[:8]
	for i, title := range titles {
		_, err := ds.Put(store.Record{
			"sku":         fmt.Sprintf("G%d", i),
			"title":       title,
			"producer":    "Studio" + fmt.Sprint(i%3),
			"description": "exciting " + title + " video game",
			"image":       fmt.Sprintf("http://img.example/%d.png", i),
			"detailurl":   fmt.Sprintf("http://gamerqueen.example/games/%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	pricing := webservice.NewPricingService(4, titles)
	srv := httptest.NewServer(pricing)
	t.Cleanup(srv.Close)

	adSvc := ads.NewService()
	adSvc.Register(ads.Ad{ID: "ad1", Advertiser: "GameMart", Title: "Game deals", Text: "cheap", LandingURL: "http://gamemart.example", Keywords: titles[:2], BidCPC: 0.5})

	exec := &Executor{
		Store:                   st,
		Engine:                  engine.New(corpus),
		Services:                webservice.NewClient(srv.Client()),
		Ads:                     adSvc,
		Log:                     analytics.NewLog(),
		SupplementalParallelism: parallelism,
	}

	d := app.NewDesigner("gamerqueen", "GamerQueen", "ann", "gamerqueen")
	d.DropPrimary(app.SourceConfig{ID: "inventory", Kind: app.KindProprietary, Dataset: "inventory", MaxResults: 4})
	d.SetSearchFields("inventory", "title", "producer", "description")
	d.UseTemplate("inventory", "media-card", map[string]string{
		"title": "title", "url": "detailurl", "image": "image", "description": "description",
	})
	d.DropSupplemental("inventory", app.SourceConfig{ID: "reviews", Kind: app.KindWebSearch, MaxResults: 2})
	d.RestrictSites("reviews", "ign.com", "gamespot.com", "teamxbox.com")
	d.SetDriveFields("reviews", "{title} review", "title")
	d.UseTemplate("reviews", "headline-snippet", map[string]string{"title": "title", "url": "url", "snippet": "snippet"})
	d.DropSupplemental("inventory", app.SourceConfig{ID: "pricing", Kind: app.KindService, MaxResults: 1})
	d.ConfigureService("pricing", webservice.Definition{
		Name:     "pricing",
		Endpoint: srv.URL + "/price",
		Params:   map[string]string{"title": "{title}"},
	})
	d.SetDriveFields("pricing", "", "title")
	d.SetResultLayout("pricing", &layout.Element{Type: layout.ElemContainer, Children: []*layout.Element{
		{Type: layout.ElemText, Field: "price"},
	}})
	a, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{exec: exec, app: a, pricing: pricing, titles: titles}
}

func TestExecuteFig2Pipeline(t *testing.T) {
	f := newFixture(t, 0)
	query := f.titles[0]
	resp, err := f.exec.Execute(context.Background(), f.app, Query{Text: query, Customer: "visitor1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Blocks) != 1 {
		t.Fatalf("blocks = %d", len(resp.Blocks))
	}
	block := resp.Blocks[0]
	if len(block.Items) == 0 {
		t.Fatal("primary search returned nothing")
	}
	if block.Items[0]["title"] != query {
		t.Errorf("top item = %v", block.Items[0]["title"])
	}
	// Supplemental content present for the top item.
	supp := block.SupplementalByItem[0]
	if len(supp["pricing"]) != 1 {
		t.Errorf("pricing supplemental = %v", supp["pricing"])
	}
	if len(supp["reviews"]) == 0 {
		t.Errorf("reviews supplemental empty")
	}
	for _, rev := range supp["reviews"] {
		site := rev["site"]
		if site != "ign.com" && site != "gamespot.com" && site != "teamxbox.com" {
			t.Errorf("review from unrestricted site %s", site)
		}
	}
	// HTML assembled.
	if !strings.Contains(resp.HTML, "symphony-app") || !strings.Contains(resp.HTML, "sym-supplemental") {
		t.Error("page HTML missing structure")
	}
	if !strings.Contains(resp.HTML, query) {
		t.Error("page HTML missing primary title")
	}
}

func TestTraceStagesMatchFig2(t *testing.T) {
	f := newFixture(t, 0)
	resp, err := f.exec.Execute(context.Background(), f.app, Query{Text: f.titles[0]})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range resp.Trace.Stages {
		names = append(names, s.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"receive", "primary:inventory", "supplemental:inventory", "render:inventory", "format", "respond"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing stage %s: %v", want, names)
		}
	}
	if resp.Trace.Total <= 0 {
		t.Error("total duration not recorded")
	}
}

func TestQueryLogging(t *testing.T) {
	f := newFixture(t, 0)
	f.exec.Execute(context.Background(), f.app, Query{Text: "anything", Customer: "c9"})
	events := f.exec.Log.Events("gamerqueen")
	if len(events) != 1 || events[0].Type != analytics.EventQuery || events[0].Customer != "c9" {
		t.Fatalf("events = %+v", events)
	}
}

func TestSequentialVsParallelSameResults(t *testing.T) {
	seq := newFixture(t, 1)
	par := newFixture(t, 8)
	q := Query{Text: seq.titles[0]}
	a, err := seq.exec.Execute(context.Background(), seq.app, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.exec.Execute(context.Background(), par.app, q)
	if err != nil {
		t.Fatal(err)
	}
	ra := a.Blocks[0].SupplementalByItem[0]["reviews"]
	rb := b.Blocks[0].SupplementalByItem[0]["reviews"]
	if len(ra) != len(rb) {
		t.Fatalf("review counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i]["url"] != rb[i]["url"] {
			t.Errorf("review %d differs between sequential and parallel", i)
		}
	}
}

func TestFailingSupplementalDegrades(t *testing.T) {
	f := newFixture(t, 0)
	f.pricing.FailEvery = 1 // pricing service hard-down
	resp, err := f.exec.Execute(context.Background(), f.app, Query{Text: f.titles[0]})
	if err != nil {
		t.Fatalf("hard-down supplemental failed the page: %v", err)
	}
	block := resp.Blocks[0]
	if len(block.Items) == 0 {
		t.Fatal("primary results lost")
	}
	if len(block.SupplementalByItem[0]["pricing"]) != 0 {
		t.Error("failed service produced items")
	}
	// reviews unaffected
	if len(block.SupplementalByItem[0]["reviews"]) == 0 {
		t.Error("healthy supplemental suppressed")
	}
	// trace carries the error
	found := false
	for _, s := range resp.Trace.Stages {
		if strings.HasPrefix(s.Name, "supplemental:") && s.Err != "" {
			found = true
		}
	}
	if !found {
		t.Error("supplemental failure not traced")
	}
}

func TestFailingPrimaryDegradesToEmptyPage(t *testing.T) {
	f := newFixture(t, 0)
	f.app.Primary[0].Dataset = "missing"
	resp, err := f.exec.Execute(context.Background(), f.app, Query{Text: "x"})
	if err != nil {
		t.Fatalf("page failed: %v", err)
	}
	if len(resp.Blocks) != 0 {
		t.Error("failed primary produced a block")
	}
}

func TestCustomerProfileAltersEngineQuery(t *testing.T) {
	f := newFixture(t, 0)
	// An engine-primary app: profile terms must change results.
	d := app.NewDesigner("websearch", "W", "ann", "gamerqueen")
	d.DropPrimary(app.SourceConfig{ID: "web", Kind: app.KindWebSearch, MaxResults: 5})
	a, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := f.exec.Execute(context.Background(), a, Query{Text: "review"})
	personal, _ := f.exec.Execute(context.Background(), a, Query{
		Text:    "review",
		Profile: &CustomerProfile{PreferTerms: []string{f.titles[0]}},
	})
	pa := plain.Blocks[0].Items
	pb := personal.Blocks[0].Items
	if len(pa) == 0 || len(pb) == 0 {
		t.Skip("not enough results")
	}
	same := true
	for i := range pa {
		if i >= len(pb) || pa[i]["url"] != pb[i]["url"] {
			same = false
		}
	}
	if same {
		t.Error("customer profile did not alter results")
	}
}

func TestOffsetPaging(t *testing.T) {
	f := newFixture(t, 0)
	all, _ := f.exec.Execute(context.Background(), f.app, Query{Text: "game"})
	page2, _ := f.exec.Execute(context.Background(), f.app, Query{Text: "game", Offset: 2})
	if len(all.Blocks) == 0 || len(page2.Blocks) == 0 {
		t.Fatal("missing blocks")
	}
	a := all.Blocks[0].Items
	b := page2.Blocks[0].Items
	if len(a) < 3 || len(b) == 0 {
		t.Skipf("not enough items: %d %d", len(a), len(b))
	}
	if b[0]["sku"] != a[2]["sku"] {
		t.Errorf("offset misaligned: %v vs %v", b[0]["sku"], a[2]["sku"])
	}
}

func TestAppComposition(t *testing.T) {
	f := newFixture(t, 0)
	apps := map[string]*app.Application{"gamerqueen": f.app}
	f.exec.ResolveApp = func(id string) (*app.Application, error) {
		a, ok := apps[id]
		if !ok {
			return nil, fmt.Errorf("no app %q", id)
		}
		return a, nil
	}
	d := app.NewDesigner("meta", "Meta Search", "ann", "gamerqueen")
	d.DropPrimary(app.SourceConfig{ID: "inner", Kind: app.KindApp, AppID: "gamerqueen", MaxResults: 3})
	meta, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	apps["meta"] = meta
	resp, err := f.exec.Execute(context.Background(), meta, Query{Text: f.titles[0]})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Blocks) != 1 || len(resp.Blocks[0].Items) == 0 {
		t.Fatalf("composed app returned nothing")
	}
	if resp.Blocks[0].Items[0]["title"] != f.titles[0] {
		t.Errorf("composed top item = %v", resp.Blocks[0].Items[0])
	}
}

func TestAppCompositionCycleGuard(t *testing.T) {
	f := newFixture(t, 0)
	var selfApp *app.Application
	f.exec.ResolveApp = func(id string) (*app.Application, error) { return selfApp, nil }
	d := app.NewDesigner("self", "Self", "ann", "gamerqueen")
	d.DropPrimary(app.SourceConfig{ID: "me", Kind: app.KindApp, AppID: "self"})
	var err error
	selfApp, err = d.Build()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := f.exec.Execute(context.Background(), selfApp, Query{Text: "x"})
	if err != nil {
		t.Fatalf("cycle crashed the executor: %v", err)
	}
	// The cycle is cut by the depth guard; the page simply has no
	// content blocks.
	if len(resp.Blocks) > 0 && len(resp.Blocks[0].Items) > 0 {
		t.Error("cyclic composition produced items")
	}
}

func TestDidYouMeanRetriesPrimary(t *testing.T) {
	f := newFixture(t, 0)
	// Misspell the last letter of a title word so the primary search
	// finds nothing, then the corrected retry finds the game.
	word := strings.ToLower(strings.Fields(f.titles[0])[0])
	if len(word) < 4 {
		t.Skip("short title word")
	}
	typo := word[:len(word)-1] + "q"
	resp, err := f.exec.Execute(context.Background(), f.app, Query{Text: typo})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Blocks) == 0 || len(resp.Blocks[0].Items) == 0 {
		t.Fatalf("typo %q not recovered", typo)
	}
	found := false
	for _, s := range resp.Trace.Stages {
		if strings.HasPrefix(s.Name, "didyoumean:") {
			found = true
		}
	}
	if !found {
		t.Error("correction not traced")
	}
}

func TestContextCancellationFailsFast(t *testing.T) {
	// Every source now honors ctx, so cancellation is the caller
	// giving up rather than a partial outage: the executor fails the
	// page instead of rendering a degraded one, letting the serving
	// layer map it to a timeout status.
	f := newFixture(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := f.exec.Execute(ctx, f.app, Query{Text: f.titles[0]})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestNilApplication(t *testing.T) {
	f := newFixture(t, 0)
	if _, err := f.exec.Execute(context.Background(), nil, Query{}); err == nil {
		t.Fatal("nil app accepted")
	}
}

func TestAdsAsSupplementalSource(t *testing.T) {
	f := newFixture(t, 0)
	d := app.NewDesigner("withads", "WithAds", "ann", "gamerqueen")
	d.DropPrimary(app.SourceConfig{ID: "inventory", Kind: app.KindProprietary, Dataset: "inventory", MaxResults: 2})
	d.SetSearchFields("inventory", "title")
	d.UseTemplate("inventory", "title-link", map[string]string{"title": "title", "url": "detailurl"})
	d.DropSupplemental("inventory", app.SourceConfig{ID: "sponsored", Kind: app.KindAds, MaxResults: 2})
	d.SetDriveFields("sponsored", "{title}", "title")
	d.UseTemplate("sponsored", "ad-block", map[string]string{"title": "title", "url": "url", "text": "text"})
	a, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := f.exec.Execute(context.Background(), a, Query{Text: f.titles[0]})
	if err != nil {
		t.Fatal(err)
	}
	supp := resp.Blocks[0].SupplementalByItem[0]["sponsored"]
	if len(supp) == 0 {
		t.Fatal("no sponsored items for a keyword-matching title")
	}
	if supp[0]["adid"] != "ad1" {
		t.Errorf("ad item = %v", supp[0])
	}
}
