package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

func TestCheckpointRestoreCycle(t *testing.T) {
	dir := t.TempDir()
	p := New(Config{Seed: 1})
	buildGamerQueen(t, p)

	cp, err := p.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing on disk yet: boot of a fresh data dir restores nothing.
	if restored, err := cp.RestoreLatest(); err != nil || restored {
		t.Fatalf("RestoreLatest on empty dir = %v, %v", restored, err)
	}
	if err := cp.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// A "restarted" platform with freshly seeded data restores the
	// persisted state over it, exactly like symphonyd boot.
	p2 := New(Config{Seed: 1})
	cp2, err := p2.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if restored, err := cp2.RestoreLatest(); err != nil || !restored {
		t.Fatalf("RestoreLatest = %v, %v, want restore", restored, err)
	}
	ds, err := p2.Store.DatasetContext(context.Background(), "gamerqueen", "ann", "inventory", store.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 {
		t.Fatal("restored inventory is empty")
	}
	hits, err := ds.SearchContext(context.Background(), store.SearchRequest{Query: "exciting", Limit: 3})
	if err != nil || len(hits) == 0 {
		t.Fatalf("restored search = %v, %v", hits, err)
	}
}

func TestCheckpointAtomicRename(t *testing.T) {
	dir := t.TempDir()
	p := New(Config{Seed: 1})
	buildGamerQueen(t, p)
	cp, err := p.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	// Two-snapshot retention: the current checkpoint plus the retained
	// previous one, never more, and no temp leftovers.
	if len(names) != 2 || names[0] != "store.snap" || names[1] != "store.snap.1" {
		t.Fatalf("data dir = %v, want exactly store.snap + store.snap.1 (no temp leftovers)", names)
	}
}

func TestCheckpointPeriodicLoop(t *testing.T) {
	dir := t.TempDir()
	p := New(Config{Seed: 1})
	buildGamerQueen(t, p)
	cp, err := p.NewCheckpointer(dir, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cp.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(cp.Path()); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpoint never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	// Close wrote a final checkpoint; the file restores cleanly.
	p2 := New(Config{Seed: 1})
	cp2, err := p2.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if restored, err := cp2.RestoreLatest(); err != nil || !restored {
		t.Fatalf("RestoreLatest after Close = %v, %v", restored, err)
	}
}

func TestRestoreLatestRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	p := New(Config{Seed: 1})
	buildGamerQueen(t, p)
	cp, err := p.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "store.snap"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.RestoreLatest(); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	// The seeded store survives the failed restore untouched.
	ds, err := p.Store.DatasetContext(context.Background(), "gamerqueen", "ann", "inventory", store.PermRead)
	if err != nil || ds.Len() == 0 {
		t.Fatalf("store mutated by failed restore: %v, %v", ds, err)
	}
}

// TestCheckpointIncremental pins the dirty-tracking contract at the
// daemon level: a checkpoint after no mutations reuses every dataset
// frame, and a checkpoint after mutating one dataset re-encodes
// exactly that one.
func TestCheckpointIncremental(t *testing.T) {
	dir := t.TempDir()
	p := New(Config{Seed: 1})
	buildGamerQueen(t, p)
	cp, err := p.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var logs []string
	cp.Logf = func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	last := func() string { return logs[len(logs)-1] }

	if err := cp.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(last(), "0 reused") {
		t.Fatalf("first checkpoint log = %q, want everything encoded", last())
	}
	if err := cp.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(last(), "(0 frames re-encoded") {
		t.Fatalf("clean checkpoint log = %q, want all frames reused", last())
	}

	ds, err := p.Store.DatasetContext(context.Background(), "gamerqueen", "ann", "inventory", store.PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Put(store.Record{"sku": "G99", "title": "Fresh Game", "producer": "Studio9",
		"description": "a fresh game", "image": "http://img.example/99.png", "detailurl": "http://gamerqueen.example/g/99"}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(last(), "(1 frames re-encoded") {
		t.Fatalf("dirty checkpoint log = %q, want exactly one frame re-encoded", last())
	}

	// The incremental file is a complete snapshot: it restores whole.
	p2 := New(Config{Seed: 1})
	cp2, err := p2.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if restored, err := cp2.RestoreLatest(); err != nil || !restored {
		t.Fatalf("RestoreLatest = %v, %v", restored, err)
	}
	ds2, err := p2.Store.DatasetContext(context.Background(), "gamerqueen", "ann", "inventory", store.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Len() != ds.Len() {
		t.Fatalf("restored Len = %d, want %d", ds2.Len(), ds.Len())
	}
}

// TestCheckpointRestoreAppliesShardTarget: a checkpoint written by a
// platform with one shard layout restores on a platform configured
// for another, and the datasets come up resharded to the new target.
func TestCheckpointRestoreAppliesShardTarget(t *testing.T) {
	dir := t.TempDir()
	narrow := New(Config{Seed: 1, ShardTarget: 2})
	buildGamerQueen(t, narrow)
	cp, err := narrow.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	wide := New(Config{Seed: 1, ShardTarget: 6})
	buildGamerQueen(t, wide)
	cp2, err := wide.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var logs []string
	cp2.Logf = func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	if restored, err := cp2.RestoreLatest(); err != nil || !restored {
		t.Fatalf("RestoreLatest = %v, %v", restored, err)
	}
	ds, err := wide.Store.DatasetContext(context.Background(), "gamerqueen", "ann", "inventory", store.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.NumShards(); got != 6 {
		t.Fatalf("restored dataset shards = %d, want configured 6 (snapshot had 2)", got)
	}
	sawTransition := false
	for _, l := range logs {
		if strings.Contains(l, "gamerqueen/inventory") && strings.Contains(l, "6 shards") {
			sawTransition = true
		}
	}
	if !sawTransition {
		t.Fatalf("restore did not log the shard transition: %q", logs)
	}
	hits, err := ds.SearchContext(context.Background(), store.SearchRequest{Query: "exciting", Limit: 3})
	if err != nil || len(hits) == 0 {
		t.Fatalf("post-reshard search = %v, %v", hits, err)
	}
}
