package core

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
)

func TestCheckpointRestoreCycle(t *testing.T) {
	dir := t.TempDir()
	p := New(Config{Seed: 1})
	buildGamerQueen(t, p)

	cp, err := p.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing on disk yet: boot of a fresh data dir restores nothing.
	if restored, err := cp.RestoreLatest(); err != nil || restored {
		t.Fatalf("RestoreLatest on empty dir = %v, %v", restored, err)
	}
	if err := cp.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// A "restarted" platform with freshly seeded data restores the
	// persisted state over it, exactly like symphonyd boot.
	p2 := New(Config{Seed: 1})
	cp2, err := p2.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if restored, err := cp2.RestoreLatest(); err != nil || !restored {
		t.Fatalf("RestoreLatest = %v, %v, want restore", restored, err)
	}
	ds, err := p2.Store.Dataset("gamerqueen", "ann", "inventory", store.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 {
		t.Fatal("restored inventory is empty")
	}
	hits, err := ds.Search(store.SearchRequest{Query: "exciting", Limit: 3})
	if err != nil || len(hits) == 0 {
		t.Fatalf("restored search = %v, %v", hits, err)
	}
}

func TestCheckpointAtomicRename(t *testing.T) {
	dir := t.TempDir()
	p := New(Config{Seed: 1})
	buildGamerQueen(t, p)
	cp, err := p.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "store.snap" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("data dir = %v, want exactly store.snap (no temp leftovers)", names)
	}
}

func TestCheckpointPeriodicLoop(t *testing.T) {
	dir := t.TempDir()
	p := New(Config{Seed: 1})
	buildGamerQueen(t, p)
	cp, err := p.NewCheckpointer(dir, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cp.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(cp.Path()); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpoint never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	// Close wrote a final checkpoint; the file restores cleanly.
	p2 := New(Config{Seed: 1})
	cp2, err := p2.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if restored, err := cp2.RestoreLatest(); err != nil || !restored {
		t.Fatalf("RestoreLatest after Close = %v, %v", restored, err)
	}
}

func TestRestoreLatestRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	p := New(Config{Seed: 1})
	buildGamerQueen(t, p)
	cp, err := p.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "store.snap"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.RestoreLatest(); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	// The seeded store survives the failed restore untouched.
	ds, err := p.Store.Dataset("gamerqueen", "ann", "inventory", store.PermRead)
	if err != nil || ds.Len() == 0 {
		t.Fatalf("store mutated by failed restore: %v, %v", ds, err)
	}
}
