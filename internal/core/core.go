// Package core assembles the Symphony platform: the search engine
// substrate, proprietary data store, ingestion, web services, ads,
// analytics, hosting registry and execution runtime behind one
// facade. Examples, command-line tools and benchmarks construct a
// Platform and work through it, the way a designer works through the
// hosted service in the paper.
package core

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/ads"
	"repro/internal/analytics"
	"repro/internal/app"
	"repro/internal/engine"
	"repro/internal/host"
	"repro/internal/index"
	"repro/internal/ingest"
	"repro/internal/publish"
	"repro/internal/runtime"
	"repro/internal/sitesuggest"
	"repro/internal/store"
	"repro/internal/webcorpus"
	"repro/internal/webservice"
)

// Config controls platform construction.
type Config struct {
	// Seed drives the synthetic web corpus (default 1).
	Seed int64
	// CorpusPagesPerSite scales the synthetic web (default 40).
	CorpusPagesPerSite int
	// HTTPClient is used for web-service and upload fetches; nil
	// means http.DefaultClient (tests inject httptest clients).
	HTTPClient *http.Client
	// ClickBase routes rendered links through the hosting click
	// endpoint; empty disables click logging in links.
	ClickBase string
	// SupplementalParallelism is forwarded to the executor.
	SupplementalParallelism int
	// ShardTarget fixes the full-text index shard count for every
	// store dataset (0 = auto: one shard per CPU). The target is
	// re-applied when a checkpoint is restored — snapshots written
	// under another layout reshard to it on load — so durability
	// layout never caps query fan-out on the serving machine.
	ShardTarget int
	// CacheMB sizes the shared cross-request result cache attached to
	// every engine vertical and store dataset, in megabytes. Zero
	// disables caching (the default — tests and one-shot tools skip
	// the memory). Entries are stamped with each index's mutation era,
	// so a hit can never serve data from before a write.
	CacheMB int
}

// Platform is a fully wired Symphony instance.
type Platform struct {
	Corpus *webcorpus.Corpus
	Engine *engine.Engine
	Store  *store.Store
	// Cache is the shared cross-request result cache (nil when
	// Config.CacheMB was zero). Exposed for operator stats.
	Cache    *index.Cache
	Uploader *ingest.Uploader
	Services *webservice.Client
	Ads      *ads.Service
	Log      *analytics.Log
	Registry *host.Registry
	Executor *runtime.Executor
	Facebook *publish.SocialPlatform
}

// New builds a platform over a freshly generated synthetic web.
func New(cfg Config) *Platform {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	corpus := webcorpus.Generate(webcorpus.Config{
		Seed:         cfg.Seed,
		PagesPerSite: cfg.CorpusPagesPerSite,
	})
	return NewWithCorpus(cfg, corpus)
}

// NewWithCorpus builds a platform over an existing corpus (shared by
// benchmarks to avoid regenerating the web per run).
func NewWithCorpus(cfg Config, corpus *webcorpus.Corpus) *Platform {
	var cache *index.Cache
	if cfg.CacheMB > 0 {
		cache = index.NewCache(int64(cfg.CacheMB) << 20)
	}
	p := &Platform{
		Corpus:   corpus,
		Cache:    cache,
		Engine:   engine.New(corpus),
		Store:    store.New(store.WithShardTarget(cfg.ShardTarget), store.WithCache(cache)),
		Services: webservice.NewClient(cfg.HTTPClient),
		Ads:      ads.NewService(),
		Log:      analytics.NewLog(),
		Registry: host.NewRegistry(),
		Facebook: publish.NewSocialPlatform("facebook"),
	}
	p.Engine.AttachCache(cache)
	p.Uploader = &ingest.Uploader{Store: p.Store, Client: cfg.HTTPClient}
	p.Executor = &runtime.Executor{
		Store:                   p.Store,
		Engine:                  p.Engine,
		Services:                p.Services,
		Ads:                     p.Ads,
		Log:                     p.Log,
		ClickBase:               cfg.ClickBase,
		SupplementalParallelism: cfg.SupplementalParallelism,
	}
	p.Executor.ResolveApp = func(appID string) (*app.Application, error) {
		a, ok := p.Registry.Get(appID)
		if !ok {
			return nil, fmt.Errorf("core: composed app %q not published", appID)
		}
		return a, nil
	}
	return p
}

// RegisterDesigner creates a designer account with a private data
// space of the same name.
func (p *Platform) RegisterDesigner(designer, tenant string) error {
	return p.Store.CreateTenant(tenant, designer)
}

// Upload loads proprietary data from a reader.
func (p *Platform) Upload(opts ingest.Options, r io.Reader) (*ingest.Report, error) {
	return p.Uploader.Upload(opts, r)
}

// UploadURL loads proprietary data from a URL (HTTP upload, RSS feed
// or crawl export).
func (p *Platform) UploadURL(opts ingest.Options, url string) (*ingest.Report, error) {
	return p.Uploader.UploadURL(opts, url)
}

// NewApp starts a designer session for building an application.
func (p *Platform) NewApp(id, name, owner, tenant string) *app.Designer {
	return app.NewDesigner(id, name, owner, tenant)
}

// Publish validates and hosts an application, returning the web embed
// snippet for the designer's site.
func (p *Platform) Publish(a *app.Application, targets ...publish.Target) (*publish.WebEmbed, error) {
	if err := p.Registry.Publish(a); err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		targets = []publish.Target{publish.TargetWeb}
	}
	return publish.Distribute(p.baseURL(), a, p.Facebook, targets...)
}

func (p *Platform) baseURL() string {
	return "http://symphony.example"
}

// Query executes a hosted application for an end user.
func (p *Platform) Query(ctx context.Context, appID string, q runtime.Query) (*runtime.Response, error) {
	a, ok := p.Registry.Get(appID)
	if !ok {
		return nil, fmt.Errorf("core: application %q not published", appID)
	}
	return p.Executor.Execute(ctx, a, q)
}

// RecordClick logs a content click on a hosted application.
func (p *Platform) RecordClick(appID, url, customer string) {
	p.Log.Record(analytics.Event{App: appID, Type: analytics.EventClick, URL: url, Customer: customer})
}

// RecordAdClick bills an ad click and credits the app's designer.
func (p *Platform) RecordAdClick(appID string, sel ads.Selected, customer string) float64 {
	a, ok := p.Registry.Get(appID)
	designer := ""
	if ok {
		designer = a.Owner
	}
	credit := p.Ads.RecordClick(designer, sel)
	p.Log.Record(analytics.Event{
		App:      appID,
		Type:     analytics.EventAdClick,
		URL:      sel.Ad.LandingURL,
		Revenue:  credit,
		Customer: customer,
	})
	return credit
}

// TrafficSummary returns the designer-facing traffic summary.
func (p *Platform) TrafficSummary(appID string) analytics.Summary {
	return p.Log.Summarize(appID, 5)
}

// SiteSuggest mines the engine's click log and suggests sites related
// to the seeds (§II-A Site Suggest).
func (p *Platform) SiteSuggest(seeds []string, limit int) []sitesuggest.Suggestion {
	return sitesuggest.Build(p.Engine.Log()).Suggest(seeds, limit)
}

// ServeOptions configures the serving layer's quality of service.
type ServeOptions struct {
	// QueryTimeout caps each query's execution (0 = unbounded). A
	// query over the deadline is cancelled mid-evaluation and
	// answered 504.
	QueryTimeout time.Duration
	// Admission bounds per-tenant concurrency when non-nil; shed
	// requests get 429 + Retry-After.
	Admission *host.AdmissionController
	// Limiter meters per-app offered load when non-nil.
	Limiter *host.RateLimiter
}

// Serve returns an HTTP handler hosting all published applications,
// with the designer admin API mounted under /admin/.
func (p *Platform) Serve(baseURL string) http.Handler {
	return p.ServeWith(baseURL, ServeOptions{})
}

// ServeWith is Serve with explicit QoS: per-query deadlines,
// per-tenant admission control and per-app rate limiting.
func (p *Platform) ServeWith(baseURL string, opts ServeOptions) http.Handler {
	srv := &host.Server{
		Registry:     p.Registry,
		Executor:     p.Executor,
		Log:          p.Log,
		BaseURL:      baseURL,
		Limiter:      opts.Limiter,
		Admission:    opts.Admission,
		QueryTimeout: opts.QueryTimeout,
	}
	admin := &host.Admin{
		Registry: p.Registry,
		Uploader: p.Uploader,
		Log:      p.Log,
		Suggest: func(seeds []string, limit int) []string {
			sugs := p.SiteSuggest(seeds, limit)
			out := make([]string, len(sugs))
			for i, s := range sugs {
				out[i] = s.Site
			}
			return out
		},
	}
	mux := http.NewServeMux()
	mux.Handle("/admin/", admin.Handler())
	mux.Handle("/", srv.Handler())
	return mux
}
