package core

// Guard rails for the zero-copy boot path: a mapped boot holds views
// into the snapshot file's pages, so the checkpoint cycle must NEVER
// rewrite that file in place — it writes a temp file and renames it
// over the old one, leaving the replaced inode's pages valid for every
// live reader. These tests pin that contract three ways:
//
//   - a platform booted mapped keeps serving bit-correct results while
//     its own checkpointer replaces store.snap underneath it, cycle
//     after cycle;
//   - a SIGKILL at a randomized point — including mid-checkpoint, in
//     the window where the primary snapshot is renamed away — never
//     leaves a state a fresh mapped boot cannot recover: the next boot
//     maps the primary or falls back to the retained previous
//     snapshot, replays the WAL tail, and serves every acknowledged
//     write (TestMain re-execs this binary as the child writer);
//   - a truncated primary fails the mapped attach cleanly and boot
//     falls back to the previous checkpoint instead of serving from a
//     short mapping.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/wal"
)

func TestMain(m *testing.M) {
	if os.Getenv("MMAP_TORTURE_CHILD") == "1" {
		mmapTortureChild()
		return
	}
	os.Exit(m.Run())
}

func mmapBootSchema() store.Schema {
	return store.Schema{
		Name: "inv",
		Key:  "sku",
		Fields: []store.Field{
			{Name: "sku", Type: store.TypeString, Required: true},
			{Name: "title", Type: store.TypeString, Searchable: true},
			{Name: "body", Type: store.TypeString, Searchable: true},
		},
	}
}

// mmapTortureChild is the re-exec'd writer: boot mapped from the data
// dir, replay the WAL, then interleave puts (acked on stdout once
// durable — fsync-before-ack policy) with frequent checkpoints, until
// the parent kills the process. Checkpoints every few documents make
// the kill likely to land inside the temp-write/rename/rename window.
func mmapTortureChild() {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mmap torture child:", err)
		os.Exit(2)
	}
	ctx := context.Background()
	dir := os.Getenv("MMAP_TORTURE_DIR")
	start := 0
	if v := os.Getenv("MMAP_TORTURE_START"); v != "" {
		var err error
		if start, err = strconv.Atoi(v); err != nil {
			fail(err)
		}
	}
	p := New(Config{Seed: 1})
	cp, err := p.NewCheckpointer(dir, 0)
	if err != nil {
		fail(err)
	}
	cp.MMap = true
	if _, err := cp.RestoreLatestContext(ctx); err != nil {
		fail(err)
	}
	if _, err := cp.EnableWALContext(ctx, wal.Options{Policy: wal.PolicyAlways}); err != nil {
		fail(err)
	}
	// First boot creates the tenant and dataset; later boots restore
	// them from the snapshot and the creation calls fail benignly.
	p.Store.CreateTenant("t", "ann")
	p.Store.CreateDataset("t", "ann", mmapBootSchema())
	ds, err := p.Store.DatasetContext(ctx, "t", "ann", "inv", store.PermWrite)
	if err != nil {
		fail(err)
	}
	fmt.Println("READY")
	for i := start; ; i++ {
		id := fmt.Sprintf("doc-%06d", i)
		if _, err := ds.Put(store.Record{
			"sku":   id,
			"title": fmt.Sprintf("torture item %d", i),
			"body":  fmt.Sprintf("mapped boot payload for document %d", i),
		}); err != nil {
			fail(err)
		}
		// The ack may be lost to the kill; that only under-counts acks,
		// which weakens — never breaks — the recovery assertion.
		fmt.Printf("ACK %d\n", i)
		if i%5 == 4 {
			if err := cp.CheckpointContext(ctx); err != nil {
				fail(err)
			}
			fmt.Println("CKPT")
		}
	}
}

// runMmapTortureChild re-execs the writer against dir (documents from
// index start), SIGKILLs it at a randomized point, and returns the
// highest acknowledged document index (-1: none) plus stderr.
func runMmapTortureChild(t *testing.T, rng *rand.Rand, dir string, start int) (int64, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"MMAP_TORTURE_CHILD=1",
		"MMAP_TORTURE_DIR="+dir,
		"MMAP_TORTURE_START="+strconv.Itoa(start),
	)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var lastAck atomic.Int64
	lastAck.Store(-1)
	ready := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sc := bufio.NewScanner(stdout)
		readyClosed := false
		for sc.Scan() {
			line := sc.Text()
			if line == "READY" {
				if !readyClosed {
					close(ready)
					readyClosed = true
				}
				continue
			}
			var n int64
			if _, err := fmt.Sscanf(line, "ACK %d", &n); err == nil {
				lastAck.Store(n)
			}
		}
	}()
	// Usually let the boot finish and some writes/checkpoints flow, so
	// the kill has a chance to land mid-checkpoint; sometimes kill
	// during boot itself.
	if rng.Intn(5) > 0 {
		select {
		case <-ready:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			wg.Wait()
			cmd.Wait()
			t.Fatalf("child never became ready; stderr: %s", stderr.String())
		}
		time.Sleep(time.Duration(rng.Intn(40)+1) * time.Millisecond)
	} else {
		time.Sleep(time.Duration(rng.Intn(5)) * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	cmd.Wait() // the SIGKILL exit status is the expected outcome
	return lastAck.Load(), stderr.String()
}

// TestMappedBootTortureKillRecover: kill/recover cycles against one
// data dir, every boot mapped. After each kill a fresh mapped boot
// must succeed — mapping the primary snapshot or falling back to the
// retained previous one — and serve every acknowledged document whole.
func TestMappedBootTortureKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec torture is not -short")
	}
	cycles := 5
	if v := os.Getenv("TORTURE_CYCLES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad TORTURE_CYCLES %q", v)
		}
		cycles = n
	}
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("mmap torture: %d cycles, seed %d (set in code to reproduce)", cycles, seed)

	ctx := context.Background()
	dir := t.TempDir()
	start := 0
	for cycle := 0; cycle < cycles; cycle++ {
		la, childErr := runMmapTortureChild(t, rng, dir, start)
		hadSnap := false
		if _, err := os.Stat(dir + "/store.snap"); err == nil {
			hadSnap = true
		}

		p := New(Config{Seed: 1})
		cp, err := p.NewCheckpointer(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		cp.MMap = true
		restored, err := cp.RestoreLatestContext(ctx)
		if err != nil {
			t.Fatalf("cycle %d: mapped boot after SIGKILL: %v\nchild stderr: %s", cycle, err, childErr)
		}
		if hadSnap && !restored {
			t.Fatalf("cycle %d: snapshot on disk but nothing restored", cycle)
		}
		if _, err := cp.EnableWALContext(ctx, wal.Options{Policy: wal.PolicyAlways}); err != nil {
			t.Fatalf("cycle %d: wal replay after SIGKILL: %v\nchild stderr: %s", cycle, err, childErr)
		}
		if la >= 0 {
			// A checkpoint-cycle crash must never strand a mapped boot
			// on a short file: every acked write is served, whole.
			ds, err := p.Store.DatasetContext(ctx, "t", "ann", "inv", store.PermRead)
			if err != nil {
				t.Fatalf("cycle %d: dataset after recovery: %v", cycle, err)
			}
			for i := 0; int64(i) <= la; i++ {
				id := fmt.Sprintf("doc-%06d", i)
				rec, ok := ds.Get(id)
				if !ok {
					t.Fatalf("cycle %d: acked %s lost after mapped recovery (lastAck %d)", cycle, id, la)
				}
				for _, f := range []string{"sku", "title", "body"} {
					if rec[f] == "" {
						t.Fatalf("cycle %d: %s recovered partially: missing %s", cycle, id, f)
					}
				}
			}
			hits, err := ds.SearchContext(ctx, store.SearchRequest{Query: "torture", Limit: 5})
			if err != nil || len(hits) == 0 {
				t.Fatalf("cycle %d: search after mapped recovery = %v, %v", cycle, hits, err)
			}
			start = int(la) + 1
		}
		// Leave a clean recovery point for the next cycle's boot.
		if err := cp.CloseContext(ctx); err != nil {
			t.Fatalf("cycle %d: close: %v", cycle, err)
		}
	}
}

// TestMappedBootServesAcrossCheckpointReplace: the checkpoint cycle
// replaces store.snap (rename, never in-place rewrite) while the
// platform that mapped the old file keeps serving from its pages.
func TestMappedBootServesAcrossCheckpointReplace(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	p1 := New(Config{Seed: 1})
	buildGamerQueen(t, p1)
	cp1, err := p1.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp1.CheckpointContext(ctx); err != nil {
		t.Fatal(err)
	}

	p2 := New(Config{Seed: 1})
	cp2, err := p2.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cp2.MMap = true
	if restored, err := cp2.RestoreLatestContext(ctx); err != nil || !restored {
		t.Fatalf("mapped restore = %v, %v", restored, err)
	}
	var mappedBytes int64
	for _, st := range p2.Store.Status() {
		mappedBytes += st.MappedBytes
	}
	if mappedBytes == 0 {
		t.Fatal("mapped boot reports zero mapped bytes")
	}
	ds, err := p2.Store.DatasetContext(ctx, "gamerqueen", "ann", "inventory", store.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := ds.SearchContext(ctx, store.SearchRequest{Query: "exciting", Limit: 10})
	if err != nil || len(baseline) == 0 {
		t.Fatalf("mapped search = %v, %v", baseline, err)
	}

	// Replace the snapshot under the live mapping, several times, with
	// writes in between so each checkpoint re-encodes real changes.
	wds, err := p2.Store.DatasetContext(ctx, "gamerqueen", "ann", "inventory", store.PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if _, err := wds.Put(store.Record{
			"sku":         fmt.Sprintf("NEW%d", round),
			"title":       fmt.Sprintf("Added Round %d", round),
			"description": "an exciting addition",
		}); err != nil {
			t.Fatal(err)
		}
		if err := cp2.CheckpointContext(ctx); err != nil {
			t.Fatalf("round %d: checkpoint over live mapping: %v", round, err)
		}
		// The original mapped documents still serve, scores intact.
		again, err := ds.SearchContext(ctx, store.SearchRequest{Query: "exciting", Limit: 10})
		if err != nil {
			t.Fatalf("round %d: search after replace: %v", round, err)
		}
		found := 0
		for _, want := range baseline {
			for _, got := range again {
				if got.ID == want.ID {
					found++
					break
				}
			}
		}
		if found != len(baseline) {
			t.Fatalf("round %d: only %d of %d original hits survive the snapshot replace", round, found, len(baseline))
		}
	}

	// A third platform boots mapped from the replaced file and sees the
	// full post-write state.
	p3 := New(Config{Seed: 1})
	cp3, err := p3.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cp3.MMap = true
	if restored, err := cp3.RestoreLatestContext(ctx); err != nil || !restored {
		t.Fatalf("boot from replaced snapshot = %v, %v", restored, err)
	}
	ds3, err := p3.Store.DatasetContext(ctx, "gamerqueen", "ann", "inventory", store.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if _, ok := ds3.Get(fmt.Sprintf("NEW%d", round)); !ok {
			t.Fatalf("NEW%d missing after boot from replaced snapshot", round)
		}
	}
}

// TestMappedBootFallsBackOnTruncatedPrimary: a short primary snapshot
// — the file a naive in-place checkpoint could leave — must fail the
// mapped attach at boot (frame CRCs) and fall back to the retained
// previous checkpoint instead of serving from the truncated mapping.
func TestMappedBootFallsBackOnTruncatedPrimary(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	p1 := New(Config{Seed: 1})
	buildGamerQueen(t, p1)
	cp1, err := p1.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two checkpoints so PrevPath holds a complete snapshot.
	if err := cp1.CheckpointContext(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cp1.CheckpointContext(ctx); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cp1.Path())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cp1.Path(), data[:len(data)*3/5], 0o644); err != nil {
		t.Fatal(err)
	}

	p2 := New(Config{Seed: 1})
	cp2, err := p2.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cp2.MMap = true
	restored, err := cp2.RestoreLatestContext(ctx)
	if err != nil || !restored {
		t.Fatalf("mapped boot with truncated primary = %v, %v, want fallback restore", restored, err)
	}
	ds, err := p2.Store.DatasetContext(ctx, "gamerqueen", "ann", "inventory", store.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if hits, err := ds.SearchContext(ctx, store.SearchRequest{Query: "exciting", Limit: 3}); err != nil || len(hits) == 0 {
		t.Fatalf("search after fallback = %v, %v", hits, err)
	}
	if _, err := os.Stat(cp1.Path() + ".corrupt"); err != nil {
		t.Fatalf("truncated primary was not quarantined: %v", err)
	}
}

// TestMappedBootWALTailMaterializesOnlyTailedDatasets: replaying the
// log tail over a mapped boot materializes exactly the datasets the
// tail touches; everything else keeps serving from the mapping.
func TestMappedBootWALTailMaterializesOnlyTailedDatasets(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	p1 := New(Config{Seed: 1})
	if err := p1.Store.CreateTenant("t", "ann"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"hot", "cold"} {
		sc := mmapBootSchema()
		sc.Name = name
		if _, err := p1.Store.CreateDataset("t", "ann", sc); err != nil {
			t.Fatal(err)
		}
		ds, err := p1.Store.DatasetContext(ctx, "t", "ann", name, store.PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if _, err := ds.Put(store.Record{
				"sku":   fmt.Sprintf("%s-%03d", name, i),
				"title": fmt.Sprintf("%s item %d", name, i),
				"body":  "seeded before the wal tail",
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	cp1, err := p1.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp1.EnableWALContext(ctx, wal.Options{Policy: wal.PolicyAlways}); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes to "hot" only: this is the tail the next
	// boot must replay.
	hot, err := p1.Store.DatasetContext(ctx, "t", "ann", "hot", store.PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := hot.Put(store.Record{
			"sku":   fmt.Sprintf("tail-%03d", i),
			"title": fmt.Sprintf("tail item %d", i),
			"body":  "written after the last checkpoint",
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp1.WAL().Close(); err != nil {
		t.Fatal(err)
	}

	p2 := New(Config{Seed: 1})
	cp2, err := p2.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cp2.MMap = true
	if restored, err := cp2.RestoreLatestContext(ctx); err != nil || !restored {
		t.Fatalf("mapped restore = %v, %v", restored, err)
	}
	st, err := cp2.EnableWALContext(ctx, wal.Options{Policy: wal.PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied == 0 {
		t.Fatalf("wal tail replayed nothing: %+v", st)
	}
	for _, ds := range p2.Store.Status() {
		switch ds.Dataset {
		case "hot":
			if ds.MaterializedBytes == 0 {
				t.Fatalf("tailed dataset %q did not materialize: %+v", ds.Dataset, ds)
			}
		case "cold":
			if ds.MaterializedBytes != 0 || ds.MappedBytes == 0 {
				t.Fatalf("untouched dataset %q lost its mapping: %+v", ds.Dataset, ds)
			}
		}
	}
	hot2, err := p2.Store.DatasetContext(ctx, "t", "ann", "hot", store.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := hot2.Get("tail-004"); !ok {
		t.Fatal("tail write missing after mapped boot + replay")
	}
}
