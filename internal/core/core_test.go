package core

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/ads"
	"repro/internal/app"
	"repro/internal/ingest"
	"repro/internal/layout"
	"repro/internal/publish"
	"repro/internal/runtime"
	"repro/internal/webcorpus"
	"repro/internal/webservice"
)

// buildGamerQueen walks the paper's full §II-B scenario end to end on
// a Platform: Ann registers, uploads her inventory, designs the app
// with review and pricing supplementals, and publishes.
func buildGamerQueen(t testing.TB, p *Platform) (*app.Application, []string) {
	t.Helper()
	if err := p.RegisterDesigner("ann", "gamerqueen"); err != nil {
		t.Fatal(err)
	}
	titles := webcorpus.Entities(webcorpus.Config{Seed: 1}, webcorpus.TopicGames)[:6]
	var csv strings.Builder
	csv.WriteString("sku,title,producer,description,image,detailurl\n")
	for i, title := range titles {
		fmt.Fprintf(&csv, "G%d,%s,Studio%d,an exciting %s game,http://img.example/%d.png,http://gamerqueen.example/g/%d\n",
			i, title, i%3, title, i, i)
	}
	rep, err := p.Upload(ingest.Options{
		Tenant: "gamerqueen", Actor: "ann", Dataset: "inventory",
		Format: ingest.FormatCSV, KeyField: "sku",
	}, strings.NewReader(csv.String()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != len(titles) {
		t.Fatalf("upload loaded %d of %d", rep.Loaded, len(titles))
	}

	pricing := webservice.NewPricingService(2, titles)
	srv := httptest.NewServer(pricing)
	t.Cleanup(srv.Close)

	p.Ads.Register(ads.Ad{ID: "ad1", Advertiser: "GameMart", Title: "Deals", Text: "cheap games", LandingURL: "http://gamemart.example", Keywords: titles, BidCPC: 0.40})

	d := p.NewApp("gamerqueen", "GamerQueen", "ann", "gamerqueen")
	d.DropPrimary(app.SourceConfig{ID: "inventory", Kind: app.KindProprietary, Dataset: "inventory", MaxResults: 3})
	d.SetSearchFields("inventory", "title", "producer", "description")
	d.UseTemplate("inventory", "media-card", map[string]string{
		"title": "title", "url": "detailurl", "image": "image", "description": "description",
	})
	d.DropSupplemental("inventory", app.SourceConfig{ID: "reviews", Kind: app.KindWebSearch, MaxResults: 2})
	d.RestrictSites("reviews", "gamespot.com", "ign.com", "teamxbox.com")
	d.SetDriveFields("reviews", "{title} review", "title")
	d.UseTemplate("reviews", "headline-snippet", map[string]string{"title": "title", "url": "url", "snippet": "snippet"})
	d.DropSupplemental("inventory", app.SourceConfig{ID: "pricing", Kind: app.KindService, MaxResults: 1})
	d.ConfigureService("pricing", webservice.Definition{
		Name: "pricing", Endpoint: srv.URL + "/price",
		Params: map[string]string{"title": "{title}"},
	})
	d.SetDriveFields("pricing", "", "title")
	d.SetResultLayout("pricing", &layout.Element{Type: layout.ElemContainer, Children: []*layout.Element{
		{Type: layout.ElemText, Field: "price"},
	}})
	a, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	embed, err := p.Publish(a, publish.TargetWeb, publish.TargetFacebook)
	if err != nil {
		t.Fatal(err)
	}
	if embed == nil || !strings.Contains(embed.Snippet, "gamerqueen") {
		t.Fatal("embed snippet missing")
	}
	return a, titles
}

func TestEndToEndGamerQueen(t *testing.T) {
	p := New(Config{Seed: 1, ClickBase: "http://symphony.example/click"})
	_, titles := buildGamerQueen(t, p)

	resp, err := p.Query(context.Background(), "gamerqueen", runtime.Query{Text: titles[0], Customer: "visitor"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Blocks) != 1 || len(resp.Blocks[0].Items) == 0 {
		t.Fatal("no primary results")
	}
	top := resp.Blocks[0].Items[0]
	if top["title"] != titles[0] {
		t.Errorf("top = %v", top["title"])
	}
	supp := resp.Blocks[0].SupplementalByItem[0]
	if len(supp["pricing"]) != 1 || supp["pricing"][0]["price"] == "" {
		t.Errorf("pricing = %v", supp["pricing"])
	}
	if len(supp["reviews"]) == 0 {
		t.Error("no reviews for a corpus entity")
	}
	if !strings.Contains(resp.HTML, "click?app=gamerqueen") {
		t.Error("links not routed through click logging")
	}

	// Facebook publish happened.
	if got := p.Facebook.Installed(); len(got) != 1 || got[0] != "gamerqueen" {
		t.Errorf("facebook installs = %v", got)
	}
}

func TestMonetizationFlow(t *testing.T) {
	p := New(Config{Seed: 1})
	_, titles := buildGamerQueen(t, p)

	// Traffic: queries, content clicks, ad clicks.
	for i := 0; i < 3; i++ {
		if _, err := p.Query(context.Background(), "gamerqueen", runtime.Query{Text: titles[i], Customer: fmt.Sprintf("c%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	p.RecordClick("gamerqueen", "http://ign.com/review/9", "c0")
	p.RecordClick("gamerqueen", "http://gamespot.com/x", "c1")
	sels := p.Ads.Select(titles[0], 1)
	if len(sels) != 1 {
		t.Fatal("no ad selected")
	}
	credit := p.RecordAdClick("gamerqueen", sels[0], "c0")
	if credit <= 0 {
		t.Fatalf("credit = %f", credit)
	}

	s := p.TrafficSummary("gamerqueen")
	if s.Queries != 3 || s.Clicks != 2 || s.AdClicks != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Revenue != credit {
		t.Errorf("revenue %f != credit %f", s.Revenue, credit)
	}
	if p.Ads.Earnings("ann") != credit {
		t.Errorf("designer earnings = %f", p.Ads.Earnings("ann"))
	}
	// Referral audit: ign and gamespot each got one click.
	rep := p.Log.ReferralReport("gamerqueen")
	if len(rep) != 2 {
		t.Fatalf("referral report = %v", rep)
	}
	// CSV download available.
	if csv := p.Log.ExportCSV("gamerqueen"); strings.Count(csv, "\n") != 7 {
		t.Errorf("csv rows wrong:\n%s", csv)
	}
}

func TestSiteSuggestOverPlatform(t *testing.T) {
	p := New(Config{Seed: 1})
	// Simulate end users searching and clicking gaming sites.
	queries := []string{"halo review", "zelda guide", "gears trailer"}
	for _, q := range queries {
		for _, site := range []string{"ign.com", "gamespot.com", "kotaku.com"} {
			p.Engine.RecordClick(q, "http://"+site+"/x")
		}
	}
	sugs := p.SiteSuggest([]string{"ign.com", "gamespot.com"}, 3)
	if len(sugs) == 0 || sugs[0].Site != "kotaku.com" {
		t.Fatalf("suggestions = %v", sugs)
	}
}

func TestHostedHTTPFlow(t *testing.T) {
	p := New(Config{Seed: 1})
	_, titles := buildGamerQueen(t, p)
	srv := httptest.NewServer(p.Serve("http://symphony.example"))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/query?app=gamerqueen&q=" + strings.ReplaceAll(titles[0], " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "symphony-app") {
		t.Fatalf("hosted query = %d %.120s", resp.StatusCode, body)
	}
	// Embed loader served.
	resp, err = srv.Client().Get(srv.URL + "/embed.js?app=gamerqueen")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("embed = %d", resp.StatusCode)
	}
}

func TestQueryUnpublishedApp(t *testing.T) {
	p := New(Config{Seed: 1})
	if _, err := p.Query(context.Background(), "ghost", runtime.Query{Text: "x"}); err == nil {
		t.Fatal("unpublished app served")
	}
}

func TestAppComposition(t *testing.T) {
	p := New(Config{Seed: 1})
	_, titles := buildGamerQueen(t, p)
	d := p.NewApp("portal", "Portal", "ann", "gamerqueen")
	d.DropPrimary(app.SourceConfig{ID: "games", Kind: app.KindApp, AppID: "gamerqueen", MaxResults: 3})
	a, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Publish(a); err != nil {
		t.Fatal(err)
	}
	resp, err := p.Query(context.Background(), "portal", runtime.Query{Text: titles[0]})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Blocks) != 1 || len(resp.Blocks[0].Items) == 0 {
		t.Fatal("composed portal returned nothing")
	}
}

func TestTenantIsolationAcrossDesigners(t *testing.T) {
	p := New(Config{Seed: 1})
	buildGamerQueen(t, p)
	if err := p.RegisterDesigner("bob", "bobshop"); err != nil {
		t.Fatal(err)
	}
	// Bob publishes an app claiming Ann's tenant/dataset; execution
	// must fail closed (no block) because Bob is not granted access.
	d := p.NewApp("sneaky", "Sneaky", "bob", "gamerqueen")
	d.DropPrimary(app.SourceConfig{ID: "steal", Kind: app.KindProprietary, Dataset: "inventory"})
	a, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Publish(a); err != nil {
		t.Fatal(err)
	}
	resp, err := p.Query(context.Background(), "sneaky", runtime.Query{Text: "game"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Blocks) != 0 {
		t.Fatal("bob read ann's proprietary data")
	}
}
