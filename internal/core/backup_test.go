package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/runtime"
)

func TestBackupRestoreRoundTrip(t *testing.T) {
	p := New(Config{Seed: 1})
	_, titles := buildGamerQueen(t, p)

	var buf bytes.Buffer
	if err := p.Backup(&buf); err != nil {
		t.Fatal(err)
	}

	// Fresh platform over the same corpus seed.
	p2 := New(Config{Seed: 1})
	if err := p2.RestoreBackup(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// The app is published and queryable end to end. The pricing
	// supplemental points at the old httptest server and degrades
	// gracefully; proprietary + engine content must work.
	resp, err := p2.Query(context.Background(), "gamerqueen", runtime.Query{Text: titles[0]})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Blocks) != 1 || len(resp.Blocks[0].Items) == 0 {
		t.Fatal("restored app returned nothing")
	}
	if resp.Blocks[0].Items[0]["title"] != titles[0] {
		t.Errorf("top = %v", resp.Blocks[0].Items[0]["title"])
	}
	if len(resp.Blocks[0].SupplementalByItem[0]["reviews"]) == 0 {
		t.Error("restored app lost review supplementals")
	}
}

func TestRestoreBackupRejectsGarbage(t *testing.T) {
	p := New(Config{Seed: 1})
	if err := p.RestoreBackup(strings.NewReader("{bad")); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := p.RestoreBackup(strings.NewReader(`{"version":9}`)); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestBackupExcludesOperationalState(t *testing.T) {
	p := New(Config{Seed: 1})
	_, titles := buildGamerQueen(t, p)
	p.Query(context.Background(), "gamerqueen", runtime.Query{Text: titles[0]})
	var buf bytes.Buffer
	if err := p.Backup(&buf); err != nil {
		t.Fatal(err)
	}
	p2 := New(Config{Seed: 1})
	if err := p2.RestoreBackup(&buf); err != nil {
		t.Fatal(err)
	}
	if p2.Log.Len() != 0 {
		t.Error("interaction log leaked into backup")
	}
}
