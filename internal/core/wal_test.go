package core

import (
	"context"
	"os"
	"testing"

	"repro/internal/store"
	"repro/internal/wal"
)

// bootWAL builds a platform over dir with WAL durability enabled,
// exactly like symphonyd boot: restore, replay, open, attach,
// boot checkpoint.
func bootWAL(t *testing.T, dir string, policy wal.Policy) (*Platform, *Checkpointer) {
	t.Helper()
	p := New(Config{Seed: 1, ShardTarget: 2})
	cp, err := p.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.RestoreLatestContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.EnableWALContext(context.Background(), wal.Options{Policy: policy}); err != nil {
		t.Fatal(err)
	}
	return p, cp
}

func inventory(t *testing.T, p *Platform, perm store.Permission) *store.Dataset {
	t.Helper()
	ds, err := p.Store.DatasetContext(context.Background(), "gamerqueen", "ann", "inventory", perm)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestWALRecoversUncheckpointedWrites is the core durability claim:
// writes acknowledged after the last checkpoint survive a crash (no
// CloseContext, no final snapshot) via log replay on the next boot.
func TestWALRecoversUncheckpointedWrites(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	p, _ := bootWAL(t, dir, wal.PolicyAlways)
	buildGamerQueen(t, p)
	ds := inventory(t, p, store.PermWrite)
	if _, err := ds.PutContext(ctx, store.Record{"sku": "G77", "title": "Crash Survivor", "producer": "Studio7",
		"description": "a durable game", "image": "http://img.example/77.png", "detailurl": "http://gamerqueen.example/g/77"}); err != nil {
		t.Fatal(err)
	}
	want := ds.Len()
	// "Crash": abandon the platform without CloseContext. The log is
	// never closed cleanly; its synced frames must carry the state.

	p2, _ := bootWAL(t, dir, wal.PolicyAlways)
	ds2 := inventory(t, p2, store.PermRead)
	if got := ds2.Len(); got != want {
		t.Fatalf("recovered %d records, want %d", got, want)
	}
	rec, ok := ds2.Get("G77")
	if !ok || rec["title"] != "Crash Survivor" {
		t.Fatalf("uncheckpointed write lost: %v %v", rec, ok)
	}
	hits, err := ds2.SearchContext(ctx, store.SearchRequest{Query: "durable"})
	if err != nil || len(hits) != 1 {
		t.Fatalf("recovered record not searchable: %v %v", hits, err)
	}
}

// TestWALCorruptSnapshotFallsBack is the satellite case: the primary
// snapshot is corrupted on disk, and boot must fall back to the
// retained previous checkpoint and replay the (longer) WAL tail —
// not fail, and not lose acknowledged writes.
func TestWALCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	p, cp := bootWAL(t, dir, wal.PolicyAlways)
	buildGamerQueen(t, p)
	// Checkpoint #2 (after the boot checkpoint): both store.snap and
	// store.snap.1 now exist, and the WAL retains history back to the
	// previous boundary.
	if err := cp.CheckpointContext(ctx); err != nil {
		t.Fatal(err)
	}
	ds := inventory(t, p, store.PermWrite)
	if _, err := ds.PutContext(ctx, store.Record{"sku": "G88", "title": "Fallback Proof", "producer": "Studio8",
		"description": "written after the last checkpoint", "image": "http://img.example/88.png", "detailurl": "http://gamerqueen.example/g/88"}); err != nil {
		t.Fatal(err)
	}
	want := ds.Len()

	// Corrupt the primary snapshot in place; keep the previous one.
	if err := os.WriteFile(cp.Path(), []byte("SYMSNP2\ngarbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	p2, _ := bootWAL(t, dir, wal.PolicyAlways)
	ds2 := inventory(t, p2, store.PermRead)
	if got := ds2.Len(); got != want {
		t.Fatalf("fallback recovery has %d records, want %d", got, want)
	}
	if _, ok := ds2.Get("G88"); !ok {
		t.Fatal("write after last checkpoint lost in fallback recovery")
	}
}

// TestWALCorruptPrimaryQuarantinedOnFallback pins the crash-window
// fix around fallback recovery: once boot restores from the previous
// snapshot because the primary is corrupt, the corrupt primary must
// be quarantined before the boot checkpoint runs. Otherwise the
// checkpoint's retention rename would move the known-bad file over
// the good previous snapshot, and a crash between the two renames
// would leave the next boot with nothing restorable.
func TestWALCorruptPrimaryQuarantinedOnFallback(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	p, cp := bootWAL(t, dir, wal.PolicyAlways)
	buildGamerQueen(t, p)
	// Checkpoint #2: primary and retained previous snapshot both exist.
	if err := cp.CheckpointContext(ctx); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(cp.PrevPath())
	if err != nil {
		t.Fatal(err)
	}
	want := inventory(t, p, store.PermRead).Len()

	// Corrupt the primary in place; boot must fall back, quarantine
	// the bad file, and leave the good previous snapshot untouched
	// through the boot checkpoint.
	bad := []byte("SYMSNP2\ngarbage")
	if err := os.WriteFile(cp.Path(), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	p2, cp2 := bootWAL(t, dir, wal.PolicyAlways)

	q, err := os.ReadFile(cp2.Path() + ".corrupt")
	if err != nil || string(q) != string(bad) {
		t.Fatalf("corrupt primary not quarantined: %v (%d bytes)", err, len(q))
	}
	prev, err := os.ReadFile(cp2.PrevPath())
	if err != nil {
		t.Fatal(err)
	}
	if string(prev) != string(good) {
		t.Fatal("boot checkpoint replaced the good previous snapshot while the primary was known corrupt")
	}
	if got := inventory(t, p2, store.PermRead).Len(); got != want {
		t.Fatalf("fallback recovery has %d records, want %d", got, want)
	}
}

// TestWALTruncationLagsOneCheckpoint pins the retention contract:
// after N checkpoints, segments older than the previous checkpoint's
// rotation boundary are gone, and the ones the retained snapshot
// needs are still there.
func TestWALTruncationLagsOneCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	p, cp := bootWAL(t, dir, wal.PolicyAlways)
	buildGamerQueen(t, p)
	ds := inventory(t, p, store.PermWrite)
	countSegs := func() int {
		ents, err := os.ReadDir(cp.WALDir())
		if err != nil {
			t.Fatal(err)
		}
		return len(ents)
	}
	for i := 0; i < 4; i++ {
		if _, err := ds.PutContext(ctx, store.Record{"sku": "G9", "title": "Churn", "producer": "Studio9",
			"description": "rewritten every round", "image": "http://img.example/9.png", "detailurl": "http://gamerqueen.example/g/9"}); err != nil {
			t.Fatal(err)
		}
		if err := cp.CheckpointContext(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Rotation adds a segment per checkpoint and truncation removes
	// the sealed ones two checkpoints back; the directory must not
	// grow without bound. Boot + 4 checkpoints = 5 rotations; without
	// truncation there would be >6 files.
	if n := countSegs(); n > 4 {
		t.Fatalf("wal dir holds %d segments after 4 checkpoints; truncation is not engaging", n)
	}
	if err := cp.CloseContext(ctx); err != nil {
		t.Fatal(err)
	}
}
