package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/mmapio"
	"repro/internal/store"
	"repro/internal/wal"
)

// Checkpointer periodically snapshots the platform's proprietary data
// store into a data directory and restores it on boot — the daemon
// side of the durability contract. Writes are atomic: each checkpoint
// goes to a temp file in the same directory, is fsynced, then renamed
// over the previous snapshot, so a crash mid-checkpoint leaves the
// last good snapshot in place.
//
// The snapshot uses store format v3, whose per-dataset locking means
// a running checkpoint does not block writers on other datasets.
//
// Checkpoints are incremental: a frame cache shared across the
// checkpointer's lifetime means each periodic pass re-encodes only
// the datasets mutated since the previous one (dirty tracking by
// dataset version) and reuses the prior frames for clean ones. The
// on-disk format is unchanged — every snapshot file is still a
// complete, self-contained v2 stream.
type Checkpointer struct {
	p        *Platform
	dir      string
	interval time.Duration
	cache    *store.FrameCache
	// Logf reports checkpoint activity (default: silent).
	Logf func(format string, args ...any)
	// MMap, when set before RestoreLatestContext, makes boot attach v3
	// snapshots as mmap'd views instead of decoding them to the heap:
	// records and postings materialize copy-on-write as the workload
	// touches them, so time-to-serving and resident set stop scaling
	// with corpus size. Older snapshot formats (and platforms where
	// mmap is unavailable — mmapio falls back to a heap read) restore
	// through the streaming path transparently. The checkpoint cycle
	// is unchanged: snapshots are always written to a temp file and
	// renamed into place, never rewritten in place, so live mapped
	// readers keep serving from the replaced file's still-open pages.
	MMap bool

	mu   sync.Mutex // serializes Checkpoint calls
	stop chan struct{}
	done chan struct{}

	// wlog, when non-nil, is the write-ahead log layered under the
	// checkpoint cycle (EnableWALContext): each checkpoint rotates the
	// log first, so every record in a sealed segment is covered by the
	// snapshot taken after the rotation, and sealed segments older
	// than the PREVIOUS checkpoint's boundary are truncated — the one-
	// checkpoint lag keeps the retained prior snapshot (Path()+".1")
	// plus the remaining log a complete recovery point on its own.
	wlog *wal.Log
	// lastBoundary is the rotation boundary of the previous completed
	// checkpoint (0 = none yet). Guarded by mu.
	lastBoundary int
}

// NewCheckpointer prepares a checkpointer over dir, creating the
// directory if needed. interval <= 0 disables the periodic loop
// (Checkpoint can still be called explicitly, e.g. at shutdown).
func (p *Platform) NewCheckpointer(dir string, interval time.Duration) (*Checkpointer, error) {
	if dir == "" {
		return nil, fmt.Errorf("core: checkpointer needs a data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: checkpointer: %w", err)
	}
	return &Checkpointer{p: p, dir: dir, interval: interval, cache: store.NewFrameCache()}, nil
}

// Path returns the snapshot file the checkpointer maintains.
func (c *Checkpointer) Path() string {
	return filepath.Join(c.dir, "store.snap")
}

// PrevPath returns the retained previous snapshot. Each checkpoint
// renames the current snapshot here before installing the new one, so
// a corrupt primary never strands the store: the previous checkpoint
// plus the write-ahead log (truncation lags one checkpoint) is a
// complete recovery point.
func (c *Checkpointer) PrevPath() string {
	return c.Path() + ".1"
}

// WALDir returns the write-ahead log directory EnableWALContext uses.
func (c *Checkpointer) WALDir() string {
	return filepath.Join(c.dir, "wal")
}

// RestoreLatestContext loads the latest usable snapshot into the
// platform's store, reporting whether a restore happened. A missing
// or corrupt primary snapshot falls back to the retained previous one
// (see PrevPath); only when both fail does boot fail. Old v1
// snapshots restore transparently; the next checkpoint rewrites them
// as v2. Cancelling ctx aborts the load with the store unchanged.
func (c *Checkpointer) RestoreLatestContext(ctx context.Context) (bool, error) {
	ok, err := c.restoreFrom(ctx, c.Path())
	if err == nil {
		if ok {
			return true, nil
		}
		// No primary: a crash between the retention rename and the
		// install rename leaves only the previous snapshot.
		return c.restoreFrom(ctx, c.PrevPath())
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false, err
	}
	c.logf("restore %s failed: %v; falling back to previous checkpoint", c.Path(), err)
	ok, ferr := c.restoreFrom(ctx, c.PrevPath())
	if ferr != nil {
		return false, fmt.Errorf("%w (fallback: %v)", err, ferr)
	}
	if !ok {
		return false, err // corrupt primary and nothing to fall back to
	}
	// Quarantine the corrupt primary now, before any checkpoint runs:
	// the checkpoint's retention rename would otherwise move the known-
	// bad file over the good previous snapshot, and a crash between
	// that rename and the install of the new snapshot would leave the
	// next boot with nothing restorable at all. With the primary gone,
	// the retention rename is a no-op and PrevPath keeps the good
	// snapshot until the new one is installed.
	if qerr := c.quarantineBadSnapshot(); qerr != nil {
		return false, fmt.Errorf("core: restore: corrupt snapshot %s could not be quarantined: %w", c.Path(), qerr)
	}
	return true, nil
}

// quarantineBadSnapshot moves an unreadable primary snapshot aside as
// Path()+".corrupt" (kept for forensics; the next quarantine replaces
// it) and fsyncs the directory so the move survives power loss.
func (c *Checkpointer) quarantineBadSnapshot() error {
	if err := os.Rename(c.Path(), c.Path()+".corrupt"); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	c.logf("quarantined corrupt snapshot as %s", c.Path()+".corrupt")
	return syncDir(c.dir)
}

// syncDir fsyncs a directory so renames and file creations in it are
// durable against power loss, not just process crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// restoreFrom loads one snapshot file; a missing file is (false, nil).
// With MMap set and a v3 snapshot on disk, the file is mapped and
// attached zero-copy; anything else streams through the heap path.
func (c *Checkpointer) restoreFrom(ctx context.Context, path string) (bool, error) {
	if c.MMap {
		ok, err := c.restoreMappedFrom(ctx, path)
		if ok || err != nil {
			return ok, err
		}
		// Not mappable (missing file falls through too — the streaming
		// path reports it the same way).
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("core: restore checkpoint: %w", err)
	}
	defer f.Close()
	if err := c.p.Store.RestoreContext(ctx, f); err != nil {
		return false, fmt.Errorf("core: restore checkpoint %s: %w", path, err)
	}
	c.logf("restored store from %s", path)
	// The restore resharded every dataset to the store's configured
	// target (snapshot layout is decoupled from runtime parallelism);
	// log the resulting layout so the transition is visible in the
	// boot log.
	for _, st := range c.p.Store.Status() {
		c.logf("restored %s/%s: %d records in %d shards (ring gen %d)",
			st.Tenant, st.Dataset, st.Records, st.Shards, st.RingGen)
	}
	return true, nil
}

// restoreMappedFrom attaches a v3 snapshot as mapped views. (false,
// nil) means the file is missing or not a v3 stream and the caller
// should try the streaming path. A failed mapped restore leaves the
// mapping unmunmapped deliberately: a partially decoded replacement
// may still hold views into it, and boot failure is terminal anyway.
func (c *Checkpointer) restoreMappedFrom(ctx context.Context, path string) (bool, error) {
	m, err := mmapio.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("core: map checkpoint: %w", err)
	}
	if !store.SnapshotIsMappable(m.Data()) {
		m.Close()
		return false, nil
	}
	if err := c.p.Store.RestoreMappedContext(ctx, m.Data()); err != nil {
		return false, fmt.Errorf("core: restore mapped checkpoint %s: %w", path, err)
	}
	kind := "heap-backed"
	if m.Mapped() {
		kind = "mmap-backed"
	}
	c.logf("restored store from %s (%s, %d bytes attached lazily)", path, kind, m.Len())
	for _, st := range c.p.Store.Status() {
		c.logf("restored %s/%s: %d records in %d shards (ring gen %d, %d bytes mapped)",
			st.Tenant, st.Dataset, st.Records, st.Shards, st.RingGen, st.MappedBytes)
	}
	return true, nil
}

// EnableWALContext layers a write-ahead log under the checkpoint
// cycle. Call it after RestoreLatestContext: it replays the log tail
// over the restored state (records already in the snapshot re-apply
// idempotently), opens a fresh log generation, attaches it to the
// store so every subsequent acknowledged write is logged, and writes
// a boot checkpoint so the replay is not repeated on the next boot.
// From here on, boot recovers to the last acknowledged write — not
// just the last checkpoint — under the chosen fsync policy.
func (c *Checkpointer) EnableWALContext(ctx context.Context, opts wal.Options) (wal.ReplayStats, error) {
	st, err := wal.Replay(c.WALDir(), c.p.Store.ApplyWAL)
	if err != nil {
		// Includes wal.ErrDamagedHistory: damage in a sealed segment
		// with acked writes beyond it fails boot loudly instead of
		// checkpointing over the hole and making the loss permanent.
		return st, fmt.Errorf("core: wal replay: %w", err)
	}
	if st.Records > 0 || st.Torn {
		c.logf("wal replay: %d records applied, %d skipped, %d segments (torn=%v)",
			st.Applied, st.Skipped, st.Segments, st.Torn)
	}
	// Seal a torn tail before opening the next segment: once a newer
	// segment exists, replay can no longer tell this crash tear from
	// media damage in acked history, and would refuse to boot.
	if st.Torn {
		if err := wal.SealTornTail(st); err != nil {
			return st, fmt.Errorf("core: wal: %w", err)
		}
		c.logf("wal: sealed torn tail: %s truncated to %d bytes", st.TornSegment, st.TornOffset)
	}
	l, err := wal.Open(c.WALDir(), opts)
	if err != nil {
		return st, fmt.Errorf("core: wal open: %w", err)
	}
	c.wlog = l
	c.p.Store.AttachWAL(l)
	if err := c.CheckpointContext(ctx); err != nil {
		return st, err
	}
	return st, nil
}

// WAL returns the attached write-ahead log (nil before
// EnableWALContext), for operator stats.
func (c *Checkpointer) WAL() *wal.Log {
	return c.wlog
}

// CheckpointContext writes one snapshot now: temp file, fsync, atomic
// rename. Concurrent calls serialize. Only datasets mutated since
// the previous checkpoint are re-encoded; clean ones reuse their
// cached frames (the file is still a complete snapshot either way).
// Cancelling ctx abandons the temp file; the previous snapshot stays
// good (the atomic-rename contract is what makes aborting safe).
func (c *Checkpointer) CheckpointContext(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Rotate the log BEFORE snapshotting: every record in a sealed
	// segment was applied to memory before its append (same dataset
	// lock), so the snapshot about to be taken covers all of them and
	// the sealed history becomes truncatable — one checkpoint later.
	boundary := 0
	if c.wlog != nil {
		b, err := c.wlog.Rotate()
		if err != nil {
			// A failed log cannot rotate; the snapshot itself is still
			// the durability path, so checkpoint anyway, never truncate.
			c.logf("wal rotate failed: %v", err)
		} else {
			boundary = b
		}
	}
	f, err := os.CreateTemp(c.dir, "store-*.tmp")
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	hits0, misses0 := c.cache.Stats()
	if err := c.p.Store.SnapshotContext(ctx, f, store.WithFrameCache(c.cache)); err != nil {
		return fail(err)
	}
	hits1, misses1 := c.cache.Stats()
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	// Retain the previous snapshot before installing the new one: the
	// corrupt-primary fallback in RestoreLatestContext depends on it.
	if err := os.Rename(c.Path(), c.PrevPath()); err != nil && !os.IsNotExist(err) {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: retain previous: %w", err)
	}
	if err := os.Rename(tmp, c.Path()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	// Fsync the directory too: the renames themselves must survive
	// power loss before the checkpoint counts as durable (and before
	// the WAL history they supersede is truncated below).
	if err := syncDir(c.dir); err != nil {
		return fmt.Errorf("core: checkpoint: sync dir: %w", err)
	}
	c.logf("checkpoint written to %s (%d frames re-encoded, %d reused)",
		c.Path(), misses1-misses0, hits1-hits0)
	// Truncate WAL history one checkpoint behind: the snapshot just
	// written needs segments >= boundary; the retained previous one
	// needs segments >= lastBoundary. Everything older is garbage.
	if c.wlog != nil && boundary > 0 {
		if c.lastBoundary > 0 {
			if err := c.wlog.TruncateBefore(c.lastBoundary); err != nil {
				c.logf("wal truncate failed: %v", err)
			}
		}
		c.lastBoundary = boundary
	}
	return nil
}

// Start launches the periodic checkpoint loop. A checkpointer starts
// at most once; Close stops it.
func (c *Checkpointer) Start() {
	if c.interval <= 0 || c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		ticker := time.NewTicker(c.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := c.CheckpointContext(context.Background()); err != nil {
					c.logf("checkpoint failed: %v", err)
				}
			case <-c.stop:
				return
			}
		}
	}()
}

// CloseContext stops the periodic loop and writes a final checkpoint,
// so a graceful shutdown never loses acknowledged writes. ctx bounds
// the final snapshot: a daemon given a shutdown deadline stops
// encoding mid-pass and keeps the previous checkpoint instead of
// hanging past its grace period.
// A WAL attached by EnableWALContext is closed after the final
// checkpoint — even a failed final snapshot loses nothing, because
// the closed log retains every acknowledged write for replay.
func (c *Checkpointer) CloseContext(ctx context.Context) error {
	if c.stop != nil {
		close(c.stop)
		<-c.done
		c.stop, c.done = nil, nil
	}
	err := c.CheckpointContext(ctx)
	if c.wlog != nil {
		if cerr := c.wlog.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("core: close wal: %w", cerr)
		}
		c.wlog = nil
	}
	return err
}

// Checkpoint writes one snapshot without a deadline.
//
// Deprecated: use CheckpointContext.
func (c *Checkpointer) Checkpoint() error {
	return c.CheckpointContext(context.Background())
}

// RestoreLatest loads the latest snapshot without a deadline.
//
// Deprecated: use RestoreLatestContext.
func (c *Checkpointer) RestoreLatest() (bool, error) {
	return c.RestoreLatestContext(context.Background())
}

// Close shuts down with an unbounded final checkpoint.
//
// Deprecated: use CloseContext.
func (c *Checkpointer) Close() error {
	return c.CloseContext(context.Background())
}

func (c *Checkpointer) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}
