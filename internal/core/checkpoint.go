package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/store"
)

// Checkpointer periodically snapshots the platform's proprietary data
// store into a data directory and restores it on boot — the daemon
// side of the durability contract. Writes are atomic: each checkpoint
// goes to a temp file in the same directory, is fsynced, then renamed
// over the previous snapshot, so a crash mid-checkpoint leaves the
// last good snapshot in place.
//
// The snapshot uses store format v2, whose per-dataset locking means
// a running checkpoint does not block writers on other datasets.
//
// Checkpoints are incremental: a frame cache shared across the
// checkpointer's lifetime means each periodic pass re-encodes only
// the datasets mutated since the previous one (dirty tracking by
// dataset version) and reuses the prior frames for clean ones. The
// on-disk format is unchanged — every snapshot file is still a
// complete, self-contained v2 stream.
type Checkpointer struct {
	p        *Platform
	dir      string
	interval time.Duration
	cache    *store.FrameCache
	// Logf reports checkpoint activity (default: silent).
	Logf func(format string, args ...any)

	mu   sync.Mutex // serializes Checkpoint calls
	stop chan struct{}
	done chan struct{}
}

// NewCheckpointer prepares a checkpointer over dir, creating the
// directory if needed. interval <= 0 disables the periodic loop
// (Checkpoint can still be called explicitly, e.g. at shutdown).
func (p *Platform) NewCheckpointer(dir string, interval time.Duration) (*Checkpointer, error) {
	if dir == "" {
		return nil, fmt.Errorf("core: checkpointer needs a data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: checkpointer: %w", err)
	}
	return &Checkpointer{p: p, dir: dir, interval: interval, cache: store.NewFrameCache()}, nil
}

// Path returns the snapshot file the checkpointer maintains.
func (c *Checkpointer) Path() string {
	return filepath.Join(c.dir, "store.snap")
}

// RestoreLatestContext loads the snapshot file into the platform's
// store if one exists, reporting whether a restore happened. Old v1
// snapshots restore transparently; the next checkpoint rewrites them
// as v2. Cancelling ctx aborts the load with the store unchanged.
func (c *Checkpointer) RestoreLatestContext(ctx context.Context) (bool, error) {
	f, err := os.Open(c.Path())
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("core: restore checkpoint: %w", err)
	}
	defer f.Close()
	if err := c.p.Store.RestoreContext(ctx, f); err != nil {
		return false, fmt.Errorf("core: restore checkpoint %s: %w", c.Path(), err)
	}
	c.logf("restored store from %s", c.Path())
	// The restore resharded every dataset to the store's configured
	// target (snapshot layout is decoupled from runtime parallelism);
	// log the resulting layout so the transition is visible in the
	// boot log.
	for _, st := range c.p.Store.Status() {
		c.logf("restored %s/%s: %d records in %d shards (ring gen %d)",
			st.Tenant, st.Dataset, st.Records, st.Shards, st.RingGen)
	}
	return true, nil
}

// CheckpointContext writes one snapshot now: temp file, fsync, atomic
// rename. Concurrent calls serialize. Only datasets mutated since
// the previous checkpoint are re-encoded; clean ones reuse their
// cached frames (the file is still a complete snapshot either way).
// Cancelling ctx abandons the temp file; the previous snapshot stays
// good (the atomic-rename contract is what makes aborting safe).
func (c *Checkpointer) CheckpointContext(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, err := os.CreateTemp(c.dir, "store-*.tmp")
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	hits0, misses0 := c.cache.Stats()
	if err := c.p.Store.SnapshotContext(ctx, f, store.WithFrameCache(c.cache)); err != nil {
		return fail(err)
	}
	hits1, misses1 := c.cache.Stats()
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.Path()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	// Fsync the directory too: the rename itself must survive power
	// loss before the checkpoint counts as durable.
	if d, err := os.Open(c.dir); err == nil {
		d.Sync()
		d.Close()
	}
	c.logf("checkpoint written to %s (%d frames re-encoded, %d reused)",
		c.Path(), misses1-misses0, hits1-hits0)
	return nil
}

// Start launches the periodic checkpoint loop. A checkpointer starts
// at most once; Close stops it.
func (c *Checkpointer) Start() {
	if c.interval <= 0 || c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		ticker := time.NewTicker(c.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := c.CheckpointContext(context.Background()); err != nil {
					c.logf("checkpoint failed: %v", err)
				}
			case <-c.stop:
				return
			}
		}
	}()
}

// CloseContext stops the periodic loop and writes a final checkpoint,
// so a graceful shutdown never loses acknowledged writes. ctx bounds
// the final snapshot: a daemon given a shutdown deadline stops
// encoding mid-pass and keeps the previous checkpoint instead of
// hanging past its grace period.
func (c *Checkpointer) CloseContext(ctx context.Context) error {
	if c.stop != nil {
		close(c.stop)
		<-c.done
		c.stop, c.done = nil, nil
	}
	return c.CheckpointContext(ctx)
}

// Checkpoint writes one snapshot without a deadline.
//
// Deprecated: use CheckpointContext.
func (c *Checkpointer) Checkpoint() error {
	return c.CheckpointContext(context.Background())
}

// RestoreLatest loads the latest snapshot without a deadline.
//
// Deprecated: use RestoreLatestContext.
func (c *Checkpointer) RestoreLatest() (bool, error) {
	return c.RestoreLatestContext(context.Background())
}

// Close shuts down with an unbounded final checkpoint.
//
// Deprecated: use CloseContext.
func (c *Checkpointer) Close() error {
	return c.CloseContext(context.Background())
}

func (c *Checkpointer) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}
