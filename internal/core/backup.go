package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/app"
)

// Platform backup: Symphony hosts everything designers create, so the
// platform can serialize its durable state — the proprietary data
// store and the published application configurations — and restore it
// into a fresh platform (over the same corpus seed). Interaction logs
// and ad state are operational, not configuration, and are excluded.

type backupDoc struct {
	Version int               `json:"version"`
	Store   json.RawMessage   `json:"store"`
	Apps    []json.RawMessage `json:"apps"`
}

// Backup serializes designers' durable state to w.
func (p *Platform) Backup(w io.Writer) error {
	var storeBuf bytes.Buffer
	if err := p.Store.Snapshot(&storeBuf); err != nil {
		return fmt.Errorf("core: backup: %w", err)
	}
	doc := backupDoc{Version: 1, Store: storeBuf.Bytes()}
	for _, id := range p.Registry.List() {
		a, _ := p.Registry.Get(id)
		data, err := app.Marshal(a)
		if err != nil {
			return fmt.Errorf("core: backup app %s: %w", id, err)
		}
		doc.Apps = append(doc.Apps, data)
	}
	return json.NewEncoder(w).Encode(doc)
}

// RestoreBackup loads a backup into this platform, replacing the
// store contents and re-publishing every application.
func (p *Platform) RestoreBackup(r io.Reader) error {
	var doc backupDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	if doc.Version != 1 {
		return fmt.Errorf("core: restore: unsupported backup version %d", doc.Version)
	}
	if err := p.Store.Restore(bytes.NewReader(doc.Store)); err != nil {
		return err
	}
	for _, raw := range doc.Apps {
		a, err := app.Unmarshal(raw)
		if err != nil {
			return fmt.Errorf("core: restore: %w", err)
		}
		if err := p.Registry.Publish(a); err != nil {
			return fmt.Errorf("core: restore app %s: %w", a.ID, err)
		}
	}
	return nil
}
