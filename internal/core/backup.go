package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/app"
)

// Platform backup: Symphony hosts everything designers create, so the
// platform can serialize its durable state — the proprietary data
// store and the published application configurations — and restore it
// into a fresh platform (over the same corpus seed). Interaction logs
// and ad state are operational, not configuration, and are excluded.

// backupDoc version 2 carries the store as an opaque byte blob
// (base64 in JSON) holding a framed store-format-v2 snapshot with
// serialized indexes. Version 1 carried the store's legacy v1 JSON
// document inline; RestoreBackup still reads it.
type backupDoc struct {
	Version int               `json:"version"`
	Store   []byte            `json:"store"`
	Apps    []json.RawMessage `json:"apps"`
}

// Backup serializes designers' durable state to w. It is an
// operator-invoked batch job without a request context, so the
// snapshot runs uncancellable.
func (p *Platform) Backup(w io.Writer) error {
	var storeBuf bytes.Buffer
	if err := p.Store.SnapshotContext(context.Background(), &storeBuf); err != nil {
		return fmt.Errorf("core: backup: %w", err)
	}
	doc := backupDoc{Version: 2, Store: storeBuf.Bytes()}
	for _, id := range p.Registry.List() {
		a, _ := p.Registry.Get(id)
		data, err := app.Marshal(a)
		if err != nil {
			return fmt.Errorf("core: backup app %s: %w", id, err)
		}
		doc.Apps = append(doc.Apps, data)
	}
	return json.NewEncoder(w).Encode(doc)
}

// RestoreBackup loads a backup into this platform, replacing the
// store contents and re-publishing every application. Both backup
// versions restore: v1 embedded the store as raw JSON, v2 embeds a
// framed binary snapshot; the store's restore reads either format.
func (p *Platform) RestoreBackup(r io.Reader) error {
	var raw struct {
		Version int               `json:"version"`
		Store   json.RawMessage   `json:"store"`
		Apps    []json.RawMessage `json:"apps"`
	}
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	doc := backupDoc{Version: raw.Version, Apps: raw.Apps}
	switch raw.Version {
	case 1:
		// v1 stored the snapshot JSON document inline.
		doc.Store = raw.Store
	case 2:
		if err := json.Unmarshal(raw.Store, &doc.Store); err != nil {
			return fmt.Errorf("core: restore: store blob: %w", err)
		}
	default:
		return fmt.Errorf("core: restore: unsupported backup version %d", raw.Version)
	}
	if err := p.Store.RestoreContext(context.Background(), bytes.NewReader(doc.Store)); err != nil {
		return err
	}
	for _, raw := range doc.Apps {
		a, err := app.Unmarshal(raw)
		if err != nil {
			return fmt.Errorf("core: restore: %w", err)
		}
		if err := p.Registry.Publish(a); err != nil {
			return fmt.Errorf("core: restore app %s: %w", a.ID, err)
		}
	}
	return nil
}
