package engine

import (
	"context"
	"testing"

	"repro/internal/webcorpus"
)

func benchEngine(b *testing.B) *Engine {
	b.Helper()
	return New(testCorpus)
}

func BenchmarkEngineWebSearch(b *testing.B) {
	e := benchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search(context.Background(), Request{Query: "review guide", Limit: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSiteRestricted(b *testing.B) {
	e := benchEngine(b)
	sites := []string{"ign.com", "gamespot.com", "teamxbox.com"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search(context.Background(), Request{Query: "review", Sites: sites, Limit: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineNewsFreshness(b *testing.B) {
	e := benchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search(context.Background(), Request{Query: "announcement news", Vertical: webcorpus.VerticalNews, Limit: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDidYouMean(b *testing.B) {
	e := benchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.DidYouMean("reviw guide")
	}
}
