package engine

import (
	"sort"
	"strings"
	"sync"
)

// Query suggestion: the paper's conclusion observes that per-app
// query logs become topic-specific relevance signals. Suggest powers
// the search-box autocomplete the design interface offers: prefix
// completion ranked by how often the continuation was issued, with
// the tie broken lexicographically for determinism.

// suggester maintains a prefix-count structure over logged queries.
// It is rebuilt lazily from the engine log and invalidated on write.
type suggester struct {
	mu     sync.Mutex
	counts map[string]int
	built  int // log length the structure was built from
}

// Suggest returns up to limit previously issued queries that extend
// prefix (case-insensitive), most frequent first. The prefix itself
// is never returned.
func (e *Engine) Suggest(prefix string, limit int) []string {
	if limit <= 0 {
		limit = 5
	}
	prefix = strings.ToLower(strings.TrimSpace(prefix))
	if prefix == "" {
		return nil
	}
	e.mu.Lock()
	if e.sugg == nil {
		e.sugg = &suggester{}
	}
	sg := e.sugg
	logLen := len(e.log)
	if sg.counts == nil || sg.built != logLen {
		counts := make(map[string]int, logLen)
		for _, entry := range e.log {
			q := strings.ToLower(strings.TrimSpace(entry.Query))
			if q != "" {
				counts[q]++
			}
		}
		sg.counts = counts
		sg.built = logLen
	}
	counts := sg.counts
	e.mu.Unlock()

	type cand struct {
		q string
		n int
	}
	var cands []cand
	for q, n := range counts {
		if q != prefix && strings.HasPrefix(q, prefix) {
			cands = append(cands, cand{q, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].q < cands[j].q
	})
	if len(cands) > limit {
		cands = cands[:limit]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.q
	}
	return out
}
