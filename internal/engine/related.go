package engine

import (
	"sort"
	"strings"

	"repro/internal/textproc"
)

// RelatedQueries returns queries from the log that share analyzed
// terms with q, ranked by (shared terms, frequency) — the "related
// searches" strip a hosted application can show under its results,
// another use of the per-application usage data the paper's
// conclusion highlights.
func (e *Engine) RelatedQueries(q string, limit int) []string {
	if limit <= 0 {
		limit = 5
	}
	qTerms := map[string]bool{}
	for _, t := range textproc.DefaultAnalyzer.AnalyzeTerms(q) {
		qTerms[t] = true
	}
	if len(qTerms) == 0 {
		return nil
	}
	norm := strings.ToLower(strings.TrimSpace(q))

	e.mu.Lock()
	freq := make(map[string]int)
	for _, entry := range e.log {
		lq := strings.ToLower(strings.TrimSpace(entry.Query))
		if lq != "" && lq != norm {
			freq[lq]++
		}
	}
	e.mu.Unlock()

	type cand struct {
		q       string
		overlap int
		n       int
	}
	var cands []cand
	for lq, n := range freq {
		overlap := 0
		for _, t := range textproc.DefaultAnalyzer.AnalyzeTerms(lq) {
			if qTerms[t] {
				overlap++
			}
		}
		if overlap > 0 {
			cands = append(cands, cand{lq, overlap, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].overlap != cands[j].overlap {
			return cands[i].overlap > cands[j].overlap
		}
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].q < cands[j].q
	})
	if len(cands) > limit {
		cands = cands[:limit]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.q
	}
	return out
}
