package engine

import (
	"strings"

	"repro/internal/webcorpus"
)

// DidYouMean corrects a query against the web vertical's title terms:
// each token with no hits is replaced by its best spell suggestion.
// It returns the corrected query and whether anything changed, the
// "did you mean" line a hosted application shows above empty results.
func (e *Engine) DidYouMean(query string) (string, bool) {
	ix := e.perVert[webcorpus.VerticalWeb]
	if ix == nil {
		return query, false
	}
	words := strings.Fields(query)
	changed := false
	for i, w := range words {
		sugs := ix.SuggestTerms("title", w, 1)
		if len(sugs) > 0 {
			words[i] = sugs[0]
			changed = true
		}
	}
	if !changed {
		return query, false
	}
	return strings.Join(words, " "), true
}
