package engine

import (
	"context"
	"testing"

	"repro/internal/webcorpus"
)

func TestRelatedQueries(t *testing.T) {
	e := New(webcorpus.Generate(webcorpus.Config{Seed: 61, PagesPerSite: 4}))
	issue := func(q string, times int) {
		for i := 0; i < times; i++ {
			e.Search(context.Background(), Request{Query: q})
		}
	}
	issue("zelda walkthrough", 4)
	issue("zelda review", 2)
	issue("halo review", 3)
	issue("wine tasting", 5)

	rel := e.RelatedQueries("zelda games", 5)
	if len(rel) < 2 {
		t.Fatalf("related = %v", rel)
	}
	if rel[0] != "zelda walkthrough" || rel[1] != "zelda review" {
		t.Errorf("ranking = %v", rel)
	}
	for _, r := range rel {
		if r == "wine tasting" {
			t.Error("unrelated query surfaced")
		}
	}
}

func TestRelatedQueriesExcludesSelf(t *testing.T) {
	e := New(webcorpus.Generate(webcorpus.Config{Seed: 62, PagesPerSite: 4}))
	e.Search(context.Background(), Request{Query: "halo review"})
	e.Search(context.Background(), Request{Query: "halo trailer"})
	for _, r := range e.RelatedQueries("Halo Review", 5) {
		if r == "halo review" {
			t.Fatal("query suggested itself")
		}
	}
}

func TestRelatedQueriesStemMatch(t *testing.T) {
	e := New(webcorpus.Generate(webcorpus.Config{Seed: 63, PagesPerSite: 4}))
	e.Search(context.Background(), Request{Query: "game reviews"})
	rel := e.RelatedQueries("best review", 5)
	if len(rel) != 1 || rel[0] != "game reviews" {
		t.Fatalf("stemmed relation missed: %v", rel)
	}
}

func TestRelatedQueriesEmpty(t *testing.T) {
	e := New(webcorpus.Generate(webcorpus.Config{Seed: 64, PagesPerSite: 4}))
	if rel := e.RelatedQueries("", 5); rel != nil {
		t.Fatalf("empty query related = %v", rel)
	}
	if rel := e.RelatedQueries("the of", 5); rel != nil {
		t.Fatalf("stopword query related = %v", rel)
	}
}
