package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/webcorpus"
)

var testCorpus = webcorpus.Generate(webcorpus.Config{Seed: 42})

func newEngine(t testing.TB) *Engine {
	t.Helper()
	return New(testCorpus)
}

func TestAllVerticalsIndexed(t *testing.T) {
	e := newEngine(t)
	total := 0
	for _, v := range webcorpus.Verticals {
		n := e.DocCount(v)
		if n == 0 {
			t.Errorf("vertical %s empty", v)
		}
		total += n
	}
	if total != len(testCorpus.Pages) {
		t.Errorf("indexed %d docs, corpus has %d", total, len(testCorpus.Pages))
	}
}

func TestSearchFindsEntity(t *testing.T) {
	e := newEngine(t)
	entity := testCorpus.Pages[0].Entity
	rs, err := e.Search(context.Background(), Request{Query: entity, Vertical: testCorpus.Pages[0].Vertical})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatalf("no results for %q", entity)
	}
	found := false
	for _, r := range rs {
		if r.Entity == entity {
			found = true
		}
	}
	if !found {
		t.Errorf("entity %q not in top results", entity)
	}
}

func TestDefaultVerticalIsWeb(t *testing.T) {
	e := newEngine(t)
	rs, err := e.Search(context.Background(), Request{Query: "review"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Vertical != webcorpus.VerticalWeb {
			t.Errorf("got vertical %s", r.Vertical)
		}
	}
}

func TestUnknownVertical(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Search(context.Background(), Request{Query: "x", Vertical: "maps"}); err == nil {
		t.Fatal("unknown vertical accepted")
	}
}

func TestSiteRestriction(t *testing.T) {
	e := newEngine(t)
	sites := []string{"ign.com", "gamespot.com", "teamxbox.com"}
	entity := gameEntity(t)
	rs, err := e.Search(context.Background(), Request{Query: entity, Sites: sites, Limit: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Skip("no restricted results for this entity")
	}
	allowed := map[string]bool{}
	for _, s := range sites {
		allowed[s] = true
	}
	for _, r := range rs {
		if !allowed[r.Site] {
			t.Errorf("site restriction leaked %s", r.Site)
		}
	}
}

func gameEntity(t testing.TB) string {
	t.Helper()
	for _, p := range testCorpus.Pages {
		if p.Topic == webcorpus.TopicGames && p.Vertical == webcorpus.VerticalWeb && p.Site == "ign.com" {
			return p.Entity
		}
	}
	t.Fatal("no game page on ign.com in corpus")
	return ""
}

func TestQueryAugmentation(t *testing.T) {
	e := newEngine(t)
	entity := gameEntity(t)
	plain, _ := e.Search(context.Background(), Request{Query: entity, Limit: 10})
	augmented, _ := e.Search(context.Background(), Request{Query: entity, AddTerms: []string{"review"}, Limit: 10})
	if len(plain) == 0 || len(augmented) == 0 {
		t.Skip("not enough results to compare")
	}
	// Augmented top result should mention "review" more often in the
	// title; at minimum results may differ in order.
	reviewHits := 0
	for _, r := range augmented {
		if strings.Contains(strings.ToLower(r.Title), "review") {
			reviewHits++
		}
	}
	if reviewHits == 0 {
		t.Error("augmentation with 'review' surfaced no review pages")
	}
}

func TestPreferURLsReorders(t *testing.T) {
	e := newEngine(t)
	entity := gameEntity(t)
	base, _ := e.Search(context.Background(), Request{Query: entity, Limit: 10})
	if len(base) < 2 {
		t.Skip("need at least 2 results")
	}
	// Prefer the last result; it should move to the front (its score
	// is multiplied well past the leader's).
	target := base[len(base)-1].URL
	re, _ := e.Search(context.Background(), Request{Query: entity, Limit: 10, PreferURLs: []string{target}})
	if re[0].URL != target {
		t.Errorf("preferred URL %s not first (got %s)", target, re[0].URL)
	}
}

func TestPagination(t *testing.T) {
	e := newEngine(t)
	all, _ := e.Search(context.Background(), Request{Query: "review", Limit: 10})
	p2, _ := e.Search(context.Background(), Request{Query: "review", Limit: 5, Offset: 5})
	if len(all) != 10 || len(p2) != 5 {
		t.Fatalf("sizes %d %d", len(all), len(p2))
	}
	if all[5].URL != p2[0].URL {
		t.Error("offset page misaligned")
	}
}

func TestNewsFreshness(t *testing.T) {
	e := newEngine(t)
	rs, err := e.Search(context.Background(), Request{Query: "announcement news", Vertical: webcorpus.VerticalNews, Limit: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Skip("no news hits")
	}
	for _, r := range rs {
		if r.Vertical != webcorpus.VerticalNews {
			t.Errorf("non-news result %s", r.URL)
		}
	}
}

func TestQueryLogRecords(t *testing.T) {
	e := newEngine(t)
	e.Search(context.Background(), Request{Query: "zelda"})
	e.RecordClick("zelda", "http://ign.com/web/some-page-1")
	log := e.Log()
	if len(log) != 2 {
		t.Fatalf("log has %d entries", len(log))
	}
	if log[1].Site != "ign.com" {
		t.Errorf("click site = %q", log[1].Site)
	}
	if log[1].ClickedURL == "" || log[0].ClickedURL != "" {
		t.Error("click attribution wrong")
	}
}

func TestSearchDeterministic(t *testing.T) {
	e := newEngine(t)
	a, _ := e.Search(context.Background(), Request{Query: "review guide", Limit: 10})
	b, _ := e.Search(context.Background(), Request{Query: "review guide", Limit: 10})
	if len(a) != len(b) {
		t.Fatal("result counts differ")
	}
	for i := range a {
		if a[i].URL != b[i].URL {
			t.Fatal("nondeterministic ranking")
		}
	}
}

// TestQueryMatchesSeparateCalls: the session-backed Query must
// return exactly what separate Search + per-call aggregation would,
// while reusing one statistics pass.
func TestQueryMatchesSeparateCalls(t *testing.T) {
	e := newEngine(t)
	req := Request{Query: "review", Limit: 5}
	page, err := e.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.Search(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Results) != len(plain) {
		t.Fatalf("page has %d results, Search returned %d", len(page.Results), len(plain))
	}
	for i := range plain {
		if page.Results[i].URL != plain[i].URL || page.Results[i].Score != plain[i].Score {
			t.Fatalf("result %d: page %s@%v, search %s@%v",
				i, page.Results[i].URL, page.Results[i].Score, plain[i].URL, plain[i].Score)
		}
	}
	if page.Total < len(page.Results) {
		t.Fatalf("total %d < page results %d", page.Total, len(page.Results))
	}
	sum := 0
	for _, f := range page.SiteFacets {
		if f.N <= 0 {
			t.Fatalf("non-positive facet %v", f)
		}
		sum += f.N
	}
	if sum != page.Total {
		t.Fatalf("site facet sum %d != total %d (every page stores its site)", sum, page.Total)
	}
	if _, err := e.Query(context.Background(), Request{Query: "x", Vertical: "maps"}); err == nil {
		t.Fatal("unknown vertical should error")
	}
}

func TestQueryCancelledContext(t *testing.T) {
	e := newEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Query(ctx, Request{Query: testCorpus.Pages[0].Entity}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Query under cancelled ctx = %v, want context.Canceled", err)
	}
	// A fresh background context has no deadline to hit: the same
	// request must still answer in full.
	page, err := e.Query(context.Background(), Request{Query: testCorpus.Pages[0].Entity, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if page.Total == 0 {
		t.Fatal("Query returned no hits")
	}
}
