package engine

import "repro/internal/jsonw"

// EncodeJSON appends the response's JSON encoding to w, byte-identical
// to encoding/json marshalling of the same value (TestEncodeJSONParity
// pins this, including nil-slice → null). It is the allocation-free
// alternative to json.Marshal on the serving hot path: field names and
// string escaping are emitted directly into the writer's pooled buffer
// with no reflection and no intermediate []byte.
//
// Any field added to Response, Result, Stats or index.FacetCount must
// be added here too; the parity test fails on a mismatch.
func (r *Response) EncodeJSON(w *jsonw.Writer) {
	w.BeginObject()
	w.Name("Results")
	if r.Results == nil {
		w.Null()
	} else {
		w.BeginArray()
		for i := range r.Results {
			res := &r.Results[i]
			w.BeginObject()
			w.Name("URL")
			w.String(res.URL)
			w.Name("Site")
			w.String(res.Site)
			w.Name("Title")
			w.String(res.Title)
			w.Name("Snippet")
			w.String(res.Snippet)
			w.Name("Score")
			w.Float(res.Score)
			w.Name("Vertical")
			w.String(string(res.Vertical))
			w.Name("Entity")
			w.String(res.Entity)
			w.EndObject()
		}
		w.EndArray()
	}
	w.Name("Total")
	w.Int(r.Total)
	w.Name("SiteFacets")
	if r.SiteFacets == nil {
		w.Null()
	} else {
		w.BeginArray()
		for _, f := range r.SiteFacets {
			w.BeginObject()
			w.Name("Value")
			w.String(f.Value)
			w.Name("N")
			w.Int(f.N)
			w.EndObject()
		}
		w.EndArray()
	}
	w.Name("Stats")
	w.BeginObject()
	w.Name("Candidates")
	w.Int(r.Stats.Candidates)
	w.EndObject()
	w.EndObject()
}
