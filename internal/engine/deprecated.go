// Deprecated pre-context entry points, kept for one release so
// downstream callers can migrate at their own pace. Everything here
// delegates to the context-first API with context.Background(); the
// ctx-gate (scripts/ctxgate.sh) exempts this file, so additions here
// do not need a context parameter — but nothing new should be added.
package engine

import "context"

// Page is the former name of Response.
//
// Deprecated: use Response.
type Page = Response

// SearchPage answers a request in full without cancellation.
//
// Deprecated: use Query.
func (e *Engine) SearchPage(req Request) (Page, error) {
	req.ResultsOnly = false
	return e.Query(context.Background(), req)
}
