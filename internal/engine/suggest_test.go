package engine

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/webcorpus"
)

func suggestEngine(t testing.TB) *Engine {
	t.Helper()
	e := New(webcorpus.Generate(webcorpus.Config{Seed: 51, PagesPerSite: 4}))
	issue := func(q string, times int) {
		for i := 0; i < times; i++ {
			if _, err := e.Search(context.Background(), Request{Query: q}); err != nil {
				t.Fatal(err)
			}
		}
	}
	issue("zelda walkthrough", 5)
	issue("zelda review", 3)
	issue("zelda spirit tracks", 1)
	issue("halo wars", 4)
	return e
}

func TestSuggestRanksByFrequency(t *testing.T) {
	e := suggestEngine(t)
	got := e.Suggest("zelda", 3)
	want := []string{"zelda walkthrough", "zelda review", "zelda spirit tracks"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Suggest = %v, want %v", got, want)
	}
}

func TestSuggestCaseInsensitiveAndTrimmed(t *testing.T) {
	e := suggestEngine(t)
	got := e.Suggest("  ZeLdA", 2)
	if len(got) != 2 || got[0] != "zelda walkthrough" {
		t.Fatalf("Suggest = %v", got)
	}
}

func TestSuggestExcludesExactPrefix(t *testing.T) {
	e := suggestEngine(t)
	for _, s := range e.Suggest("halo wars", 5) {
		if s == "halo wars" {
			t.Fatal("exact query suggested back")
		}
	}
}

func TestSuggestEmptyPrefix(t *testing.T) {
	e := suggestEngine(t)
	if got := e.Suggest("", 5); got != nil {
		t.Fatalf("empty prefix = %v", got)
	}
	if got := e.Suggest("zzznothing", 5); len(got) != 0 {
		t.Fatalf("no-match prefix = %v", got)
	}
}

func TestSuggestSeesNewQueries(t *testing.T) {
	e := suggestEngine(t)
	if got := e.Suggest("wine", 5); len(got) != 0 {
		t.Fatalf("unexpected suggestions %v", got)
	}
	e.Search(context.Background(), Request{Query: "wine tasting"})
	got := e.Suggest("wine", 5)
	if len(got) != 1 || got[0] != "wine tasting" {
		t.Fatalf("new query not suggested: %v", got)
	}
}

func TestSuggestDefaultLimit(t *testing.T) {
	e := New(webcorpus.Generate(webcorpus.Config{Seed: 52, PagesPerSite: 4}))
	for i := 0; i < 10; i++ {
		e.Search(context.Background(), Request{Query: "common prefix " + string(rune('a'+i))})
	}
	if got := e.Suggest("common", 0); len(got) != 5 {
		t.Fatalf("default limit = %d", len(got))
	}
}
