package engine

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/index"
	"repro/internal/jsonw"
	"repro/internal/webcorpus"
)

// TestEncodeJSONParity pins EncodeJSON to encoding/json byte for byte,
// on hand-built edge cases and on a live response from a real engine.
func TestEncodeJSONParity(t *testing.T) {
	cases := []Response{
		{}, // all zero: nil slices must encode as null
		{
			Results: []Result{}, // empty non-nil encodes as []
			Total:   7,
		},
		{
			Results: []Result{
				{
					URL:      "https://ex.com/a?x=1&y=2",
					Site:     "ex.com",
					Title:    "tricky <title> & \"quotes\"",
					Snippet:  "snippet with\nnewline and \ttab",
					Score:    1.0 / 3.0,
					Vertical: webcorpus.VerticalNews,
					Entity:   "",
				},
				{URL: "b", Score: 1e-9}, // exercises 'e' float format
			},
			Total:      42,
			SiteFacets: []index.FacetCount{{Value: "ex.com", N: 3}, {Value: "", N: 0}},
			Stats:      Stats{Candidates: 9},
		},
	}
	for i, resp := range cases {
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		w := jsonw.Get()
		resp.EncodeJSON(w)
		if got := string(w.Bytes()); got != string(want) {
			t.Errorf("case %d:\n got %s\nwant %s", i, got, want)
		}
		jsonw.Put(w)
	}
}

func TestEncodeJSONParityLive(t *testing.T) {
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 11})
	e := New(corpus)
	resp, err := e.Query(context.Background(), Request{Query: "the", Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	w := jsonw.Get()
	defer jsonw.Put(w)
	resp.EncodeJSON(w)
	if got := string(w.Bytes()); got != string(want) {
		t.Errorf("live response:\n got %s\nwant %s", got, want)
	}
}
