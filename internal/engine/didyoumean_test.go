package engine

import (
	"strings"
	"testing"

	"repro/internal/webcorpus"
)

func TestDidYouMeanCorrectsEntityTypo(t *testing.T) {
	e := newEngine(t)
	// Take a real entity word from the corpus and misspell it.
	entity := gameEntity(t)
	word := strings.ToLower(strings.Fields(entity)[0])
	if len(word) < 4 {
		t.Skip("entity word too short to misspell safely")
	}
	typo := word[:len(word)-1] + "q" // replace last letter
	corrected, changed := e.DidYouMean(typo)
	if !changed {
		t.Fatalf("typo %q not corrected", typo)
	}
	// The correction must be an indexed word at distance <= 2; most
	// often the original word itself.
	if corrected == typo {
		t.Fatalf("corrected to itself: %q", corrected)
	}
}

func TestDidYouMeanLeavesGoodQueriesAlone(t *testing.T) {
	e := newEngine(t)
	entity := strings.ToLower(gameEntity(t))
	got, changed := e.DidYouMean(entity)
	if changed || got != entity {
		t.Fatalf("valid query altered: %q -> %q", entity, got)
	}
}

func TestDidYouMeanMixedQuery(t *testing.T) {
	e := newEngine(t)
	entity := gameEntity(t)
	word := strings.ToLower(strings.Fields(entity)[0])
	if len(word) < 4 {
		t.Skip("short entity")
	}
	typo := word[:len(word)-1] + "q"
	query := typo + " review"
	corrected, changed := e.DidYouMean(query)
	if !changed {
		t.Fatalf("mixed query not corrected: %q", query)
	}
	if !strings.HasSuffix(corrected, " review") {
		t.Fatalf("valid word altered: %q", corrected)
	}
}

func TestDidYouMeanGibberish(t *testing.T) {
	e := newEngine(t)
	got, changed := e.DidYouMean("xqzvbnmtr wplkjh")
	if changed {
		t.Fatalf("gibberish 'corrected' to %q", got)
	}
	_ = webcorpus.VerticalWeb
}
