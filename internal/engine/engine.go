// Package engine implements the general-purpose search engine
// substrate standing in for Bing in the paper's prototype.
//
// It exposes the four built-in services of §II-A — web, image, video
// and news search — with the customization hooks the paper lists:
// site restriction, automatic query augmentation (added terms), and
// URL-preference reordering. It also keeps a query/click log, which
// feeds both Site Suggest [paper ref 2] and the paper's concluding
// observation that per-application usage data can become
// community-specific relevance signals.
package engine

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"

	"repro/internal/index"
	"repro/internal/textproc"
	"repro/internal/webcorpus"
)

// Request is one search call against a vertical.
type Request struct {
	Query    string
	Vertical webcorpus.Vertical
	// Sites, when non-empty, restricts results to these domains
	// (Google-Custom-style site restriction).
	Sites []string
	// AddTerms are appended to the user query before retrieval,
	// reproducing "automatically add terms to an input query".
	AddTerms []string
	// PreferURLs get a rank boost, reproducing "reorder search results
	// to give preference to some URLs".
	PreferURLs []string
	Limit      int
	Offset     int
	// ResultsOnly skips the page aggregates (total count, site
	// facets), leaving Response.Total and Response.SiteFacets zero.
	// The Search convenience view sets it so callers that only want
	// ranked hits never pay for counting and faceting.
	ResultsOnly bool
}

// Result is one engine hit.
type Result struct {
	URL      string
	Site     string
	Title    string
	Snippet  string
	Score    float64
	Vertical webcorpus.Vertical
	Entity   string
}

// Engine is the simulated general search engine.
type Engine struct {
	corpus  *webcorpus.Corpus
	perVert map[webcorpus.Vertical]*index.Index
	quality map[string]float64

	mu   sync.Mutex
	log  []LogEntry
	sugg *suggester
}

// LogEntry records one query and, when the end user clicked, the
// clicked site. Site Suggest mines these.
type LogEntry struct {
	Query      string
	Vertical   webcorpus.Vertical
	ClickedURL string
	Site       string
}

// Option configures New.
type Option func(*settings)

type settings struct {
	indexOpts []index.Option
}

// WithIndexShards shards every vertical's index n ways. The default
// (index's own auto sizing) is right for production; benchmarks set it
// explicitly so fan-out behaviour is fixed regardless of the host.
func WithIndexShards(n int) Option {
	return func(s *settings) { s.indexOpts = append(s.indexOpts, index.WithShards(n)) }
}

// New indexes the corpus into per-vertical indexes.
func New(corpus *webcorpus.Corpus, opts ...Option) *Engine {
	var cfg settings
	for _, o := range opts {
		o(&cfg)
	}
	e := &Engine{
		corpus:  corpus,
		perVert: make(map[webcorpus.Vertical]*index.Index),
		quality: make(map[string]float64),
	}
	for _, v := range webcorpus.Verticals {
		ix := index.New(cfg.indexOpts...)
		ix.SetFieldOptions("title", index.FieldOptions{Boost: 2.5})
		ix.SetFieldOptions("body", index.FieldOptions{Boost: 1})
		ix.SetFieldOptions("site", index.FieldOptions{Analyzer: textproc.KeywordAnalyzer})
		e.perVert[v] = ix
	}
	for _, s := range corpus.Sites {
		e.quality[s.Domain] = s.Quality
	}
	for _, p := range corpus.Pages {
		doc := index.Document{
			ID: p.URL,
			Fields: map[string]string{
				"title": p.Title,
				"body":  p.Body,
				"site":  p.Site,
			},
			Stored: map[string]string{
				"url":    p.URL,
				"site":   p.Site,
				"title":  p.Title,
				"entity": p.Entity,
				"day":    fmt.Sprintf("%d", p.PublishedDay),
			},
		}
		// Indexing the generated corpus cannot fail (IDs are URLs and
		// never empty); a failure here is a programming error.
		if err := e.perVert[p.Vertical].Add(doc); err != nil {
			panic(err)
		}
	}
	return e
}

// prepare normalizes the request and builds the index query it
// retrieves with: free-text match over title/body plus the site
// restriction, with the effective result limit resolved.
func (e *Engine) prepare(req *Request) (*index.Index, index.Query, int, error) {
	if req.Vertical == "" {
		req.Vertical = webcorpus.VerticalWeb
	}
	ix, ok := e.perVert[req.Vertical]
	if !ok {
		return nil, nil, 0, fmt.Errorf("engine: unknown vertical %q", req.Vertical)
	}
	queryText := req.Query
	if len(req.AddTerms) > 0 {
		queryText = queryText + " " + strings.Join(req.AddTerms, " ")
	}
	q := index.Query(index.MatchQuery{Fields: []string{"title", "body"}, Text: queryText})
	if len(req.Sites) > 0 {
		var should []index.Query
		for _, s := range req.Sites {
			should = append(should, index.TermQuery{Field: "site", Term: s})
		}
		q = index.BoolQuery{Must: []index.Query{q}, Should: nil, MustNot: nil}
		q = index.BoolQuery{Must: []index.Query{q, orQuery(should)}}
	}
	limit := req.Limit
	if limit <= 0 {
		limit = 10
	}
	return ix, q, limit, nil
}

// rerank applies the engine-level signals — site quality, URL
// preference, news freshness — to raw index hits, then paginates.
func (e *Engine) rerank(req Request, raw []index.Result, limit int) []Result {
	prefer := make(map[string]bool, len(req.PreferURLs))
	for _, u := range req.PreferURLs {
		prefer[u] = true
	}
	out := make([]Result, 0, len(raw))
	for _, r := range raw {
		site := r.Stored["site"]
		score := r.Score * (0.5 + e.quality[site])
		if prefer[r.ID] {
			score *= 4
		}
		if req.Vertical == webcorpus.VerticalNews {
			// News ranks fresher stories higher.
			var day int
			fmt.Sscanf(r.Stored["day"], "%d", &day)
			score *= 1 + 0.3*float64(day)/365
		}
		out = append(out, Result{
			URL:      r.ID,
			Site:     site,
			Title:    r.Stored["title"],
			Snippet:  r.Snippet,
			Score:    score,
			Vertical: req.Vertical,
			Entity:   r.Stored["entity"],
		})
	}
	// (score desc, URL asc) is a total order — URLs are unique — so the
	// reflection-free sort is bit-identical to the sort.Slice it replaced.
	slices.SortFunc(out, func(a, b Result) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		return strings.Compare(a.URL, b.URL)
	})
	if req.Offset > 0 {
		if req.Offset >= len(out) {
			return nil
		}
		out = out[req.Offset:]
	}
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

func (e *Engine) logQuery(req Request) {
	e.mu.Lock()
	e.log = append(e.log, LogEntry{Query: req.Query, Vertical: req.Vertical})
	e.mu.Unlock()
}

// Response is the single answer shape of the engine: the ranked hits
// plus, unless the request opted out, the aggregates every results
// page shows around them — the total match count and the per-site
// facet sidebar.
type Response struct {
	Results []Result
	// Total counts every matching document, not just the page. Zero
	// when the request set ResultsOnly.
	Total int
	// SiteFacets counts matches per site, for the restriction sidebar.
	// Nil when the request set ResultsOnly.
	SiteFacets []index.FacetCount
	Stats      Stats
}

// Stats reports how the engine answered a request.
type Stats struct {
	// Candidates is how many raw index hits entered reranking, before
	// quality/preference reordering and pagination.
	Candidates int
}

// Query answers one end-user request in full: ranked results and,
// unless req.ResultsOnly is set, total hit count and site facets.
// Everything runs through one index.Session, so the document
// frequencies and field statistics of the shared query are aggregated
// across shards once, not three times. Cancelling ctx aborts the
// index evaluation within one posting block and returns ctx.Err().
func (e *Engine) Query(ctx context.Context, req Request) (Response, error) {
	ix, q, limit, err := e.prepare(&req)
	if err != nil {
		return Response{}, err
	}
	sess := ix.Session()
	defer sess.Release()
	// Over-fetch so quality/preference reordering has candidates. The
	// candidate pool depends only on limit+offset so that paginated
	// requests reorder a consistent set.
	raw, err := sess.SearchContext(ctx, q, index.SearchOptions{Limit: (limit + req.Offset) * 3, SnippetField: "body"})
	if err != nil {
		return Response{}, err
	}
	resp := Response{
		Results: e.rerank(req, raw, limit),
		Stats:   Stats{Candidates: len(raw)},
	}
	if !req.ResultsOnly {
		if resp.Total, err = sess.CountContext(ctx, q, nil); err != nil {
			return Response{}, err
		}
		if resp.SiteFacets, err = sess.FacetsContext(ctx, q, "site", nil); err != nil {
			return Response{}, err
		}
	}
	if resp.Results == nil && req.Offset > 0 {
		// Offset past the last hit: the aggregates still answer, but
		// no log entry, matching the pre-redesign behaviour of both
		// Search and SearchPage.
		return resp, nil
	}
	e.logQuery(req)
	return resp, nil
}

// Search runs a request against its vertical and returns only the
// ranked hits. It is a thin view over Query with ResultsOnly set, so
// the aggregate work (count, facets) is skipped.
func (e *Engine) Search(ctx context.Context, req Request) ([]Result, error) {
	req.ResultsOnly = true
	resp, err := e.Query(ctx, req)
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

func orQuery(qs []index.Query) index.Query {
	return index.BoolQuery{Should: qs}
}

// RecordClick logs that the end user clicked url for query. The site
// is derived from the URL host.
func (e *Engine) RecordClick(query, url string) {
	site := url
	if i := strings.Index(site, "://"); i >= 0 {
		site = site[i+3:]
	}
	if i := strings.IndexByte(site, '/'); i >= 0 {
		site = site[:i]
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.log = append(e.log, LogEntry{Query: query, ClickedURL: url, Site: site})
}

// Log returns a copy of the query/click log.
func (e *Engine) Log() []LogEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]LogEntry, len(e.log))
	copy(out, e.log)
	return out
}

// AttachCache connects every vertical's index to a shared
// cross-request cache (see index.Cache). Each vertical gets its own
// key namespace; nil is a no-op so callers can pass an unconfigured
// cache straight through.
func (e *Engine) AttachCache(c *index.Cache) {
	if c == nil {
		return
	}
	for _, ix := range e.perVert {
		ix.AttachCache(c)
	}
}

// Corpus exposes the underlying synthetic web (used by the crawler
// substrate and tests).
func (e *Engine) Corpus() *webcorpus.Corpus { return e.corpus }

// DocCount returns the number of documents indexed in a vertical.
func (e *Engine) DocCount(v webcorpus.Vertical) int {
	ix, ok := e.perVert[v]
	if !ok {
		return 0
	}
	return ix.Len()
}
