package social

import (
	"testing"

	"repro/internal/source"
)

func TestSaveListDelete(t *testing.T) {
	hub := NewHub()
	b := hub.Board("gamerqueen")
	s1 := b.Save("c1", "zelda under 30", "Cheap Zelda")
	s2 := b.Save("c2", "halo", "Halo stuff")
	if s1.ID == s2.ID {
		t.Fatal("IDs collide")
	}
	saved := b.Saved()
	if len(saved) != 2 || saved[0].ID != s1.ID {
		t.Fatalf("saved = %+v", saved)
	}
	if err := b.Delete(s1.ID, "someone-else"); err == nil {
		t.Fatal("non-owner deleted a saved search")
	}
	if err := b.Delete(s1.ID, "c1"); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(s1.ID, "c1"); err == nil {
		t.Fatal("double delete accepted")
	}
	if len(b.Saved()) != 1 {
		t.Fatal("delete did not remove")
	}
}

func TestBoardsIsolatedPerApp(t *testing.T) {
	hub := NewHub()
	hub.Board("a").Save("c", "q", "l")
	if got := len(hub.Board("b").Saved()); got != 0 {
		t.Fatalf("board b has %d searches", got)
	}
	// Same app returns the same board.
	if hub.Board("a") != hub.Board("a") {
		t.Fatal("board identity not stable")
	}
}

func TestVotes(t *testing.T) {
	b := NewHub().Board("a")
	if got := b.Vote("http://x.example", +1); got != 1 {
		t.Fatalf("vote = %d", got)
	}
	b.Vote("http://x.example", +5) // clamped to +1
	if got := b.Votes("http://x.example"); got != 2 {
		t.Fatalf("votes = %d", got)
	}
	b.Vote("http://x.example", -1)
	if got := b.Votes("http://x.example"); got != 1 {
		t.Fatalf("votes after down = %d", got)
	}
	if got := b.Votes("http://unseen.example"); got != 0 {
		t.Fatalf("unseen votes = %d", got)
	}
}

func TestRerankByVotes(t *testing.T) {
	b := NewHub().Board("a")
	items := []source.Item{
		{"url": "http://first.example", "title": "engine-first"},
		{"url": "http://second.example", "title": "engine-second"},
		{"url": "http://third.example", "title": "engine-third"},
	}
	b.Vote("http://third.example", +1)
	b.Vote("http://third.example", +1)
	b.Vote("http://second.example", +1)
	got := b.Rerank(items, "url")
	if got[0]["url"] != "http://third.example" || got[1]["url"] != "http://second.example" {
		t.Fatalf("rerank = %v", got)
	}
	// Original slice untouched.
	if items[0]["url"] != "http://first.example" {
		t.Fatal("rerank mutated input")
	}
}

func TestRerankStableOnTies(t *testing.T) {
	b := NewHub().Board("a")
	items := []source.Item{
		{"url": "u1"}, {"url": "u2"}, {"url": "u3"},
	}
	got := b.Rerank(items, "url")
	for i := range items {
		if got[i]["url"] != items[i]["url"] {
			t.Fatal("tie order changed")
		}
	}
}
