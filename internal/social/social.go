// Package social implements the paper's future-work item "adding
// support for social search features": saved searches shared within
// an application's community, and community votes on results that
// feed a re-ranking boost — the topic-specific relevance signal the
// paper's conclusion anticipates.
package social

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/source"
)

// SavedSearch is a query a community member shared.
type SavedSearch struct {
	ID    string
	App   string
	Owner string
	Query string
	Label string
}

// Board holds one application's community state.
type Board struct {
	mu       sync.Mutex
	searches map[string]SavedSearch
	nextID   int
	// votes[url] = net votes for a result URL within this app.
	votes map[string]int
}

// Hub manages boards per application.
type Hub struct {
	mu     sync.Mutex
	boards map[string]*Board
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{boards: make(map[string]*Board)}
}

// Board returns (creating) the board for an app.
func (h *Hub) Board(appID string) *Board {
	h.mu.Lock()
	defer h.mu.Unlock()
	b, ok := h.boards[appID]
	if !ok {
		b = &Board{searches: make(map[string]SavedSearch), votes: make(map[string]int)}
		h.boards[appID] = b
	}
	return b
}

// Save shares a search with the community, returning its ID.
func (b *Board) Save(owner, query, label string) SavedSearch {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	s := SavedSearch{
		ID:    fmt.Sprintf("s%d", b.nextID),
		Owner: owner,
		Query: query,
		Label: label,
	}
	b.searches[s.ID] = s
	return s
}

// Delete removes a saved search; only its owner may delete it.
func (b *Board) Delete(id, actor string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.searches[id]
	if !ok {
		return fmt.Errorf("social: no saved search %q", id)
	}
	if s.Owner != actor {
		return fmt.Errorf("social: %s does not own search %q", actor, id)
	}
	delete(b.searches, id)
	return nil
}

// Saved lists saved searches sorted by ID.
func (b *Board) Saved() []SavedSearch {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]SavedSearch, 0, len(b.searches))
	for _, s := range b.searches {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Vote applies a community vote (+1 / -1) to a result URL.
func (b *Board) Vote(url string, delta int) int {
	if delta > 0 {
		delta = 1
	} else if delta < 0 {
		delta = -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.votes[url] += delta
	return b.votes[url]
}

// Votes returns the net votes for a URL.
func (b *Board) Votes(url string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.votes[url]
}

// Rerank stably reorders items so that community votes act as a
// primary signal bucketed on top of the original relevance order:
// items are sorted by vote count descending, ties keep engine order.
func (b *Board) Rerank(items []source.Item, urlField string) []source.Item {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]source.Item, len(items))
	copy(out, items)
	sort.SliceStable(out, func(i, j int) bool {
		return b.votes[out[i][urlField]] > b.votes[out[j][urlField]]
	})
	return out
}
