// Package sitesuggest implements the paper's Site Suggest feature
// (§II-A, citing Fuxman, Tsaparas, Kannan, Agrawal, "Using the wisdom
// of the crowds for keyword generation", WWW'08): given the set of
// sites an application designer has already selected for a
// site-restricted source, suggest additional related sites.
//
// Following the cited approach, relatedness is mined from the search
// engine's query/click log: two sites are related when the same
// queries lead users to click on both. We score a candidate site by
// the weighted overlap between its query set and the union of the
// seed sites' query sets (cosine similarity over query vectors).
package sitesuggest

import (
	"math"
	"sort"

	"repro/internal/engine"
)

// Suggestion is a candidate related site with its relatedness score.
type Suggestion struct {
	Site  string
	Score float64
}

// Suggester holds the mined query->site click graph.
type Suggester struct {
	// site -> query -> click count
	siteQueries map[string]map[string]float64
	siteNorm    map[string]float64
}

// Build mines a click log into a Suggester. Entries without a click
// are ignored; they carry no site co-visitation signal.
func Build(log []engine.LogEntry) *Suggester {
	s := &Suggester{
		siteQueries: make(map[string]map[string]float64),
		siteNorm:    make(map[string]float64),
	}
	for _, e := range log {
		if e.Site == "" || e.Query == "" {
			continue
		}
		m := s.siteQueries[e.Site]
		if m == nil {
			m = make(map[string]float64)
			s.siteQueries[e.Site] = m
		}
		m[e.Query]++
	}
	for site, qs := range s.siteQueries {
		var sum float64
		for _, c := range qs {
			sum += c * c
		}
		s.siteNorm[site] = math.Sqrt(sum)
	}
	return s
}

// Sites returns all sites present in the click graph.
func (s *Suggester) Sites() []string {
	out := make([]string, 0, len(s.siteQueries))
	for site := range s.siteQueries {
		out = append(out, site)
	}
	sort.Strings(out)
	return out
}

// Suggest returns up to limit sites related to the seeds, ordered by
// score descending. Seed sites are never suggested back.
func (s *Suggester) Suggest(seeds []string, limit int) []Suggestion {
	if limit <= 0 {
		limit = 5
	}
	seedSet := make(map[string]bool, len(seeds))
	// Aggregate the seeds' query vector.
	profile := make(map[string]float64)
	for _, seed := range seeds {
		seedSet[seed] = true
		for q, c := range s.siteQueries[seed] {
			profile[q] += c
		}
	}
	if len(profile) == 0 {
		return nil
	}
	var profNorm float64
	for _, c := range profile {
		profNorm += c * c
	}
	profNorm = math.Sqrt(profNorm)

	var out []Suggestion
	for site, qs := range s.siteQueries {
		if seedSet[site] {
			continue
		}
		var dot float64
		for q, c := range qs {
			dot += c * profile[q]
		}
		if dot == 0 {
			continue
		}
		score := dot / (profNorm * s.siteNorm[site])
		out = append(out, Suggestion{Site: site, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Site < out[j].Site
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// KeywordsForSites returns the top queries that led to clicks on the
// given sites — the "keyword generation" half of the cited paper,
// used by the ads substrate to propose bid keywords to designers.
func (s *Suggester) KeywordsForSites(sites []string, limit int) []string {
	if limit <= 0 {
		limit = 10
	}
	counts := make(map[string]float64)
	for _, site := range sites {
		for q, c := range s.siteQueries[site] {
			counts[q] += c
		}
	}
	type kv struct {
		q string
		c float64
	}
	list := make([]kv, 0, len(counts))
	for q, c := range counts {
		list = append(list, kv{q, c})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].c != list[j].c {
			return list[i].c > list[j].c
		}
		return list[i].q < list[j].q
	})
	if len(list) > limit {
		list = list[:limit]
	}
	out := make([]string, len(list))
	for i, e := range list {
		out[i] = e.q
	}
	return out
}
