package sitesuggest

import (
	"testing"

	"repro/internal/engine"
)

// makeLog builds a click log in which gaming sites share queries with
// one another and wine sites share different queries.
func makeLog() []engine.LogEntry {
	var log []engine.LogEntry
	click := func(q, site string) {
		log = append(log, engine.LogEntry{Query: q, Site: site, ClickedURL: "http://" + site + "/x"})
	}
	gameQueries := []string{"halo review", "zelda walkthrough", "gears trailer", "best rpg"}
	for _, q := range gameQueries {
		for _, s := range []string{"ign.com", "gamespot.com", "teamxbox.com"} {
			click(q, s)
		}
	}
	// kotaku shares most game queries.
	for _, q := range gameQueries[:3] {
		click(q, "kotaku.com")
	}
	wineQueries := []string{"cabernet rating", "best merlot"}
	for _, q := range wineQueries {
		for _, s := range []string{"winespectator.example", "vinous.example"} {
			click(q, s)
		}
	}
	// queries without clicks should be ignored
	log = append(log, engine.LogEntry{Query: "no click here"})
	return log
}

func TestSuggestRelatedSites(t *testing.T) {
	s := Build(makeLog())
	sugs := s.Suggest([]string{"ign.com", "gamespot.com"}, 3)
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	top := sugs[0].Site
	if top != "teamxbox.com" && top != "kotaku.com" {
		t.Errorf("top suggestion %q is not a gaming site", top)
	}
	for _, sg := range sugs {
		if sg.Site == "ign.com" || sg.Site == "gamespot.com" {
			t.Errorf("seed site %s suggested back", sg.Site)
		}
		if sg.Score <= 0 || sg.Score > 1.0001 {
			t.Errorf("score %f out of (0,1]", sg.Score)
		}
	}
}

func TestSuggestDoesNotCrossTopics(t *testing.T) {
	s := Build(makeLog())
	sugs := s.Suggest([]string{"ign.com", "gamespot.com", "teamxbox.com"}, 10)
	for _, sg := range sugs {
		if sg.Site == "winespectator.example" || sg.Site == "vinous.example" {
			t.Errorf("wine site %s suggested for game seeds", sg.Site)
		}
	}
}

func TestSuggestEmptySeeds(t *testing.T) {
	s := Build(makeLog())
	if sugs := s.Suggest(nil, 5); sugs != nil {
		t.Errorf("empty seeds gave %v", sugs)
	}
	if sugs := s.Suggest([]string{"unknown.example"}, 5); sugs != nil {
		t.Errorf("unknown seed gave %v", sugs)
	}
}

func TestSuggestLimit(t *testing.T) {
	s := Build(makeLog())
	sugs := s.Suggest([]string{"ign.com"}, 1)
	if len(sugs) > 1 {
		t.Errorf("limit ignored: %d", len(sugs))
	}
	// default limit when <=0
	sugs = s.Suggest([]string{"ign.com"}, 0)
	if len(sugs) == 0 {
		t.Error("default limit returned nothing")
	}
}

func TestScoresDescending(t *testing.T) {
	s := Build(makeLog())
	sugs := s.Suggest([]string{"ign.com"}, 10)
	for i := 1; i < len(sugs); i++ {
		if sugs[i].Score > sugs[i-1].Score {
			t.Fatalf("scores not descending at %d", i)
		}
	}
}

func TestSites(t *testing.T) {
	s := Build(makeLog())
	sites := s.Sites()
	if len(sites) != 6 {
		t.Fatalf("got %d sites: %v", len(sites), sites)
	}
	for i := 1; i < len(sites); i++ {
		if sites[i] < sites[i-1] {
			t.Fatal("sites not sorted")
		}
	}
}

func TestKeywordsForSites(t *testing.T) {
	s := Build(makeLog())
	kws := s.KeywordsForSites([]string{"ign.com", "kotaku.com"}, 3)
	if len(kws) != 3 {
		t.Fatalf("got %d keywords", len(kws))
	}
	// The three queries kotaku shares should dominate.
	seen := map[string]bool{}
	for _, k := range kws {
		seen[k] = true
	}
	if !seen["halo review"] {
		t.Errorf("expected 'halo review' among top keywords, got %v", kws)
	}
}

func TestBuildIgnoresClicklessEntries(t *testing.T) {
	s := Build([]engine.LogEntry{{Query: "q"}, {Query: "q2", Site: ""}})
	if len(s.Sites()) != 0 {
		t.Error("clickless entries created sites")
	}
}
