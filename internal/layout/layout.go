// Package layout models the visual result layout that the paper's
// drag-n-drop design interface builds (Fig 1): a tree of HTML
// elements — text, images, hyperlinks — whose content is bound to
// fields of a data source, plus per-element style properties,
// stylesheets, and wizard templates for non-developers.
package layout

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// ElementType enumerates the element kinds a designer can drop onto a
// result layout.
type ElementType string

// Element kinds from the paper: "Application designers can create
// HTML elements such as text, images and hyperlinks using fields from
// the data source." Containers group children; a SourceSlot marks
// where a supplemental source's results render inside a result.
const (
	ElemContainer  ElementType = "container"
	ElemText       ElementType = "text"
	ElemImage      ElementType = "image"
	ElemLink       ElementType = "link"
	ElemSourceSlot ElementType = "sourceslot"
)

// Element is one node of a result layout tree.
type Element struct {
	Type ElementType `json:"type"`
	// Field binds content to a data-source field: text content for
	// ElemText, image src for ElemImage, link text for ElemLink.
	// Literal text may be given instead via Literal.
	Field   string `json:"field,omitempty"`
	Literal string `json:"literal,omitempty"`
	// HrefField names the field holding a link's URL (ElemLink).
	HrefField string `json:"hrefField,omitempty"`
	// SourceID names the supplemental source rendered at an
	// ElemSourceSlot.
	SourceID string `json:"sourceId,omitempty"`
	// Style holds CSS-ish properties ("color", "font-size", ...).
	Style    map[string]string `json:"style,omitempty"`
	Children []*Element        `json:"children,omitempty"`
}

// Validate checks structural correctness.
func (e *Element) Validate() error {
	if e == nil {
		return fmt.Errorf("layout: nil element")
	}
	switch e.Type {
	case ElemContainer:
		for i, c := range e.Children {
			if err := c.Validate(); err != nil {
				return fmt.Errorf("layout: child %d: %w", i, err)
			}
		}
		return nil
	case ElemText:
		if e.Field == "" && e.Literal == "" {
			return fmt.Errorf("layout: text element binds no field and has no literal")
		}
	case ElemImage:
		if e.Field == "" {
			return fmt.Errorf("layout: image element binds no field")
		}
	case ElemLink:
		if e.HrefField == "" {
			return fmt.Errorf("layout: link element has no hrefField")
		}
		if e.Field == "" && e.Literal == "" {
			return fmt.Errorf("layout: link element has no label")
		}
	case ElemSourceSlot:
		if e.SourceID == "" {
			return fmt.Errorf("layout: source slot names no source")
		}
	default:
		return fmt.Errorf("layout: unknown element type %q", e.Type)
	}
	if len(e.Children) > 0 {
		return fmt.Errorf("layout: %s element cannot have children", e.Type)
	}
	return nil
}

// BoundFields returns every field the tree binds, sorted and deduped.
// The designer UI uses this to warn about fields missing from the
// source schema.
func (e *Element) BoundFields() []string {
	set := map[string]bool{}
	var walk func(el *Element)
	walk = func(el *Element) {
		if el == nil {
			return
		}
		if el.Field != "" {
			set[el.Field] = true
		}
		if el.HrefField != "" {
			set[el.HrefField] = true
		}
		for _, c := range el.Children {
			walk(c)
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// SourceSlots returns the supplemental source IDs referenced by the
// tree in document order.
func (e *Element) SourceSlots() []string {
	var out []string
	var walk func(el *Element)
	walk = func(el *Element) {
		if el == nil {
			return
		}
		if el.Type == ElemSourceSlot {
			out = append(out, el.SourceID)
		}
		for _, c := range el.Children {
			walk(c)
		}
	}
	walk(e)
	return out
}

// Clone deep-copies the tree, so templates can be instantiated and
// modified per application.
func (e *Element) Clone() *Element {
	if e == nil {
		return nil
	}
	cp := *e
	if e.Style != nil {
		cp.Style = make(map[string]string, len(e.Style))
		for k, v := range e.Style {
			cp.Style[k] = v
		}
	}
	cp.Children = make([]*Element, len(e.Children))
	for i, c := range e.Children {
		cp.Children[i] = c.Clone()
	}
	return &cp
}

// SetStyle sets a style property, allocating the map lazily.
func (e *Element) SetStyle(prop, value string) *Element {
	if e.Style == nil {
		e.Style = make(map[string]string)
	}
	e.Style[prop] = value
	return e
}

// Append adds children and returns e for chaining.
func (e *Element) Append(children ...*Element) *Element {
	e.Children = append(e.Children, children...)
	return e
}

// EncodeElement serializes a layout tree to JSON. (It is a free
// function rather than a MarshalText method: a TextMarshaler method
// calling json.Marshal on the receiver would recurse.)
func EncodeElement(e *Element) ([]byte, error) { return json.Marshal(e) }

// ParseElement decodes a JSON layout tree.
func ParseElement(data []byte) (*Element, error) {
	var e Element
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("layout: %w", err)
	}
	return &e, nil
}

// Stylesheet is the "greater control ... via style-sheets" option:
// named classes of style properties that presentation merges under
// per-element styles.
type Stylesheet struct {
	Rules map[string]map[string]string `json:"rules"`
}

// Resolve merges the stylesheet class (by element type) under the
// element's own style; element properties win.
func (ss *Stylesheet) Resolve(e *Element) map[string]string {
	out := map[string]string{}
	if ss != nil {
		for k, v := range ss.Rules[string(e.Type)] {
			out[k] = v
		}
	}
	for k, v := range e.Style {
		out[k] = v
	}
	return out
}

// StyleAttr renders a style map as a deterministic HTML style
// attribute value.
func StyleAttr(style map[string]string) string {
	if len(style) == 0 {
		return ""
	}
	keys := make([]string, 0, len(style))
	for k := range style {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		if b.Len() > 0 {
			b.WriteByte(';')
		}
		b.WriteString(k)
		b.WriteByte(':')
		b.WriteString(style[k])
	}
	return b.String()
}
