package layout

import (
	"fmt"
	"sort"
)

// Templates are the paper's "wizard-style assistance": prebuilt
// result layouts a non-developer starts from. Each template takes
// the field names to bind and returns a fresh tree.

// TemplateFunc instantiates a template for the given field bindings.
type TemplateFunc func(fields map[string]string) (*Element, error)

var templates = map[string]TemplateFunc{
	"title-link":       titleLinkTemplate,
	"media-card":       mediaCardTemplate,
	"headline-snippet": headlineSnippetTemplate,
	"ad-block":         adBlockTemplate,
}

// TemplateNames lists available templates.
func TemplateNames() []string {
	out := make([]string, 0, len(templates))
	for n := range templates {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FromTemplate instantiates a named template. fields maps template
// roles (e.g. "title", "url", "image", "description") to the source's
// field names.
func FromTemplate(name string, fields map[string]string) (*Element, error) {
	fn, ok := templates[name]
	if !ok {
		return nil, fmt.Errorf("layout: unknown template %q", name)
	}
	return fn(fields)
}

func need(fields map[string]string, roles ...string) error {
	for _, r := range roles {
		if fields[r] == "" {
			return fmt.Errorf("layout: template requires a %q field binding", r)
		}
	}
	return nil
}

// titleLinkTemplate: a hyperlinked title — the minimal search result.
func titleLinkTemplate(fields map[string]string) (*Element, error) {
	if err := need(fields, "title", "url"); err != nil {
		return nil, err
	}
	root := &Element{Type: ElemContainer}
	root.Append(&Element{Type: ElemLink, Field: fields["title"], HrefField: fields["url"]})
	return root, nil
}

// mediaCardTemplate reproduces the Fig 1 result layout: "a search
// result features a hyperlink, an image, and a descriptive field."
func mediaCardTemplate(fields map[string]string) (*Element, error) {
	if err := need(fields, "title", "url", "image", "description"); err != nil {
		return nil, err
	}
	root := &Element{Type: ElemContainer}
	root.SetStyle("border", "1px solid #ccc")
	root.Append(
		(&Element{Type: ElemLink, Field: fields["title"], HrefField: fields["url"]}).SetStyle("font-size", "16px"),
		&Element{Type: ElemImage, Field: fields["image"]},
		&Element{Type: ElemText, Field: fields["description"]},
	)
	return root, nil
}

// headlineSnippetTemplate suits engine results: linked title over a
// snippet.
func headlineSnippetTemplate(fields map[string]string) (*Element, error) {
	if err := need(fields, "title", "url", "snippet"); err != nil {
		return nil, err
	}
	root := &Element{Type: ElemContainer}
	root.Append(
		&Element{Type: ElemLink, Field: fields["title"], HrefField: fields["url"]},
		(&Element{Type: ElemText, Field: fields["snippet"]}).SetStyle("color", "#444"),
	)
	return root, nil
}

// adBlockTemplate renders an ad with disclosure labeling.
func adBlockTemplate(fields map[string]string) (*Element, error) {
	if err := need(fields, "title", "url", "text"); err != nil {
		return nil, err
	}
	root := &Element{Type: ElemContainer}
	root.SetStyle("background", "#fffbe6")
	root.Append(
		(&Element{Type: ElemText, Literal: "Ad"}).SetStyle("color", "#888"),
		&Element{Type: ElemLink, Field: fields["title"], HrefField: fields["url"]},
		&Element{Type: ElemText, Field: fields["text"]},
	)
	return root, nil
}
