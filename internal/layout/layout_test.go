package layout

import (
	"reflect"
	"strings"
	"testing"
)

func sampleTree() *Element {
	root := &Element{Type: ElemContainer}
	root.Append(
		&Element{Type: ElemLink, Field: "title", HrefField: "url"},
		&Element{Type: ElemImage, Field: "image"},
		&Element{Type: ElemText, Field: "description"},
		&Element{Type: ElemSourceSlot, SourceID: "reviews"},
	)
	return root
}

func TestValidateOK(t *testing.T) {
	if err := sampleTree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []*Element{
		nil,
		{Type: "blob"},
		{Type: ElemText},                 // no field/literal
		{Type: ElemImage},                // no field
		{Type: ElemLink, Field: "t"},     // no href
		{Type: ElemLink, HrefField: "u"}, // no label
		{Type: ElemSourceSlot},           // no source
		{Type: ElemText, Field: "a", Children: []*Element{{Type: ElemText, Field: "b"}}}, // leaf with children
		{Type: ElemContainer, Children: []*Element{{Type: ElemImage}}},                   // bad child
	}
	for i, e := range cases {
		if err := e.Validate(); err == nil {
			t.Errorf("bad element %d accepted", i)
		}
	}
}

func TestValidateLiteralText(t *testing.T) {
	e := &Element{Type: ElemText, Literal: "Ad"}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	l := &Element{Type: ElemLink, Literal: "More", HrefField: "url"}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBoundFields(t *testing.T) {
	got := sampleTree().BoundFields()
	want := []string{"description", "image", "title", "url"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BoundFields = %v, want %v", got, want)
	}
}

func TestSourceSlots(t *testing.T) {
	tree := sampleTree()
	tree.Append(&Element{Type: ElemSourceSlot, SourceID: "pricing"})
	got := tree.SourceSlots()
	if !reflect.DeepEqual(got, []string{"reviews", "pricing"}) {
		t.Fatalf("SourceSlots = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := sampleTree()
	orig.Children[0].SetStyle("color", "red")
	cp := orig.Clone()
	cp.Children[0].SetStyle("color", "blue")
	cp.Append(&Element{Type: ElemText, Literal: "extra"})
	if orig.Children[0].Style["color"] != "red" {
		t.Error("clone shares style map")
	}
	if len(orig.Children) == len(cp.Children) {
		t.Error("clone shares children slice")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := sampleTree()
	orig.SetStyle("border", "1px")
	data, err := EncodeElement(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseElement(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Error("round trip changed the tree")
	}
	if _, err := ParseElement([]byte("{bad")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestStylesheetResolve(t *testing.T) {
	ss := &Stylesheet{Rules: map[string]map[string]string{
		"text": {"color": "#333", "font-size": "12px"},
	}}
	e := (&Element{Type: ElemText, Field: "f"}).SetStyle("color", "red")
	got := ss.Resolve(e)
	if got["color"] != "red" {
		t.Errorf("element style should win: %v", got)
	}
	if got["font-size"] != "12px" {
		t.Errorf("stylesheet property missing: %v", got)
	}
	// nil stylesheet: element style only
	var nilSS *Stylesheet
	got = nilSS.Resolve(e)
	if got["color"] != "red" || len(got) != 1 {
		t.Errorf("nil stylesheet resolve = %v", got)
	}
}

func TestStyleAttrDeterministic(t *testing.T) {
	style := map[string]string{"color": "red", "border": "1px", "a": "b"}
	want := "a:b;border:1px;color:red"
	for i := 0; i < 5; i++ {
		if got := StyleAttr(style); got != want {
			t.Fatalf("StyleAttr = %q", got)
		}
	}
	if StyleAttr(nil) != "" {
		t.Error("empty style should render empty")
	}
}

func TestTemplates(t *testing.T) {
	names := TemplateNames()
	if len(names) != 4 {
		t.Fatalf("templates = %v", names)
	}
	fields := map[string]string{"title": "title", "url": "url", "image": "image", "description": "desc", "snippet": "snippet", "text": "text"}
	for _, n := range names {
		el, err := FromTemplate(n, fields)
		if err != nil {
			t.Errorf("template %s: %v", n, err)
			continue
		}
		if err := el.Validate(); err != nil {
			t.Errorf("template %s invalid: %v", n, err)
		}
	}
}

func TestTemplateMissingBinding(t *testing.T) {
	if _, err := FromTemplate("media-card", map[string]string{"title": "t"}); err == nil {
		t.Error("missing bindings accepted")
	}
	if _, err := FromTemplate("no-such-template", nil); err == nil {
		t.Error("unknown template accepted")
	}
}

func TestMediaCardMatchesFig1(t *testing.T) {
	// Fig 1: "a search result features a hyperlink, an image, and a
	// descriptive field."
	el, err := FromTemplate("media-card", map[string]string{
		"title": "title", "url": "detailUrl", "image": "image", "description": "description",
	})
	if err != nil {
		t.Fatal(err)
	}
	var types []ElementType
	for _, c := range el.Children {
		types = append(types, c.Type)
	}
	want := []ElementType{ElemLink, ElemImage, ElemText}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("media card children = %v", types)
	}
	fields := el.BoundFields()
	if !strings.Contains(strings.Join(fields, ","), "detailUrl") {
		t.Error("href binding missing")
	}
}
