package host

import (
	"net/http"
	"testing"
	"time"
)

func TestRateLimiterTokenBucket(t *testing.T) {
	rl := NewRateLimiter(10, 3)
	now := time.Unix(1000, 0)
	rl.now = func() time.Time { return now }

	// Burst of 3 allowed, 4th denied.
	for i := 0; i < 3; i++ {
		if !rl.Allow("a") {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if rl.Allow("a") {
		t.Fatal("over-burst request allowed")
	}
	// After 100ms at 10 qps one token refills.
	now = now.Add(100 * time.Millisecond)
	if !rl.Allow("a") {
		t.Fatal("refilled token denied")
	}
	if rl.Allow("a") {
		t.Fatal("second request after single refill allowed")
	}
	// Tokens cap at burst.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !rl.Allow("a") {
			t.Fatalf("capped burst request %d denied", i)
		}
	}
	if rl.Allow("a") {
		t.Fatal("bucket exceeded burst cap")
	}
}

func TestRateLimiterPerApp(t *testing.T) {
	rl := NewRateLimiter(1, 1)
	now := time.Unix(1000, 0)
	rl.now = func() time.Time { return now }
	if !rl.Allow("a") {
		t.Fatal("a denied")
	}
	if !rl.Allow("b") {
		t.Fatal("b should have its own bucket")
	}
	if rl.Allow("a") {
		t.Fatal("a exceeded its bucket")
	}
}

func TestServerRateLimits(t *testing.T) {
	s, srv := newServer(t)
	s.Limiter = NewRateLimiter(0.001, 2)
	codes := map[int]int{}
	for i := 0; i < 5; i++ {
		code, _ := get(t, srv.Client(), srv.URL+"/query?app=websearch&q=review")
		codes[code]++
	}
	if codes[http.StatusOK] != 2 || codes[http.StatusTooManyRequests] != 3 {
		t.Fatalf("codes = %v", codes)
	}
}
