package host

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/analytics"
	"repro/internal/app"
	"repro/internal/engine"
	"repro/internal/runtime"
	"repro/internal/store"
	"repro/internal/webcorpus"
)

func webApp(t testing.TB) *app.Application {
	t.Helper()
	d := app.NewDesigner("websearch", "Web Search", "ann", "t")
	d.DropPrimary(app.SourceConfig{ID: "web", Kind: app.KindWebSearch, MaxResults: 5})
	d.UseTemplate("web", "headline-snippet", map[string]string{"title": "title", "url": "url", "snippet": "snippet"})
	a, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func newServer(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	st := store.New()
	st.CreateTenant("t", "ann")
	log := analytics.NewLog()
	s := &Server{
		Registry: NewRegistry(),
		Executor: &runtime.Executor{
			Store:  st,
			Engine: engine.New(webcorpus.Generate(webcorpus.Config{Seed: 17})),
			Log:    log,
		},
		Log:     log,
		BaseURL: "http://symphony.example",
	}
	if err := s.Registry.Publish(webApp(t)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func get(t testing.TB, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestRegistryPublishValidates(t *testing.T) {
	r := NewRegistry()
	if err := r.Publish(&app.Application{}); err == nil {
		t.Fatal("invalid app published")
	}
	a := webApp(t)
	if err := r.Publish(a); err != nil {
		t.Fatal(err)
	}
	if got, ok := r.Get("websearch"); !ok || got.Name != "Web Search" {
		t.Fatal("Get failed")
	}
	if list := r.List(); len(list) != 1 || list[0] != "websearch" {
		t.Fatalf("List = %v", list)
	}
	if !r.Unpublish("websearch") || r.Unpublish("websearch") {
		t.Fatal("unpublish semantics")
	}
}

func TestQueryEndpointHTML(t *testing.T) {
	_, srv := newServer(t)
	code, body := get(t, srv.Client(), srv.URL+"/query?app=websearch&q=review")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "symphony-app") {
		t.Errorf("body = %.200s", body)
	}
}

func TestQueryEndpointJSON(t *testing.T) {
	_, srv := newServer(t)
	code, body := get(t, srv.Client(), srv.URL+"/query?app=websearch&q=review&format=json")
	if code != http.StatusOK || !strings.Contains(body, `"app":"websearch"`) {
		t.Fatalf("json response = %d %.200s", code, body)
	}
}

func TestQueryUnknownApp(t *testing.T) {
	_, srv := newServer(t)
	code, _ := get(t, srv.Client(), srv.URL+"/query?app=nope&q=x")
	if code != http.StatusNotFound {
		t.Fatalf("status = %d", code)
	}
}

func TestQueryBadOffset(t *testing.T) {
	_, srv := newServer(t)
	code, _ := get(t, srv.Client(), srv.URL+"/query?app=websearch&q=x&offset=-1")
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d", code)
	}
}

func TestQueryRecordsAnalytics(t *testing.T) {
	s, srv := newServer(t)
	get(t, srv.Client(), srv.URL+"/query?app=websearch&q=zelda&customer=c1")
	events := s.Log.Events("websearch")
	if len(events) != 1 || events[0].Query != "zelda" || events[0].Customer != "c1" {
		t.Fatalf("events = %+v", events)
	}
}

func TestClickRedirectAndLog(t *testing.T) {
	s, srv := newServer(t)
	client := srv.Client()
	client.CheckRedirect = func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse
	}
	resp, err := client.Get(srv.URL + "/click?app=websearch&url=" + "http%3A%2F%2Fign.com%2Freview%2F1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "http://ign.com/review/1" {
		t.Fatalf("location = %s", loc)
	}
	events := s.Log.Events("websearch")
	if len(events) != 1 || events[0].Type != analytics.EventClick || events[0].Site != "ign.com" {
		t.Fatalf("click not logged: %+v", events)
	}
}

func TestClickRejectsBadTargets(t *testing.T) {
	_, srv := newServer(t)
	for _, target := range []string{"javascript%3Aalert(1)", "", "%20"} {
		code, _ := get(t, srv.Client(), srv.URL+"/click?app=websearch&url="+target)
		if code != http.StatusBadRequest {
			t.Errorf("target %q: status %d", target, code)
		}
	}
	code, _ := get(t, srv.Client(), srv.URL+"/click?app=nope&url=http%3A%2F%2Fa.example")
	if code != http.StatusNotFound {
		t.Errorf("unknown app click: %d", code)
	}
}

func TestEmbedJS(t *testing.T) {
	_, srv := newServer(t)
	code, body := get(t, srv.Client(), srv.URL+"/embed.js?app=websearch")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"symphonySearch", `"websearch"`, "/query?app="} {
		if !strings.Contains(body, want) {
			t.Errorf("embed.js missing %q", want)
		}
	}
	code, _ = get(t, srv.Client(), srv.URL+"/embed.js?app=nope")
	if code != http.StatusNotFound {
		t.Error("unknown app embed served")
	}
}

func TestAppsListing(t *testing.T) {
	_, srv := newServer(t)
	code, body := get(t, srv.Client(), srv.URL+"/apps")
	if code != http.StatusOK || !strings.Contains(body, "websearch") {
		t.Fatalf("apps = %d %s", code, body)
	}
}

func TestEmbedSnippet(t *testing.T) {
	s := EmbedSnippet("http://base.example", "my app")
	for _, want := range []string{"symphony-my app", "embed.js?app=my+app", "symphonySearch(this.value)"} {
		if !strings.Contains(s, want) {
			t.Errorf("snippet missing %q:\n%s", want, s)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	_, srv := newServer(t)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			resp, err := srv.Client().Get(fmt.Sprintf("%s/query?app=websearch&q=review%d", srv.URL, i%4))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			done <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
