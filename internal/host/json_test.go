package host

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/runtime"
)

// TestQueryJSONEncoderParity pins the hand-rolled query response
// encoding to the json.NewEncoder output it replaced: same bytes,
// trailing newline included.
func TestQueryJSONEncoderParity(t *testing.T) {
	s, srv := newServer(t)
	code, body := get(t, srv.Client(), srv.URL+"/query?app=websearch&q=review&format=json")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	a, _ := s.Registry.Get("websearch")
	resp, err := s.Executor.Execute(context.Background(), a, runtime.Query{Text: "review"})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := json.NewEncoder(&want).Encode(struct {
		App    string `json:"app"`
		Query  string `json:"query"`
		HTML   string `json:"html"`
		Blocks int    `json:"blocks"`
	}{resp.AppID, resp.Query, resp.HTML, len(resp.Blocks)}); err != nil {
		t.Fatal(err)
	}
	if body != want.String() {
		t.Errorf("query JSON body diverged from encoder output:\n got %.300s\nwant %.300s", body, want.String())
	}
}

// TestAppsEncoderParity does the same for the /apps listing, covering
// the empty-registry case ("[]", not "null") as well.
func TestAppsEncoderParity(t *testing.T) {
	s, srv := newServer(t)
	for _, publish := range []bool{true, false} {
		if !publish {
			s.Registry.Unpublish("websearch")
		}
		_, body := get(t, srv.Client(), srv.URL+"/apps")
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(s.Registry.List()); err != nil {
			t.Fatal(err)
		}
		if body != want.String() {
			t.Errorf("apps body (published=%v) = %q, want %q", publish, body, want.String())
		}
	}
}

// TestWriteJSONError covers the marshal-failure branch: an unencodable
// value must produce a 500, not a truncated 200.
func TestWriteJSONError(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, func() {}) // funcs are not JSON-encodable
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
}
