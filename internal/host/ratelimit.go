package host

import (
	"sync"
	"time"
)

// RateLimiter meters queries per application with a token bucket.
// The paper's hosting promise ("execution and the resources involved
// are always shouldered by Symphony") implies the platform must
// protect itself from a single hot application; this is that guard.
type RateLimiter struct {
	// QPS is the steady refill rate per app; Burst the bucket size.
	QPS   float64
	Burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter allowing qps sustained and burst
// instantaneous queries per app.
func NewRateLimiter(qps, burst float64) *RateLimiter {
	return &RateLimiter{
		QPS:     qps,
		Burst:   burst,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// Allow reports whether one more query for app may proceed now.
func (rl *RateLimiter) Allow(app string) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	b, ok := rl.buckets[app]
	if !ok {
		b = &bucket{tokens: rl.Burst, last: now}
		rl.buckets[app] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	b.last = now
	b.tokens += elapsed * rl.QPS
	if b.tokens > rl.Burst {
		b.tokens = rl.Burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
