package host

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond, yielding the processor between polls; on a
// single-CPU runner this is the reliable way to let a blocked waiter
// goroutine reach its park point without racing real timers.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		runtime.Gosched()
	}
}

func TestAdmissionFastPath(t *testing.T) {
	ac := NewAdmissionController(AdmissionConfig{Slots: 2, Queue: 4})
	rel1, err := ac.Acquire(context.Background(), "t1")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := ac.Acquire(context.Background(), "t1")
	if err != nil {
		t.Fatal(err)
	}
	st := ac.Stats()
	if st.Admitted != 2 || st.InFlight != 2 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
	rel1()
	rel2()
	if got := ac.Stats().InFlight; got != 0 {
		t.Fatalf("in-flight after release = %d", got)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	// One slot, no queue: the second concurrent request sheds at once.
	ac := NewAdmissionController(AdmissionConfig{Slots: 1, Queue: 0})
	rel, err := ac.Acquire(context.Background(), "t1")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := ac.Acquire(context.Background(), "t1"); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if st := ac.Stats(); st.Shed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAdmissionQueuedRequestAdmittedWhenSlotFrees(t *testing.T) {
	ac := NewAdmissionController(AdmissionConfig{Slots: 1, Queue: 2})
	rel, err := ac.Acquire(context.Background(), "t1")
	if err != nil {
		t.Fatal(err)
	}

	admitted := make(chan error, 1)
	go func() {
		rel2, err := ac.Acquire(context.Background(), "t1")
		if err == nil {
			rel2()
		}
		admitted <- err
	}()

	// The waiter must be parked in the queue before the slot frees,
	// or the test would pass vacuously through the fast path.
	waitFor(t, func() bool { return ac.Waiting("t1") == 1 }, "waiter to queue")
	select {
	case err := <-admitted:
		t.Fatalf("waiter admitted before slot freed: %v", err)
	default:
	}

	rel()
	if err := <-admitted; err != nil {
		t.Fatalf("queued acquire = %v", err)
	}
	st := ac.Stats()
	if st.Admitted != 2 || st.Queued != 1 || st.Waiting != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAdmissionQueueDeadlineAware(t *testing.T) {
	ac := NewAdmissionController(AdmissionConfig{Slots: 1, Queue: 2})
	rel, err := ac.Acquire(context.Background(), "t1")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	// Cancel the waiter explicitly once it is parked — deterministic
	// on one CPU, unlike racing a real deadline timer.
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := ac.Acquire(ctx, "t1")
		got <- err
	}()
	waitFor(t, func() bool { return ac.Waiting("t1") == 1 }, "waiter to queue")
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := ac.Stats()
	if st.Expired != 1 || st.Waiting != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAdmissionTenantsIsolated(t *testing.T) {
	// Tenant t1 saturated; t2 still admits instantly.
	ac := NewAdmissionController(AdmissionConfig{Slots: 1, Queue: 0, TenantSlots: map[string]int{"t2": 3}})
	rel, err := ac.Acquire(context.Background(), "t1")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := ac.Acquire(context.Background(), "t1"); !errors.Is(err, ErrShed) {
		t.Fatal("t1 should shed")
	}
	for i := 0; i < 3; i++ {
		rel2, err := ac.Acquire(context.Background(), "t2")
		if err != nil {
			t.Fatalf("t2 acquire %d: %v", i, err)
		}
		defer rel2()
	}
	if _, err := ac.Acquire(context.Background(), "t2"); !errors.Is(err, ErrShed) {
		t.Fatal("t2 over its override should shed")
	}
}

func TestAdmissionConcurrentChurn(t *testing.T) {
	// Hammer one gate from many goroutines; run under -race this
	// exercises the queue bookkeeping. Every admit must be released,
	// and the final state must be empty.
	ac := NewAdmissionController(AdmissionConfig{Slots: 4, Queue: 64})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				rel, err := ac.Acquire(context.Background(), "t1")
				if err != nil {
					continue
				}
				rel()
			}
		}()
	}
	wg.Wait()
	st := ac.Stats()
	if st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("leaked slots: %+v", st)
	}
	if st.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
}

// serveFixture is the host_test.go web-search fixture plus the given
// QoS config. The published app's tenant is "t".
func serveFixture(t *testing.T, admission *AdmissionController, timeout time.Duration) *httptest.Server {
	t.Helper()
	s, ts := newServer(t)
	s.Admission = admission
	s.QueryTimeout = timeout
	return ts
}

func TestHandlerShedsWith429AndRetryAfter(t *testing.T) {
	ac := NewAdmissionController(AdmissionConfig{Slots: 1, Queue: 0, RetryAfterSeconds: 7})
	ts := serveFixture(t, ac, 0)

	// Occupy the app tenant's only slot directly, then issue a real
	// HTTP request: it must shed with 429 and a Retry-After hint.
	rel, err := ac.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/query?app=websearch&q=review")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want 7", got)
	}
	rel()

	// Slot free again: the same request succeeds.
	resp, err = http.Get(ts.URL + "/query?app=websearch&q=review")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after release = %d, want 200", resp.StatusCode)
	}
}

func TestHandlerQueryTimeoutReturns504(t *testing.T) {
	// A QueryTimeout so small the context is already done when the
	// executor starts: every source now honors ctx, so the page fails
	// with a deadline error and the handler must answer 504, not 500.
	ts := serveFixture(t, nil, time.Nanosecond)
	resp, err := http.Get(ts.URL + "/query?app=websearch&q=review")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
}
