package host

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/analytics"
	"repro/internal/app"
	"repro/internal/ingest"
	"repro/internal/store"
)

func newAdmin(t testing.TB) (*Admin, *httptest.Server, *store.Store) {
	t.Helper()
	st := store.New()
	if err := st.CreateTenant("shop", "ann"); err != nil {
		t.Fatal(err)
	}
	log := analytics.NewLog()
	a := &Admin{
		Registry: NewRegistry(),
		Uploader: &ingest.Uploader{Store: st},
		Log:      log,
		Suggest: func(seeds []string, limit int) []string {
			return []string{"suggested.example"}
		},
	}
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)
	return a, srv, st
}

func do(t testing.TB, client *http.Client, method, url, designer, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if designer != "" {
		req.Header.Set("X-Symphony-Designer", designer)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

func TestAdminUpload(t *testing.T) {
	_, srv, st := newAdmin(t)
	csv := "sku,title\nA1,Widget One\nA2,Widget Two\n"
	code, body := do(t, srv.Client(), "POST",
		srv.URL+"/admin/upload?tenant=shop&dataset=catalog&format=csv&key=sku", "ann", csv)
	if code != http.StatusOK {
		t.Fatalf("upload = %d %s", code, body)
	}
	if !strings.Contains(body, `"Loaded":2`) {
		t.Errorf("report = %s", body)
	}
	ds, err := st.DatasetContext(context.Background(), "shop", "ann", "catalog", store.PermRead)
	if err != nil || ds.Len() != 2 {
		t.Fatalf("dataset after upload: %v %v", ds, err)
	}
}

func TestAdminUploadAuth(t *testing.T) {
	_, srv, _ := newAdmin(t)
	csv := "a,b\n1,2\n"
	// No designer header.
	code, _ := do(t, srv.Client(), "POST", srv.URL+"/admin/upload?tenant=shop&dataset=d&format=csv", "", csv)
	if code != http.StatusUnauthorized {
		t.Fatalf("missing designer = %d", code)
	}
	// Wrong designer: tenancy denies.
	code, _ = do(t, srv.Client(), "POST", srv.URL+"/admin/upload?tenant=shop&dataset=d&format=csv", "mallory", csv)
	if code != http.StatusForbidden {
		t.Fatalf("mallory = %d", code)
	}
	// Missing params.
	code, _ = do(t, srv.Client(), "POST", srv.URL+"/admin/upload?tenant=shop", "ann", csv)
	if code != http.StatusBadRequest {
		t.Fatalf("missing params = %d", code)
	}
	// GET not allowed.
	code, _ = do(t, srv.Client(), "GET", srv.URL+"/admin/upload?tenant=shop&dataset=d&format=csv", "ann", "")
	if code != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d", code)
	}
}

func publishedJSON(t testing.TB, owner string) string {
	t.Helper()
	d := app.NewDesigner("myapp", "My App", owner, "shop")
	d.DropPrimary(app.SourceConfig{ID: "web", Kind: app.KindWebSearch})
	a, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := app.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestAdminPublish(t *testing.T) {
	ad, srv, _ := newAdmin(t)
	code, body := do(t, srv.Client(), "POST", srv.URL+"/admin/publish", "ann", publishedJSON(t, "ann"))
	if code != http.StatusOK {
		t.Fatalf("publish = %d %s", code, body)
	}
	if _, ok := ad.Registry.Get("myapp"); !ok {
		t.Fatal("app not in registry")
	}
	// Owner mismatch rejected.
	code, _ = do(t, srv.Client(), "POST", srv.URL+"/admin/publish", "mallory", publishedJSON(t, "ann"))
	if code != http.StatusForbidden {
		t.Fatalf("owner mismatch = %d", code)
	}
	// Bad JSON and invalid app rejected.
	code, _ = do(t, srv.Client(), "POST", srv.URL+"/admin/publish", "ann", "{broken")
	if code != http.StatusBadRequest {
		t.Fatalf("bad json = %d", code)
	}
	code, _ = do(t, srv.Client(), "POST", srv.URL+"/admin/publish", "ann", `{"id":"x","name":"X","owner":"ann"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid app = %d", code)
	}
}

func TestAdminSummaryAndExport(t *testing.T) {
	ad, srv, _ := newAdmin(t)
	do(t, srv.Client(), "POST", srv.URL+"/admin/publish", "ann", publishedJSON(t, "ann"))
	ad.Log.Record(analytics.Event{App: "myapp", Type: analytics.EventQuery, Query: "zelda"})
	ad.Log.Record(analytics.Event{App: "myapp", Type: analytics.EventClick, URL: "http://ign.com/x"})

	code, body := do(t, srv.Client(), "GET", srv.URL+"/admin/summary?app=myapp", "ann", "")
	if code != http.StatusOK || !strings.Contains(body, `"Queries":1`) {
		t.Fatalf("summary = %d %s", code, body)
	}
	code, body = do(t, srv.Client(), "GET", srv.URL+"/admin/export.csv?app=myapp", "ann", "")
	if code != http.StatusOK || !strings.Contains(body, "zelda") {
		t.Fatalf("export = %d %s", code, body)
	}
	// Only the owner can read reports.
	code, _ = do(t, srv.Client(), "GET", srv.URL+"/admin/summary?app=myapp", "bob", "")
	if code != http.StatusForbidden {
		t.Fatalf("bob summary = %d", code)
	}
	code, _ = do(t, srv.Client(), "GET", srv.URL+"/admin/summary?app=ghost", "ann", "")
	if code != http.StatusNotFound {
		t.Fatalf("ghost summary = %d", code)
	}
}

func TestAdminSeries(t *testing.T) {
	ad, srv, _ := newAdmin(t)
	do(t, srv.Client(), "POST", srv.URL+"/admin/publish", "ann", publishedJSON(t, "ann"))
	ad.Log.Record(analytics.Event{App: "myapp", Type: analytics.EventQuery})
	code, body := do(t, srv.Client(), "GET", srv.URL+"/admin/series?app=myapp&hours=1", "ann", "")
	if code != http.StatusOK || !strings.Contains(body, `"Queries":1`) {
		t.Fatalf("series = %d %s", code, body)
	}
	code, _ = do(t, srv.Client(), "GET", srv.URL+"/admin/series?app=myapp&hours=junk", "ann", "")
	if code != http.StatusBadRequest {
		t.Fatalf("bad hours = %d", code)
	}
}

func TestAdminSuggest(t *testing.T) {
	_, srv, _ := newAdmin(t)
	code, body := do(t, srv.Client(), "GET", srv.URL+"/admin/suggest?sites=a.com,b.com", "", "")
	if code != http.StatusOK || !strings.Contains(body, "suggested.example") {
		t.Fatalf("suggest = %d %s", code, body)
	}
	code, _ = do(t, srv.Client(), "GET", srv.URL+"/admin/suggest", "", "")
	if code != http.StatusBadRequest {
		t.Fatalf("missing sites = %d", code)
	}
	code, _ = do(t, srv.Client(), "GET", srv.URL+"/admin/suggest?sites=a.com&limit=0", "", "")
	if code != http.StatusBadRequest {
		t.Fatalf("bad limit = %d", code)
	}
	// Unconfigured suggest.
	a2 := &Admin{Registry: NewRegistry(), Log: analytics.NewLog()}
	srv2 := httptest.NewServer(a2.Handler())
	defer srv2.Close()
	code, _ = do(t, srv2.Client(), "GET", srv2.URL+"/admin/suggest?sites=a.com", "", "")
	if code != http.StatusNotImplemented {
		t.Fatalf("unconfigured = %d", code)
	}
}
