package host

import (
	"encoding/json"
	"log"
	"net/http"
)

// writeJSON answers an admin request with v as JSON, byte-identical to
// the json.NewEncoder(w).Encode(v) calls it replaced (trailing newline
// included). Unlike an Encoder — whose error return those calls
// dropped — it marshals before touching the ResponseWriter, so an
// encoding failure still becomes a clean 500 instead of a truncated
// 200; a failed socket write can only be logged, the status line is
// already on the wire.
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		log.Printf("host: encoding JSON response: %v", err)
		http.Error(w, "response encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		log.Printf("host: writing JSON response: %v", err)
	}
}
