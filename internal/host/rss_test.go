package host

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/ingest"
)

func TestRSSEndpoint(t *testing.T) {
	_, srv := newServer(t)
	code, body := get(t, srv.Client(), srv.URL+"/rss?app=websearch&q=review")
	if code != http.StatusOK {
		t.Fatalf("rss = %d", code)
	}
	if !strings.Contains(body, `<rss version="2.0">`) {
		t.Fatalf("not rss: %.120s", body)
	}
	if !strings.Contains(body, "<channel><title>Web Search</title>") {
		t.Errorf("channel title missing: %.200s", body)
	}
	if !strings.Contains(body, "<item>") || !strings.Contains(body, "<link>") {
		t.Error("no items/links in feed")
	}
	code, _ = get(t, srv.Client(), srv.URL+"/rss?app=nope&q=x")
	if code != http.StatusNotFound {
		t.Errorf("unknown app rss = %d", code)
	}
}

// The feed an application serves can be ingested back as another
// designer's proprietary dataset — apps become data sources.
func TestRSSRoundTripsThroughIngest(t *testing.T) {
	_, srv := newServer(t)
	_, body := get(t, srv.Client(), srv.URL+"/rss?app=websearch&q=review")
	recs, err := ingest.ParseRSS(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("feed produced no records")
	}
	for _, r := range recs {
		if r["title"] == "" {
			t.Fatalf("record missing title: %v", r)
		}
	}
}
