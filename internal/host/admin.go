package host

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/analytics"
	"repro/internal/app"
	"repro/internal/ingest"
)

// Admin is the designer-facing HTTP surface of the hosted platform:
// uploading proprietary data, publishing application configurations,
// and downloading the monetization summaries of §II-A. It is mounted
// beside the end-user endpoints by AdminHandler.
//
// Authentication is a designer name in the X-Symphony-Designer
// header; the store's tenancy checks below it make spoofing useless
// against other tenants in this reproduction, and a production
// deployment would terminate real auth in front.
type Admin struct {
	Registry *Registry
	Uploader *ingest.Uploader
	Log      *analytics.Log
	// Suggest serves related-site suggestions (nil disables).
	Suggest func(seeds []string, limit int) []string
}

// Handler returns the admin mux:
//
//	POST /admin/upload?tenant=T&dataset=D&format=csv[&key=F]   body = file
//	POST /admin/publish                                        body = app JSON
//	GET  /admin/summary?app=ID
//	GET  /admin/export.csv?app=ID
//	GET  /admin/series?app=ID&hours=24
//	GET  /admin/suggest?sites=a.com,b.com&limit=5
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/admin/upload", a.handleUpload)
	mux.HandleFunc("/admin/publish", a.handlePublish)
	mux.HandleFunc("/admin/summary", a.handleSummary)
	mux.HandleFunc("/admin/export.csv", a.handleExport)
	mux.HandleFunc("/admin/series", a.handleSeries)
	mux.HandleFunc("/admin/suggest", a.handleSuggest)
	return mux
}

func designerOf(r *http.Request) string {
	return r.Header.Get("X-Symphony-Designer")
}

func (a *Admin) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	designer := designerOf(r)
	if designer == "" {
		http.Error(w, "missing X-Symphony-Designer", http.StatusUnauthorized)
		return
	}
	q := r.URL.Query()
	opts := ingest.Options{
		Tenant:   q.Get("tenant"),
		Actor:    designer,
		Dataset:  q.Get("dataset"),
		Format:   ingest.Format(q.Get("format")),
		KeyField: q.Get("key"),
	}
	if opts.Tenant == "" || opts.Dataset == "" || opts.Format == "" {
		http.Error(w, "tenant, dataset and format are required", http.StatusBadRequest)
		return
	}
	rep, err := a.Uploader.Upload(opts, r.Body)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "access denied") {
			status = http.StatusForbidden
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, rep)
}

func (a *Admin) handlePublish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	designer := designerOf(r)
	if designer == "" {
		http.Error(w, "missing X-Symphony-Designer", http.StatusUnauthorized)
		return
	}
	var application app.Application
	if err := json.NewDecoder(r.Body).Decode(&application); err != nil {
		http.Error(w, fmt.Sprintf("bad application JSON: %v", err), http.StatusBadRequest)
		return
	}
	if application.Owner != designer {
		http.Error(w, "application owner does not match designer", http.StatusForbidden)
		return
	}
	if err := a.Registry.Publish(&application); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, struct {
		Published string `json:"published"`
	}{application.ID})
}

// ownedApp authorizes a designer against a published application.
func (a *Admin) ownedApp(w http.ResponseWriter, r *http.Request) (string, bool) {
	designer := designerOf(r)
	appID := r.URL.Query().Get("app")
	application, ok := a.Registry.Get(appID)
	if !ok {
		http.Error(w, "unknown application", http.StatusNotFound)
		return "", false
	}
	if designer == "" || application.Owner != designer {
		http.Error(w, "not the application owner", http.StatusForbidden)
		return "", false
	}
	return appID, true
}

func (a *Admin) handleSummary(w http.ResponseWriter, r *http.Request) {
	appID, ok := a.ownedApp(w, r)
	if !ok {
		return
	}
	writeJSON(w, a.Log.Summarize(appID, 5))
}

func (a *Admin) handleExport(w http.ResponseWriter, r *http.Request) {
	appID, ok := a.ownedApp(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	fmt.Fprint(w, a.Log.ExportCSV(appID))
}

func (a *Admin) handleSeries(w http.ResponseWriter, r *http.Request) {
	appID, ok := a.ownedApp(w, r)
	if !ok {
		return
	}
	hours := 24
	if h := r.URL.Query().Get("hours"); h != "" {
		n, err := strconv.Atoi(h)
		if err != nil || n <= 0 {
			http.Error(w, "bad hours", http.StatusBadRequest)
			return
		}
		hours = n
	}
	buckets := a.Log.Series(appID, time.Duration(hours)*time.Hour)
	writeJSON(w, buckets)
}

func (a *Admin) handleSuggest(w http.ResponseWriter, r *http.Request) {
	if a.Suggest == nil {
		http.Error(w, "suggest not configured", http.StatusNotImplemented)
		return
	}
	sitesParam := r.URL.Query().Get("sites")
	if sitesParam == "" {
		http.Error(w, "sites required", http.StatusBadRequest)
		return
	}
	limit := 5
	if l := r.URL.Query().Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n <= 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	out := a.Suggest(strings.Split(sitesParam, ","), limit)
	writeJSON(w, out)
}
